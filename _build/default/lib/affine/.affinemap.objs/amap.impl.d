lib/affine/amap.ml: Array Fmt Index List Matrix Option Te
