(** Analytical GPU simulator.

    Executes a {!Kernel_ir.prog} against a {!Device.t} with a throughput
    model: DRAM / L2 / shared-memory traffic and the FMA / tensor-core / SFU
    pipelines each contribute time, stages overlap memory and compute
    according to whether §6.5 pipelining was applied, kernel launches and
    grid synchronizations cost fixed latencies, and every quantity is
    recorded in Nsight-style {!Counters}. *)

type kernel_result = {
  kernel : Kernel_ir.kernel;
  kcounters : Counters.t;
  compute_us : float;  (** time spent in stages that use the MMA/FMA pipes heavily *)
  memory_us : float;   (** time spent in memory-bound stages *)
}

type result = {
  device : Device.t;
  per_kernel : kernel_result list;
  total : Counters.t;
  total_compute_us : float;
  total_memory_us : float;
}

(* Shared memory streams at roughly 10x the DRAM rate on A100. *)
let smem_bw_gbps (dev : Device.t) = dev.Device.dram_bw_gbps *. 10.

(* Minimal wall time of one stage: instruction issue, barriers, tail
   effects.  Scaled by wave count so oversubscribed grids pay their
   serialization. *)
let stage_floor_us = 0.30

(* Everything one stage evaluation produces beyond its counters: the solo
   time, whether compute or memory dominated, and the DRAM-facing pieces the
   multi-stream contention model needs (bytes on the bus, time attributable
   to the bus). *)
type stage_eval = {
  se_us : float;
  se_kind : [ `Compute | `Memory ];
  se_dram_bytes : int;  (** global read + write + atomic traffic *)
  se_dram_us : float;   (** portion of [se_us]'s body limited by DRAM *)
}

let run_stage (dev : Device.t) ~(waves : int) ~(kernel_grid : int)
    ~(library_call : bool) (s : Kernel_ir.stage) (c : Counters.t) :
    stage_eval =
  (* Under-occupancy: a stage whose grid leaves SMs idle cannot reach peak
     arithmetic throughput (one block per SM minimum) nor full DRAM
     bandwidth (memory parallelism saturates at roughly a quarter of the
     SMs).  This is what makes a 4-block branch-conv kernel slow no matter
     how efficient its inner loop is. *)
  let grid = if s.Kernel_ir.sgrid > 0 then s.Kernel_ir.sgrid else kernel_grid in
  let sms = float_of_int dev.Device.num_sms in
  (* vendor libraries pick their own parallelization (split-K, batched
     kernels) and are not bound by our tile-derived grid *)
  let util_c =
    if library_call then 1.
    else Float.min 1. (float_of_int (max 1 grid) /. sms)
  in
  let util_m =
    if library_call then 1.
    else Float.min 1. (4. *. float_of_int (max 1 grid) /. sms)
  in
  let ldg = ref 0 and ldl2 = ref 0 and lds = ref 0 and stg = ref 0 in
  let mma = ref 0 and fma = ref 0 and sfu = ref 0 and atomic = ref 0 in
  let syncs = ref 0 and bsyncs = ref 0 in
  List.iter
    (function
      | Kernel_ir.Ldg { bytes; _ } -> ldg := !ldg + bytes
      | Kernel_ir.Ldl2 { bytes; _ } -> ldl2 := !ldl2 + bytes
      | Kernel_ir.Lds { bytes; _ } -> lds := !lds + bytes
      | Kernel_ir.Stg { bytes; _ } -> stg := !stg + bytes
      | Kernel_ir.Mma { flops } -> mma := !mma + flops
      | Kernel_ir.Fma { flops } -> fma := !fma + flops
      | Kernel_ir.Sfu { ops } -> sfu := !sfu + ops
      | Kernel_ir.Atomic_add { bytes; _ } -> atomic := !atomic + bytes
      | Kernel_ir.Grid_sync -> incr syncs
      | Kernel_ir.Block_sync -> incr bsyncs)
    s.Kernel_ir.instrs;
  (* traffic times in microseconds: X GB/s = X * 1e3 bytes/us *)
  let dram_rate = dev.Device.dram_bw_gbps *. s.Kernel_ir.mem_eff *. util_m *. 1e3 in
  let dram_us = float_of_int (!ldg + !stg) /. dram_rate in
  let atomic_us =
    float_of_int !atomic /. (dram_rate *. dev.Device.atomic_bw_factor)
  in
  let l2_us = float_of_int !ldl2 /. (dev.Device.l2_bw_gbps *. util_m *. 1e3) in
  let smem_us = float_of_int !lds /. (smem_bw_gbps dev *. 1e3) in
  let mem_us = dram_us +. atomic_us +. l2_us +. smem_us in
  (* pipeline times: X TFLOPS = X * 1e6 flops/us *)
  let eff = s.Kernel_ir.compute_eff *. util_c in
  let mma_us = float_of_int !mma /. (dev.Device.fp16_tc_tflops *. eff *. 1e6) in
  let fma_us = float_of_int !fma /. (dev.Device.fp32_tflops *. eff *. 1e6) in
  let sfu_us = float_of_int !sfu /. (dev.Device.sfu_gops *. eff *. 1e3) in
  let comp_us = mma_us +. fma_us +. sfu_us in
  let overlap =
    if s.Kernel_ir.pipelined then dev.Device.overlap_pipelined
    else dev.Device.overlap_default
  in
  let body_us =
    Float.max mem_us comp_us +. ((1. -. overlap) *. Float.min mem_us comp_us)
  in
  let sync_us =
    (float_of_int !syncs *. dev.Device.grid_sync_us)
    +. (float_of_int !bsyncs *. 0.05)
  in
  let floor = stage_floor_us *. float_of_int (max 1 waves) in
  let stage_us = Float.max body_us floor +. sync_us in
  (* record counters *)
  c.Counters.dram_read_bytes <- c.Counters.dram_read_bytes + !ldg;
  c.Counters.dram_write_bytes <- c.Counters.dram_write_bytes + !stg;
  c.Counters.l2_read_bytes <- c.Counters.l2_read_bytes + !ldl2;
  c.Counters.smem_read_bytes <- c.Counters.smem_read_bytes + !lds;
  c.Counters.atomic_bytes <- c.Counters.atomic_bytes + !atomic;
  c.Counters.mma_flops <- c.Counters.mma_flops + !mma;
  c.Counters.fma_flops <- c.Counters.fma_flops + !fma;
  c.Counters.sfu_ops <- c.Counters.sfu_ops + !sfu;
  c.Counters.grid_syncs <- c.Counters.grid_syncs + !syncs;
  c.Counters.time_us <- c.Counters.time_us +. stage_us;
  (* LSU issue-slot busy time: every load/store instruction occupies the
     pipeline regardless of where it hits; 8 TB/s of issue capacity *)
  let lsu_bytes = !ldg + !stg + !ldl2 + !lds + !atomic in
  c.Counters.lsu_busy_us <-
    c.Counters.lsu_busy_us +. (float_of_int lsu_bytes /. 8.0e6);
  c.Counters.fma_busy_us <- c.Counters.fma_busy_us +. fma_us +. sfu_us;
  c.Counters.mma_busy_us <- c.Counters.mma_busy_us +. mma_us;
  let kind = if mma_us +. fma_us > mem_us then `Compute else `Memory in
  {
    se_us = stage_us;
    se_kind = kind;
    se_dram_bytes = !ldg + !stg + !atomic;
    se_dram_us = dram_us +. atomic_us;
  }

let run_kernel (dev : Device.t) (k : Kernel_ir.kernel) : kernel_result =
  let c = Counters.create () in
  c.Counters.kernel_launches <- 1;
  c.Counters.launch_us <- dev.Device.kernel_launch_us;
  c.Counters.time_us <- dev.Device.kernel_launch_us;
  let waves =
    Occupancy.waves dev (Kernel_ir.usage k) ~grid_blocks:k.Kernel_ir.grid_blocks
  in
  let compute_us = ref 0. and memory_us = ref 0. in
  List.iter
    (fun s ->
      let ev =
        run_stage dev ~waves ~kernel_grid:k.Kernel_ir.grid_blocks
          ~library_call:k.Kernel_ir.library_call s c
      in
      match ev.se_kind with
      | `Compute -> compute_us := !compute_us +. ev.se_us
      | `Memory -> memory_us := !memory_us +. ev.se_us)
    k.Kernel_ir.stages;
  { kernel = k; kcounters = c; compute_us = !compute_us; memory_us = !memory_us }

(** A kernel that grid-synchronizes must fit in one wave (cooperative
    launch); returns the offending kernels. *)
let validate_prog (dev : Device.t) (p : Kernel_ir.prog) :
    (unit, string) Stdlib.result =
  let bad =
    List.filter
      (fun k ->
        Kernel_ir.num_grid_syncs k > 0
        && k.Kernel_ir.grid_blocks
           > Occupancy.max_blocks_per_wave dev (Kernel_ir.usage k))
      p.Kernel_ir.kernels
  in
  if bad = [] then Ok ()
  else
    Error
      (Fmt.str "cooperative kernels exceed one wave: %s"
         (String.concat ", "
            (List.map (fun k -> k.Kernel_ir.kname) bad)))

let run (dev : Device.t) (p : Kernel_ir.prog) : result =
  Obs.span ~meta:[ ("prog", p.Kernel_ir.pname) ] "simulate" @@ fun () ->
  let per_kernel =
    List.map
      (fun (k : Kernel_ir.kernel) ->
        Obs.span ~meta:[ ("kernel", k.Kernel_ir.kname) ] "sim-kernel"
          (fun () -> run_kernel dev k))
      p.Kernel_ir.kernels
  in
  let total = Counters.create () in
  List.iter (fun r -> Counters.add ~into:total r.kcounters) per_kernel;
  {
    device = dev;
    per_kernel;
    total;
    total_compute_us = List.fold_left (fun a r -> a +. r.compute_us) 0. per_kernel;
    total_memory_us = List.fold_left (fun a r -> a +. r.memory_us) 0. per_kernel;
  }

let time_ms (r : result) = r.total.Counters.time_us /. 1000.

(** {!run} as a total function: fault-injection aware, exceptions converted
    to a typed diagnostic. *)
let run_result (dev : Device.t) (p : Kernel_ir.prog) :
    (result, Diag.t) Stdlib.result =
  Diag.guard ~subject:p.Kernel_ir.pname Diag.Simulate (fun () ->
      Faultinject.trip ~subject:p.Kernel_ir.pname Diag.Simulate;
      run dev p)

(* ------------------------------------------------------------------ *)
(* Multi-stream execution: time-sharing the device between programs    *)
(* ------------------------------------------------------------------ *)

(** One stage of a kernel as the multi-stream scheduler sees it: its solo
    execution time (exactly what {!run_stage} computes for a lone program)
    plus its standing resource claims — how many SMs its resident blocks
    occupy and what fraction of peak DRAM bandwidth it consumes when it has
    the device to itself. *)
type stage_profile = {
  sp_label : string;
  sp_us : float;       (** solo stage time, grid syncs included *)
  sp_demand : int;     (** SMs occupied by the resident grid *)
  sp_bw_frac : float;  (** solo DRAM bandwidth as a fraction of device peak *)
  sp_mem_frac : float; (** fraction of [sp_us] attributable to DRAM traffic *)
}

type kernel_profile = {
  kp_name : string;
  kp_launch_us : float;
  kp_cooperative : bool;  (** grid-synchronizing: whole grid stays resident *)
  kp_stages : stage_profile list;
  kp_solo_us : float;     (** launch + stages, {!run_kernel}'s association *)
}

let profile_kernel (dev : Device.t) (k : Kernel_ir.kernel) : kernel_profile =
  let u = Kernel_ir.usage k in
  let grid = k.Kernel_ir.grid_blocks in
  let waves = Occupancy.waves dev u ~grid_blocks:grid in
  let bps = Occupancy.blocks_per_sm dev u in
  (* SMs hosting the kernel's resident blocks: a grid larger than one wave
     keeps the whole device busy cycling waves; a small grid (or a
     cooperative launch, whose entire grid must stay resident between
     grid.syncs) pins down only the SMs it actually needs.  Vendor library
     calls pick their own device-wide parallelization. *)
  let demand =
    if k.Kernel_ir.library_call || bps <= 0 then dev.Device.num_sms
    else min dev.Device.num_sms ((max 1 grid + bps - 1) / bps)
  in
  let stages =
    List.map
      (fun (s : Kernel_ir.stage) ->
        let ev =
          run_stage dev ~waves ~kernel_grid:grid
            ~library_call:k.Kernel_ir.library_call s (Counters.create ())
        in
        {
          sp_label = s.Kernel_ir.label;
          sp_us = ev.se_us;
          sp_demand = demand;
          sp_bw_frac =
            (if ev.se_us <= 0. then 0.
             else
               float_of_int ev.se_dram_bytes
               /. (dev.Device.dram_bw_gbps *. 1e3 *. ev.se_us));
          sp_mem_frac =
            (if ev.se_us <= 0. then 0.
             else Float.min 1. (ev.se_dram_us /. ev.se_us));
        })
      k.Kernel_ir.stages
  in
  {
    kp_name = k.Kernel_ir.kname;
    kp_launch_us = dev.Device.kernel_launch_us;
    kp_cooperative = Kernel_ir.num_grid_syncs k > 0;
    kp_stages = stages;
    kp_solo_us =
      List.fold_left
        (fun a sp -> a +. sp.sp_us)
        dev.Device.kernel_launch_us stages;
  }

let profile_prog (dev : Device.t) (p : Kernel_ir.prog) : kernel_profile list =
  List.map (profile_kernel dev) p.Kernel_ir.kernels

(** Solo end-to-end latency of a profiled program — bit-identical to
    [({!run} dev prog).total.time_us] because both accumulate the same
    per-stage floats in the same order. *)
let solo_time_us (profs : kernel_profile list) : float =
  List.fold_left (fun a kp -> a +. kp.kp_solo_us) 0. profs

(* ------------------------------------------------------------------ *)
(* Mega-kernel execution: persistent workers draining a task graph     *)
(* ------------------------------------------------------------------ *)

(* Per-task precomputation: solo stage evaluations (exactly {!run_stage}'s
   floats, counters included) plus the task's standing claims — the same
   SM-demand and DRAM-bandwidth quantities {!profile_kernel} derives for
   multi-stream contention, reused here for task-level concurrency inside
   one persistent launch. *)
type mega_task = {
  mt_deps : int list;
  mt_demand : int;
  mt_stages : (float * float * float) array;  (* solo us, bw frac, mem frac *)
  mt_result : kernel_result;
}

(** Execute a task graph as one persistent kernel: per-SM workers pull
    tasks whose dependencies have retired, independent tasks overlap, and
    the device is time-shared between concurrently running tasks with the
    same proportional SM/DRAM contention model {!Multi} applies between
    streams.  Returns the per-task results plus the timeline as
    constant-concurrency segments — each segment is a {!stage_profile}
    (duration, aggregate SM demand capped at the device, aggregate
    bandwidth capped at peak), which is exactly the shape {!Multi} can
    replay: a mega program enters the serving engine as ONE kernel profile
    whose stages are these segments. *)
let mega_exec (dev : Device.t) (tg : Kernel_ir.taskgraph) :
    mega_task array * stage_profile list =
  let prep (t : Kernel_ir.task) =
    let k = t.Kernel_ir.t_kernel in
    let u = Kernel_ir.usage k in
    let grid = k.Kernel_ir.grid_blocks in
    let waves = Occupancy.waves dev u ~grid_blocks:grid in
    let bps = Occupancy.blocks_per_sm dev u in
    let demand =
      if k.Kernel_ir.library_call || bps <= 0 then dev.Device.num_sms
      else min dev.Device.num_sms ((max 1 grid + bps - 1) / bps)
    in
    let c = Counters.create () in
    let compute_us = ref 0. and memory_us = ref 0. in
    let stages =
      List.map
        (fun (s : Kernel_ir.stage) ->
          let ev =
            run_stage dev ~waves ~kernel_grid:grid
              ~library_call:k.Kernel_ir.library_call s c
          in
          (match ev.se_kind with
          | `Compute -> compute_us := !compute_us +. ev.se_us
          | `Memory -> memory_us := !memory_us +. ev.se_us);
          let bw =
            if ev.se_us <= 0. then 0.
            else
              float_of_int ev.se_dram_bytes
              /. (dev.Device.dram_bw_gbps *. 1e3 *. ev.se_us)
          in
          let mf =
            if ev.se_us <= 0. then 0.
            else Float.min 1. (ev.se_dram_us /. ev.se_us)
          in
          (ev.se_us, bw, mf))
        k.Kernel_ir.stages
    in
    {
      mt_deps = t.Kernel_ir.t_deps;
      mt_demand = demand;
      mt_stages = Array.of_list stages;
      mt_result =
        {
          kernel = k;
          kcounters = c;
          compute_us = !compute_us;
          memory_us = !memory_us;
        };
    }
  in
  let tasks = Array.map prep tg.Kernel_ir.tg_tasks in
  let n = Array.length tasks in
  let finished = Array.make n false in
  let started = Array.make n false in
  let sidx = Array.make n 0 in
  let left = Array.make n 0. in
  let running = ref [] in
  let done_count = ref 0 in
  let segs = ref [] in
  let nseg = ref 0 in
  (* admit every task whose dependencies have all retired; instruction-free
     tasks retire instantly and may unlock more, hence the fixpoint *)
  let rec start_ready () =
    let instant = ref false in
    for i = 0 to n - 1 do
      if
        (not started.(i))
        && List.for_all (fun d -> finished.(d)) tasks.(i).mt_deps
      then begin
        started.(i) <- true;
        if Array.length tasks.(i).mt_stages = 0 then begin
          finished.(i) <- true;
          incr done_count;
          instant := true
        end
        else begin
          sidx.(i) <- 0;
          let su, _, _ = tasks.(i).mt_stages.(0) in
          left.(i) <- su;
          running := !running @ [ i ]
        end
      end
    done;
    if !instant then start_ready ()
  in
  start_ready ();
  while !done_count < n && !running <> [] do
    let d = List.fold_left (fun a i -> a + tasks.(i).mt_demand) 0 !running in
    let b =
      List.fold_left
        (fun a i ->
          let _, bw, _ = tasks.(i).mt_stages.(sidx.(i)) in
          a +. bw)
        0. !running
    in
    let sms = float_of_int dev.Device.num_sms in
    let sm_slow = Float.max 1. (float_of_int d /. sms) in
    let bw_over = Float.max 1. (b /. sm_slow) in
    let stretch_of i =
      let _, _, mf = tasks.(i).mt_stages.(sidx.(i)) in
      sm_slow *. (1. +. (mf *. (bw_over -. 1.)))
    in
    (* next event: the earliest current-stage completion *)
    let dt =
      List.fold_left
        (fun a i -> Float.min a (left.(i) *. stretch_of i))
        infinity !running
    in
    if dt > 0. then begin
      let mf_seg =
        if d = 0 then 0.
        else
          List.fold_left
            (fun a i ->
              let _, _, mf = tasks.(i).mt_stages.(sidx.(i)) in
              a +. (float_of_int tasks.(i).mt_demand *. mf))
            0. !running
          /. float_of_int d
      in
      incr nseg;
      segs :=
        {
          sp_label = Fmt.str "seg%d" !nseg;
          sp_us = dt;
          sp_demand = min dev.Device.num_sms d;
          sp_bw_frac = Float.min 1. b;
          sp_mem_frac = Float.min 1. mf_seg;
        }
        :: !segs
    end;
    let still = ref [] in
    List.iter
      (fun i ->
        let st = stretch_of i in
        if left.(i) *. st <= dt then begin
          (* current stage retired: next stage, or the task is done *)
          if sidx.(i) + 1 < Array.length tasks.(i).mt_stages then begin
            sidx.(i) <- sidx.(i) + 1;
            let su, _, _ = tasks.(i).mt_stages.(sidx.(i)) in
            left.(i) <- su;
            still := i :: !still
          end
          else begin
            finished.(i) <- true;
            incr done_count
          end
        end
        else begin
          left.(i) <- left.(i) -. (dt /. st);
          still := i :: !still
        end)
      !running;
    running := List.rev !still;
    start_ready ()
  done;
  if !done_count < n then
    invalid_arg "Sim.mega: task graph deadlocked (unsatisfiable dependencies)";
  (tasks, List.rev !segs)

(** Execute a mega-kernel task graph solo: ONE launch charge total, then
    the persistent workers drain the graph.  The wall clock is defined as
    [launch +. fold-left of segment durations] — the same float association
    {!Multi} accumulates for a one-kernel stream — so a mega program on an
    uncontended serving stream finishes bit-identically to this result. *)
let run_mega (dev : Device.t) (tg : Kernel_ir.taskgraph) : result =
  Obs.span ~meta:[ ("taskgraph", tg.Kernel_ir.tg_name) ] "simulate-mega"
  @@ fun () ->
  let tasks, segs = mega_exec dev tg in
  let per_kernel = Array.to_list (Array.map (fun t -> t.mt_result) tasks) in
  let total = Counters.create () in
  List.iter (fun r -> Counters.add ~into:total r.kcounters) per_kernel;
  total.Counters.kernel_launches <- 1;
  total.Counters.launch_us <- dev.Device.kernel_launch_us;
  total.Counters.time_us <-
    List.fold_left
      (fun a sp -> a +. sp.sp_us)
      dev.Device.kernel_launch_us segs;
  {
    device = dev;
    per_kernel;
    total;
    total_compute_us =
      List.fold_left (fun a r -> a +. r.compute_us) 0. per_kernel;
    total_memory_us =
      List.fold_left (fun a r -> a +. r.memory_us) 0. per_kernel;
  }

(** A mega program as the multi-stream engine sees it: one persistent
    kernel whose stages are the solo timeline's constant-concurrency
    segments.  [kp_solo_us] carries {!run_mega}'s exact wall-clock float,
    so the uncontended-stream bit-exactness invariant extends to mega
    artifacts with no changes to {!Multi} itself. *)
let mega_profile (dev : Device.t) (tg : Kernel_ir.taskgraph) : kernel_profile
    =
  let _, segs = mega_exec dev tg in
  {
    kp_name = tg.Kernel_ir.tg_name;
    kp_launch_us = dev.Device.kernel_launch_us;
    kp_cooperative = true;
    kp_stages = segs;
    kp_solo_us =
      List.fold_left
        (fun a sp -> a +. sp.sp_us)
        dev.Device.kernel_launch_us segs;
  }

(** Event-driven multi-stream scheduler.  A stream is one compiled
    program's kernel launch queue; the engine advances every active stream
    from event to event (kernel launched, stage finished, kernel retired),
    stretching each resident stage by the contention of the moment:

    - SM pressure: with [D = Σ demand] SMs asked for by resident kernels,
      every stage runs [max 1 (D / num_sms)] times slower — time-sliced
      proportional sharing, which also models two cooperative kernels
      gang-scheduled past each other.
    - DRAM pressure: with [B = Σ bw_frac] of peak bandwidth demanded solo,
      the residual demand after SM time-slicing is [B / sm_slow]; the
      memory-bound fraction of each stage stretches by [max 1 (B / sm_slow)].

    A stage's remaining work is tracked in solo-microseconds and only
    re-segmented when its stretch actually changes, so an uncontended
    stream accumulates exactly its solo per-stage floats: one stream in
    the engine reproduces {!solo_time_us} bit for bit.  Cooperative
    kernels never yield SMs mid-kernel (their grid stays resident), which
    makes them barriers on their own stream only — other streams keep
    executing against them. *)
module Multi = struct
  (* one constant-stretch segment of the current launch/stage phase *)
  type seg = {
    mutable g_left : float;     (* solo-us remaining at segment start *)
    mutable g_stretch : float;
    mutable g_start : float;    (* absolute time the segment started *)
    mutable g_deadline : float; (* g_start + g_left * g_stretch *)
    mutable g_acc : float;      (* actual us spent in earlier segments *)
  }

  let mkseg ~now ~left =
    {
      g_left = left;
      g_stretch = 1.0;
      g_start = now;
      g_deadline = now +. left;
      g_acc = 0.;
    }

  (* actual wall time of the whole phase, evaluated at its deadline *)
  let seg_total g = g.g_acc +. (g.g_left *. g.g_stretch)

  type phase =
    | Launching of { prof : kernel_profile; seg : seg }
    | Executing of {
        prof : kernel_profile;
        mutable todo : stage_profile list;  (* head = current stage *)
        seg : seg;
      }
    | Drained

  (** How a stream reached its terminal state: ran its whole queue
      ([Finished]), was struck by an armed {!Faultinject.Kernel_fault}
      ([Faulted]), or was cancelled from outside — a serving watchdog
      killing a stream past its deadline ([Cancelled]). *)
  type stream_outcome = Finished | Faulted | Cancelled

  let outcome_to_string = function
    | Finished -> "finished"
    | Faulted -> "faulted"
    | Cancelled -> "cancelled"

  type stream = {
    st_id : int;
    st_label : string;
    st_members : int;
        (* serving requests batched into this stream; 1 unless the serving
           layer coalesced a bucket — pure attribution, no effect on timing *)
    st_start_us : float;
    st_faults : Faultinject.runtime_fault list;  (* armed runtime faults *)
    mutable st_queue : kernel_profile list;
    mutable st_phase : phase;
    mutable st_kidx : int;        (* 0-based index of the current kernel *)
    mutable st_sidx : int;        (* 0-based index of the current stage *)
    mutable st_kelapsed : float;  (* wall us inside the current kernel *)
    mutable st_kstart : float;
    mutable st_service_us : float;
    mutable st_slices : (string * float * float) list;  (* reverse order *)
    mutable st_finish_us : float option;
    mutable st_outcome : stream_outcome;  (* meaningful once finished *)
  }

  (* armed hang for the stream's (kernel, stage) site, if any *)
  let hang_at (s : stream) ~kernel ~stage : float option =
    let rec go = function
      | [] -> None
      | Faultinject.Kernel_hang { kernel = k; stage = st; factor } :: _
        when k = kernel && st = stage ->
          Some factor
      | _ :: rest -> go rest
    in
    if s.st_faults = [] then None else go s.st_faults

  let fault_at (s : stream) ~kernel ~stage : bool =
    s.st_faults <> []
    && List.exists
         (function
           | Faultinject.Kernel_fault { kernel = k; stage = st } ->
               k = kernel && st = stage
           | _ -> false)
         s.st_faults

  (* solo-us a stage will take on this stream once armed hangs are applied *)
  let stage_left (s : stream) ~stage (sp : stage_profile) : float =
    match hang_at s ~kernel:s.st_kidx ~stage with
    | Some f -> sp.sp_us *. f
    | None -> sp.sp_us

  (** One slice of the occupancy timeline: between two scheduler events,
      [sa_resident] streams had a kernel on the device asking for
      [sa_sm_demand] SMs and [sa_bw_demand] of peak DRAM bandwidth. *)
  type sample = {
    sa_start_us : float;
    sa_dur_us : float;
    sa_resident : int;
    sa_requests : int;
        (** serving requests inside the resident streams ([st_members]
            summed); equals [sa_resident] when nothing is batched *)
    sa_sm_demand : int;
    sa_bw_demand : float;
  }

  (** One device-throttle window: between [w_start] and [w_end] the device
      retains only [w_cap] of its SM and DRAM capacity (a partial outage —
      thermal throttling, a sibling tenant, a failing HBM stack). *)
  type window = { w_start : float; w_end : float; w_cap : float }

  type t = {
    mdev : Device.t;
    mutable mnow : float;
    mutable mnext : int;
    mutable mstreams : stream list;  (* reverse launch order *)
    mutable msamples : sample list;  (* reverse time order *)
    mutable mwindows : window list;  (* device-throttle windows *)
  }

  let create (dev : Device.t) : t =
    {
      mdev = dev;
      mnow = 0.;
      mnext = 0;
      mstreams = [];
      msamples = [];
      mwindows = [];
    }

  (** Arm a capacity cut: from [start_us] for [dur_us], the device keeps
      only [capacity] (0 < c <= 1) of its SMs and DRAM bandwidth. *)
  let throttle t ~start_us ~dur_us ~capacity =
    if capacity <= 0. || capacity > 1. then
      invalid_arg "Sim.Multi.throttle: capacity must be in (0, 1]";
    if dur_us <= 0. then invalid_arg "Sim.Multi.throttle: dur_us must be > 0";
    t.mwindows <-
      t.mwindows @ [ { w_start = start_us; w_end = start_us +. dur_us; w_cap = capacity } ]

  (* effective capacity fraction at [now]; overlapping windows compound to
     the most restrictive *)
  let capacity_at t now =
    List.fold_left
      (fun c w -> if now >= w.w_start && now < w.w_end then Float.min c w.w_cap else c)
      1. t.mwindows

  (* earliest window boundary strictly after [now]: capacity changes are
     scheduler events of their own *)
  let next_window_boundary t now =
    List.fold_left
      (fun a w ->
        let a = if w.w_start > now then Float.min a w.w_start else a in
        if w.w_end > now then Float.min a w.w_end else a)
      infinity t.mwindows

  let now_us t = t.mnow
  let streams t = List.rev t.mstreams
  let samples t = List.rev t.msamples
  let kernel_slices (s : stream) = List.rev s.st_slices

  let active t = List.filter (fun s -> s.st_finish_us = None) (streams t)

  let current_stage (s : stream) : stage_profile option =
    match s.st_phase with
    | Executing { todo = sp :: _; _ } -> Some sp
    | _ -> None

  (* standing claims of every resident (executing) kernel *)
  let demands (ss : stream list) : int * float =
    List.fold_left
      (fun (d, b) s ->
        match current_stage s with
        | Some sp -> (d + sp.sp_demand, b +. sp.sp_bw_frac)
        | None -> (d, b))
      (0, 0.) ss

  let deadline_of (s : stream) : float =
    match s.st_phase with
    | Launching { seg; _ } | Executing { seg; _ } -> seg.g_deadline
    | Drained -> infinity

  (* fold the segment's progress up to [now], then continue at [stretch];
     a no-op when the stretch is unchanged, so uncontended phases keep
     their exact solo floats *)
  let reseg ~now (g : seg) ~stretch =
    if stretch <> g.g_stretch then begin
      let ran = now -. g.g_start in
      g.g_acc <- g.g_acc +. ran;
      g.g_left <- Float.max 0. (g.g_left -. (ran /. g.g_stretch));
      g.g_stretch <- stretch;
      g.g_start <- now;
      g.g_deadline <- now +. (g.g_left *. stretch)
    end

  (* recompute every executing stream's stretch from the resident set *)
  let restretch t =
    let ss = active t in
    let d, b = demands ss in
    let sms = float_of_int t.mdev.Device.num_sms in
    (* a stream already time-sliced [sm_slow]x issues its memory traffic
       that much slower, so DRAM pressure is the *residual* demand after
       SM sharing — compounding the solo demands would double-count and
       make the device non-work-conserving (N identical streams slower
       than serial).  An active throttle window scales both capacities;
       the un-throttled path keeps the exact PR 5 float expressions. *)
    let sm_slow, bw_over =
      if t.mwindows = [] then
        let sm_slow = Float.max 1. (float_of_int d /. sms) in
        (sm_slow, Float.max 1. (b /. sm_slow))
      else
        let cap = capacity_at t t.mnow in
        let sm_slow = Float.max 1. (float_of_int d /. (sms *. cap)) in
        (sm_slow, Float.max 1. (b /. (sm_slow *. cap)))
    in
    List.iter
      (fun s ->
        match s.st_phase with
        | Executing ({ todo = sp :: _; _ } as e) ->
            reseg ~now:t.mnow e.seg
              ~stretch:(sm_slow *. (1. +. (sp.sp_mem_frac *. (bw_over -. 1.))))
        | _ -> ())
      ss

  let next_kernel t (s : stream) =
    match s.st_queue with
    | [] ->
        s.st_phase <- Drained;
        (* dispatch + on-device time, not the engine clock: the global
           clock is a flat running sum whose float association differs
           from {!solo_time_us}'s per-kernel grouping, while
           [st_service_us] accumulates in exactly that grouping — this
           keeps an uncontended stream's finish bit-identical to solo *)
        s.st_finish_us <- Some (s.st_start_us +. s.st_service_us)
    | kp :: rest ->
        s.st_queue <- rest;
        s.st_kidx <- s.st_kidx + 1;
        s.st_kelapsed <- 0.;
        s.st_kstart <- t.mnow;
        s.st_phase <-
          Launching { prof = kp; seg = mkseg ~now:t.mnow ~left:kp.kp_launch_us }

  let retire_kernel t (s : stream) (prof : kernel_profile) =
    s.st_slices <- (prof.kp_name, s.st_kstart, t.mnow) :: s.st_slices;
    s.st_service_us <- s.st_service_us +. s.st_kelapsed;
    next_kernel t s

  (* an armed Kernel_fault struck: the kernel's work so far is spent, the
     stream terminates Faulted at the engine clock *)
  let abort_faulted t (s : stream) (prof : kernel_profile) =
    s.st_slices <- (prof.kp_name, s.st_kstart, t.mnow) :: s.st_slices;
    s.st_service_us <- s.st_service_us +. s.st_kelapsed;
    s.st_queue <- [];
    s.st_phase <- Drained;
    s.st_outcome <- Faulted;
    s.st_finish_us <- Some t.mnow;
    Faultinject.Runtime.record_trip ~stream:s.st_id

  (* the stream's deadline was reached: cross into the next phase *)
  let cross t (s : stream) =
    match s.st_phase with
    | Launching { prof; seg } -> (
        s.st_kelapsed <- s.st_kelapsed +. seg_total seg;
        match prof.kp_stages with
        | [] -> retire_kernel t s prof
        | sp :: _ as stages ->
            s.st_sidx <- 0;
            s.st_phase <-
              Executing
                {
                  prof;
                  todo = stages;
                  seg = mkseg ~now:t.mnow ~left:(stage_left s ~stage:0 sp);
                })
    | Executing ({ prof; seg; _ } as e) -> (
        s.st_kelapsed <- s.st_kelapsed +. seg_total seg;
        if fault_at s ~kernel:s.st_kidx ~stage:s.st_sidx then
          abort_faulted t s prof
        else
          match e.todo with
          | _ :: (sp :: _ as rest) ->
              e.todo <- rest;
              s.st_sidx <- s.st_sidx + 1;
              seg.g_left <- stage_left s ~stage:s.st_sidx sp;
              seg.g_stretch <- 1.0;
              seg.g_start <- t.mnow;
              seg.g_deadline <- t.mnow +. seg.g_left;
              seg.g_acc <- 0.
          | _ -> retire_kernel t s prof)
    | Drained -> ()

  let launch t ?(label = "") ?(members = 1) ?(faults = [])
      (profs : kernel_profile list) : stream =
    if members < 1 then invalid_arg "Sim.Multi.launch: members must be >= 1";
    let s =
      {
        st_id = t.mnext;
        st_label = label;
        st_members = members;
        st_start_us = t.mnow;
        st_faults = faults;
        st_queue = profs;
        st_phase = Drained;
        st_kidx = -1;
        st_sidx = 0;
        st_kelapsed = 0.;
        st_kstart = t.mnow;
        st_service_us = 0.;
        st_slices = [];
        st_finish_us = None;
        st_outcome = Finished;
      }
    in
    t.mnext <- t.mnext + 1;
    t.mstreams <- s :: t.mstreams;
    if faults <> [] then Faultinject.Runtime.arm ~stream:s.st_id faults;
    next_kernel t s;
    s

  (** Cancel a running stream at the current engine clock (the serving
      watchdog's lever): partial work is folded into the service time and a
      partial kernel slice is recorded, the stream terminates [Cancelled],
      and the remaining streams re-stretch to the freed capacity.  A no-op
      on streams that already finished. *)
  let cancel t (s : stream) : unit =
    match s.st_phase with
    | Drained -> ()
    | Launching { prof; seg } | Executing { prof; seg; _ } ->
        let ran = Float.max 0. (t.mnow -. seg.g_start) in
        s.st_service_us <-
          s.st_service_us +. s.st_kelapsed +. seg.g_acc +. ran;
        if t.mnow > s.st_kstart then
          s.st_slices <- (prof.kp_name, s.st_kstart, t.mnow) :: s.st_slices;
        s.st_queue <- [];
        s.st_phase <- Drained;
        s.st_outcome <- Cancelled;
        s.st_finish_us <- Some t.mnow;
        restretch t

  let record_sample t (ss : stream list) ~til =
    let dt = til -. t.mnow in
    if dt > 0. then begin
      let d, b = demands ss in
      let on_device =
        List.filter (fun s -> Option.is_some (current_stage s)) ss
      in
      let requests =
        List.fold_left (fun n s -> n + s.st_members) 0 on_device
      in
      t.msamples <-
        {
          sa_start_us = t.mnow;
          sa_dur_us = dt;
          sa_resident = List.length on_device;
          sa_requests = requests;
          sa_sm_demand = d;
          sa_bw_demand = b;
        }
        :: t.msamples
    end

  (* one scheduler event: advance to the earliest phase deadline, throttle
     window boundary, or [until], whichever is first, and process every
     boundary reached *)
  let step t ~until =
    match active t with
    | [] ->
        if until = infinity then `Idle
        else begin
          if until > t.mnow then t.mnow <- until;
          `Reached
        end
    | ss ->
        let next =
          List.fold_left (fun a s -> Float.min a (deadline_of s)) infinity ss
        in
        (* a capacity change mid-stage is an event too: streams must
           re-segment at the window edge *)
        let next =
          if t.mwindows = [] then next
          else Float.min next (next_window_boundary t t.mnow)
        in
        if next = infinity && until = infinity then
          (* every active stream is hung indefinitely (an armed
             [Kernel_hang] with factor infinity) and nothing external is
             coming: no event will ever fire.  Surface it instead of
             spinning — the caller's watchdog must cancel. *)
          `Stalled ss
        else if until < next then begin
          record_sample t ss ~til:until;
          if until > t.mnow then t.mnow <- until;
          `Reached
        end
        else begin
          record_sample t ss ~til:next;
          if next > t.mnow then t.mnow <- next;
          let crossing = List.filter (fun s -> deadline_of s <= t.mnow) ss in
          List.iter (cross t) crossing;
          restretch t;
          `Crossed (List.filter (fun s -> s.st_finish_us <> None) crossing)
        end

  (** Advance simulated time.  Returns when the first stream completes
      ([`Completed], possibly several at the same instant), when [until]
      is reached with streams still running ([`Reached]), when every
      active stream is hung indefinitely with nothing else pending
      ([`Stalled], carrying the hung streams — cancel or give up), or —
      only with [until = infinity] — when no stream is active ([`Idle]). *)
  let advance t ~until =
    let rec go () =
      if t.mnow >= until then `Reached
      else
        match step t ~until with
        | `Idle -> `Idle
        | `Reached -> `Reached
        | `Stalled ss -> `Stalled ss
        | `Crossed [] -> go ()
        | `Crossed done_ -> `Completed done_
    in
    go ()

  (** Run every launched stream to completion.  Indefinitely hung streams
      ([`Stalled]) are cancelled — drain must terminate. *)
  let rec drain t =
    match advance t ~until:infinity with
    | `Idle | `Reached -> ()
    | `Stalled ss ->
        List.iter (cancel t) ss;
        drain t
    | `Completed _ -> drain t
end
