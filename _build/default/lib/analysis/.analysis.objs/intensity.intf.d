lib/analysis/intensity.mli: Program Te
