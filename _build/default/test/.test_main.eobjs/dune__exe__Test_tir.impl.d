test/test_tir.ml: Alcotest Ansor Astring_contains B Builder Device Dgraph Dtype Expr Fmt Hashtbl Index List Lower Op Program Sched String Te Tir Zoo
