lib/gpu/sim.ml: Counters Device Float Fmt Kernel_ir List Occupancy Stdlib String
