lib/tensor/dtype.ml: Float Fmt
