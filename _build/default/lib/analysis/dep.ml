(** Element-wise dependence classification (§5.2).

    A TE without reduction axes is *one-relies-on-one*: each output element
    depends on exactly one element per input access, through a quasi-affine
    index map.  A TE with reduction axes is *one-relies-on-many*: each output
    element depends on the whole reduction region of its inputs. *)

type t =
  | One_relies_on_one
      (** no reduction axis; vertical transformation applies (§6.2) *)
  | One_relies_on_many of { axes : int array }
      (** reduction over the given extents; fused via two-phase
          block-local reduction + atomics (§6.3) *)

let classify (te : Te.t) : t =
  match te.Te.body with
  | Te.Compute _ -> One_relies_on_one
  | Te.Reduce { axes; _ } -> One_relies_on_many { axes }

let is_one_to_one te = not (Te.has_reduction te)

(** The paper's [M·v + c] maps for a one-relies-on-one TE, when every access
    is strictly affine (reshape-style div/mod accesses return [None] here but
    are still transformable by substitution). *)
let affine_maps (te : Te.t) : (string * Amap.t) list option = Amap.of_te te

(** Render the polyhedral-notation relation of §5.2 for documentation and
    debugging, e.g.
    [R = { O[i0,i1] -> I[i0,r0], 0 <= r0 < 64 }]. *)
let relation_to_string (te : Te.t) : string =
  let outs = List.init (Te.rank te) (fun i -> Fmt.str "i%d" i) in
  let head = Fmt.str "%s[%s]" te.Te.name (String.concat "," outs) in
  let accesses = Te.accesses te in
  let access_str (name, idxs) =
    Fmt.str "%s[%s]" name
      (String.concat "," (List.map Index.to_string idxs))
  in
  let rhs = String.concat ", " (List.map access_str accesses) in
  let bounds =
    List.mapi (fun i d -> Fmt.str "0 <= i%d < %d" i d)
      (Array.to_list te.Te.out_shape)
    @ List.mapi (fun i d -> Fmt.str "0 <= r%d < %d" i d)
        (Array.to_list (Te.reduce_axes te))
  in
  Fmt.str "{ %s -> %s : %s }" head rhs (String.concat " and " bounds)
