(** Analytical GPU simulator.

    Executes a {!Kernel_ir.prog} against a {!Device.t} with a throughput
    model: DRAM / L2 / shared-memory traffic and the FMA / tensor-core / SFU
    pipelines each contribute time, stages overlap memory and compute
    according to whether §6.5 pipelining was applied, kernel launches and
    grid synchronizations cost fixed latencies, and every quantity is
    recorded in Nsight-style {!Counters}. *)

type kernel_result = {
  kernel : Kernel_ir.kernel;
  kcounters : Counters.t;
  compute_us : float;  (** time spent in stages that use the MMA/FMA pipes heavily *)
  memory_us : float;   (** time spent in memory-bound stages *)
}

type result = {
  device : Device.t;
  per_kernel : kernel_result list;
  total : Counters.t;
  total_compute_us : float;
  total_memory_us : float;
}

(* Shared memory streams at roughly 10x the DRAM rate on A100. *)
let smem_bw_gbps (dev : Device.t) = dev.Device.dram_bw_gbps *. 10.

(* Minimal wall time of one stage: instruction issue, barriers, tail
   effects.  Scaled by wave count so oversubscribed grids pay their
   serialization. *)
let stage_floor_us = 0.30

let run_stage (dev : Device.t) ~(waves : int) ~(kernel_grid : int)
    ~(library_call : bool) (s : Kernel_ir.stage) (c : Counters.t) :
    float * [ `Compute | `Memory ] =
  (* Under-occupancy: a stage whose grid leaves SMs idle cannot reach peak
     arithmetic throughput (one block per SM minimum) nor full DRAM
     bandwidth (memory parallelism saturates at roughly a quarter of the
     SMs).  This is what makes a 4-block branch-conv kernel slow no matter
     how efficient its inner loop is. *)
  let grid = if s.Kernel_ir.sgrid > 0 then s.Kernel_ir.sgrid else kernel_grid in
  let sms = float_of_int dev.Device.num_sms in
  (* vendor libraries pick their own parallelization (split-K, batched
     kernels) and are not bound by our tile-derived grid *)
  let util_c =
    if library_call then 1.
    else Float.min 1. (float_of_int (max 1 grid) /. sms)
  in
  let util_m =
    if library_call then 1.
    else Float.min 1. (4. *. float_of_int (max 1 grid) /. sms)
  in
  let ldg = ref 0 and ldl2 = ref 0 and lds = ref 0 and stg = ref 0 in
  let mma = ref 0 and fma = ref 0 and sfu = ref 0 and atomic = ref 0 in
  let syncs = ref 0 and bsyncs = ref 0 in
  List.iter
    (function
      | Kernel_ir.Ldg { bytes; _ } -> ldg := !ldg + bytes
      | Kernel_ir.Ldl2 { bytes; _ } -> ldl2 := !ldl2 + bytes
      | Kernel_ir.Lds { bytes; _ } -> lds := !lds + bytes
      | Kernel_ir.Stg { bytes; _ } -> stg := !stg + bytes
      | Kernel_ir.Mma { flops } -> mma := !mma + flops
      | Kernel_ir.Fma { flops } -> fma := !fma + flops
      | Kernel_ir.Sfu { ops } -> sfu := !sfu + ops
      | Kernel_ir.Atomic_add { bytes; _ } -> atomic := !atomic + bytes
      | Kernel_ir.Grid_sync -> incr syncs
      | Kernel_ir.Block_sync -> incr bsyncs)
    s.Kernel_ir.instrs;
  (* traffic times in microseconds: X GB/s = X * 1e3 bytes/us *)
  let dram_rate = dev.Device.dram_bw_gbps *. s.Kernel_ir.mem_eff *. util_m *. 1e3 in
  let dram_us = float_of_int (!ldg + !stg) /. dram_rate in
  let atomic_us =
    float_of_int !atomic /. (dram_rate *. dev.Device.atomic_bw_factor)
  in
  let l2_us = float_of_int !ldl2 /. (dev.Device.l2_bw_gbps *. util_m *. 1e3) in
  let smem_us = float_of_int !lds /. (smem_bw_gbps dev *. 1e3) in
  let mem_us = dram_us +. atomic_us +. l2_us +. smem_us in
  (* pipeline times: X TFLOPS = X * 1e6 flops/us *)
  let eff = s.Kernel_ir.compute_eff *. util_c in
  let mma_us = float_of_int !mma /. (dev.Device.fp16_tc_tflops *. eff *. 1e6) in
  let fma_us = float_of_int !fma /. (dev.Device.fp32_tflops *. eff *. 1e6) in
  let sfu_us = float_of_int !sfu /. (dev.Device.sfu_gops *. eff *. 1e3) in
  let comp_us = mma_us +. fma_us +. sfu_us in
  let overlap =
    if s.Kernel_ir.pipelined then dev.Device.overlap_pipelined
    else dev.Device.overlap_default
  in
  let body_us =
    Float.max mem_us comp_us +. ((1. -. overlap) *. Float.min mem_us comp_us)
  in
  let sync_us =
    (float_of_int !syncs *. dev.Device.grid_sync_us)
    +. (float_of_int !bsyncs *. 0.05)
  in
  let floor = stage_floor_us *. float_of_int (max 1 waves) in
  let stage_us = Float.max body_us floor +. sync_us in
  (* record counters *)
  c.Counters.dram_read_bytes <- c.Counters.dram_read_bytes + !ldg;
  c.Counters.dram_write_bytes <- c.Counters.dram_write_bytes + !stg;
  c.Counters.l2_read_bytes <- c.Counters.l2_read_bytes + !ldl2;
  c.Counters.smem_read_bytes <- c.Counters.smem_read_bytes + !lds;
  c.Counters.atomic_bytes <- c.Counters.atomic_bytes + !atomic;
  c.Counters.mma_flops <- c.Counters.mma_flops + !mma;
  c.Counters.fma_flops <- c.Counters.fma_flops + !fma;
  c.Counters.sfu_ops <- c.Counters.sfu_ops + !sfu;
  c.Counters.grid_syncs <- c.Counters.grid_syncs + !syncs;
  c.Counters.time_us <- c.Counters.time_us +. stage_us;
  (* LSU issue-slot busy time: every load/store instruction occupies the
     pipeline regardless of where it hits; 8 TB/s of issue capacity *)
  let lsu_bytes = !ldg + !stg + !ldl2 + !lds + !atomic in
  c.Counters.lsu_busy_us <-
    c.Counters.lsu_busy_us +. (float_of_int lsu_bytes /. 8.0e6);
  c.Counters.fma_busy_us <- c.Counters.fma_busy_us +. fma_us +. sfu_us;
  c.Counters.mma_busy_us <- c.Counters.mma_busy_us +. mma_us;
  let kind = if mma_us +. fma_us > mem_us then `Compute else `Memory in
  (stage_us, kind)

let run_kernel (dev : Device.t) (k : Kernel_ir.kernel) : kernel_result =
  let c = Counters.create () in
  c.Counters.kernel_launches <- 1;
  c.Counters.launch_us <- dev.Device.kernel_launch_us;
  c.Counters.time_us <- dev.Device.kernel_launch_us;
  let waves =
    Occupancy.waves dev (Kernel_ir.usage k) ~grid_blocks:k.Kernel_ir.grid_blocks
  in
  let compute_us = ref 0. and memory_us = ref 0. in
  List.iter
    (fun s ->
      let us, kind =
        run_stage dev ~waves ~kernel_grid:k.Kernel_ir.grid_blocks
          ~library_call:k.Kernel_ir.library_call s c
      in
      match kind with
      | `Compute -> compute_us := !compute_us +. us
      | `Memory -> memory_us := !memory_us +. us)
    k.Kernel_ir.stages;
  { kernel = k; kcounters = c; compute_us = !compute_us; memory_us = !memory_us }

(** A kernel that grid-synchronizes must fit in one wave (cooperative
    launch); returns the offending kernels. *)
let validate_prog (dev : Device.t) (p : Kernel_ir.prog) :
    (unit, string) Stdlib.result =
  let bad =
    List.filter
      (fun k ->
        Kernel_ir.num_grid_syncs k > 0
        && k.Kernel_ir.grid_blocks
           > Occupancy.max_blocks_per_wave dev (Kernel_ir.usage k))
      p.Kernel_ir.kernels
  in
  if bad = [] then Ok ()
  else
    Error
      (Fmt.str "cooperative kernels exceed one wave: %s"
         (String.concat ", "
            (List.map (fun k -> k.Kernel_ir.kname) bad)))

let run (dev : Device.t) (p : Kernel_ir.prog) : result =
  Obs.span ~meta:[ ("prog", p.Kernel_ir.pname) ] "simulate" @@ fun () ->
  let per_kernel =
    List.map
      (fun (k : Kernel_ir.kernel) ->
        Obs.span ~meta:[ ("kernel", k.Kernel_ir.kname) ] "sim-kernel"
          (fun () -> run_kernel dev k))
      p.Kernel_ir.kernels
  in
  let total = Counters.create () in
  List.iter (fun r -> Counters.add ~into:total r.kcounters) per_kernel;
  {
    device = dev;
    per_kernel;
    total;
    total_compute_us = List.fold_left (fun a r -> a +. r.compute_us) 0. per_kernel;
    total_memory_us = List.fold_left (fun a r -> a +. r.memory_us) 0. per_kernel;
  }

let time_ms (r : result) = r.total.Counters.time_us /. 1000.

(** {!run} as a total function: fault-injection aware, exceptions converted
    to a typed diagnostic. *)
let run_result (dev : Device.t) (p : Kernel_ir.prog) :
    (result, Diag.t) Stdlib.result =
  Diag.guard ~subject:p.Kernel_ir.pname Diag.Simulate (fun () ->
      Faultinject.trip ~subject:p.Kernel_ir.pname Diag.Simulate;
      run dev p)
