(** Resource-aware TE program partitioning (§5.4).

    Souffle wants one big kernel per subprogram, synchronized with grid-level
    barriers.  A cooperative launch requires every thread block resident
    simultaneously, so the subprogram's largest launch grid times its largest
    per-block occupancy cost must fit the device ([max_grid * max_occ < C]).
    A greedy BFS walk grows the current subprogram until the constraint
    breaks, then starts a new one. *)

type subprogram = {
  id : int;
  tes : Te.t list;     (** program order *)
  cooperative : bool;  (** may use grid.sync internally; [false] for a TE
                           whose own grid exceeds one wave — it runs as a
                           classic kernel absorbing only one-relies-on-one
                           epilogues *)
}

type t = {
  subprograms : subprogram list;
  scheds : (string, Sched.t) Hashtbl.t;
}

val te_names : subprogram -> string list

val run :
  Device.t -> Analysis.t -> (string, Sched.t) Hashtbl.t -> t
(** Partition the analyzed program given per-TE schedules ("get required
    resource", §5.4). *)

val validate : t -> Program.t -> (unit, string) result
(** Every TE appears exactly once, in program order. *)

val num_subprograms : t -> int
val pp : Format.formatter -> t -> unit

val run_result :
  Device.t -> Analysis.t -> (string, Sched.t) Hashtbl.t -> (t, Diag.t) result
(** {!run} with escaped exceptions (and injected faults) converted to a
    typed diagnostic, plus a {!validate} coverage check of the result. *)
