(* Tests for the compile-throughput layer: domain-parallel Ansor search,
   the persistent schedule cache (Scache), and the reduced-space scheduling
   retry.  The contract under test everywhere is determinism — parallelism
   and caching must never change what gets compiled. *)

let tiny_programs () =
  List.map (fun (e : Zoo.entry) -> (e.Zoo.name, Lower.run (e.Zoo.tiny ()))) Zoo.all

let sorted_bindings (tbl : (string, Sched.t) Hashtbl.t) =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ---- parallel search determinism ---- *)

let test_parallel_matches_serial () =
  List.iter
    (fun (name, p) ->
      let serial =
        Ansor.schedule_program
          ~config:{ Ansor.default_config with Ansor.search_domains = 1 }
          Device.a100 p
      in
      let parallel =
        Ansor.schedule_program
          ~config:{ Ansor.default_config with Ansor.search_domains = 4 }
          Device.a100 p
      in
      Alcotest.(check bool)
        (name ^ ": parallel schedule table identical to serial")
        true
        (sorted_bindings serial = sorted_bindings parallel))
    (tiny_programs ())

let test_parallel_compile_identical () =
  (* end to end: the whole compiled artifact, not just the schedule table *)
  let p = Lower.run (Bert.create ~cfg:Bert.tiny ()) in
  let at domains =
    let ansor =
      { Ansor.default_config with Ansor.search_domains = domains }
    in
    match Souffle.compile_result ~cfg:(Souffle.config ~ansor ()) p with
    | Ok r -> r
    | Error _ -> Alcotest.fail "compile failed"
  in
  let serial = at 1 and parallel = at 4 in
  Alcotest.(check bool) "simulated execution identical" true
    (serial.Souffle.sim = parallel.Souffle.sim);
  Alcotest.(check bool) "kernel IR identical" true
    (serial.Souffle.prog = parallel.Souffle.prog)

(* ---- constructive scheduling ---- *)

let test_construct_quality_parity () =
  (* kernel-quality oracle: per zoo model, the constructed schedules'
     simulated end-to-end runtime must stay within 5% of the enumerative
     search's, with no degradation in either mode *)
  List.iter
    (fun (name, p) ->
      let at search_mode =
        match
          Souffle.compile_result ~cfg:(Souffle.config ~search_mode ()) p
        with
        | Ok r -> r
        | Error _ -> Alcotest.failf "%s: compile failed" name
      in
      let c = at Ansor.Construct and e = at Ansor.Exhaustive in
      Alcotest.(check (list Alcotest.string))
        (name ^ ": no degradation in either mode")
        []
        (List.map
           (fun d -> d.Souffle.d_subject)
           (c.Souffle.degraded @ e.Souffle.degraded));
      let tc = Sim.time_ms c.Souffle.sim and te = Sim.time_ms e.Souffle.sim in
      let rel = if te > 0. then (tc -. te) /. te else 0. in
      if rel > 0.05 then
        Alcotest.failf
          "%s: constructed schedules cost %.1f%% simulated runtime vs \
           exhaustive (%.4f ms vs %.4f ms)"
          name (100. *. rel) tc te)
    (tiny_programs ())

let test_construct_parallel_matches_serial () =
  (* construction is per-TE and deterministic; fanning the per-key work out
     over domains must not change the schedule table *)
  List.iter
    (fun (name, p) ->
      let at domains =
        Ansor.schedule_program ~scheduler:Construct.scheduler
          ~config:{ Ansor.default_config with Ansor.search_domains = domains }
          Device.a100 p
      in
      Alcotest.(check bool)
        (name ^ ": constructed table identical across search domains")
        true
        (sorted_bindings (at 1) = sorted_bindings (at 4)))
    (tiny_programs ())

(* ---- persistent cache ---- *)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_cache_roundtrip () =
  let p = Lower.run (Mmoe.create ~cfg:Mmoe.tiny ()) in
  let c = Scache.create () in
  ignore
    (Ansor.schedule_program ~store:(Scache.store c) Device.a100 p);
  Alcotest.(check bool) "search populated the cache" true (Scache.length c > 0);
  Alcotest.(check bool) "cache is dirty after adds" true (Scache.dirty c);
  let path = tmp "scache_roundtrip.json" in
  Scache.save c path;
  Alcotest.(check bool) "save clears dirty" false (Scache.dirty c);
  let c' = Scache.load path in
  Alcotest.(check int) "all entries survive the round trip" (Scache.length c)
    (Scache.length c');
  (* a fresh search against the loaded cache is all hits, no additions *)
  ignore (Ansor.schedule_program ~store:(Scache.store c') Device.a100 p);
  Alcotest.(check bool) "no new entries on reload" false (Scache.dirty c');
  Alcotest.(check bool) "reloaded cache answered finds" true
    (Scache.hits c' > 0);
  Sys.remove path

let test_cache_corrupt_and_stale () =
  let write path s =
    let oc = open_out path in
    output_string oc s;
    close_out oc
  in
  let corrupt = tmp "scache_corrupt.json" in
  write corrupt "{ not json at all";
  Alcotest.(check int) "corrupted file loads as empty cache" 0
    (Scache.length (Scache.load corrupt));
  let stale = tmp "scache_stale.json" in
  write stale
    "{\"format\": \"souffle-scache\", \"version\": 999, \"entries\": {}}";
  Alcotest.(check int) "stale version loads as empty cache" 0
    (Scache.length (Scache.load stale));
  let missing = tmp "scache_does_not_exist.json" in
  Alcotest.(check int) "missing file loads as empty cache" 0
    (Scache.length (Scache.load missing));
  Sys.remove corrupt;
  Sys.remove stale

let test_cache_roundtrip_construct () =
  (* constructed entries persist like searched ones, and the two modes key
     separately: an exhaustive pass against a construct-populated cache
     must miss (and vice versa), never serve the other mode's schedules *)
  let p = Lower.run (Mmoe.create ~cfg:Mmoe.tiny ()) in
  let c = Scache.create () in
  ignore (Construct.schedule_program ~store:(Scache.store c) Device.a100 p);
  let n_construct = Scache.length c in
  Alcotest.(check bool) "construction populated the cache" true
    (n_construct > 0);
  let path = tmp "scache_construct_roundtrip.json" in
  Scache.save c path;
  let c' = Scache.load path in
  Alcotest.(check int) "constructed entries survive the round trip"
    n_construct (Scache.length c');
  ignore (Construct.schedule_program ~store:(Scache.store c') Device.a100 p);
  Alcotest.(check bool) "warm construct pass adds nothing" false
    (Scache.dirty c');
  Alcotest.(check bool) "warm construct pass hit the cache" true
    (Scache.hits c' > 0);
  (* the enumerative search against the same cache keys differently *)
  ignore (Ansor.schedule_program ~store:(Scache.store c') Device.a100 p);
  Alcotest.(check bool) "exhaustive entries key separately" true
    (Scache.length c' > n_construct);
  Sys.remove path

let test_warm_cache_skips_search () =
  let p = Lower.run (Bert.create ~cfg:Bert.tiny ()) in
  let cache = Scache.create () in
  let searches trace =
    let n = ref 0 in
    Obs.iter
      (fun s ~depth:_ -> if s.Obs.sname = "ansor-search" then incr n)
      trace;
    !n
  in
  let compile () =
    match
      Souffle.compile_result ~cfg:(Souffle.config ~sched_cache:cache ()) p
    with
    | Ok r -> r
    | Error _ -> Alcotest.fail "compile failed"
  in
  let r1, t1 = Obs.record compile in
  let r2, t2 = Obs.record compile in
  Alcotest.(check bool) "cold compile performed candidate searches" true
    (searches t1 > 0);
  Alcotest.(check int) "warm compile performed zero candidate searches" 0
    (searches t2);
  Alcotest.(check bool) "warm result identical to cold" true
    (r1.Souffle.sim = r2.Souffle.sim && r1.Souffle.prog = r2.Souffle.prog)

(* ---- scheduling retry ---- *)

let test_schedule_fault_recovers_via_retry () =
  let p = Lower.run (Mmoe.create ~cfg:Mmoe.tiny ()) in
  let result, trips =
    Faultinject.with_fault (Faultinject.Fail_pass Diag.Schedule) (fun () ->
        Souffle.compile_result p)
  in
  Alcotest.(check int) "fault tripped once" 1 trips;
  match result with
  | Error _ -> Alcotest.fail "compile failed despite the retry"
  | Ok r ->
      (* recovered at the SAME optimization level: no degradation step —
         the default constructive pass took the fault and the exhaustive
         enumeration fallback answered *)
      Alcotest.(check (list Alcotest.string)) "no degradation recorded" []
        (List.map (fun d -> d.Souffle.d_subject) r.Souffle.degraded);
      Alcotest.(check bool) "exhaustive-search retry recorded as a warning"
        true
        (List.exists
           (fun d ->
             d.Diag.pass = Diag.Schedule
             && (not (Diag.is_error d))
             && Astring_contains.contains d.Diag.message "exhaustive")
           r.Souffle.diags);
      (match Souffle.verify ~rtol:1e-3 r with
      | Ok () -> ()
      | Error m -> Alcotest.failf "retry result not preserved: %s" m)

(* ---- toposort ---- *)

let test_toposort_stable_wavefront () =
  (* regression for the memoized longest-chain rewrite: the order must stay
     the classic wavefront order — wave k holds every TE whose producers
     all sit in earlier waves, original relative order kept inside a wave *)
  let shape = [| 4 |] in
  let x = ("x", { Program.shape; dtype = Dtype.F32 }) in
  let u name input = Builder.unary ~name ~shape Expr.Relu input in
  let a = u "a" "x" and d = u "d" "x" in
  let b = u "b" "a" in
  let c = u "c" "b" in
  let scrambled =
    Program.make ~inputs:[ x ] ~tes:[ c; a; b; d ] ~outputs:[ "c"; "d" ]
  in
  let sorted = Program.toposort scrambled in
  Alcotest.(check (list Alcotest.string))
    "wavefront order, stable within waves" [ "a"; "d"; "b"; "c" ]
    (Program.te_names sorted);
  (match Program.validate sorted with
  | Ok () -> ()
  | Error m -> Alcotest.failf "sorted program invalid: %s" m);
  (* an already-sorted program re-sorts to itself *)
  Alcotest.(check (list Alcotest.string))
    "idempotent" (Program.te_names sorted)
    (Program.te_names (Program.toposort sorted));
  (* a dependency cycle is reported, not looped on *)
  let e = u "e" "f" and f = u "f" "e" in
  let cyclic = Program.make ~inputs:[ x ] ~tes:[ e; f ] ~outputs:[ "f" ] in
  match Program.toposort cyclic with
  | _ -> Alcotest.fail "cycle not detected"
  | exception Invalid_argument m ->
      Alcotest.(check bool) "cycle error names the pass" true
        (Astring_contains.contains m "Program.toposort")

let test_report_scheds_cover_transformed () =
  (* the report carries the successful attempt's schedule table, so
     downstream renderings never re-run the search *)
  let p = Lower.run (Mmoe.create ~cfg:Mmoe.tiny ()) in
  match Souffle.compile_result p with
  | Error _ -> Alcotest.fail "compile failed"
  | Ok r ->
      List.iter
        (fun (te : Te.t) ->
          Alcotest.(check bool)
            ("schedule recorded for " ^ te.Te.name)
            true
            (Hashtbl.mem r.Souffle.scheds te.Te.name))
        r.Souffle.transformed.Program.tes;
      Alcotest.(check bool) "loop nests render from the report" true
        (String.length (Souffle.te_loop_nests r) > 0)

let suite =
  [
    Alcotest.test_case "parallel search matches serial" `Quick
      test_parallel_matches_serial;
    Alcotest.test_case "construct quality parity with exhaustive" `Quick
      test_construct_quality_parity;
    Alcotest.test_case "construct parallel matches serial" `Quick
      test_construct_parallel_matches_serial;
    Alcotest.test_case "cache roundtrip of constructed entries" `Quick
      test_cache_roundtrip_construct;
    Alcotest.test_case "toposort stable wavefront order" `Quick
      test_toposort_stable_wavefront;
    Alcotest.test_case "parallel compile identical" `Quick
      test_parallel_compile_identical;
    Alcotest.test_case "cache roundtrip" `Quick test_cache_roundtrip;
    Alcotest.test_case "cache corrupt and stale files" `Quick
      test_cache_corrupt_and_stale;
    Alcotest.test_case "warm cache skips search" `Quick
      test_warm_cache_skips_search;
    Alcotest.test_case "schedule fault recovers via retry" `Quick
      test_schedule_fault_recovers_via_retry;
    Alcotest.test_case "report carries schedule table" `Quick
      test_report_scheds_cover_transformed;
  ]
