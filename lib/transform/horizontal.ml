(** Horizontal TE transformation (§6.1, Fig. 3).

    Independent TEs with identical body structure (same computation, same
    reduction space, same output shape except the leading axis) are merged
    into a single TE whose output concatenates theirs along axis 0, with
    [if_then_else] predicates selecting the per-branch inputs.  Consumers
    are rewritten to read through the concatenated tensor.

    Grouping is restricted to TEs at the same dependency depth — the
    wavefront structure the paper exploits for LSTM (Fig. 7) and sibling
    branches (QKV projections, mixture-of-expert branches, grouped
    convolution branches). *)

module SMap = Program.SMap
module SSet = Program.SSet

(* Structural template of a body with tensor names abstracted to hole ids
   (first-occurrence numbering), so that e.g. the three QKV GEMMs compare
   equal. *)
let template (e : Expr.t) : Expr.t * string list =
  let idx_of : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let names = ref [] and next = ref 0 in
  let hole name =
    let i =
      match Hashtbl.find_opt idx_of name with
      | Some i -> i
      | None ->
          let i = !next in
          Hashtbl.add idx_of name i;
          incr next;
          names := name :: !names;
          i
    in
    Fmt.str "$%d" i
  in
  let t = Expr.map_reads (fun name idxs -> Expr.Read (hole name, idxs)) e in
  (t, List.rev !names)

(* Dependency depth of every TE: longest producer chain from the inputs. *)
let depths (p : Program.t) : int SMap.t =
  List.fold_left
    (fun acc (te : Te.t) ->
      let d =
        List.fold_left
          (fun m i ->
            match SMap.find_opt i acc with
            | Some di -> max m (di + 1)
            | None -> m (* program input: depth contribution 0 *))
          0 (Te.inputs te)
      in
      SMap.add te.Te.name d acc)
    SMap.empty p.Program.tes

type group = { members : Te.t list (* >= 2, program order *) }

(* Key under which TEs may merge. *)
let group_key (depth : int SMap.t) (te : Te.t) =
  let tmpl, _ = template (Te.body_expr te) in
  let tail = Array.to_list (Array.sub te.Te.out_shape 1 (Te.rank te - 1)) in
  let rop =
    match te.Te.body with
    | Te.Compute _ -> None
    | Te.Reduce { op; axes; _ } -> Some (op, Array.to_list axes)
  in
  ( Expr.to_string tmpl,
    tail,
    rop,
    te.Te.dtype,
    SMap.find te.Te.name depth )

(* Merging arbitrarily many independent TEs would out-grow the cooperative
   launch budget the partitioner works under (the paper merges within a
   subprogram, which bounds group size the same way). *)
let max_group_members = 32

let find_groups (p : Program.t) : group list =
  let depth = depths p in
  let outputs = SSet.of_list p.Program.outputs in
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (te : Te.t) ->
      if
        Te.has_reduction te
        && Te.rank te >= 1
        && not (SSet.mem te.Te.name outputs)
      then begin
        let key = group_key depth te in
        (match Hashtbl.find_opt tbl key with
        | None ->
            Hashtbl.add tbl key [ te ];
            order := key :: !order
        | Some l -> Hashtbl.replace tbl key (te :: l))
      end)
    p.Program.tes;
  let rec chunk = function
    | [] -> []
    | l ->
        let rec take n acc = function
          | rest when n = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | x :: rest -> take (n - 1) (x :: acc) rest
        in
        let first, rest = take max_group_members [] l in
        first :: chunk rest
  in
  List.rev !order
  |> List.concat_map (fun key ->
         match Hashtbl.find_opt tbl key with
         | Some members when List.length members >= 2 ->
             chunk (List.rev members)
             |> List.filter_map (fun ms ->
                    if List.length ms >= 2 then Some { members = ms } else None)
         | _ -> [])

(* Merge the members of a group into one TE named after the first member
   with suffix "_hz"; returns (merged TE, per-member offsets). *)
let merge_group (g : group) : Te.t * (string * int) list =
  let members = g.members in
  let first = List.hd members in
  let offsets =
    let acc = ref 0 in
    List.map
      (fun (te : Te.t) ->
        let o = !acc in
        acc := !acc + te.Te.out_shape.(0);
        (te.Te.name, o))
      members
  in
  let total = List.fold_left (fun a (te : Te.t) -> a + te.Te.out_shape.(0)) 0 members in
  let out_shape = Array.copy first.Te.out_shape in
  out_shape.(0) <- total;
  let shifted_body (te : Te.t) offset =
    let body = Te.body_expr te in
    if offset = 0 then body
    else
      Expr.map_index
        (Index.subst_out (fun k ->
             if k = 0 then Index.Add (Index.Ov 0, Index.Const (-offset))
             else Index.Ov k))
        body
  in
  let rec build = function
    | [] -> assert false
    | [ (te, offset) ] -> shifted_body te offset
    | (te, offset) :: rest ->
        let bound = offset + te.Te.out_shape.(0) in
        Expr.Select
          ( Expr.Cmp (Expr.Lt, Index.Ov 0, Index.Const bound),
            shifted_body te offset,
            build rest )
  in
  let pairs = List.map2 (fun te (_, o) -> (te, o)) members offsets in
  let body = build pairs in
  let merged =
    match first.Te.body with
    | Te.Compute _ ->
        Te.compute ~tag:(first.Te.tag ^ "_hz") ~name:(first.Te.name ^ "_hz")
          ~shape:out_shape ~dtype:first.Te.dtype body
    | Te.Reduce { op; axes; _ } ->
        Te.reduce ~tag:(first.Te.tag ^ "_hz") ~name:(first.Te.name ^ "_hz")
          ~shape:out_shape ~dtype:first.Te.dtype ~op ~axes body
  in
  (merged, offsets)

type stats = { groups_merged : int; tes_eliminated : int }

(** Apply horizontal merging across the program (largest groups first is
    irrelevant: groups are disjoint by construction).  Consumers of the
    members are redirected into slices of the merged tensor; the program is
    re-toposorted at the end. *)
let apply (p : Program.t) : Program.t * stats =
  let groups = find_groups p in
  if groups = [] then (p, { groups_merged = 0; tes_eliminated = 0 })
  else begin
    (* name -> (merged name, offset) *)
    let redirect = Hashtbl.create 32 in
    let merged_tes =
      List.map
        (fun g ->
          let merged, offsets = merge_group g in
          List.iter
            (fun (name, off) ->
              Hashtbl.replace redirect name (merged.Te.name, off))
            offsets;
          (g, merged))
        groups
    in
    (* member name -> (), plus head-member name -> merged TE, so the
       rewrite pass below is O(1) per TE instead of scanning the group
       list for every member *)
    let member_names : (string, unit) Hashtbl.t = Hashtbl.create 64 in
    let merged_by_head : (string, Te.t) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (g, merged) ->
        List.iter
          (fun (te : Te.t) -> Hashtbl.replace member_names te.Te.name ())
          g.members;
        Hashtbl.replace merged_by_head (List.hd g.members).Te.name merged)
      merged_tes;
    let rewrite_reads (te : Te.t) =
      Te.map_body
        (Expr.map_reads (fun name idxs ->
             match Hashtbl.find_opt redirect name with
             | None -> Expr.Read (name, idxs)
             | Some (merged_name, off) ->
                 let idxs' =
                   match idxs with
                   | [] -> []
                   | i0 :: rest ->
                       (if off = 0 then i0
                        else Index.Add (i0, Index.Const off))
                       :: rest
                 in
                 Expr.Read (merged_name, idxs')))
        te
    in
    let tes =
      List.concat_map
        (fun (te : Te.t) ->
          if Hashtbl.mem member_names te.Te.name then begin
            (* replace the first member of each group by its merged TE *)
            match Hashtbl.find_opt merged_by_head te.Te.name with
            | Some merged ->
                (* a merged TE may itself read members of other groups *)
                [ rewrite_reads merged ]
            | None -> []
          end
          else [ rewrite_reads te ])
        p.Program.tes
    in
    let p' = Program.toposort { p with Program.tes } in
    ( p',
      {
        groups_merged = List.length groups;
        tes_eliminated =
          List.fold_left
            (fun a (g, _) -> a + List.length g.members - 1)
            0 merged_tes;
      } )
  end

(** {!apply} as a total function: fault-injection aware, exceptions
    converted to a typed diagnostic for the degradation ladder. *)
let apply_result (p : Program.t) : (Program.t * stats, Diag.t) result =
  Obs.span "horizontal" @@ fun () ->
  Diag.guard Diag.Horizontal (fun () ->
      Faultinject.trip Diag.Horizontal;
      let ((_, stats) as r) = apply p in
      Obs.annotate "groups_merged" (string_of_int stats.groups_merged);
      Obs.annotate "tes_eliminated" (string_of_int stats.tes_eliminated);
      r)
