(** Textual serialization of model graphs — the stand-in for the paper's
    TensorFlow/ONNX front-end.  A graph round-trips through a line-oriented
    format:

    {v
    # comment
    input x f32 1x6
    input w1 f32 6x5
    node h = matmul x w1
    node a = relu h
    node c = conv2d k3 s1 p1 g1 x w
    output a
    v}

    Every operator of {!Op.t} has a keyword plus space-separated attributes;
    [parse] is total over the grammar and reports the offending line on
    error. *)

let render_dtype = Dtype.to_string

let parse_dtype = function
  | "f16" -> Ok Dtype.F16
  | "f32" -> Ok Dtype.F32
  | "i32" -> Ok Dtype.I32
  | "bool" -> Ok Dtype.Bool
  | s -> Error ("unknown dtype " ^ s)

let render_shape (s : Shape.t) =
  if Array.length s = 0 then "scalar"
  else String.concat "x" (List.map string_of_int (Array.to_list s))

let parse_shape s =
  if s = "scalar" then Ok [||]
  else
    try
      Ok (Array.of_list (List.map int_of_string (String.split_on_char 'x' s)))
    with _ -> Error ("bad shape " ^ s)

let render_ints (a : int array) =
  String.concat "," (List.map string_of_int (Array.to_list a))

let parse_ints s =
  try Ok (Array.of_list (List.map int_of_string (String.split_on_char ',' s)))
  with _ -> Error ("bad int list " ^ s)

(* operator keyword + attribute tokens (inputs are appended separately) *)
let render_op (op : Op.t) : string =
  match op with
  | Op.Matmul -> "matmul"
  | Op.Matmul_nt -> "matmul_nt"
  | Op.Batch_matmul -> "batch_matmul"
  | Op.Batch_matmul_nt -> "batch_matmul_nt"
  | Op.Gemv -> "gemv"
  | Op.Conv2d { kernel; stride; padding; groups } ->
      Fmt.str "conv2d k%d s%d p%d g%d" kernel stride padding groups
  | Op.Depthwise_conv2d { kernel; stride; padding } ->
      Fmt.str "dwconv2d k%d s%d p%d" kernel stride padding
  | Op.Pool2d { kind; kernel; stride; padding } ->
      Fmt.str "%s k%d s%d p%d"
        (match kind with Op.Max_pool -> "maxpool" | Op.Avg_pool -> "avgpool")
        kernel stride padding
  | Op.Global_avg_pool -> "global_avg_pool"
  | Op.Unary u -> "unary " ^ Expr.unop_to_string u
  | Op.Affine { scale; shift } -> Fmt.str "affine %h %h" scale shift
  | Op.Binary b -> "binary " ^ Expr.binop_to_string b
  | Op.Rowwise b -> "rowwise " ^ Expr.binop_to_string b
  | Op.Bias_add -> "bias_add"
  | Op.Scale c -> Fmt.str "mulconst %h" c
  | Op.Scale_channels -> "scale_channels"
  | Op.Bias_channels -> "bias_channels"
  | Op.Softmax -> "softmax"
  | Op.Causal_mask -> "causal_mask"
  | Op.Layernorm { eps } -> Fmt.str "layernorm %h" eps
  | Op.Reduce { op; axis } ->
      Fmt.str "reduce %s %d" (Te.reduce_op_to_string op) axis
  | Op.Reshape s -> "reshape " ^ render_shape s
  | Op.Transpose p -> "transpose " ^ render_ints p
  | Op.Slice { starts; sizes } ->
      Fmt.str "slice %s %s" (render_ints starts) (render_ints sizes)
  | Op.Strided_slice { axis; start; stride; size } ->
      Fmt.str "strided_slice %d %d %d %d" axis start stride size
  | Op.Concat { axis } -> Fmt.str "concat %d" axis

let parse_unop = function
  | "neg" -> Ok Expr.Neg | "exp" -> Ok Expr.Exp | "log" -> Ok Expr.Log
  | "sqrt" -> Ok Expr.Sqrt | "rsqrt" -> Ok Expr.Rsqrt
  | "tanh" -> Ok Expr.Tanh | "sigmoid" -> Ok Expr.Sigmoid
  | "relu" -> Ok Expr.Relu | "erf" -> Ok Expr.Erf | "abs" -> Ok Expr.Abs
  | "recip" -> Ok Expr.Recip | "step" -> Ok Expr.Step
  | s -> Error ("unknown unary op " ^ s)

let parse_binop = function
  | "+" -> Ok Expr.Add | "-" -> Ok Expr.Sub | "*" -> Ok Expr.Mul
  | "/" -> Ok Expr.Div | "max" -> Ok Expr.Max | "min" -> Ok Expr.Min
  | "pow" -> Ok Expr.Pow
  | s -> Error ("unknown binary op " ^ s)

let parse_reduce_op = function
  | "sum" -> Ok Te.Sum | "max" -> Ok Te.Max | "min" -> Ok Te.Min
  | "prod" -> Ok Te.Prod
  | s -> Error ("unknown reduce op " ^ s)

let ( let* ) = Result.bind

let parse_attr_int ~(prefix : char) s =
  if String.length s >= 2 && s.[0] = prefix then
    try Ok (int_of_string (String.sub s 1 (String.length s - 1)))
    with _ -> Error ("bad attribute " ^ s)
  else Error (Fmt.str "expected %c<int>, got %s" prefix s)

let parse_float s =
  try Ok (float_of_string s) with _ -> Error ("bad float " ^ s)

let parse_int s =
  try Ok (int_of_string s) with _ -> Error ("bad int " ^ s)

(* parse the op keyword and its attribute tokens; returns op and how many
   tokens were consumed *)
let parse_op (tokens : string list) : (Op.t * string list, string) result =
  match tokens with
  | [] -> Error "missing operator"
  | kw :: rest -> (
      match (kw, rest) with
      | "matmul", rest -> Ok (Op.Matmul, rest)
      | "matmul_nt", rest -> Ok (Op.Matmul_nt, rest)
      | "batch_matmul", rest -> Ok (Op.Batch_matmul, rest)
      | "batch_matmul_nt", rest -> Ok (Op.Batch_matmul_nt, rest)
      | "gemv", rest -> Ok (Op.Gemv, rest)
      | "conv2d", k :: s :: p :: g :: rest ->
          let* kernel = parse_attr_int ~prefix:'k' k in
          let* stride = parse_attr_int ~prefix:'s' s in
          let* padding = parse_attr_int ~prefix:'p' p in
          let* groups = parse_attr_int ~prefix:'g' g in
          Ok (Op.Conv2d { kernel; stride; padding; groups }, rest)
      | "dwconv2d", k :: s :: p :: rest ->
          let* kernel = parse_attr_int ~prefix:'k' k in
          let* stride = parse_attr_int ~prefix:'s' s in
          let* padding = parse_attr_int ~prefix:'p' p in
          Ok (Op.Depthwise_conv2d { kernel; stride; padding }, rest)
      | ("maxpool" | "avgpool"), k :: s :: p :: rest ->
          let* kernel = parse_attr_int ~prefix:'k' k in
          let* stride = parse_attr_int ~prefix:'s' s in
          let* padding = parse_attr_int ~prefix:'p' p in
          let kind = if kw = "maxpool" then Op.Max_pool else Op.Avg_pool in
          Ok (Op.Pool2d { kind; kernel; stride; padding }, rest)
      | "global_avg_pool", rest -> Ok (Op.Global_avg_pool, rest)
      | "unary", u :: rest ->
          let* u = parse_unop u in
          Ok (Op.Unary u, rest)
      | "affine", a :: b :: rest ->
          let* scale = parse_float a in
          let* shift = parse_float b in
          Ok (Op.Affine { scale; shift }, rest)
      | "binary", b :: rest ->
          let* b = parse_binop b in
          Ok (Op.Binary b, rest)
      | "rowwise", b :: rest ->
          let* b = parse_binop b in
          Ok (Op.Rowwise b, rest)
      | "bias_add", rest -> Ok (Op.Bias_add, rest)
      | "mulconst", c :: rest ->
          let* c = parse_float c in
          Ok (Op.Scale c, rest)
      | "scale_channels", rest -> Ok (Op.Scale_channels, rest)
      | "bias_channels", rest -> Ok (Op.Bias_channels, rest)
      | "softmax", rest -> Ok (Op.Softmax, rest)
      | "causal_mask", rest -> Ok (Op.Causal_mask, rest)
      | "layernorm", e :: rest ->
          let* eps = parse_float e in
          Ok (Op.Layernorm { eps }, rest)
      | "reduce", op :: axis :: rest ->
          let* op = parse_reduce_op op in
          let* axis = parse_int axis in
          Ok (Op.Reduce { op; axis }, rest)
      | "reshape", s :: rest ->
          let* s = parse_shape s in
          Ok (Op.Reshape s, rest)
      | "transpose", p :: rest ->
          let* p = parse_ints p in
          Ok (Op.Transpose p, rest)
      | "slice", st :: sz :: rest ->
          let* starts = parse_ints st in
          let* sizes = parse_ints sz in
          Ok (Op.Slice { starts; sizes }, rest)
      | "strided_slice", a :: b :: c :: d :: rest ->
          let* axis = parse_int a in
          let* start = parse_int b in
          let* stride = parse_int c in
          let* size = parse_int d in
          Ok (Op.Strided_slice { axis; start; stride; size }, rest)
      | "concat", a :: rest ->
          let* axis = parse_int a in
          Ok (Op.Concat { axis }, rest)
      | kw, _ -> Error ("unknown or malformed operator " ^ kw))

(** Render a graph to the textual format. *)
let to_string (g : Dgraph.t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# souffle graph v1\n";
  List.iter
    (fun (name, (i : Program.tensor_info)) ->
      Buffer.add_string buf
        (Fmt.str "input %s %s %s\n" name (render_dtype i.Program.dtype)
           (render_shape i.Program.shape)))
    g.Dgraph.inputs;
  List.iter
    (fun (n : Dgraph.node) ->
      Buffer.add_string buf
        (Fmt.str "node %s = %s %s\n" n.Dgraph.name (render_op n.Dgraph.op)
           (String.concat " " n.Dgraph.inputs)))
    g.Dgraph.nodes;
  List.iter
    (fun o -> Buffer.add_string buf (Fmt.str "output %s\n" o))
    g.Dgraph.outputs;
  Buffer.contents buf

(** Parse the textual format back into a graph; validates shapes. *)
let of_string (s : string) : (Dgraph.t, string) result =
  let lines = String.split_on_char '\n' s in
  let inputs = ref [] and nodes = ref [] and outputs = ref [] in
  let exception Bad of string in
  try
    List.iteri
      (fun lineno line ->
        let fail m = raise (Bad (Fmt.str "line %d: %s" (lineno + 1) m)) in
        let line = String.trim line in
        if line = "" || line.[0] = '#' then ()
        else begin
          let tokens =
            String.split_on_char ' ' line |> List.filter (fun t -> t <> "")
          in
          match tokens with
          | "input" :: name :: dt :: shape :: [] -> (
              match (parse_dtype dt, parse_shape shape) with
              | Ok dtype, Ok shape ->
                  inputs := (name, { Program.shape; dtype }) :: !inputs
              | Error m, _ | _, Error m -> fail m)
          | "node" :: name :: "=" :: rest -> (
              match parse_op rest with
              | Error m -> fail m
              | Ok (op, ins) ->
                  if ins = [] then fail "node needs at least one input";
                  nodes := { Dgraph.name; op; inputs = ins } :: !nodes)
          | [ "output"; name ] -> outputs := name :: !outputs
          | _ -> fail ("cannot parse: " ^ line)
        end)
      lines;
    let g =
      {
        Dgraph.inputs = List.rev !inputs;
        nodes = List.rev !nodes;
        outputs = List.rev !outputs;
      }
    in
    match Dgraph.validate g with
    | Ok () -> Ok g
    | Error m -> Error ("invalid graph: " ^ m)
  with Bad m -> Error m

let to_file (g : Dgraph.t) path =
  let oc = open_out path in
  output_string oc (to_string g);
  close_out oc

let of_file path : (Dgraph.t, string) result =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
