(** The model zoo of Table 2, by name, at full evaluation size and at
    interpreter-friendly tiny size. *)

type entry = {
  name : string;
  full : unit -> Dgraph.t;
  tiny : unit -> Dgraph.t;
  description : string;
}

let all : entry list =
  [
    {
      name = "BERT";
      full = (fun () -> Bert.create ());
      tiny = (fun () -> Bert.create ~cfg:Bert.tiny ());
      description = "BERT-base, 12 layers, SQuAD seq 384, FP16";
    };
    {
      name = "ResNeXt";
      full = (fun () -> Resnext.create ());
      tiny = (fun () -> Resnext.create ~cfg:Resnext.tiny ());
      description = "ResNeXt-101 32x4d, explicit branches, ImageNet";
    };
    {
      name = "LSTM";
      full = (fun () -> Lstm.create ());
      tiny = (fun () -> Lstm.create ~cfg:Lstm.tiny ());
      description = "10-cell stacked LSTM, 100 steps, hidden 256";
    };
    {
      name = "EfficientNet";
      full = (fun () -> Efficientnet.create ());
      tiny = (fun () -> Efficientnet.create ~cfg:Efficientnet.tiny ());
      description = "EfficientNet-b0, MBConv + SE, ImageNet";
    };
    {
      name = "SwinTrans.";
      full = (fun () -> Swin.create ());
      tiny = (fun () -> Swin.create ~cfg:Swin.tiny ());
      description = "Swin-B, patch 4, window 7, ImageNet";
    };
    {
      name = "MMoE";
      full = (fun () -> Mmoe.create ());
      tiny = (fun () -> Mmoe.create ~cfg:Mmoe.tiny ());
      description = "Multi-gate mixture-of-experts, 8 experts, 2 tasks";
    };
  ]

let find name =
  List.find_opt
    (fun e -> String.lowercase_ascii e.name = String.lowercase_ascii name)
    all

let names = List.map (fun e -> e.name) all
