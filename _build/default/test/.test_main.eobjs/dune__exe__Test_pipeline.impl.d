test/test_pipeline.ml: Alcotest Astring_contains Bert Counters Device Expr Fmt Horizontal List Lower Lstm Mmoe Program QCheck QCheck_alcotest Sim Souffle Te Test_transform Zoo
