(** CUDA occupancy calculator: how many blocks of a kernel fit one SM, and
    therefore how many can be resident in one wave — the quantity §5.4's
    partitioning constraint compares against a subprogram's grid. *)

type usage = {
  threads_per_block : int;
  smem_per_block : int;  (** bytes *)
  regs_per_thread : int;
}

val blocks_per_sm : Device.t -> usage -> int

val max_blocks_per_wave : Device.t -> usage -> int
(** Blocks resident on the whole device at once — the cooperative-launch
    bound. *)

val waves : Device.t -> usage -> grid_blocks:int -> int

val occupancy : Device.t -> usage -> float
(** Fraction of SM thread slots occupied (what Nsight reports). *)
