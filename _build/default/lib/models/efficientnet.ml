(** EfficientNet-b0 (Tan & Le) — the configuration of the source publication
    (Table 2): MBConv inverted-bottleneck blocks with depthwise convolutions,
    squeeze-and-excitation and swish activations, batch 1, FP32, ImageNet
    input.

    [sub_module] builds the inverted-bottleneck micro-benchmark of
    Fig. 5/Fig. 6 (M0..M9): the block pattern "existing DNN frameworks fail
    to optimize optimally". *)

open Dgraph

type block_cfg = {
  cin : int;
  cout : int;
  expand : int;     (** expansion ratio; 1 = no expand conv *)
  kernel : int;
  stride : int;
  repeat : int;
}

type config = {
  image : int;
  stem : int;
  blocks : block_cfg list;
  head : int;
  num_classes : int;
}

(* the published b0 layout *)
let b0 =
  {
    image = 224;
    stem = 32;
    blocks =
      [
        { cin = 32; cout = 16; expand = 1; kernel = 3; stride = 1; repeat = 1 };
        { cin = 16; cout = 24; expand = 6; kernel = 3; stride = 2; repeat = 2 };
        { cin = 24; cout = 40; expand = 6; kernel = 5; stride = 2; repeat = 2 };
        { cin = 40; cout = 80; expand = 6; kernel = 3; stride = 2; repeat = 3 };
        { cin = 80; cout = 112; expand = 6; kernel = 5; stride = 1; repeat = 3 };
        { cin = 112; cout = 192; expand = 6; kernel = 5; stride = 2; repeat = 4 };
        { cin = 192; cout = 320; expand = 6; kernel = 3; stride = 1; repeat = 1 };
      ];
    head = 1280;
    num_classes = 1000;
  }

let tiny =
  {
    image = 16;
    stem = 4;
    blocks =
      [
        { cin = 4; cout = 4; expand = 1; kernel = 3; stride = 1; repeat = 1 };
        { cin = 4; cout = 8; expand = 2; kernel = 3; stride = 2; repeat = 1 };
      ];
    head = 16;
    num_classes = 8;
  }

let conv_bn (b : B.builder) ~prefix ~cin ~cout ~kernel ~stride ~padding x =
  let w = B.input b (prefix ^ "_w") [| cout; cin; kernel; kernel |] in
  let bias = B.input b (prefix ^ "_bnb") [| cout |] in
  let c =
    B.add b ~name:(prefix ^ "_conv")
      (Op.Conv2d { kernel; stride; padding; groups = 1 })
      [ x; w ]
  in
  B.add b ~name:(prefix ^ "_bn") Op.Bias_channels [ c; bias ]

let swish (b : B.builder) ~prefix x =
  let s = B.add b ~name:(prefix ^ "_sig") (Op.Unary Expr.Sigmoid) [ x ] in
  B.add b ~name:(prefix ^ "_swish") (Op.Binary Expr.Mul) [ x; s ]

(* One MBConv block: expand 1x1 + swish, depthwise + swish, SE, project. *)
let mbconv (b : B.builder) ~prefix ~cin ~cout ~expand ~kernel ~stride x :
    string =
  let mid = cin * expand in
  let expanded =
    if expand = 1 then x
    else
      swish b ~prefix:(prefix ^ "_exp")
        (conv_bn b ~prefix:(prefix ^ "_exp") ~cin ~cout:mid ~kernel:1
           ~stride:1 ~padding:0 x)
  in
  let dw_w = B.input b (prefix ^ "_dw_w") [| mid; 1; kernel; kernel |] in
  let dw_bn = B.input b (prefix ^ "_dw_bnb") [| mid |] in
  let dw =
    B.add b ~name:(prefix ^ "_dwconv")
      (Op.Depthwise_conv2d { kernel; stride; padding = kernel / 2 })
      [ expanded; dw_w ]
  in
  let dw = B.add b ~name:(prefix ^ "_dw_bn") Op.Bias_channels [ dw; dw_bn ] in
  let dw = swish b ~prefix:(prefix ^ "_dw") dw in
  (* squeeze and excitation: pool -> fc -> swish -> fc -> sigmoid -> scale *)
  let se_dim = max 1 (cin / 4) in
  let pooled = B.add b ~name:(prefix ^ "_se_pool") Op.Global_avg_pool [ dw ] in
  let w1 = B.input b (prefix ^ "_se_w1") [| mid; se_dim |] in
  let b1 = B.input b (prefix ^ "_se_b1") [| se_dim |] in
  let r = B.add b ~name:(prefix ^ "_se_fc1") Op.Matmul [ pooled; w1 ] in
  let r = B.add b ~name:(prefix ^ "_se_fc1b") Op.Bias_add [ r; b1 ] in
  let r = swish b ~prefix:(prefix ^ "_se") r in
  let w2 = B.input b (prefix ^ "_se_w2") [| se_dim; mid |] in
  let b2 = B.input b (prefix ^ "_se_b2") [| mid |] in
  let s = B.add b ~name:(prefix ^ "_se_fc2") Op.Matmul [ r; w2 ] in
  let s = B.add b ~name:(prefix ^ "_se_fc2b") Op.Bias_add [ s; b2 ] in
  let s = B.add b ~name:(prefix ^ "_se_gate") (Op.Unary Expr.Sigmoid) [ s ] in
  let scaled = B.add b ~name:(prefix ^ "_se_scale") Op.Scale_channels [ dw; s ] in
  (* projection back down, linear (no activation) *)
  let proj =
    conv_bn b ~prefix:(prefix ^ "_proj") ~cin:mid ~cout ~kernel:1 ~stride:1
      ~padding:0 scaled
  in
  if stride = 1 && cin = cout then
    B.add b ~name:(prefix ^ "_res") (Op.Binary Expr.Add) [ proj; x ]
  else proj

let create ?(cfg = b0) () : Dgraph.t =
  let b = B.create () in
  let x = B.input b "image" [| 1; 3; cfg.image; cfg.image |] in
  let stem =
    swish b ~prefix:"stem"
      (conv_bn b ~prefix:"stem" ~cin:3 ~cout:cfg.stem ~kernel:3 ~stride:2
         ~padding:1 x)
  in
  let out = ref stem in
  List.iteri
    (fun bi (bc : block_cfg) ->
      for r = 0 to bc.repeat - 1 do
        let cin = if r = 0 then bc.cin else bc.cout in
        let stride = if r = 0 then bc.stride else 1 in
        out :=
          mbconv b
            ~prefix:(Fmt.str "b%d_%d" bi r)
            ~cin ~cout:bc.cout ~expand:bc.expand ~kernel:bc.kernel ~stride
            !out
      done)
    cfg.blocks;
  let last_c = (List.nth cfg.blocks (List.length cfg.blocks - 1)).cout in
  let head =
    swish b ~prefix:"head"
      (conv_bn b ~prefix:"head" ~cin:last_c ~cout:cfg.head ~kernel:1
         ~stride:1 ~padding:0 !out)
  in
  let gap = B.add b ~name:"gap" Op.Global_avg_pool [ head ] in
  let wfc = B.input b "fc_w" [| cfg.head; cfg.num_classes |] in
  let logits = B.add b ~name:"logits" Op.Matmul [ gap; wfc ] in
  B.finish b ~outputs:[ logits ]

(** The Fig. 5/6 micro-benchmark: one MBConv sub-module.  M0..M9 are the
    distinct (channels, resolution) configurations the block repeats at
    through the network. *)
let sub_module ~cin ~cout ~expand ~kernel ~stride ~hw : Dgraph.t =
  let b = B.create () in
  let x = B.input b "x" [| 1; cin; hw; hw |] in
  let out = mbconv b ~prefix:"m" ~cin ~cout ~expand ~kernel ~stride x in
  B.finish b ~outputs:[ out ]

(** The ten sub-module instances (M0..M9) used in Fig. 6. *)
let sub_modules : (string * Dgraph.t) list =
  List.mapi
    (fun i (cin, cout, expand, kernel, stride, hw) ->
      (Fmt.str "M%d" i, sub_module ~cin ~cout ~expand ~kernel ~stride ~hw))
    [
      (32, 16, 1, 3, 1, 112);
      (16, 24, 6, 3, 2, 112);
      (24, 24, 6, 3, 1, 56);
      (24, 40, 6, 5, 2, 56);
      (40, 80, 6, 3, 2, 28);
      (80, 80, 6, 3, 1, 14);
      (80, 112, 6, 5, 1, 14);
      (112, 192, 6, 5, 2, 14);
      (192, 192, 6, 5, 1, 7);
      (192, 320, 6, 3, 1, 7);
    ]
