lib/transform/vertical.ml: Array Expr Hashtbl Index List Program Te
