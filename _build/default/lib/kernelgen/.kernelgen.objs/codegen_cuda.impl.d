lib/kernelgen/codegen_cuda.ml: Fmt Kernel_ir List
