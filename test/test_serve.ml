(* Serving-layer tests: workload determinism, scheduler policies, and the
   multi-stream contention model's sanity contracts (fixed seeds
   throughout):

   - one stream reproduces the solo simulated latency exactly,
   - per-request service time is monotonically non-decreasing in the
     concurrency bound,
   - throughput saturates once the device's SMs are covered instead of
     growing without bound,
   - two identical runs produce byte-identical outcomes. *)

let dev = Device.a100

let ok_or_fail what = function
  | Ok r -> r
  | Error ds ->
      Alcotest.failf "%s: %s" what
        (String.concat "; " (List.map Diag.to_string ds))

let tiny_report (e : Zoo.entry) : Souffle.report =
  ok_or_fail e.Zoo.name (Souffle.compile_result (Lower.run (e.Zoo.tiny ())))

let artifact_of ~model (r : Souffle.report) : Scheduler.artifact =
  Scheduler.artifact_of_prog dev ~model
    ~degraded:(List.length r.Souffle.degraded)
    r.Souffle.prog

let run_batch ?(policy = Scheduler.Fifo) ?queue_cap ?drop ?retries ?backoff_us
    ?deadline_us ?chaos ?max_batch ~streams artifacts reqs =
  Scheduler.run dev
    (Scheduler.cfg ?queue_cap ?drop ?retries ?backoff_us ?deadline_us ?chaos
       ?max_batch ~policy ~max_streams:streams ())
    ~artifacts reqs

(* n identical zero-time arrivals of one model *)
let batch_of model n =
  Workload.generate ~seed:3 ~rate_rps:0. ~requests:n [ (model, 1.) ]

(* one busy compute kernel that demands half the device's SMs (216 blocks
   at 4 blocks/SM residency = 54 SMs) with a stage that dwarfs the launch
   latency, so two streams cover the machine and further concurrency only
   stretches execution *)
let synthetic_artifact () : Scheduler.artifact =
  let k =
    Kernel_ir.kernel ~name:"busy" ~grid_blocks:216 ~threads_per_block:256
      ~smem_per_block:(40 * 1024)
      [ Kernel_ir.stage ~label:"s0" [ Kernel_ir.Fma { flops = 500_000_000 } ] ]
  in
  Scheduler.artifact_of_prog dev ~model:"busy"
    { Kernel_ir.pname = "busy"; kernels = [ k ] }

(* ---- contention-model sanity ---- *)

let test_single_stream_equals_solo () =
  List.iter
    (fun (e : Zoo.entry) ->
      let r = tiny_report e in
      let solo = r.Souffle.sim.Sim.total.Counters.time_us in
      let a = artifact_of ~model:e.Zoo.name r in
      Alcotest.(check bool)
        (e.Zoo.name ^ ": artifact solo latency is the Sim latency")
        true
        (a.Scheduler.art_solo_us = solo);
      let o = run_batch ~streams:1 [ a ] (batch_of e.Zoo.name 1) in
      match o.Scheduler.o_completed with
      | [ c ] ->
          Alcotest.(check bool)
            (e.Zoo.name ^ ": served service time is the solo Sim latency")
            true
            (c.Scheduler.c_service_us = solo);
          Alcotest.(check bool)
            (e.Zoo.name ^ ": end-to-end latency is the solo Sim latency")
            true
            (Scheduler.latency_us c = solo)
      | cs -> Alcotest.failf "expected 1 completion, got %d" (List.length cs))
    Zoo.all

let test_service_monotone_in_concurrency () =
  let a = synthetic_artifact () in
  let reqs = batch_of "busy" 16 in
  let mean_service streams =
    (Serve_report.summarize (run_batch ~streams [ a ] reqs))
      .Serve_report.s_mean_service_ms
  in
  let rec check prev = function
    | [] -> ()
    | c :: rest ->
        let m = mean_service c in
        Alcotest.(check bool)
          (Fmt.str "mean service at %d streams >= at fewer" c)
          true
          (m >= prev -. 1e-9);
        check m rest
  in
  check (mean_service 1) [ 2; 4; 8; 16 ]

let test_throughput_saturates () =
  let a = synthetic_artifact () in
  let reqs = batch_of "busy" 32 in
  let thr streams =
    (Serve_report.summarize (run_batch ~streams [ a ] reqs))
      .Serve_report.s_throughput_rps
  in
  let t1 = thr 1 and t4 = thr 4 and t8 = thr 8 and t16 = thr 16 in
  Alcotest.(check bool) "4 streams at least double serial throughput" true
    (t4 >= 2. *. t1);
  Alcotest.(check bool) "throughput saturates past full SM coverage" true
    (t16 <= 1.05 *. t8);
  Alcotest.(check bool) "saturated throughput still beats serial 2x" true
    (t8 >= 2. *. t1)

let test_identical_runs_byte_identical () =
  let outcome () =
    let arts =
      List.map
        (fun name ->
          artifact_of ~model:name (tiny_report (Option.get (Zoo.find name))))
        [ "bert"; "mmoe"; "lstm" ]
    in
    let reqs =
      Workload.generate ~seed:9 ~rate_rps:120000. ~requests:24
        [ ("BERT", 2.); ("MMoE", 1.); ("LSTM", 1.) ]
    in
    Jsonlite.to_string
      (Serve_report.outcome_json ~label:"determinism"
         (run_batch ~policy:Scheduler.Sel ~streams:4 arts reqs))
  in
  Alcotest.(check string) "byte-identical outcomes" (outcome ()) (outcome ())

(* ---- scheduler policies ---- *)

let test_sel_prefers_shortest () =
  let bert = artifact_of ~model:"BERT" (tiny_report (Option.get (Zoo.find "bert"))) in
  let mmoe = artifact_of ~model:"MMoE" (tiny_report (Option.get (Zoo.find "mmoe"))) in
  Alcotest.(check bool) "mmoe is the shorter model" true
    (mmoe.Scheduler.art_solo_us < bert.Scheduler.art_solo_us);
  let reqs =
    [
      { Workload.rq_id = 0; rq_model = "BERT"; rq_arrival_us = 0.; rq_slo_us = None; rq_gen = 0 };
      { Workload.rq_id = 1; rq_model = "MMoE"; rq_arrival_us = 0.; rq_slo_us = None; rq_gen = 0 };
    ]
  in
  let first policy =
    match
      (run_batch ~policy ~streams:1 [ bert; mmoe ] reqs).Scheduler.o_completed
    with
    | c :: _ -> c.Scheduler.c_model
    | [] -> Alcotest.fail "no completions"
  in
  Alcotest.(check string) "fifo serves arrival order" "BERT"
    (first Scheduler.Fifo);
  Alcotest.(check string) "sel serves the shortest first" "MMoE"
    (first Scheduler.Sel)

let test_unknown_model_rejected () =
  let bert = artifact_of ~model:"BERT" (tiny_report (Option.get (Zoo.find "bert"))) in
  let reqs =
    [ { Workload.rq_id = 0; rq_model = "nope"; rq_arrival_us = 0.; rq_slo_us = None; rq_gen = 0 } ]
  in
  Alcotest.check_raises "unknown model"
    (Invalid_argument "Scheduler.run: no artifact for model nope") (fun () ->
      ignore (run_batch ~streams:1 [ bert ] reqs))

(* ---- workload generator ---- *)

let test_parse_mix () =
  (match Workload.parse_mix "bert=2, mmoe" with
  | Ok [ ("bert", 2.); ("mmoe", 1.) ] -> ()
  | Ok m ->
      Alcotest.failf "unexpected mix (%d entries)" (List.length m)
  | Error m -> Alcotest.failf "parse failed: %s" m);
  Alcotest.(check bool) "bad weight rejected" true
    (Result.is_error (Workload.parse_mix "bert=-1"));
  Alcotest.(check bool) "empty mix rejected" true
    (Result.is_error (Workload.parse_mix "  "))

let test_workload_deterministic_and_sorted () =
  let gen () =
    Workload.generate ~seed:5 ~rate_rps:1000. ~requests:64
      [ ("a", 1.); ("b", 3.) ]
  in
  let w1 = gen () and w2 = gen () in
  Alcotest.(check bool) "same seed, same workload" true (w1 = w2);
  let rec sorted = function
    | a :: (b : Workload.request) :: rest ->
        a.Workload.rq_arrival_us <= b.Workload.rq_arrival_us && sorted (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "arrivals non-decreasing" true (sorted w1);
  let batch = Workload.generate ~seed:5 ~rate_rps:0. ~requests:8 [ ("a", 1.) ] in
  Alcotest.(check bool) "zero rate means a closed batch at t=0" true
    (List.for_all (fun (r : Workload.request) -> r.Workload.rq_arrival_us = 0.) batch)

(* ---- compile-once artifact store ---- *)

let test_artifacts_compile_once () =
  let store = Souffle.Artifacts.create () in
  let compiles = ref 0 in
  let gen () =
    incr compiles;
    Lower.run (Mmoe.create ~cfg:Mmoe.tiny ())
  in
  let r1 = ok_or_fail "first get" (Souffle.Artifacts.get store ~name:"MMoE" gen) in
  let r2 = ok_or_fail "second get" (Souffle.Artifacts.get store ~name:"mmoe" gen) in
  Alcotest.(check int) "compiled exactly once" 1 !compiles;
  Alcotest.(check bool) "same report returned" true (r1 == r2);
  Alcotest.(check int) "one entry stored" 1 (Souffle.Artifacts.size store);
  (* a different level is a different artifact *)
  let r3 =
    ok_or_fail "v0 get"
      (Souffle.Artifacts.get store
         ~cfg:(Souffle.config ~level:Souffle.V0 ())
         ~name:"mmoe" gen)
  in
  Alcotest.(check int) "second level compiles again" 2 !compiles;
  Alcotest.(check bool) "distinct reports per level" true (not (r1 == r3));
  Alcotest.(check int) "two entries stored" 2 (Souffle.Artifacts.size store)

(* ---- fault tolerance: chaos, deadlines, retries, shedding ---- *)

(* a kernel light enough (8 blocks -> 2 SMs) that several streams run
   entirely uncontended: stretch stays 1, so one stream's fate cannot move
   another stream's finish time *)
let light_artifact () : Scheduler.artifact =
  let k =
    Kernel_ir.kernel ~name:"light" ~grid_blocks:8 ~threads_per_block:256
      ~smem_per_block:(4 * 1024)
      [ Kernel_ir.stage ~label:"s0" [ Kernel_ir.Fma { flops = 50_000_000 } ] ]
  in
  Scheduler.artifact_of_prog dev ~model:"light"
    { Kernel_ir.pname = "light"; kernels = [ k ] }

let outcome_bytes o = Jsonlite.to_string (Serve_report.outcome_json o)

let test_zero_fault_chaos_is_baseline () =
  let a = synthetic_artifact () in
  let reqs = batch_of "busy" 12 in
  let base = run_batch ~streams:4 [ a ] reqs in
  let chaos = run_batch ~streams:4 ~chaos:Faultinject.chaos_zero [ a ] reqs in
  Alcotest.(check string) "zero-fault chaos run is byte-identical to baseline"
    (outcome_bytes base) (outcome_bytes chaos)

let test_fault_retries_without_perturbing_others () =
  let a = light_artifact () in
  let stages = [| 1 |] in
  let n = 4 in
  (* pick a chaos seed whose plan faults exactly one request's first
     attempt and leaves every retry clean — derivable without running the
     engine because plans depend only on (seed, request, attempt) *)
  let plan c rq attempt = Faultinject.chaos_plan c ~rq_id:rq ~attempt ~stages in
  let chaos =
    let rec search seed =
      if seed > 5000 then Alcotest.fail "no suitable chaos seed found"
      else
        let c =
          { Faultinject.chaos_zero with
            Faultinject.ch_seed = seed;
            ch_fault_rate = 0.3 }
        in
        let faulted_first =
          List.filter
            (fun rq ->
              List.exists
                (function Faultinject.Kernel_fault _ -> true | _ -> false)
                (plan c rq 0))
            (List.init n Fun.id)
        in
        let retry_clean rq = plan c rq 1 = [] in
        match faulted_first with
        | [ rq ] when retry_clean rq -> (c, rq)
        | _ -> search (seed + 1)
    in
    search 0
  in
  let c, faulted_rq = chaos in
  let reqs = batch_of "light" n in
  let base = run_batch ~streams:n [ a ] reqs in
  let out = run_batch ~streams:n ~retries:1 ~chaos:c [ a ] reqs in
  Alcotest.(check int) "every request still completes" n
    (List.length out.Scheduler.o_completed);
  Alcotest.(check int) "no request failed" 0 (List.length out.Scheduler.o_failed);
  Alcotest.(check int) "exactly one aborted attempt" 1
    (List.length out.Scheduler.o_aborted);
  Alcotest.(check bool) "the fault tripped the runtime registry" true
    (Faultinject.Runtime.total_trips () >= 1);
  let finish o rq =
    match
      List.find_opt
        (fun (c : Scheduler.completed) -> c.Scheduler.c_req.Workload.rq_id = rq)
        o.Scheduler.o_completed
    with
    | Some c -> c.Scheduler.c_finish_us
    | None -> Alcotest.failf "request %d did not complete" rq
  in
  List.iter
    (fun rq ->
      if rq <> faulted_rq then
        Alcotest.(check bool)
          (Fmt.str "request %d finish time unperturbed by the fault" rq)
          true
          (finish base rq = finish out rq))
    (List.init n Fun.id);
  let retried =
    List.find
      (fun (c : Scheduler.completed) ->
        c.Scheduler.c_req.Workload.rq_id = faulted_rq)
      out.Scheduler.o_completed
  in
  Alcotest.(check int) "the faulted request completed on its retry" 1
    retried.Scheduler.c_retries

(* The documented backoff contract: the k-th retry (1-based) is dispatched
   exactly [k * backoff_us] after the fault that triggered it.  Pin the
   schedule so chaos-bench recovery numbers stay reproducible against the
   spec. *)
let test_retry_backoff_schedule () =
  let a = light_artifact () in
  let stages = [| 1 |] in
  let plan c attempt = Faultinject.chaos_plan c ~rq_id:0 ~attempt ~stages in
  let faulty c attempt =
    List.exists
      (function Faultinject.Kernel_fault _ -> true | _ -> false)
      (plan c attempt)
  in
  let chaos =
    let rec search seed =
      if seed > 20000 then Alcotest.fail "no suitable chaos seed found"
      else
        let c =
          { Faultinject.chaos_zero with
            Faultinject.ch_seed = seed;
            ch_fault_rate = 0.5 }
        in
        if faulty c 0 && faulty c 1 && plan c 2 = [] then c
        else search (seed + 1)
    in
    search 0
  in
  let backoff = 50. in
  let reqs = batch_of "light" 1 in
  let o =
    run_batch ~streams:1 ~retries:2 ~backoff_us:backoff ~chaos [ a ] reqs
  in
  match (o.Scheduler.o_aborted, o.Scheduler.o_completed) with
  | [ ab0; ab1 ], [ c ] ->
      Alcotest.(check int) "completed on the second retry" 2
        c.Scheduler.c_retries;
      Alcotest.(check (float 1e-6)) "retry 1 dispatches 1 * backoff after its fault"
        (ab0.Scheduler.a_end_us +. (1. *. backoff))
        ab1.Scheduler.a_dispatch_us;
      Alcotest.(check (float 1e-6)) "retry 2 dispatches 2 * backoff after its fault"
        (ab1.Scheduler.a_end_us +. (2. *. backoff))
        c.Scheduler.c_dispatch_us
  | abs, cs ->
      Alcotest.failf "expected 2 aborted + 1 completed, got %d + %d"
        (List.length abs) (List.length cs)

(* Nearest-rank percentile edge cases: tiny samples, exact rank
   boundaries, and NaN hygiene. *)
let test_percentile_edges () =
  let p = Serve_report.percentile in
  Alcotest.(check (float 0.)) "n=1 p50" 7. (p [ 7. ] 50.);
  Alcotest.(check (float 0.)) "n=1 p99" 7. (p [ 7. ] 99.);
  Alcotest.(check (float 0.)) "n=2 p50 is the lower sample" 1. (p [ 2.; 1. ] 50.);
  Alcotest.(check (float 0.)) "n=2 p95 is the upper sample" 2. (p [ 2.; 1. ] 95.);
  let hundred = List.init 100 (fun i -> float_of_int (100 - i)) in
  Alcotest.(check (float 0.)) "p50 of 1..100 is 50" 50. (p hundred 50.);
  Alcotest.(check (float 0.)) "p99 of 1..100 is 99" 99. (p hundred 99.);
  Alcotest.(check (float 0.)) "p100 of 1..100 is 100" 100. (p hundred 100.);
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (p [] 50.));
  Alcotest.(check bool) "all-NaN is nan" true (Float.is_nan (p [ nan ] 50.));
  Alcotest.(check (float 0.)) "NaN samples are dropped, not sorted" 3.
    (p [ nan; 3.; nan; 1. ] 95.)

let test_deadline_frees_slot_for_next_request () =
  let a = synthetic_artifact () in
  let solo = a.Scheduler.art_solo_us in
  let reqs =
    [
      { Workload.rq_id = 0; rq_model = "busy"; rq_arrival_us = 0.;
        rq_slo_us = Some (solo /. 2.); rq_gen = 0 };
      { Workload.rq_id = 1; rq_model = "busy"; rq_arrival_us = 0.;
        rq_slo_us = None; rq_gen = 0 };
    ]
  in
  let o = run_batch ~streams:1 [ a ] reqs in
  (match o.Scheduler.o_aborted with
  | [ ab ] ->
      Alcotest.(check bool) "request 0 cancelled at its deadline" true
        (ab.Scheduler.a_reason = Scheduler.Deadline
        && ab.Scheduler.a_req.Workload.rq_id = 0
        && ab.Scheduler.a_end_us = solo /. 2.)
  | abs -> Alcotest.failf "expected 1 aborted attempt, got %d" (List.length abs));
  match o.Scheduler.o_completed with
  | [ c ] ->
      Alcotest.(check bool) "request 1 dispatched the moment the slot freed"
        true
        (c.Scheduler.c_req.Workload.rq_id = 1
        && c.Scheduler.c_dispatch_us = solo /. 2.
        && c.Scheduler.c_finish_us = (solo /. 2.) +. solo)
  | cs -> Alcotest.failf "expected 1 completion, got %d" (List.length cs)

let test_queue_cap_sheds_deterministically () =
  let a = synthetic_artifact () in
  let reqs = batch_of "busy" 16 in
  let go () = run_batch ~streams:2 ~queue_cap:4 [ a ] reqs in
  let o = go () in
  Alcotest.(check int) "cap 4 on 2 streams admits 4 of 16" 4
    (List.length o.Scheduler.o_completed);
  Alcotest.(check int) "the overflow is rejected" 12
    (List.length o.Scheduler.o_dropped);
  Alcotest.(check bool) "rejects are queue-full" true
    (List.for_all
       (fun (d : Scheduler.dropped) -> d.Scheduler.d_reason = Scheduler.Queue_full)
       o.Scheduler.o_dropped);
  Alcotest.(check string) "overloaded run reproduces byte-identically"
    (outcome_bytes o)
    (outcome_bytes (go ()))

let test_chaos_run_deterministic () =
  let a = light_artifact () in
  let chaos =
    { Faultinject.chaos_zero with
      Faultinject.ch_seed = 7;
      ch_fault_rate = 0.2;
      ch_hang_rate = 0.05 }
  in
  let go () =
    outcome_bytes
      (run_batch ~streams:3 ~retries:2 ~deadline_us:1e6 ~chaos [ a ]
         (batch_of "light" 24))
  in
  Alcotest.(check string) "same (seed, chaos, workload) triple, same bytes"
    (go ()) (go ())

(* ---- continuous batching ---- *)

let light_prog () : Kernel_ir.prog =
  let k =
    Kernel_ir.kernel ~name:"light" ~grid_blocks:8 ~threads_per_block:256
      ~smem_per_block:(4 * 1024)
      [ Kernel_ir.stage ~label:"s0" [ Kernel_ir.Fma { flops = 50_000_000 } ] ]
  in
  { Kernel_ir.pname = "light"; kernels = [ k ] }

(* bucket artifacts for the scheduler tests: the same kernel program tagged
   at several batch shapes (attribution is what is under test; the compile
   path of batched programs is covered by the batch suite) *)
let light_buckets buckets : Scheduler.artifact list =
  List.map
    (fun b -> Scheduler.artifact_of_prog dev ~model:"light" ~batch:b (light_prog ()))
    buckets

let test_max_batch_without_buckets_is_baseline () =
  (* batching enabled but no batched artifact supplied: every bucket falls
     back to 1, and the outcome must be byte-identical to batching off *)
  let a = synthetic_artifact () in
  let reqs = batch_of "busy" 12 in
  let off = run_batch ~streams:4 [ a ] reqs in
  let on_ = run_batch ~streams:4 ~max_batch:8 [ a ] reqs in
  Alcotest.(check string)
    "max_batch without bucket artifacts is byte-identical to the baseline"
    (outcome_bytes off) (outcome_bytes on_)

let test_bucket_rounding_deterministic () =
  let arts = light_buckets [ 1; 2; 4 ] in
  let reqs = batch_of "light" 7 in
  let go () = run_batch ~streams:1 ~max_batch:8 arts reqs in
  let o = go () in
  Alcotest.(check int) "all 7 requests complete" 7
    (List.length o.Scheduler.o_completed);
  let buckets =
    List.map (fun (c : Scheduler.completed) -> c.Scheduler.c_batch)
      o.Scheduler.o_completed
  in
  (* 7 queued requests on one stream round down the power-of-two ladder:
     a 4-bucket, then a 2-bucket, then a singleton *)
  Alcotest.(check (list int)) "buckets round down: 4, then 2, then 1"
    [ 4; 4; 4; 4; 2; 2; 1 ] buckets;
  let four =
    List.filter (fun (c : Scheduler.completed) -> c.Scheduler.c_batch = 4)
      o.Scheduler.o_completed
  in
  (match four with
  | c0 :: rest ->
      List.iter
        (fun (c : Scheduler.completed) ->
          Alcotest.(check int) "batch members share one stream"
            c0.Scheduler.c_stream c.Scheduler.c_stream;
          Alcotest.(check bool) "batch members share the finish instant" true
            (c.Scheduler.c_finish_us = c0.Scheduler.c_finish_us))
        rest
  | [] -> Alcotest.fail "no 4-bucket completions");
  Alcotest.(check string) "bucketed run reproduces byte-identically"
    (outcome_bytes o)
    (outcome_bytes (go ()))

let test_batch_fault_retries_members_individually () =
  let arts = light_buckets [ 1; 2 ] in
  let stages = [| 1 |] in
  (* four same-model requests on two streams at max_batch 2: dispatch pairs
     (0,1) and (2,3).  Find a chaos seed that faults the first pair's
     stream (plans derive from the lead request) and leaves the second
     pair and every retry clean. *)
  let plan c rq attempt = Faultinject.chaos_plan c ~rq_id:rq ~attempt ~stages in
  let has_fault p =
    List.exists
      (function Faultinject.Kernel_fault _ -> true | _ -> false)
      p
  in
  let chaos =
    let rec search seed =
      if seed > 5000 then Alcotest.fail "no suitable chaos seed found"
      else
        let c =
          { Faultinject.chaos_zero with
            Faultinject.ch_seed = seed;
            ch_fault_rate = 0.3 }
        in
        if
          has_fault (plan c 0 0)
          && plan c 2 0 = []
          && plan c 0 1 = []
          && plan c 1 1 = []
        then c
        else search (seed + 1)
    in
    search 0
  in
  let reqs = batch_of "light" 4 in
  let o = run_batch ~streams:2 ~max_batch:2 ~retries:1 ~chaos arts reqs in
  Alcotest.(check int) "all 4 requests complete" 4
    (List.length o.Scheduler.o_completed);
  Alcotest.(check int) "no request failed" 0 (List.length o.Scheduler.o_failed);
  (* the fault aborts both members of the batched stream... *)
  Alcotest.(check int) "both members of the faulted stream aborted" 2
    (List.length o.Scheduler.o_aborted);
  let find rq =
    List.find
      (fun (c : Scheduler.completed) -> c.Scheduler.c_req.Workload.rq_id = rq)
      o.Scheduler.o_completed
  in
  (* ...and each retries individually: attempt 1 never re-batches *)
  List.iter
    (fun rq ->
      let c = find rq in
      Alcotest.(check int)
        (Fmt.str "request %d completed on its retry" rq)
        1 c.Scheduler.c_retries;
      Alcotest.(check int)
        (Fmt.str "request %d retried unbatched" rq)
        1 c.Scheduler.c_batch)
    [ 0; 1 ];
  (* the second pair rode its batched stream to completion untouched *)
  List.iter
    (fun rq ->
      let c = find rq in
      Alcotest.(check int)
        (Fmt.str "request %d completed first-try" rq)
        0 c.Scheduler.c_retries;
      Alcotest.(check int)
        (Fmt.str "request %d stayed batched" rq)
        2 c.Scheduler.c_batch)
    [ 2; 3 ]

let test_batched_service_attribution () =
  let arts = light_buckets [ 1; 2; 4 ] in
  let reqs = batch_of "light" 4 in
  let o = run_batch ~streams:1 ~max_batch:4 arts reqs in
  match o.Scheduler.o_completed with
  | (c :: _ as cs) when List.length cs = 4 ->
      let solo = (List.hd arts).Scheduler.art_solo_us in
      Alcotest.(check bool) "per-member service is the stream's 1/4 share"
        true
        (List.for_all
           (fun (x : Scheduler.completed) ->
             x.Scheduler.c_service_us = c.Scheduler.c_service_us)
           cs);
      Alcotest.(check bool) "solo estimate stays the unbatched latency" true
        (c.Scheduler.c_solo_us = solo);
      Alcotest.(check bool) "batched members beat their solo estimate" true
        (c.Scheduler.c_service_us < solo);
      let s = Serve_report.summarize o in
      Alcotest.(check int) "summary counts the batched completions" 4
        s.Serve_report.s_batched;
      Alcotest.(check bool) "summary mean bucket is 4" true
        (s.Serve_report.s_mean_batch = 4.)
  | cs -> Alcotest.failf "expected 4 completions, got %d" (List.length cs)

(* ---- generation: prefill/decode lifecycle ---- *)

(* a prefill artifact plus two decode position buckets of the same model;
   all share one light kernel so timing stays uncontended and exact *)
let gen_artifacts () =
  [
    Scheduler.artifact_of_prog dev ~model:"lm" (light_prog ());
    Scheduler.artifact_of_prog dev ~model:"lm" ~pos:4 (light_prog ());
    Scheduler.artifact_of_prog dev ~model:"lm" ~pos:8 (light_prog ());
  ]

let gen_request ?(id = 0) gen =
  { Workload.rq_id = id; rq_model = "lm"; rq_arrival_us = 0.; rq_slo_us = None;
    rq_gen = gen }

let run_gen ?retries ?chaos reqs =
  Scheduler.run dev
    (Scheduler.cfg ?retries ?chaos ~gen_prompt:4 ~policy:Scheduler.Fifo
       ~max_streams:1 ())
    ~artifacts:(gen_artifacts ()) reqs

let test_generation_lifecycle () =
  let o = run_gen [ gen_request 3 ] in
  Alcotest.(check int) "nothing failed or dropped" 0
    (List.length o.Scheduler.o_failed + List.length o.Scheduler.o_dropped);
  let cs =
    List.sort
      (fun (a : Scheduler.completed) b ->
        compare a.Scheduler.c_finish_us b.Scheduler.c_finish_us)
      o.Scheduler.o_completed
  in
  Alcotest.(check int) "1 prefill + 3 decode completions" 4 (List.length cs);
  (match List.map (fun (c : Scheduler.completed) -> c.Scheduler.c_phase) cs with
  | [ Scheduler.Prefill; Scheduler.Decode 1; Scheduler.Decode 2;
      Scheduler.Decode 3 ] ->
      ()
  | ps ->
      Alcotest.failf "unexpected phase sequence: %s"
        (String.concat ", " (List.map Scheduler.phase_to_string ps)));
  (* each decode step enters the queue the instant the previous phase
     finishes — the carried KV state is handed off, never recomputed *)
  let rec chain = function
    | (a : Scheduler.completed) :: (b : Scheduler.completed) :: rest ->
        Alcotest.(check (float 0.)) "next phase issued at previous finish"
          a.Scheduler.c_finish_us b.Scheduler.c_issue_us;
        chain (b :: rest)
    | _ -> ()
  in
  chain cs;
  (* only the last decode step is the request's terminal completion *)
  Alcotest.(check (list bool))
    "terminal only at the last decode step"
    [ false; false; false; true ]
    (List.map Scheduler.is_terminal cs);
  let s = Serve_report.summarize o in
  Alcotest.(check int) "summary counts one request" 1 s.Serve_report.s_requests;
  Alcotest.(check int) "one prefill" 1 s.Serve_report.s_prefills;
  Alcotest.(check int) "three decode steps" 3 s.Serve_report.s_decodes;
  Alcotest.(check bool) "positive decode throughput" true
    (s.Serve_report.s_tokens_per_s > 0.);
  Alcotest.(check string) "generation run reproduces byte-identically"
    (outcome_bytes o)
    (outcome_bytes (run_gen [ gen_request 3 ]))

let test_decode_fault_retries_same_position () =
  let stages = [| 1 |] in
  let plan c rq attempt = Faultinject.chaos_plan c ~rq_id:rq ~attempt ~stages in
  let has_fault p =
    List.exists
      (function Faultinject.Kernel_fault _ -> true | _ -> false)
      p
  in
  (* decode step t of request 0 draws its chaos plan from rq_id + 7919*t:
     find a seed that faults decode step 1's first attempt only, leaving
     the prefill, the retry, and decode step 2 clean *)
  let d1 = 7919 and d2 = 2 * 7919 in
  let chaos =
    let rec search seed =
      if seed > 20000 then Alcotest.fail "no suitable chaos seed found"
      else
        let c =
          { Faultinject.chaos_zero with
            Faultinject.ch_seed = seed;
            ch_fault_rate = 0.3 }
        in
        if
          plan c 0 0 = []
          && has_fault (plan c d1 0)
          && plan c d1 1 = []
          && plan c d2 0 = []
        then c
        else search (seed + 1)
    in
    search 0
  in
  let o = run_gen ~retries:1 ~chaos [ gen_request 2 ] in
  Alcotest.(check int) "no failures" 0 (List.length o.Scheduler.o_failed);
  Alcotest.(check int) "prefill + 2 decode completions" 3
    (List.length o.Scheduler.o_completed);
  (* the fault hit decode step 1 and only decode step 1 *)
  (match o.Scheduler.o_aborted with
  | [ ab ] ->
      Alcotest.(check string) "aborted attempt was decode step 1" "decode:1"
        (Scheduler.phase_to_string ab.Scheduler.a_phase);
      Alcotest.(check int) "it was the first attempt" 0 ab.Scheduler.a_try
  | abs -> Alcotest.failf "expected 1 aborted attempt, got %d" (List.length abs));
  (* the retry re-ran the SAME step at the same KV position: the completed
     decode 1 carries one retry, and its issue instant is unchanged from
     the original hand-off (KV is immutable input, nothing re-issues) *)
  let find_phase p =
    List.find
      (fun (c : Scheduler.completed) -> c.Scheduler.c_phase = p)
      o.Scheduler.o_completed
  in
  let pre = find_phase Scheduler.Prefill in
  let dec1 = find_phase (Scheduler.Decode 1) in
  let dec2 = find_phase (Scheduler.Decode 2) in
  Alcotest.(check int) "decode 1 completed on its retry" 1
    dec1.Scheduler.c_retries;
  Alcotest.(check (float 0.)) "retried step still issued at the prefill finish"
    pre.Scheduler.c_finish_us dec1.Scheduler.c_issue_us;
  Alcotest.(check int) "decode 2 rode through clean" 0 dec2.Scheduler.c_retries;
  Alcotest.(check (float 0.)) "decode 2 issued at decode 1's (retried) finish"
    dec1.Scheduler.c_finish_us dec2.Scheduler.c_issue_us;
  Alcotest.(check bool) "terminal completion is decode 2" true
    (Scheduler.is_terminal dec2 && not (Scheduler.is_terminal dec1))

let suite =
  [
    Alcotest.test_case "single stream equals solo Sim" `Quick
      test_single_stream_equals_solo;
    Alcotest.test_case "service monotone in concurrency" `Quick
      test_service_monotone_in_concurrency;
    Alcotest.test_case "throughput saturates" `Quick test_throughput_saturates;
    Alcotest.test_case "identical runs byte-identical" `Quick
      test_identical_runs_byte_identical;
    Alcotest.test_case "sel picks shortest, fifo picks first" `Quick
      test_sel_prefers_shortest;
    Alcotest.test_case "unknown model rejected" `Quick
      test_unknown_model_rejected;
    Alcotest.test_case "mix parsing" `Quick test_parse_mix;
    Alcotest.test_case "workload deterministic and sorted" `Quick
      test_workload_deterministic_and_sorted;
    Alcotest.test_case "artifact store compiles once" `Quick
      test_artifacts_compile_once;
    Alcotest.test_case "zero-fault chaos is the baseline" `Quick
      test_zero_fault_chaos_is_baseline;
    Alcotest.test_case "fault retries without perturbing others" `Quick
      test_fault_retries_without_perturbing_others;
    Alcotest.test_case "retry backoff schedule matches the spec" `Quick
      test_retry_backoff_schedule;
    Alcotest.test_case "percentile edge cases" `Quick test_percentile_edges;
    Alcotest.test_case "deadline frees the slot" `Quick
      test_deadline_frees_slot_for_next_request;
    Alcotest.test_case "queue cap sheds deterministically" `Quick
      test_queue_cap_sheds_deterministically;
    Alcotest.test_case "chaos runs are deterministic" `Quick
      test_chaos_run_deterministic;
    Alcotest.test_case "max_batch without buckets is the baseline" `Quick
      test_max_batch_without_buckets_is_baseline;
    Alcotest.test_case "bucket rounding deterministic" `Quick
      test_bucket_rounding_deterministic;
    Alcotest.test_case "batch fault retries members individually" `Quick
      test_batch_fault_retries_members_individually;
    Alcotest.test_case "batched service attribution" `Quick
      test_batched_service_attribution;
    Alcotest.test_case "generation lifecycle" `Quick test_generation_lifecycle;
    Alcotest.test_case "decode fault retries same position" `Quick
      test_decode_fault_retries_same_position;
  ]
