(** Resource-aware TE program partitioning (§5.4).

    Souffle wants one big kernel per subprogram, synchronized with
    grid-level barriers.  A cooperative launch requires every thread block
    to be resident simultaneously, so the subprogram's largest launch grid
    times its largest per-block occupancy cost must fit the device
    ([max_grid * max_occ < C]).  A greedy BFS walk over the TE graph grows
    the current subprogram until the constraint breaks, then starts a new
    one.  A compute-intensive TE whose own grid exceeds one wave forms a
    non-cooperative subprogram: it runs as a classic kernel and may only
    absorb the one-relies-on-one TEs that follow it (inlined epilogues —
    no synchronization available). *)

type subprogram = {
  id : int;
  tes : Te.t list;          (** program order *)
  cooperative : bool;       (** may use grid.sync internally *)
}

type t = {
  subprograms : subprogram list;
  scheds : (string, Sched.t) Hashtbl.t;
}

let te_names sp = List.map (fun (te : Te.t) -> te.Te.name) sp.tes

(* Resource accumulator for the §5.4 constraint. *)
(* Each resource is maxed independently — exactly how {!Emit} aggregates a
   kernel's launch configuration from its stages — so the feasibility
   verdict here can only be more conservative than the occupancy the IR
   verifier later computes for the emitted kernel, never less. *)
type acc = {
  max_grid : int;
  max_smem : int;   (* bytes per block *)
  max_regs_per_thread : int;
  max_threads : int;
}

let empty_acc =
  { max_grid = 0; max_smem = 0; max_regs_per_thread = 0; max_threads = 0 }

let add_usage acc ~grid ~(u : Occupancy.usage) =
  {
    max_grid = max acc.max_grid grid;
    max_smem = max acc.max_smem u.Occupancy.smem_per_block;
    max_regs_per_thread =
      max acc.max_regs_per_thread u.Occupancy.regs_per_thread;
    max_threads = max acc.max_threads u.Occupancy.threads_per_block;
  }

(* Can every block of the worst grid be resident in one wave under the
   worst per-block footprint?  This is the cooperative-launch feasibility
   check (and subsumes the paper's max_grid * max_occ < C formulation). *)
let feasible (dev : Device.t) acc =
  if acc.max_grid = 0 then true
  else begin
    let u =
      {
        Occupancy.threads_per_block = max 1 acc.max_threads;
        smem_per_block = acc.max_smem;
        regs_per_thread = acc.max_regs_per_thread;
      }
    in
    let cap =
      int_of_float
        (dev.Device.coop_capacity_frac
        *. float_of_int (Occupancy.max_blocks_per_wave dev u))
    in
    acc.max_grid <= cap
  end

(* Coarsen a memory-intensive TE's output tile until the subprogram
   accumulator extended with it satisfies the cooperative-launch
   constraint.  The TE has no tensor-core fragment shape to preserve, so
   its grid is elastic: doubling the tile factor of the output dimension
   with the most blocks (lowest index wins ties — deterministic) shrinks
   the grid geometrically while the per-block cost grows only linearly.
   Gives up when no dimension can coarsen further (grid = rsplit) or the
   per-block footprint stops fitting first. *)
let retile_into (dev : Device.t) (p : Program.t) (te : Te.t) (s : Sched.t)
    ~(acc : acc) : (Sched.t * int * Occupancy.usage) option =
  let shape = te.Te.out_shape in
  let rec go (s : Sched.t) n =
    if n > 32 then None
    else
      let grid = Sched.grid_blocks te s in
      let u = Sched.usage p te s in
      if
        feasible dev (add_usage acc ~grid ~u)
        && u.Occupancy.smem_per_block <= dev.Device.max_smem_per_block
      then Some (s, grid, u)
      else begin
        let best = ref (-1) and best_tiles = ref 1 in
        Array.iteri
          (fun i d ->
            let tiles = (d + s.Sched.tile.(i) - 1) / s.Sched.tile.(i) in
            if tiles > !best_tiles then begin
              best := i;
              best_tiles := tiles
            end)
          shape;
        if !best < 0 then None
        else begin
          let tile = Array.copy s.Sched.tile in
          tile.(!best) <- min shape.(!best) (2 * tile.(!best));
          go { s with Sched.tile } (n + 1)
        end
      end
  in
  go s 0

let run (dev : Device.t) (an : Analysis.t) (scheds : (string, Sched.t) Hashtbl.t)
    : t =
  let p = an.Analysis.program in
  let sched name =
    match Hashtbl.find_opt scheds name with
    | Some s -> s
    | None -> invalid_arg ("Partition.run: no schedule for " ^ name)
  in
  let next_id = ref 0 in
  let fresh_id () =
    let i = !next_id in
    incr next_id;
    i
  in
  let close subs cur ~cooperative =
    match cur with
    | [] -> subs
    | tes -> { id = fresh_id (); tes = List.rev tes; cooperative } :: subs
  in
  (* state machine over the topologically ordered TE list *)
  let rec go subs cur acc mode tes =
    match tes with
    | [] -> (
        match mode with
        | `Coop -> close subs cur ~cooperative:true
        | `Noncoop -> close subs cur ~cooperative:false)
    | (te : Te.t) :: rest -> (
        let name = te.Te.name in
        let info = Analysis.info an name in
        let is_compute = info.Analysis.kind = Intensity.Compute_intensive in
        match mode with
        | `Noncoop ->
            (* only absorb one-relies-on-one epilogues *)
            if (not is_compute) && not (Te.has_reduction te) then
              go subs (te :: cur) acc `Noncoop rest
            else begin
              let subs = close subs cur ~cooperative:false in
              go subs [] empty_acc `Coop (te :: rest)
            end
        | `Coop ->
            (* Every absorbed TE is accounted: any TE can anchor an emitted
               stage, and a stage anchor's grid becomes (part of) the
               cooperative kernel's launch grid — absorbing a
               memory-intensive reduction without charging its grid let
               kernels exceed one wave and fail verify-ir downstream. *)
            let s = sched name in
            let grid = Sched.grid_blocks te s in
            let u = Sched.usage p te s in
            let acc' = add_usage acc ~grid ~u in
            if feasible dev acc' then go subs (te :: cur) acc' `Coop rest
            else if not is_compute then begin
              (* memory-intensive: coarsen its output tile at the wave
                 boundary instead of breaking the subprogram *)
              match retile_into dev p te s ~acc with
              | Some (s', grid', u') ->
                  Hashtbl.replace scheds name s';
                  go subs (te :: cur) (add_usage acc ~grid:grid' ~u:u') `Coop
                    rest
              | None -> (
                  let subs = close subs cur ~cooperative:true in
                  match retile_into dev p te s ~acc:empty_acc with
                  | Some (s', grid', u') ->
                      Hashtbl.replace scheds name s';
                      go subs [ te ]
                        (add_usage empty_acc ~grid:grid' ~u:u')
                        `Coop rest
                  | None -> go subs [ te ] empty_acc `Noncoop rest)
            end
            else begin
              (* close the current subprogram and retry this TE *)
              let subs = close subs cur ~cooperative:true in
              let acc0 = add_usage empty_acc ~grid ~u in
              if feasible dev acc0 then go subs [ te ] acc0 `Coop rest
              else
                (* this TE alone cannot grid-sync: non-cooperative *)
                go subs [ te ] empty_acc `Noncoop rest
            end)
  in
  let subs = List.rev (go [] [] empty_acc `Coop p.Program.tes) in
  { subprograms = subs; scheds }

(** Every TE appears in exactly one subprogram, in program order. *)
let validate (t : t) (p : Program.t) : (unit, string) result =
  let flat = List.concat_map (fun sp -> te_names sp) t.subprograms in
  let expected = List.map (fun (te : Te.t) -> te.Te.name) p.Program.tes in
  if flat = expected then Ok ()
  else Error "Partition: subprograms do not cover the program in order"

let num_subprograms t = List.length t.subprograms

let pp ppf (t : t) =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun sp ->
      Fmt.pf ppf "subprogram %d%s: {%s}@," sp.id
        (if sp.cooperative then "" else " [non-coop]")
        (String.concat ", " (te_names sp)))
    t.subprograms;
  Fmt.pf ppf "@]"

(** {!run} as a total function: fault-injection aware, exceptions converted
    to a typed diagnostic, and the coverage invariant ({!validate}) checked
    before the result is handed to emission. *)
let run_result (dev : Device.t) (an : Analysis.t)
    (scheds : (string, Sched.t) Hashtbl.t) : (t, Diag.t) result =
  Obs.span "partition" @@ fun () ->
  match
    Diag.guard Diag.Partition (fun () ->
        Faultinject.trip Diag.Partition;
        let t = run dev an scheds in
        Obs.annotate "subprograms" (string_of_int (num_subprograms t));
        t)
  with
  | Error _ as e -> e
  | Ok t -> (
      match validate t an.Analysis.program with
      | Ok () -> Ok t
      | Error m ->
          Error
            (Diag.error ~hint:"fall back to Ansor-style grouping"
               Diag.Partition m))
