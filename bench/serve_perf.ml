(* Serving benchmark: the multi-stream engine against serial one-at-a-time
   execution of the same compiled artifacts.

   The workload is a traffic-weighted mix over the whole zoo: cheap
   models field most of the traffic (as production serving mixes do), so
   request counts are weighted inversely to model cost rather than
   uniformly — a uniform mix would measure little besides ResNeXt, whose
   full-device compute stages honestly cannot overlap.

   Four measurements over that mix:

     equality    a lone request served on one stream must reproduce the
                 solo simulator latency bit-for-bit (the contention model
                 collapses exactly when there is no contention)
     saturation  a closed batch of requests at increasing concurrency;
                 throughput must saturate, and the saturated throughput
                 must be >= 2x the serial (one-stream) baseline
     curve       open-loop Poisson arrivals at fractions of the saturated
                 throughput: the latency/throughput curve
     policy      FIFO vs shortest-expected-latency tail latency at the
                 same offered load
     batching    the same closed batch with continuous batching on
                 (power-of-two buckets up to 8 lanes, shape-polymorphic
                 artifacts): batched saturated throughput must strictly
                 beat the unbatched 8-stream point

   Results land in BENCH_serve.json (full models) or BENCH_serve_smoke.json
   (tiny models, the @bench-smoke alias).  Equality mismatches, a sub-2x
   saturation speedup, a batched run that fails to beat the unbatched
   baseline, and degraded batched compiles are all recorded in the runlog,
   so --strict-bench fails the run over them. *)

let dev = Tables.dev

type mart = {
  entry : Zoo.entry;
  art : Scheduler.artifact;
  report : Souffle.report;
  exact : bool;  (* single-stream serving == solo Sim latency *)
}

(* a lone request on one stream: service time and end-to-end latency must
   equal the artifact's solo simulated latency exactly *)
let check_single_stream (a : Scheduler.artifact) (r : Souffle.report) : bool =
  let reqs =
    Workload.generate ~seed:1 ~rate_rps:0. ~requests:1
      [ (a.Scheduler.art_model, 1.) ]
  in
  let o =
    Scheduler.run dev
      (Scheduler.cfg ~policy:Scheduler.Fifo ~max_streams:1 ())
      ~artifacts:[ a ] reqs
  in
  match o.Scheduler.o_completed with
  | [ c ] ->
      c.Scheduler.c_service_us = r.Souffle.sim.Sim.total.Counters.time_us
      && Scheduler.latency_us c = r.Souffle.sim.Sim.total.Counters.time_us
  | _ -> false

let mart_of ~(souffle_of : Zoo.entry -> Souffle.report) (e : Zoo.entry) : mart =
  let r = souffle_of e in
  let art =
    Scheduler.artifact_of_prog dev ~model:e.Zoo.name
      ~degraded:(List.length r.Souffle.degraded)
      r.Souffle.prog
  in
  let exact = check_single_stream art r in
  if not exact then begin
    Fmt.epr "  !! %s: single-stream serving latency differs from solo Sim@."
      e.Zoo.name;
    Runlog.record Tables.runlog
      ~model:(e.Zoo.name ^ "@serve-equality")
      ~degraded_steps:0 ~errors:1
  end;
  { entry = e; art; report = r; exact }

(* requests per model, proportional — cheap models serve most queries *)
let mix_weight (e : Zoo.entry) : float =
  match String.lowercase_ascii e.Zoo.name with
  | "mmoe" -> 16.
  | "lstm" -> 8.
  | "efficientnet" -> 4.
  | "resnext" -> 1.
  | _ -> 2. (* BERT, SwinTransformer *)

let num n v = (n, Jsonlite.Num v)

let point_json extra (s : Serve_report.summary) : Jsonlite.t =
  Jsonlite.Obj (extra @ [ ("summary", Serve_report.summary_json s) ])

let run_with ~label ~souffle_of ~souffle_batched ~requests ~out () =
  Tables.section
    (Fmt.str "Serving — multi-stream engine vs serial execution (%s)" label);
  let marts = List.map (mart_of ~souffle_of) Zoo.all in
  List.iter
    (fun m ->
      Fmt.pr "  %-14s solo %12.2f us  %2d kernel(s)  %s@." m.entry.Zoo.name
        m.art.Scheduler.art_solo_us
        (List.length m.report.Souffle.prog.Kernel_ir.kernels)
        (if m.exact then "single-stream exact" else "MISMATCH"))
    marts;
  let artifacts = List.map (fun m -> m.art) marts in
  let mix = List.map (fun m -> (m.entry.Zoo.name, mix_weight m.entry)) marts in
  let batch = Workload.generate ~seed:11 ~rate_rps:0. ~requests mix in
  let run_at ?(policy = Scheduler.Fifo) c reqs =
    Scheduler.run dev (Scheduler.cfg ~policy ~max_streams:c ()) ~artifacts reqs
  in
  (* saturation: a closed batch at increasing concurrency *)
  let serial = Serve_report.summarize (run_at 1 batch) in
  let sweep =
    List.map (fun c -> (c, Serve_report.summarize (run_at c batch))) [ 2; 4; 8; 16 ]
  in
  Fmt.pr "@.  closed batch of %d requests:@." requests;
  Fmt.pr "  %8s %14s %10s %10s %10s %9s@." "streams" "thr(req/s)" "p50(ms)"
    "p95(ms)" "slowdown" "resident";
  let row c (s : Serve_report.summary) =
    Fmt.pr "  %8d %14.1f %10.3f %10.3f %10.2f %9.2f@." c s.Serve_report.s_throughput_rps
      s.Serve_report.s_p50_ms s.Serve_report.s_p95_ms
      s.Serve_report.s_mean_slowdown s.Serve_report.s_avg_resident
  in
  row 1 serial;
  List.iter (fun (c, s) -> row c s) sweep;
  let sat_streams, sat =
    List.fold_left
      (fun (bc, bs) (c, s) ->
        if
          s.Serve_report.s_throughput_rps
          > bs.Serve_report.s_throughput_rps
        then (c, s)
        else (bc, bs))
      (1, serial) sweep
  in
  let speedup =
    if serial.Serve_report.s_throughput_rps > 0. then
      sat.Serve_report.s_throughput_rps /. serial.Serve_report.s_throughput_rps
    else 0.
  in
  Fmt.pr "  saturation: %.1f req/s at %d streams — %.2fx over serial@."
    sat.Serve_report.s_throughput_rps sat_streams speedup;
  if speedup < 2. then begin
    Fmt.epr
      "  !! serving speedup %.2fx at saturation is below the 2x target@."
      speedup;
    Runlog.record Tables.runlog ~model:("serve-speedup@" ^ label)
      ~degraded_steps:0 ~errors:1
  end;
  (* open-loop latency/throughput curve at the saturating concurrency *)
  let sat_rps = sat.Serve_report.s_throughput_rps in
  let curve =
    List.map
      (fun frac ->
        let rate = frac *. sat_rps in
        let reqs = Workload.generate ~seed:17 ~rate_rps:rate ~requests mix in
        (frac, rate, Serve_report.summarize (run_at sat_streams reqs)))
      [ 0.25; 0.5; 0.75; 0.9 ]
  in
  Fmt.pr "@.  open-loop Poisson arrivals (%d streams):@." sat_streams;
  Fmt.pr "  %8s %14s %14s %10s %10s@." "load" "offered" "served" "p50(ms)"
    "p99(ms)";
  List.iter
    (fun (frac, rate, (s : Serve_report.summary)) ->
      Fmt.pr "  %7.0f%% %14.1f %14.1f %10.3f %10.3f@." (100. *. frac) rate
        s.Serve_report.s_throughput_rps s.Serve_report.s_p50_ms
        s.Serve_report.s_p99_ms)
    curve;
  (* scheduling policy: tail latency under the same near-saturation load *)
  let policy_reqs =
    Workload.generate ~seed:23 ~rate_rps:(0.9 *. sat_rps) ~requests mix
  in
  let fifo =
    Serve_report.summarize (run_at ~policy:Scheduler.Fifo sat_streams policy_reqs)
  in
  let sel =
    Serve_report.summarize (run_at ~policy:Scheduler.Sel sat_streams policy_reqs)
  in
  Fmt.pr "@.  policy at 90%% load: fifo p95 %.3f ms, sel p95 %.3f ms@."
    fifo.Serve_report.s_p95_ms sel.Serve_report.s_p95_ms;
  (* continuous batching: the same closed batch, with shape-polymorphic
     bucket artifacts (x2/x4/x8) so dispatches can coalesce *)
  let max_batch = 8 in
  let batched_arts =
    List.concat_map
      (fun m ->
        List.map
          (fun b ->
            let r = souffle_batched m.entry b in
            Scheduler.artifact_of_prog dev ~model:m.entry.Zoo.name ~batch:b
              ~degraded:(List.length r.Souffle.degraded)
              r.Souffle.prog)
          [ 2; 4; 8 ])
      marts
  in
  let run_batched c reqs =
    Scheduler.run dev
      (Scheduler.cfg ~policy:Scheduler.Fifo ~max_streams:c ~max_batch ())
      ~artifacts:(artifacts @ batched_arts) reqs
  in
  let bsweep =
    List.map
      (fun c -> (c, Serve_report.summarize (run_batched c batch)))
      [ 1; 2; 4; 8 ]
  in
  Fmt.pr "@.  continuous batching (buckets up to x%d), same closed batch:@."
    max_batch;
  Fmt.pr "  %8s %14s %10s %10s %10s %9s@." "streams" "thr(req/s)" "p50(ms)"
    "p95(ms)" "slowdown" "bucket";
  List.iter
    (fun (c, (s : Serve_report.summary)) ->
      Fmt.pr "  %8d %14.1f %10.3f %10.3f %10.2f %9.2f@." c
        s.Serve_report.s_throughput_rps s.Serve_report.s_p50_ms
        s.Serve_report.s_p95_ms s.Serve_report.s_mean_slowdown
        s.Serve_report.s_mean_batch)
    bsweep;
  let bsat_streams, bsat =
    List.fold_left
      (fun (bc, bs) (c, s) ->
        if
          s.Serve_report.s_throughput_rps > bs.Serve_report.s_throughput_rps
        then (c, s)
        else (bc, bs))
      (List.hd bsweep) (List.tl bsweep)
  in
  (* the win the batcher must deliver: beat the unbatched engine at its
     widest sweep point on the same workload *)
  let unbatched_8 = List.assoc 8 sweep in
  let batched_gain =
    if unbatched_8.Serve_report.s_throughput_rps > 0. then
      bsat.Serve_report.s_throughput_rps
      /. unbatched_8.Serve_report.s_throughput_rps
    else 0.
  in
  Fmt.pr
    "  batched saturation: %.1f req/s at %d streams — %.2fx over unbatched \
     8-stream (%.1f req/s)@."
    bsat.Serve_report.s_throughput_rps bsat_streams batched_gain
    unbatched_8.Serve_report.s_throughput_rps;
  if
    bsat.Serve_report.s_throughput_rps
    <= unbatched_8.Serve_report.s_throughput_rps
  then begin
    Fmt.epr
      "  !! batched throughput %.1f req/s does not beat the unbatched \
       8-stream baseline %.1f req/s@."
      bsat.Serve_report.s_throughput_rps
      unbatched_8.Serve_report.s_throughput_rps;
    Runlog.record Tables.runlog
      ~model:("serve-batched@" ^ label)
      ~degraded_steps:0 ~errors:1
  end;
  let json =
    Jsonlite.Obj
      [
        ("bench", Jsonlite.Str "serve-perf");
        ("device", Jsonlite.Str dev.Device.name);
        ("mode", Jsonlite.Str label);
        num "requests" (float_of_int requests);
        ( "models",
          Jsonlite.Arr
            (List.map
               (fun m ->
                 Jsonlite.Obj
                   [
                     ("name", Jsonlite.Str m.entry.Zoo.name);
                     num "mix_weight" (mix_weight m.entry);
                     num "solo_us" m.art.Scheduler.art_solo_us;
                     num "kernels"
                       (float_of_int
                          (List.length m.report.Souffle.prog.Kernel_ir.kernels));
                     num "degraded_steps"
                       (float_of_int m.art.Scheduler.art_degraded);
                     ("single_stream_exact", Jsonlite.Bool m.exact);
                   ])
               marts) );
        ("serial", Serve_report.summary_json serial);
        ( "saturation",
          Jsonlite.Arr
            (List.map
               (fun (c, s) -> point_json [ num "streams" (float_of_int c) ] s)
               sweep) );
        num "speedup_at_saturation" speedup;
        num "saturating_streams" (float_of_int sat_streams);
        ( "curve",
          Jsonlite.Arr
            (List.map
               (fun (frac, rate, s) ->
                 point_json
                   [
                     num "load_frac" frac;
                     num "rate_rps" rate;
                     num "streams" (float_of_int sat_streams);
                   ]
                   s)
               curve) );
        ( "policy_at_90pct",
          Jsonlite.Obj
            [
              ("fifo", Serve_report.summary_json fifo);
              ("sel", Serve_report.summary_json sel);
            ] );
        ( "batched",
          Jsonlite.Obj
            [
              num "max_batch" (float_of_int max_batch);
              ( "sweep",
                Jsonlite.Arr
                  (List.map
                     (fun (c, s) ->
                       point_json [ num "streams" (float_of_int c) ] s)
                     bsweep) );
              num "throughput_rps" bsat.Serve_report.s_throughput_rps;
              num "saturating_streams" (float_of_int bsat_streams);
              num "unbatched_8stream_rps"
                unbatched_8.Serve_report.s_throughput_rps;
              num "gain_vs_unbatched" batched_gain;
            ] );
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Jsonlite.to_string json));
  Fmt.pr "  wrote %s@." out

(* batched compiles are memoized per (model, bucket) and recorded in the
   runlog like every other bench compile, so a degraded batched compile
   fails --strict-bench *)
let batched_memo ~tag ~graph_of : Zoo.entry -> int -> Souffle.report =
  let cache : (string * int, Souffle.report) Hashtbl.t = Hashtbl.create 32 in
  fun (e : Zoo.entry) batch ->
    match Hashtbl.find_opt cache (e.Zoo.name, batch) with
    | Some r -> r
    | None ->
        let r =
          Tables.compile_recorded
            ~cfg:(Souffle.config ~batch ())
            ~name:(Fmt.str "%s@%s-batch%d" e.Zoo.name tag batch)
            (Lower.run (graph_of e))
        in
        Hashtbl.replace cache (e.Zoo.name, batch) r;
        r

(* full-size models: the measurement run, reusing the artifacts the tables
   compiled (each model compiles once per bench process) *)
let run () =
  run_with ~label:"full" ~souffle_of:Tables.souffle_of
    ~souffle_batched:
      (batched_memo ~tag:"serve" ~graph_of:(fun (e : Zoo.entry) -> e.Zoo.full ()))
    ~requests:48 ~out:"BENCH_serve.json" ()

(* tiny models: the @bench-smoke alias — seconds, not minutes *)
let smoke () =
  let cache : (string, Souffle.report) Hashtbl.t = Hashtbl.create 8 in
  let souffle_of (e : Zoo.entry) =
    match Hashtbl.find_opt cache e.Zoo.name with
    | Some r -> r
    | None ->
        let r =
          Tables.compile_recorded
            ~name:(e.Zoo.name ^ "@serve-smoke")
            (Lower.run (e.Zoo.tiny ()))
        in
        Hashtbl.replace cache e.Zoo.name r;
        r
  in
  run_with ~label:"smoke" ~souffle_of
    ~souffle_batched:
      (batched_memo ~tag:"serve-smoke"
         ~graph_of:(fun (e : Zoo.entry) -> e.Zoo.tiny ()))
    ~requests:24 ~out:"BENCH_serve_smoke.json" ()
