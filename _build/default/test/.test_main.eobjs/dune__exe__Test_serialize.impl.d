test/test_serialize.ml: Alcotest Array Astring_contains B Bert Dgraph Expr Fmt Interp List Lower Mmoe Op Program QCheck QCheck_alcotest Result Rng Serialize Zoo
