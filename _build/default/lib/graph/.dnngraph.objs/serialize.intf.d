lib/graph/serialize.mli: Dgraph
