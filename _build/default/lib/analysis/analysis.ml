(** The combined two-level global analysis of §5: per-TE element-wise
    dependence class and compute/memory intensity, plus program-wide reuse
    opportunities.  This is the "Analysis Result" box of Fig. 2 step 2. *)

module SMap = Program.SMap

type te_info = {
  te : Te.t;
  dep : Dep.t;
  kind : Intensity.kind;
  ratio : float;
}

type t = {
  program : Program.t;
  infos : te_info SMap.t;
  reuse : Reuse.t;
}

let run (p : Program.t) : t =
  let infos =
    List.fold_left
      (fun acc (te : Te.t) ->
        SMap.add te.Te.name
          {
            te;
            dep = Dep.classify te;
            kind = Intensity.classify p te;
            ratio = Intensity.ratio p te;
          }
          acc)
      SMap.empty p.Program.tes
  in
  { program = p; infos; reuse = Reuse.find p }

let info t name =
  match SMap.find_opt name t.infos with
  | Some i -> i
  | None -> invalid_arg ("Analysis.info: unknown TE " ^ name)

let is_compute_intensive t name = (info t name).kind = Intensity.Compute_intensive

let is_one_to_one t name =
  match (info t name).dep with
  | Dep.One_relies_on_one -> true
  | Dep.One_relies_on_many _ -> false

(** Names of TEs by class, in program order. *)
let compute_intensive t =
  List.filter_map
    (fun (te : Te.t) ->
      if is_compute_intensive t te.Te.name then Some te.Te.name else None)
    t.program.Program.tes

let memory_intensive t =
  List.filter_map
    (fun (te : Te.t) ->
      if is_compute_intensive t te.Te.name then None else Some te.Te.name)
    t.program.Program.tes

let one_to_one t =
  List.filter_map
    (fun (te : Te.t) ->
      if is_one_to_one t te.Te.name then Some te.Te.name else None)
    t.program.Program.tes

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun (te : Te.t) ->
      let i = info t te.Te.name in
      Fmt.pf ppf "%s: {%s, %s, ratio=%.2f}@," te.Te.name
        (match i.dep with
        | Dep.One_relies_on_one -> "one-relies-on-one"
        | Dep.One_relies_on_many _ -> "one-relies-on-many")
        (Intensity.kind_to_string i.kind) i.ratio)
    t.program.Program.tes;
  Reuse.pp ppf t.reuse;
  Fmt.pf ppf "@]"
