lib/schedule/sched.ml: Array Dtype Expr Fmt Index List Occupancy Option Program Set Shape Te
