lib/graph/dgraph.ml: Dtype Fmt List Map Op Program Shape String
