lib/te/te.ml: Array Dtype Expr Float Fmt Index List Shape
