(* Tests for the observability layer: Obs span nesting and exception
   safety, Chrome-trace JSON well-formedness (parsed back with Jsonlite),
   the per-kernel counter-report join, and the bench strictness exit-code
   behaviour backed by Runlog. *)

let dev = Device.a100

(* ---- spans ---- *)

let test_span_disabled_passthrough () =
  Alcotest.(check bool) "not recording" false (Obs.enabled ());
  Alcotest.(check int) "span is identity" 42 (Obs.span "x" (fun () -> 42));
  (* annotate outside a recording is a no-op, not an error *)
  Obs.annotate "k" "v"

let test_span_nesting_and_ordering () =
  let v, t =
    Obs.record (fun () ->
        Alcotest.(check bool) "recording" true (Obs.enabled ());
        let a =
          Obs.span "a" (fun () ->
              let b = Obs.span "b" (fun () -> 1) in
              let c = Obs.span ~meta:[ ("k", "v") ] "c" (fun () -> 2) in
              b + c)
        in
        let d = Obs.span "d" (fun () -> 4) in
        a + d)
  in
  Alcotest.(check int) "value" 7 v;
  Alcotest.(check int) "span count" 4 (Obs.span_count t);
  (match t.Obs.spans with
  | [ a; d ] ->
      Alcotest.(check string) "first root" "a" a.Obs.sname;
      Alcotest.(check string) "second root" "d" d.Obs.sname;
      (match a.Obs.children with
      | [ b; c ] ->
          Alcotest.(check string) "first child" "b" b.Obs.sname;
          Alcotest.(check string) "second child" "c" c.Obs.sname;
          Alcotest.(check (list (pair string string)))
            "meta" [ ("k", "v") ] c.Obs.meta;
          Alcotest.(check bool) "children start in order" true
            (b.Obs.start_us <= c.Obs.start_us);
          Alcotest.(check bool) "parent covers children" true
            (a.Obs.dur_us +. 1e-3 >= b.Obs.dur_us +. c.Obs.dur_us)
      | cs -> Alcotest.failf "expected 2 children of a, got %d" (List.length cs));
      Alcotest.(check int) "d is a leaf" 0 (List.length d.Obs.children);
      Alcotest.(check bool) "roots start in order" true
        (a.Obs.start_us <= d.Obs.start_us)
  | ss -> Alcotest.failf "expected 2 roots, got %d" (List.length ss));
  Alcotest.(check bool) "wall covers roots" true
    (t.Obs.wall_us +. 1e-3
    >= List.fold_left (fun acc s -> acc +. s.Obs.dur_us) 0. t.Obs.spans)

let test_span_exception_safety () =
  let (), t =
    Obs.record (fun () ->
        (try Obs.span "boom" (fun () -> raise Exit) with Exit -> ());
        Obs.span "after" (fun () -> ()))
  in
  (* the raising span closed and the next span is its sibling, not child *)
  Alcotest.(check (list string)) "both spans are roots" [ "boom"; "after" ]
    (List.map (fun s -> s.Obs.sname) t.Obs.spans);
  Alcotest.(check bool) "recording off after record" false (Obs.enabled ())

let test_annotate_attaches_to_open_span () =
  let (), t =
    Obs.record (fun () ->
        Obs.span "p" (fun () -> Obs.annotate "hits" "3"))
  in
  match t.Obs.spans with
  | [ p ] ->
      Alcotest.(check (list (pair string string)))
        "annotation landed" [ ("hits", "3") ] p.Obs.meta
  | _ -> Alcotest.fail "expected one root span"

(* ---- Jsonlite ---- *)

let test_jsonlite_roundtrip () =
  let v =
    Jsonlite.Obj
      [
        ("s", Jsonlite.Str "a\"b\\c\nd");
        ("n", Jsonlite.Num 1.5);
        ("i", Jsonlite.Num 42.);
        ("b", Jsonlite.Bool true);
        ("z", Jsonlite.Null);
        ("l", Jsonlite.Arr [ Jsonlite.Num 1.; Jsonlite.Str "x" ]);
        ("o", Jsonlite.Obj [ ("k", Jsonlite.Bool false) ]);
      ]
  in
  match Jsonlite.parse (Jsonlite.to_string v) with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok v' ->
      Alcotest.(check bool) "round-trips structurally" true (v = v');
      Alcotest.(check (option string)) "string member" (Some "a\"b\\c\nd")
        (Option.bind (Jsonlite.member "s" v') Jsonlite.to_str)

let test_jsonlite_rejects_garbage () =
  let bad s =
    match Jsonlite.parse s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "unterminated" true (bad "{\"a\": 1");
  Alcotest.(check bool) "trailing" true (bad "[1] x");
  Alcotest.(check bool) "bare word" true (bad "flase")

(* ---- float printing: shortest round-trip encoding ---- *)

let reparse_num (f : float) : float =
  match Jsonlite.parse (Jsonlite.to_string (Jsonlite.Num f)) with
  | Ok (Jsonlite.Num f') -> f'
  | Ok _ -> Alcotest.fail "number did not parse back as a number"
  | Error m -> Alcotest.failf "printed number does not parse: %s" m

let test_jsonlite_float_roundtrip_awkward () =
  let bits = Int64.bits_of_float in
  let awkward =
    [
      Float.min_float;                 (* smallest normal *)
      5e-324;                          (* smallest subnormal *)
      1.5e-310;                        (* mid-range subnormal *)
      1.2345678901234567e-07;          (* 1e-7-scale latency, 17 digits *)
      3.3333333333333331e-01;          (* 1/3 *)
      0.1;                             (* classic non-representable decimal *)
      1722931234567891.2;              (* large non-integer us timestamp *)
      9.007199254740993e15;            (* just past exact-integer range *)
      Float.max_float;
      -2.2250738585072011e-308;        (* negative near-subnormal boundary *)
      1.0000000000000002;              (* 1 + ulp *)
    ]
  in
  List.iter
    (fun f ->
      Alcotest.(check int64)
        (Printf.sprintf "round-trips bit-exactly: %h" f)
        (bits f) (bits (reparse_num f)))
    awkward;
  (* non-finite samples clamp to 0 by contract rather than emit bad JSON *)
  Alcotest.(check (float 0.)) "nan clamps" 0. (reparse_num nan);
  Alcotest.(check (float 0.)) "inf clamps" 0. (reparse_num infinity)

let qcheck_jsonlite_float_roundtrip =
  QCheck.Test.make ~name:"jsonlite float printing round-trips bit-exactly"
    ~count:1000
    QCheck.(
      oneof
        [
          float;
          map (fun (m, e) -> m *. (10. ** float_of_int e))
            (pair (float_bound_inclusive 1.) (int_range (-320) 15));
        ])
    (fun f ->
      if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
        true
      else Int64.bits_of_float (reparse_num f) = Int64.bits_of_float f)

(* The checked-in BENCH goldens flow through Jsonlite; after the
   shortest-round-trip fix a parse -> print -> parse cycle must be a
   structural fixpoint (bit-exact floats included, since [=] on the
   NaN-free AST compares floats by value).  Skips quietly when the
   goldens are not visible from the test cwd (sandboxed runs). *)
let test_jsonlite_golden_fixpoint () =
  let roots = [ "."; ".."; "../.."; "../../.."; "../../../.." ] in
  let root =
    List.find_opt (fun r -> Sys.file_exists (Filename.concat r "ROADMAP.md")) roots
  in
  match root with
  | None -> ()
  | Some root ->
      let goldens =
        Sys.readdir root |> Array.to_list
        |> List.filter (fun f ->
               String.length f > 6
               && String.sub f 0 6 = "BENCH_"
               && Filename.check_suffix f ".json")
      in
      Alcotest.(check bool) "found goldens" true (goldens <> []);
      List.iter
        (fun f ->
          let path = Filename.concat root f in
          let ic = open_in_bin path in
          let s =
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          match Jsonlite.parse s with
          | Error m -> Alcotest.failf "%s does not parse: %s" f m
          | Ok v -> (
              let printed = Jsonlite.to_string v in
              match Jsonlite.parse printed with
              | Error m -> Alcotest.failf "%s reprint does not parse: %s" f m
              | Ok v' ->
                  Alcotest.(check bool)
                    (f ^ " round-trips bit-exactly") true (v = v')))
        goldens

(* ---- Chrome-trace export ---- *)

let test_chrome_trace_wellformed () =
  let (), t =
    Obs.record (fun () ->
        Obs.span "outer" (fun () ->
            Obs.span ~meta:[ ("te", "q\"k") ] "inner" (fun () -> ())))
  in
  let json = Obs.to_chrome_json t in
  match Jsonlite.parse json with
  | Error m -> Alcotest.failf "emitted trace does not parse: %s" m
  | Ok v -> (
      match Option.bind (Jsonlite.member "traceEvents" v) Jsonlite.to_list with
      | None -> Alcotest.fail "no traceEvents array"
      | Some events ->
          Alcotest.(check int) "one event per span" (Obs.span_count t)
            (List.length events);
          List.iter
            (fun e ->
              Alcotest.(check (option string)) "complete event" (Some "X")
                (Option.bind (Jsonlite.member "ph" e) Jsonlite.to_str);
              Alcotest.(check bool) "has ts" true
                (Option.is_some
                   (Option.bind (Jsonlite.member "ts" e) Jsonlite.to_float));
              Alcotest.(check bool) "has dur" true
                (Option.is_some
                   (Option.bind (Jsonlite.member "dur" e) Jsonlite.to_float)))
            events;
          let names =
            List.filter_map
              (fun e -> Option.bind (Jsonlite.member "name" e) Jsonlite.to_str)
              events
          in
          Alcotest.(check (list string)) "preorder names"
            [ "outer"; "inner" ] names)

(* ---- the instrumented pipeline ---- *)

let test_compile_produces_spans () =
  let p = Lower.run (Mmoe.create ~cfg:Mmoe.tiny ()) in
  let r, t = Obs.record (fun () -> Souffle.compile p) in
  Alcotest.(check bool) "compiled" true (Souffle.num_kernels r >= 1);
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " span present") true
        (Obs.total_us t name > 0.))
    [ "compile"; "attempt"; "horizontal"; "vertical"; "analysis"; "ansor";
      "emit-kernel"; "verify-ir"; "simulate" ];
  (* exactly one attempt on a clean compile: no degradation retries *)
  let attempts = ref 0 in
  Obs.iter
    (fun s ~depth:_ -> if s.Obs.sname = "attempt" then incr attempts)
    t;
  Alcotest.(check int) "one ladder attempt" 1 !attempts

(* ---- per-kernel counter report ---- *)

let two_kernel_prog () =
  let stage ~label instrs = Kernel_ir.stage ~label instrs in
  {
    Kernel_ir.pname = "t";
    kernels =
      [
        Kernel_ir.kernel ~name:"k0_a" ~grid_blocks:108
          [
            stage ~label:"a" [ Kernel_ir.ldg 1_000_000 ];
            stage ~label:"b"
              [
                Kernel_ir.Fma { flops = 2_000_000 };
                Kernel_ir.stg 500_000;
              ];
          ];
        Kernel_ir.kernel ~name:"k1_c" ~grid_blocks:108
          [ stage ~label:"c" [ Kernel_ir.ldg 3_000_000 ] ];
      ];
  }

let test_kreport_join () =
  let sim = Sim.run dev (two_kernel_prog ()) in
  let rows = Kreport.of_sim sim in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  let r0 = List.nth rows 0 and r1 = List.nth rows 1 in
  Alcotest.(check string) "identity 0" "k0_a" r0.Kreport.r_kernel;
  Alcotest.(check string) "identity 1" "k1_c" r1.Kreport.r_kernel;
  Alcotest.(check (list string)) "tes joined from stages" [ "a"; "b" ]
    r0.Kreport.r_tes;
  Alcotest.(check (list string)) "tes kernel 1" [ "c" ] r1.Kreport.r_tes;
  Alcotest.(check int) "launch index" 1 r1.Kreport.r_index;
  (* the join attributes traffic to the right kernel *)
  Alcotest.(check int) "k0 reads" 1_000_000
    r0.Kreport.r_counters.Counters.dram_read_bytes;
  Alcotest.(check int) "k1 reads" 3_000_000
    r1.Kreport.r_counters.Counters.dram_read_bytes;
  Alcotest.(check int) "k0 writes" 500_000
    r0.Kreport.r_counters.Counters.dram_write_bytes;
  Alcotest.(check int) "k0 flops" 2_000_000
    r0.Kreport.r_counters.Counters.fma_flops;
  (* and the rows sum to the program total *)
  let sum f = List.fold_left (fun a r -> a + f r.Kreport.r_counters) 0 rows in
  Alcotest.(check int) "reads sum to total"
    sim.Sim.total.Counters.dram_read_bytes
    (sum (fun c -> c.Counters.dram_read_bytes));
  Alcotest.(check int) "launches sum to total"
    sim.Sim.total.Counters.kernel_launches
    (sum (fun c -> c.Counters.kernel_launches))

let test_kreport_json () =
  let sim = Sim.run dev (two_kernel_prog ()) in
  let json =
    Jsonlite.to_string (Kreport.to_json ~meta:[ ("model", "toy") ] sim)
  in
  match Jsonlite.parse json with
  | Error m -> Alcotest.failf "kernel report does not parse: %s" m
  | Ok v ->
      let kernels =
        Option.bind (Jsonlite.member "kernels" v) Jsonlite.to_list
      in
      Alcotest.(check int) "two kernel objects" 2
        (List.length (Option.value ~default:[] kernels));
      Alcotest.(check (option string)) "meta carried" (Some "toy")
        Option.(
          bind (Jsonlite.member "meta" v) (fun m ->
              bind (Jsonlite.member "model" m) Jsonlite.to_str))

let test_souffle_kernel_report () =
  let p = Lower.run (Mmoe.create ~cfg:Mmoe.tiny ()) in
  let r = Souffle.compile p in
  let rows = Souffle.kernel_report r in
  Alcotest.(check int) "one row per kernel" (Souffle.num_kernels r)
    (List.length rows);
  match Jsonlite.parse (Souffle.kernel_report_json ~model:"mmoe" r) with
  | Error m -> Alcotest.failf "report json: %s" m
  | Ok v ->
      Alcotest.(check (option string)) "level stamped"
        (Some (Souffle.level_to_string r.Souffle.cfg.Souffle.level))
        Option.(
          bind (Jsonlite.member "meta" v) (fun m ->
              bind (Jsonlite.member "level" m) Jsonlite.to_str))

(* ---- bench strictness ---- *)

let test_runlog_exit_codes () =
  let log = Runlog.create () in
  Alcotest.(check int) "empty, strict" 0 (Runlog.exit_code ~strict:true log);
  Runlog.record log ~model:"clean" ~degraded_steps:0 ~errors:0;
  Alcotest.(check int) "clean, strict" 0 (Runlog.exit_code ~strict:true log);
  Alcotest.(check bool) "nothing degraded" false (Runlog.any_degraded log);
  Runlog.record log ~model:"wobbly" ~degraded_steps:2 ~errors:2;
  Alcotest.(check bool) "degradation seen" true (Runlog.any_degraded log);
  Alcotest.(check int) "degraded, lax" 0 (Runlog.exit_code ~strict:false log);
  Alcotest.(check int) "degraded, strict" 3 (Runlog.exit_code ~strict:true log);
  Alcotest.(check int) "two entries" 2 (List.length (Runlog.entries log));
  Alcotest.(check int) "one dirty" 1 (List.length (Runlog.dirty log))

let test_strictness_on_degraded_compile () =
  (* a real degraded compile, as the bench harness would record it: inject
     a horizontal-pass fault, let the ladder recover at V0..V3, and check
     the run fails under strictness *)
  let p = Lower.run (Mmoe.create ~cfg:Mmoe.tiny ()) in
  Faultinject.arm (Faultinject.Fail_pass Diag.Horizontal);
  let result =
    Fun.protect ~finally:Faultinject.disarm (fun () ->
        Souffle.compile_result p)
  in
  match result with
  | Error ds ->
      Alcotest.failf "expected recovery, got: %s"
        (String.concat "; " (List.map Diag.to_string ds))
  | Ok r ->
      Alcotest.(check bool) "ladder engaged" true (r.Souffle.degraded <> []);
      let log = Runlog.create () in
      Runlog.record log ~model:"mmoe"
        ~degraded_steps:(List.length r.Souffle.degraded)
        ~errors:0;
      Alcotest.(check int) "strict bench fails" 3
        (Runlog.exit_code ~strict:true log);
      Alcotest.(check int) "lax bench passes" 0
        (Runlog.exit_code ~strict:false log)

let test_degraded_compile_has_retry_spans () =
  let p = Lower.run (Mmoe.create ~cfg:Mmoe.tiny ()) in
  Faultinject.arm (Faultinject.Fail_pass Diag.Vertical);
  let result, t =
    Obs.record (fun () ->
        Fun.protect ~finally:Faultinject.disarm (fun () ->
            Souffle.compile_result p))
  in
  match result with
  | Error _ -> Alcotest.fail "expected recovery"
  | Ok r ->
      let attempts = ref 0 in
      Obs.iter
        (fun s ~depth:_ -> if s.Obs.sname = "attempt" then incr attempts)
        t;
      Alcotest.(check bool) "retry visible in trace" true (!attempts >= 2);
      Alcotest.(check int) "trace matches report" (List.length r.Souffle.degraded)
        (!attempts - 1)

let suite =
  [
    Alcotest.test_case "span disabled passthrough" `Quick
      test_span_disabled_passthrough;
    Alcotest.test_case "span nesting and ordering" `Quick
      test_span_nesting_and_ordering;
    Alcotest.test_case "span exception safety" `Quick
      test_span_exception_safety;
    Alcotest.test_case "annotate open span" `Quick
      test_annotate_attaches_to_open_span;
    Alcotest.test_case "jsonlite roundtrip" `Quick test_jsonlite_roundtrip;
    Alcotest.test_case "jsonlite rejects garbage" `Quick
      test_jsonlite_rejects_garbage;
    Alcotest.test_case "jsonlite awkward float roundtrip" `Quick
      test_jsonlite_float_roundtrip_awkward;
    QCheck_alcotest.to_alcotest qcheck_jsonlite_float_roundtrip;
    Alcotest.test_case "jsonlite golden fixpoint" `Quick
      test_jsonlite_golden_fixpoint;
    Alcotest.test_case "chrome trace wellformed" `Quick
      test_chrome_trace_wellformed;
    Alcotest.test_case "compile produces spans" `Quick
      test_compile_produces_spans;
    Alcotest.test_case "kreport join" `Quick test_kreport_join;
    Alcotest.test_case "kreport json" `Quick test_kreport_json;
    Alcotest.test_case "souffle kernel report" `Quick
      test_souffle_kernel_report;
    Alcotest.test_case "runlog exit codes" `Quick test_runlog_exit_codes;
    Alcotest.test_case "strict on degraded compile" `Quick
      test_strictness_on_degraded_compile;
    Alcotest.test_case "degraded compile retry spans" `Quick
      test_degraded_compile_has_retry_spans;
  ]
