(** Persistent cross-run schedule cache.

    Ansor's candidate search dominates compile time, and its result for a
    TE depends only on the {!Ansor.structural_key} — device name, search
    configuration, and the TE's structure.  This module keeps a
    [key -> Sched.t] table that survives across processes as a small JSON
    file ({!Jsonlite}), so a service recompiling the same models (or new
    models sharing layer structures) skips the search entirely.

    Robustness contract: {!load} never fails.  A missing file, unparsable
    JSON, an unknown format marker, a stale version, or a malformed entry
    all degrade to a (partially) empty cache — a clean miss, never a fatal
    error.  {!save} writes through a temp file and renames, so a crashed
    writer cannot leave a torn cache behind.

    Determinism contract: entries only ever come from full-space searches
    ({!Ansor.space} [Full]; the reduced retry space bypasses the store),
    and every key records the {!Ansor.mode} that produced its schedule
    ([mode=construct] / [mode=exhaustive]), so a warm cache reproduces the
    cold serial run of the same mode bit for bit and the two modes never
    serve each other's entries. *)

let format_marker = "souffle-scache"

(** Bump when the serialized [Sched.t] shape or the key derivation changes:
    caches written by older builds are then ignored wholesale instead of
    misinterpreted.  Version 2: keys carry the producing scheduler mode
    ([|mode=...]). *)
let format_version = 2

type t = {
  entries : (string, Sched.t) Hashtbl.t;
  mutable hits : int;    (** {!find} calls answered from the cache *)
  mutable misses : int;  (** {!find} calls that fell through *)
  mutable dirty : bool;  (** entries added since {!load}/{!save} *)
}

let create () =
  { entries = Hashtbl.create 256; hits = 0; misses = 0; dirty = false }

let length t = Hashtbl.length t.entries
let hits t = t.hits
let misses t = t.misses
let dirty t = t.dirty

let find (t : t) (key : string) : Sched.t option =
  match Hashtbl.find_opt t.entries key with
  | Some s ->
      t.hits <- t.hits + 1;
      Some s
  | None ->
      t.misses <- t.misses + 1;
      None

let add (t : t) (key : string) (s : Sched.t) : unit =
  if not (Hashtbl.mem t.entries key) then begin
    Hashtbl.replace t.entries key s;
    t.dirty <- true
  end

(** The cache as an {!Ansor.store}, pluggable straight into
    [Ansor.schedule_program]. *)
let store (t : t) : Ansor.store = { Ansor.find = find t; add = add t }

(* ---- (de)serialization ---------------------------------------------- *)

let json_of_int_array (a : int array) : Jsonlite.t =
  Jsonlite.Arr
    (Array.to_list (Array.map (fun i -> Jsonlite.Num (float_of_int i)) a))

let int_array_of_json (j : Jsonlite.t) : int array option =
  match j with
  | Jsonlite.Arr items ->
      let ints = List.filter_map Jsonlite.to_float items in
      if List.length ints <> List.length items then None
      else Some (Array.of_list (List.map int_of_float ints))
  | _ -> None

let json_of_sched (s : Sched.t) : Jsonlite.t =
  Jsonlite.Obj
    [
      ("te_name", Jsonlite.Str s.Sched.te_name);
      ("tile", json_of_int_array s.Sched.tile);
      ("rtile", json_of_int_array s.Sched.rtile);
      ("rsplit", Jsonlite.Num (float_of_int s.Sched.rsplit));
      ("threads", Jsonlite.Num (float_of_int s.Sched.threads_per_block));
      ("tensor_core", Jsonlite.Bool s.Sched.use_tensor_core);
      ("cache_read", Jsonlite.Bool s.Sched.cache_read_smem);
      ("eff", Jsonlite.Num s.Sched.compute_eff);
    ]

let sched_of_json (j : Jsonlite.t) : Sched.t option =
  let ( let* ) = Option.bind in
  let* te_name = Option.bind (Jsonlite.member "te_name" j) Jsonlite.to_str in
  let* tile = Option.bind (Jsonlite.member "tile" j) int_array_of_json in
  let* rtile = Option.bind (Jsonlite.member "rtile" j) int_array_of_json in
  let* rsplit = Option.bind (Jsonlite.member "rsplit" j) Jsonlite.to_float in
  let* threads = Option.bind (Jsonlite.member "threads" j) Jsonlite.to_float in
  let* tc =
    match Jsonlite.member "tensor_core" j with
    | Some (Jsonlite.Bool b) -> Some b
    | _ -> None
  in
  let* cr =
    match Jsonlite.member "cache_read" j with
    | Some (Jsonlite.Bool b) -> Some b
    | _ -> None
  in
  let* eff = Option.bind (Jsonlite.member "eff" j) Jsonlite.to_float in
  Some
    {
      Sched.te_name;
      tile;
      rtile;
      rsplit = int_of_float rsplit;
      threads_per_block = int_of_float threads;
      use_tensor_core = tc;
      cache_read_smem = cr;
      compute_eff = eff;
    }

let to_json (t : t) : Jsonlite.t =
  let entries =
    Hashtbl.fold (fun k s acc -> (k, json_of_sched s) :: acc) t.entries []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Jsonlite.Obj
    [
      ("format", Jsonlite.Str format_marker);
      ("version", Jsonlite.Num (float_of_int format_version));
      ("entries", Jsonlite.Obj entries);
    ]

(* [Some t] only for a parsed value with the right marker and version;
   individual malformed entries are skipped, not fatal. *)
let of_json (j : Jsonlite.t) : t option =
  match
    ( Option.bind (Jsonlite.member "format" j) Jsonlite.to_str,
      Option.bind (Jsonlite.member "version" j) Jsonlite.to_float )
  with
  | Some marker, Some v
    when marker = format_marker && int_of_float v = format_version ->
      let t = create () in
      (match Jsonlite.member "entries" j with
      | Some (Jsonlite.Obj members) ->
          List.iter
            (fun (key, sj) ->
              match sched_of_json sj with
              | Some s -> Hashtbl.replace t.entries key s
              | None -> ())
            members
      | _ -> ());
      Some t
  | _ -> None

(* ---- file I/O -------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Load the cache at [path].  Total: any problem — missing file, I/O
    error, bad JSON, wrong format marker, stale version — yields an empty
    cache. *)
let load (path : string) : t =
  match read_file path with
  | exception _ -> create ()
  | contents -> (
      match Jsonlite.parse contents with
      | Error _ -> create ()
      | Ok j -> ( match of_json j with Some t -> t | None -> create ()))

(** Write the cache to [path] (temp file + rename, so readers never see a
    torn file) and clear the dirty flag. *)
let save (t : t) (path : string) : unit =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Jsonlite.to_string (to_json t)));
  Sys.rename tmp path;
  t.dirty <- false

let pp ppf (t : t) =
  Fmt.pf ppf "schedule cache: %d entr%s, %d hit(s), %d miss(es)" (length t)
    (if length t = 1 then "y" else "ies")
    t.hits t.misses
