(** Ablation benches for the design choices DESIGN.md calls out — beyond the
    paper's own V0..V4 study (Table 4), these isolate individual mechanisms:

    - the §6.5 LRU shared-memory cache vs. no cache at all,
    - §6.5 instruction pipelining on/off,
    - the cooperative-launch capacity fraction the partitioner assumes,
    - the horizontal-transformation group-size cap. *)

let dev = Device.a100

let compile_custom ~reuse ~pipeline (p : Program.t) : Sim.result =
  let p1, _ = Horizontal.apply p in
  let p2, _ = Vertical.apply ~fold_into_reduce:true p1 in
  let an = Analysis.run p2 in
  let scheds = Ansor.schedule_program dev p2 in
  let part = Partition.run dev an scheds in
  let groups = List.map Emit.group_of_subprogram part.Partition.subprograms in
  let opts =
    { Emit.default_options with Emit.reuse_cache = reuse; pipeline }
  in
  Sim.run dev (Emit.emit dev p2 an scheds opts groups)

let run () =
  Tables.section "Ablation — §6.5 mechanisms in isolation (full models, ms)";
  Fmt.pr "  %-14s %10s %10s %10s %10s@." "" "none" "+reuse" "+pipeline"
    "+both";
  List.iter
    (fun name ->
      let e = Option.get (Zoo.find name) in
      let p = Lower.run (e.Zoo.full ()) in
      let t ~reuse ~pipeline = Sim.time_ms (compile_custom ~reuse ~pipeline p) in
      Fmt.pr "  %-14s %10.3f %10.3f %10.3f %10.3f@." e.Zoo.name
        (t ~reuse:false ~pipeline:false)
        (t ~reuse:true ~pipeline:false)
        (t ~reuse:false ~pipeline:true)
        (t ~reuse:true ~pipeline:true))
    [ "BERT"; "LSTM"; "EfficientNet" ];
  Tables.note "reuse cuts DRAM traffic; pipelining overlaps loads with tensor-core math";

  Tables.section "Ablation — cooperative-capacity fraction (BERT, kernels / ms)";
  let p = Lower.run (Bert.create ()) in
  List.iter
    (fun frac ->
      let device = { dev with Device.coop_capacity_frac = frac } in
      let r =
        Tables.compile_recorded
          ~name:(Fmt.str "BERT@coop-frac=%.2f" frac)
          ~cfg:(Souffle.config ~device ()) p
      in
      Fmt.pr "  frac=%.2f  kernels=%-4d syncs=%-4d time=%.3f ms@." frac
        (Souffle.num_kernels r)
        r.Souffle.sim.Sim.total.Counters.grid_syncs
        (Souffle.time_ms r))
    [ 0.25; 0.5; 0.75; 1.0 ];
  Tables.note "larger budgets fuse more aggressively: fewer kernels, more grid syncs";
  Tables.note "frac=1.0 over-fuses and slows down - the Sec. 9 'Slowdown' effect:";
  Tables.note "grid syncs serialize stages whose own grids under-fill the device";

  Tables.section "Ablation — LRU cache capacity (BERT attention subgraph)";
  let p = Lower.run (Bert.attention_subgraph ()) in
  let p1, _ = Horizontal.apply p in
  let p2, _ = Vertical.apply ~fold_into_reduce:true p1 in
  let an = Analysis.run p2 in
  let scheds = Ansor.schedule_program dev p2 in
  let part = Partition.run dev an scheds in
  let groups = List.map Emit.group_of_subprogram part.Partition.subprograms in
  List.iter
    (fun frac ->
      let opts = { Emit.default_options with Emit.cache_capacity_frac = frac } in
      let sim = Sim.run dev (Emit.emit dev p2 an scheds opts groups) in
      Fmt.pr "  cache=%4.0f%% of aggregate smem: DRAM %6.2f MB, time %7.2f us@."
        (100. *. frac)
        (Counters.mb (Counters.global_load_bytes sim.Sim.total))
        sim.Sim.total.Counters.time_us)
    [ 0.0; 0.125; 0.25; 0.5; 1.0 ];
  Tables.note "a bigger on-chip budget keeps more intermediates out of DRAM"
