(** Quasi-affine maps [v ↦ M·v + c] from an output iteration space into an
    input tensor's index space (§5.2).  For a one-relies-on-one TE, each input
    access is exactly one such map; composing the maps along a chain of TEs
    (Eq. 2) is what powers vertical transformation. *)

type t = {
  mat : Matrix.t;   (** rows = input tensor rank, cols = output rank *)
  off : int array;  (** the constant vector [c], length = input rank *)
}

let make mat off =
  if Matrix.rows mat <> Array.length off then invalid_arg "Amap.make";
  { mat; off }

let identity n = { mat = Matrix.identity n; off = Array.make n 0 }

let in_rank t = Matrix.rows t.mat
let out_rank t = Matrix.cols t.mat

let apply t v = Matrix.add_vec (Matrix.mul_vec t.mat v) t.off

(** [compose outer inner] is the map [v ↦ outer (inner v)] — Eq. 2:
    [f_{i+1,i}(v) = M_{i+1}·(M_i·v + c_i) + c_{i+1}]. *)
let compose outer inner =
  if in_rank inner <> out_rank outer then invalid_arg "Amap.compose: rank";
  {
    mat = Matrix.mul outer.mat inner.mat;
    off = Matrix.add_vec (Matrix.mul_vec outer.mat inner.off) outer.off;
  }

let equal a b = Matrix.equal a.mat b.mat && a.off = b.off

let pp ppf t =
  Fmt.pf ppf "%a + [%a]" Matrix.pp t.mat Fmt.(array ~sep:(any " ") int) t.off

let to_string t = Fmt.str "%a" pp t

(** Extract the affine map of a tensor access inside a TE body: the list of
    per-dimension index expressions must be affine in the output variables
    only (no reduction variables, no residual div/mod).  Returns the paper's
    [M·v + c] row-per-dimension representation. *)
let of_access ~(te : Te.t) (idxs : Index.t list) : t option =
  let n_out = Te.rank te in
  let raxes = Te.reduce_axes te in
  let n_red = Array.length raxes in
  let ov_ext = te.Te.out_shape and rv_ext = raxes in
  let rows =
    List.map
      (fun i -> Index.to_affine ~ov_ext ~rv_ext ~n_out ~n_red i)
      idxs
  in
  if List.exists Option.is_none rows then None
  else begin
    let rows = List.map Option.get rows in
    if List.exists (fun (_, rc, _) -> Array.exists (fun c -> c <> 0) rc) rows
    then None (* depends on a reduction variable: not one-relies-on-one *)
    else begin
      let m = Matrix.create (List.length rows) n_out in
      let off = Array.make (List.length rows) 0 in
      List.iteri
        (fun r (oc, _, c) ->
          Array.iteri (fun j v -> Matrix.set m r j v) oc;
          off.(r) <- c)
        rows;
      Some { mat = m; off }
    end
  end

(** The affine maps of every access of a one-relies-on-one TE, keyed by the
    input tensor name; [None] if any access falls outside the affine class. *)
let of_te (te : Te.t) : (string * t) list option =
  if Te.has_reduction te then None
  else begin
    let accesses = Te.accesses te in
    let maps =
      List.map (fun (name, idxs) -> (name, of_access ~te idxs)) accesses
    in
    if List.exists (fun (_, m) -> Option.is_none m) maps then None
    else Some (List.map (fun (name, m) -> (name, Option.get m)) maps)
  end
