lib/gpu/counters.ml: Fmt
