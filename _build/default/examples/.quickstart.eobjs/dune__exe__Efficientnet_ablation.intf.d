examples/efficientnet_ablation.mli:
