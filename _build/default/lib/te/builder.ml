(** Combinators for building common TEs concisely (the [te.compute] /
    [te.reduce_axis] surface of Fig. 2, as an OCaml DSL).  Used by the graph
    lowerer, the tests, and the examples. *)

open Expr

let ov = Index.ov
let rv = Index.rv
let ic = Index.const

(** Identity access of an [n]-d tensor at the output point. *)
let at ?(rank = 2) name = Read (name, List.init rank ov)

let read name idxs = Read (name, idxs)

(** Dense matmul [C[i,j] = sum_k A[i,k] * B[k,j]] with C : (m, n). *)
let matmul ?(tag = "matmul") ?(dtype = Dtype.F32) ~name ~m ~n ~k a b =
  Te.reduce ~tag ~name ~shape:[| m; n |] ~dtype ~op:Te.Sum
    ~axes:[| k |]
    (Binop (Mul, Read (a, [ ov 0; rv 0 ]), Read (b, [ rv 0; ov 1 ])))

(** Matmul with transposed second operand: [C[i,j] = sum_k A[i,k]*B[j,k]]. *)
let matmul_nt ?(tag = "matmul_nt") ?(dtype = Dtype.F32) ~name ~m ~n ~k a b =
  Te.reduce ~tag ~name ~shape:[| m; n |] ~dtype ~op:Te.Sum
    ~axes:[| k |]
    (Binop (Mul, Read (a, [ ov 0; rv 0 ]), Read (b, [ ov 1; rv 0 ])))

(** Batched matmul over shapes (b, m, k) x (b, k, n). *)
let batch_matmul ?(tag = "batch_matmul") ?(dtype = Dtype.F32) ~name ~b ~m ~n ~k
    x y =
  Te.reduce ~tag ~name ~shape:[| b; m; n |] ~dtype ~op:Te.Sum
    ~axes:[| k |]
    (Binop
       (Mul, Read (x, [ ov 0; ov 1; rv 0 ]), Read (y, [ ov 0; rv 0; ov 2 ])))

(** GEMV: [y[i] = sum_k W[i,k] * x[k]]. *)
let gemv ?(tag = "gemv") ?(dtype = Dtype.F32) ~name ~m ~k w x =
  Te.reduce ~tag ~name ~shape:[| m |] ~dtype ~op:Te.Sum ~axes:[| k |]
    (Binop (Mul, Read (w, [ ov 0; rv 0 ]), Read (x, [ rv 0 ])))

(** Element-wise unary op over an arbitrary shape. *)
let unary ?(tag = "unary") ?(dtype = Dtype.F32) ~name ~shape op src =
  let rank = Shape.rank shape in
  Te.compute ~tag ~name ~shape ~dtype (Unop (op, at ~rank src))

(** Element-wise binary op between two same-shaped tensors. *)
let binary ?(tag = "binary") ?(dtype = Dtype.F32) ~name ~shape op a b =
  let rank = Shape.rank shape in
  Te.compute ~tag ~name ~shape ~dtype (Binop (op, at ~rank a, at ~rank b))

(** Add a 1-d bias broadcast along the last dimension. *)
let bias_add ?(tag = "bias_add") ?(dtype = Dtype.F32) ~name ~shape src bias =
  let rank = Shape.rank shape in
  Te.compute ~tag ~name ~shape ~dtype
    (Binop (Add, at ~rank src, Read (bias, [ ov (rank - 1) ])))

(** Scale by a scalar constant. *)
let scale ?(tag = "scale") ?(dtype = Dtype.F32) ~name ~shape src c =
  let rank = Shape.rank shape in
  Te.compute ~tag ~name ~shape ~dtype (Binop (Mul, at ~rank src, Const c))

(** Reduction over the last axis of a 2-d tensor: out (m). *)
let reduce_last ?(tag = "reduce") ?(dtype = Dtype.F32) ~name ~m ~k op src =
  Te.reduce ~tag ~name ~shape:[| m |] ~dtype ~op ~axes:[| k |]
    (Read (src, [ ov 0; rv 0 ]))

(** Transpose / general permutation of dimensions. *)
let permute ?(tag = "permute") ?(dtype = Dtype.F32) ~name ~in_shape ~perm src =
  let out_shape = Array.map (fun d -> in_shape.(d)) perm in
  let rank = Array.length perm in
  (* out[i0..in] = in[i_{inv 0} .. ]: input dim d comes from out dim where
     perm maps to it *)
  let inv = Array.make rank 0 in
  Array.iteri (fun o d -> inv.(d) <- o) perm;
  Te.compute ~tag ~name ~shape:out_shape ~dtype
    (Read (src, List.init rank (fun d -> ov inv.(d))))

(** Row-major reshape. *)
let reshape ?(tag = "reshape") ?(dtype = Dtype.F32) ~name ~in_shape ~out_shape
    src =
  if Shape.numel in_shape <> Shape.numel out_shape then
    invalid_arg "Builder.reshape: numel mismatch";
  let out_strides = Shape.strides out_shape in
  (* linear offset as an index expression *)
  let linear =
    Array.to_list out_strides
    |> List.mapi (fun i s -> Index.Mul (ov i, s))
    |> function
    | [] -> ic 0
    | x :: rest -> List.fold_left (fun a b -> Index.Add (a, b)) x rest
  in
  let in_strides = Shape.strides in_shape in
  let idxs =
    List.init (Shape.rank in_shape) (fun d ->
        Index.Mod (Index.Div (linear, in_strides.(d)), in_shape.(d)))
  in
  Te.compute ~tag ~name ~shape:out_shape ~dtype (Read (src, idxs))

(** Static slice: out[i..] = in[i + start..]. *)
let slice ?(tag = "slice") ?(dtype = Dtype.F32) ~name ~starts ~sizes src =
  let rank = Array.length sizes in
  Te.compute ~tag ~name ~shape:sizes ~dtype
    (Read (src, List.init rank (fun d -> Index.Add (ov d, ic starts.(d)))))

(** Strided slice along one axis (Fig. 4's example). *)
let strided_slice ?(tag = "strided_slice") ?(dtype = Dtype.F32) ~name ~in_shape
    ~axis ~start ~stride ~size src =
  let out_shape = Array.copy in_shape in
  out_shape.(axis) <- size;
  let rank = Array.length in_shape in
  Te.compute ~tag ~name ~shape:out_shape ~dtype
    (Read
       ( src,
         List.init rank (fun d ->
             if d = axis then Index.Add (Index.Mul (ov d, stride), ic start)
             else ov d) ))

(** Concatenate two tensors along [axis] using a predicate on the output
    index (the Fig. 3 pattern). *)
let concat2 ?(tag = "concat") ?(dtype = Dtype.F32) ~name ~axis ~shape_a
    ~shape_b a b =
  let out_shape = Shape.concat_axis ~axis shape_a shape_b in
  let rank = Array.length out_shape in
  let split = shape_a.(axis) in
  let idx_a = List.init rank ov in
  let idx_b =
    List.init rank (fun d ->
        if d = axis then Index.Add (ov d, ic (-split)) else ov d)
  in
  Te.compute ~tag ~name ~shape:out_shape ~dtype
    (Select (Cmp (Lt, ov axis, ic split), Read (a, idx_a), Read (b, idx_b)))

(** Broadcast a lower-rank tensor across leading dims:
    out[i0..,j..] = in[j..] where [src_rank] trailing dims match. *)
let broadcast ?(tag = "broadcast") ?(dtype = Dtype.F32) ~name ~shape ~src_rank
    src =
  let rank = Shape.rank shape in
  Te.compute ~tag ~name ~shape ~dtype
    (Read (src, List.init src_rank (fun d -> ov (rank - src_rank + d))))

(** Softmax over the last axis of a 2-d tensor, as the multi-TE program of
    §1 ("a softmax operator can be represented by two TEs"): max-reduce,
    exp-subtract, sum-reduce, divide.  Returns the TEs in order; the final
    tensor is [name]. *)
let softmax2d ?(dtype = Dtype.F32) ~name ~m ~k src =
  let mx = name ^ ".max" and ex = name ^ ".exp" and sm = name ^ ".sum" in
  [
    reduce_last ~tag:"softmax.max" ~dtype ~name:mx ~m ~k Te.Max src;
    Te.compute ~tag:"softmax.exp" ~name:ex ~shape:[| m; k |] ~dtype
      (Unop (Exp, Binop (Sub, at src, Read (mx, [ ov 0 ]))));
    reduce_last ~tag:"softmax.sum" ~dtype ~name:sm ~m ~k Te.Sum ex;
    Te.compute ~tag:"softmax.div" ~name ~shape:[| m; k |] ~dtype
      (Binop (Div, at ex, Read (sm, [ ov 0 ])));
  ]
