(** The six baseline systems of §7.2, implemented as alternative
    fusion/grouping strategies over the same TE programs, costed by the
    same emitter and simulator as Souffle.  Each system reproduces the
    structural behaviours the paper attributes to it; where a system
    "Failed" in Table 3, the corresponding structural limitation is
    detected and reported. *)

module SSet = Program.SSet

type system = Xla | Ansor_tvm | Tensorrt | Rammer | Apollo | Iree

let all = [ Xla; Ansor_tvm; Tensorrt; Rammer; Apollo; Iree ]

let profile = function
  | Xla -> Profiles.xla
  | Ansor_tvm -> Profiles.ansor
  | Tensorrt -> Profiles.tensorrt
  | Rammer -> Profiles.rammer
  | Apollo -> Profiles.apollo
  | Iree -> Profiles.iree

let name s = (profile s).Profiles.sys_name

type success = {
  system : system;
  prog : Kernel_ir.prog;
  sim : Sim.result;
  groups : Emit.group list;
  compile_s : float;
}

let time_ms (s : success) = Sim.time_ms s.sim
let num_kernels (s : success) = List.length s.prog.Kernel_ir.kernels

(* ---------- shared helpers ------------------------------------------ *)

let is_library_op (te : Te.t) =
  List.mem te.Te.tag [ "matmul"; "batch_matmul"; "gemv"; "conv2d"; "dwconv2d" ]

let is_conv (te : Te.t) =
  te.Te.tag = "conv2d" || te.Te.tag = "dwconv2d"

let mk_group ?(cooperative = false) ?(library_call = false) ?eff_override tes
    =
  {
    Emit.g_tes = List.rev_map (fun (te : Te.t) -> te.Te.name) tes |> List.rev;
    cooperative;
    library_call;
    eff_override;
  }

(* group a run of TEs collected in reverse order *)
let flush_rev ?eff_override rev_tes acc =
  match rev_tes with
  | [] -> acc
  | tes -> mk_group ?eff_override (List.rev tes) :: acc

(* longest producer chain in the program *)
let longest_chain (p : Program.t) : int =
  Program.SMap.fold
    (fun _ d acc -> max d acc)
    (List.fold_left
       (fun acc (te : Te.t) ->
         let d =
           List.fold_left
             (fun m i ->
               match Program.SMap.find_opt i acc with
               | Some di -> max m (di + 1)
               | None -> m)
             0 (Te.inputs te)
         in
         Program.SMap.add te.Te.name d acc)
       Program.SMap.empty p.Program.tes)
    0

(* ---------- per-system grouping -------------------------------------- *)

(* XLA: GEMM/Conv become opaque library calls (cuBLAS/cuDNN); the rest is
   fused into elementwise+reduction clusters, but a cluster never holds two
   reductions (the paper: "XLA's fusion heuristic cannot fuse two
   consecutive reduction operators", §8.1). *)
let xla_groups (prof : Profiles.t) (p : Program.t) : Emit.group list =
  let rec go acc cur cur_has_red = function
    | [] -> List.rev (flush_rev cur acc)
    | (te : Te.t) :: rest ->
        if is_library_op te then begin
          let acc = flush_rev cur acc in
          let acc =
            mk_group ~library_call:true ?eff_override:prof.Profiles.library_eff
              [ te ]
            :: acc
          in
          go acc [] false rest
        end
        else if Te.has_reduction te && cur_has_red then
          go (flush_rev cur acc) [ te ] true rest
        else if Te.has_reduction te then go acc (te :: cur) true rest
        else go acc (te :: cur) cur_has_red rest
  in
  go [] [] false p.Program.tes

(* Ansor/TVM: classic epilogue fusion — every reduction starts a kernel and
   absorbs the one-relies-on-one TEs that consume it. *)
let ansor_groups (p : Program.t) : Emit.group list = Souffle.ansor_groups p

(* TensorRT: hand-crafted fusion rules.  Compute-intensive reductions start
   a kernel and absorb adjacent element-wise TEs; runs of memory-side TEs
   (softmax, layernorm, layout chains) are fused into single hand-written
   kernels — but never across a compute kernel boundary (§2.3). *)
let tensorrt_groups (an : Analysis.t) (prof : Profiles.t) (p : Program.t) :
    Emit.group list =
  let is_compute (te : Te.t) =
    (Analysis.info an te.Te.name).Analysis.kind = Intensity.Compute_intensive
  in
  let rec go acc cur cur_kind tes =
    match tes with
    | [] -> List.rev (flush_for cur_kind cur acc)
    | (te : Te.t) :: rest ->
        if is_compute te then begin
          let acc = flush_for cur_kind cur acc in
          go acc [ te ] `Compute rest
        end
        else if Te.has_reduction te then begin
          (* Reductions belonging to a composite operator TensorRT has a
             hand-written fused kernel for (softmax, layernorm, pooling)
             join a memory fusion run; any other reduction (GEMV, small
             GEMM below the compute threshold) is its own kernel. *)
          let composite =
            List.exists
              (fun prefix -> Astring_contains.contains te.Te.tag prefix)
              [ "softmax"; "layernorm"; "pool"; "reduce" ]
          in
          if composite then begin
            match cur_kind with
            | `Memory -> go acc (te :: cur) `Memory rest
            | `Compute | `None ->
                let acc = flush_for cur_kind cur acc in
                go acc [ te ] `Memory rest
          end
          else begin
            let acc = flush_for cur_kind cur acc in
            go acc [ te ] `Compute rest
          end
        end
        else begin
          (* element-wise: stays with whatever run is open *)
          match cur_kind with
          | `None -> go acc [ te ] `Memory rest
          | k -> go acc (te :: cur) k rest
        end
  and flush_for kind cur acc =
    match cur with
    | [] -> acc
    | tes ->
        let eff_override =
          match kind with
          | `Compute when is_conv (List.hd (List.rev tes)) ->
              prof.Profiles.conv_eff
          | _ -> None
        in
        mk_group ?eff_override (List.rev tes) :: acc
  in
  go [] [] `None p.Program.tes

(* Rammer: wavefront (rTask) scheduling — all operators at the same
   dependency depth share one kernel; no global synchronization, weights
   are re-loaded every wavefront (Fig. 7a, Table 6). *)
let rammer_groups (p : Program.t) : Emit.group list =
  let depth = Horizontal.depths p in
  let by_depth : (int, Te.t list) Hashtbl.t = Hashtbl.create 64 in
  let max_d = ref 0 in
  List.iter
    (fun (te : Te.t) ->
      let d = Program.SMap.find te.Te.name depth in
      max_d := max !max_d d;
      Hashtbl.replace by_depth d
        (te :: Option.value ~default:[] (Hashtbl.find_opt by_depth d)))
    p.Program.tes;
  List.init (!max_d + 1) (fun d ->
      match Hashtbl.find_opt by_depth d with
      | None -> None
      | Some tes -> Some (mk_group (List.rev tes)))
  |> List.filter_map Fun.id

(* Apollo: partition-based fusion of memory-bound operators; every
   compute-intensive reduction is its own kernel, every memory-side
   reduction is its own kernel (two reductions only fuse with equal tile
   sizes, which adjacent softmax/layernorm reductions do not have, §8.1),
   and runs of element-wise operators fuse. *)
let apollo_groups (an : Analysis.t) (p : Program.t) : Emit.group list =
  let is_compute (te : Te.t) =
    (Analysis.info an te.Te.name).Analysis.kind = Intensity.Compute_intensive
  in
  let rec go acc cur = function
    | [] -> List.rev (flush_rev cur acc)
    | (te : Te.t) :: rest ->
        if is_compute te || Te.has_reduction te then
          go (mk_group [ te ] :: flush_rev cur acc) [] rest
        else go acc (te :: cur) rest
  in
  go [] [] p.Program.tes

(* IREE: producer-consumer tile-and-fuse through linalg — epilogue and
   prologue fusion of element-wise operators, no fusion between
   compute-intensive operators (cannot fuse batch_matmuls, §8.1), conv
   through untuned direct codegen. *)
let iree_groups (prof : Profiles.t) (p : Program.t) : Emit.group list =
  List.map
    (fun (g : Emit.group) ->
      let anchor = Program.find_te_exn p (List.hd g.Emit.g_tes) in
      let anchor =
        match
          List.find_opt
            (fun n -> Te.has_reduction (Program.find_te_exn p n))
            g.Emit.g_tes
        with
        | Some n -> Program.find_te_exn p n
        | None -> anchor
      in
      if is_conv anchor then { g with Emit.eff_override = prof.Profiles.conv_eff }
      else g)
    (ansor_groups p)

(* ---------- compile-failure detection -------------------------------- *)

(* Table 3 reports Rammer failing on EfficientNet, Swin and MMoE, and
   Apollo failing on LSTM.  The structural causes stood in here: Rammer
   v0.4 has no kernel implementations for depthwise convolutions, shifted
   (rolled) windows, or mixture-of-expert gating; Apollo's layer-by-layer
   partitioning does not terminate on graphs with dependence chains
   thousands of operators deep (a fully unrolled LSTM). *)
let check_supported (s : system) (p : Program.t) : (unit, string) result =
  match s with
  | Rammer ->
      let bad (te : Te.t) =
        te.Te.tag = "dwconv2d"
        || Astring_contains.contains te.Te.name "moe_gate"
        || Astring_contains.contains te.Te.name "_roll"
      in
      (match List.find_opt bad p.Program.tes with
      | Some te ->
          Error
            (Fmt.str "Failed: no rTask kernel for operator %s (%s)"
               te.Te.name te.Te.tag)
      | None -> Ok ())
  | Apollo ->
      (* Apollo's partition search walks the graph layer by layer; on a
         fully unrolled 100-step LSTM (tens of thousands of operators) it
         does not come back (Table 3 "Failed"). *)
      let n = List.length p.Program.tes in
      if n > 10_000 then
        Error
          (Fmt.str "Failed: partition search diverges on %d operators" n)
      else Ok ()
  | Xla | Ansor_tvm | Tensorrt | Iree -> Ok ()

(* ---------- driver ---------------------------------------------------- *)

let emit_options (s : system) : Emit.options =
  let prof = profile s in
  let base =
    {
      Emit.default_options with
      Emit.reuse_cache = false;
      pipeline = false;
      mem_eff = prof.Profiles.mem_eff;
      movement_mem_eff = prof.Profiles.movement_mem_eff;
    }
  in
  match s with
  | Xla -> { base with Emit.attach_epilogue = true; attach_prologue = true }
  | Ansor_tvm -> { base with Emit.attach_epilogue = true; attach_prologue = false }
  | Tensorrt -> { base with Emit.attach_epilogue = true; attach_prologue = true }
  | Rammer ->
      { base with
        Emit.attach_epilogue = false;
        attach_prologue = false;
        concurrent_stages = true;
      }
  | Apollo -> { base with Emit.attach_epilogue = false; attach_prologue = false }
  | Iree -> { base with Emit.attach_epilogue = true; attach_prologue = true }

let run ?(device = Device.a100) (s : system) (p : Program.t) :
    (success, string) result =
  match check_supported s p with
  | Error m -> Error m
  | Ok () ->
      let t0 = Unix.gettimeofday () in
      let prof = profile s in
      (* Rammer replaces per-kernel launches with compile-time-scheduled
         rTask dispatches inside persistent workers, cutting the per-unit
         dispatch latency well below a cudaLaunchKernel (§7.2). *)
      let device =
        match s with
        | Rammer -> { device with Device.kernel_launch_us = 0.3 }
        | _ -> device
      in
      let an = Analysis.run p in
      let scheds =
        Ansor.schedule_program
          ~config:{ Ansor.default_config with Ansor.eff_cap = prof.Profiles.eff_cap }
          device p
      in
      let groups =
        match s with
        | Xla -> xla_groups prof p
        | Ansor_tvm -> ansor_groups p
        | Tensorrt -> tensorrt_groups an prof p
        | Rammer -> rammer_groups p
        | Apollo -> apollo_groups an p
        | Iree -> iree_groups prof p
      in
      let opts = emit_options s in
      let prog = Emit.emit device p an scheds opts groups in
      let sim = Sim.run device prog in
      Ok { system = s; prog; sim; groups; compile_s = Unix.gettimeofday () -. t0 }
