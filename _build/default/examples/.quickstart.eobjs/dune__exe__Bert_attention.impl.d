examples/bert_attention.ml: Analysis Baseline Bert Counters Dep Dgraph Fmt Horizontal Kernel_ir List Lower Program Reuse Sim Souffle String Te Vertical
