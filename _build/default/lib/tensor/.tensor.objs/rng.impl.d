lib/tensor/rng.ml: Int64
