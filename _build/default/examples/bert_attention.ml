(* The paper's motivating example (Sec. 2, Fig. 1, Table 1): how TensorRT,
   Apollo and Souffle map a BERT attention block onto GPU kernels, and why
   the mappings differ in kernel count, global-memory traffic and time.

     dune exec examples/bert_attention.exe
*)

let show_system name (prog : Kernel_ir.prog) (sim : Sim.result) =
  Fmt.pr "@.=== %s ===@." name;
  Fmt.pr "kernels: %d  grid syncs: %d@."
    (List.length prog.Kernel_ir.kernels)
    sim.Sim.total.Counters.grid_syncs;
  Fmt.pr "time: %.2f us (compute-heavy stages %.2f us, memory-heavy %.2f us)@."
    sim.Sim.total.Counters.time_us sim.Sim.total_compute_us
    sim.Sim.total_memory_us;
  Fmt.pr "bytes from global: %.2f MB@."
    (Counters.mb (Counters.global_load_bytes sim.Sim.total));
  Fmt.pr "kernel mapping:@.";
  List.iter
    (fun (k : Kernel_ir.kernel) ->
      Fmt.pr "  %-44s <<<%d>>> stages: %s@." k.Kernel_ir.kname
        k.Kernel_ir.grid_blocks
        (String.concat " | "
           (List.map (fun (s : Kernel_ir.stage) -> s.Kernel_ir.label)
              k.Kernel_ir.stages)))
    prog.Kernel_ir.kernels

let () =
  (* one encoder attention layer of BERT-base, FP16, seq 384 *)
  let graph = Bert.attention_subgraph () in
  let p = Lower.run graph in
  Fmt.pr "BERT attention subgraph: %d operators -> %d TEs@."
    (Dgraph.num_nodes graph)
    (List.length p.Program.tes);

  (* the Fig. 2-style analysis result *)
  let an = Analysis.run p in
  Fmt.pr "@.analysis: %d compute-intensive TEs, %d memory-intensive,@."
    (List.length (Analysis.compute_intensive an))
    (List.length (Analysis.memory_intensive an));
  Fmt.pr "temporal-reuse tensors: %s@."
    (String.concat ", " (Reuse.temporal_tensors an.Analysis.reuse));
  Fmt.pr "spatial-reuse tensors: %s@."
    (String.concat ", " (Reuse.spatial_tensors an.Analysis.reuse));

  (* element-wise dependence relations for a couple of representative TEs,
     in the paper's polyhedral notation (Sec. 5.2) *)
  Fmt.pr "@.element-wise dependence relations:@.";
  List.iteri
    (fun i (te : Te.t) ->
      if i < 3 then Fmt.pr "  %s@." (Dep.relation_to_string te))
    p.Program.tes;

  (* three compilers, one subgraph *)
  (match Baseline.run Baseline.Tensorrt p with
  | Ok r -> show_system "TensorRT (rule-based fusion)" r.Baseline.prog r.Baseline.sim
  | Error m -> Fmt.pr "TensorRT failed: %s@." m);
  (match Baseline.run Baseline.Apollo p with
  | Ok r -> show_system "Apollo (partition-based fusion)" r.Baseline.prog r.Baseline.sim
  | Error m -> Fmt.pr "Apollo failed: %s@." m);
  let ours = Souffle.compile p in
  show_system "Souffle (global analysis + TE transformation)"
    ours.Souffle.prog ours.Souffle.sim;
  Fmt.pr "@.TE program after Souffle's transformations (%d -> %d TEs):@."
    (List.length p.Program.tes)
    (List.length ours.Souffle.transformed.Program.tes);
  Fmt.pr "  horizontal: %d groups merged (QKV projections share x)@."
    ours.Souffle.hstats.Horizontal.groups_merged;
  Fmt.pr "  vertical: %d arithmetic chains fused, %d layout operators folded@."
    ours.Souffle.vstats.Vertical.chains_fused
    ours.Souffle.vstats.Vertical.movement_folded;
  match Souffle.verify ours with
  | Ok () -> Fmt.pr "@.semantic check: PASS@."
  | Error m -> Fmt.pr "@.semantic check FAILED: %s@." m
