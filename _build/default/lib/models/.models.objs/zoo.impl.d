lib/models/zoo.ml: Bert Dgraph Efficientnet List Lstm Mmoe Resnext String Swin
