(** Admission and dispatch on top of {!Sim.Multi}, with a full request
    lifecycle.

    The scheduler owns the request queue: arrivals enter a pending queue,
    and whenever a concurrency slot is free the configured policy picks the
    next request and launches its compiled artifact as a stream on the
    multi-stream engine.  Policies:

    - [Fifo]: strict arrival order.
    - [Sel]: shortest expected latency first — the estimate is the
      artifact's simulated *solo* latency, which the compiler already
      produced for free; ties keep arrival order.

    [max_streams] bounds how many requests may share the device at once
    (the serving concurrency knob); everything else queues.

    On top of the PR 5 happy path, requests now have a lifecycle:

    - {b Deadlines.}  A request carrying an SLO (its own
      [Workload.rq_slo_us], or the scheduler-wide [deadline_us] default)
      must finish within that budget of its arrival.  A watchdog cancels
      in-flight streams at their deadline (freeing the slot for the next
      queued request) and expires queued requests whose deadline passed —
      terminal outcome [timed_out].
    - {b Retries.}  A stream struck by a runtime kernel fault (or hung
      forever) terminates [Faulted]; the request re-enters the queue after
      a deterministic linear backoff — the k-th retry (1-based) becomes
      ready [k * backoff_us] after its fault — on a fresh stream, at most
      [retries] times.  Retries exhausted is the terminal
      outcome [failed].
    - {b Admission control.}  A bounded pending queue ([queue_cap]) with a
      drop policy: [Reject] drops the newest arrival on overflow;
      [Shed] first sheds queued requests that can no longer meet their SLO
      given the solo-latency estimate (terminal outcome [rejected]).
    - {b Chaos.}  An armed {!Faultinject.chaos} spec derives a
      deterministic per-attempt fault plan (seeded by request id and
      attempt number) and an optional device-throttle window, so the same
      (seed, chaos, workload) triple reproduces byte-identical outcomes.

    - {b Continuous batching.}  With [max_batch > 1], a dispatch
      opportunistically coalesces queued first-attempt requests for the
      same model into one stream compiled at a {e bucketed} batch shape:
      the largest power of two <= min(available peers, [max_batch]) for
      which a batched artifact was supplied (powers of two keep the set of
      shapes small, so the schedule cache amortizes the recompiles).
      Members join at dispatch and split out at the stream boundary: each
      keeps its own arrival time, deadline, retry budget, and terminal
      outcome.  A kernel fault inside a batched stream retries the members
      {e individually} — retries never re-batch, so one poisoned request
      cannot keep killing its neighbours.  A member whose deadline passes
      mid-flight times out alone; the stream is only cancelled when every
      member has expired.

    - {b Prefill/decode lifecycle.}  A {e generation} request
      ([Workload.rq_gen > 0]) is served as one prefill dispatch followed by
      [rq_gen] single-token decode steps, each re-entering the queue when
      the previous phase finishes (carrying the KV state as its position).
      Decode step [t] runs the decode artifact whose position bucket is the
      smallest registered [art_pos >= gen_prompt + t - 1] (falling back to
      the largest available bucket).  Every step inherits the request's
      deadline and gets the full per-attempt retry budget; a faulted decode
      step retries {e the same step at the same position} — the carried KV
      state is immutable input, so a retry cannot corrupt it.  Decode and
      prefill dispatches never coalesce into batched streams.

    With none of those features configured the scheduler is byte-identical
    to the PR 5 baseline — the fault machinery costs nothing when off, and
    [max_batch = 1] (the default) never coalesces anything. *)

type policy = Fifo | Sel

let policy_to_string = function Fifo -> "fifo" | Sel -> "sel"

let policy_of_string = function
  | "fifo" -> Some Fifo
  | "sel" | "shortest" -> Some Sel
  | _ -> None

(** What to do when an arrival finds the pending queue full. *)
type drop_policy = Reject | Shed

let drop_to_string = function Reject -> "reject" | Shed -> "shed"

let drop_of_string = function
  | "reject" | "reject-newest" -> Some Reject
  | "shed" | "shed-expired" -> Some Shed
  | _ -> None

(** Which lifecycle phase a dispatched stream serves.  [Single] is the
    classic one-shot request; generation requests run one [Prefill] then
    [Decode 1 .. Decode rq_gen] (steps are 1-based). *)
type phase = Single | Prefill | Decode of int

let phase_to_string = function
  | Single -> "single"
  | Prefill -> "prefill"
  | Decode t -> Fmt.str "decode:%d" t

type cfg = {
  policy : policy;
  max_streams : int;  (** concurrency bound, >= 1 *)
  queue_cap : int option;  (** bounded pending queue ([None] = unbounded) *)
  drop : drop_policy;
  retries : int;  (** max re-dispatches after a runtime fault *)
  backoff_us : float;
      (** linear retry backoff: the k-th retry (1-based; i.e. after the
          0-based attempt [k - 1] faults) becomes ready [k *] this after
          the fault *)
  deadline_us : float option;
      (** default SLO for requests that carry none ([Workload.rq_slo_us]
          wins when present) *)
  chaos : Faultinject.chaos option;  (** armed runtime-fault model *)
  max_batch : int;
      (** largest batch bucket a dispatch may coalesce (1 = batching off;
          buckets are powers of two and need a matching batched artifact) *)
  gen_prompt : int;
      (** prompt length assumed for generation requests: decode step [t]
          reads a KV cache of [gen_prompt + t - 1] entries (must be >= 1
          when any request has [rq_gen > 0]) *)
}

(** Build a scheduler configuration; every lifecycle feature defaults off,
    which reproduces the PR 5 scheduler exactly. *)
let cfg ?queue_cap ?(drop = Reject) ?(retries = 0) ?(backoff_us = 50.)
    ?deadline_us ?chaos ?(max_batch = 1) ?(gen_prompt = 0) ~policy
    ~max_streams () : cfg =
  { policy; max_streams; queue_cap; drop; retries; backoff_us; deadline_us;
    chaos; max_batch; gen_prompt }

(** One compiled, reusable inference program: the unit the serving layer
    shares across every request for the same model. *)
type artifact = {
  art_model : string;
  art_batch : int;
      (** batch lanes this artifact was compiled at; 1 = the base shape.
          The scheduler requires a base artifact per served model; batched
          buckets are optional extras it coalesces into when present *)
  art_pos : int;
      (** KV-cache position bucket this artifact was compiled at; 0 = the
          static (prefill / one-shot) shape.  Decode steps run the
          smallest-position artifact that fits their cache length *)
  art_profiles : Sim.kernel_profile list;
  art_solo_us : float;     (** simulated solo latency (the SEL estimate) *)
  art_counters : Counters.t;  (** solo traffic of the whole stream *)
  art_degraded : int;      (** degradation steps its compile took *)
  art_mega : bool;
      (** built from a mega-kernel task graph ({!artifact_of_taskgraph}):
          requests run as one persistent launch *)
  art_elided : int;
      (** kernel launches the artifact avoids per request: 0 for a
          multi-kernel artifact, source-kernel-count minus one for a
          mega-kernel artifact *)
}

(** Build an artifact straight from a compiled kernel program (runs the
    solo simulation once for the counters). *)
let artifact_of_prog (dev : Device.t) ~model ?(batch = 1) ?(pos = 0)
    ?(degraded = 0) (prog : Kernel_ir.prog) : artifact =
  if batch < 1 then invalid_arg "Scheduler.artifact_of_prog: batch < 1";
  if pos < 0 then invalid_arg "Scheduler.artifact_of_prog: pos < 0";
  let profiles = Sim.profile_prog dev prog in
  let sim = Sim.run dev prog in
  {
    art_model = model;
    art_batch = batch;
    art_pos = pos;
    art_profiles = profiles;
    art_solo_us = Sim.solo_time_us profiles;
    art_counters = Counters.copy sim.Sim.total;
    art_degraded = degraded;
    art_mega = false;
    art_elided = 0;
  }

(** Build an artifact from a mega-kernel task graph: the whole program is
    ONE persistent kernel profile ({!Sim.mega_profile}), so a serving
    stream pays a single launch and {!Sim.Multi} needs no special casing —
    contention, faults, and batching all apply unchanged. *)
let artifact_of_taskgraph (dev : Device.t) ~model ?(batch = 1) ?(pos = 0)
    ?(degraded = 0) (tg : Kernel_ir.taskgraph) : artifact =
  if batch < 1 then invalid_arg "Scheduler.artifact_of_taskgraph: batch < 1";
  if pos < 0 then invalid_arg "Scheduler.artifact_of_taskgraph: pos < 0";
  let profiles = [ Sim.mega_profile dev tg ] in
  let sim = Sim.run_mega dev tg in
  {
    art_model = model;
    art_batch = batch;
    art_pos = pos;
    art_profiles = profiles;
    art_solo_us = Sim.solo_time_us profiles;
    art_counters = Counters.copy sim.Sim.total;
    art_degraded = degraded;
    art_mega = true;
    art_elided = Kernel_ir.launches_elided tg;
  }

type completed = {
  c_req : Workload.request;
  c_model : string;
  c_stream : int;        (** engine stream id (unique per attempt) *)
  c_slot : int;          (** concurrency lane, [0 .. max_streams-1] *)
  c_dispatch_us : float;
  c_finish_us : float;
  c_service_us : float;  (** on-device time, queueing excluded *)
  c_solo_us : float;
  c_bytes : int;         (** solo global-memory traffic of the request *)
  c_slices : (string * float * float) list;
      (** per-kernel (name, start, end) under contention *)
  c_retries : int;       (** faulted attempts absorbed before this one *)
  c_deadline_us : float option;  (** absolute deadline, when one applied *)
  c_batch : int;
      (** members of the request's batched stream (1 = unbatched); batched
          members share [c_stream] and split the stream's service time and
          bytes evenly, while [c_solo_us] stays the {e unbatched} estimate
          so slowdown < 1 is exactly the batching win *)
  c_mega : bool;  (** served on a mega-kernel (persistent-launch) artifact *)
  c_elided : int;
      (** kernel launches the serving artifact avoided for this request
          (0 unless the request ran on a mega-kernel artifact) *)
  c_phase : phase;
      (** lifecycle phase this completion belongs to; [Single] for
          one-shot requests, so phase-free runs are unchanged *)
  c_issue_us : float;
      (** when this phase's work entered the queue: the request arrival
          for [Single]/[Prefill], the previous phase's finish for a decode
          step — per-phase latency is [c_finish_us - c_issue_us] *)
}

(** Latency including queueing: finish minus arrival. *)
let latency_us (c : completed) = c.c_finish_us -. c.c_req.Workload.rq_arrival_us

(** Per-phase latency: finish minus the phase's own issue time. *)
let phase_latency_us (c : completed) = c.c_finish_us -. c.c_issue_us

(** Is this completion the request's terminal one?  [Single] requests
    finish in one phase; a generation request finishes at its last decode
    step. *)
let is_terminal (c : completed) =
  match c.c_phase with
  | Single -> true
  | Prefill -> c.c_req.Workload.rq_gen = 0
  | Decode t -> t = c.c_req.Workload.rq_gen

(** Why a dispatched attempt died on the device. *)
type abort_reason = Fault | Deadline | Hung

let abort_reason_to_string = function
  | Fault -> "fault"
  | Deadline -> "deadline"
  | Hung -> "hung"

(** One dispatched attempt that did not complete: a faulted, hung, or
    deadline-cancelled stream.  The request itself may still have completed
    on a later attempt. *)
type aborted = {
  a_req : Workload.request;
  a_model : string;
  a_phase : phase;       (** lifecycle phase of the aborted attempt *)
  a_try : int;           (** 0 = first dispatch of the request *)
  a_stream : int;
  a_slot : int;
  a_dispatch_us : float;
  a_end_us : float;
  a_service_us : float;  (** device time wasted on the attempt *)
  a_reason : abort_reason;
  a_slices : (string * float * float) list;
}

(** Why a request was dropped without (another) dispatch. *)
type drop_reason =
  | Queue_full  (** rejected on arrival: bounded queue at capacity *)
  | Shed_slo    (** shed: could no longer meet its SLO per the estimate *)
  | Expired     (** timed out while still queued *)

let drop_reason_to_string = function
  | Queue_full -> "queue-full"
  | Shed_slo -> "shed-slo"
  | Expired -> "expired"

type dropped = {
  d_req : Workload.request;
  d_time_us : float;
  d_reason : drop_reason;
}

type outcome = {
  o_policy : policy;
  o_max_streams : int;
  o_completed : completed list;        (** completion order *)
  o_aborted : aborted list;            (** event order; [] without chaos *)
  o_dropped : dropped list;            (** event order; [] without caps/SLOs *)
  o_failed : (Workload.request * float * int) list;
      (** requests whose retry budget a fault exhausted: (request,
          terminal time, attempts made) *)
  o_diags : Diag.t list;               (** lifecycle events as diagnostics *)
  o_samples : Sim.Multi.sample list;   (** SM/bandwidth occupancy timeline *)
  o_makespan_us : float;               (** time of the last completion *)
}

(* one unit of queued work: a request at one lifecycle phase.  One-shot
   requests are a single [Single] job; generation requests materialize a
   [Prefill] job on arrival and each decode step as its own job when the
   previous phase finishes *)
type job = {
  jb_req : Workload.request;
  jb_phase : phase;
  jb_issue_us : float;  (** when this phase entered the queue *)
}

(* one dispatched stream: [f_members] is (job, attempt) in queue order,
   singleton unless a batch bucket coalesced; members leave the list
   individually when their deadline expires mid-flight *)
type flight = {
  mutable f_members : (job * int) list;
  f_art : artifact;
  f_slot : int;
  f_disp : float;
  f_stream : Sim.Multi.stream;
}

let rec insert_sorted x = function
  | [] -> [ x ]
  | y :: _ as l when x <= y -> x :: l
  | y :: rest -> y :: insert_sorted x rest

(* retry queue entries ordered by (ready time, request id); a request has
   at most one live job, so the id tie-break stays total *)
let rec insert_retry ((t, (j : job), _) as x) = function
  | [] -> [ x ]
  | ((t', (j' : job), _) :: _) as l
    when t < t'
         || (t = t' && j.jb_req.Workload.rq_id < j'.jb_req.Workload.rq_id) ->
      x :: l
  | y :: rest -> y :: insert_retry x rest

(** Serve [reqs] against [artifacts] on a fresh engine.  Deterministic:
    identical inputs produce identical outcomes.
    @raise Invalid_argument on an unknown model or [max_streams < 1]. *)
let run (dev : Device.t) (cfg : cfg) ~(artifacts : artifact list)
    (reqs : Workload.request list) : outcome =
  if cfg.max_streams < 1 then invalid_arg "Scheduler.run: max_streams < 1";
  if cfg.retries < 0 then invalid_arg "Scheduler.run: retries < 0";
  if cfg.max_batch < 1 then invalid_arg "Scheduler.run: max_batch < 1";
  (match cfg.queue_cap with
  | Some c when c < 1 -> invalid_arg "Scheduler.run: queue_cap < 1"
  | _ -> ());
  (* artifacts keyed by (model, batch, pos): the base shape (1, 0) is
     mandatory per served model; batched buckets and decode position
     buckets are opportunistic extras *)
  let tbl : (string * int * int, artifact) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun a ->
      Hashtbl.replace tbl
        (String.lowercase_ascii a.art_model, a.art_batch, a.art_pos)
        a)
    artifacts;
  let art_at (model : string) (batch : int) =
    Hashtbl.find_opt tbl (String.lowercase_ascii model, batch, 0)
  in
  let art_of (model : string) =
    match art_at model 1 with
    | Some a -> a
    | None -> invalid_arg (Fmt.str "Scheduler.run: no artifact for model %s" model)
  in
  (* decode position buckets per model, ascending *)
  let decode_buckets (model : string) : artifact list =
    List.filter
      (fun a ->
        a.art_batch = 1 && a.art_pos > 0
        && String.lowercase_ascii a.art_model = String.lowercase_ascii model)
      artifacts
    |> List.sort (fun a b -> compare a.art_pos b.art_pos)
  in
  (* a decode step over [cache] KV entries runs the smallest bucket that
     fits, or the largest registered one when the cache outgrows them *)
  let decode_art (model : string) ~(cache : int) : artifact =
    match decode_buckets model with
    | [] ->
        invalid_arg
          (Fmt.str "Scheduler.run: no decode artifact for model %s" model)
    | bs -> (
        match List.find_opt (fun a -> a.art_pos >= cache) bs with
        | Some a -> a
        | None -> List.nth bs (List.length bs - 1))
  in
  let art_for (j : job) : artifact =
    match j.jb_phase with
    | Single | Prefill -> art_of j.jb_req.Workload.rq_model
    | Decode t ->
        decode_art j.jb_req.Workload.rq_model ~cache:(cfg.gen_prompt + t - 1)
  in
  (* fail on unknown models / missing decode support before any simulated
     time passes *)
  List.iter
    (fun (r : Workload.request) ->
      ignore (art_of r.Workload.rq_model);
      if r.Workload.rq_gen < 0 then
        invalid_arg (Fmt.str "Scheduler.run: rq_gen < 0 on request %d"
                       r.Workload.rq_id);
      if r.Workload.rq_gen > 0 then begin
        if cfg.gen_prompt < 1 then
          invalid_arg "Scheduler.run: generation requests need gen_prompt >= 1";
        ignore (decode_art r.Workload.rq_model ~cache:cfg.gen_prompt)
      end)
    reqs;
  (* kernel-stage shape of each artifact, for chaos plan derivation *)
  let stages_tbl : (string * int * int, int array) Hashtbl.t =
    Hashtbl.create 8
  in
  let stages_of (a : artifact) : int array =
    let key = (String.lowercase_ascii a.art_model, a.art_batch, a.art_pos) in
    match Hashtbl.find_opt stages_tbl key with
    | Some s -> s
    | None ->
        let s =
          Array.of_list
            (List.map
               (fun (kp : Sim.kernel_profile) -> List.length kp.Sim.kp_stages)
               a.art_profiles)
        in
        Hashtbl.replace stages_tbl key s;
        s
  in
  let deadline_of_req (r : Workload.request) : float option =
    match (r.Workload.rq_slo_us, cfg.deadline_us) with
    | Some s, _ | None, Some s -> Some (r.Workload.rq_arrival_us +. s)
    | None, None -> None
  in
  let deadlines_possible =
    cfg.deadline_us <> None
    || List.exists (fun (r : Workload.request) -> r.Workload.rq_slo_us <> None) reqs
  in
  if cfg.chaos <> None then Faultinject.Runtime.reset ();
  let upcoming =
    ref
      (List.stable_sort
         (fun (a : Workload.request) b ->
           compare a.Workload.rq_arrival_us b.Workload.rq_arrival_us)
         reqs)
  in
  let queue = ref [] (* (job, attempt) — arrived, undispatched *) in
  let retry_at = ref [] (* (ready_us, job, attempt), sorted *) in
  (* the job a fresh arrival materializes as: generation requests start at
     their prefill phase *)
  let job_of_req (r : Workload.request) : job =
    {
      jb_req = r;
      jb_phase = (if r.Workload.rq_gen > 0 then Prefill else Single);
      jb_issue_us = r.Workload.rq_arrival_us;
    }
  in
  (* chaos plans are keyed per dispatched unit: decode steps of one request
     must not all inherit the request's fault fate, so step [t] perturbs
     the id by a deterministic prime stride *)
  let chaos_id (j : job) : int =
    match j.jb_phase with
    | Single | Prefill -> j.jb_req.Workload.rq_id
    | Decode t -> j.jb_req.Workload.rq_id + (7919 * t)
  in
  let m = Sim.Multi.create dev in
  (match cfg.chaos with
  | Some { Faultinject.ch_throttle = Some th; _ } ->
      Sim.Multi.throttle m ~start_us:th.Faultinject.th_start_us
        ~dur_us:th.Faultinject.th_dur_us ~capacity:th.Faultinject.th_capacity
  | _ -> ());
  let inflight : (int, flight) Hashtbl.t = Hashtbl.create 16 in
  let free_slots = ref (List.init cfg.max_streams Fun.id) in
  let completed = ref [] in
  let aborted = ref [] in
  let dropped = ref [] in
  let failed = ref [] in
  let diags = ref [] in
  let diag d = diags := d :: !diags in
  let drop (r : Workload.request) reason =
    let now = Sim.Multi.now_us m in
    dropped := { d_req = r; d_time_us = now; d_reason = reason } :: !dropped;
    diag
      (Diag.warning ~subject:r.Workload.rq_model Diag.Serve
         (Fmt.str "request %d dropped (%s) at %.1f us" r.Workload.rq_id
            (drop_reason_to_string reason)
            now))
  in
  let hopeless now (j : job) =
    match deadline_of_req j.jb_req with
    | Some d -> now +. (art_for j).art_solo_us > d
    | None -> false
  in
  (* bounded-queue admission for fresh arrivals (retries and follow-on
     lifecycle phases re-enter without re-admission: they were already
     admitted once) *)
  let admit (r : Workload.request) =
    let enqueue () = queue := !queue @ [ (job_of_req r, 0) ] in
    match cfg.queue_cap with
    | None -> enqueue ()
    | Some cap ->
        if List.length !queue < cap then enqueue ()
        else begin
          let now = Sim.Multi.now_us m in
          (match cfg.drop with
          | Shed ->
              (* deadline-aware: first shed queued requests that can no
                 longer meet their SLO given the solo-latency estimate *)
              let keep, shed =
                List.partition (fun (q, _) -> not (hopeless now q)) !queue
              in
              if shed <> [] then begin
                queue := keep;
                List.iter (fun ((q : job), _) -> drop q.jb_req Shed_slo) shed
              end
          | Reject -> ());
          if List.length !queue < Option.get cfg.queue_cap then enqueue ()
          else
            drop r
              (if
                 cfg.drop = Shed
                 && hopeless (Sim.Multi.now_us m) (job_of_req r)
               then Shed_slo
               else Queue_full)
        end
  in
  let absorb () =
    let rec arrivals () =
      match !upcoming with
      | (r : Workload.request) :: rest
        when r.Workload.rq_arrival_us <= Sim.Multi.now_us m ->
          (match cfg.queue_cap with
          | None -> queue := !queue @ [ (job_of_req r, 0) ]
          | Some _ -> admit r);
          upcoming := rest;
          arrivals ()
      | _ -> ()
    in
    arrivals ();
    let rec retries () =
      match !retry_at with
      | (ready, j, attempt) :: rest when ready <= Sim.Multi.now_us m ->
          queue := !queue @ [ (j, attempt) ];
          retry_at := rest;
          retries ()
      | _ -> ()
    in
    if !retry_at <> [] then retries ()
  in
  (* queued requests whose deadline passed time out without a dispatch *)
  let expire_queue () =
    if deadlines_possible && !queue <> [] then begin
      let now = Sim.Multi.now_us m in
      let live, dead =
        List.partition
          (fun ((q : job), _) ->
            match deadline_of_req q.jb_req with
            | Some d -> d > now
            | None -> true)
          !queue
      in
      if dead <> [] then begin
        queue := live;
        List.iter (fun ((q : job), _) -> drop q.jb_req Expired) dead
      end
    end
  in
  let record_abort (j : job) (art : artifact) slot disp attempt
      (st : Sim.Multi.stream) reason =
    aborted :=
      {
        a_req = j.jb_req;
        a_model = art.art_model;
        a_phase = j.jb_phase;
        a_try = attempt;
        a_stream = st.Sim.Multi.st_id;
        a_slot = slot;
        a_dispatch_us = disp;
        a_end_us = Option.value ~default:(Sim.Multi.now_us m) st.Sim.Multi.st_finish_us;
        a_service_us = st.Sim.Multi.st_service_us;
        a_reason = reason;
        a_slices = Sim.Multi.kernel_slices st;
      }
      :: !aborted
  in
  let member_deadline ((j, _) : job * int) = deadline_of_req j.jb_req in
  (* a faulted decode step retries the same step at the same position: the
     job (and with it the KV-cache bucket) is re-queued unchanged *)
  let retry_or_fail (j : job) attempt =
    let rq = j.jb_req in
    let now = Sim.Multi.now_us m in
    (* phase-free wording is kept verbatim for one-shot requests so
       phase-free runs stay byte-identical *)
    let who =
      match j.jb_phase with
      | Single -> Fmt.str "request %d" rq.Workload.rq_id
      | p -> Fmt.str "request %d (%s)" rq.Workload.rq_id (phase_to_string p)
    in
    if attempt < cfg.retries then begin
      let ready = now +. (cfg.backoff_us *. float_of_int (attempt + 1)) in
      retry_at := insert_retry (ready, j, attempt + 1) !retry_at;
      diag
        (Diag.warning ~subject:rq.Workload.rq_model Diag.Serve
           ~hint:"fresh stream after deterministic backoff"
           (Fmt.str "%s attempt %d faulted; retry %d at %.1f us" who attempt
              (attempt + 1) ready))
    end
    else begin
      failed := (rq, now, attempt + 1) :: !failed;
      diag
        (Diag.error ~subject:rq.Workload.rq_model Diag.Serve
           ~hint:"raise --retries or lower the fault rate"
           (Fmt.str "%s failed: fault exhausted %d attempt(s)" who
              (attempt + 1)))
    end
  in
  (* watchdog: expire in-flight members past their deadline.  An expired
     member times out alone; its stream is cancelled (and the slot freed)
     only when every member has expired — surviving batch members keep the
     device work they already paid for *)
  let expire_inflight () =
    if deadlines_possible && Hashtbl.length inflight > 0 then begin
      let now = Sim.Multi.now_us m in
      let hit =
        Hashtbl.fold
          (fun _ (fl : flight) acc ->
            if
              List.exists
                (fun mb ->
                  match member_deadline mb with
                  | Some d -> d <= now
                  | None -> false)
                fl.f_members
            then fl :: acc
            else acc)
          inflight []
        |> List.sort (fun (f1 : flight) f2 ->
               compare f1.f_stream.Sim.Multi.st_id f2.f_stream.Sim.Multi.st_id)
      in
      List.iter
        (fun (fl : flight) ->
          let st = fl.f_stream in
          let live, expired =
            List.partition
              (fun mb ->
                match member_deadline mb with
                | Some d -> d > now
                | None -> true)
              fl.f_members
          in
          fl.f_members <- live;
          if live = [] then begin
            Sim.Multi.cancel m st;
            Hashtbl.remove inflight st.Sim.Multi.st_id;
            free_slots := insert_sorted fl.f_slot !free_slots
          end;
          List.iter
            (fun ((j : job), attempt) ->
              record_abort j fl.f_art fl.f_slot fl.f_disp attempt st Deadline;
              diag
                (Diag.warning ~subject:fl.f_art.art_model Diag.Serve
                   (Fmt.str
                      "request %d timed out at %.1f us (attempt %d cancelled)"
                      j.jb_req.Workload.rq_id now attempt)))
            expired)
        hit
    end
  in
  let pick () =
    match cfg.policy with
    | Fifo -> List.hd !queue
    | Sel ->
        (* shortest expected latency, phase-aware: a decode step's estimate
           is its position bucket's solo latency *)
        List.fold_left
          (fun ((best : job), _ as b) ((j : job), _ as c) ->
            if (art_for j).art_solo_us < (art_for best).art_solo_us then c
            else b)
          (List.hd !queue) (List.tl !queue)
  in
  (* largest power-of-two bucket <= [want] with a batched artifact; 1 (the
     mandatory base artifact) is always reachable by halving *)
  let bucket_for (model : string) (want : int) : int =
    let rec pow2_floor b = if b * 2 <= want then pow2_floor (b * 2) else b in
    let rec fit b =
      if b <= 1 then 1
      else if art_at model b <> None then b
      else fit (b / 2)
    in
    fit (pow2_floor 1)
  in
  let dispatch () =
    while !queue <> [] && !free_slots <> [] do
      let lead, attempt = pick () in
      let rq = lead.jb_req in
      queue :=
        List.filter
          (fun ((j : job), _) ->
            j.jb_req.Workload.rq_id <> rq.Workload.rq_id)
          !queue;
      (* coalesce: first-attempt one-shot peers of the same model join the
         lead's stream, up to the largest artifact-backed power-of-two
         bucket.  Retries never re-batch — a poisoned request fails alone —
         and prefill/decode phases never coalesce: decode steps are tiny
         latency-critical kernels served solo. *)
      let members =
        if cfg.max_batch < 2 || attempt > 0 || lead.jb_phase <> Single then
          [ (lead, attempt) ]
        else begin
          let peers =
            List.filter
              (fun ((j : job), a) ->
                a = 0 && j.jb_phase = Single
                && String.lowercase_ascii j.jb_req.Workload.rq_model
                   = String.lowercase_ascii rq.Workload.rq_model)
              !queue
          in
          let bucket =
            bucket_for rq.Workload.rq_model
              (min (1 + List.length peers) cfg.max_batch)
          in
          let joined = List.filteri (fun i _ -> i < bucket - 1) peers in
          let joined_ids =
            List.map
              (fun ((j : job), _) -> j.jb_req.Workload.rq_id)
              joined
          in
          queue :=
            List.filter
              (fun ((j : job), _) ->
                not (List.mem j.jb_req.Workload.rq_id joined_ids))
              !queue;
          (lead, attempt) :: joined
        end
      in
      let nmembers = List.length members in
      let slot = List.hd !free_slots in
      free_slots := List.tl !free_slots;
      let art =
        if nmembers = 1 then art_for lead
        else Option.get (art_at rq.Workload.rq_model nmembers)
      in
      let faults =
        match cfg.chaos with
        | None -> []
        | Some c ->
            Faultinject.chaos_plan c ~rq_id:(chaos_id lead) ~attempt
              ~stages:(stages_of art)
      in
      let label =
        match lead.jb_phase with
        | Single when nmembers = 1 ->
            Fmt.str "%s#%d" art.art_model rq.Workload.rq_id
        | Single -> Fmt.str "%s x%d#%d" art.art_model nmembers rq.Workload.rq_id
        | Prefill -> Fmt.str "%s@p#%d" art.art_model rq.Workload.rq_id
        | Decode t -> Fmt.str "%s@d%d#%d" art.art_model t rq.Workload.rq_id
      in
      let st =
        Sim.Multi.launch m ~label ~members:nmembers ~faults art.art_profiles
      in
      Hashtbl.replace inflight st.Sim.Multi.st_id
        {
          f_members = members;
          f_art = art;
          f_slot = slot;
          f_disp = Sim.Multi.now_us m;
          f_stream = st;
        }
    done
  in
  let on_stream_end (st : Sim.Multi.stream) =
    let fl = Hashtbl.find inflight st.Sim.Multi.st_id in
    let art = fl.f_art in
    Hashtbl.remove inflight st.Sim.Multi.st_id;
    free_slots := insert_sorted fl.f_slot !free_slots;
    match st.Sim.Multi.st_outcome with
    | Sim.Multi.Finished ->
        (* every surviving member completes at the stream boundary: shared
           finish instant, the stream's service and traffic split evenly,
           each request's own arrival/deadline/retry history intact *)
        let n = st.Sim.Multi.st_members in
        let share = float_of_int n in
        let finish = Option.get st.Sim.Multi.st_finish_us in
        List.iter
          (fun ((j : job), attempt) ->
            let rq = j.jb_req in
            completed :=
              {
                c_req = rq;
                c_model = art.art_model;
                c_stream = st.Sim.Multi.st_id;
                c_slot = fl.f_slot;
                c_dispatch_us = fl.f_disp;
                c_finish_us = finish;
                c_service_us =
                  (if n = 1 then st.Sim.Multi.st_service_us
                   else st.Sim.Multi.st_service_us /. share);
                c_solo_us = (art_for j).art_solo_us;
                c_bytes =
                  Counters.global_transfer_bytes art.art_counters / n;
                c_slices = Sim.Multi.kernel_slices st;
                c_retries = attempt;
                c_deadline_us = deadline_of_req rq;
                c_batch = n;
                c_mega = art.art_mega;
                c_elided = art.art_elided;
                c_phase = j.jb_phase;
                c_issue_us = j.jb_issue_us;
              }
              :: !completed;
            (* a finished phase issues the next one: prefill hands off to
               decode step 1, decode step t to t+1, at the finish instant
               (the carried KV state is the new job's position).  Follow-on
               jobs skip re-admission: the request was admitted once. *)
            let next_phase =
              match j.jb_phase with
              | Prefill when rq.Workload.rq_gen > 0 -> Some (Decode 1)
              | Decode t when t < rq.Workload.rq_gen -> Some (Decode (t + 1))
              | _ -> None
            in
            match next_phase with
            | None -> ()
            | Some p ->
                queue :=
                  !queue
                  @ [ ({ jb_req = rq; jb_phase = p; jb_issue_us = finish }, 0) ])
          fl.f_members
    | Sim.Multi.Faulted ->
        (* members retry individually (never re-batched): one poisoned
           request must not drag its neighbours down again *)
        List.iter
          (fun ((j : job), attempt) ->
            record_abort j art fl.f_slot fl.f_disp attempt st Fault;
            retry_or_fail j attempt)
          fl.f_members
    | Sim.Multi.Cancelled ->
        (* cancellations are recorded where they are issued *)
        ()
  in
  (* a stream hung forever with no deadline to cancel it: cancel here and
     treat it like a fault (the retry re-rolls its fate) *)
  let on_stall (ss : Sim.Multi.stream list) =
    let ss =
      List.sort
        (fun (a : Sim.Multi.stream) b -> compare a.Sim.Multi.st_id b.Sim.Multi.st_id)
        ss
    in
    List.iter
      (fun (st : Sim.Multi.stream) ->
        match Hashtbl.find_opt inflight st.Sim.Multi.st_id with
        | None -> Sim.Multi.cancel m st
        | Some fl ->
            Sim.Multi.cancel m st;
            Hashtbl.remove inflight st.Sim.Multi.st_id;
            free_slots := insert_sorted fl.f_slot !free_slots;
            List.iter
              (fun ((j : job), attempt) ->
                record_abort j fl.f_art fl.f_slot fl.f_disp attempt st Hung;
                diag
                  (Diag.warning ~subject:fl.f_art.art_model Diag.Serve
                     (Fmt.str
                        "request %d attempt %d hung indefinitely; cancelled"
                        j.jb_req.Workload.rq_id attempt));
                retry_or_fail j attempt)
              fl.f_members)
      ss
  in
  let rec loop () =
    absorb ();
    expire_queue ();
    dispatch ();
    if
      Hashtbl.length inflight = 0
      && !queue = [] && !upcoming = [] && !retry_at = []
    then ()
    else begin
      let until =
        let a =
          match !upcoming with
          | [] -> infinity
          | (r : Workload.request) :: _ -> r.Workload.rq_arrival_us
        in
        let d =
          if deadlines_possible then
            Hashtbl.fold
              (fun _ (fl : flight) acc ->
                List.fold_left
                  (fun acc mb ->
                    match member_deadline mb with
                    | Some dd -> Float.min acc dd
                    | None -> acc)
                  acc fl.f_members)
              inflight infinity
          else infinity
        in
        let rt =
          match !retry_at with [] -> infinity | (t, _, _) :: _ -> t
        in
        Float.min a (Float.min d rt)
      in
      match Sim.Multi.advance m ~until with
      | `Reached ->
          expire_inflight ();
          loop ()
      | `Idle -> () (* unreachable: nothing active implies nothing pending *)
      | `Stalled ss ->
          on_stall ss;
          loop ()
      | `Completed ss ->
          List.iter on_stream_end ss;
          expire_inflight ();
          loop ()
    end
  in
  loop ();
  {
    o_policy = cfg.policy;
    o_max_streams = cfg.max_streams;
    o_completed = List.rev !completed;
    o_aborted = List.rev !aborted;
    o_dropped = List.rev !dropped;
    o_failed = List.rev !failed;
    o_diags = List.rev !diags;
    o_samples = Sim.Multi.samples m;
    o_makespan_us = Sim.Multi.now_us m;
  }
