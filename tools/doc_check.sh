#!/bin/sh
# Doc honesty check for `dune build @doc-check`: every source-file path a
# documentation file cites (backtick-quoted `lib/...ml`, `bin/...`, etc.)
# must still exist, so the architecture docs cannot silently rot as the
# code moves.  Usage: doc_check.sh ROOT DOC...
set -eu
root=$1
shift
status=0
for doc in "$@"; do
  if [ ! -f "$doc" ]; then
    echo "doc-check: missing documentation file $doc" >&2
    status=1
    continue
  fi
  # backtick-quoted repo paths with an extension, e.g. `lib/te/expr.ml`
  cited=$(grep -oE '`(lib|bin|bench|test|tools|examples|docs)/[A-Za-z0-9_./-]+\.[A-Za-z]+`' "$doc" \
    | tr -d '`' | sort -u)
  for path in $cited; do
    if [ ! -f "$root/$path" ]; then
      echo "doc-check: $doc cites $path, which does not exist" >&2
      status=1
    fi
  done
  if [ -z "$cited" ]; then
    echo "doc-check: $doc cites no source paths (suspicious)" >&2
    status=1
  fi
done
exit $status
