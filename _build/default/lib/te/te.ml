(** Tensor expressions (TEs) — the IR everything in this library analyzes,
    transforms and lowers (§3 of the paper).

    A TE names one output tensor and describes, as a pure function, how each
    of its elements is computed from input tensors: either an element-wise
    [Compute] or a [Reduce] over declared reduction axes. *)

type reduce_op = Sum | Max | Min | Prod

let reduce_identity = function
  | Sum -> 0.
  | Max -> Float.neg_infinity
  | Min -> Float.infinity
  | Prod -> 1.

let reduce_apply op a b =
  match op with
  | Sum -> a +. b
  | Max -> Float.max a b
  | Min -> Float.min a b
  | Prod -> a *. b

let reduce_op_to_string = function
  | Sum -> "sum" | Max -> "max" | Min -> "min" | Prod -> "prod"

type body =
  | Compute of Expr.t
      (** one output element depends on a fixed set of input elements *)
  | Reduce of { op : reduce_op; axes : int array; expr : Expr.t }
      (** [axes] are the extents of the reduction variables [Rv 0..];
          one output element folds [expr] over the whole reduction domain *)

type t = {
  name : string;            (** the output tensor this TE defines *)
  out_shape : Shape.t;
  dtype : Dtype.t;
  body : body;
  tag : string;             (** provenance: the graph operator it came from *)
}

let compute ?(tag = "") ~name ~shape ?(dtype = Dtype.F32) expr =
  { name; out_shape = shape; dtype; body = Compute expr; tag }

let reduce ?(tag = "") ~name ~shape ?(dtype = Dtype.F32) ~op ~axes expr =
  { name; out_shape = shape; dtype; body = Reduce { op; axes; expr }; tag }

let body_expr t = match t.body with Compute e -> e | Reduce r -> r.expr

let reduce_axes t = match t.body with Compute _ -> [||] | Reduce r -> r.axes

let has_reduction t = match t.body with Compute _ -> false | Reduce _ -> true

let map_body f t =
  match t.body with
  | Compute e -> { t with body = Compute (f e) }
  | Reduce r -> { t with body = Reduce { r with expr = f r.expr } }

(** Tensor names this TE reads. *)
let inputs t = Expr.read_names (body_expr t)

(** All reads with their index expressions. *)
let accesses t = Expr.reads (body_expr t)

let rank t = Shape.rank t.out_shape

let out_numel t = Shape.numel t.out_shape

let reduce_domain t = Array.fold_left ( * ) 1 (reduce_axes t)

(** Total arithmetic operations to materialize the output tensor. *)
let arith_ops t =
  let per_point = Expr.flops (body_expr t) in
  match t.body with
  | Compute _ -> per_point * out_numel t
  | Reduce _ ->
      (* one combine per reduction point, plus the body itself *)
      (per_point + 1) * out_numel t * reduce_domain t

(** Well-formedness: every variable referenced in the body is within the
    output rank / declared reduction axes. *)
let validate t =
  let n_out = rank t and n_red = Array.length (reduce_axes t) in
  let check_idx i =
    if Index.max_out_var i >= n_out then
      Error (Fmt.str "TE %s: index %a references out var >= rank %d"
               t.name Index.pp i n_out)
    else if Index.max_red_var i >= n_red then
      Error (Fmt.str "TE %s: index %a references reduce var >= %d"
               t.name Index.pp i n_red)
    else Ok ()
  in
  let exception Bad of string in
  try
    ignore
      (Expr.map_index
         (fun i ->
           (match check_idx i with Ok () -> () | Error m -> raise (Bad m));
           i)
         (body_expr t));
    (match t.body with
    | Compute e | Reduce { expr = e; _ } ->
        if (not (has_reduction t))
           && List.exists
                (fun (_, idxs) -> List.exists Index.uses_reduction idxs)
                (Expr.reads e)
        then raise (Bad (t.name ^ ": Compute body uses reduction variable")));
    Ok ()
  with Bad m -> Error m

let pp ppf t =
  match t.body with
  | Compute e ->
      Fmt.pf ppf "%s%s : %a = %a" t.name (Shape.to_string t.out_shape)
        Dtype.pp t.dtype Expr.pp e
  | Reduce { op; axes; expr } ->
      Fmt.pf ppf "%s%s : %a = %s(%a) %a" t.name (Shape.to_string t.out_shape)
        Dtype.pp t.dtype (reduce_op_to_string op)
        Fmt.(array ~sep:(any ", ") int) axes Expr.pp expr

let to_string t = Fmt.str "%a" pp t
