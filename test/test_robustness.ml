(* Robustness-layer tests: the V0..V4 level matrix over the zoo, the static
   kernel-IR verifier, and fault-injection-driven graceful degradation. *)

let compile_result_at ?strict level p =
  Souffle.compile_result ?strict ~cfg:(Souffle.config ~level ()) p

let levels = [ Souffle.V0; V1; V2; V3; V4 ]

let ok_or_fail what = function
  | Ok r -> r
  | Error ds ->
      Alcotest.failf "%s: %s" what
        (String.concat "; " (List.map Diag.to_string ds))

(* ---- level matrix ---- *)

let test_level_matrix_all_models () =
  List.iter
    (fun (e : Zoo.entry) ->
      let p = Lower.run (e.Zoo.tiny ()) in
      List.iter
        (fun level ->
          let what =
            Fmt.str "%s at %s" e.Zoo.name (Souffle.level_to_string level)
          in
          let r = ok_or_fail what (compile_result_at level p) in
          Alcotest.(check int) (what ^ ": no degradation") 0
            (List.length r.Souffle.degraded);
          (match Souffle.verify ~rtol:1e-3 r with
          | Ok () -> ()
          | Error m -> Alcotest.failf "%s: not preserved: %s" what m);
          match Verify_ir.check_prog Device.a100 r.Souffle.prog with
          | Ok () -> ()
          | Error ds ->
              Alcotest.failf "%s: emitted kernels rejected: %s" what
                (String.concat "; " (List.map Diag.to_string ds)))
        levels)
    Zoo.all

(* ---- kernel-IR verifier ---- *)

let stage ?(instrs = [ Kernel_ir.Fma { flops = 1024 } ]) label =
  Kernel_ir.stage ~label instrs

let good_kernel =
  Kernel_ir.kernel ~name:"good" ~grid_blocks:108 ~threads_per_block:256
    ~smem_per_block:(48 * 1024) ~regs_per_thread:64
    [ stage "s0"; stage "s1" ]

let rejects what k =
  match Verify_ir.check Device.a100 k with
  | Ok () -> Alcotest.failf "%s: verifier accepted an illegal kernel" what
  | Error ds ->
      Alcotest.(check bool) (what ^ ": all diagnostics are errors") true
        (List.for_all Diag.is_error ds)

let test_verifier_accepts_legal () =
  match Verify_ir.check Device.a100 good_kernel with
  | Ok () -> ()
  | Error ds ->
      Alcotest.failf "legal kernel rejected: %s"
        (String.concat "; " (List.map Diag.to_string ds))

let test_verifier_rejects_smem () =
  rejects "smem over budget"
    (Kernel_ir.kernel ~name:"bad_smem" ~grid_blocks:8
       ~smem_per_block:(200 * 1024) [ stage "s0" ])

let test_verifier_rejects_regs () =
  rejects "regs over budget"
    (Kernel_ir.kernel ~name:"bad_regs" ~grid_blocks:8 ~regs_per_thread:512
       [ stage "s0" ])

let test_verifier_rejects_threads () =
  rejects "threads over device max"
    (Kernel_ir.kernel ~name:"bad_threads" ~grid_blocks:8
       ~threads_per_block:2048 [ stage "s0" ])

let test_verifier_rejects_coop_over_wave () =
  (* 50k blocks of 256 threads cannot all be resident: grid.sync deadlocks *)
  rejects "cooperative grid exceeds one wave"
    (Kernel_ir.kernel ~name:"bad_coop" ~grid_blocks:50_000
       [ stage "s0"; stage ~instrs:[ Kernel_ir.Grid_sync ] "s1" ])

let test_verifier_rejects_sync_in_first_stage () =
  rejects "grid.sync in stage 0"
    (Kernel_ir.kernel ~name:"bad_sync0" ~grid_blocks:8
       [ stage ~instrs:[ Kernel_ir.Grid_sync ] "s0" ])

let test_verifier_rejects_sync_mid_stage () =
  rejects "grid.sync not at the stage boundary"
    (Kernel_ir.kernel ~name:"bad_sync_mid" ~grid_blocks:8
       [
         stage "s0";
         stage
           ~instrs:
             [ Kernel_ir.Fma { flops = 16 }; Kernel_ir.Grid_sync ]
           "s1";
       ])

let test_verifier_rejects_sync_in_library_call () =
  rejects "grid.sync inside a library call"
    (Kernel_ir.kernel ~name:"bad_lib" ~grid_blocks:8 ~library_call:true
       [ stage "s0"; stage ~instrs:[ Kernel_ir.Grid_sync ] "s1" ])

let test_verifier_rejects_negative_bytes () =
  rejects "negative byte count"
    (Kernel_ir.kernel ~name:"bad_bytes" ~grid_blocks:8
       [ stage ~instrs:[ Kernel_ir.ldg (-4) ] "s0" ])

let test_verifier_rejects_empty_kernel () =
  rejects "kernel with no stages"
    (Kernel_ir.kernel ~name:"bad_empty" ~grid_blocks:8 [])

(* ---- fault injection: every pass, every zoo model ---- *)

(* Diag.Schedule is absent: a single injected scheduling failure is now
   absorbed by the reduced-space retry at the same optimization level (no
   degradation step) — covered in test_perf.ml. *)
let pass_faults =
  [
    Diag.Horizontal;
    Diag.Vertical;
    Diag.Partition;
    Diag.Emit;
    Diag.Simulate;
  ]

let compile_with_fault ?seed spec p =
  Faultinject.with_fault ?seed spec (fun () -> compile_result_at Souffle.V4 p)

let test_injected_pass_failure_degrades () =
  List.iter
    (fun (e : Zoo.entry) ->
      let p = Lower.run (e.Zoo.tiny ()) in
      List.iter
        (fun pass ->
          let what = Fmt.str "%s + fail(%s)" e.Zoo.name (Diag.pass_name pass) in
          let result, trips = compile_with_fault (Faultinject.Fail_pass pass) p in
          Alcotest.(check int) (what ^ ": fault tripped once") 1 trips;
          let r = ok_or_fail what result in
          (* degradation engaged, exactly one level down from V4 *)
          Alcotest.(check bool) (what ^ ": degradation recorded") true
            (r.Souffle.degraded <> []);
          Alcotest.(check bool) (what ^ ": degraded V4 -> V3") true
            (List.exists
               (fun (d : Souffle.degradation) ->
                 d.Souffle.d_from = Souffle.V4 && d.Souffle.d_to = Souffle.V3
                 && d.Souffle.d_pass = pass)
               r.Souffle.degraded);
          (* the failure itself is in the typed diagnostics *)
          Alcotest.(check bool) (what ^ ": error diagnostic recorded") true
            (List.exists
               (fun d -> Diag.is_error d && d.Diag.pass = pass)
               r.Souffle.diags);
          (* and the result is still semantically correct *)
          match Souffle.verify ~rtol:1e-3 r with
          | Ok () -> ()
          | Error m -> Alcotest.failf "%s: not preserved: %s" what m)
        pass_faults)
    Zoo.all

let test_corrupt_smem_degrades_via_verifier () =
  let p = Lower.run (Mmoe.create ~cfg:Mmoe.tiny ()) in
  let result, trips = compile_with_fault (Faultinject.Corrupt_smem 64) p in
  Alcotest.(check int) "corruption applied once" 1 trips;
  let r = ok_or_fail "corrupt smem" result in
  Alcotest.(check bool) "verifier-triggered degradation" true
    (List.exists
       (fun (d : Souffle.degradation) -> d.Souffle.d_pass = Diag.Verify_ir)
       r.Souffle.degraded);
  (match Verify_ir.check_prog Device.a100 r.Souffle.prog with
  | Ok () -> ()
  | Error ds ->
      Alcotest.failf "final program rejected: %s"
        (String.concat "; " (List.map Diag.to_string ds)));
  match Souffle.verify ~rtol:1e-3 r with
  | Ok () -> ()
  | Error m -> Alcotest.failf "not preserved: %s" m

let test_corrupt_grid_degrades_via_verifier () =
  let p = Lower.run (Mmoe.create ~cfg:Mmoe.tiny ()) in
  let result, _ = compile_with_fault (Faultinject.Corrupt_grid 64) p in
  let r = ok_or_fail "corrupt grid" result in
  Alcotest.(check bool) "verifier-triggered degradation" true
    (List.exists
       (fun (d : Souffle.degradation) -> d.Souffle.d_pass = Diag.Verify_ir)
       r.Souffle.degraded);
  match Verify_ir.check_prog Device.a100 r.Souffle.prog with
  | Ok () -> ()
  | Error ds ->
      Alcotest.failf "final program rejected: %s"
        (String.concat "; " (List.map Diag.to_string ds))

let test_strict_turns_degradation_into_error () =
  let p = Lower.run (Mmoe.create ~cfg:Mmoe.tiny ()) in
  let result, _ =
    Faultinject.with_fault (Faultinject.Fail_pass Diag.Emit) (fun () ->
        compile_result_at ~strict:true Souffle.V4 p)
  in
  match result with
  | Ok _ -> Alcotest.fail "strict mode accepted a degraded compilation"
  | Error ds ->
      Alcotest.(check bool) "mentions strict" true
        (List.exists
           (fun d -> Astring_contains.contains d.Diag.message "strict")
           ds)

let test_persistent_fault_exhausts_ladder () =
  (* a pass that fails at every level bottoms out as a hard error *)
  let p = Lower.run (Mmoe.create ~cfg:Mmoe.tiny ()) in
  let result, _ =
    Faultinject.with_fault ~times:max_int
      (Faultinject.Fail_pass Diag.Schedule) (fun () ->
        compile_result_at Souffle.V4 p)
  in
  (match result with
  | Ok _ -> Alcotest.fail "compilation succeeded with scheduling always failing"
  | Error ds ->
      Alcotest.(check bool) "typed diagnostics returned" true (ds <> []));
  (* the harness must be disarmed afterwards: a clean compile follows *)
  ignore (ok_or_fail "after disarm" (compile_result_at Souffle.V4 p))

let test_seeded_faults_deterministic () =
  let p = Lower.run (Bert.create ~cfg:Bert.tiny ()) in
  let run () =
    let result, trips =
      compile_with_fault ~seed:7 (Faultinject.Fail_pass Diag.Emit) p
    in
    let r = ok_or_fail "seeded" result in
    ( trips,
      List.map
        (fun (d : Souffle.degradation) ->
          (d.Souffle.d_subject, Souffle.level_rank d.Souffle.d_to))
        r.Souffle.degraded )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, same degradations" true (a = b)

let test_compile_raises_on_exhausted_ladder () =
  let p = Lower.run (Mmoe.create ~cfg:Mmoe.tiny ()) in
  Faultinject.arm ~times:max_int (Faultinject.Fail_pass Diag.Simulate);
  let raised =
    match Souffle.compile p with
    | (_ : Souffle.report) -> false
    | exception Invalid_argument _ -> true
  in
  Faultinject.disarm ();
  Alcotest.(check bool) "compile raises Invalid_argument" true raised

(* ---- per-TE (subgroup-level) degradation ---- *)

(* A diamond chain whose vertical transformation leaves four TEs
   (a, d, e, out) in one cooperative subprogram, which below V3 splits
   into two Ansor subgroups: [a; d] and [e; out]. *)
let diamond_chain () =
  let b = Dgraph.B.create () in
  let x = Dgraph.B.input b "x" (Shape.of_list [ 128; 128 ]) in
  let w1 = Dgraph.B.input b "w1" (Shape.of_list [ 128; 128 ]) in
  let w2 = Dgraph.B.input b "w2" (Shape.of_list [ 128; 128 ]) in
  let a = Dgraph.B.add b ~name:"a" Op.Matmul [ x; w1 ] in
  let r1 = Dgraph.B.add b ~name:"b" (Op.Unary Expr.Relu) [ a ] in
  let s1 = Dgraph.B.add b ~name:"c" (Op.Unary Expr.Sigmoid) [ a ] in
  let d = Dgraph.B.add b ~name:"d" (Op.Binary Expr.Add) [ r1; s1 ] in
  let e = Dgraph.B.add b ~name:"e" Op.Matmul [ d; w2 ] in
  let f = Dgraph.B.add b ~name:"f" (Op.Unary Expr.Relu) [ e ] in
  let g = Dgraph.B.add b ~name:"g" (Op.Unary Expr.Sigmoid) [ e ] in
  let out = Dgraph.B.add b ~name:"out" (Op.Binary Expr.Add) [ f; g ] in
  Dgraph.B.finish b ~outputs:[ out ]

(* Four persistent smem corruptions walk the ladder: the first two reject
   the whole-subprogram cooperative kernel (V4, V3 — program-wide by
   construction), the next two hit the first subgroup after the split.
   Only that subgroup's TEs may drop further: it ends as one kernel per TE
   while its sibling subgroup still emits fused at the rank the group
   settled at — 3 kernels total.  The pre-fix behavior re-emitted the
   whole group one level lower on every rejection, ending at V0 with one
   kernel per TE across the board (4 kernels). *)
let test_subgroup_degradation_is_local () =
  let p = Lower.run (diamond_chain ()) in
  let result, trips =
    Faultinject.with_fault ~times:4 (Faultinject.Corrupt_smem 64) (fun () ->
        compile_result_at Souffle.V4 p)
  in
  Alcotest.(check int) "all four corruptions applied" 4 trips;
  let r = ok_or_fail "subgroup degradation" result in
  Alcotest.(check int) "sibling subgroup still emits fused" 3
    (Souffle.num_kernels r);
  Alcotest.(check int) "four degradation steps" 4
    (List.length r.Souffle.degraded);
  (* every step is verifier-triggered and names the subgroup's head TE *)
  List.iter
    (fun (d : Souffle.degradation) ->
      Alcotest.(check string) "degradation pass" "verify-ir"
        (Diag.pass_name d.Souffle.d_pass);
      Alcotest.(check string) "degradation subject" "a" d.Souffle.d_subject)
    r.Souffle.degraded;
  Alcotest.(check bool) "ladder reaches V0 for the failing subgroup" true
    (List.exists
       (fun (d : Souffle.degradation) -> d.Souffle.d_to = Souffle.V0)
       r.Souffle.degraded);
  (match Verify_ir.check_prog Device.a100 r.Souffle.prog with
  | Ok () -> ()
  | Error ds ->
      Alcotest.failf "final program rejected: %s"
        (String.concat "; " (List.map Diag.to_string ds)));
  match Souffle.verify ~rtol:1e-3 r with
  | Ok () -> ()
  | Error m -> Alcotest.failf "not preserved: %s" m

(* One fewer corruption: the failing subgroup stops at V1 and still emits
   as a single fused kernel, so the program stays at two kernels — the
   split never cascades past the kernel that actually failed. *)
let test_subgroup_degradation_partial () =
  let p = Lower.run (diamond_chain ()) in
  let result, _ =
    Faultinject.with_fault ~times:3 (Faultinject.Corrupt_smem 64) (fun () ->
        compile_result_at Souffle.V4 p)
  in
  let r = ok_or_fail "partial subgroup degradation" result in
  Alcotest.(check int) "both subgroups fused" 2 (Souffle.num_kernels r);
  Alcotest.(check int) "three degradation steps" 3
    (List.length r.Souffle.degraded)

let test_fault_parse () =
  let roundtrip s = Result.map Faultinject.spec_to_string (Faultinject.parse s) in
  Alcotest.(check (result string string)) "pass fault" (Ok "emit")
    (roundtrip "emit");
  Alcotest.(check bool) "smem fault" true
    (Faultinject.parse "smem:8" = Ok (Faultinject.Corrupt_smem 8));
  Alcotest.(check bool) "grid fault default factor" true
    (Faultinject.parse "grid" = Ok (Faultinject.Corrupt_grid 64));
  Alcotest.(check bool) "unknown fault rejected" true
    (Result.is_error (Faultinject.parse "frobnicate"))

let suite =
  [
    Alcotest.test_case "zoo x V0..V4 matrix verifies" `Slow
      test_level_matrix_all_models;
    Alcotest.test_case "verifier accepts legal kernel" `Quick
      test_verifier_accepts_legal;
    Alcotest.test_case "verifier rejects smem" `Quick test_verifier_rejects_smem;
    Alcotest.test_case "verifier rejects regs" `Quick test_verifier_rejects_regs;
    Alcotest.test_case "verifier rejects threads" `Quick
      test_verifier_rejects_threads;
    Alcotest.test_case "verifier rejects coop > wave" `Quick
      test_verifier_rejects_coop_over_wave;
    Alcotest.test_case "verifier rejects sync in stage 0" `Quick
      test_verifier_rejects_sync_in_first_stage;
    Alcotest.test_case "verifier rejects mid-stage sync" `Quick
      test_verifier_rejects_sync_mid_stage;
    Alcotest.test_case "verifier rejects sync in lib call" `Quick
      test_verifier_rejects_sync_in_library_call;
    Alcotest.test_case "verifier rejects negative bytes" `Quick
      test_verifier_rejects_negative_bytes;
    Alcotest.test_case "verifier rejects empty kernel" `Quick
      test_verifier_rejects_empty_kernel;
    Alcotest.test_case "injected pass failures degrade (zoo x passes)" `Slow
      test_injected_pass_failure_degrades;
    Alcotest.test_case "smem corruption degrades" `Quick
      test_corrupt_smem_degrades_via_verifier;
    Alcotest.test_case "grid corruption degrades" `Quick
      test_corrupt_grid_degrades_via_verifier;
    Alcotest.test_case "strict mode errors on degradation" `Quick
      test_strict_turns_degradation_into_error;
    Alcotest.test_case "persistent fault exhausts ladder" `Quick
      test_persistent_fault_exhausts_ladder;
    Alcotest.test_case "seeded faults deterministic" `Quick
      test_seeded_faults_deterministic;
    Alcotest.test_case "compile raises after ladder" `Quick
      test_compile_raises_on_exhausted_ladder;
    Alcotest.test_case "subgroup degradation stays local" `Quick
      test_subgroup_degradation_is_local;
    Alcotest.test_case "subgroup degradation stops at failing kernel" `Quick
      test_subgroup_degradation_partial;
    Alcotest.test_case "fault spec parsing" `Quick test_fault_parse;
  ]
