(** GPU device model.  The constants for [a100] come from the NVIDIA A100
    (40 GB, SXM) datasheet plus the two latency figures the paper itself
    uses: ~2 µs per kernel launch (§8.3) and a cheap cooperative-groups
    grid synchronization (§2.3, §8.2 "lightweight CUDA grid sync"). *)

type t = {
  name : string;
  num_sms : int;
  clock_ghz : float;
  smem_per_sm : int;          (** bytes of shared memory per SM *)
  max_smem_per_block : int;   (** opt-in carve-out limit per block *)
  regs_per_sm : int;          (** 32-bit registers per SM *)
  max_regs_per_thread : int;
  max_threads_per_sm : int;
  max_threads_per_block : int;
  max_blocks_per_sm : int;
  dram_bw_gbps : float;       (** global-memory bandwidth, GB/s *)
  l2_bw_gbps : float;         (** L2 bandwidth, GB/s *)
  l2_bytes : int;
  fp32_tflops : float;        (** CUDA-core FMA peak *)
  fp16_tc_tflops : float;     (** tensor-core FP16 peak *)
  sfu_gops : float;           (** special-function-unit throughput, Gop/s *)
  kernel_launch_us : float;
  grid_sync_us : float;
  atomic_bw_factor : float;   (** atomics achieve this fraction of DRAM bw *)
  overlap_pipelined : float;  (** overlap of mem/compute with §6.5 pipelining *)
  overlap_default : float;    (** overlap from plain warp-level parallelism *)
  coop_capacity_frac : float;
      (** fraction of the theoretical resident-block count a cooperative
          (grid-synchronizing) launch can actually claim: the driver, the
          L1 carve-out and the §6.5 reuse-cache reservation take headroom,
          so Souffle partitions against a conservative bound (cf. the
          "supports at most 48 blocks" budget in the paper's Fig. 2) *)
}

let a100 : t =
  {
    name = "NVIDIA A100-SXM4-40GB";
    num_sms = 108;
    clock_ghz = 1.41;
    smem_per_sm = 164 * 1024;
    max_smem_per_block = 163 * 1024;
    regs_per_sm = 65536;
    max_regs_per_thread = 255;
    max_threads_per_sm = 2048;
    max_threads_per_block = 1024;
    max_blocks_per_sm = 32;
    dram_bw_gbps = 1555.;
    l2_bw_gbps = 4500.;
    l2_bytes = 40 * 1024 * 1024;
    fp32_tflops = 19.5;
    fp16_tc_tflops = 312.;
    sfu_gops = 4875.; (* fp32 rate / 4: SFU issues at quarter rate *)
    kernel_launch_us = 2.0;
    grid_sync_us = 1.0;
    atomic_bw_factor = 0.25;
    overlap_pipelined = 0.95;
    overlap_default = 0.60;
    coop_capacity_frac = 0.75;
  }

(** Total register/shared-memory capacity [C] of §5.4's partitioning
    constraint (we use shared memory as the binding resource). *)
let total_smem t = t.num_sms * t.smem_per_sm

let pp ppf t = Fmt.pf ppf "%s (%d SMs @ %.2f GHz)" t.name t.num_sms t.clock_ghz
