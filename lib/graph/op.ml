(** High-level DNN operators, the front-end vocabulary a model graph is
    written in before TE lowering (§4 "TE lowering").  Layout conventions:
    activations are NCHW for convolutions, (rows, cols) for matrices. *)

type pool_kind = Max_pool | Avg_pool

type t =
  | Matmul
      (** (m,k) x (k,n) -> (m,n) *)
  | Matmul_nt
      (** (m,k) x (n,k) -> (m,n); the B operand is stored transposed *)
  | Batch_matmul
      (** (b,m,k) x (b,k,n) -> (b,m,n) *)
  | Batch_matmul_nt
      (** (b,m,k) x (b,n,k) -> (b,m,n) *)
  | Gemv
      (** (m,k) x (k) -> (m) *)
  | Conv2d of { kernel : int; stride : int; padding : int; groups : int }
      (** input (n,c,h,w), weight (oc, c/groups, kh, kw) -> (n,oc,oh,ow) *)
  | Depthwise_conv2d of { kernel : int; stride : int; padding : int }
      (** input (n,c,h,w), weight (c,1,kh,kw) -> (n,c,oh,ow) *)
  | Pool2d of { kind : pool_kind; kernel : int; stride : int; padding : int }
  | Global_avg_pool
      (** (n,c,h,w) -> (n,c) *)
  | Unary of Expr.unop
  | Affine of { scale : float; shift : float }
      (** x -> scale * x + shift, element-wise *)
  | Binary of Expr.binop
      (** two inputs of equal shape, or second broadcast from trailing dims *)
  | Rowwise of Expr.binop
      (** x (.., m, k) combined with v (.., m) broadcast along the last
          axis: out[..,i,j] = x[..,i,j] op v[..,i] *)
  | Bias_add
      (** input x, bias broadcast along the last dimension *)
  | Scale of float
  | Scale_channels
      (** x (n,c,h,w) scaled per channel by s (n,c) — squeeze-excite *)
  | Bias_channels
      (** x (n,c,h,w) plus per-channel bias (c) — folded batch norm *)
  | Softmax
      (** over the last axis *)
  | Causal_mask
      (** autoregressive attention mask over score tensors (.., q, k):
          entries with key index > query index become -inf, so a following
          {!Softmax} assigns them exactly zero weight *)
  | Layernorm of { eps : float }
      (** over the last axis; inputs: x, gamma, beta *)
  | Reduce of { op : Te.reduce_op; axis : int }
      (** reduce one axis away *)
  | Reshape of int array
  | Transpose of int array
      (** general dimension permutation *)
  | Slice of { starts : int array; sizes : int array }
  | Strided_slice of { axis : int; start : int; stride : int; size : int }
  | Concat of { axis : int }
      (** variadic *)

let to_string = function
  | Matmul -> "matmul"
  | Matmul_nt -> "matmul_nt"
  | Batch_matmul -> "batch_matmul"
  | Batch_matmul_nt -> "batch_matmul_nt"
  | Gemv -> "gemv"
  | Conv2d { kernel; stride; padding; groups } ->
      Fmt.str "conv2d(k%d,s%d,p%d,g%d)" kernel stride padding groups
  | Depthwise_conv2d { kernel; stride; padding } ->
      Fmt.str "dwconv2d(k%d,s%d,p%d)" kernel stride padding
  | Pool2d { kind; kernel; stride; padding } ->
      Fmt.str "%s_pool(k%d,s%d,p%d)"
        (match kind with Max_pool -> "max" | Avg_pool -> "avg")
        kernel stride padding
  | Global_avg_pool -> "global_avg_pool"
  | Unary u -> Expr.unop_to_string u
  | Affine { scale; shift } -> Fmt.str "affine(%g,%g)" scale shift
  | Binary b -> "ew_" ^ Expr.binop_to_string b
  | Rowwise b -> "rowwise_" ^ Expr.binop_to_string b
  | Bias_add -> "bias_add"
  | Scale c -> Fmt.str "scale(%g)" c
  | Scale_channels -> "scale_channels"
  | Bias_channels -> "bias_channels"
  | Softmax -> "softmax"
  | Causal_mask -> "causal_mask"
  | Layernorm _ -> "layernorm"
  | Reduce { op; axis } ->
      Fmt.str "reduce_%s(axis=%d)" (Te.reduce_op_to_string op) axis
  | Reshape s -> "reshape" ^ Shape.to_string s
  | Transpose p -> "transpose" ^ Shape.to_string p
  | Slice _ -> "slice"
  | Strided_slice _ -> "strided_slice"
  | Concat { axis } -> Fmt.str "concat(axis=%d)" axis

let conv_out_dim ~in_dim ~kernel ~stride ~padding =
  ((in_dim + (2 * padding) - kernel) / stride) + 1

(** Output shape from input shapes; raises [Invalid_argument] on rank or
    dimension mismatches — this is the operator-level shape checker. *)
let infer_shape (op : t) (ins : Shape.t list) : Shape.t =
  let fail msg = invalid_arg (Fmt.str "%s: %s" (to_string op) msg) in
  let one () = match ins with [ a ] -> a | _ -> fail "expects 1 input" in
  let two () = match ins with [ a; b ] -> (a, b) | _ -> fail "expects 2" in
  match op with
  | Matmul ->
      let a, b = two () in
      if Array.length a <> 2 || Array.length b <> 2 || a.(1) <> b.(0) then
        fail "bad matmul shapes";
      [| a.(0); b.(1) |]
  | Matmul_nt ->
      let a, b = two () in
      if Array.length a <> 2 || Array.length b <> 2 || a.(1) <> b.(1) then
        fail "bad matmul_nt shapes";
      [| a.(0); b.(0) |]
  | Batch_matmul ->
      let a, b = two () in
      if Array.length a <> 3 || Array.length b <> 3 || a.(0) <> b.(0)
         || a.(2) <> b.(1)
      then fail "bad batch_matmul shapes";
      [| a.(0); a.(1); b.(2) |]
  | Batch_matmul_nt ->
      let a, b = two () in
      if Array.length a <> 3 || Array.length b <> 3 || a.(0) <> b.(0)
         || a.(2) <> b.(2)
      then fail "bad batch_matmul_nt shapes";
      [| a.(0); a.(1); b.(1) |]
  | Gemv ->
      let w, x = two () in
      if Array.length w <> 2 || Array.length x <> 1 || w.(1) <> x.(0) then
        fail "bad gemv shapes";
      [| w.(0) |]
  | Conv2d { kernel; stride; padding; groups } ->
      let x, w = two () in
      if Array.length x <> 4 || Array.length w <> 4 then fail "rank";
      if w.(1) * groups <> x.(1) then fail "channel/group mismatch";
      if w.(0) mod groups <> 0 then fail "oc not divisible by groups";
      let oh = conv_out_dim ~in_dim:x.(2) ~kernel ~stride ~padding in
      let ow = conv_out_dim ~in_dim:x.(3) ~kernel ~stride ~padding in
      [| x.(0); w.(0); oh; ow |]
  | Depthwise_conv2d { kernel; stride; padding } ->
      let x, w = two () in
      if Array.length x <> 4 || Array.length w <> 4 || w.(0) <> x.(1) then
        fail "bad depthwise shapes";
      let oh = conv_out_dim ~in_dim:x.(2) ~kernel ~stride ~padding in
      let ow = conv_out_dim ~in_dim:x.(3) ~kernel ~stride ~padding in
      [| x.(0); x.(1); oh; ow |]
  | Pool2d { kernel; stride; padding; _ } ->
      let x = one () in
      if Array.length x <> 4 then fail "rank";
      let oh = conv_out_dim ~in_dim:x.(2) ~kernel ~stride ~padding in
      let ow = conv_out_dim ~in_dim:x.(3) ~kernel ~stride ~padding in
      [| x.(0); x.(1); oh; ow |]
  | Global_avg_pool ->
      let x = one () in
      if Array.length x <> 4 then fail "rank";
      [| x.(0); x.(1) |]
  | Unary _ | Scale _ | Affine _ | Softmax -> one ()
  | Causal_mask ->
      let x = one () in
      let r = Array.length x in
      if r < 2 then fail "rank";
      if x.(r - 2) <> x.(r - 1) then fail "query/key dims must match";
      x
  | Rowwise _ ->
      let x, v = two () in
      let rx = Array.length x in
      if Array.length v <> rx - 1 || Array.sub x 0 (rx - 1) <> v then
        fail "rowwise operand must match leading dims";
      x
  | Scale_channels ->
      let x, s = two () in
      if Array.length x <> 4 || Array.length s <> 2 || s.(0) <> x.(0)
         || s.(1) <> x.(1)
      then fail "bad scale_channels shapes";
      x
  | Bias_channels ->
      let x, s = two () in
      if Array.length x <> 4 || Array.length s <> 1 || s.(0) <> x.(1) then
        fail "bad bias_channels shapes";
      x
  | Binary _ ->
      let a, b = two () in
      if Shape.equal a b then a
      else begin
        (* allow broadcast of b from trailing dims of a *)
        let ra = Array.length a and rb = Array.length b in
        if rb < ra
           && Array.for_all2 ( = ) (Array.sub a (ra - rb) rb) b
        then a
        else fail "shape mismatch"
      end
  | Bias_add ->
      let x, b = two () in
      if Array.length b <> 1 || b.(0) <> x.(Array.length x - 1) then
        fail "bias must match last dim";
      x
  | Layernorm _ -> (
      match ins with
      | [ x; g; bta ] ->
          let last = x.(Array.length x - 1) in
          if g <> [| last |] || bta <> [| last |] then fail "gamma/beta";
          x
      | _ -> fail "expects x, gamma, beta")
  | Reduce { axis; _ } ->
      let x = one () in
      if axis < 0 || axis >= Array.length x then fail "axis";
      Array.of_list
        (List.filteri (fun i _ -> i <> axis) (Array.to_list x))
  | Reshape s ->
      let x = one () in
      if Shape.numel x <> Shape.numel s then fail "numel mismatch";
      s
  | Transpose p ->
      let x = one () in
      if Array.length p <> Array.length x then fail "perm rank";
      Array.map (fun d -> x.(d)) p
  | Slice { starts; sizes } ->
      let x = one () in
      if Array.length starts <> Array.length x
         || Array.length sizes <> Array.length x
      then fail "rank";
      Array.iteri
        (fun i s -> if s + sizes.(i) > x.(i) then fail "slice out of range")
        starts;
      sizes
  | Strided_slice { axis; start; stride; size } ->
      let x = one () in
      if start + ((size - 1) * stride) >= x.(axis) then fail "out of range";
      let s = Array.copy x in
      s.(axis) <- size;
      s
  | Concat { axis } -> (
      match ins with
      | [] -> fail "expects >=1 input"
      | first :: rest ->
          List.fold_left (fun acc s -> Shape.concat_axis ~axis acc s)
            first rest)

(** Number of distinct input tensors the operator consumes. *)
let arity = function
  | Matmul | Matmul_nt | Batch_matmul | Batch_matmul_nt | Gemv | Conv2d _
  | Depthwise_conv2d _ | Binary _ | Rowwise _ | Bias_add | Scale_channels
  | Bias_channels ->
      2
  | Layernorm _ -> 3
  | Concat _ -> -1 (* variadic *)
  | Pool2d _ | Global_avg_pool | Unary _ | Scale _ | Affine _ | Softmax
  | Causal_mask | Reduce _ | Reshape _ | Transpose _ | Slice _
  | Strided_slice _ ->
      1
