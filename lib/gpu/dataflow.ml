(** Cross-kernel dataflow verifier: tensor-provenance checks over a whole
    emitted program.

    {!Verify_ir} proves each kernel is individually launchable; this pass
    proves the *program* moves data consistently with the TE graph it was
    compiled from.  Walking kernels in launch order (and stages in issue
    order) it tracks the set of tensors materialized on the device and
    checks, for every memory instruction the emitter tagged with a tensor
    name:

    - a loaded tensor is a program input or was produced by an earlier
      kernel/stage (no phantom loads, no loads ahead of production);
    - a tensor produced earlier in the program is re-read as [Ldl2]/[Lds],
      never as a DRAM first-touch [Ldg] — unless it is larger than the L2
      cache, in which case a DRAM round trip is the honest cost;
    - a stored tensor is one this stage (or an earlier one) produced;
    - instruction byte counts reconcile with the tensor's size: every
      tagged load/store moves an exact positive multiple of the tensor's
      byte footprint (the multiple is the replication factor the schedule
      implies, e.g. the [rsplit]-way atomic partials of §6.3).

    Untagged instructions (aggregate tiling re-reads) are exempt from the
    per-tensor checks.  The pass is static and cheap — it runs on every
    compile, after {!Verify_ir}, and its diagnostics feed the same
    per-subprogram degradation ladder: an emitter bug that would silently
    skew simulated performance numbers becomes a typed error naming the
    kernel, stage, and tensor instead. *)

module SSet = Set.Make (String)

(** What the verifier knows about the compiled program's tensors, supplied
    by the driver (from [Program.t]) or built by hand in tests. *)
type env = {
  is_input : string -> bool;
      (** externally supplied tensor (model input or weight) — starts in
          DRAM, so a first-touch [Ldg] is always legal *)
  bytes_of : string -> int option;
      (** full byte footprint of a tensor ([numel * dtype bytes]);
          [None] marks a name unknown to the program *)
}

let err ~subject ?hint fmt =
  Fmt.kstr (fun m -> Diag.error ~subject ?hint Diag.Dataflow m) fmt

(* Availability at one point of the walk: tensors some earlier stage
   produced ([before]), plus — for shared-memory reads and stores — the
   current stage's own outputs. *)
let check_instr ~subject ~stage_label ~(l2_bytes : int) (env : env)
    ~(before : SSet.t) ~(here : SSet.t) (i : Kernel_ir.instr) : Diag.t list =
  match Kernel_ir.instr_tensor i with
  | None -> []
  | Some t -> (
      match env.bytes_of t with
      | None ->
          [ err ~subject "stage %s: %a references unknown tensor %S"
              stage_label Kernel_ir.pp_instr i t ]
      | Some size ->
          let bytes =
            match i with
            | Kernel_ir.Ldg { bytes; _ } | Ldl2 { bytes; _ } | Lds { bytes; _ }
            | Stg { bytes; _ } | Atomic_add { bytes; _ } ->
                bytes
            | Mma _ | Fma _ | Sfu _ | Grid_sync | Block_sync -> 0
          in
          let accounting =
            if size <= 0 then
              [ err ~subject "stage %s: tensor %s has no byte footprint"
                  stage_label t ]
            else if bytes <= 0 || bytes mod size <> 0 then
              [ err ~subject
                  "stage %s: %a moves %d B of tensor %s, not a positive \
                   multiple of its %d B footprint"
                  stage_label Kernel_ir.pp_instr i bytes t size ]
            else []
          in
          let input = env.is_input t in
          let provenance =
            match i with
            | Kernel_ir.Ldg _ ->
                if SSet.mem t before then
                  if size <= l2_bytes then
                    [ err ~subject
                        ~hint:
                          "an on-device intermediate must be re-read as \
                           ldl2/lds"
                        "stage %s: ldg (DRAM first touch) of tensor %s, \
                         which an earlier kernel/stage produced (%d B fits \
                         L2)"
                        stage_label t size ]
                  else []
                else if not input then
                  [ err ~subject
                      "stage %s: phantom load — tensor %s is neither a \
                       program input nor produced by an earlier \
                       kernel/stage"
                      stage_label t ]
                else []
            | Ldl2 _ ->
                if input || SSet.mem t before then []
                else
                  [ err ~subject
                      "stage %s: ldl2 of tensor %s before any kernel/stage \
                       produced it"
                      stage_label t ]
            | Lds _ ->
                if input || SSet.mem t before || SSet.mem t here then []
                else
                  [ err ~subject
                      "stage %s: lds of tensor %s, which this kernel never \
                       produced"
                      stage_label t ]
            | Stg _ | Atomic_add _ ->
                if SSet.mem t before || SSet.mem t here then []
                else
                  [ err ~subject
                      "stage %s: store of tensor %s, which no stage \
                       produced"
                      stage_label t ]
            | Mma _ | Fma _ | Sfu _ | Grid_sync | Block_sync -> []
          in
          accounting @ provenance)

let check_prog (dev : Device.t) (env : env) (p : Kernel_ir.prog) :
    (unit, Diag.t list) result =
  let l2_bytes = dev.Device.l2_bytes in
  let available = ref SSet.empty in
  let ds =
    List.concat_map
      (fun (k : Kernel_ir.kernel) ->
        let subject = k.Kernel_ir.kname in
        List.concat_map
          (fun (s : Kernel_ir.stage) ->
            let here = SSet.of_list s.Kernel_ir.produces in
            let errs =
              List.concat_map
                (check_instr ~subject ~stage_label:s.Kernel_ir.label
                   ~l2_bytes env ~before:!available ~here)
                s.Kernel_ir.instrs
            in
            available := SSet.union !available here;
            errs)
          k.Kernel_ir.stages)
      p.Kernel_ir.kernels
  in
  match ds with [] -> Ok () | ds -> Error ds

(** Re-verify a mega-kernel task graph ({!Kernel_ir.taskgraph}).

    The multi-kernel walk above relies on launch order for availability; a
    task graph replaces launch order with explicit edges, so availability at
    a task is exactly the union of what its *transitive ancestors* produce
    (plus, stage by stage, the task's own earlier stages).  The same
    {!check_instr} rules apply — which is the point: a lowering that drops a
    producer/consumer edge turns a legal [ldl2] re-read into a typed
    "before any kernel/stage produced it" error, because the producer is no
    longer an ancestor.  Structural errors (an edge pointing forward or out
    of range) are reported first and short-circuit the provenance walk. *)
let check_taskgraph (dev : Device.t) (env : env) (tg : Kernel_ir.taskgraph) :
    (unit, Diag.t list) result =
  let l2_bytes = dev.Device.l2_bytes in
  let n = Array.length tg.Kernel_ir.tg_tasks in
  let structural = ref [] in
  Array.iteri
    (fun i (t : Kernel_ir.task) ->
      List.iter
        (fun d ->
          if d < 0 || d >= i then
            structural :=
              err ~subject:t.Kernel_ir.t_kernel.Kernel_ir.kname
                "task %d lists dependency %d, which is not an earlier task" i
                d
              :: !structural)
        t.Kernel_ir.t_deps)
    tg.Kernel_ir.tg_tasks;
  if !structural <> [] then Error (List.rev !structural)
  else
    (* per task: what it can see (ancestors' produces) and what it adds *)
    let avail = Array.make n SSet.empty in
    let produced = Array.make n SSet.empty in
    let errs = ref [] in
    Array.iteri
      (fun i (t : Kernel_ir.task) ->
        let k = t.Kernel_ir.t_kernel in
        let before0 =
          List.fold_left
            (fun acc d -> SSet.union acc (SSet.union avail.(d) produced.(d)))
            SSet.empty t.Kernel_ir.t_deps
        in
        let before = ref before0 in
        List.iter
          (fun (s : Kernel_ir.stage) ->
            let here = SSet.of_list s.Kernel_ir.produces in
            List.iter
              (fun instr ->
                errs :=
                  List.rev_append
                    (check_instr ~subject:k.Kernel_ir.kname
                       ~stage_label:s.Kernel_ir.label ~l2_bytes env
                       ~before:!before ~here instr)
                    !errs)
              s.Kernel_ir.instrs;
            before := SSet.union !before here)
          k.Kernel_ir.stages;
        avail.(i) <- before0;
        produced.(i) <- SSet.diff !before before0)
      tg.Kernel_ir.tg_tasks;
    match List.rev !errs with [] -> Ok () | ds -> Error ds

(** {!check_prog} as the pipeline runs it: fault-injection aware, traced,
    exceptions converted to typed diagnostics. *)
let check_result (dev : Device.t) (env : env) (p : Kernel_ir.prog) :
    (unit, Diag.t list) result =
  Obs.span
    ~meta:[ ("kernels", string_of_int (List.length p.Kernel_ir.kernels)) ]
    "verify-dataflow"
  @@ fun () ->
  match
    Diag.guard ~subject:p.Kernel_ir.pname Diag.Dataflow (fun () ->
        Faultinject.trip ~subject:p.Kernel_ir.pname Diag.Dataflow;
        check_prog dev env p)
  with
  | Ok (Ok () as ok) -> ok
  | Ok (Error _ as e) -> e
  | Error d -> Error [ d ]

(* ------------------------------------------------------------------ *)
(* Per-tensor byte accounting, for the CLI's --verify-dataflow report  *)
(* ------------------------------------------------------------------ *)

type flow = {
  f_tensor : string;
  f_bytes : int;        (** footprint per {!env} *)
  f_input : bool;
  f_ldg : int;          (** DRAM first-touch bytes *)
  f_ldl2 : int;
  f_lds : int;
  f_stored : int;       (** stg + atomic bytes *)
}

(** Aggregate tagged traffic per tensor, in first-touch order. *)
let summarize (env : env) (p : Kernel_ir.prog) : flow list =
  let order = ref [] in
  let flows : (string, flow) Hashtbl.t = Hashtbl.create 32 in
  let get t =
    match Hashtbl.find_opt flows t with
    | Some f -> f
    | None ->
        let f =
          {
            f_tensor = t;
            f_bytes = Option.value ~default:0 (env.bytes_of t);
            f_input = env.is_input t;
            f_ldg = 0;
            f_ldl2 = 0;
            f_lds = 0;
            f_stored = 0;
          }
        in
        order := t :: !order;
        f
  in
  let record (i : Kernel_ir.instr) =
    match Kernel_ir.instr_tensor i with
    | None -> ()
    | Some t ->
        let f = get t in
        let f =
          match i with
          | Kernel_ir.Ldg { bytes; _ } -> { f with f_ldg = f.f_ldg + bytes }
          | Ldl2 { bytes; _ } -> { f with f_ldl2 = f.f_ldl2 + bytes }
          | Lds { bytes; _ } -> { f with f_lds = f.f_lds + bytes }
          | Stg { bytes; _ } | Atomic_add { bytes; _ } ->
              { f with f_stored = f.f_stored + bytes }
          | Mma _ | Fma _ | Sfu _ | Grid_sync | Block_sync -> f
        in
        Hashtbl.replace flows t f
  in
  List.iter
    (fun (k : Kernel_ir.kernel) ->
      List.iter
        (fun (s : Kernel_ir.stage) -> List.iter record s.Kernel_ir.instrs)
        k.Kernel_ir.stages)
    p.Kernel_ir.kernels;
  List.rev_map (Hashtbl.find flows) !order

let pp_flows ppf (fs : flow list) =
  let kb b = float_of_int b /. 1024. in
  Fmt.pf ppf "@[<v>%-28s %6s %10s %10s %10s %10s" "tensor" "kind" "size_KB"
    "ldg_KB" "ldl2_KB" "stored_KB";
  List.iter
    (fun f ->
      Fmt.pf ppf "@,%-28s %6s %10.1f %10.1f %10.1f %10.1f" f.f_tensor
        (if f.f_input then "input" else "te")
        (kb f.f_bytes) (kb f.f_ldg) (kb f.f_ldl2) (kb f.f_stored))
    fs;
  Fmt.pf ppf "@]"
