lib/te/program.ml: Dtype Fmt List Map Option Set Shape String Te
