(** Software-managed shared-memory tensor cache with LRU replacement
    (§6.5, "Tensor reuse optimization").

    Souffle scans the instructions of a fused subprogram linearly, keeping
    tensor buffers in shared memory until it is exhausted, then spills the
    least-recently-used buffer to global memory (adding a memory barrier).
    This module is the replacement policy; {!Emit} drives it and translates
    hits/misses/spills into traffic. *)

type entry = { tensor : string; bytes : int; mutable dirty : bool }

type t = {
  capacity : int;
  mutable used : int;
  mutable lru : entry list;  (** most recent first *)
}

type event =
  | Hit                       (** resident: a shared-memory read *)
  | Miss                      (** not resident *)
  | Inserted
  | Rejected                  (** larger than the whole cache *)
  | Spilled of (string * int) list
      (** these victims (tensor, byte footprint) were written back *)

let create ~capacity = { capacity; used = 0; lru = [] }

let mem t tensor = List.exists (fun e -> e.tensor = tensor) t.lru

let find t tensor = List.find_opt (fun e -> e.tensor = tensor) t.lru

let used t = t.used
let capacity t = t.capacity
let resident t = List.map (fun e -> e.tensor) t.lru

(* Move an entry to the front. *)
let promote t tensor =
  match List.partition (fun e -> e.tensor = tensor) t.lru with
  | [ e ], rest -> t.lru <- e :: rest
  | _ -> ()

(** Record a read of [tensor]; returns whether it was resident. *)
let touch t tensor : event =
  if mem t tensor then begin
    promote t tensor;
    Hit
  end
  else Miss

(* Evict LRU entries until [need] bytes fit; returns dirty victims with
   their byte footprints (what the write-back must move). *)
let evict_for t need : (string * int) list =
  let rec go spilled =
    if t.used + need <= t.capacity then List.rev spilled
    else begin
      match List.rev t.lru with
      | [] -> List.rev spilled
      | victim :: _ ->
          t.lru <- List.filter (fun e -> e.tensor <> victim.tensor) t.lru;
          t.used <- t.used - victim.bytes;
          go
            (if victim.dirty then (victim.tensor, victim.bytes) :: spilled
             else spilled)
    end
  in
  go []

(** Insert a tensor buffer just produced on-chip.  [dirty] means it holds
    data not yet in global memory (a spill must write it back). *)
let insert t ~tensor ~bytes ~dirty : event =
  if bytes > t.capacity then Rejected
  else if mem t tensor then begin
    promote t tensor;
    (match find t tensor with Some e -> e.dirty <- e.dirty || dirty | None -> ());
    Hit
  end
  else begin
    let victims = evict_for t bytes in
    t.lru <- { tensor; bytes; dirty } :: t.lru;
    t.used <- t.used + bytes;
    if victims = [] then Inserted else Spilled victims
  end

(** Mark a tensor clean (it was just stored to global anyway). *)
let clean t tensor =
  match find t tensor with Some e -> e.dirty <- false | None -> ()

(** Drop everything (kernel boundary: shared memory does not persist). *)
let clear t =
  t.lru <- [];
  t.used <- 0
