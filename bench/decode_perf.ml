(* LLM-decode benchmark: single-token KV-cache decode steps against the
   alternatives, across the compiled position buckets.

   Three artifacts per KV position bucket P:

     - {b KV decode}: [Gpt.decode ~pos:P] — one token in, cache of P
       entries read, one entry appended.  This is what the serving layer
       dispatches for decode steps.
     - {b full recompute}: the prefill graph at sequence length P+1 — what
       generating one token costs WITHOUT a KV cache (recompute the whole
       prefix to produce the last position).
     - {b mega decode}: the same decode program lowered into one
       persistent task-graph kernel ([--mega]), the launch-bound regime
       where decode steps live.

   Checks recorded in the runlog, so --strict-bench fails the run:
     - KV decode must never be slower than full recompute beyond a 1%
       noise floor at ANY position bucket, and the geomean KV speedup
       across the buckets must clear 1.5x (the reason KV caches exist).
       The floor matters at the smallest bucket: there both programs are
       launch-bound — same kernel count, latency dominated by per-launch
       charge — so their optimally-scheduled times tie to within
       hundredths of a microsecond, and a strict per-bucket inequality
       would measure scheduler noise, not the cache;
     - mega decode must be at or below multi-kernel decode at every bucket
       (decode steps are tiny and launch-bound, the mega sweet spot);
     - every mega decode simulation must charge exactly one launch;
     - in the smoke variant, the interpreter must additionally confirm the
       tiny decode artifact computes its original program's outputs at
       every tiny bucket (the bit-exact decode == prefill-slice law itself
       is enforced in the test suite).

   Both variants sweep the FULL-size position buckets: the analytical
   compile is fast, and tiny shapes are stage-floor-bound (decode and
   recompute quantize to the same latency), so only realistic sizes can
   show the strict KV win this bench exists to guard.  Results land in
   BENCH_decode.json / BENCH_decode_smoke.json (the @bench-smoke alias). *)

let dev = Tables.dev

type row = {
  pos : int;            (* KV-cache length of the decode step *)
  dec_kernels : int;    (* multi-kernel decode program size *)
  dec_us : float;       (* multi-kernel KV decode *)
  rec_seq : int;        (* recompute sequence length (pos + 1) *)
  rec_us : float;       (* full-recompute prefill at rec_seq *)
  mega_tasks : int;
  mega_us : float;      (* persistent-kernel decode *)
}

let kv_speedup (r : row) = if r.dec_us > 0. then r.rec_us /. r.dec_us else 0.
let mega_speedup (r : row) = if r.mega_us > 0. then r.dec_us /. r.mega_us else 0.

let bench_bucket pos : row =
  let dec_prog = Lower.run (Gpt.decode ~pos ()) in
  let dec =
    Tables.compile_recorded
      ~name:(Fmt.str "gpt@d%d" pos)
      ~cfg:(Souffle.config ~pos ())
      dec_prog
  in
  let rec_seq = pos + 1 in
  let rc =
    Tables.compile_recorded
      ~name:(Fmt.str "gpt@rec%d" rec_seq)
      (Lower.run (Gpt.create ~cfg:{ Gpt.base with Gpt.seq = rec_seq } ()))
  in
  let mega =
    Tables.compile_recorded
      ~name:(Fmt.str "gpt@d%d-mega" pos)
      ~cfg:(Souffle.config ~pos ~mega:true ())
      dec_prog
  in
  let mega_tasks, mega_us, mega_launches =
    match mega.Souffle.mega with
    | Some m ->
        ( Kernel_ir.num_tasks m.Souffle.m_graph,
          m.Souffle.m_sim.Sim.total.Counters.time_us,
          m.Souffle.m_sim.Sim.total.Counters.kernel_launches )
    | None ->
        Fmt.epr "  !! gpt@d%d: mega-kernelization was rejected@." pos;
        Runlog.record Tables.runlog
          ~model:(Fmt.str "gpt@d%d-mega" pos)
          ~degraded_steps:0 ~errors:1;
        (0, infinity, 0)
  in
  let row =
    {
      pos;
      dec_kernels = List.length dec.Souffle.prog.Kernel_ir.kernels;
      dec_us = dec.Souffle.sim.Sim.total.Counters.time_us;
      rec_seq;
      rec_us = rc.Souffle.sim.Sim.total.Counters.time_us;
      mega_tasks;
      mega_us;
    }
  in
  if not (row.dec_us <= row.rec_us *. 1.01) then begin
    Fmt.epr
      "  !! gpt@d%d: KV decode (%.2f us) is slower than full recompute at \
       seq %d (%.2f us) beyond the 1%% launch-noise floor@."
      pos row.dec_us row.rec_seq row.rec_us;
    Runlog.record Tables.runlog
      ~model:(Fmt.str "gpt@d%d-kv-win" pos)
      ~degraded_steps:0 ~errors:1
  end;
  if mega_launches > 0 && mega_launches <> 1 then begin
    Fmt.epr "  !! gpt@d%d: mega run charged %d launch(es), expected 1@." pos
      mega_launches;
    Runlog.record Tables.runlog
      ~model:(Fmt.str "gpt@d%d-mega-launches" pos)
      ~degraded_steps:0 ~errors:1
  end;
  if not (row.mega_us <= row.dec_us) then begin
    Fmt.epr
      "  !! gpt@d%d: mega decode (%.2f us) is above multi-kernel decode \
       (%.2f us)@."
      pos row.mega_us row.dec_us;
    Runlog.record Tables.runlog
      ~model:(Fmt.str "gpt@d%d-mega-win" pos)
      ~degraded_steps:0 ~errors:1
  end;
  row

(* smoke extra: interpreter equivalence of the tiny decode artifact at
   every tiny bucket (cheap; full-size interpretation is out of reach) *)
let verify_tiny_equivalence () =
  List.iter
    (fun pos ->
      let r =
        Tables.compile_recorded
          ~name:(Fmt.str "gpt-tiny@d%d" pos)
          ~cfg:(Souffle.config ~pos ())
          (Lower.run (Gpt.decode ~cfg:Gpt.tiny ~pos ()))
      in
      match Souffle.verify r with
      | Ok () -> ()
      | Error m ->
          Fmt.epr "  !! gpt-tiny@d%d: compiled decode is not equivalent: %s@."
            pos m;
          Runlog.record Tables.runlog
            ~model:(Fmt.str "gpt-tiny@d%d-equiv" pos)
            ~degraded_steps:0 ~errors:1)
    Gpt.tiny_buckets

let json_of_row (r : row) : Jsonlite.t =
  Jsonlite.Obj
    [
      ("pos", Jsonlite.Num (float_of_int r.pos));
      ("decode_kernels", Jsonlite.Num (float_of_int r.dec_kernels));
      ("decode_us", Jsonlite.Num r.dec_us);
      ("recompute_seq", Jsonlite.Num (float_of_int r.rec_seq));
      ("recompute_us", Jsonlite.Num r.rec_us);
      ("kv_speedup", Jsonlite.Num (kv_speedup r));
      ("mega_tasks", Jsonlite.Num (float_of_int r.mega_tasks));
      ("mega_us", Jsonlite.Num r.mega_us);
      ("mega_speedup", Jsonlite.Num (mega_speedup r));
    ]

let run_with ~out ~equiv () =
  Tables.section
    "LLM decode — KV-cache decode vs full recompute vs mega, per position \
     bucket";
  if equiv then verify_tiny_equivalence ();
  let rows = List.map bench_bucket Gpt.buckets in
  Fmt.pr "  %-6s %8s %12s %14s %8s %12s %8s@." "pos" "kernels" "decode(us)"
    "recompute(us)" "kv-win" "mega(us)" "mega-win";
  List.iter
    (fun r ->
      Fmt.pr "  %-6d %8d %12.2f %14.2f %7.2fx %12.2f %7.2fx@." r.pos
        r.dec_kernels r.dec_us r.rec_us (kv_speedup r) r.mega_us
        (mega_speedup r))
    rows;
  let geo f =
    match rows with
    | [] -> 0.
    | _ ->
        exp
          (List.fold_left (fun a r -> a +. log (f r)) 0. rows
          /. float_of_int (List.length rows))
  in
  Fmt.pr "  ---@.";
  Fmt.pr
    "  geomean: KV decode %.2fx over recompute, mega %.2fx over \
     multi-kernel decode@."
    (geo kv_speedup) (geo mega_speedup);
  (* the aggregate KV claim: per-bucket checks tolerate the launch-bound
     floor, so the sweep-wide speedup is gated here instead *)
  if geo kv_speedup < 1.5 then begin
    Fmt.epr
      "  !! gpt: geomean KV-decode speedup %.2fx is below the 1.5x gate@."
      (geo kv_speedup);
    Runlog.record Tables.runlog ~model:"gpt@kv-geomean" ~degraded_steps:0
      ~errors:1
  end;
  let json =
    Jsonlite.Obj
      [
        ("bench", Jsonlite.Str "decode-perf");
        ("device", Jsonlite.Str dev.Device.name);
        ("model", Jsonlite.Str "gpt");
        ("buckets", Jsonlite.Arr (List.map json_of_row rows));
        ( "summary",
          Jsonlite.Obj
            [
              ("geomean_kv_speedup", Jsonlite.Num (geo kv_speedup));
              ("geomean_mega_speedup", Jsonlite.Num (geo mega_speedup));
            ] );
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Jsonlite.to_string json));
  Fmt.pr "  wrote %s@." out

(* the measurement run *)
let run () = run_with ~out:"BENCH_decode.json" ~equiv:false ()

(* the @bench-smoke alias: same sweep plus tiny-bucket interpreter
   equivalence *)
let smoke () = run_with ~out:"BENCH_decode_smoke.json" ~equiv:true ()
