(** Horizontal TE transformation (§6.1, Fig. 3).

    Independent TEs with identical body structure merge into a single TE
    whose output concatenates theirs along axis 0, with [if_then_else]
    predicates selecting per-branch inputs; consumers are rewritten to read
    through the concatenated tensor.  Grouping is restricted to TEs at the
    same dependency depth (the wavefront structure of Fig. 7: QKV
    projections, LSTM diagonals, MoE experts, grouped-conv branches). *)

val template : Expr.t -> Expr.t * string list
(** Structural body template with tensor names abstracted to ordered holes;
    two TEs may merge when their templates are equal. *)

val depths : Program.t -> int Program.SMap.t
(** Longest producer chain from the inputs, per TE.  Equal depth implies
    mutual unreachability. *)

val max_group_members : int
(** Cap on merged-group size, bounding the fused kernel's grid the same way
    the paper's per-subprogram scope does. *)

type group = { members : Te.t list (** >= 2, program order *) }

val find_groups : Program.t -> group list

type stats = { groups_merged : int; tes_eliminated : int }

val apply : Program.t -> Program.t * stats
(** Merge every group, rewrite consumers, and re-toposort. *)

val apply_result : Program.t -> (Program.t * stats, Diag.t) result
(** {!apply} with escaped exceptions (and injected faults) converted to a
    typed diagnostic instead of aborting the compilation. *)
