lib/tensor/nd.ml: Array Dtype Float Fmt Rng Shape
