test/test_schedule.ml: Alcotest Analysis Ansor Bert Builder Device Dtype Emit Expr Hashtbl Horizontal List Lower Occupancy Partition Program Result Sched Sim Te
