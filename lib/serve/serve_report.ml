(** Per-request latency accounting over a {!Scheduler.outcome}: tail
    percentiles, throughput, slowdown versus solo execution, the
    time-weighted SM/bandwidth occupancy, plus machine-readable JSON and a
    stream-aware Chrome trace (one swimlane per concurrency slot). *)

type summary = {
  s_requests : int;
  s_offered_rps : float;     (** arrival rate over the arrival window *)
  s_throughput_rps : float;  (** completions over [first arrival, last finish] *)
  s_p50_ms : float;
  s_p95_ms : float;
  s_p99_ms : float;
  s_mean_ms : float;
  s_max_ms : float;          (** all latencies include queueing *)
  s_mean_service_ms : float; (** on-device time only *)
  s_mean_slowdown : float;   (** service / solo, 1.0 = no contention *)
  s_makespan_ms : float;
  s_avg_sm_demand : float;   (** time-weighted SMs demanded over the window *)
  s_avg_resident : float;    (** time-weighted co-resident streams *)
  s_peak_resident : int;
  s_dram_gb : float;         (** solo global-memory traffic served *)
}

(** Nearest-rank percentile; [nan] on an empty list. *)
let percentile (xs : float list) (p : float) : float =
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
      let n = List.length sorted in
      let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
      List.nth sorted (max 0 (min (n - 1) (rank - 1)))

let summarize (o : Scheduler.outcome) : summary =
  let cs = o.Scheduler.o_completed in
  let n = List.length cs in
  let lat_ms =
    List.map (fun c -> Scheduler.latency_us c /. 1e3) cs
  in
  let sum = List.fold_left ( +. ) 0. in
  let arrivals =
    List.map (fun (c : Scheduler.completed) -> c.Scheduler.c_req.Workload.rq_arrival_us) cs
  in
  let first_arrival = List.fold_left Float.min infinity arrivals in
  let last_arrival = List.fold_left Float.max 0. arrivals in
  let last_finish =
    List.fold_left
      (fun a (c : Scheduler.completed) -> Float.max a c.Scheduler.c_finish_us)
      0. cs
  in
  let window_us = last_finish -. Float.min first_arrival last_finish in
  let arrival_window_us = last_arrival -. Float.min first_arrival last_arrival in
  let fn = float_of_int n in
  let wsum f =
    List.fold_left
      (fun a (s : Sim.Multi.sample) -> a +. (s.Sim.Multi.sa_dur_us *. f s))
      0. o.Scheduler.o_samples
  in
  {
    s_requests = n;
    s_offered_rps =
      (if arrival_window_us > 0. then (fn -. 1.) /. (arrival_window_us /. 1e6)
       else 0.);
    s_throughput_rps =
      (if window_us > 0. then fn /. (window_us /. 1e6) else 0.);
    s_p50_ms = percentile lat_ms 50.;
    s_p95_ms = percentile lat_ms 95.;
    s_p99_ms = percentile lat_ms 99.;
    s_mean_ms = (if n = 0 then nan else sum lat_ms /. fn);
    s_max_ms = List.fold_left Float.max 0. lat_ms;
    s_mean_service_ms =
      (if n = 0 then nan
       else
         sum (List.map (fun (c : Scheduler.completed) -> c.Scheduler.c_service_us) cs)
         /. fn /. 1e3);
    s_mean_slowdown =
      (if n = 0 then nan
       else
         sum
           (List.map
              (fun (c : Scheduler.completed) ->
                if c.Scheduler.c_solo_us > 0. then
                  c.Scheduler.c_service_us /. c.Scheduler.c_solo_us
                else 1.)
              cs)
         /. fn);
    s_makespan_ms = o.Scheduler.o_makespan_us /. 1e3;
    s_avg_sm_demand =
      (if window_us > 0. then
         wsum (fun s -> float_of_int s.Sim.Multi.sa_sm_demand) /. window_us
       else 0.);
    s_avg_resident =
      (if window_us > 0. then
         wsum (fun s -> float_of_int s.Sim.Multi.sa_resident) /. window_us
       else 0.);
    s_peak_resident =
      List.fold_left
        (fun a (s : Sim.Multi.sample) -> max a s.Sim.Multi.sa_resident)
        0 o.Scheduler.o_samples;
    s_dram_gb =
      float_of_int
        (List.fold_left
           (fun a (c : Scheduler.completed) -> a + c.Scheduler.c_bytes)
           0 cs)
      /. 1e9;
  }

let pp_summary ppf (s : summary) =
  Fmt.pf ppf
    "@[<v>requests: %d  (offered %.1f rps, served %.1f rps)@,\
     latency ms: p50 %.3f  p95 %.3f  p99 %.3f  mean %.3f  max %.3f@,\
     service: mean %.3f ms, slowdown x%.2f vs solo@,\
     makespan: %.3f ms, DRAM served: %.3f GB@,\
     occupancy: avg %.1f SMs demanded, %.2f streams resident (peak %d)@]"
    s.s_requests s.s_offered_rps s.s_throughput_rps s.s_p50_ms s.s_p95_ms
    s.s_p99_ms s.s_mean_ms s.s_max_ms s.s_mean_service_ms s.s_mean_slowdown
    s.s_makespan_ms s.s_dram_gb s.s_avg_sm_demand s.s_avg_resident
    s.s_peak_resident

let summary_json (s : summary) : Jsonlite.t =
  let num n v = (n, Jsonlite.Num v) in
  Jsonlite.Obj
    [
      num "requests" (float_of_int s.s_requests);
      num "offered_rps" s.s_offered_rps;
      num "throughput_rps" s.s_throughput_rps;
      num "p50_ms" s.s_p50_ms;
      num "p95_ms" s.s_p95_ms;
      num "p99_ms" s.s_p99_ms;
      num "mean_ms" s.s_mean_ms;
      num "max_ms" s.s_max_ms;
      num "mean_service_ms" s.s_mean_service_ms;
      num "mean_slowdown" s.s_mean_slowdown;
      num "makespan_ms" s.s_makespan_ms;
      num "avg_sm_demand" s.s_avg_sm_demand;
      num "avg_resident" s.s_avg_resident;
      num "peak_resident" (float_of_int s.s_peak_resident);
      num "dram_gb" s.s_dram_gb;
    ]

let completed_json (c : Scheduler.completed) : Jsonlite.t =
  let num n v = (n, Jsonlite.Num v) in
  Jsonlite.Obj
    [
      num "id" (float_of_int c.Scheduler.c_req.Workload.rq_id);
      ("model", Jsonlite.Str c.Scheduler.c_model);
      num "stream" (float_of_int c.Scheduler.c_stream);
      num "slot" (float_of_int c.Scheduler.c_slot);
      num "arrival_us" c.Scheduler.c_req.Workload.rq_arrival_us;
      num "dispatch_us" c.Scheduler.c_dispatch_us;
      num "finish_us" c.Scheduler.c_finish_us;
      num "latency_us" (Scheduler.latency_us c);
      num "service_us" c.Scheduler.c_service_us;
      num "solo_us" c.Scheduler.c_solo_us;
    ]

(** The whole outcome as JSON: configuration, summary, and one record per
    completed request (the latency sample set behind the percentiles). *)
let outcome_json ?(label = "") (o : Scheduler.outcome) : Jsonlite.t =
  Jsonlite.Obj
    [
      ("label", Jsonlite.Str label);
      ("policy", Jsonlite.Str (Scheduler.policy_to_string o.Scheduler.o_policy));
      ("max_streams", Jsonlite.Num (float_of_int o.Scheduler.o_max_streams));
      ("summary", summary_json (summarize o));
      ( "requests",
        Jsonlite.Arr (List.map completed_json o.Scheduler.o_completed) );
    ]

(** Stream-aware Chrome trace: one swimlane (thread row) per concurrency
    slot; each request is a complete-event span from arrival to finish with
    its contended kernel slices as children on the same lane. *)
let chrome_trace (o : Scheduler.outcome) : Obs.trace =
  let spans =
    List.map
      (fun (c : Scheduler.completed) ->
        let tid = string_of_int (c.Scheduler.c_slot + 1) in
        let children =
          List.map
            (fun (kname, a, b) ->
              Obs.make_span ~meta:[ ("tid", tid) ] ~start_us:a
                ~dur_us:(b -. a) kname)
            c.Scheduler.c_slices
        in
        Obs.make_span
          ~meta:
            [
              ("tid", tid);
              ("model", c.Scheduler.c_model);
              ("stream", string_of_int c.Scheduler.c_stream);
              ( "queued_us",
                Fmt.str "%.3f"
                  (c.Scheduler.c_dispatch_us
                  -. c.Scheduler.c_req.Workload.rq_arrival_us) );
            ]
          ~children
          ~start_us:c.Scheduler.c_req.Workload.rq_arrival_us
          ~dur_us:(Scheduler.latency_us c)
          (Fmt.str "%s#%d" c.Scheduler.c_model c.Scheduler.c_req.Workload.rq_id))
      o.Scheduler.o_completed
  in
  Obs.trace_of ~wall_us:o.Scheduler.o_makespan_us spans
