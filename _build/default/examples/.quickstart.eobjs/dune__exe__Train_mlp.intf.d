examples/train_mlp.mli:
