(* Mega-kernelization benchmark: the persistent task-graph kernel against
   the multi-kernel program it was lowered from, across the model zoo.

   One compile per model (with [mega] on) yields both sides of the
   comparison: the report's [sim] is the multi-kernel execution (one
   launch charge per kernel, grid syncs inside cooperative kernels) and
   the report's [mega] is the same program drained by persistent workers
   (exactly one launch charge, syncs replaced by task-graph edges,
   independent tasks overlapping under the contention model).

   Checks recorded in the runlog, so --strict-bench fails the run:
     - the lowering must succeed and re-verify (Verify_ir feasibility +
       cross-task dataflow provenance) on every model;
     - every mega simulation must charge exactly one kernel launch;
     - BERT and ResNeXt must run strictly faster mega than multi-kernel
       (the paper's headline launch-bound models);
     - in the smoke variant, the interpreter must confirm the compiled
       artifact still computes the original program's outputs.

   Results land in BENCH_mega.json (full models) or BENCH_mega_smoke.json
   (tiny models, the @bench-smoke alias). *)

let dev = Tables.dev

(* models on which mega must strictly beat multi-kernel under
   --strict-bench: the many-kernel, launch-latency-bound ones *)
let must_win = [ "bert"; "resnext" ]

type row = {
  model : string;
  kernels : int;      (* multi-kernel program size *)
  tasks : int;
  edges : int;
  launches : int;     (* launch charges in the mega simulation *)
  elided : int;       (* launches the lowering removed *)
  base_us : float;    (* multi-kernel end-to-end *)
  mega_us : float;    (* persistent-kernel end-to-end *)
}

let speedup (r : row) = if r.mega_us > 0. then r.base_us /. r.mega_us else 0.

let bench_model ~graph_of ~equiv (e : Zoo.entry) : row option =
  let p = Lower.run (graph_of e) in
  let r =
    Tables.compile_recorded ~name:e.Zoo.name
      ~cfg:(Souffle.config ~mega:true ())
      p
  in
  if equiv then begin
    match Souffle.verify r with
    | Ok () -> ()
    | Error m ->
        Fmt.epr "  !! %s: compiled artifact is not equivalent: %s@."
          e.Zoo.name m;
        Runlog.record Tables.runlog
          ~model:(e.Zoo.name ^ "@equiv")
          ~degraded_steps:0 ~errors:1
  end;
  match r.Souffle.mega with
  | None ->
      (* the compile itself already surfaced the skip warnings; make the
         miss fatal under --strict-bench — this sweep exists to measure
         mega, so a model it cannot cover is a regression *)
      Fmt.epr "  !! %s: mega-kernelization was rejected@." e.Zoo.name;
      Runlog.record Tables.runlog
        ~model:(e.Zoo.name ^ "@mega")
        ~degraded_steps:0 ~errors:1;
      None
  | Some m ->
      let tg = m.Souffle.m_graph in
      (* independent re-verification of cross-task provenance: every
         tensor a task reads must be produced by one of its (transitive)
         dependencies *)
      (match
         Dataflow.check_taskgraph dev
           (Souffle.dataflow_env r.Souffle.transformed)
           tg
       with
      | Ok () -> ()
      | Error ds ->
          Fmt.epr "  !! %s: task graph is not dataflow-clean:@." e.Zoo.name;
          List.iter (fun d -> Fmt.epr "     %a@." Diag.pp d) ds;
          Runlog.record Tables.runlog
            ~model:(e.Zoo.name ^ "@mega-dataflow")
            ~degraded_steps:0 ~errors:(List.length ds));
      let row =
        {
          model = e.Zoo.name;
          kernels = List.length r.Souffle.prog.Kernel_ir.kernels;
          tasks = Kernel_ir.num_tasks tg;
          edges = Kernel_ir.num_edges tg;
          launches = m.Souffle.m_sim.Sim.total.Counters.kernel_launches;
          elided = Kernel_ir.launches_elided tg;
          base_us = r.Souffle.sim.Sim.total.Counters.time_us;
          mega_us = m.Souffle.m_sim.Sim.total.Counters.time_us;
        }
      in
      if row.launches <> 1 then begin
        Fmt.epr "  !! %s: mega run charged %d launch(es), expected 1@."
          e.Zoo.name row.launches;
        Runlog.record Tables.runlog
          ~model:(e.Zoo.name ^ "@mega-launches")
          ~degraded_steps:0 ~errors:1
      end;
      if
        List.mem (String.lowercase_ascii e.Zoo.name) must_win
        && not (row.mega_us < row.base_us)
      then begin
        Fmt.epr
          "  !! %s: mega (%.2f us) is not strictly faster than \
           multi-kernel (%.2f us)@."
          e.Zoo.name row.mega_us row.base_us;
        Runlog.record Tables.runlog
          ~model:(e.Zoo.name ^ "@mega-win")
          ~degraded_steps:0 ~errors:1
      end;
      Some row

let json_of_row (r : row) : Jsonlite.t =
  Jsonlite.Obj
    [
      ("model", Jsonlite.Str r.model);
      ("kernels", Jsonlite.Num (float_of_int r.kernels));
      ("tasks", Jsonlite.Num (float_of_int r.tasks));
      ("edges", Jsonlite.Num (float_of_int r.edges));
      ("launches", Jsonlite.Num (float_of_int r.launches));
      ("launches_elided", Jsonlite.Num (float_of_int r.elided));
      ("multi_kernel_us", Jsonlite.Num r.base_us);
      ("mega_us", Jsonlite.Num r.mega_us);
      ("speedup", Jsonlite.Num (speedup r));
    ]

let run_with ~graph_of ~out ~equiv () =
  Tables.section "Mega-kernelization — one persistent kernel vs multi-kernel";
  let rows = List.filter_map (bench_model ~graph_of ~equiv) Zoo.all in
  Fmt.pr "  %-14s %8s %6s %6s %8s %12s %12s %8s@." "model" "kernels" "tasks"
    "edges" "elided" "multi(us)" "mega(us)" "speedup";
  List.iter
    (fun r ->
      Fmt.pr "  %-14s %8d %6d %6d %8d %12.2f %12.2f %7.2fx@." r.model
        r.kernels r.tasks r.edges r.elided r.base_us r.mega_us (speedup r))
    rows;
  let geo =
    match rows with
    | [] -> 0.
    | _ ->
        exp
          (List.fold_left (fun a r -> a +. log (speedup r)) 0. rows
          /. float_of_int (List.length rows))
  in
  Fmt.pr "  ---@.";
  Fmt.pr "  geomean speedup %.2fx; %d launch(es) elided in total@." geo
    (List.fold_left (fun a r -> a + r.elided) 0 rows);
  let json =
    Jsonlite.Obj
      [
        ("bench", Jsonlite.Str "mega-perf");
        ("device", Jsonlite.Str dev.Device.name);
        ("models", Jsonlite.Arr (List.map json_of_row rows));
        ( "summary",
          Jsonlite.Obj
            [
              ("geomean_speedup", Jsonlite.Num geo);
              ( "launches_elided",
                Jsonlite.Num
                  (float_of_int
                     (List.fold_left (fun a r -> a + r.elided) 0 rows)) );
            ] );
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Jsonlite.to_string json));
  Fmt.pr "  wrote %s@." out

(* full-size models: the measurement run *)
let run () =
  run_with ~graph_of:(fun e -> e.Zoo.full ()) ~out:"BENCH_mega.json"
    ~equiv:false ()

(* tiny models with interpreter equivalence: the @bench-smoke alias *)
let smoke () =
  run_with ~graph_of:(fun e -> e.Zoo.tiny ()) ~out:"BENCH_mega_smoke.json"
    ~equiv:true ()
