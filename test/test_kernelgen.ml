(* Tests for the kernel-generation layer: the LRU shared-memory cache of
   §6.5 (including a qcheck model-based test), stage building, sync
   insertion, traffic accounting and the CUDA renderer. *)

let f32 = Dtype.F32
let input name shape = (name, { Program.shape; dtype = f32 })

(* ------------------ Reuse_cache ------------------ *)

let test_lru_hit_miss () =
  let c = Reuse_cache.create ~capacity:100 in
  Alcotest.(check bool) "miss on empty" true (Reuse_cache.touch c "a" = Reuse_cache.Miss);
  ignore (Reuse_cache.insert c ~tensor:"a" ~bytes:40 ~dirty:false);
  Alcotest.(check bool) "hit after insert" true
    (Reuse_cache.touch c "a" = Reuse_cache.Hit)

let test_lru_eviction_order () =
  let c = Reuse_cache.create ~capacity:100 in
  ignore (Reuse_cache.insert c ~tensor:"a" ~bytes:40 ~dirty:true);
  ignore (Reuse_cache.insert c ~tensor:"b" ~bytes:40 ~dirty:true);
  (* touch a so b becomes LRU *)
  ignore (Reuse_cache.touch c "a");
  (match Reuse_cache.insert c ~tensor:"c" ~bytes:40 ~dirty:false with
  | Reuse_cache.Spilled [ ("b", 40) ] -> ()
  | Reuse_cache.Spilled l ->
      Alcotest.failf "wrong victims: %s"
        (String.concat "," (List.map fst l))
  | _ -> Alcotest.fail "expected a spill");
  Alcotest.(check bool) "a kept" true (Reuse_cache.mem c "a");
  Alcotest.(check bool) "b gone" false (Reuse_cache.mem c "b")

let test_lru_clean_not_spilled () =
  let c = Reuse_cache.create ~capacity:80 in
  ignore (Reuse_cache.insert c ~tensor:"a" ~bytes:40 ~dirty:false);
  (match Reuse_cache.insert c ~tensor:"b" ~bytes:80 ~dirty:true with
  | Reuse_cache.Spilled [] | Reuse_cache.Inserted -> ()
  | Reuse_cache.Spilled l ->
      Alcotest.failf "clean victim written back: %s"
        (String.concat "," (List.map fst l))
  | _ -> Alcotest.fail "unexpected");
  Alcotest.(check bool) "a evicted" false (Reuse_cache.mem c "a")

let test_lru_rejects_oversized () =
  let c = Reuse_cache.create ~capacity:10 in
  Alcotest.(check bool) "rejected" true
    (Reuse_cache.insert c ~tensor:"x" ~bytes:11 ~dirty:true = Reuse_cache.Rejected)

let test_lru_clear () =
  let c = Reuse_cache.create ~capacity:100 in
  ignore (Reuse_cache.insert c ~tensor:"a" ~bytes:40 ~dirty:true);
  Reuse_cache.clear c;
  Alcotest.(check int) "empty" 0 (Reuse_cache.used c);
  Alcotest.(check bool) "a gone" false (Reuse_cache.mem c "a")

(* model-based qcheck: the cache against a naive reference implementation *)
let qcheck_lru_model =
  QCheck.Test.make ~name:"LRU cache agrees with reference model" ~count:300
    QCheck.(
      list
        (pair (int_range 0 5) (* tensor id *)
           (pair (int_range 1 50) (* bytes *) bool (* insert? *))))
    (fun ops ->
      let capacity = 100 in
      let c = Reuse_cache.create ~capacity in
      (* reference: list of (tensor, bytes), most recent first *)
      let model = ref [] in
      let model_used () = List.fold_left (fun a (_, b) -> a + b) 0 !model in
      let ok = ref true in
      List.iter
        (fun (id, (bytes, is_insert)) ->
          let name = string_of_int id in
          if is_insert then begin
            ignore (Reuse_cache.insert c ~tensor:name ~bytes ~dirty:false);
            if bytes <= capacity then begin
              if List.mem_assoc name !model then
                model := (name, List.assoc name !model)
                         :: List.remove_assoc name !model
              else begin
                model := (name, bytes) :: !model;
                while model_used () > capacity do
                  model := List.rev (List.tl (List.rev !model))
                done
              end
            end
          end
          else begin
            let hit = Reuse_cache.touch c name = Reuse_cache.Hit in
            let model_hit = List.mem_assoc name !model in
            if hit <> model_hit then ok := false;
            if model_hit then
              model := (name, List.assoc name !model)
                       :: List.remove_assoc name !model
          end;
          if Reuse_cache.used c <> model_used () then ok := false)
        ops;
      !ok)

(* ------------------ Emit ------------------ *)

let simple_program () =
  (* gemm -> relu -> gemm, plus a reduction consumer *)
  let a = input "a" [| 32; 32 |] and b = input "b" [| 32; 32 |] in
  let c = input "c" [| 32; 32 |] in
  let g1 = Builder.matmul ~tag:"matmul" ~name:"g1" ~m:32 ~n:32 ~k:32 "a" "b" in
  let r = Builder.unary ~name:"r" ~shape:[| 32; 32 |] Expr.Relu "g1" in
  let g2 = Builder.matmul ~tag:"matmul" ~name:"g2" ~m:32 ~n:32 ~k:32 "r" "c" in
  let s = Builder.reduce_last ~name:"s" ~m:32 ~k:32 Te.Sum "g2" in
  Program.make ~inputs:[ a; b; c ] ~tes:[ g1; r; g2; s ] ~outputs:[ "s" ]

let emit_simple ?(opts = Emit.default_options) groups =
  let p = simple_program () in
  let an = Analysis.run p in
  let scheds = Ansor.schedule_program Device.a100 p in
  Emit.emit Device.a100 p an scheds opts groups

let all_in_one_group p =
  [ { Emit.g_tes = List.map (fun (te : Te.t) -> te.Te.name) p.Program.tes;
      cooperative = true; library_call = false; eff_override = None } ]

let test_emit_one_kernel_per_group () =
  let p = simple_program () in
  let prog = emit_simple (all_in_one_group p) in
  Alcotest.(check int) "one kernel" 1 (List.length prog.Kernel_ir.kernels)

let test_emit_sync_between_dependent_stages () =
  let p = simple_program () in
  let prog = emit_simple (all_in_one_group p) in
  let k = List.hd prog.Kernel_ir.kernels in
  (* g1 -> g2 -> s: at least 2 dependent stage boundaries *)
  Alcotest.(check bool) "grid syncs inserted" true
    (Kernel_ir.num_grid_syncs k >= 2)

let test_emit_no_sync_in_noncoop () =
  let p = simple_program () in
  let groups =
    List.map
      (fun (te : Te.t) ->
        { Emit.g_tes = [ te.Te.name ]; cooperative = false;
          library_call = false; eff_override = None })
      p.Program.tes
  in
  let prog = emit_simple groups in
  List.iter
    (fun k ->
      Alcotest.(check int) "no syncs" 0 (Kernel_ir.num_grid_syncs k))
    prog.Kernel_ir.kernels

let test_intermediate_elided_in_fused_kernel () =
  (* when everything is one kernel with the reuse cache, the intermediate
     tensors never touch DRAM: only a, b, c in and s out *)
  let p = simple_program () in
  let prog = emit_simple (all_in_one_group p) in
  let sim = Sim.run Device.a100 prog in
  let bytes_in = 3 * 32 * 32 * 4 in
  Alcotest.(check int) "only external inputs read" bytes_in
    sim.Sim.total.Counters.dram_read_bytes;
  (* s (32 floats) is the only store, plus possibly atomics *)
  Alcotest.(check bool) "stores bounded by output + partials" true
    (sim.Sim.total.Counters.dram_write_bytes <= 32 * 4)

let test_unfused_pays_roundtrips () =
  let p = simple_program () in
  let fused = Sim.run Device.a100 (emit_simple (all_in_one_group p)) in
  let groups =
    List.map
      (fun (te : Te.t) ->
        { Emit.g_tes = [ te.Te.name ]; cooperative = false;
          library_call = false; eff_override = None })
      p.Program.tes
  in
  let unfused =
    Sim.run Device.a100
      (emit_simple ~opts:{ Emit.default_options with Emit.reuse_cache = false } groups)
  in
  (* intermediates fit A100's L2, so unfused round trips surface as extra
     L2 traffic (re-reads of produced tensors), not extra DRAM first
     touches *)
  let off_chip (s : Sim.result) =
    s.Sim.total.Counters.dram_read_bytes
    + s.Sim.total.Counters.l2_read_bytes
  in
  Alcotest.(check bool) "unfused reads more off-chip" true
    (off_chip unfused > off_chip fused);
  Alcotest.(check bool) "unfused launches more kernels" true
    (unfused.Sim.total.Counters.kernel_launches
    > fused.Sim.total.Counters.kernel_launches)

let test_build_stages_epilogue () =
  let p = simple_program () in
  let tes = p.Program.tes in
  let stages = Emit.build_stages Emit.default_options tes in
  (* r attaches to g1's stage: 3 stages (g1+r, g2, s) *)
  Alcotest.(check int) "3 stages" 3 (List.length stages);
  let first = List.map (fun (te : Te.t) -> te.Te.name) (List.hd stages) in
  Alcotest.(check (list string)) "g1 and r fused" [ "g1"; "r" ] first

let test_build_stages_no_attach () =
  let p = simple_program () in
  let opts =
    { Emit.default_options with Emit.attach_epilogue = false;
      attach_prologue = false }
  in
  let stages = Emit.build_stages opts p.Program.tes in
  Alcotest.(check int) "4 stages" 4 (List.length stages)

let test_codegen_renders () =
  let p = simple_program () in
  let prog = emit_simple (all_in_one_group p) in
  let src = Codegen_cuda.to_string prog in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true
        (Astring_contains.contains src needle))
    [ "__global__"; "grid.sync()"; "wmma_16x16" ]

let suite =
  [
    Alcotest.test_case "lru hit/miss" `Quick test_lru_hit_miss;
    Alcotest.test_case "lru eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "lru clean not spilled" `Quick test_lru_clean_not_spilled;
    Alcotest.test_case "lru rejects oversized" `Quick test_lru_rejects_oversized;
    Alcotest.test_case "lru clear" `Quick test_lru_clear;
    QCheck_alcotest.to_alcotest qcheck_lru_model;
    Alcotest.test_case "emit one kernel per group" `Quick
      test_emit_one_kernel_per_group;
    Alcotest.test_case "emit sync between stages" `Quick
      test_emit_sync_between_dependent_stages;
    Alcotest.test_case "emit no sync in noncoop" `Quick
      test_emit_no_sync_in_noncoop;
    Alcotest.test_case "intermediates elided" `Quick
      test_intermediate_elided_in_fused_kernel;
    Alcotest.test_case "unfused pays roundtrips" `Quick
      test_unfused_pays_roundtrips;
    Alcotest.test_case "build stages epilogue" `Quick test_build_stages_epilogue;
    Alcotest.test_case "build stages no attach" `Quick test_build_stages_no_attach;
    Alcotest.test_case "codegen renders" `Quick test_codegen_renders;
  ]
