(** CUDA occupancy calculator: how many blocks of a kernel fit on one SM,
    and therefore how many can be resident in one wave — the quantity the
    §5.4 partitioning constraint compares against a subprogram's grid. *)

type usage = {
  threads_per_block : int;
  smem_per_block : int;   (** bytes *)
  regs_per_thread : int;
}

let blocks_per_sm (dev : Device.t) (u : usage) : int =
  if u.threads_per_block <= 0 then 0
  else begin
    let by_threads = dev.Device.max_threads_per_sm / u.threads_per_block in
    let by_smem =
      if u.smem_per_block = 0 then dev.Device.max_blocks_per_sm
      else dev.Device.smem_per_sm / u.smem_per_block
    in
    let regs_per_block = u.regs_per_thread * u.threads_per_block in
    let by_regs =
      if regs_per_block = 0 then dev.Device.max_blocks_per_sm
      else dev.Device.regs_per_sm / regs_per_block
    in
    let m = min (min by_threads by_smem) (min by_regs dev.Device.max_blocks_per_sm) in
    max 0 m
  end

(** Maximum thread blocks resident on the whole device at once — the
    "max blocks per wave" limit that a cooperative (grid-synchronizing)
    launch must not exceed. *)
let max_blocks_per_wave (dev : Device.t) (u : usage) : int =
  blocks_per_sm dev u * dev.Device.num_sms

(** Number of waves a grid of [grid_blocks] needs. *)
let waves (dev : Device.t) (u : usage) ~grid_blocks : int =
  let per_wave = max_blocks_per_wave dev u in
  if per_wave = 0 then max_int
  else (grid_blocks + per_wave - 1) / per_wave

(** Fraction of SM thread slots occupied — the occupancy Nsight reports. *)
let occupancy (dev : Device.t) (u : usage) : float =
  let b = blocks_per_sm dev u in
  float_of_int (b * u.threads_per_block)
  /. float_of_int dev.Device.max_threads_per_sm
