(* souffle — command-line front-end.

   Usage:
     souffle list
     souffle compile  --model bert [--level v4] [--tiny] [--cuda] [--verify]
                      [--verify-dataflow] [--strict] [--inject FAULT]
                      [--search-mode construct|exhaustive]
     souffle compare  --model bert [--tiny]
     souffle analyze  --model mmoe [--tiny]
     souffle serve    --mix bert=2,mmoe --rate 50000 --requests 64
                      --streams 4 [--policy fifo|sel] [--seed N] [--tiny]
                      [--json FILE] [--trace FILE] [--strict]
                      [--chaos SPEC] [--deadline-ms N] [--retries K]
                      [--backoff-us US] [--queue-cap M] [--drop reject|shed]
                      [--batch-max N] [--gen LEN] [--schedule-cache FILE]
*)

open Cmdliner

(* Last-resort exception barrier: anything a command lets escape is printed
   as a structured diagnostic, never an OCaml backtrace, and exits 2. *)
let protect pass (f : unit -> int) : int =
  try f ()
  with e ->
    Fmt.epr "%a@." Diag.pp (Diag.of_exn pass e);
    2

let lookup_model name =
  match Zoo.find name with
  | Some e -> Ok e
  | None ->
      Error
        (Fmt.str "unknown model %S (available: %s)" name
           (String.concat ", " (List.map String.lowercase_ascii Zoo.names)))

let graph_of entry tiny = if tiny then entry.Zoo.tiny () else entry.Zoo.full ()

let program_of entry tiny = Lower.run (graph_of entry tiny)

(* resolve --model NAME or --file PATH into a lowered program *)
let resolve ~model ~file ~tiny : (Program.t, string) result =
  match (model, file) with
  | Some m, None ->
      Result.map (fun e -> program_of e tiny) (lookup_model m)
  | None, Some path ->
      Result.map Lower.run (Serialize.of_file path)
  | _ -> Error "pass exactly one of --model or --file"

let level_of_string = function
  | "v0" -> Ok Souffle.V0
  | "v1" -> Ok Souffle.V1
  | "v2" -> Ok Souffle.V2
  | "v3" -> Ok Souffle.V3
  | "v4" -> Ok Souffle.V4
  | s -> Error (Fmt.str "unknown level %S (v0..v4)" s)

(* ---- arguments ---- *)

let model_arg =
  let doc = "Model to compile (bert, resnext, lstm, efficientnet, swintrans., mmoe)." in
  Arg.(required & opt (some string) None & info [ "m"; "model" ] ~docv:"MODEL" ~doc)

let model_opt_arg =
  let doc = "Built-in model name." in
  Arg.(value & opt (some string) None & info [ "m"; "model" ] ~docv:"MODEL" ~doc)

let file_arg =
  let doc = "Graph file in the textual format (see `souffle dump`)." in
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)

let tiny_arg =
  let doc = "Use the scaled-down test configuration (fast, interpretable)." in
  Arg.(value & flag & info [ "tiny" ] ~doc)

let level_arg =
  let doc = "Optimization level: v0 (Ansor baseline) to v4 (full Souffle)." in
  Arg.(value & opt string "v4" & info [ "O"; "level" ] ~docv:"LEVEL" ~doc)

let cuda_arg =
  let doc = "Print the generated kernels as CUDA-flavoured source." in
  Arg.(value & flag & info [ "cuda" ] ~doc)

let verify_arg =
  let doc =
    "Check semantic preservation with the reference interpreter (slow on \
     full-size models; use with --tiny)."
  in
  Arg.(value & flag & info [ "verify" ] ~doc)

let verify_dataflow_arg =
  let doc =
    "Print the cross-kernel dataflow report: per-tensor byte accounting \
     (DRAM first touches vs. L2/shared re-reads vs. stores) over the \
     emitted kernels.  The dataflow $(i,check) itself always runs as part \
     of compilation; this flag shows its view of the program."
  in
  Arg.(value & flag & info [ "verify-dataflow" ] ~doc)

let strict_arg =
  let doc =
    "Treat graceful degradation as a hard error: any pass failure that \
     would be recovered by retrying at a lower optimization level fails \
     the compilation instead."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

let trace_arg =
  let doc =
    "Record a hierarchical timing trace of every compiler pass and write \
     it to $(docv) in the Chrome-trace JSON format (load it in \
     chrome://tracing or https://ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let profile_arg =
  let doc =
    "Print the pass-timing span tree and the per-kernel counter report \
     (kernel identity joined with its Nsight-style counters) after \
     compiling."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let mega_arg =
  let doc =
    "Mega-kernelization: additionally lower the compiled multi-kernel \
     program into ONE persistent task-graph kernel — a single launch whose \
     per-SM workers drain the dependency graph of today's kernels/stages, \
     with grid synchronization replaced by task edges and independent \
     tasks overlapping.  The compile summary reports the mega latency \
     next to the multi-kernel baseline; $(b,serve) runs requests on the \
     mega artifacts.  A lowering that fails feasibility or provenance \
     re-verification degrades back to multi-kernel with a warning."
  in
  Arg.(value & flag & info [ "mega" ] ~doc)

let sched_cache_arg =
  let doc =
    "Persistent schedule cache: load previously searched Ansor schedules \
     from $(docv) before compiling (structurally matching TEs skip the \
     candidate search) and write any newly searched schedules back \
     afterwards.  A missing or stale file is treated as an empty cache."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "schedule-cache" ] ~docv:"FILE" ~doc)

let search_domains_arg =
  let doc =
    "Number of domains (OS threads) the Ansor candidate search fans out \
     over; 1 forces a serial search.  Results are identical at any value.  \
     Defaults to the machine's recommended domain count."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "search-domains" ] ~docv:"N" ~doc)

let search_mode_arg =
  let doc =
    "Schedule production strategy: $(b,construct) (default) builds one \
     schedule per TE by greedy construction under the analytic cost model \
     (a handful of candidate evaluations per TE); $(b,exhaustive) \
     enumerates the full Ansor candidate space.  The two modes cache \
     separately, and a failing constructive pass falls back to the \
     exhaustive search automatically before anything degrades."
  in
  Arg.(
    value & opt string "construct" & info [ "search-mode" ] ~docv:"MODE" ~doc)

let inject_arg =
  let doc =
    "Arm the fault-injection harness before compiling: a pass name \
     (horizontal, vertical, schedule, partition, emit, dataflow, sim) to \
     make that pass fail once, smem[:N] / grid[:N] to corrupt the next \
     emitted kernel's resource estimate by factor N, or mistag to make the \
     emitter misclassify one on-device re-read as a DRAM first touch.  \
     Used to exercise the degradation ladder."
  in
  Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"FAULT" ~doc)

(* ---- commands ---- *)

let list_cmd =
  let run () =
    Fmt.pr "models:@.";
    List.iter
      (fun (e : Zoo.entry) ->
        Fmt.pr "  %-14s %s@." (String.lowercase_ascii e.Zoo.name)
          e.Zoo.description)
      Zoo.all;
    Fmt.pr "@.baseline systems: %s@."
      (String.concat ", " (List.map Baseline.name Baseline.all))
  in
  Cmd.v (Cmd.info "list" ~doc:"List available models and baseline systems")
    Term.(const (fun () -> run (); 0) $ const ())

let arm_fault = function
  | None -> Ok ()
  | Some s -> (
      match Faultinject.parse s with
      | Ok spec ->
          Faultinject.arm spec;
          Ok ()
      | Error m -> Error m)

let search_mode_of_string s =
  match Ansor.mode_of_string (String.lowercase_ascii s) with
  | Some m -> Ok m
  | None ->
      Error (Fmt.str "unknown search mode %S (construct or exhaustive)" s)

let compile_run model file tiny level cuda verify verify_dataflow strict
    inject trace profile sched_cache_path search_domains search_mode mega =
  protect Diag.Validate @@ fun () ->
  match
    ( resolve ~model ~file ~tiny,
      level_of_string (String.lowercase_ascii level),
      arm_fault inject,
      search_mode_of_string search_mode )
  with
  | Error m, _, _, _ | _, Error m, _, _ | _, _, Error m, _ | _, _, _, Error m
    ->
      Fmt.epr "error: %s@." m;
      1
  | Ok p, Ok level, Ok (), Ok search_mode -> (
      let sched_cache = Option.map Scache.load sched_cache_path in
      let ansor =
        match search_domains with
        | None -> Ansor.default_config
        | Some n -> { Ansor.default_config with Ansor.search_domains = n }
      in
      let cfg =
        Souffle.config ~level ~ansor ~search_mode ?sched_cache ~mega ()
      in
      let compile () =
        Fun.protect ~finally:Faultinject.disarm (fun () ->
            Souffle.compile_result ~cfg ~strict p)
      in
      let save_cache () =
        match (sched_cache, sched_cache_path) with
        | Some c, Some path ->
            if Scache.dirty c then Scache.save c path;
            Fmt.pr "%a (%s)@." Scache.pp c path
        | _ -> ()
      in
      (* --trace / --profile record the compile under the Obs collector *)
      let result, recorded =
        if trace <> None || profile then
          let r, t = Obs.record compile in
          (r, Some t)
        else (compile (), None)
      in
      (match (trace, recorded) with
      | Some path, Some t ->
          Obs.to_chrome_file t path;
          Fmt.pr "trace: wrote %s (%d spans, %.1f us recorded)@." path
            (Obs.span_count t) t.Obs.wall_us
      | _ -> ());
      (match recorded with
      | Some t when profile -> Fmt.pr "%a@.@." Obs.pp_tree t
      | _ -> ());
      save_cache ();
      match result with
      | Error ds ->
          List.iter (fun d -> Fmt.epr "%a@." Diag.pp d) ds;
          1
      | Ok r ->
          Fmt.pr "%a@." Souffle.summary r;
          List.iter (fun d -> Fmt.pr "%a@." Diag.pp d) r.Souffle.diags;
          (match r.Souffle.partition with
          | Some part ->
              Fmt.pr "@.subprograms: %d@." (Partition.num_subprograms part)
          | None -> ());
          if profile then Fmt.pr "@.%a@." Souffle.pp_kernel_report r;
          (match r.Souffle.mega with
          | Some m when profile ->
              Fmt.pr "@.%a@." Kernel_ir.pp_taskgraph m.Souffle.m_graph
          | _ -> ());
          if verify_dataflow then begin
            let env = Souffle.dataflow_env r.Souffle.transformed in
            Fmt.pr "@.dataflow (per-tensor byte accounting):@.%a@."
              Dataflow.pp_flows
              (Dataflow.summarize env r.Souffle.prog)
          end;
          if cuda then begin
            Fmt.pr "@.%s@." (Souffle.cuda_source r);
            Fmt.pr "@.// --- per-TE loop nests (first 4 TEs) ---@.%s@."
              (Souffle.te_loop_nests r)
          end;
          if verify then begin
            match Souffle.verify r with
            | Ok () -> Fmt.pr "@.semantic check: PASS@."
            | Error m -> Fmt.pr "@.semantic check FAILED: %s@." m
          end;
          0)

let compile_cmd =
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a model with Souffle and simulate it")
    Term.(
      const compile_run $ model_opt_arg $ file_arg $ tiny_arg $ level_arg
      $ cuda_arg $ verify_arg $ verify_dataflow_arg $ strict_arg $ inject_arg
      $ trace_arg $ profile_arg $ sched_cache_arg $ search_domains_arg
      $ search_mode_arg $ mega_arg)

let compare_run model tiny =
  protect Diag.Simulate @@ fun () ->
  match lookup_model model with
  | Error m ->
      Fmt.epr "error: %s@." m;
      1
  | Ok entry ->
      let p = program_of entry tiny in
      Fmt.pr "%-10s %10s %10s %12s@." "system" "time(ms)" "#kernels"
        "DRAM(MB)";
      List.iter
        (fun s ->
          match Baseline.run s p with
          | Ok r ->
              Fmt.pr "%-10s %10.3f %10d %12.2f@." (Baseline.name s)
                (Baseline.time_ms r) (Baseline.num_kernels r)
                (Counters.mb
                   (Counters.global_load_bytes r.Baseline.sim.Sim.total))
          | Error m ->
              Fmt.pr "%-10s %10s   (%s)@." (Baseline.name s) "Failed" m)
        Baseline.all;
      let r = Souffle.compile p in
      Fmt.pr "%-10s %10.3f %10d %12.2f@." "Souffle" (Souffle.time_ms r)
        (Souffle.num_kernels r)
        (Counters.mb (Counters.global_load_bytes r.Souffle.sim.Sim.total));
      0

let compare_cmd =
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Run a model through every baseline system and Souffle")
    Term.(const compare_run $ model_arg $ tiny_arg)

let analyze_run model tiny =
  protect Diag.Analysis @@ fun () ->
  match lookup_model model with
  | Error m ->
      Fmt.epr "error: %s@." m;
      1
  | Ok entry ->
      let p = program_of entry tiny in
      let an = Analysis.run p in
      Fmt.pr "%a@." Analysis.pp an;
      0

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Print the Sec. 5 global analysis of a model's TE program")
    Term.(const analyze_run $ model_arg $ tiny_arg)

(* ---- serve: multi-stream serving on the simulated device ---- *)

let mix_arg =
  let doc =
    "Weighted model mix, e.g. $(b,bert=2,mmoe): comma-separated model \
     names, each optionally weighted with =W (default 1)."
  in
  Arg.(required & opt (some string) None & info [ "mix" ] ~docv:"MIX" ~doc)

let rate_arg =
  let doc =
    "Offered load in requests per second of simulated time (open-loop \
     Poisson arrivals).  0 means a closed batch: every request arrives at \
     time zero."
  in
  Arg.(value & opt float 0. & info [ "rate" ] ~docv:"RPS" ~doc)

let requests_arg =
  let doc = "Number of requests to serve." in
  Arg.(value & opt int 32 & info [ "n"; "requests" ] ~docv:"N" ~doc)

let streams_arg =
  let doc = "Concurrency bound: how many requests may share the device." in
  Arg.(value & opt int 4 & info [ "streams" ] ~docv:"N" ~doc)

let policy_arg =
  let doc = "Dispatch policy: fifo (arrival order) or sel (shortest expected latency)." in
  Arg.(value & opt string "fifo" & info [ "policy" ] ~docv:"POLICY" ~doc)

let seed_arg =
  let doc = "Workload seed; the same seed reproduces the run exactly." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let serve_json_arg =
  let doc = "Write the full outcome (summary + per-request records) as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let serve_trace_arg =
  let doc =
    "Write a Chrome-trace timeline of the serving run to $(docv): one \
     swimlane per concurrency slot, one span per request with its \
     contended kernel slices as children."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let chaos_arg =
  let doc =
    "Arm the runtime fault model: comma-separated clauses \
     $(b,kfault=P) (per-attempt kernel-fault probability), \
     $(b,khang=P), $(b,khang=PxF) or $(b,khang=Pxinf) (kernel-hang \
     probability with stretch factor F), \
     $(b,throttle=C@S+D) (capacity C in (0,1] from S ms for D ms), and \
     $(b,seed=N).  $(b,none) arms a zero-fault spec (byte-identical to \
     not arming chaos at all)."
  in
  Arg.(value & opt (some string) None & info [ "chaos" ] ~docv:"SPEC" ~doc)

let deadline_ms_arg =
  let doc =
    "Per-request latency SLO in milliseconds: requests not finished this \
     long after arrival are cancelled (in flight) or expired (queued)."
  in
  Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let retries_arg =
  let doc =
    "How many times a request struck by a runtime fault is re-dispatched \
     on a fresh stream (deterministic linear backoff) before it is failed."
  in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"K" ~doc)

let backoff_us_arg =
  let doc = "Retry backoff step in microseconds (the k-th retry waits k times this)." in
  Arg.(value & opt float 50. & info [ "backoff-us" ] ~docv:"US" ~doc)

let queue_cap_arg =
  let doc =
    "Bound the pending queue at $(docv) requests; arrivals beyond it are \
     dropped per --drop (admission control / load shedding)."
  in
  Arg.(value & opt (some int) None & info [ "queue-cap" ] ~docv:"M" ~doc)

let drop_arg =
  let doc =
    "Overflow drop policy: $(b,reject) (drop the newest arrival) or \
     $(b,shed) (first shed queued requests that can no longer meet their \
     SLO given the solo-latency estimate)."
  in
  Arg.(value & opt string "reject" & info [ "drop" ] ~docv:"POLICY" ~doc)

let batch_max_arg =
  let doc =
    "Continuous batching: coalesce queued first-attempt requests for the \
     same model into power-of-two buckets of up to $(docv) lanes (1 \
     disables batching).  Each bucket shape is compiled once up front as \
     its own shape-polymorphic artifact; pair with --schedule-cache so the \
     extra compiles hit warm schedules."
  in
  Arg.(value & opt int 1 & info [ "batch-max" ] ~docv:"N" ~doc)

let gen_arg =
  let doc =
    "Tokens to generate per request (0 = classic one-shot serving).  Each \
     request becomes one prefill dispatch plus $(docv) single-token decode \
     steps that re-enter the queue carrying their KV cache.  The prompt \
     length is the model's smallest KV position bucket, and every \
     power-of-two position bucket the generation walks through is compiled \
     up front as its own artifact.  Requires every model in --mix to \
     support decode (currently: gpt)."
  in
  Arg.(value & opt int 0 & info [ "gen" ] ~docv:"LEN" ~doc)

(* Validate every model name in the mix against the zoo before compiling
   anything: a typo in the third model must not cost two compiles first. *)
let validate_mix (mix : Workload.mix) : (unit, Diag.t) result =
  let rec go = function
    | [] -> Ok ()
    | (name, _) :: rest -> (
        match Zoo.find name with
        | Some _ -> go rest
        | None ->
            Error
              (Diag.error ~subject:name Diag.Validate
                 ~hint:
                   (Fmt.str "available models: %s"
                      (String.concat ", "
                         (List.map String.lowercase_ascii Zoo.names)))
                 (Fmt.str "unknown model %S in --mix" name)))
  in
  go mix

let serve_run mix rate requests streams policy seed tiny level strict
    json_out trace_out chaos_spec deadline_ms retries backoff_us queue_cap
    drop batch_max gen sched_cache_path search_mode mega =
  protect Diag.Simulate @@ fun () ->
  let mix_spec = mix in
  let fail m =
    Fmt.epr "error: %s@." m;
    1
  in
  match
    ( Workload.parse_mix mix,
      Scheduler.policy_of_string (String.lowercase_ascii policy),
      level_of_string (String.lowercase_ascii level),
      search_mode_of_string search_mode )
  with
  | Error m, _, _, _ -> fail m
  | _, None, _, _ -> fail (Fmt.str "unknown policy %S (fifo or sel)" policy)
  | _, _, Error m, _ -> fail m
  | _, _, _, Error m -> fail m
  | Ok mix, Some policy, Ok level, Ok search_mode ->
      if streams < 1 then fail "--streams must be >= 1"
      else if requests < 1 then fail "--requests must be >= 1"
      else if batch_max < 1 then fail "--batch-max must be >= 1"
      else if gen < 0 then fail "--gen must be >= 0"
      else begin
        let dev = Souffle.default_config.Souffle.device in
        let sched_cache = Option.map Scache.load sched_cache_path in
        let cfg_at ?pos batch =
          Souffle.config ~level ~search_mode ?sched_cache ~batch ?pos ~mega ()
        in
        (* decode support and KV position buckets for generation serving *)
        let decode_thunk (e : Zoo.entry) =
          if tiny then e.Zoo.decode_tiny else e.Zoo.decode_full
        in
        let pos_buckets = if tiny then Gpt.tiny_buckets else Gpt.buckets in
        let gen_prompt = List.hd pos_buckets in
        (* decode step t reads a cache of [gen_prompt + t - 1] entries; each
           distinct covering bucket is compiled once (the largest bucket
           absorbs caches that outgrow the ladder) *)
        let needed_pos =
          if gen = 0 then []
          else begin
            let max_b = List.fold_left max 0 pos_buckets in
            List.init gen (fun t -> gen_prompt + t)
            |> List.map (fun c ->
                   match List.find_opt (fun b -> b >= c) pos_buckets with
                   | Some b -> b
                   | None -> max_b)
            |> List.sort_uniq compare
          end
        in
        (* compile one model at one batch shape, report, build the artifact *)
        let compile_one (e : Zoo.entry) batch =
          match
            Souffle.compile_result ~cfg:(cfg_at batch) ~strict
              (program_of e tiny)
          with
          | Error ds ->
              Error
                (Fmt.str "%s: %s" e.Zoo.name
                   (String.concat "; " (List.map Diag.to_string ds)))
          | Ok r ->
              (* with --mega, requests run on the persistent-kernel
                 artifact; a rejected lowering falls back to multi-kernel *)
              let a =
                match r.Souffle.mega with
                | Some m ->
                    Scheduler.artifact_of_taskgraph dev ~model:e.Zoo.name
                      ~batch
                      ~degraded:(List.length r.Souffle.degraded)
                      m.Souffle.m_graph
                | None ->
                    Scheduler.artifact_of_prog dev ~model:e.Zoo.name ~batch
                      ~degraded:(List.length r.Souffle.degraded)
                      r.Souffle.prog
              in
              Fmt.pr "compiled %-14s %2d kernel(s), solo %10.2f us%s%s@."
                (if batch = 1 then e.Zoo.name
                 else Fmt.str "%s x%d" e.Zoo.name batch)
                (List.length r.Souffle.prog.Kernel_ir.kernels)
                a.Scheduler.art_solo_us
                (match r.Souffle.mega with
                | Some m ->
                    Fmt.str " [mega: %d task(s), 1 launch]"
                      (Kernel_ir.num_tasks m.Souffle.m_graph)
                | None when mega -> " [mega skipped]"
                | None -> "")
                (if r.Souffle.degraded = [] then ""
                 else
                   Fmt.str " (%d degradation step(s))"
                     (List.length r.Souffle.degraded));
              Ok a
        in
        (* the base shape plus every power-of-two bucket up to --batch-max *)
        let rec compile_buckets e b acc =
          if b > batch_max then Ok (List.rev acc)
          else
            match compile_one e b with
            | Error m -> Error m
            | Ok a -> compile_buckets e (b * 2) (a :: acc)
        in
        (* one decode-step artifact at one KV position bucket *)
        let compile_decode (e : Zoo.entry) (dec : pos:int -> Dgraph.t) pos =
          match
            Souffle.compile_result ~cfg:(cfg_at ~pos 1) ~strict
              (Lower.run (dec ~pos))
          with
          | Error ds ->
              Error
                (Fmt.str "%s@%d: %s" e.Zoo.name pos
                   (String.concat "; " (List.map Diag.to_string ds)))
          | Ok r ->
              let a =
                match r.Souffle.mega with
                | Some m ->
                    Scheduler.artifact_of_taskgraph dev ~model:e.Zoo.name
                      ~pos
                      ~degraded:(List.length r.Souffle.degraded)
                      m.Souffle.m_graph
                | None ->
                    Scheduler.artifact_of_prog dev ~model:e.Zoo.name ~pos
                      ~degraded:(List.length r.Souffle.degraded)
                      r.Souffle.prog
              in
              Fmt.pr "compiled %-14s %2d kernel(s), solo %10.2f us%s%s@."
                (Fmt.str "%s @%d" e.Zoo.name pos)
                (List.length r.Souffle.prog.Kernel_ir.kernels)
                a.Scheduler.art_solo_us
                (match r.Souffle.mega with
                | Some m ->
                    Fmt.str " [mega: %d task(s), 1 launch]"
                      (Kernel_ir.num_tasks m.Souffle.m_graph)
                | None when mega -> " [mega skipped]"
                | None -> "")
                (if r.Souffle.degraded = [] then ""
                 else
                   Fmt.str " (%d degradation step(s))"
                     (List.length r.Souffle.degraded));
              Ok a
        in
        (* every KV position bucket the generation walks through *)
        let compile_decodes (e : Zoo.entry) =
          match (needed_pos, decode_thunk e) with
          | [], _ -> Ok []
          | _, None ->
              Error
                (Fmt.str
                   "--gen: model %s has no decode mode (generation needs a \
                    KV-cache decode graph; currently: gpt)"
                   e.Zoo.name)
          | ps, Some dec ->
              let rec go acc = function
                | [] -> Ok (List.rev acc)
                | p :: rest -> (
                    match compile_decode e dec p with
                    | Error m -> Error m
                    | Ok a -> go (a :: acc) rest)
              in
              go [] ps
        in
        (* canonicalize mix names and compile each distinct model once *)
        let rec build canon arts = function
          | [] -> Ok (List.rev canon, List.rev arts)
          | (name, w) :: rest -> (
              match lookup_model name with
              | Error m -> Error m
              | Ok e ->
                  let canon = (e.Zoo.name, w) :: canon in
                  if
                    List.exists
                      (fun (a : Scheduler.artifact) ->
                        a.Scheduler.art_model = e.Zoo.name)
                      arts
                  then build canon arts rest
                  else (
                    match compile_buckets e 1 [] with
                    | Error m -> Error m
                    | Ok bs -> (
                        match compile_decodes e with
                        | Error m -> Error m
                        | Ok ds ->
                            build canon
                              (List.rev_append ds (List.rev_append bs arts))
                              rest)))
        in
        let save_cache () =
          match (sched_cache, sched_cache_path) with
          | Some c, Some path ->
              if Scache.dirty c then Scache.save c path;
              Fmt.pr "%a (%s)@." Scache.pp c path
          | _ -> ()
        in
        let lifecycle_opts =
          Result.bind
            (match Scheduler.drop_of_string (String.lowercase_ascii drop) with
            | Some d -> Ok d
            | None -> Error (Fmt.str "unknown drop policy %S (reject or shed)" drop))
          @@ fun drop ->
          Result.bind
            (match chaos_spec with
            | None -> Ok None
            | Some s ->
                Result.map Option.some (Faultinject.parse_chaos s)
                |> Result.map_error (fun m -> Fmt.str "--chaos: %s" m))
          @@ fun chaos ->
          if retries < 0 then Error "--retries must be >= 0"
          else if backoff_us < 0. then Error "--backoff-us must be >= 0"
          else
            match (deadline_ms, queue_cap) with
            | Some d, _ when d <= 0. -> Error "--deadline-ms must be > 0"
            | _, Some c when c < 1 -> Error "--queue-cap must be >= 1"
            | _ -> Ok (drop, chaos)
        in
        match lifecycle_opts with
        | Error m -> fail m
        | Ok (drop, chaos) -> (
            match validate_mix mix with
            | Error d ->
                Fmt.epr "%a@." Diag.pp d;
                1
            | Ok () -> (
                match build [] [] mix with
                | Error m -> fail m
                | Ok (mix, artifacts) ->
                    save_cache ();
                    let slo_us = Option.map (fun ms -> ms *. 1e3) deadline_ms in
                    let reqs =
                      Workload.generate ~seed ~rate_rps:rate ~requests ?slo_us
                        ~gen mix
                    in
                    let cfg =
                      Scheduler.cfg ?queue_cap ~drop ~retries ~backoff_us
                        ?deadline_us:slo_us ?chaos ~max_batch:batch_max
                        ~gen_prompt:(if gen > 0 then gen_prompt else 0)
                        ~policy ~max_streams:streams ()
                    in
                    (if chaos <> None then
                       Fmt.pr "chaos: %s@."
                         (Faultinject.chaos_to_string (Option.get chaos)));
                    let outcome = Scheduler.run dev cfg ~artifacts reqs in
                    List.iter
                      (fun (d : Diag.t) ->
                        if d.Diag.severity = Diag.Error then
                          Fmt.epr "%a@." Diag.pp d)
                      outcome.Scheduler.o_diags;
                    Fmt.pr "@.%a@."
                      Serve_report.pp_summary
                      (Serve_report.summarize outcome);
                    (match trace_out with
                    | None -> ()
                    | Some path ->
                        let t = Serve_report.chrome_trace outcome in
                        Obs.to_chrome_file t path;
                        Fmt.pr "trace: wrote %s (%d spans)@." path
                          (Obs.span_count t));
                    (match json_out with
                    | None -> ()
                    | Some path ->
                        let oc = open_out path in
                        Fun.protect
                          ~finally:(fun () -> close_out oc)
                          (fun () ->
                            output_string oc
                              (Jsonlite.to_string
                                 (Serve_report.outcome_json
                                    ~label:
                                      (Fmt.str "souffle serve --mix %s"
                                         mix_spec)
                                    outcome)));
                        Fmt.pr "json: wrote %s@." path);
                    if strict && outcome.Scheduler.o_failed <> [] then 1 else 0))
      end

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a stream of inference requests concurrently on the \
          simulated device")
    Term.(
      const serve_run $ mix_arg $ rate_arg $ requests_arg $ streams_arg
      $ policy_arg $ seed_arg $ tiny_arg $ level_arg $ strict_arg
      $ serve_json_arg $ serve_trace_arg $ chaos_arg $ deadline_ms_arg
      $ retries_arg $ backoff_us_arg $ queue_cap_arg $ drop_arg
      $ batch_max_arg $ gen_arg $ sched_cache_arg $ search_mode_arg
      $ mega_arg)

let dump_run model tiny output =
  protect Diag.Validate @@ fun () ->
  match lookup_model model with
  | Error m ->
      Fmt.epr "error: %s@." m;
      1
  | Ok entry -> (
      let g = graph_of entry tiny in
      match output with
      | None ->
          print_string (Serialize.to_string g);
          0
      | Some path ->
          Serialize.to_file g path;
          Fmt.pr "wrote %s (%d nodes)@." path (Dgraph.num_nodes g);
          0)

let dump_cmd =
  let output_arg =
    let doc = "Write the graph to this file instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "dump"
       ~doc:"Serialize a built-in model to the textual graph format")
    Term.(const dump_run $ model_arg $ tiny_arg $ output_arg)

let main_cmd =
  let doc = "Souffle: DNN inference optimization via global analysis and tensor expressions" in
  Cmd.group
    (Cmd.info "souffle" ~version:"1.0" ~doc)
    [ list_cmd; compile_cmd; compare_cmd; analyze_cmd; serve_cmd; dump_cmd ]

let () = exit (Cmd.eval' main_cmd)
