lib/models/lstm.ml: Array B Dgraph Expr Fmt Op
