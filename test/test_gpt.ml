(* GPT decode-vs-prefill equivalence: the KV-cache contract.

   A decode step over a cache of [p] entries must be {e bit-exact} against
   row [p] of a prefill over [p + 1] tokens — the causal mask writes -inf
   into future scores, which never moves a max-reduce and contributes
   exactly zero to the softmax sums, and every other layer op is row-wise.
   The suite pins this down for every tiny position bucket, at batch 1 and
   under [Batch.apply], and checks the appended caches themselves (the
   carried KV state) are the prefill K/V rows. *)

let ok_or_fail what = function
  | Ok r -> r
  | Error ds ->
      Alcotest.failf "%s: %s" what
        (String.concat "; " (List.map Diag.to_string ds))

(* rows [lo, hi) of a (rows, cols) tensor as a fresh (hi - lo, cols) one *)
let row_slice (t : Nd.t) lo hi : Nd.t =
  let shape = Nd.shape t in
  let cols = shape.(1) in
  Nd.of_array ~dtype:(Nd.dtype t) [| hi - lo; cols |]
    (Array.sub (Nd.data t) (lo * cols) ((hi - lo) * cols))

let check_bits ~what (expect : float array) (got : float array) =
  Alcotest.(check int) (what ^ ": same size") (Array.length expect)
    (Array.length got);
  Array.iteri
    (fun i e ->
      if Int64.bits_of_float e <> Int64.bits_of_float got.(i) then
        Alcotest.failf "%s: element %d differs: %h vs %h" what i e got.(i))
    expect

let tiny_at_seq seq = { Gpt.tiny with Gpt.seq }
let last_layer = Gpt.tiny.Gpt.layers - 1

(* Build the decode-step input environment for cache length [p] from a
   prefill run over [p + 1] tokens: shared weights pass through by name,
   [x] is the last prompt row, and each layer's cache is rows [0, p) of
   the prefill's biased K/V projections. *)
let decode_inputs (decode_p : Program.t) (prefill_env : Interp.env) ~p :
    Interp.env =
  Interp.env_of_list
    (List.map
       (fun (name, (_ : Program.tensor_info)) ->
         let v =
           if name = "x" then
             row_slice (Interp.lookup prefill_env "embeddings") p (p + 1)
           else if Filename.check_suffix name ".k_cache" then
             let prefix = Filename.chop_suffix name ".k_cache" in
             row_slice (Interp.lookup prefill_env (prefix ^ ".kb")) 0 p
           else if Filename.check_suffix name ".v_cache" then
             let prefix = Filename.chop_suffix name ".v_cache" in
             row_slice (Interp.lookup prefill_env (prefix ^ ".vb")) 0 p
           else Interp.lookup prefill_env name
         in
         (name, v))
       decode_p.Program.inputs)

let prefill_at p = Lower.run (Gpt.create ~cfg:(tiny_at_seq (p + 1)) ())
let decode_at p = Lower.run (Gpt.decode ~cfg:Gpt.tiny ~pos:p ())

let test_decode_equals_prefill_slice () =
  List.iter
    (fun p ->
      let pre = prefill_at p in
      let env = Interp.run_env pre (Interp.random_inputs ~seed:11 pre) in
      let dec = decode_at p in
      let denv = Interp.run_env dec (decode_inputs dec env ~p) in
      let out_name = Fmt.str "l%d.out" last_layer in
      check_bits
        ~what:(Fmt.str "bucket %d: decode out = prefill row %d" p p)
        (Nd.data (row_slice (Interp.lookup env out_name) p (p + 1)))
        (Nd.data (Interp.lookup denv out_name));
      for l = 0 to last_layer do
        check_bits
          ~what:(Fmt.str "bucket %d: layer %d appended K cache" p l)
          (Nd.data (row_slice (Interp.lookup env (Fmt.str "l%d.kb" l)) 0 (p + 1)))
          (Nd.data (Interp.lookup denv (Fmt.str "l%d.k_all" l)));
        check_bits
          ~what:(Fmt.str "bucket %d: layer %d appended V cache" p l)
          (Nd.data (row_slice (Interp.lookup env (Fmt.str "l%d.vb" l)) 0 (p + 1)))
          (Nd.data (Interp.lookup denv (Fmt.str "l%d.v_all" l)))
      done)
    Gpt.tiny_buckets

(* Inputs stay shared across lanes under [Batch.apply], so every lane of
   the batched decode must reproduce the unbatched step bit-exactly. *)
let test_decode_batched_lanes_identical () =
  let p = List.hd (List.rev Gpt.tiny_buckets) in
  let pre = prefill_at p in
  let env = Interp.run_env pre (Interp.random_inputs ~seed:13 pre) in
  let dec = decode_at p in
  let inputs = decode_inputs dec env ~p in
  let solo = Interp.run dec inputs in
  let batched = Interp.run (Batch.apply ~batch:3 dec) inputs in
  List.iter
    (fun (name, (s : Nd.t)) ->
      let b =
        match List.assoc_opt name batched with
        | Some b -> b
        | None -> Alcotest.failf "batched run lost output %s" name
      in
      let n = Nd.numel s in
      for lane = 0 to 2 do
        check_bits
          ~what:(Fmt.str "lane %d of batched %s" lane name)
          (Nd.data s)
          (Array.sub (Nd.data b) (lane * n) n)
      done)
    solo

(* Both modes must survive the full pipeline, and the compiled decode step
   must still match the reference interpreter (Causal_mask and the Concat
   KV append flow through lowering, partitioning and codegen). *)
let test_both_modes_compile_and_verify () =
  let check name p =
    let r = ok_or_fail name (Souffle.compile_result p) in
    Alcotest.(check int) (name ^ ": compiles undegraded") 0
      (List.length r.Souffle.degraded);
    match Souffle.verify r with
    | Ok () -> ()
    | Error m -> Alcotest.failf "%s: compiled program diverges: %s" name m
  in
  check "prefill" (Lower.run (Gpt.create ~cfg:Gpt.tiny ()));
  check "decode" (decode_at (List.hd Gpt.tiny_buckets))

let test_prefill_graph_serializes () =
  let g = Gpt.create ~cfg:Gpt.tiny () in
  match Serialize.of_string (Serialize.to_string g) with
  | Ok g' ->
      Alcotest.(check string) "causal-mask graph round-trips"
        (Serialize.to_string g) (Serialize.to_string g')
  | Error m -> Alcotest.failf "round-trip failed: %s" m

(* The mask itself: a prefill row attends only to positions <= its own.
   Directly inspect the probability tensor of the first layer. *)
let test_causal_mask_zeroes_future () =
  let p = Lower.run (Gpt.create ~cfg:Gpt.tiny ()) in
  let env = Interp.run_env p (Interp.random_inputs ~seed:17 p) in
  let probs = Interp.lookup env "l0.probs" in
  let s = (Nd.shape probs).(1) in
  let heads = (Nd.shape probs).(0) in
  for h = 0 to heads - 1 do
    for i = 0 to s - 1 do
      let row_sum = ref 0. in
      for j = 0 to s - 1 do
        let v = Nd.get probs [| h; i; j |] in
        if j > i then
          Alcotest.(check (float 0.))
            (Fmt.str "head %d: weight of future pos (%d,%d)" h i j)
            0. v;
        row_sum := !row_sum +. v
      done;
      Alcotest.(check (float 1e-5))
        (Fmt.str "head %d row %d: weights sum to 1" h i)
        1. !row_sum
    done
  done

let suite =
  [
    Alcotest.test_case "decode equals prefill slice (all buckets)" `Quick
      test_decode_equals_prefill_slice;
    Alcotest.test_case "batched decode lanes identical" `Quick
      test_decode_batched_lanes_identical;
    Alcotest.test_case "prefill and decode compile and verify" `Quick
      test_both_modes_compile_and_verify;
    Alcotest.test_case "causal-mask graph serializes" `Quick
      test_prefill_graph_serializes;
    Alcotest.test_case "causal mask zeroes future positions" `Quick
      test_causal_mask_zeroes_future;
  ]
