lib/kernelgen/emit.ml: Analysis Device Dtype Expr Fmt Hashtbl Intensity Kernel_ir List Option Partition Program Reuse_cache Sched Shape Te
