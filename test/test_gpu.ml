(* Tests for the GPU device model, occupancy calculator and simulator. *)

let dev = Device.a100

let usage ?(threads = 256) ?(smem = 48 * 1024) ?(regs = 64) () =
  { Occupancy.threads_per_block = threads; smem_per_block = smem;
    regs_per_thread = regs }

let test_occupancy_thread_limit () =
  (* 1024-thread blocks: 2 per SM by the 2048-thread limit *)
  Alcotest.(check int) "2 blocks" 2
    (Occupancy.blocks_per_sm dev (usage ~threads:1024 ~smem:0 ~regs:16 ()))

let test_occupancy_smem_limit () =
  (* 96 KiB blocks: 1 per SM on a 164 KiB SM *)
  Alcotest.(check int) "1 block" 1
    (Occupancy.blocks_per_sm dev (usage ~smem:(96 * 1024) ~regs:16 ()));
  Alcotest.(check int) "3 blocks at 48K" 3
    (Occupancy.blocks_per_sm dev (usage ~smem:(48 * 1024) ~regs:16 ()))

let test_occupancy_reg_limit () =
  (* 255 regs x 256 threads = 65280: 1 block per SM *)
  Alcotest.(check int) "reg bound" 1
    (Occupancy.blocks_per_sm dev (usage ~regs:255 ~smem:0 ()))

let test_wave_capacity () =
  let u = usage ~smem:(96 * 1024) ~regs:16 () in
  Alcotest.(check int) "108 blocks per wave" 108
    (Occupancy.max_blocks_per_wave dev u);
  Alcotest.(check int) "3 waves for 300 blocks" 3
    (Occupancy.waves dev u ~grid_blocks:300)

let test_occupancy_fraction () =
  let u = usage ~threads:256 ~smem:0 ~regs:16 () in
  (* 8 blocks x 256 threads = 2048 = 100% *)
  Alcotest.(check (float 1e-6)) "full occupancy" 1.0 (Occupancy.occupancy dev u)

let mk_kernel ?(grid = 108) ?(stages = []) () =
  Kernel_ir.kernel ~name:"k" ~grid_blocks:grid stages

let sim_of stages =
  Sim.run dev { Kernel_ir.pname = "t"; kernels = [ mk_kernel ~stages () ] }

let test_launch_overhead () =
  (* empty kernels cost exactly the launch latency *)
  let r =
    Sim.run dev
      { Kernel_ir.pname = "t";
        kernels = List.init 5 (fun i ->
            Kernel_ir.kernel ~name:(Fmt.str "k%d" i) ~grid_blocks:108 []) }
  in
  Alcotest.(check int) "5 launches" 5 r.Sim.total.Counters.kernel_launches;
  Alcotest.(check (float 1e-6)) "10us total"
    (5. *. dev.Device.kernel_launch_us)
    r.Sim.total.Counters.time_us

let test_memory_bound_stage () =
  (* 155.5 MB at 1555 GB/s * 0.85 eff = ~117.6 us *)
  let bytes = 155_500_000 in
  let r =
    sim_of [ Kernel_ir.stage ~label:"ld" [ Kernel_ir.ldg bytes ] ]
  in
  let t = r.Sim.total.Counters.time_us -. dev.Device.kernel_launch_us in
  Alcotest.(check bool) "within 5% of bandwidth model" true
    (Float.abs (t -. 117.6) < 6.);
  Alcotest.(check int) "bytes counted" bytes
    r.Sim.total.Counters.dram_read_bytes

let test_compute_bound_stage () =
  (* 1e9 FMA flops at 19.5 TFLOPS x 0.7 = 73 us *)
  let r =
    sim_of
      [ Kernel_ir.stage ~label:"fma" ~compute_eff:0.7
          [ Kernel_ir.Fma { flops = 1_000_000_000 } ] ]
  in
  let t = r.Sim.total.Counters.time_us -. dev.Device.kernel_launch_us in
  Alcotest.(check bool) "~73us" true (Float.abs (t -. 73.3) < 4.)

let test_tensor_core_faster_than_fma () =
  let flops = 1_000_000_000 in
  let t_mma =
    (sim_of [ Kernel_ir.stage ~label:"m" [ Kernel_ir.Mma { flops } ] ]).Sim.total
      .Counters.time_us
  in
  let t_fma =
    (sim_of [ Kernel_ir.stage ~label:"f" [ Kernel_ir.Fma { flops } ] ]).Sim.total
      .Counters.time_us
  in
  Alcotest.(check bool) "mma much faster" true (t_mma *. 4. < t_fma)

let test_pipelining_overlaps () =
  let instrs =
    [ Kernel_ir.ldg 50_000_000; Kernel_ir.Mma { flops = 10_000_000_000 } ]
  in
  let t_plain =
    (sim_of [ Kernel_ir.stage ~label:"s" ~pipelined:false instrs ]).Sim.total
      .Counters.time_us
  in
  let t_pipe =
    (sim_of [ Kernel_ir.stage ~label:"s" ~pipelined:true instrs ]).Sim.total
      .Counters.time_us
  in
  Alcotest.(check bool) "pipelining helps" true (t_pipe < t_plain);
  (* and can never beat the slower of the two resources *)
  let lower_bound = 50_000_000. /. (1555. *. 0.85 *. 1e3) in
  Alcotest.(check bool) "bounded below" true
    (t_pipe -. dev.Device.kernel_launch_us >= lower_bound -. 1e-6)

let test_grid_sync_cost () =
  let r =
    sim_of
      [ Kernel_ir.stage ~label:"s" [ Kernel_ir.Grid_sync; Kernel_ir.Grid_sync ] ]
  in
  Alcotest.(check int) "2 syncs" 2 r.Sim.total.Counters.grid_syncs;
  Alcotest.(check bool) "costs ~2us + floor" true
    (r.Sim.total.Counters.time_us -. dev.Device.kernel_launch_us >= 2.0)

let test_atomic_slower_than_store () =
  let bytes = 10_000_000 in
  let t_atomic =
    (sim_of [ Kernel_ir.stage ~label:"a" [ Kernel_ir.atomic_add bytes ] ])
      .Sim.total.Counters.time_us
  in
  let t_store =
    (sim_of [ Kernel_ir.stage ~label:"s" [ Kernel_ir.stg bytes ] ])
      .Sim.total.Counters.time_us
  in
  Alcotest.(check bool) "atomics slower" true (t_atomic > t_store)

let test_l2_faster_than_dram () =
  let bytes = 100_000_000 in
  let t_l2 =
    (sim_of [ Kernel_ir.stage ~label:"l" [ Kernel_ir.ldl2 bytes ] ])
      .Sim.total.Counters.time_us
  in
  let t_dram =
    (sim_of [ Kernel_ir.stage ~label:"d" [ Kernel_ir.ldg bytes ] ])
      .Sim.total.Counters.time_us
  in
  Alcotest.(check bool) "l2 faster" true (t_l2 < t_dram)

let test_under_occupancy_penalty () =
  let flops = 1_000_000_000 in
  let run grid =
    (Sim.run dev
       { Kernel_ir.pname = "t";
         kernels =
           [ Kernel_ir.kernel ~name:"k" ~grid_blocks:grid
               [ Kernel_ir.stage ~label:"s" ~sgrid:grid
                   [ Kernel_ir.Fma { flops } ] ] ] })
      .Sim.total.Counters.time_us
  in
  let t_full = run 108 and t_tenth = run 10 in
  Alcotest.(check bool) "10-block grid ~10x slower" true
    (t_tenth > t_full *. 5.)

let test_library_call_ignores_occupancy () =
  let flops = 1_000_000_000 in
  let run lib =
    (Sim.run dev
       { Kernel_ir.pname = "t";
         kernels =
           [ Kernel_ir.kernel ~name:"k" ~grid_blocks:4 ~library_call:lib
               [ Kernel_ir.stage ~label:"s" ~sgrid:4
                   [ Kernel_ir.Fma { flops } ] ] ] })
      .Sim.total.Counters.time_us
  in
  Alcotest.(check bool) "library unaffected by tiny grid" true
    (run true < run false /. 4.)

let test_validate_prog_coop () =
  (* a grid-syncing kernel with more blocks than one wave is rejected *)
  let k =
    Kernel_ir.kernel ~name:"bad" ~grid_blocks:100_000
      ~smem_per_block:(96 * 1024)
      [ Kernel_ir.stage ~label:"s" [ Kernel_ir.Grid_sync ] ]
  in
  Alcotest.(check bool) "invalid" true
    (Result.is_error (Sim.validate_prog dev { Kernel_ir.pname = "t"; kernels = [ k ] }));
  let ok =
    Kernel_ir.kernel ~name:"ok" ~grid_blocks:50 ~smem_per_block:(48 * 1024)
      [ Kernel_ir.stage ~label:"s" [ Kernel_ir.Grid_sync ] ]
  in
  Alcotest.(check bool) "valid" true
    (Result.is_ok (Sim.validate_prog dev { Kernel_ir.pname = "t"; kernels = [ ok ] }))

let test_utilization_counters () =
  let r =
    sim_of
      [ Kernel_ir.stage ~label:"s"
          [ Kernel_ir.ldg 100_000_000; Kernel_ir.Fma { flops = 1_000_000 } ] ]
  in
  let lsu = Counters.lsu_utilization r.Sim.total in
  Alcotest.(check bool) "LSU utilization in (0,1]" true (lsu > 0. && lsu <= 1.);
  Alcotest.(check bool) "LSU dominates FMA here" true
    (lsu > Counters.fma_utilization r.Sim.total)

let qcheck_more_traffic_never_faster =
  QCheck.Test.make ~name:"monotone: more DRAM traffic is never faster"
    ~count:100
    QCheck.(pair (int_range 1 1_000_000) (int_range 0 1_000_000))
    (fun (base, extra) ->
      let t b =
        (sim_of [ Kernel_ir.stage ~label:"s" [ Kernel_ir.ldg b ] ])
          .Sim.total.Counters.time_us
      in
      t (base + extra) >= t base -. 1e-9)

let suite =
  [
    Alcotest.test_case "occupancy thread limit" `Quick test_occupancy_thread_limit;
    Alcotest.test_case "occupancy smem limit" `Quick test_occupancy_smem_limit;
    Alcotest.test_case "occupancy reg limit" `Quick test_occupancy_reg_limit;
    Alcotest.test_case "wave capacity" `Quick test_wave_capacity;
    Alcotest.test_case "occupancy fraction" `Quick test_occupancy_fraction;
    Alcotest.test_case "launch overhead" `Quick test_launch_overhead;
    Alcotest.test_case "memory bound stage" `Quick test_memory_bound_stage;
    Alcotest.test_case "compute bound stage" `Quick test_compute_bound_stage;
    Alcotest.test_case "tensor core vs fma" `Quick test_tensor_core_faster_than_fma;
    Alcotest.test_case "pipelining overlaps" `Quick test_pipelining_overlaps;
    Alcotest.test_case "grid sync cost" `Quick test_grid_sync_cost;
    Alcotest.test_case "atomic slower than store" `Quick test_atomic_slower_than_store;
    Alcotest.test_case "l2 faster than dram" `Quick test_l2_faster_than_dram;
    Alcotest.test_case "under-occupancy penalty" `Quick test_under_occupancy_penalty;
    Alcotest.test_case "library ignores occupancy" `Quick
      test_library_call_ignores_occupancy;
    Alcotest.test_case "validate cooperative" `Quick test_validate_prog_coop;
    Alcotest.test_case "utilization counters" `Quick test_utilization_counters;
    QCheck_alcotest.to_alcotest qcheck_more_traffic_never_faster;
  ]
