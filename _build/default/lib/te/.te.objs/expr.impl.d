lib/te/expr.ml: Float Fmt Index List String
