(** Souffle: the end-to-end top-down compilation pipeline (§4, Algorithm 1).

    [compile] lowers nothing itself — it takes a TE {!Program.t} (use
    {!Lower.run} to get one from a graph) and drives:

    + global computation-graph analysis (§5),
    + horizontal transformation of independent TEs (§6.1),
    + vertical transformation of one-relies-on-one chains (§6.2),
    + Ansor scheduling of the (transformed) TEs (§6.3),
    + resource-aware partitioning into subprograms (§5.4),
    + schedule merging with predicates and grid synchronization (§6.4),
    + instruction pipelining and LRU tensor-buffer reuse (§6.5),

    and finally runs the resulting kernels on the analytical A100 model.
    The optimization level reproduces Table 4's ablation: V0 is plain
    TVM+Ansor codegen, each level adds one Souffle mechanism. *)

type level = V0 | V1 | V2 | V3 | V4

let level_to_string = function
  | V0 -> "V0 (Ansor baseline)"
  | V1 -> "V1 (+horizontal)"
  | V2 -> "V2 (+vertical)"
  | V3 -> "V3 (+global sync)"
  | V4 -> "V4 (+subprogram opt)"

let level_rank = function V0 -> 0 | V1 -> 1 | V2 -> 2 | V3 -> 3 | V4 -> 4

let level_of_rank = function
  | 0 -> V0
  | 1 -> V1
  | 2 -> V2
  | 3 -> V3
  | _ -> V4

type config = {
  device : Device.t;
  level : level;
  ansor : Ansor.config;
  search_mode : Ansor.mode;
      (** how schedules are produced: {!Ansor.Construct} (default) builds
          one schedule per TE by greedy construction under the analytic
          cost model; {!Ansor.Exhaustive} enumerates the full candidate
          space.  A failing constructive pass falls back to the exhaustive
          search (then to the reduced space) before anything degrades *)
  sched_cache : Scache.t option;
      (** persistent cross-run schedule cache; warm entries skip the Ansor
          candidate search entirely *)
  batch : int;
      (** batch lanes to compile the program at ({!Batch.apply} runs before
          any analysis); 1 compiles the program exactly as given *)
  pos : int;
      (** sequence-position bucket the program was constructed at (KV-cache
          length of a decode step).  0 means "static shape" — the graph
          does not depend on a position.  Purely an artifact-identity
          discriminator: the program arrives already built at this
          position, the pipeline never rewrites it *)
  mega : bool;
      (** also lower the compiled program into one persistent task-graph
          kernel ({!Megakernel}); the multi-kernel program is still built
          and simulated, so the report carries both *)
}

let default_config =
  {
    device = Device.a100;
    level = V4;
    ansor = Ansor.default_config;
    search_mode = Ansor.Construct;
    sched_cache = None;
    batch = 1;
    pos = 0;
    mega = false;
  }

let config ?(device = Device.a100) ?(level = V4)
    ?(ansor = Ansor.default_config) ?(search_mode = Ansor.Construct)
    ?sched_cache ?(batch = 1) ?(pos = 0) ?(mega = false) () =
  { device; level; ansor; search_mode; sched_cache; batch; pos; mega }

(** One step of the graceful-degradation ladder: [d_subject] (the whole
    program, or one subprogram's head TE) was retried at [d_to] after
    [d_pass] failed at [d_from]. *)
type degradation = {
  d_subject : string;
  d_pass : Diag.pass;
  d_from : level;
  d_to : level;
  d_reason : string;
}

let pp_degradation ppf d =
  Fmt.pf ppf "%s: %s failed at %s, retried at %s (%s)" d.d_subject
    (Diag.pass_name d.d_pass) (level_to_string d.d_from)
    (level_to_string d.d_to) d.d_reason

(** The mega-kernelization of a compiled program: the verified task graph
    and its solo simulation (one launch charge, dependency-respecting task
    overlap).  Present only when the compile ran with [cfg.mega] and the
    lowered graph passed both the worker-launch feasibility check
    ({!Verify_ir.check}) and the provenance re-verification
    ({!Dataflow.check_taskgraph}); otherwise the compile degrades to the
    multi-kernel program with a warning diagnostic. *)
type mega_result = { m_graph : Kernel_ir.taskgraph; m_sim : Sim.result }

type report = {
  cfg : config;
  original : Program.t;
  transformed : Program.t;
  analysis : Analysis.t;
  partition : Partition.t option;
  groups : Emit.group list;
  prog : Kernel_ir.prog;
  sim : Sim.result;
  mega : mega_result option;  (** the persistent-kernel lowering, if asked
                                  for ([cfg.mega]) and verified *)
  scheds : (string, Sched.t) Hashtbl.t;
      (** the schedule table of the successful attempt, keyed by TE name —
          kept so downstream renderings ({!te_loop_nests}) never re-run the
          Ansor search *)
  hstats : Horizontal.stats;
  vstats : Vertical.stats;
  compile_s : float;  (** wall-clock seconds spent in Souffle's own passes *)
  diags : Diag.t list;  (** every diagnostic any pass reported, in order *)
  degraded : degradation list;
      (** recovery steps taken; empty on a clean compile *)
}

(* TVM/Ansor-style grouping for levels below V3: every reduction TE starts a
   kernel and absorbs its one-relies-on-one consumers (classic epilogue
   fusion); leading elementwise TEs form their own kernels. *)
let ansor_groups_of_tes (tes : Te.t list) : Emit.group list =
  let module SSet = Program.SSet in
  (* [cur_names] mirrors [cur] so the produced-in-current-group test is a
     set lookup, not a nested list scan per input of every TE *)
  let rev_groups = ref [] and cur = ref [] and cur_names = ref SSet.empty in
  let flush () =
    if !cur <> [] then begin
      rev_groups :=
        {
          Emit.g_tes = List.rev_map (fun (te : Te.t) -> te.Te.name) !cur;
          cooperative = false;
          library_call = false;
          eff_override = None;
        }
        :: !rev_groups;
      cur := [];
      cur_names := SSet.empty
    end
  in
  let push (te : Te.t) =
    cur := te :: !cur;
    cur_names := SSet.add te.Te.name !cur_names
  in
  List.iter
    (fun (te : Te.t) ->
      if Te.has_reduction te then begin
        flush ();
        push te
      end
      else begin
        (* attach to the current group when it consumes it, else keep as a
           standalone elementwise kernel *)
        let produced_in_cur =
          List.exists (fun i -> SSet.mem i !cur_names) (Te.inputs te)
        in
        if produced_in_cur && !cur <> [] then push te
        else begin
          flush ();
          push te;
          flush ()
        end
      end)
    tes;
  flush ();
  List.rev !rev_groups

let ansor_groups (p : Program.t) : Emit.group list =
  ansor_groups_of_tes p.Program.tes

(* Emission options at a given optimization rank (Table 4's ladder). *)
let emit_opts rank =
  {
    Emit.default_options with
    Emit.reuse_cache = rank >= 4;
    pipeline = rank >= 4;
    attach_epilogue = true;
    attach_prologue = rank >= 2;
  }

(** Cross-kernel dataflow environment for a (transformed) TE program: what
    {!Dataflow} may assume about the program's tensors. *)
let dataflow_env (p : Program.t) : Dataflow.env =
  let inputs = Program.SSet.of_list (Program.input_names p) in
  {
    Dataflow.is_input = (fun t -> Program.SSet.mem t inputs);
    bytes_of =
      (fun t ->
        Option.map
          (fun (i : Program.tensor_info) ->
            Shape.numel i.Program.shape * Dtype.bytes i.Program.dtype)
          (Program.tensor_info p t));
  }

let singleton_groups (tes : Te.t list) : Emit.group list =
  List.map
    (fun (te : Te.t) ->
      {
        Emit.g_tes = [ te.Te.name ];
        cooperative = false;
        library_call = false;
        eff_override = None;
      })
    tes

(** Compilation as a total function.  Any pass failure — a raised exception,
    an injected fault, or a kernel the IR verifier rejects — degrades the
    failing unit one optimization level (V4 -> V3 -> ... -> V0) and retries,
    instead of aborting the whole model:

    - front-end passes (transforms, scheduling, partitioning, simulation)
      operate on the whole program, so they degrade the program level;
    - emission and IR verification operate per subprogram, so only the
      failing subprogram is degraded — below V3 a cooperative subprogram is
      re-emitted as Ansor-style separate kernels, and at V0 as one kernel
      per TE.

    Every retry is recorded in [diags] / [degraded].  [Error] is returned
    only when the input program is invalid or a subprogram still fails at
    V0; with [strict] any degradation is promoted to an error (for CI and
    canary deployments that prefer failing fast over serving degraded
    kernels). *)
let compile_result ?(cfg = default_config) ?(strict = false) (p : Program.t)
    : (report, Diag.t list) result =
  if cfg.batch < 1 then
    Error
      [
        Diag.error Diag.Validate
          (Fmt.str "invalid batch %d (must be >= 1)" cfg.batch);
      ]
  else if cfg.pos < 0 then
    Error
      [
        Diag.error Diag.Validate
          (Fmt.str "invalid position bucket %d (must be >= 0)" cfg.pos);
      ]
  else
  (* Rewrite to the batched shape up front; at batch 1 this is the input
     program itself ([==]), so the unbatched pipeline is untouched.  The
     report's [original] is the batched program: semantic checks compare
     like with like. *)
  let p = Batch.apply ~batch:cfg.batch p in
  let t0 = Unix.gettimeofday () in
  let diags = ref [] and degraded = ref [] in
  let note d = diags := d :: !diags in
  let record ~subject ~pass ~from_rank ~to_rank reason =
    degraded :=
      {
        d_subject = subject;
        d_pass = pass;
        d_from = level_of_rank from_rank;
        d_to = level_of_rank to_rank;
        d_reason = reason;
      }
      :: !degraded;
    note
      (Diag.warning ~subject pass
         (Fmt.str "degraded from %s to %s: %s"
            (level_to_string (level_of_rank from_rank))
            (level_to_string (level_of_rank to_rank))
            reason))
  in
  let ( let* ) = Result.bind in
  (* One in-memory schedule store shared by every rung of the ladder: a
     retry at a lower level re-schedules the same (or structurally equal)
     TEs, so attempt r-1 reuses attempt r's search results.  Layered on top
     of the optional persistent cache: persistent hits are promoted into the
     run memo, new results are written through to both. *)
  let run_memo : (string, Sched.t) Hashtbl.t = Hashtbl.create 64 in
  let store =
    {
      Ansor.find =
        (fun key ->
          match Hashtbl.find_opt run_memo key with
          | Some _ as hit -> hit
          | None -> (
              match cfg.sched_cache with
              | None -> None
              | Some c -> (
                  match Scache.find c key with
                  | Some s ->
                      Hashtbl.replace run_memo key s;
                      Some s
                  | None -> None)));
      Ansor.add =
        (fun key s ->
          Hashtbl.replace run_memo key s;
          match cfg.sched_cache with
          | None -> ()
          | Some c -> Scache.add c key s);
    }
  in
  (* Schedule with retries: constructive scheduling (the default mode)
     falls back to the exhaustive full-space search, which falls back to
     the reduced candidate set, before the whole program degrades a level.
     Each recovery is a warning diagnostic, not a degradation step — the
     chosen optimization level is untouched, only this search ran
     differently. *)
  let schedule p2 =
    let recovered ~what ~via d scheds =
      note
        (Diag.warning ~subject:"program" Diag.Schedule
           (Fmt.str "%s failed (%s); recovered on %s" what d.Diag.message via));
      Ok scheds
    in
    let with_reduced_fallback r =
      match r with
      | Ok _ as ok -> ok
      | Error d -> (
          match
            Ansor.schedule_program_result ~config:cfg.ansor
              ~space:Ansor.Reduced ~store cfg.device p2
          with
          | Ok scheds ->
              recovered ~what:"full-space search"
                ~via:"the reduced candidate set" d scheds
          | Error _ -> Error d)
    in
    let exhaustive () =
      Ansor.schedule_program_result ~config:cfg.ansor ~store cfg.device p2
    in
    match cfg.search_mode with
    | Ansor.Exhaustive -> with_reduced_fallback (exhaustive ())
    | Ansor.Construct -> (
        match
          Construct.schedule_program_result ~config:cfg.ansor ~store
            cfg.device p2
        with
        | Ok _ as ok -> ok
        | Error d -> (
            match exhaustive () with
            | Ok scheds ->
                recovered ~what:"constructive scheduling"
                  ~via:"the exhaustive search" d scheds
            | Error _ as e -> with_reduced_fallback e))
  in
  (* ---- front end: whole-program passes at rank [r] ---- *)
  let front_end r =
    let* p1, hstats =
      if r >= 1 then Horizontal.apply_result p
      else Ok (p, { Horizontal.groups_merged = 0; tes_eliminated = 0 })
    in
    let* p2, vstats =
      if r >= 2 then Vertical.apply_result ~fold_into_reduce:true p1
      else Ok (p1, { Vertical.chains_fused = 0; movement_folded = 0 })
    in
    let* an =
      Obs.span "analysis" (fun () ->
          Diag.guard Diag.Analysis (fun () -> Analysis.run p2))
    in
    let* scheds = schedule p2 in
    let* partition, groups =
      if r >= 3 then
        match Partition.run_result cfg.device an scheds with
        | Ok part ->
            Ok
              ( Some part,
                List.map Emit.group_of_subprogram part.Partition.subprograms )
        | Error d -> Error d
      else Ok (None, ansor_groups p2)
    in
    Ok (p2, an, scheds, partition, groups, hstats, vstats)
  in
  (* ---- back end: one subprogram (group), with its own ladder ---- *)
  let emit_and_verify ~p2 ~an ~scheds ~index r (g : Emit.group) =
    let* k = Emit.emit_kernel_result cfg.device p2 an scheds (emit_opts r) ~index g in
    Obs.span ~meta:[ ("kernel", k.Kernel_ir.kname) ] "verify-ir" @@ fun () ->
    match Verify_ir.check cfg.device k with
    | Ok () -> Ok k
    | Error ds -> Error (List.hd ds)
  in
  (* One kernel of a split cooperative subprogram, with its own mini-ladder.
     [subranks] (keyed by the subgroup's head TE, shared across every
     re-emission of the owning group) remembers where each subgroup settled:
     when Verify_ir rejects one sub-kernel, only that kernel's TEs drop a
     level — at rank 0, to one kernel per TE — while sibling subgroups keep
     the rank the whole group runs at. *)
  let rec emit_subgroup ~p2 ~an ~scheds ~subranks ~index r (sg : Emit.group) :
      (Kernel_ir.kernel list, Diag.t) result =
    let subject =
      match sg.Emit.g_tes with n :: _ -> n | [] -> "<empty group>"
    in
    let r =
      match Hashtbl.find_opt subranks subject with
      | Some settled -> min settled r
      | None -> r
    in
    let attempt =
      if r >= 1 then
        Result.map (fun k -> [ k ]) (emit_and_verify ~p2 ~an ~scheds ~index r sg)
      else begin
        let tes = List.map (Program.find_te_exn p2) sg.Emit.g_tes in
        let rec go i acc = function
          | [] -> Ok (List.rev acc)
          | g1 :: rest -> (
              match
                emit_and_verify ~p2 ~an ~scheds ~index:(index + i) 0 g1
              with
              | Ok k -> go (i + 1) (k :: acc) rest
              | Error _ as e -> e)
        in
        go 0 [] (singleton_groups tes)
      end
    in
    match attempt with
    | Ok ks -> Ok ks
    | Error d when r > 0 ->
        note d;
        record ~subject ~pass:d.Diag.pass ~from_rank:r ~to_rank:(r - 1)
          d.Diag.message;
        Hashtbl.replace subranks subject (r - 1);
        emit_subgroup ~p2 ~an ~scheds ~subranks ~index (r - 1) sg
    | Error _ as e -> e
  in
  (* Returns the emitted kernels together with the rank the group settled
     at, so a later cross-kernel check can re-emit it from that rung
     without replaying (and re-recording) the degradations. *)
  let rec emit_group ~p2 ~an ~scheds ~subranks ~index r (g : Emit.group) :
      (Kernel_ir.kernel list * int, Diag.t) result =
    let subject =
      match g.Emit.g_tes with n :: _ -> n | [] -> "<empty group>"
    in
    let attempt =
      if r >= 3 || not g.Emit.cooperative then
        (* one kernel for the whole subprogram; cooperative only at V3+ *)
        let g' = { g with Emit.cooperative = g.Emit.cooperative && r >= 3 } in
        Result.map
          (fun k -> [ k ])
          (emit_and_verify ~p2 ~an ~scheds ~index r g')
      else begin
        (* below V3 a cooperative subprogram falls back to Ansor-style
           separate kernels (at V0, one kernel per TE), each with its own
           {!emit_subgroup} ladder *)
        let tes = List.map (Program.find_te_exn p2) g.Emit.g_tes in
        let subgroups =
          if r >= 1 then ansor_groups_of_tes tes else singleton_groups tes
        in
        let rec go idx acc = function
          | [] -> Ok (List.concat (List.rev acc))
          | sg :: rest -> (
              match emit_subgroup ~p2 ~an ~scheds ~subranks ~index:idx r sg with
              | Ok ks -> go (idx + List.length ks) (ks :: acc) rest
              | Error _ as e -> e)
        in
        go index [] subgroups
      end
    in
    match attempt with
    | Ok ks -> Ok (ks, r)
    | Error d when r > 0 ->
        note d;
        record ~subject ~pass:d.Diag.pass ~from_rank:r ~to_rank:(r - 1)
          d.Diag.message;
        emit_group ~p2 ~an ~scheds ~subranks ~index (r - 1) g
    | Error _ as e -> e
  in
  (* ---- the program-level ladder ---- *)
  let rec attempt r =
    Obs.span
      ~meta:[ ("level", level_to_string (level_of_rank r)) ]
      "attempt"
    @@ fun () ->
    let stage =
      let* p2, an, scheds, partition, groups, hstats, vstats = front_end r in
      (* Emit every group at its own (possibly already degraded) rank,
         keeping per-group kernel lists so a cross-kernel dataflow failure
         can be attributed back to its owning subprogram. *)
      let garr = Array.of_list groups in
      let ranks = Array.make (Array.length garr) r in
      let subranks = Hashtbl.create 8 in
      (* Settled-group memo: [emit_checked] below re-emits every group each
         time the dataflow check degrades one of them.  A group whose
         (subject, requested rank, kernel index) is unchanged reuses its
         emitted kernels instead of re-running emission and IR
         verification; results are also recorded under the settled rank,
         so re-requesting a group at the rank it degraded to is a hit
         too.  The kernel index is part of the key because it is baked
         into kernel names — a group whose position shifted must
         re-emit. *)
      let ememo : (string * int * int, Kernel_ir.kernel list * int) Hashtbl.t
          =
        Hashtbl.create 8
      in
      let emit_group_memo ~index r (g : Emit.group) =
        let subject =
          match g.Emit.g_tes with n :: _ -> n | [] -> "<empty group>"
        in
        match Hashtbl.find_opt ememo (subject, r, index) with
        | Some res -> Ok res
        | None -> (
            match emit_group ~p2 ~an ~scheds ~subranks ~index r g with
            | Ok ((_, settled) as res) ->
                Hashtbl.replace ememo (subject, r, index) res;
                Hashtbl.replace ememo (subject, settled, index) res;
                Ok res
            | Error _ as e -> e)
      in
      let emit_all () =
        let rec go i idx acc =
          if i >= Array.length garr then Ok (List.rev acc)
          else
            match emit_group_memo ~index:idx ranks.(i) garr.(i) with
            | Ok (ks, settled) ->
                ranks.(i) <- settled;
                go (i + 1) (idx + List.length ks) (ks :: acc)
            | Error _ as e -> e
        in
        go 0 0 []
      in
      (* Emission followed by the cross-kernel dataflow check: a dataflow
         diagnostic names the offending kernel, which maps to exactly one
         subprogram — degrade that group one rung and re-emit (groups
         already settled re-emit unchanged at their recorded ranks).  A
         failure that names no kernel degrades the whole program, like any
         other program-level pass.  Terminates: every iteration either
         succeeds or strictly lowers one group's rank. *)
      let env = dataflow_env p2 in
      let rec emit_checked () =
        let* per_group = emit_all () in
        let prog =
          { Kernel_ir.pname = "prog"; kernels = List.concat per_group }
        in
        match Dataflow.check_result cfg.device env prog with
        | Ok () -> Ok prog
        | Error ds -> (
            let d = List.hd ds in
            let owner =
              match d.Diag.subject with
              | None -> None
              | Some kname ->
                  let rec find i = function
                    | [] -> None
                    | ks :: rest ->
                        if
                          List.exists
                            (fun (k : Kernel_ir.kernel) ->
                              k.Kernel_ir.kname = kname)
                            ks
                        then Some i
                        else find (i + 1) rest
                  in
                  find 0 per_group
            in
            match owner with
            | Some i when ranks.(i) > 0 ->
                let subject =
                  match garr.(i).Emit.g_tes with
                  | n :: _ -> n
                  | [] -> "<empty group>"
                in
                List.iter note ds;
                record ~subject ~pass:Diag.Dataflow ~from_rank:ranks.(i)
                  ~to_rank:(ranks.(i) - 1)
                  d.Diag.message;
                ranks.(i) <- ranks.(i) - 1;
                emit_checked ()
            | _ -> Error d)
      in
      let* prog = emit_checked () in
      let* sim = Sim.run_result cfg.device prog in
      Ok (p2, an, scheds, partition, groups, hstats, vstats, prog, sim)
    in
    match stage with
    | Ok (p2, an, scheds, partition, groups, hstats, vstats, prog, sim) ->
        (* Mega-kernelization rides on the successful multi-kernel compile:
           lower to a task graph, re-verify feasibility and provenance, and
           simulate the persistent launch.  A rejection is a graceful
           fallback to the multi-kernel program — recorded as warnings, not
           errors, so [--strict] still accepts the compile. *)
        let mega =
          if not cfg.mega then None
          else
            Obs.span "megakernel" @@ fun () ->
            let tg = Megakernel.lower prog in
            match Megakernel.verify cfg.device (dataflow_env p2) tg with
            | Ok () -> Some { m_graph = tg; m_sim = Sim.run_mega cfg.device tg }
            | Error ds ->
                List.iter
                  (fun (d : Diag.t) ->
                    note
                      (Diag.warning ?subject:d.Diag.subject d.Diag.pass
                         ("mega-kernelization skipped: " ^ d.Diag.message)))
                  ds;
                None
        in
        let compile_s = Unix.gettimeofday () -. t0 in
        Ok
          {
            cfg;
            original = p;
            transformed = p2;
            analysis = an;
            partition;
            groups;
            prog;
            sim;
            mega;
            scheds;
            hstats;
            vstats;
            compile_s;
            diags = List.rev !diags;
            degraded = List.rev !degraded;
          }
    | Error d when r > 0 ->
        note d;
        record ~subject:"program" ~pass:d.Diag.pass ~from_rank:r
          ~to_rank:(r - 1) d.Diag.message;
        attempt (r - 1)
    | Error d -> Error (List.rev (d :: !diags))
  in
  Obs.span
    ~meta:
      [
        ("level", level_to_string cfg.level);
        ("tes", string_of_int (List.length p.Program.tes));
      ]
    "compile"
  @@ fun () ->
  match Program.validate p with
  | Error m -> Error [ Diag.error Diag.Validate ("invalid program: " ^ m) ]
  | Ok () -> (
      match attempt (level_rank cfg.level) with
      | Error _ as e -> e
      | Ok r when strict && (r.degraded <> [] || List.exists Diag.is_error r.diags)
        ->
          Error
            (r.diags
            @ [
                Diag.error Diag.Validate
                  ~hint:"drop --strict to accept degraded compilation"
                  (Fmt.str "strict mode: %d degradation step(s) taken"
                     (List.length r.degraded));
              ])
      | Ok _ as ok -> ok)

let compile ?cfg (p : Program.t) : report =
  match compile_result ?cfg p with
  | Ok r -> r
  | Error ds ->
      invalid_arg
        (Fmt.str "Souffle.compile: %s"
           (String.concat "; " (List.map Diag.to_string ds)))

(** Compile a model graph end to end. *)
let compile_graph ?cfg (g : Dgraph.t) : report = compile ?cfg (Lower.run g)

(** Check that the transformed program computes the same outputs as the
    original (the semantic-preservation guarantee, via the reference
    interpreter).  Heavy: meant for tests and small programs. *)
let verify ?(rtol = 1e-4) (r : report) : (unit, string) result =
  Interp.equivalent ~rtol r.original r.transformed

let time_ms (r : report) = Sim.time_ms r.sim
let num_kernels (r : report) = List.length r.prog.Kernel_ir.kernels

let summary ppf (r : report) =
  Fmt.pf ppf
    "@[<v>level: %s@,TEs: %d -> %d (horizontal: %d groups, vertical: %d fused)@,\
     kernels: %d, grid syncs: %d@,time: %.3f ms@,\
     DRAM loads: %.2f MB, stores: %.2f MB@,compile time: %.2f s@]"
    (level_to_string r.cfg.level)
    (List.length r.original.Program.tes)
    (List.length r.transformed.Program.tes)
    r.hstats.Horizontal.groups_merged
    (r.vstats.Vertical.chains_fused + r.vstats.Vertical.movement_folded)
    (num_kernels r) r.sim.Sim.total.Counters.grid_syncs (time_ms r)
    (Counters.mb (Counters.global_load_bytes r.sim.Sim.total))
    (Counters.mb r.sim.Sim.total.Counters.dram_write_bytes)
    r.compile_s;
  (match r.mega with
  | None -> ()
  | Some m ->
      Fmt.pf ppf
        "@,mega: %d task(s), %d edge(s), %d launch(es) elided, time %.3f ms \
         (%.2fx vs multi-kernel)"
        (Kernel_ir.num_tasks m.m_graph)
        (Kernel_ir.num_edges m.m_graph)
        (Kernel_ir.launches_elided m.m_graph)
        (Sim.time_ms m.m_sim)
        (r.sim.Sim.total.Counters.time_us
        /. Float.max 1e-9 m.m_sim.Sim.total.Counters.time_us));
  if r.degraded <> [] then
    Fmt.pf ppf "@,degraded: %a" Fmt.(list ~sep:(any "; ") pp_degradation)
      r.degraded

(** The per-kernel counter report ({!Kreport}) of the compiled program:
    one row per launched kernel joining its Nsight-style counters with its
    identity (name encoding the subprogram index, member TEs, launch
    configuration). *)
let kernel_report (r : report) : Kreport.row list = Kreport.of_sim r.sim

(** {!kernel_report} as machine-readable JSON, stamped with the compile's
    identity (optimization level, device, kernel/degradation totals). *)
let kernel_report_json ?(model = "") (r : report) : string =
  Jsonlite.to_string
    (Kreport.to_json
       ~meta:
         [
           ("model", model);
           ("level", level_to_string r.cfg.level);
           ("device", r.cfg.device.Device.name);
           ("degraded_steps", string_of_int (List.length r.degraded));
         ]
       r.sim)

let pp_kernel_report ppf (r : report) =
  Fmt.pf ppf "@[<v>per-kernel counters (%s, %d kernel(s)):@,%a@,%a@]"
    (level_to_string r.cfg.level)
    (num_kernels r) Kreport.pp (kernel_report r) Kreport.pp_total r.sim

let cuda_source (r : report) = Codegen_cuda.to_string r.prog

(** Per-TE loop nests (TensorIR level, Fig. 2 step 5) for the first
    [limit] TEs of the transformed program — the detailed view behind the
    kernel-level rendering of {!cuda_source}.  Reads the schedule table
    recorded in the report; nothing is re-searched. *)
let te_loop_nests ?(limit = 4) (r : report) : string =
  r.transformed.Program.tes
  |> List.filteri (fun i _ -> i < limit)
  |> List.map (fun (te : Te.t) ->
         Tir.render_cuda
           (Tir.of_te r.transformed te (Hashtbl.find r.scheds te.Te.name)))
  |> String.concat "\n"


(* ---- compile-once artifact store ---- *)

module Artifacts = struct
  type t = (string * int * int * int * bool, report) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let key ~name ~level ~batch ~pos ~mega =
    (String.lowercase_ascii name, level_rank level, batch, pos, mega)

  let find (t : t) ?(batch = 1) ?(pos = 0) ?(mega = false) ~name ~level () =
    Hashtbl.find_opt t (key ~name ~level ~batch ~pos ~mega)

  let add (t : t) ?(batch = 1) ?(pos = 0) ?(mega = false) ~name ~level r =
    Hashtbl.replace t (key ~name ~level ~batch ~pos ~mega) r

  let size : t -> int = Hashtbl.length

  let get (t : t) ?(cfg = default_config) ?strict ~name
      (gen : unit -> Program.t) : (report, Diag.t list) result =
    match
      find t ~batch:cfg.batch ~pos:cfg.pos ~mega:cfg.mega ~name
        ~level:cfg.level ()
    with
    | Some r -> Ok r
    | None -> (
        match compile_result ~cfg ?strict (gen ()) with
        | Ok r ->
            add t ~batch:cfg.batch ~pos:cfg.pos ~mega:cfg.mega ~name
              ~level:cfg.level r;
            Ok r
        | Error _ as e -> e)
end
