(** Static kernel-IR verifier: pre-launch well-formedness checks.

    A merged-kernel compiler must prove an emitted kernel is launchable
    before it ever reaches the device — a cooperative kernel whose grid
    exceeds one resident wave deadlocks on [grid.sync], and a block whose
    shared-memory or register footprint exceeds the SM budget fails to
    launch at all.  [check_kernel] runs every check and returns all
    violations as typed diagnostics; [check_prog] aggregates over a program
    and is run by [Souffle.compile] on every emitted kernel before
    simulation, feeding the per-subprogram degradation ladder. *)

let err ~subject fmt = Fmt.kstr (fun m -> Diag.error ~subject Diag.Verify_ir m) fmt

let check_instr ~subject (i : Kernel_ir.instr) : Diag.t list =
  let neg what n =
    if n < 0 then [ err ~subject "negative %s count: %d" what n ] else []
  in
  match i with
  | Kernel_ir.Ldg { bytes; _ } -> neg "ldg byte" bytes
  | Ldl2 { bytes; _ } -> neg "ldl2 byte" bytes
  | Lds { bytes; _ } -> neg "lds byte" bytes
  | Stg { bytes; _ } -> neg "stg byte" bytes
  | Atomic_add { bytes; _ } -> neg "atomic byte" bytes
  | Mma { flops } -> neg "mma flop" flops
  | Fma { flops } -> neg "fma flop" flops
  | Sfu { ops } -> neg "sfu op" ops
  | Grid_sync | Block_sync -> []

let check_stage ~subject si (s : Kernel_ir.stage) : Diag.t list =
  let effs =
    let bad name v =
      if v <= 0. || v > 1. then
        [ err ~subject "stage %d (%s): %s %.3f outside (0, 1]" si
            s.Kernel_ir.label name v ]
      else []
    in
    bad "compute_eff" s.Kernel_ir.compute_eff
    @ bad "mem_eff" s.Kernel_ir.mem_eff
  in
  let sgrid =
    if s.Kernel_ir.sgrid < 0 then
      [ err ~subject "stage %d (%s): negative stage grid %d" si
          s.Kernel_ir.label s.Kernel_ir.sgrid ]
    else []
  in
  (* grid.sync placement: it separates dependent stages, so it may only
     appear as the leading instruction of a stage that has predecessors —
     anywhere else there is no cross-stage dependency for it to order *)
  let syncs =
    List.concat
      (List.mapi
         (fun ii instr ->
           match instr with
           | Kernel_ir.Grid_sync when si = 0 ->
               [ err ~subject
                   "stage 0 (%s): grid.sync with no preceding stage"
                   s.Kernel_ir.label ]
           | Kernel_ir.Grid_sync when ii > 0 ->
               [ err ~subject
                   "stage %d (%s): grid.sync not at the stage boundary" si
                   s.Kernel_ir.label ]
           | _ -> [])
         s.Kernel_ir.instrs)
  in
  effs @ sgrid @ syncs
  @ List.concat_map (check_instr ~subject) s.Kernel_ir.instrs

let check_kernel (dev : Device.t) (k : Kernel_ir.kernel) : Diag.t list =
  let subject = k.Kernel_ir.kname in
  let launch =
    (if k.Kernel_ir.grid_blocks < 1 then
       [ err ~subject "grid of %d blocks" k.Kernel_ir.grid_blocks ]
     else [])
    @ (if
         k.Kernel_ir.threads_per_block < 1
         || k.Kernel_ir.threads_per_block > dev.Device.max_threads_per_block
       then
         [ err ~subject "%d threads/block exceeds device limit %d"
             k.Kernel_ir.threads_per_block dev.Device.max_threads_per_block ]
       else [])
    @ (if k.Kernel_ir.smem_per_block > dev.Device.max_smem_per_block then
         [ err ~subject "%d B shared memory/block exceeds device limit %d B"
             k.Kernel_ir.smem_per_block dev.Device.max_smem_per_block ]
       else if k.Kernel_ir.smem_per_block < 0 then
         [ err ~subject "negative shared-memory estimate %d B"
             k.Kernel_ir.smem_per_block ]
       else [])
    @
    if
      k.Kernel_ir.regs_per_thread < 1
      || k.Kernel_ir.regs_per_thread > dev.Device.max_regs_per_thread
    then
      [ err ~subject "%d registers/thread outside [1, %d]"
          k.Kernel_ir.regs_per_thread dev.Device.max_regs_per_thread ]
    else []
  in
  (* only meaningful once the per-block footprint is itself legal *)
  let residency =
    if launch <> [] then []
    else if Occupancy.blocks_per_sm dev (Kernel_ir.usage k) < 1 then
      [ err ~subject "block footprint fits no SM (occupancy 0)" ]
    else []
  in
  let cooperative =
    let nsync = Kernel_ir.num_grid_syncs k in
    if nsync = 0 then []
    else if k.Kernel_ir.library_call then
      [ err ~subject "library-call kernel contains grid.sync" ]
    else if launch <> [] || residency <> [] then []
    else begin
      let cap = Occupancy.max_blocks_per_wave dev (Kernel_ir.usage k) in
      if k.Kernel_ir.grid_blocks > cap then
        [ Diag.error ~subject
            ~hint:"shrink the subprogram or fall back to separate kernels"
            Diag.Verify_ir
            (Fmt.str
               "cooperative grid of %d blocks exceeds one wave (max %d)"
               k.Kernel_ir.grid_blocks cap) ]
      else []
    end
  in
  let stages =
    if k.Kernel_ir.stages = [] then [ err ~subject "kernel has no stages" ]
    else List.concat (List.mapi (check_stage ~subject) k.Kernel_ir.stages)
  in
  launch @ residency @ cooperative @ stages

let check (dev : Device.t) (k : Kernel_ir.kernel) : (unit, Diag.t list) result
    =
  match check_kernel dev k with [] -> Ok () | ds -> Error ds

let check_prog (dev : Device.t) (p : Kernel_ir.prog) :
    (unit, Diag.t list) result =
  match List.concat_map (check_kernel dev) p.Kernel_ir.kernels with
  | [] -> Ok ()
  | ds -> Error ds
