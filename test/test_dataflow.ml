(* Tests for the cross-kernel dataflow verifier: provenance and byte
   accounting over emitted programs, plus the degradation-ladder reaction
   to a seeded emitter mistag. *)

let dev = Device.a100

(* Hand-built environment: inputs a (1 KiB) and b (2 KiB), intermediate t
   (4 KiB); everything else unknown. *)
let env : Dataflow.env =
  let sizes = [ ("a", 1024); ("b", 2048); ("t", 4096) ] in
  {
    Dataflow.is_input = (fun n -> n = "a" || n = "b");
    bytes_of = (fun n -> List.assoc_opt n sizes);
  }

let prog kernels = { Kernel_ir.pname = "t"; kernels }

let producer_stage =
  Kernel_ir.stage ~label:"make_t" ~produces:[ "t" ]
    [ Kernel_ir.ldg ~tensor:"a" 1024; Kernel_ir.stg ~tensor:"t" 4096 ]

let check p = Dataflow.check_prog dev env p

let msgs = function
  | Ok () -> []
  | Error ds -> List.map (fun (d : Diag.t) -> d.Diag.message) ds

let expect_reject what pat p =
  match check p with
  | Ok () -> Alcotest.failf "%s: accepted" what
  | Error ds ->
      Alcotest.(check bool)
        (what ^ ": diagnostic names the defect")
        true
        (List.exists
           (fun (d : Diag.t) ->
             d.Diag.pass = Diag.Dataflow
             && Astring.String.is_infix ~affix:pat d.Diag.message)
           ds)

let test_accepts_legal () =
  (* k0 produces t from input a; k1 re-reads t through L2 and reduces it
     with input b *)
  let p =
    prog
      [
        Kernel_ir.kernel ~name:"k0" ~grid_blocks:32 [ producer_stage ];
        Kernel_ir.kernel ~name:"k1" ~grid_blocks:32
          [
            Kernel_ir.stage ~label:"use_t" ~produces:[ "o" ]
              [ Kernel_ir.ldl2 ~tensor:"t" 4096; Kernel_ir.ldg ~tensor:"b" 2048 ];
          ];
      ]
  in
  Alcotest.(check (list string)) "clean" [] (msgs (check p))

let test_rejects_phantom_load () =
  (* "ghost" is neither an input nor produced by anything *)
  let p =
    prog
      [
        Kernel_ir.kernel ~name:"k0" ~grid_blocks:32
          [
            Kernel_ir.stage ~label:"s" [ Kernel_ir.ldg ~tensor:"ghost" 512 ];
          ];
      ]
  in
  expect_reject "phantom load" "unknown tensor" p;
  (* a known tensor no stage produced is also a phantom *)
  let p2 =
    prog
      [
        Kernel_ir.kernel ~name:"k0" ~grid_blocks:32
          [ Kernel_ir.stage ~label:"s" [ Kernel_ir.ldg ~tensor:"t" 4096 ] ];
      ]
  in
  expect_reject "load before production" "phantom load" p2

let test_rejects_ldg_of_produced () =
  (* t (4 KiB, trivially fits A100's 40 MB L2) is produced by k0 but
     re-read by k1 as a DRAM first touch *)
  let p =
    prog
      [
        Kernel_ir.kernel ~name:"k0" ~grid_blocks:32 [ producer_stage ];
        Kernel_ir.kernel ~name:"k1" ~grid_blocks:32
          [ Kernel_ir.stage ~label:"s" [ Kernel_ir.ldg ~tensor:"t" 4096 ] ];
      ]
  in
  expect_reject "ldg of produced tensor" "ldg (DRAM first touch)" p;
  (* the offending kernel, not the producer, is the diagnostic subject *)
  (match check p with
  | Error (d :: _) ->
      Alcotest.(check (option string)) "subject" (Some "k1") d.Diag.subject
  | _ -> Alcotest.fail "expected a diagnostic")

let test_rejects_byte_mismatch () =
  (* 1000 B of a 1024 B tensor: not a positive multiple of the footprint *)
  let p =
    prog
      [
        Kernel_ir.kernel ~name:"k0" ~grid_blocks:32
          [ Kernel_ir.stage ~label:"s" [ Kernel_ir.ldg ~tensor:"a" 1000 ] ];
      ]
  in
  expect_reject "byte mismatch" "not a positive multiple" p;
  (* replication (e.g. rsplit partials) is an exact multiple: legal *)
  let p2 =
    prog
      [
        Kernel_ir.kernel ~name:"k0" ~grid_blocks:32
          [
            Kernel_ir.stage ~label:"s" ~produces:[ "t" ]
              [
                Kernel_ir.ldg ~tensor:"a" (4 * 1024);
                Kernel_ir.atomic_add ~tensor:"t" (2 * 4096);
              ];
          ];
      ]
  in
  Alcotest.(check (list string)) "replication legal" [] (msgs (check p2))

let test_rejects_store_of_unproduced () =
  let p =
    prog
      [
        Kernel_ir.kernel ~name:"k0" ~grid_blocks:32
          [ Kernel_ir.stage ~label:"s" [ Kernel_ir.stg ~tensor:"t" 4096 ] ];
      ]
  in
  expect_reject "store of unproduced tensor" "no stage" p

let test_lds_same_stage_legal () =
  (* shared-memory reads may reference tensors the same stage produces
     (reuse-cache residents that never touch DRAM) *)
  let p =
    prog
      [
        Kernel_ir.kernel ~name:"k0" ~grid_blocks:32
          [
            Kernel_ir.stage ~label:"s" ~produces:[ "t" ]
              [ Kernel_ir.ldg ~tensor:"a" 1024; Kernel_ir.lds ~tensor:"t" 4096 ];
          ];
      ]
  in
  Alcotest.(check (list string)) "clean" [] (msgs (check p));
  let p2 =
    prog
      [
        Kernel_ir.kernel ~name:"k0" ~grid_blocks:32
          [ Kernel_ir.stage ~label:"s" [ Kernel_ir.lds ~tensor:"t" 4096 ] ];
      ]
  in
  expect_reject "lds of never-produced tensor" "never" p2

(* ---- whole-zoo acceptance: every compiled model is dataflow-clean ---- *)

let test_zoo_dataflow_clean () =
  List.iter
    (fun (e : Zoo.entry) ->
      let p = Lower.run (e.Zoo.tiny ()) in
      match Souffle.compile_result p with
      | Error ds ->
          Alcotest.failf "%s failed to compile: %s" e.Zoo.name
            (String.concat "; " (List.map Diag.to_string ds))
      | Ok r -> (
          let env = Souffle.dataflow_env r.Souffle.transformed in
          match Dataflow.check_prog dev env r.Souffle.prog with
          | Ok () -> ()
          | Error ds ->
              Alcotest.failf "%s not dataflow-clean: %s" e.Zoo.name
                (String.concat "; " (List.map Diag.to_string ds))))
    Zoo.all

(* ---- fault injection: a seeded mistag degrades exactly one subprogram ---- *)

let test_mistag_degrades_one_subprogram () =
  (* the full-size model: tiny configurations fuse every consumer into the
     producing stage, so no cross-kernel re-read exists to mistag *)
  let e = Option.get (Zoo.find "bert") in
  let p = Lower.run (e.Zoo.full ()) in
  let result, trips =
    Faultinject.with_fault Faultinject.Mistag_load (fun () ->
        Souffle.compile_result p)
  in
  Alcotest.(check int) "fault tripped once" 1 trips;
  match result with
  | Error ds ->
      Alcotest.failf "mistagged compile not recovered: %s"
        (String.concat "; " (List.map Diag.to_string ds))
  | Ok r ->
      let df =
        List.filter
          (fun (d : Souffle.degradation) -> d.Souffle.d_pass = Diag.Dataflow)
          r.Souffle.degraded
      in
      Alcotest.(check int) "exactly one dataflow degradation" 1
        (List.length df);
      Alcotest.(check int) "no other degradations" 1
        (List.length r.Souffle.degraded);
      (* the re-emitted program (fault consumed) is dataflow-clean *)
      let env = Souffle.dataflow_env r.Souffle.transformed in
      (match Dataflow.check_prog dev env r.Souffle.prog with
      | Ok () -> ()
      | Error ds ->
          Alcotest.failf "recovered program not clean: %s"
            (String.concat "; " (List.map Diag.to_string ds)));
      (* the degraded subject is one subprogram's head TE, not "program" *)
      match df with
      | [ d ] ->
          Alcotest.(check bool) "subject is a subprogram" true
            (d.Souffle.d_subject <> "program")
      | _ -> ()

let test_injected_dataflow_pass_fault () =
  (* Fail_pass Dataflow trips inside the checker itself: the whole program
     degrades one level and the compile still succeeds *)
  let e = Option.get (Zoo.find "mmoe") in
  let p = Lower.run (e.Zoo.tiny ()) in
  let result, trips =
    Faultinject.with_fault (Faultinject.Fail_pass Diag.Dataflow) (fun () ->
        Souffle.compile_result p)
  in
  Alcotest.(check int) "fault tripped once" 1 trips;
  match result with
  | Error ds ->
      Alcotest.failf "injected dataflow fault not recovered: %s"
        (String.concat "; " (List.map Diag.to_string ds))
  | Ok r ->
      Alcotest.(check bool) "a degradation was recorded" true
        (r.Souffle.degraded <> [])

let suite =
  [
    Alcotest.test_case "accepts legal program" `Quick test_accepts_legal;
    Alcotest.test_case "rejects phantom load" `Quick test_rejects_phantom_load;
    Alcotest.test_case "rejects ldg of produced tensor" `Quick
      test_rejects_ldg_of_produced;
    Alcotest.test_case "rejects byte mismatch" `Quick
      test_rejects_byte_mismatch;
    Alcotest.test_case "rejects store of unproduced" `Quick
      test_rejects_store_of_unproduced;
    Alcotest.test_case "lds same-stage residency" `Quick
      test_lds_same_stage_legal;
    Alcotest.test_case "zoo compiles dataflow-clean" `Slow
      test_zoo_dataflow_clean;
    Alcotest.test_case "mistag degrades one subprogram" `Quick
      test_mistag_degrades_one_subprogram;
    Alcotest.test_case "injected dataflow pass fault" `Quick
      test_injected_dataflow_pass_fault;
  ]
