(* Tests for mega-kernelization: lowering a compiled multi-kernel program
   into one persistent task-graph kernel, simulating it, and re-verifying
   its cross-task dataflow. *)

let dev = Device.a100

let compile_mega (e : Zoo.entry) : Souffle.report =
  let p = Lower.run (e.Zoo.tiny ()) in
  match Souffle.compile_result ~cfg:(Souffle.config ~mega:true ()) p with
  | Ok r -> r
  | Error ds ->
      Alcotest.failf "%s failed to compile: %s" e.Zoo.name
        (String.concat "; " (List.map Diag.to_string ds))

let mega_of (e : Zoo.entry) (r : Souffle.report) : Souffle.mega_result =
  match r.Souffle.mega with
  | Some m -> m
  | None -> Alcotest.failf "%s: mega lowering was rejected" e.Zoo.name

(* ---- lowering structure -------------------------------------------- *)

let test_lower_structure () =
  let e = Option.get (Zoo.find "bert") in
  let r = compile_mega e in
  let m = mega_of e r in
  let tg = m.Souffle.m_graph in
  let kernels = List.length r.Souffle.prog.Kernel_ir.kernels in
  Alcotest.(check int) "kernel count recorded" kernels
    tg.Kernel_ir.tg_kernels;
  Alcotest.(check bool) "at least one task per kernel" true
    (Kernel_ir.num_tasks tg >= kernels);
  Alcotest.(check int) "all launches but one elided" (kernels - 1)
    (Kernel_ir.launches_elided tg);
  (* edges are topological: every dependency points at an earlier task *)
  Array.iteri
    (fun i (t : Kernel_ir.task) ->
      List.iter
        (fun d ->
          if d < 0 || d >= i then
            Alcotest.failf "task %d depends on %d (not earlier)" i d)
        t.Kernel_ir.t_deps)
    tg.Kernel_ir.tg_tasks;
  (* grid barriers became edges: no task retains a Grid_sync *)
  Array.iter
    (fun (t : Kernel_ir.task) ->
      Alcotest.(check int)
        (t.Kernel_ir.t_kernel.Kernel_ir.kname ^ " has no grid syncs")
        0
        (Kernel_ir.num_grid_syncs t.Kernel_ir.t_kernel))
    tg.Kernel_ir.tg_tasks

(* ---- simulation: one launch, strictly faster, equivalent ------------ *)

let test_zoo_mega_sim () =
  List.iter
    (fun (e : Zoo.entry) ->
      let r = compile_mega e in
      let m = mega_of e r in
      let total = m.Souffle.m_sim.Sim.total in
      Alcotest.(check int)
        (e.Zoo.name ^ ": exactly one launch charge")
        1 total.Counters.kernel_launches;
      (* one launch charge instead of K, grid syncs traded for edges:
         with two or more kernels the mega program must be strictly
         faster than the multi-kernel one *)
      if List.length r.Souffle.prog.Kernel_ir.kernels >= 2 then
        Alcotest.(check bool)
          (e.Zoo.name ^ ": mega strictly faster than multi-kernel")
          true
          (total.Counters.time_us
          < r.Souffle.sim.Sim.total.Counters.time_us);
      (* the lowering touches execution order, not semantics: the
         compiled artifact still computes the original program *)
      match Souffle.verify r with
      | Ok () -> ()
      | Error msg ->
          Alcotest.failf "%s: not equivalent under mega: %s" e.Zoo.name msg)
    Zoo.all

(* ---- serving replay: Sim.run_mega == Sim.Multi on one stream -------- *)

let test_multi_replay_bit_exact () =
  List.iter
    (fun (e : Zoo.entry) ->
      let r = compile_mega e in
      let m = mega_of e r in
      let tg = m.Souffle.m_graph in
      let solo = m.Souffle.m_sim.Sim.total.Counters.time_us in
      let eng = Sim.Multi.create dev in
      let s = Sim.Multi.launch eng [ Sim.mega_profile dev tg ] in
      (match Sim.Multi.advance eng ~until:infinity with
      | `Completed _ | `Idle -> ()
      | `Reached | `Stalled _ ->
          Alcotest.failf "%s: mega stream did not complete" e.Zoo.name);
      (* bit-exact, not approximately equal: an uncontended stream must
         reproduce the solo simulation float for float *)
      Alcotest.(check bool)
        (e.Zoo.name ^ ": service time bit-exact")
        true
        (s.Sim.Multi.st_service_us = solo);
      Alcotest.(check bool)
        (e.Zoo.name ^ ": finish time bit-exact")
        true
        (s.Sim.Multi.st_finish_us = Some solo))
    Zoo.all

(* ---- dataflow verifier on hand-built task graphs -------------------- *)

(* inputs a and b, intermediate t — the same toy env test_dataflow uses *)
let env : Dataflow.env =
  let sizes = [ ("a", 1024); ("b", 2048); ("t", 4096) ] in
  {
    Dataflow.is_input = (fun n -> n = "a" || n = "b");
    bytes_of = (fun n -> List.assoc_opt n sizes);
  }

let producer =
  Kernel_ir.kernel ~name:"k0" ~grid_blocks:32
    [
      Kernel_ir.stage ~label:"make_t" ~produces:[ "t" ]
        [ Kernel_ir.ldg ~tensor:"a" 1024; Kernel_ir.stg ~tensor:"t" 4096 ];
    ]

let consumer =
  Kernel_ir.kernel ~name:"k1" ~grid_blocks:32
    [
      Kernel_ir.stage ~label:"use_t" ~produces:[ "o" ]
        [ Kernel_ir.ldl2 ~tensor:"t" 4096; Kernel_ir.ldg ~tensor:"b" 2048 ];
    ]

let graph tasks =
  {
    Kernel_ir.tg_name = "toy+mega";
    tg_kernels = List.length tasks;
    tg_tasks =
      Array.of_list
        (List.map
           (fun (k, deps) -> { Kernel_ir.t_kernel = k; t_deps = deps })
           tasks);
  }

let test_taskgraph_verifier () =
  (* with the producer edge in place the graph is clean *)
  (match
     Dataflow.check_taskgraph dev env
       (graph [ (producer, []); (consumer, [ 0 ]) ])
   with
  | Ok () -> ()
  | Error ds ->
      Alcotest.failf "legal graph rejected: %s"
        (String.concat "; " (List.map Diag.to_string ds)));
  (* dropping the producer/consumer edge must surface as a typed
     provenance error: the consumer's ldl2 re-read has no ancestor that
     produced t *)
  (match
     Dataflow.check_taskgraph dev env
       (graph [ (producer, []); (consumer, []) ])
   with
  | Ok () -> Alcotest.fail "broken edge accepted"
  | Error ds ->
      Alcotest.(check bool) "diagnostic names the missing production" true
        (List.exists
           (fun (d : Diag.t) ->
             d.Diag.pass = Diag.Dataflow
             && Astring.String.is_infix ~affix:"before any kernel/stage"
                  d.Diag.message)
           ds));
  (* a dependency that is not an earlier task is a structural error *)
  match
    Dataflow.check_taskgraph dev env
      (graph [ (producer, [ 1 ]); (consumer, [ 0 ]) ])
  with
  | Ok () -> Alcotest.fail "forward dependency accepted"
  | Error ds ->
      Alcotest.(check bool) "diagnostic names the bad edge" true
        (List.exists
           (fun (d : Diag.t) ->
             Astring.String.is_infix ~affix:"not an earlier task"
               d.Diag.message)
           ds)

(* ---- megakernel verify: worker feasibility + provenance ------------- *)

let test_verify_lowered_zoo () =
  List.iter
    (fun (e : Zoo.entry) ->
      let r = compile_mega e in
      let m = mega_of e r in
      match
        Megakernel.verify dev
          (Souffle.dataflow_env r.Souffle.transformed)
          m.Souffle.m_graph
      with
      | Ok () -> ()
      | Error ds ->
          Alcotest.failf "%s: lowered graph failed verification: %s"
            e.Zoo.name
            (String.concat "; " (List.map Diag.to_string ds)))
    Zoo.all

let suite =
  [
    Alcotest.test_case "lowering structure" `Quick test_lower_structure;
    Alcotest.test_case "zoo: one launch, faster, equivalent" `Slow
      test_zoo_mega_sim;
    Alcotest.test_case "multi-stream replay bit-exact" `Quick
      test_multi_replay_bit_exact;
    Alcotest.test_case "taskgraph dataflow verifier" `Quick
      test_taskgraph_verifier;
    Alcotest.test_case "zoo: lowered graphs verify" `Slow
      test_verify_lowered_zoo;
  ]
