test/test_analysis.ml: Alcotest Amap Analysis Array Astring_contains Builder Dep Dtype Expr Fun Index Intensity List Matrix Program QCheck QCheck_alcotest Reuse Te
