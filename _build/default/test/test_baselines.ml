(* Tests for the baseline systems: plan validity (every TE covered, in
   order), the failure modes of Table 3, and the structural orderings the
   paper reports (kernel counts, memory traffic, Souffle speedups). *)

(* every TE exactly once; Rammer reorders across wavefronts, so compare as
   multisets rather than sequences *)
let groups_cover_program (groups : Emit.group list) (p : Program.t) =
  let flat = List.concat_map (fun g -> g.Emit.g_tes) groups in
  List.sort compare flat
  = List.sort compare (List.map (fun (te : Te.t) -> te.Te.name) p.Program.tes)

let tiny name =
  let e = Option.get (Zoo.find name) in
  Lower.run (e.Zoo.tiny ())

let test_all_baselines_cover_tiny_models () =
  List.iter
    (fun (e : Zoo.entry) ->
      let p = Lower.run (e.Zoo.tiny ()) in
      List.iter
        (fun s ->
          match Baseline.run s p with
          | Ok r ->
              Alcotest.(check bool)
                (Fmt.str "%s covers %s" (Baseline.name s) e.Zoo.name)
                true
                (groups_cover_program r.Baseline.groups p)
          | Error _ -> ())
        Baseline.all)
    Zoo.all

let test_rammer_fails_on_unsupported () =
  List.iter
    (fun model ->
      let p = Lower.run ((Option.get (Zoo.find model)).Zoo.full ()) in
      Alcotest.(check bool) ("Rammer fails on " ^ model) true
        (Result.is_error (Baseline.run Baseline.Rammer p)))
    [ "EfficientNet"; "SwinTrans."; "MMoE" ];
  Alcotest.(check bool) "Rammer compiles BERT" true
    (Result.is_ok (Baseline.run Baseline.Rammer (tiny "BERT")))

let test_apollo_fails_on_lstm () =
  let p = Lower.run (Lstm.create ()) in
  Alcotest.(check bool) "Apollo fails on full LSTM" true
    (Result.is_error (Baseline.run Baseline.Apollo p));
  Alcotest.(check bool) "Apollo compiles tiny LSTM" true
    (Result.is_ok (Baseline.run Baseline.Apollo (tiny "LSTM")))

let test_xla_library_calls () =
  let p = tiny "BERT" in
  match Baseline.run Baseline.Xla p with
  | Error m -> Alcotest.fail m
  | Ok r ->
      let libs =
        List.filter (fun g -> g.Emit.library_call) r.Baseline.groups
      in
      Alcotest.(check bool) "XLA emits library calls" true
        (List.length libs > 0);
      List.iter
        (fun (g : Emit.group) ->
          Alcotest.(check int) "library groups are single ops" 1
            (List.length g.Emit.g_tes))
        libs

let test_xla_never_fuses_two_reductions () =
  let p = tiny "BERT" in
  match Baseline.run Baseline.Xla p with
  | Error m -> Alcotest.fail m
  | Ok r ->
      List.iter
        (fun (g : Emit.group) ->
          if not g.Emit.library_call then begin
            let reductions =
              List.filter
                (fun n -> Te.has_reduction (Program.find_te_exn p n))
                g.Emit.g_tes
            in
            Alcotest.(check bool) "at most one reduction per cluster" true
              (List.length reductions <= 1)
          end)
        r.Baseline.groups

let test_apollo_reductions_alone () =
  let p = tiny "BERT" in
  match Baseline.run Baseline.Apollo p with
  | Error m -> Alcotest.fail m
  | Ok r ->
      List.iter
        (fun (g : Emit.group) ->
          let has_reduction =
            List.exists
              (fun n -> Te.has_reduction (Program.find_te_exn p n))
              g.Emit.g_tes
          in
          if has_reduction then
            Alcotest.(check int) "reduction kernels are singletons" 1
              (List.length g.Emit.g_tes))
        r.Baseline.groups

let test_rammer_wavefronts_are_independent () =
  let p = tiny "LSTM" in
  match Baseline.run Baseline.Rammer p with
  | Error m -> Alcotest.fail m
  | Ok r ->
      (* within a wavefront group no TE reads another member's output *)
      List.iter
        (fun (g : Emit.group) ->
          let members = Program.SSet.of_list g.Emit.g_tes in
          List.iter
            (fun n ->
              let te = Program.find_te_exn p n in
              List.iter
                (fun i ->
                  Alcotest.(check bool) "independent" false
                    (Program.SSet.mem i members))
                (Te.inputs te))
            g.Emit.g_tes)
        r.Baseline.groups

let test_no_baseline_uses_grid_sync () =
  let p = tiny "BERT" in
  List.iter
    (fun s ->
      match Baseline.run s p with
      | Error _ -> ()
      | Ok r ->
          List.iter
            (fun k ->
              Alcotest.(check int)
                (Baseline.name s ^ " has no grid sync") 0
                (Kernel_ir.num_grid_syncs k))
            r.Baseline.prog.Kernel_ir.kernels)
    Baseline.all

let test_souffle_fewer_kernels_than_all_baselines () =
  (* Table 5's headline structural result, on the full BERT *)
  let p = Lower.run (Bert.create ()) in
  let ours = Souffle.num_kernels (Souffle.compile p) in
  List.iter
    (fun s ->
      match Baseline.run s p with
      | Error _ -> ()
      | Ok r ->
          Alcotest.(check bool)
            (Fmt.str "fewer kernels than %s (%d vs %d)" (Baseline.name s)
               ours (Baseline.num_kernels r))
            true
            (ours < Baseline.num_kernels r))
    Baseline.all

let test_souffle_beats_baselines_on_bert () =
  (* Table 3's headline: Souffle is fastest on every model; checked here
     on full BERT (the bench covers the rest) *)
  let p = Lower.run (Bert.create ()) in
  let ours = Souffle.time_ms (Souffle.compile p) in
  List.iter
    (fun s ->
      match Baseline.run s p with
      | Error _ -> ()
      | Ok r ->
          Alcotest.(check bool)
            (Fmt.str "faster than %s (%.3f vs %.3f)" (Baseline.name s) ours
               (Baseline.time_ms r))
            true
            (ours < Baseline.time_ms r))
    Baseline.all

let test_souffle_less_traffic_than_trt_apollo () =
  (* Table 5: Souffle moves the least memory on BERT *)
  let p = Lower.run (Bert.create ()) in
  let ours =
    Counters.global_load_bytes (Souffle.compile p).Souffle.sim.Sim.total
  in
  List.iter
    (fun s ->
      match Baseline.run s p with
      | Error _ -> ()
      | Ok r ->
          Alcotest.(check bool)
            ("less traffic than " ^ Baseline.name s)
            true
            (ours < Counters.global_load_bytes r.Baseline.sim.Sim.total))
    [ Baseline.Tensorrt; Baseline.Apollo ]

let test_lstm_rammer_vs_souffle_traffic () =
  (* Table 6: orders of magnitude less DRAM traffic for Souffle *)
  let p = Lower.run (Lstm.create ()) in
  match Baseline.run Baseline.Rammer p with
  | Error m -> Alcotest.fail m
  | Ok rammer ->
      let ours =
        Counters.global_load_bytes (Souffle.compile p).Souffle.sim.Sim.total
      in
      let theirs = Counters.global_load_bytes rammer.Baseline.sim.Sim.total in
      Alcotest.(check bool)
        (Fmt.str "10x+ traffic gap (%d vs %d)" theirs ours)
        true
        (theirs > ours * 10)

let suite =
  [
    Alcotest.test_case "plans cover programs" `Quick
      test_all_baselines_cover_tiny_models;
    Alcotest.test_case "rammer failure modes" `Quick test_rammer_fails_on_unsupported;
    Alcotest.test_case "apollo fails on lstm" `Slow test_apollo_fails_on_lstm;
    Alcotest.test_case "xla library calls" `Quick test_xla_library_calls;
    Alcotest.test_case "xla single reduction per cluster" `Quick
      test_xla_never_fuses_two_reductions;
    Alcotest.test_case "apollo reductions alone" `Quick test_apollo_reductions_alone;
    Alcotest.test_case "rammer wavefront independence" `Quick
      test_rammer_wavefronts_are_independent;
    Alcotest.test_case "baselines never grid-sync" `Quick
      test_no_baseline_uses_grid_sync;
    Alcotest.test_case "souffle fewest kernels (bert)" `Slow
      test_souffle_fewer_kernels_than_all_baselines;
    Alcotest.test_case "souffle fastest (bert)" `Slow
      test_souffle_beats_baselines_on_bert;
    Alcotest.test_case "souffle least traffic (bert)" `Slow
      test_souffle_less_traffic_than_trt_apollo;
    Alcotest.test_case "lstm traffic gap" `Slow test_lstm_rammer_vs_souffle_traffic;
  ]
