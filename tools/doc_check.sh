#!/bin/sh
# Doc honesty check for `dune build @doc-check`:
#  - every source-file path a documentation file cites (backtick-quoted
#    `lib/...ml`, `bin/...`, etc.) must still exist, and
#  - every long CLI flag (`--foo-bar`) a documentation file mentions must
#    appear in the help corpus (the concatenated `--help=plain` output of
#    every souffle subcommand, plus the flags the bench driver parses by
#    hand), so the docs cannot describe flags the binaries dropped.
# Usage: doc_check.sh ROOT HELP_CORPUS DOC...
set -eu
root=$1
corpus=$2
shift 2
status=0
if [ ! -f "$corpus" ]; then
  echo "doc-check: missing help corpus $corpus" >&2
  exit 1
fi
known_flags=$(grep -oE -- '--[a-z][a-z0-9-]+' "$corpus" | sort -u)
for doc in "$@"; do
  if [ ! -f "$doc" ]; then
    echo "doc-check: missing documentation file $doc" >&2
    status=1
    continue
  fi
  # backtick-quoted repo paths with an extension, e.g. `lib/te/expr.ml`
  cited=$(grep -oE '`(lib|bin|bench|test|tools|examples|docs)/[A-Za-z0-9_./-]+\.[A-Za-z]+`' "$doc" \
    | tr -d '`' | sort -u)
  for path in $cited; do
    if [ ! -f "$root/$path" ]; then
      echo "doc-check: $doc cites $path, which does not exist" >&2
      status=1
    fi
  done
  if [ -z "$cited" ]; then
    echo "doc-check: $doc cites no source paths (suspicious)" >&2
    status=1
  fi
  # long CLI flags, e.g. --batch-max (short flags like -m are too ambiguous)
  flags=$(grep -oE -- '--[a-z][a-z0-9-]+' "$doc" | sort -u)
  for flag in $flags; do
    if ! printf '%s\n' "$known_flags" | grep -qxF -- "$flag"; then
      echo "doc-check: $doc mentions $flag, absent from CLI help output" >&2
      status=1
    fi
  done
done
exit $status
