(** Lowering model graphs to TE programs (§4, "TE lowering").

    Each operator expands to one or more TEs; composite operators (softmax,
    layernorm, pooling) expand to several, exactly as in the paper's example
    where softmax becomes a reduction TE plus element-wise TEs.  The final TE
    of a node is named after the node, so downstream tensors are addressed
    uniformly. *)

open Expr

let ov = Index.ov
let rv = Index.rv
let ic = Index.const

(* Guard an access of [x] (shape [xs]) with in-bounds predicates for the
   spatial dims, yielding [fallback] outside.  [idxs] must align with xs. *)
let guarded_read ~xs ~fallback x idxs ~spatial =
  let cond =
    List.fold_left
      (fun acc d ->
        let i = List.nth idxs d in
        let c =
          And (Cmp (Ge, i, ic 0), Cmp (Lt, i, ic xs.(d)))
        in
        match acc with None -> Some c | Some a -> Some (And (a, c)))
      None spatial
  in
  match cond with
  | None -> Read (x, idxs)
  | Some c -> Select (c, Read (x, idxs), fallback)

let lower_node (info : string -> Program.tensor_info) (node : Dgraph.node) :
    Te.t list =
  let name = node.Dgraph.name in
  let in_name i = List.nth node.Dgraph.inputs i in
  let in_shape i = (info (in_name i)).Program.shape in
  let out_shape = Op.infer_shape node.Dgraph.op (List.map (fun i -> (info i).Program.shape) node.Dgraph.inputs) in
  let tag = Op.to_string node.Dgraph.op in
  match node.Dgraph.op with
  | Op.Matmul ->
      let a = in_shape 0 in
      [ Builder.matmul ~tag:"matmul" ~name ~m:a.(0) ~n:out_shape.(1) ~k:a.(1)
          (in_name 0) (in_name 1) ]
  | Op.Matmul_nt ->
      let a = in_shape 0 in
      [ Builder.matmul_nt ~tag:"matmul" ~name ~m:a.(0) ~n:out_shape.(1)
          ~k:a.(1) (in_name 0) (in_name 1) ]
  | Op.Batch_matmul ->
      let a = in_shape 0 in
      [ Builder.batch_matmul ~tag:"batch_matmul" ~name ~b:a.(0) ~m:a.(1)
          ~n:out_shape.(2) ~k:a.(2) (in_name 0) (in_name 1) ]
  | Op.Batch_matmul_nt ->
      let a = in_shape 0 in
      [ Te.reduce ~tag:"batch_matmul" ~name ~shape:out_shape ~op:Te.Sum
          ~axes:[| a.(2) |]
          (Binop
             ( Mul,
               Read (in_name 0, [ ov 0; ov 1; rv 0 ]),
               Read (in_name 1, [ ov 0; ov 2; rv 0 ]) )) ]
  | Op.Gemv ->
      let w = in_shape 0 in
      [ Builder.gemv ~tag:"gemv" ~name ~m:w.(0) ~k:w.(1) (in_name 0)
          (in_name 1) ]
  | Op.Conv2d { kernel; stride; padding; groups } ->
      let xs = in_shape 0 and ws = in_shape 1 in
      let icg = ws.(1) and ocg = ws.(0) / groups in
      let ch_idx =
        (* input channel = group(o) * icg + rc where group(o) = o / ocg *)
        if groups = 1 then rv 0
        else Index.Add (Index.Mul (Index.Div (ov 1, ocg), icg), rv 0)
      in
      let ih = Index.Add (Index.Add (Index.Mul (ov 2, stride), rv 1), ic (-padding)) in
      let iw = Index.Add (Index.Add (Index.Mul (ov 3, stride), rv 2), ic (-padding)) in
      let x_read =
        guarded_read ~xs ~fallback:(Const 0.) (in_name 0)
          [ ov 0; ch_idx; ih; iw ]
          ~spatial:(if padding > 0 then [ 2; 3 ] else [])
      in
      [ Te.reduce ~tag:"conv2d" ~name ~shape:out_shape ~op:Te.Sum
          ~axes:[| icg; kernel; kernel |]
          (Binop (Mul, x_read, Read (in_name 1, [ ov 1; rv 0; rv 1; rv 2 ]))) ]
  | Op.Depthwise_conv2d { kernel; stride; padding } ->
      let xs = in_shape 0 in
      let ih = Index.Add (Index.Add (Index.Mul (ov 2, stride), rv 0), ic (-padding)) in
      let iw = Index.Add (Index.Add (Index.Mul (ov 3, stride), rv 1), ic (-padding)) in
      let x_read =
        guarded_read ~xs ~fallback:(Const 0.) (in_name 0)
          [ ov 0; ov 1; ih; iw ]
          ~spatial:(if padding > 0 then [ 2; 3 ] else [])
      in
      [ Te.reduce ~tag:"dwconv2d" ~name ~shape:out_shape ~op:Te.Sum
          ~axes:[| kernel; kernel |]
          (Binop (Mul, x_read, Read (in_name 1, [ ov 1; ic 0; rv 0; rv 1 ]))) ]
  | Op.Pool2d { kind; kernel; stride; padding } ->
      let xs = in_shape 0 in
      let ih = Index.Add (Index.Add (Index.Mul (ov 2, stride), rv 0), ic (-padding)) in
      let iw = Index.Add (Index.Add (Index.Mul (ov 3, stride), rv 1), ic (-padding)) in
      let spatial = if padding > 0 then [ 2; 3 ] else [] in
      (match kind with
      | Op.Max_pool ->
          let read =
            guarded_read ~xs ~fallback:(Const Float.neg_infinity) (in_name 0)
              [ ov 0; ov 1; ih; iw ] ~spatial
          in
          [ Te.reduce ~tag:"max_pool" ~name ~shape:out_shape ~op:Te.Max
              ~axes:[| kernel; kernel |] read ]
      | Op.Avg_pool ->
          let read =
            guarded_read ~xs ~fallback:(Const 0.) (in_name 0)
              [ ov 0; ov 1; ih; iw ] ~spatial
          in
          let inv = 1. /. float_of_int (kernel * kernel) in
          [ Te.reduce ~tag:"avg_pool" ~name ~shape:out_shape ~op:Te.Sum
              ~axes:[| kernel; kernel |]
              (Binop (Mul, read, Const inv)) ])
  | Op.Global_avg_pool ->
      let xs = in_shape 0 in
      let inv = 1. /. float_of_int (xs.(2) * xs.(3)) in
      [ Te.reduce ~tag:"global_avg_pool" ~name ~shape:out_shape ~op:Te.Sum
          ~axes:[| xs.(2); xs.(3) |]
          (Binop (Mul, Read (in_name 0, [ ov 0; ov 1; rv 0; rv 1 ]), Const inv)) ]
  | Op.Unary u -> [ Builder.unary ~tag ~name ~shape:out_shape u (in_name 0) ]
  | Op.Affine { scale; shift } ->
      let rank = Array.length out_shape in
      [ Te.compute ~tag ~name ~shape:out_shape
          (Binop
             ( Add,
               Binop (Mul, Builder.at ~rank (in_name 0), Const scale),
               Const shift )) ]
  | Op.Rowwise bop ->
      let rank = Array.length out_shape in
      [ Te.compute ~tag ~name ~shape:out_shape
          (Binop
             ( bop,
               Builder.at ~rank (in_name 0),
               Read (in_name 1, List.init (rank - 1) ov) )) ]
  | Op.Binary b ->
      let sa = in_shape 0 and sb = in_shape 1 in
      if Shape.equal sa sb then
        [ Builder.binary ~tag ~name ~shape:out_shape b (in_name 0) (in_name 1) ]
      else begin
        (* trailing-dims broadcast of the second operand *)
        let ra = Array.length sa and rb = Array.length sb in
        let idx_b = List.init rb (fun d -> ov (ra - rb + d)) in
        [ Te.compute ~tag ~name ~shape:out_shape
            (Binop (b, Builder.at ~rank:ra (in_name 0), Read (in_name 1, idx_b))) ]
      end
  | Op.Bias_add ->
      [ Builder.bias_add ~tag ~name ~shape:out_shape (in_name 0) (in_name 1) ]
  | Op.Scale_channels ->
      [ Te.compute ~tag ~name ~shape:out_shape
          (Binop
             ( Mul,
               Builder.at ~rank:4 (in_name 0),
               Read (in_name 1, [ ov 0; ov 1 ]) )) ]
  | Op.Bias_channels ->
      [ Te.compute ~tag ~name ~shape:out_shape
          (Binop
             (Add, Builder.at ~rank:4 (in_name 0), Read (in_name 1, [ ov 1 ]))) ]
  | Op.Scale c -> [ Builder.scale ~tag ~name ~shape:out_shape (in_name 0) c ]
  | Op.Causal_mask ->
      (* scores (.., q, k): key positions past the query become -inf so a
         following softmax gives them exactly zero weight *)
      let xs = in_shape 0 in
      let rank = Array.length xs in
      [
        Te.compute ~tag:"causal_mask" ~name ~shape:out_shape
          (Select
             ( Cmp (Le, ov (rank - 1), ov (rank - 2)),
               Builder.at ~rank (in_name 0),
               Const Float.neg_infinity ));
      ]
  | Op.Softmax ->
      let xs = in_shape 0 in
      let rank = Array.length xs in
      let k = xs.(rank - 1) in
      let red_shape = Array.sub xs 0 (rank - 1) in
      let lead = List.init (rank - 1) ov in
      let x = in_name 0 in
      let mx = name ^ ".max" and ex = name ^ ".exp" and sm = name ^ ".sum" in
      [
        Te.reduce ~tag:"softmax.max" ~name:mx ~shape:red_shape ~op:Te.Max
          ~axes:[| k |]
          (Read (x, lead @ [ rv 0 ]));
        Te.compute ~tag:"softmax.exp" ~name:ex ~shape:xs
          (Unop (Exp, Binop (Sub, Builder.at ~rank x, Read (mx, lead))));
        Te.reduce ~tag:"softmax.sum" ~name:sm ~shape:red_shape ~op:Te.Sum
          ~axes:[| k |]
          (Read (ex, lead @ [ rv 0 ]));
        Te.compute ~tag:"softmax.div" ~name ~shape:xs
          (Binop (Div, Builder.at ~rank ex, Read (sm, lead)));
      ]
  | Op.Layernorm { eps } ->
      let xs = in_shape 0 in
      let rank = Array.length xs in
      let k = xs.(rank - 1) in
      let red_shape = Array.sub xs 0 (rank - 1) in
      let lead = List.init (rank - 1) ov in
      let x = in_name 0 and gamma = in_name 1 and beta = in_name 2 in
      let mean = name ^ ".mean" and var = name ^ ".var" in
      let invk = 1. /. float_of_int k in
      let centered e =
        Binop (Sub, e, Read (mean, lead))
      in
      [
        Te.reduce ~tag:"layernorm.mean" ~name:mean ~shape:red_shape ~op:Te.Sum
          ~axes:[| k |]
          (Binop (Mul, Read (x, lead @ [ rv 0 ]), Const invk));
        Te.reduce ~tag:"layernorm.var" ~name:var ~shape:red_shape ~op:Te.Sum
          ~axes:[| k |]
          (Binop
             ( Mul,
               (let d = centered (Read (x, lead @ [ rv 0 ])) in
                Binop (Mul, d, d)),
               Const invk ));
        Te.compute ~tag:"layernorm.norm" ~name ~shape:xs
          (Binop
             ( Add,
               Binop
                 ( Mul,
                   Binop
                     ( Mul,
                       centered (Builder.at ~rank x),
                       Unop (Rsqrt, Binop (Add, Read (var, lead), Const eps)) ),
                   Read (gamma, [ ov (rank - 1) ]) ),
               Read (beta, [ ov (rank - 1) ]) ));
      ]
  | Op.Reduce { op; axis } ->
      let xs = in_shape 0 in
      let rank = Array.length xs in
      let idxs =
        List.init rank (fun d ->
            if d = axis then rv 0 else if d < axis then ov d else ov (d - 1))
      in
      [ Te.reduce ~tag ~name ~shape:out_shape ~op ~axes:[| xs.(axis) |]
          (Read (in_name 0, idxs)) ]
  | Op.Reshape s ->
      [ Builder.reshape ~tag ~name ~in_shape:(in_shape 0) ~out_shape:s
          (in_name 0) ]
  | Op.Transpose p ->
      [ Builder.permute ~tag ~name ~in_shape:(in_shape 0) ~perm:p (in_name 0) ]
  | Op.Slice { starts; sizes } ->
      [ Builder.slice ~tag ~name ~starts ~sizes (in_name 0) ]
  | Op.Strided_slice { axis; start; stride; size } ->
      [ Builder.strided_slice ~tag ~name ~in_shape:(in_shape 0) ~axis ~start
          ~stride ~size (in_name 0) ]
  | Op.Concat { axis } ->
      let rec go i acc_name acc_shape rest tes =
        match rest with
        | [] ->
            (* rename the final TE to the node name *)
            (match tes with
            | [] ->
                (* single input concat: identity copy *)
                [ Te.compute ~tag ~name ~shape:acc_shape
                    (Builder.at ~rank:(Array.length acc_shape) acc_name) ]
            | last :: earlier -> List.rev ({ last with Te.name } :: earlier))
        | next :: rest ->
            let next_shape = (info next).Program.shape in
            let step_name = Fmt.str "%s.cc%d" name i in
            let te =
              Builder.concat2 ~tag ~name:step_name ~axis ~shape_a:acc_shape
                ~shape_b:next_shape acc_name next
            in
            go (i + 1) step_name
              (Shape.concat_axis ~axis acc_shape next_shape)
              rest (te :: tes)
      in
      (match node.Dgraph.inputs with
      | [] -> invalid_arg "concat: no inputs"
      | first :: rest -> go 0 first (info first).Program.shape rest [])

(** Lower a whole graph to a TE program. *)
let run (g : Dgraph.t) : Program.t =
  let all = Dgraph.infer_all g in
  let info name =
    match Dgraph.SMap.find_opt name all with
    | Some i -> i
    | None -> invalid_arg ("Lower: unknown tensor " ^ name)
  in
  let tes = List.concat_map (lower_node info) g.Dgraph.nodes in
  Program.make ~inputs:g.Dgraph.inputs ~tes ~outputs:g.Dgraph.outputs
