(** CUDA-flavoured source rendering of a compiled program, in the style of
    Fig. 2 step 5 ([Fn_TE_Subprogram_0] with [ldg2s]/[wmma]/[sts2g] and
    [grid.sync()]).  This is documentation output: the simulator executes
    the kernel IR directly, but examples and the CLI print this text so a
    reader can see what Souffle generated. *)

let render_tensor ppf = function
  | None -> Fmt.string ppf ""
  | Some t -> Fmt.pf ppf " [%s]" t

let render_instr ppf = function
  | Kernel_ir.Ldg { bytes; tensor } ->
      Fmt.pf ppf "ldg2s(smem, gmem, %d);           // global -> shared%a"
        bytes render_tensor tensor
  | Kernel_ir.Ldl2 { bytes; tensor } ->
      Fmt.pf ppf "ldg2s(smem, gmem_l2, %d);        // L2-resident load%a"
        bytes render_tensor tensor
  | Kernel_ir.Lds { bytes; tensor } ->
      Fmt.pf ppf "lds(reg, smem, %d);              // shared -> register%a"
        bytes render_tensor tensor
  | Kernel_ir.Stg { bytes; tensor } ->
      Fmt.pf ppf "sts2g(gmem, smem, %d);           // shared -> global%a"
        bytes render_tensor tensor
  | Kernel_ir.Mma { flops } ->
      Fmt.pf ppf "wmma_16x16(acc, a_frag, b_frag); // %d flops (HMMA.16816.F16)" flops
  | Kernel_ir.Fma { flops } ->
      Fmt.pf ppf "ffma(acc, a, b);                 // %d flops (FFMA)" flops
  | Kernel_ir.Sfu { ops } ->
      Fmt.pf ppf "sfu(dst, src);                   // %d ops (MUFU)" ops
  | Kernel_ir.Atomic_add { bytes; tensor } ->
      Fmt.pf ppf "atomicAdd(partial, acc);         // %d bytes of partials%a"
        bytes render_tensor tensor
  | Kernel_ir.Grid_sync -> Fmt.pf ppf "grid.sync();"
  | Kernel_ir.Block_sync -> Fmt.pf ppf "__syncthreads();"

let render_stage ppf (i : int) (s : Kernel_ir.stage) =
  Fmt.pf ppf "  // stage %d: %s%s@," i s.Kernel_ir.label
    (if s.Kernel_ir.pipelined then
       "  (LDGSTS.E.BYPASS.128 overlapped with HMMA)"
     else "");
  Fmt.pf ppf "  if (blockIdx.x < launch_bound_%d) {@," i;
  List.iter (fun ins -> Fmt.pf ppf "    %a@," render_instr ins) s.Kernel_ir.instrs;
  Fmt.pf ppf "  }@,"

let render_kernel ppf (k : Kernel_ir.kernel) =
  Fmt.pf ppf "@[<v>__global__ void %s(...) {  // <<<%d, %d>>> smem=%dB regs=%d@,"
    k.Kernel_ir.kname k.Kernel_ir.grid_blocks k.Kernel_ir.threads_per_block
    k.Kernel_ir.smem_per_block k.Kernel_ir.regs_per_thread;
  if k.Kernel_ir.library_call then
    Fmt.pf ppf "  // opaque vendor library call (cuBLAS-style)@,";
  List.iteri (fun i s -> render_stage ppf i s) k.Kernel_ir.stages;
  Fmt.pf ppf "}@,@]"

let render_prog ppf (p : Kernel_ir.prog) =
  Fmt.pf ppf "@[<v>// program %s: %d kernel(s)@,@," p.Kernel_ir.pname
    (List.length p.Kernel_ir.kernels);
  List.iter (fun k -> Fmt.pf ppf "%a@," render_kernel k) p.Kernel_ir.kernels

let to_string (p : Kernel_ir.prog) = Fmt.str "%a" render_prog p
