(** Compute- vs memory-intensity characterization (§5.3).

    The compute-memory ratio divides a TE's arithmetic-instruction count by
    its memory footprint in elements (each distinct input element read plus
    each output element written).  The classification threshold is 3, the
    paper's empirical constant. *)

type kind = Compute_intensive | Memory_intensive

let threshold = 3.0

let kind_to_string = function
  | Compute_intensive -> "compute-intensive"
  | Memory_intensive -> "memory-intensive"

(** Memory footprint in elements: output plus every distinct tensor read.
    (Unique-byte accounting — intra-kernel re-reads hit caches and are a
    schedule property, not a TE property.) *)
let footprint_elems (p : Program.t) (te : Te.t) : int =
  let inputs = Te.inputs te in
  let input_elems =
    List.fold_left
      (fun acc name ->
        acc + Shape.numel (Program.tensor_info_exn p name).Program.shape)
      0 inputs
  in
  input_elems + Te.out_numel te

let footprint_bytes (p : Program.t) (te : Te.t) : int =
  let bytes name =
    let info = Program.tensor_info_exn p name in
    Shape.numel info.Program.shape * Dtype.bytes info.Program.dtype
  in
  List.fold_left (fun acc n -> acc + bytes n) 0 (Te.inputs te)
  + (Te.out_numel te * Dtype.bytes te.Te.dtype)

(* Arithmetic *instructions* per evaluation: a transcendental issues as one
   SFU instruction even though it costs several cycles, so undo the flop
   weighting the performance model applies. *)
let arith_instrs (te : Te.t) : int =
  let per_point = Expr.flops (Te.body_expr te) in
  let sfu = Expr.sfu_count (Te.body_expr te) in
  let per_point = per_point - (3 * sfu) in
  match te.Te.body with
  | Te.Compute _ -> per_point * Te.out_numel te
  | Te.Reduce _ -> (per_point + 1) * Te.out_numel te * Te.reduce_domain te

let ratio (p : Program.t) (te : Te.t) : float =
  let fp = footprint_elems p te in
  if fp = 0 then 0.
  else float_of_int (arith_instrs te) /. float_of_int fp

let classify (p : Program.t) (te : Te.t) : kind =
  (* A TE without a reduction axis does O(1) work per element and is always
     bandwidth-bound; only reduction TEs can amortize enough arithmetic per
     element to be compute-intensive (the paper's candidates in §5.4 are all
     reductions: GEMM, Conv). *)
  if Te.has_reduction te && ratio p te >= threshold then Compute_intensive
  else Memory_intensive

let is_compute_intensive p te = classify p te = Compute_intensive
