lib/schedule/ansor.ml: Array Device Dtype Float Hashtbl List Occupancy Program Sched Shape Te
