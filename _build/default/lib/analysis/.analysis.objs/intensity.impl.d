lib/analysis/intensity.ml: Dtype Expr List Program Shape Te
