(** Template-based auto-scheduler standing in for Ansor (§6.3).

    For each compute-intensive TE it enumerates tile/thread configurations,
    scores them with an analytical latency model (DRAM for unique bytes, L2
    for tile re-reads, the appropriate arithmetic pipeline for the flops)
    and returns the best schedule plus its resource usage — exactly the
    artifacts Souffle needs from its schedule optimizer ("get required
    resource", §5.4).

    Compile throughput (the production hot path) is addressed on three
    axes:

    - {b pruned enumeration}: candidates are built into a pre-sized array
      with infeasible tile/thread combinations rejected before a [Sched.t]
      is ever allocated, and all per-TE invariants of the cost model are
      hoisted out of the per-candidate estimator;
    - {b parallel search}: the unique structural keys of a program are
      partitioned across OCaml domains ({!config.search_domains}); the
      merged table is bit-identical to the serial search because each key
      is searched by the same deterministic procedure and merged by key,
      never by domain timing;
    - {b schedule reuse}: an optional {!store} (an in-memory ladder cache,
      a persistent cross-run cache, or both layered) is consulted under the
      canonical {!structural_key} before any candidate is enumerated — a
      warm store skips the search entirely. *)

type config = {
  eff_cap : float;
      (** fraction of pipeline peak the code generator's inner loop
          achieves on large tiles; baseline profiles vary it *)
  search_domains : int;
      (** domains to fan the candidate search over; [<= 1] searches
          serially.  Never affects the resulting schedules. *)
}

let default_config =
  { eff_cap = 0.60; search_domains = Domain.recommended_domain_count () }

(** How a schedule was produced.  {!Exhaustive} is this module's candidate
    enumeration; {!Construct} is the greedy construction-based scheduler
    ([Construct] in this library), which builds one schedule directly under
    the same cost model.  The mode is part of {!structural_key}, so cached
    and memoized schedules always record which procedure produced them and
    the two modes never alias each other's entries. *)
type mode = Construct | Exhaustive

let mode_tag = function Construct -> "construct" | Exhaustive -> "exhaustive"

let mode_of_string = function
  | "construct" -> Some Construct
  | "exhaustive" -> Some Exhaustive
  | _ -> None

(** Candidate-space selection: {!Reduced} is the fallback space the
    degradation ladder retries with after a search failure — small enough
    to be near-instant, still covering the shapes that matter.  Reduced
    results are never written to a {!store} (the determinism contract keys
    stored schedules to the full space). *)
type space = Full | Reduced

(* Achieved efficiency: large tiles amortize prologue/epilogue and fill the
   pipelines; small tiles do not. *)
let efficiency cfg ~tensor_core (s : Sched.t) =
  let elems = Sched.tile_elems s in
  let full = if tensor_core then 128 * 128 else 4096 in
  let fill = Float.min 1. (float_of_int elems /. float_of_int full) in
  cfg.eff_cap *. Float.pow fill 0.25

(* ---- cost model ---------------------------------------------------- *)

(** Everything about (program, TE) the latency estimate needs but that does
    not depend on the candidate schedule — computed once per TE instead of
    once per candidate (the search visits hundreds of candidates per TE). *)
type cost_ctx = {
  unique_in_bytes : int;
  out_bytes : int;
  flops : int;
  body : Expr.t;
  numel_of : string -> int option;
}

let cost_ctx (p : Program.t) (te : Te.t) : cost_ctx =
  let elem_bytes name =
    let info = Program.tensor_info_exn p name in
    Dtype.bytes info.Program.dtype
  in
  let unique_in_bytes =
    List.fold_left
      (fun acc name ->
        acc
        + Shape.numel (Program.tensor_info_exn p name).Program.shape
          * elem_bytes name)
      0 (Te.inputs te)
  in
  {
    unique_in_bytes;
    out_bytes = Te.out_numel te * Dtype.bytes te.Te.dtype;
    flops = Te.arith_ops te;
    body = Te.body_expr te;
    numel_of = Sched.numel_of_program p;
  }

(** Analytical latency (µs) of running [te] alone under schedule [s], with
    the per-TE invariants supplied as [ctx]. *)
let estimate_us_ctx (dev : Device.t) (ctx : cost_ctx) (te : Te.t)
    (s : Sched.t) : float =
  let grid = Sched.grid_blocks te s in
  let total_loaded =
    Sched.tiled_load_bytes_with ~numel_of:ctx.numel_of ~body:ctx.body te s
  in
  let l2_extra = max 0 (total_loaded - ctx.unique_in_bytes) in
  let atomic_bytes = ctx.out_bytes * (max 1 s.Sched.rsplit - 1) in
  let dram_us =
    float_of_int (ctx.unique_in_bytes + ctx.out_bytes)
    /. (dev.Device.dram_bw_gbps *. 0.85 *. 1e3)
    +. (float_of_int atomic_bytes
        /. (dev.Device.dram_bw_gbps *. dev.Device.atomic_bw_factor *. 1e3))
  in
  let l2_us = float_of_int l2_extra /. (dev.Device.l2_bw_gbps *. 1e3) in
  let peak =
    if s.Sched.use_tensor_core then dev.Device.fp16_tc_tflops
    else dev.Device.fp32_tflops
  in
  (* under-occupancy: small grids leave SMs idle (mirrors the simulator) *)
  let sms = float_of_int dev.Device.num_sms in
  let util_c = Float.min 1. (float_of_int (max 1 grid) /. sms) in
  let util_m = Float.min 1. (4. *. float_of_int (max 1 grid) /. sms) in
  let comp_us =
    float_of_int ctx.flops /. (peak *. s.Sched.compute_eff *. util_c *. 1e6)
  in
  let mem_us = (dram_us +. l2_us) /. util_m in
  let overlap = dev.Device.overlap_default in
  let body =
    Float.max mem_us comp_us +. ((1. -. overlap) *. Float.min mem_us comp_us)
  in
  let usage = Sched.usage_with ~numel_of:ctx.numel_of ~body:ctx.body te s in
  let waves = Occupancy.waves dev usage ~grid_blocks:grid in
  body +. (0.3 *. float_of_int (max 1 waves))

(** Analytical latency (µs) of running [te] alone under schedule [s]. *)
let estimate_us (dev : Device.t) (p : Program.t) (te : Te.t) (s : Sched.t) :
    float =
  estimate_us_ctx dev (cost_ctx p te) te s

(* ---- candidate enumeration ----------------------------------------- *)

(* Candidate tile factors for one dimension.  A dimension smaller than
   every option still yields one exact-fit candidate: dims below 9 used to
   filter to the empty list, which emptied the whole cross-product and made
   the search silently fall back to the grid-1 elementwise schedule — fatal
   for single-token decode shapes like (1, hidden), whose reductions need
   an rsplit-driven grid to reach DRAM bandwidth. *)
let tile_candidates ~space d =
  let opts = match space with Full -> [ 16; 32; 64; 128 ] | Reduced -> [ 32; 128 ] in
  match
    List.filter (fun t -> t <= d || t / 2 < d) opts
    |> List.map (fun t -> min t d)
    |> List.sort_uniq compare
  with
  | [] -> [ max 1 d ]
  | cs -> cs

let rtile_candidates d =
  List.map (fun t -> min t d) [ 16; 32; 64 ] |> List.sort_uniq compare

let thread_candidates = function Full -> [ 128; 256 ] | Reduced -> [ 256 ]

(** Enumerate schedules for a reduction TE: tile the two innermost output
    dims, tile the first reduction axis, enumerate reduction splits and
    block sizes.  The space is built into one pre-sized array (no
    intermediate [concat_map] pyramid); when [dev] is given, combinations
    that cannot possibly fit the device — output tile alone over the
    shared-memory budget, block over the thread limit — are rejected
    before a [Sched.t] is allocated. *)
let candidates ?dev ?(space = Full) (te : Te.t) : Sched.t list =
  let shape = te.Te.out_shape in
  let rank = Array.length shape in
  let raxes = Te.reduce_axes te in
  let tc = Sched.tensor_core_eligible te in
  if rank = 0 then [ Sched.default_elementwise te ]
  else begin
    let last = rank - 1 in
    let snd_last = max 0 (rank - 2) in
    let opts_last = tile_candidates ~space shape.(last) in
    let opts_snd =
      if rank >= 2 then tile_candidates ~space shape.(snd_last) else [ 1 ]
    in
    (* batch/channel dims keep one block per index: the grid already scales
       with them, and reduction splits (rsplit) cover small outputs *)
    let opts_r =
      if Array.length raxes = 0 then [ [||] ]
      else
        List.map
          (fun t ->
            let r = Array.map (fun d -> min d 8) raxes in
            r.(0) <- min raxes.(0) t;
            r)
          (rtile_candidates raxes.(0))
    in
    (* two-phase reduction splits for reductions with few output points *)
    let opts_rsplit =
      if Array.length raxes = 0 || Shape.numel shape >= 16384 then [ 1 ]
      else
        List.filter
          (fun sfac -> sfac = 1 || sfac <= Array.fold_left ( * ) 1 raxes)
          [ 1; 4; 16; 64 ]
    in
    let opts_threads = thread_candidates space in
    let elem_bytes = Dtype.bytes te.Te.dtype in
    let max_smem, max_threads =
      match dev with
      | Some (d : Device.t) ->
          (d.Device.max_smem_per_block, d.Device.max_threads_per_block)
      | None -> (max_int, max_int)
    in
    let n_max =
      List.length opts_last * List.length opts_snd * List.length opts_r
      * List.length opts_rsplit * List.length opts_threads
    in
    let buf = Array.make (max 1 n_max) (Sched.default_elementwise te) in
    let n = ref 0 in
    List.iter
      (fun tl ->
        List.iter
          (fun ts ->
            (* early reject: the output tile alone must fit shared memory
               (staged inputs only add to it) *)
            let out_tile = tl * if rank >= 2 then ts else 1 in
            if out_tile * elem_bytes <= max_smem then
              List.iter
                (fun rt ->
                  List.iter
                    (fun rsplit ->
                      List.iter
                        (fun threads ->
                          if threads <= max_threads then begin
                            let tile = Array.make rank 1 in
                            tile.(last) <- tl;
                            if rank >= 2 then tile.(snd_last) <- ts;
                            buf.(!n) <-
                              {
                                Sched.te_name = te.Te.name;
                                tile;
                                rtile = rt;
                                rsplit;
                                threads_per_block = threads;
                                use_tensor_core = tc;
                                cache_read_smem = true;
                                compute_eff = 0.; (* filled by the search *)
                              };
                            incr n
                          end)
                        opts_threads)
                    opts_rsplit)
                opts_r)
          opts_snd)
      opts_last;
    Array.to_list (Array.sub buf 0 !n)
  end

(** Feasibility: the block must fit an SM. *)
let feasible (dev : Device.t) (p : Program.t) (te : Te.t) (s : Sched.t) =
  let u = Sched.usage p te s in
  u.Occupancy.smem_per_block <= dev.Device.max_smem_per_block
  && u.Occupancy.threads_per_block <= dev.Device.max_threads_per_block
  && Occupancy.blocks_per_sm dev u >= 1

(* ---- per-TE search -------------------------------------------------- *)

(** Search the candidate space for the lowest-latency feasible schedule.
    Deterministic tie-breaking: of equal-cost candidates the one enumerated
    first wins, so the result is a function of (config, dev, te, space)
    only — never of timing, domain count, or table iteration order. *)
let schedule_te ?(config = default_config) ?(space = Full) (dev : Device.t)
    (p : Program.t) (te : Te.t) : Sched.t =
  if not (Te.has_reduction te) then
    { (Sched.default_elementwise te) with compute_eff = config.eff_cap }
  else begin
    let ctx = cost_ctx p te in
    let best = ref None in
    List.iter
      (fun s ->
        let s =
          { s with
            Sched.compute_eff =
              efficiency config ~tensor_core:s.Sched.use_tensor_core s;
          }
        in
        let u =
          Sched.usage_with ~numel_of:ctx.numel_of ~body:ctx.body te s
        in
        if
          u.Occupancy.smem_per_block <= dev.Device.max_smem_per_block
          && u.Occupancy.threads_per_block <= dev.Device.max_threads_per_block
          && Occupancy.blocks_per_sm dev u >= 1
        then begin
          let c = estimate_us_ctx dev ctx te s in
          match !best with
          | Some (_, bc) when bc <= c -> ()
          | _ -> best := Some (s, c)
        end)
      (candidates ~dev ~space te);
    match !best with
    | None ->
        { (Sched.default_elementwise te) with compute_eff = config.eff_cap }
    | Some (s, _) -> s
  end

(* ---- structural keys and schedule stores ---------------------------- *)

(** Canonical structural key of a TE for schedule reuse: device, the
    scheduling mode that produced the schedule, the scheduling-relevant
    part of the search configuration ([eff_cap] — and deliberately {e not}
    [search_domains], which never changes results), and the TE's structure
    (output shape, reduction axes, provenance tag, arithmetic ops, access
    count, output and input dtypes).  Two TEs with equal keys receive
    bit-identical schedules, which is what makes both the per-program memo
    table and the persistent cross-run cache sound. *)
let structural_key ?(mode = Exhaustive) ?(config = default_config)
    (dev : Device.t) (p : Program.t) (te : Te.t) : string =
  let in_dtypes =
    Te.inputs te
    |> List.map (fun name ->
           match Program.tensor_info p name with
           | Some i -> Dtype.to_string i.Program.dtype
           | None -> "?")
    |> String.concat ","
  in
  Fmt.str "%s|mode=%s|eff=%.4f|out=%s|red=%s|tag=%s|ops=%d|acc=%d|dt=%s<-%s"
    dev.Device.name (mode_tag mode) config.eff_cap
    (Shape.to_string te.Te.out_shape)
    (String.concat "x"
       (List.map string_of_int (Array.to_list (Te.reduce_axes te))))
    te.Te.tag (Te.arith_ops te)
    (List.length (Te.accesses te))
    (Dtype.to_string te.Te.dtype)
    in_dtypes

(** A pluggable schedule store consulted before (and fed after) the
    candidate search — the hook the in-memory ladder cache and the
    persistent cross-run cache ({!Scache} in [lib/cache]) plug into
    without this library depending on them. *)
type store = {
  find : string -> Sched.t option;
  add : string -> Sched.t -> unit;
}

(* ---- whole-program scheduling --------------------------------------- *)

(* Fan-out is only worth a domain spawn when several keys actually need
   searching... *)
let min_parallel_keys = 2

(* ...and when the total work is large enough to amortize spawn + join
   overhead (~100µs per domain).  Work is measured in candidate
   evaluations: an exhaustive key visits the full cross-product (a few
   hundred evaluations, ~1µs each), a constructed key a few dozen, so the
   threshold corresponds to several milliseconds of serial search — below
   that, spawning was measured to win ~nothing (the 1.05x "speedup" of the
   zoo bench) and can even lose. *)
let min_parallel_work = 8192

(* Approximate candidate evaluations one key costs under each mode. *)
let evals_hint = function Exhaustive -> 384 | Construct -> 50

(* Split [items] into [n] contiguous chunks whose concatenation is
   [items]. *)
let chunk n items =
  let len = List.length items in
  let base = len / n and extra = len mod n in
  let rec take k acc l =
    if k = 0 then (List.rev acc, l)
    else
      match l with
      | [] -> (List.rev acc, [])
      | x :: rest -> take (k - 1) (x :: acc) rest
  in
  let rec go i l =
    if i >= n || l = [] then []
    else
      let size = base + if i < extra then 1 else 0 in
      let c, rest = take size [] l in
      if c = [] then go (i + 1) rest else c :: go (i + 1) rest
  in
  go 0 items

(** The per-TE procedure {!schedule_program} runs for every unresolved key,
    together with the {!mode} tag recorded in those keys.  The default is
    this module's exhaustive search; [Construct.scheduler] plugs the
    construction-based one in without this module depending on it. *)
type scheduler = {
  s_mode : mode;
  s_schedule :
    config:config -> space:space -> Device.t -> Program.t -> Te.t -> Sched.t;
}

let exhaustive_scheduler : scheduler =
  {
    s_mode = Exhaustive;
    s_schedule =
      (fun ~config ~space dev p te -> schedule_te ~config ~space dev p te);
  }

(** Schedule every TE of a program.  Identical structures are searched once
    (memoized on {!structural_key}, since models repeat identical layers
    many times); keys the [store] already knows skip the search entirely;
    the remaining keys are searched across [config.search_domains] domains.
    The resulting table is bit-identical regardless of domain count or
    store warmth built from {!Full}-space searches of the same
    [scheduler]. *)
let schedule_program ?(scheduler = exhaustive_scheduler)
    ?(config = default_config) ?(space = Full) ?store (dev : Device.t)
    (p : Program.t) : (string, Sched.t) Hashtbl.t =
  Obs.span ~meta:[ ("tes", string_of_int (List.length p.Program.tes)) ]
    "ansor"
  @@ fun () ->
  let mode = scheduler.s_mode in
  let schedule_one te = scheduler.s_schedule ~config ~space dev p te in
  (* the unique structural keys, in first-occurrence program order *)
  let key_of = Hashtbl.create 64 in
  let uniq = ref [] in
  List.iter
    (fun (te : Te.t) ->
      let key = structural_key ~mode ~config dev p te in
      if not (Hashtbl.mem key_of key) then begin
        Hashtbl.add key_of key te;
        uniq := (key, te) :: !uniq
      end)
    p.Program.tes;
  let uniq = List.rev !uniq in
  (* resolve what we can from the store before searching anything *)
  let resolved : (string, Sched.t) Hashtbl.t = Hashtbl.create 64 in
  let missing =
    List.filter
      (fun (key, _) ->
        match Option.bind store (fun st -> st.find key) with
        | Some s ->
            Hashtbl.replace resolved key s;
            false
        | None -> true)
      uniq
  in
  let store_hits = List.length uniq - List.length missing in
  let searched = List.length missing in
  (* search the remaining keys, serially or fanned over domains *)
  let domains =
    min config.search_domains (max 1 searched)
  in
  let parallel =
    searched >= min_parallel_keys
    && domains > 1
    && searched * evals_hint mode >= min_parallel_work
  in
  if parallel then begin
    (* Workers must not touch the Obs collector (single-domain state), so
       per-key timings are measured locally and re-emitted as marker spans
       after the join.  The program's name index is primed first: workers
       only ever read it. *)
    Program.prime_index p;
    let search_chunk part () =
      List.map
        (fun (key, te) ->
          let t0 = Unix.gettimeofday () in
          let s = schedule_one te in
          (key, te, s, (Unix.gettimeofday () -. t0) *. 1e6))
        part
    in
    let spawned =
      List.map (fun part -> Domain.spawn (search_chunk part))
        (chunk domains missing)
    in
    let joined =
      List.map (fun d -> try Ok (Domain.join d) with e -> Error e) spawned
    in
    List.iter
      (fun r ->
        match r with
        | Ok results ->
            List.iter
              (fun (key, (te : Te.t), s, dur_us) ->
                (* marker span: the search ran on a worker domain; its
                   measured duration rides in the metadata *)
                Obs.span
                  ~meta:
                    [
                      ("te", te.Te.name);
                      ("search_us", Fmt.str "%.1f" dur_us);
                    ]
                  "ansor-search"
                  (fun () -> ());
                Hashtbl.replace resolved key s)
              results
        | Error _ -> ())
      joined;
    (* re-raise the first worker failure only after every domain joined *)
    List.iter (function Error e -> raise e | Ok _ -> ()) joined
  end
  else
    List.iter
      (fun (key, te) ->
        let s =
          Obs.span ~meta:[ ("te", te.Te.name) ] "ansor-search" (fun () ->
              schedule_one te)
        in
        Hashtbl.replace resolved key s)
      missing;
  (* feed the store — full-space results only, so cached schedules always
     reproduce the serial full search *)
  (match (store, space) with
  | Some st, Full ->
      List.iter
        (fun (key, _) ->
          match Hashtbl.find_opt resolved key with
          | Some s -> st.add key s
          | None -> ())
        missing
  | _ -> ());
  Obs.annotate "store_hits" (string_of_int store_hits);
  Obs.annotate "searched" (string_of_int searched);
  Obs.annotate "domains" (string_of_int (if parallel then domains else 1));
  Obs.annotate "mode" (mode_tag mode);
  (* merge into the per-TE table in program order *)
  let table = Hashtbl.create 64 in
  List.iter
    (fun (te : Te.t) ->
      let key = structural_key ~mode ~config dev p te in
      match Hashtbl.find_opt resolved key with
      | Some s -> Hashtbl.replace table te.Te.name { s with Sched.te_name = te.Te.name }
      | None -> assert false)
    p.Program.tes;
  table

(** {!schedule_program} as a total function: fault-injection aware,
    exceptions converted to a typed diagnostic. *)
let schedule_program_result ?scheduler ?config ?space ?store (dev : Device.t)
    (p : Program.t) : ((string, Sched.t) Hashtbl.t, Diag.t) result =
  Diag.guard Diag.Schedule (fun () ->
      Faultinject.trip Diag.Schedule;
      schedule_program ?scheduler ?config ?space ?store dev p)
