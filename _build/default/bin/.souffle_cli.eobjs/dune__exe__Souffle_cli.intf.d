bin/souffle_cli.mli:
