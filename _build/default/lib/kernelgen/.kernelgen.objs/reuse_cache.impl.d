lib/kernelgen/reuse_cache.ml: List
