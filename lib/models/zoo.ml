(** The model zoo of Table 2, by name, at full evaluation size and at
    interpreter-friendly tiny size.  Autoregressive models additionally
    expose a single-token decode constructor parameterized by KV-cache
    position ([None] for the encoder-style entries). *)

type entry = {
  name : string;
  full : unit -> Dgraph.t;
  tiny : unit -> Dgraph.t;
  decode_full : (pos:int -> Dgraph.t) option;
      (** decode step at full size, reading a KV cache of [pos] entries *)
  decode_tiny : (pos:int -> Dgraph.t) option;
      (** decode step at interpreter-friendly tiny size *)
  description : string;
}

let all : entry list =
  [
    {
      name = "BERT";
      full = (fun () -> Bert.create ());
      tiny = (fun () -> Bert.create ~cfg:Bert.tiny ());
      decode_full = None;
      decode_tiny = None;
      description = "BERT-base, 12 layers, SQuAD seq 384, FP16";
    };
    {
      name = "ResNeXt";
      full = (fun () -> Resnext.create ());
      tiny = (fun () -> Resnext.create ~cfg:Resnext.tiny ());
      decode_full = None;
      decode_tiny = None;
      description = "ResNeXt-101 32x4d, explicit branches, ImageNet";
    };
    {
      name = "LSTM";
      full = (fun () -> Lstm.create ());
      tiny = (fun () -> Lstm.create ~cfg:Lstm.tiny ());
      decode_full = None;
      decode_tiny = None;
      description = "10-cell stacked LSTM, 100 steps, hidden 256";
    };
    {
      name = "EfficientNet";
      full = (fun () -> Efficientnet.create ());
      tiny = (fun () -> Efficientnet.create ~cfg:Efficientnet.tiny ());
      decode_full = None;
      decode_tiny = None;
      description = "EfficientNet-b0, MBConv + SE, ImageNet";
    };
    {
      name = "SwinTrans.";
      full = (fun () -> Swin.create ());
      tiny = (fun () -> Swin.create ~cfg:Swin.tiny ());
      decode_full = None;
      decode_tiny = None;
      description = "Swin-B, patch 4, window 7, ImageNet";
    };
    {
      name = "MMoE";
      full = (fun () -> Mmoe.create ());
      tiny = (fun () -> Mmoe.create ~cfg:Mmoe.tiny ());
      decode_full = None;
      decode_tiny = None;
      description = "Multi-gate mixture-of-experts, 8 experts, 2 tasks";
    };
    {
      name = "GPT";
      full = (fun () -> Gpt.create ());
      tiny = (fun () -> Gpt.create ~cfg:Gpt.tiny ());
      decode_full = Some (fun ~pos -> Gpt.decode ~pos ());
      decode_tiny = Some (fun ~pos -> Gpt.decode ~cfg:Gpt.tiny ~pos ());
      description = "GPT decoder block, causal attention + KV-cache decode";
    };
  ]

let find name =
  List.find_opt
    (fun e -> String.lowercase_ascii e.name = String.lowercase_ascii name)
    all

let names = List.map (fun e -> e.name) all
