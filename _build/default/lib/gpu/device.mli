(** GPU device model.  The constants for {!a100} come from the NVIDIA A100
    (40 GB, SXM) datasheet plus the two latency figures the paper itself
    uses: ~2 µs per kernel launch (§8.3) and a cheap cooperative-groups grid
    synchronization (§2.3, §8.2). *)

type t = {
  name : string;
  num_sms : int;
  clock_ghz : float;
  smem_per_sm : int;          (** bytes of shared memory per SM *)
  max_smem_per_block : int;   (** opt-in carve-out limit per block *)
  regs_per_sm : int;          (** 32-bit registers per SM *)
  max_regs_per_thread : int;
  max_threads_per_sm : int;
  max_threads_per_block : int;
  max_blocks_per_sm : int;
  dram_bw_gbps : float;       (** global-memory bandwidth, GB/s *)
  l2_bw_gbps : float;         (** L2 bandwidth, GB/s *)
  l2_bytes : int;
  fp32_tflops : float;        (** CUDA-core FMA peak *)
  fp16_tc_tflops : float;     (** tensor-core FP16 peak *)
  sfu_gops : float;           (** special-function-unit throughput, Gop/s *)
  kernel_launch_us : float;
  grid_sync_us : float;
  atomic_bw_factor : float;   (** atomics achieve this fraction of DRAM bw *)
  overlap_pipelined : float;  (** mem/compute overlap with §6.5 pipelining *)
  overlap_default : float;    (** overlap from plain warp-level parallelism *)
  coop_capacity_frac : float;
      (** fraction of the theoretical resident-block count a cooperative
          (grid-synchronizing) launch can claim; cf. the "at most 48 blocks"
          budget in the paper's Fig. 2 *)
}

val a100 : t
(** NVIDIA A100-SXM4-40GB. *)

val total_smem : t -> int
(** Aggregate shared memory: the capacity [C] of §5.4's constraint. *)

val pp : Format.formatter -> t -> unit
