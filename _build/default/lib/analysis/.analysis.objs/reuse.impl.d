lib/analysis/reuse.ml: Fmt List Program String Te
