test/test_index.ml: Alcotest Array Fmt Index List QCheck QCheck_alcotest Shape Stdlib
