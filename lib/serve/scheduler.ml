(** Admission and dispatch on top of {!Sim.Multi}.

    The scheduler owns the request queue: arrivals enter a pending queue,
    and whenever a concurrency slot is free the configured policy picks the
    next request and launches its compiled artifact as a stream on the
    multi-stream engine.  Policies:

    - [Fifo]: strict arrival order.
    - [Sel]: shortest expected latency first — the estimate is the
      artifact's simulated *solo* latency, which the compiler already
      produced for free; ties keep arrival order.

    [max_streams] bounds how many requests may share the device at once
    (the serving concurrency knob); everything else queues. *)

type policy = Fifo | Sel

let policy_to_string = function Fifo -> "fifo" | Sel -> "sel"

let policy_of_string = function
  | "fifo" -> Some Fifo
  | "sel" | "shortest" -> Some Sel
  | _ -> None

type cfg = {
  policy : policy;
  max_streams : int;  (** concurrency bound, >= 1 *)
}

(** One compiled, reusable inference program: the unit the serving layer
    shares across every request for the same model. *)
type artifact = {
  art_model : string;
  art_profiles : Sim.kernel_profile list;
  art_solo_us : float;     (** simulated solo latency (the SEL estimate) *)
  art_counters : Counters.t;  (** solo per-request traffic *)
  art_degraded : int;      (** degradation steps its compile took *)
}

(** Build an artifact straight from a compiled kernel program (runs the
    solo simulation once for the counters). *)
let artifact_of_prog (dev : Device.t) ~model ?(degraded = 0)
    (prog : Kernel_ir.prog) : artifact =
  let profiles = Sim.profile_prog dev prog in
  let sim = Sim.run dev prog in
  {
    art_model = model;
    art_profiles = profiles;
    art_solo_us = Sim.solo_time_us profiles;
    art_counters = Counters.copy sim.Sim.total;
    art_degraded = degraded;
  }

type completed = {
  c_req : Workload.request;
  c_model : string;
  c_stream : int;        (** engine stream id (unique per request) *)
  c_slot : int;          (** concurrency lane, [0 .. max_streams-1] *)
  c_dispatch_us : float;
  c_finish_us : float;
  c_service_us : float;  (** on-device time, queueing excluded *)
  c_solo_us : float;
  c_bytes : int;         (** solo global-memory traffic of the request *)
  c_slices : (string * float * float) list;
      (** per-kernel (name, start, end) under contention *)
}

(** Latency including queueing: finish minus arrival. *)
let latency_us (c : completed) = c.c_finish_us -. c.c_req.Workload.rq_arrival_us

type outcome = {
  o_policy : policy;
  o_max_streams : int;
  o_completed : completed list;        (** completion order *)
  o_samples : Sim.Multi.sample list;   (** SM/bandwidth occupancy timeline *)
  o_makespan_us : float;               (** time of the last completion *)
}

let rec insert_sorted x = function
  | [] -> [ x ]
  | y :: _ as l when x <= y -> x :: l
  | y :: rest -> y :: insert_sorted x rest

(** Serve [reqs] against [artifacts] on a fresh engine.  Deterministic:
    identical inputs produce identical outcomes.
    @raise Invalid_argument on an unknown model or [max_streams < 1]. *)
let run (dev : Device.t) (cfg : cfg) ~(artifacts : artifact list)
    (reqs : Workload.request list) : outcome =
  if cfg.max_streams < 1 then invalid_arg "Scheduler.run: max_streams < 1";
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun a -> Hashtbl.replace tbl (String.lowercase_ascii a.art_model) a)
    artifacts;
  let art_of (model : string) =
    match Hashtbl.find_opt tbl (String.lowercase_ascii model) with
    | Some a -> a
    | None -> invalid_arg (Fmt.str "Scheduler.run: no artifact for model %s" model)
  in
  (* fail on unknown models before any simulated time passes *)
  List.iter (fun (r : Workload.request) -> ignore (art_of r.Workload.rq_model)) reqs;
  let upcoming =
    ref
      (List.stable_sort
         (fun (a : Workload.request) b ->
           compare a.Workload.rq_arrival_us b.Workload.rq_arrival_us)
         reqs)
  in
  let queue = ref [] (* arrived, undispatched; arrival order *) in
  let m = Sim.Multi.create dev in
  let inflight : (int, Workload.request * artifact * int * float) Hashtbl.t =
    Hashtbl.create 16
  in
  let free_slots = ref (List.init cfg.max_streams Fun.id) in
  let completed = ref [] in
  let absorb () =
    let rec go () =
      match !upcoming with
      | (r : Workload.request) :: rest
        when r.Workload.rq_arrival_us <= Sim.Multi.now_us m ->
          queue := !queue @ [ r ];
          upcoming := rest;
          go ()
      | _ -> ()
    in
    go ()
  in
  let pick () =
    match cfg.policy with
    | Fifo -> List.hd !queue
    | Sel ->
        List.fold_left
          (fun (best : Workload.request) (r : Workload.request) ->
            if
              (art_of r.Workload.rq_model).art_solo_us
              < (art_of best.Workload.rq_model).art_solo_us
            then r
            else best)
          (List.hd !queue) (List.tl !queue)
  in
  let dispatch () =
    while !queue <> [] && !free_slots <> [] do
      let rq = pick () in
      queue :=
        List.filter
          (fun (r : Workload.request) -> r.Workload.rq_id <> rq.Workload.rq_id)
          !queue;
      let slot = List.hd !free_slots in
      free_slots := List.tl !free_slots;
      let art = art_of rq.Workload.rq_model in
      let st =
        Sim.Multi.launch m
          ~label:(Fmt.str "%s#%d" art.art_model rq.Workload.rq_id)
          art.art_profiles
      in
      Hashtbl.replace inflight st.Sim.Multi.st_id
        (rq, art, slot, Sim.Multi.now_us m)
    done
  in
  let on_complete (st : Sim.Multi.stream) =
    let rq, art, slot, disp = Hashtbl.find inflight st.Sim.Multi.st_id in
    Hashtbl.remove inflight st.Sim.Multi.st_id;
    free_slots := insert_sorted slot !free_slots;
    completed :=
      {
        c_req = rq;
        c_model = art.art_model;
        c_stream = st.Sim.Multi.st_id;
        c_slot = slot;
        c_dispatch_us = disp;
        c_finish_us = Option.get st.Sim.Multi.st_finish_us;
        c_service_us = st.Sim.Multi.st_service_us;
        c_solo_us = art.art_solo_us;
        c_bytes = Counters.global_transfer_bytes art.art_counters;
        c_slices = Sim.Multi.kernel_slices st;
      }
      :: !completed
  in
  let rec loop () =
    absorb ();
    dispatch ();
    if Hashtbl.length inflight = 0 && !queue = [] && !upcoming = [] then ()
    else begin
      let until =
        match !upcoming with
        | [] -> infinity
        | (r : Workload.request) :: _ -> r.Workload.rq_arrival_us
      in
      match Sim.Multi.advance m ~until with
      | `Reached -> loop ()
      | `Idle -> () (* unreachable: nothing active implies nothing pending *)
      | `Completed ss ->
          List.iter on_complete ss;
          loop ()
    end
  in
  loop ();
  {
    o_policy = cfg.policy;
    o_max_streams = cfg.max_streams;
    o_completed = List.rev !completed;
    o_samples = Sim.Multi.samples m;
    o_makespan_us = Sim.Multi.now_us m;
  }
