lib/gpu/kernel_ir.ml: Fmt List Occupancy
