(** Vertical TE transformation (§6.2, Fig. 4).

    Chains of one-relies-on-one TEs are collapsed into a single semantically
    equivalent TE by composing their index mapping functions — Eq. 2's
    [f_{i+1,i}(v) = M_{i+1}(M_i v + c_i) + c_{i+1}] realized as substitution
    of the producer's body into the consumer, followed by quasi-affine
    simplification.  Data-movement TEs (reshape, transpose, slice, ...) are
    additionally folded into reduction consumers, which is how Souffle
    "eventually eliminates all element-wise memory operators" (§2.3). *)

(** Substitute every read of [producer]'s output inside [expr] by the
    producer's body with its output variables replaced by the access
    indices.  [producer] must be a [Compute] TE. *)
let inline_read (producer : Te.t) (expr : Expr.t) : Expr.t =
  let body = Te.body_expr producer in
  Expr.map_reads
    (fun name idxs ->
      if name = producer.Te.name then begin
        let arr = Array.of_list idxs in
        Expr.subst_out
          (fun k ->
            if k < Array.length arr then arr.(k)
            else invalid_arg "Vertical.inline_read: rank mismatch")
          body
      end
      else Expr.Read (name, idxs))
    expr

(** Inline [producer] into [consumer], simplifying the composed index
    expressions against the consumer's iteration space. *)
let fuse ~(producer : Te.t) ~(consumer : Te.t) : Te.t =
  assert (not (Te.has_reduction producer));
  let fused = Te.map_body (inline_read producer) consumer in
  let ov_ext = consumer.Te.out_shape and rv_ext = Te.reduce_axes consumer in
  Te.map_body (Expr.map_index (Index.simplify ~ov_ext ~rv_ext)) fused

type stats = { chains_fused : int; movement_folded : int }

(* One inlining round; returns the new program and how many rewrites
   happened. *)
let round ~fold_into_reduce (p : Program.t) : Program.t * stats =
  let cons = Program.consumers p in
  let outputs = Program.SSet.of_list p.Program.outputs in
  let chains = ref 0 and moved = ref 0 in
  (* Decide for each one-relies-on-one TE whether to inline it into all of
     its consumers. *)
  let should_inline (te : Te.t) =
    if Te.has_reduction te then false
    else if Program.SSet.mem te.Te.name outputs then false
    else begin
      match Program.SMap.find_opt te.Te.name cons with
      | None | Some [] -> false
      | Some consumers ->
          let movement = Expr.is_data_movement (Te.body_expr te) in
          let all_compute_consumers =
            List.for_all (fun (c : Te.t) -> not (Te.has_reduction c)) consumers
          in
          if movement then begin
            (* folding pure data movement anywhere is free; into reductions
               it needs the flag (Souffle: yes; restricted baselines: no) *)
            if all_compute_consumers then true else fold_into_reduce
          end
          else
            (* arithmetic bodies: only into one-relies-on-one consumers, and
               only when not shared (sharing is served by the §6.5 cache;
               inlining would recompute) *)
            all_compute_consumers && List.length consumers = 1
    end
  in
  let selected =
    List.filter should_inline p.Program.tes
    |> List.map (fun (te : Te.t) -> te.Te.name)
    |> Program.SSet.of_list
  in
  (* Only inline TEs whose own producers are not being inlined this round:
     chains resolve bottom-up over successive rounds, so each rewrite stays
     a single substitution step. *)
  let to_inline =
    List.filter
      (fun (te : Te.t) ->
        Program.SSet.mem te.Te.name selected
        && not
             (List.exists
                (fun i -> Program.SSet.mem i selected)
                (Te.inputs te)))
      p.Program.tes
    |> List.map (fun (te : Te.t) -> (te.Te.name, te))
  in
  if to_inline = [] then (p, { chains_fused = 0; movement_folded = 0 })
  else begin
    let inline_map = List.to_seq to_inline |> Hashtbl.of_seq in
    (* Don't inline a TE into another TE that is itself being inlined this
       round *and* forms a chain — handle chains over multiple rounds to
       keep each rewrite simple. *)
    let new_tes =
      List.filter_map
        (fun (te : Te.t) ->
          if Hashtbl.mem inline_map te.Te.name then None
          else begin
            let te' =
              List.fold_left
                (fun acc input ->
                  match Hashtbl.find_opt inline_map input with
                  | Some producer ->
                      if Expr.is_data_movement (Te.body_expr producer) then
                        incr moved
                      else incr chains;
                      fuse ~producer ~consumer:acc
                  | None -> acc)
                te (Te.inputs te)
            in
            Some te'
          end)
        p.Program.tes
    in
    ( { p with Program.tes = new_tes },
      { chains_fused = !chains; movement_folded = !moved } )
  end

(** Iterate inlining to a fixpoint. *)
let apply ?(fold_into_reduce = true) (p : Program.t) : Program.t * stats =
  let rec go p acc rounds =
    if rounds > 64 then (p, acc)
    else begin
      let p', s = round ~fold_into_reduce p in
      if s.chains_fused = 0 && s.movement_folded = 0 then (p, acc)
      else
        go p'
          {
            chains_fused = acc.chains_fused + s.chains_fused;
            movement_folded = acc.movement_folded + s.movement_folded;
          }
          (rounds + 1)
    end
  in
  go p { chains_fused = 0; movement_folded = 0 } 0

(** {!apply} as a total function: fault-injection aware, exceptions
    converted to a typed diagnostic for the degradation ladder. *)
let apply_result ?fold_into_reduce (p : Program.t) :
    (Program.t * stats, Diag.t) result =
  Obs.span "vertical" @@ fun () ->
  Diag.guard Diag.Vertical (fun () ->
      Faultinject.trip Diag.Vertical;
      let ((_, stats) as r) = apply ?fold_into_reduce p in
      Obs.annotate "chains_fused" (string_of_int stats.chains_fused);
      Obs.annotate "movement_folded" (string_of_int stats.movement_folded);
      r)
