test/test_models.ml: Alcotest Astring_contains Bert Dgraph Efficientnet Float Fmt Interp List Lower Lstm Mmoe Nd Option Program Result Shape String Swin Te Zoo
