(* Tests for the TensorIR-flavoured loop-nest layer: structure of the
   generated nests, iteration-space coverage, and CUDA rendering. *)

let f32 = Dtype.F32
let dev = Device.a100
let input name shape = (name, { Program.shape; dtype = f32 })

let gemm () =
  let a = input "a" [| 128; 64 |] and b = input "b" [| 64; 96 |] in
  let te = Builder.matmul ~tag:"matmul" ~name:"c" ~m:128 ~n:96 ~k:64 "a" "b" in
  let p = Program.make ~inputs:[ a; b ] ~tes:[ te ] ~outputs:[ "c" ] in
  (p, te)

let test_gemm_loop_nest () =
  let p, te = gemm () in
  let s = Ansor.schedule_te dev p te in
  let f = Tir.of_te p te s in
  (* covers the full (possibly padded) output space *)
  Alcotest.(check bool) "iteration space covers output" true
    (Tir.iteration_space f >= 128 * 96);
  (* has a serial or unrolled reduction loop *)
  let has_reduction_loop =
    List.exists
      (function
        | Tir.For { var; _ } -> String.length var > 0 && var.[0] = 'r'
        | _ -> false)
      (Tir.loops f.Tir.body)
  in
  Alcotest.(check bool) "reduction loop present" true has_reduction_loop;
  Alcotest.(check (list string)) "params in order" [ "a"; "b"; "c" ]
    f.Tir.params

let test_gemm_cuda_render () =
  let p, te = gemm () in
  let s = Ansor.schedule_te dev p te in
  let src = Tir.render_cuda (Tir.of_te p te s) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true
        (Astring_contains.contains src needle))
    [ "__global__ void te_c"; "blockIdx.x"; "threadIdx.x"; "acc +=";
      "c[i0, i1] = acc"; "__shared__"; "__syncthreads()" ]

let test_elementwise_no_accumulator () =
  let x = input "x" [| 32; 32 |] in
  let te = Builder.unary ~name:"y" ~shape:[| 32; 32 |] Expr.Sigmoid "x" in
  let p = Program.make ~inputs:[ x ] ~tes:[ te ] ~outputs:[ "y" ] in
  let s = Sched.default_elementwise te in
  let src = Tir.render_cuda (Tir.of_te p te s) in
  Alcotest.(check bool) "no accumulator" false
    (Astring_contains.contains src "acc");
  Alcotest.(check bool) "sigmoid rendered" true
    (Astring_contains.contains src "1.f / (1.f + __expf");
  Alcotest.(check bool) "stores result" true
    (Astring_contains.contains src "y[i0, i1] = val")

let test_rtile_splits_reduction () =
  let p, te = gemm () in
  let s =
    { (Sched.default_elementwise te) with
      Sched.tile = [| 32; 32 |]; rtile = [| 16 |]; cache_read_smem = false }
  in
  let f = Tir.of_te p te s in
  (* reduction of extent 64 with rtile 16: an outer r0o loop of 4 and an
     unrolled inner loop of 16 *)
  let find var =
    List.find_map
      (function
        | Tir.For { var = v; extent; _ } when v = var -> Some extent
        | _ -> None)
      (Tir.loops f.Tir.body)
  in
  Alcotest.(check (option int)) "outer split" (Some 4) (find "r0o");
  Alcotest.(check (option int)) "inner split" (Some 16) (find "r0")

let test_index_rendering () =
  Alcotest.(check string) "affine" "((i0 * 2) + r1)"
    (Tir.render_index Index.(Add (Mul (Ov 0, 2), Rv 1)));
  Alcotest.(check string) "div mod" "((i1 / 4) % 8)"
    (Tir.render_index Index.(Mod (Div (Ov 1, 4), 8)));
  Alcotest.(check string) "negative offset" "(i0 - 3)"
    (Tir.render_index Index.(Add (Ov 0, Const (-3))))

let test_expr_rendering () =
  let e =
    Expr.(
      Select
        ( Cmp (Lt, Index.Ov 0, Index.Const 4),
          Binop (Mul, Read ("a", [ Index.Ov 0 ]), Const 2.),
          Unop (Relu, Read ("b", [ Index.Ov 0 ])) ))
  in
  let s = Tir.render_expr e in
  Alcotest.(check bool) "ternary" true (Astring_contains.contains s "?");
  Alcotest.(check bool) "guard" true (Astring_contains.contains s "(i0 < 4)");
  Alcotest.(check bool) "relu" true (Astring_contains.contains s "fmaxf(0.f")

let test_padding_guard_renders () =
  (* a conv body with padding emits bounds checks *)
  let g =
    let open Dgraph in
    let b = B.create () in
    let x = B.input b "x" [| 1; 2; 6; 6 |] in
    let w = B.input b "w" [| 2; 2; 3; 3 |] in
    let c =
      B.add b ~name:"c"
        (Op.Conv2d { kernel = 3; stride = 1; padding = 1; groups = 1 })
        [ x; w ]
    in
    B.finish b ~outputs:[ c ]
  in
  let p = Lower.run g in
  let te = Program.find_te_exn p "c" in
  let s = Ansor.schedule_te dev p te in
  let src = Tir.render_cuda (Tir.of_te p te s) in
  Alcotest.(check bool) "bounds guard" true
    (Astring_contains.contains src ">= 0");
  Alcotest.(check bool) "fallback zero" true
    (Astring_contains.contains src ": 0f")

let test_all_model_tes_render () =
  (* every TE of every tiny model produces a well-formed loop nest *)
  List.iter
    (fun (e : Zoo.entry) ->
      let p = Lower.run (e.Zoo.tiny ()) in
      let scheds = Ansor.schedule_program dev p in
      List.iter
        (fun (te : Te.t) ->
          let s = Hashtbl.find scheds te.Te.name in
          let f = Tir.of_te p te s in
          let src = Tir.render_cuda f in
          Alcotest.(check bool)
            (Fmt.str "%s/%s nonempty" e.Zoo.name te.Te.name)
            true
            (String.length src > 40);
          Alcotest.(check bool)
            (Fmt.str "%s/%s covers output" e.Zoo.name te.Te.name)
            true
            (Tir.iteration_space f >= Te.out_numel te))
        p.Program.tes)
    Zoo.all

let suite =
  [
    Alcotest.test_case "gemm loop nest" `Quick test_gemm_loop_nest;
    Alcotest.test_case "gemm cuda render" `Quick test_gemm_cuda_render;
    Alcotest.test_case "elementwise nest" `Quick test_elementwise_no_accumulator;
    Alcotest.test_case "rtile splits" `Quick test_rtile_splits_reduction;
    Alcotest.test_case "index rendering" `Quick test_index_rendering;
    Alcotest.test_case "expr rendering" `Quick test_expr_rendering;
    Alcotest.test_case "padding guard" `Quick test_padding_guard_renders;
    Alcotest.test_case "all model TEs render" `Quick test_all_model_tes_render;
  ]
