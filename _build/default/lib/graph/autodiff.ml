(** Reverse-mode automatic differentiation at the operator-graph level —
    the §9 "Fusion in DL training" future-work item made concrete.

    [backward ~loss ~wrt graph] extends a model graph with the backward pass
    of a scalar loss: one gradient tensor per requested input.  The combined
    forward+backward graph is an ordinary {!Dgraph.t}, so the whole Souffle
    pipeline (analysis, transformation, partitioning, reuse) applies to
    training steps too.

    As the paper notes, training restricts fusion: every forward
    intermediate the backward pass reads must be kept in global memory for
    the gradient computation.  We encode that constraint by adding those
    tensors to the graph outputs, which stops vertical transformation from
    dissolving them and forces the emitter to materialize them.

    Supported operators: matmul/matmul_nt, gemv, bias_add, scale, affine,
    rowwise add/sub, element-wise add/sub/mul/max, unary
    neg/exp/relu/sigmoid/tanh/sqrt/erf, reshape, transpose, concat, softmax,
    sum-reductions and global average pooling.  Differentiating through an
    unsupported operator raises [Invalid_argument], the same contract the
    forward lowering has. *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)

type t = {
  graph : Dgraph.t;            (** forward + backward nodes *)
  gradient_of : string SMap.t; (** differentiated tensor -> gradient name *)
  saved : string list;         (** forward tensors the backward pass reads *)
}

let unsupported (op : Op.t) =
  invalid_arg ("Autodiff: no gradient for operator " ^ Op.to_string op)

(* A builder pre-seeded with the forward graph. *)
let builder_of (g : Dgraph.t) : Dgraph.B.builder * Program.tensor_info SMap.t
    =
  let b = Dgraph.B.create () in
  List.iter
    (fun (name, (i : Program.tensor_info)) ->
      ignore (Dgraph.B.input b name ~dtype:i.Program.dtype i.Program.shape))
    g.Dgraph.inputs;
  List.iter
    (fun (n : Dgraph.node) ->
      ignore (Dgraph.B.add b ~name:n.Dgraph.name n.Dgraph.op n.Dgraph.inputs))
    g.Dgraph.nodes;
  (b, Dgraph.infer_all g)

let backward ~(loss : string) ?(wrt : string list option) (g : Dgraph.t) : t =
  let b, infos = builder_of g in
  let shape_of t =
    match SMap.find_opt t infos with
    | Some i -> i.Program.shape
    | None -> invalid_arg ("Autodiff: unknown tensor " ^ t)
  in
  (match SMap.find_opt loss infos with
  | Some i when Shape.numel i.Program.shape = 1 -> ()
  | Some _ -> invalid_arg "Autodiff: loss must have a single element"
  | None -> invalid_arg ("Autodiff: unknown loss tensor " ^ loss));
  let wrt =
    match wrt with Some l -> l | None -> List.map fst g.Dgraph.inputs
  in
  (* gradient accumulation map: tensor -> current gradient tensor *)
  let grads = ref SMap.empty in
  let counter = ref 0 in
  let fresh prefix =
    incr counter;
    Fmt.str "%s~%d" prefix !counter
  in
  let add ?name op inputs =
    let name = match name with Some n -> n | None -> fresh "bwd" in
    Dgraph.B.add b ~name op inputs
  in
  let accumulate tensor contribution =
    match SMap.find_opt tensor !grads with
    | None -> grads := SMap.add tensor contribution !grads
    | Some existing ->
        let s =
          add ~name:(fresh ("d_" ^ tensor))
            (Op.Binary Expr.Add) [ existing; contribution ]
        in
        grads := SMap.add tensor s !grads
  in
  (* ones with the shape of an existing tensor, built as affine(0,1) *)
  let ones_like tensor =
    add ~name:(fresh ("ones_" ^ tensor))
      (Op.Affine { scale = 0.; shift = 1. })
      [ tensor ]
  in
  (* seed: d loss / d loss = 1 *)
  grads := SMap.add loss (ones_like loss) !grads;
  (* transposed view helper; vertical transformation folds these away *)
  let transpose2 tensor =
    add ~name:(fresh (tensor ^ "_T")) (Op.Transpose [| 1; 0 |]) [ tensor ]
  in
  let node_backward (n : Dgraph.node) (g_out : string) =
    let x i = List.nth n.Dgraph.inputs i in
    match n.Dgraph.op with
    | Op.Matmul ->
        (* C = A B: dA = dC Bt, dB = At dC *)
        accumulate (x 0) (add Op.Matmul_nt [ g_out; x 1 ]);
        accumulate (x 1) (add Op.Matmul [ transpose2 (x 0); g_out ])
    | Op.Matmul_nt ->
        (* C = A Bt: dA = dC B, dB = dCt A *)
        accumulate (x 0) (add Op.Matmul [ g_out; x 1 ]);
        accumulate (x 1) (add Op.Matmul [ transpose2 g_out; x 0 ])
    | Op.Gemv ->
        (* y = W v: dW = outer(dy, v), dv = Wt dy *)
        let m = (shape_of (x 0)).(0) and k = (shape_of (x 0)).(1) in
        let dy_col = add (Op.Reshape [| m; 1 |]) [ g_out ] in
        let v_row = add (Op.Reshape [| 1; k |]) [ x 1 ] in
        accumulate (x 0) (add Op.Matmul [ dy_col; v_row ]);
        accumulate (x 1) (add Op.Gemv [ transpose2 (x 0); g_out ])
    | Op.Bias_add ->
        accumulate (x 0) g_out;
        (* bias gradient: sum over every leading axis *)
        let rec reduce_leading t rank =
          if rank <= 1 then t
          else
            reduce_leading
              (add (Op.Reduce { op = Te.Sum; axis = 0 }) [ t ])
              (rank - 1)
        in
        accumulate (x 1)
          (reduce_leading g_out (Array.length (shape_of (x 0))))
    | Op.Scale c -> accumulate (x 0) (add (Op.Scale c) [ g_out ])
    | Op.Affine { scale; _ } ->
        accumulate (x 0) (add (Op.Scale scale) [ g_out ])
    | Op.Unary u -> (
        let y = n.Dgraph.name in
        match u with
        | Expr.Neg -> accumulate (x 0) (add (Op.Scale (-1.)) [ g_out ])
        | Expr.Exp ->
            accumulate (x 0) (add (Op.Binary Expr.Mul) [ g_out; y ])
        | Expr.Relu ->
            let mask = add (Op.Unary Expr.Step) [ x 0 ] in
            accumulate (x 0) (add (Op.Binary Expr.Mul) [ g_out; mask ])
        | Expr.Sigmoid ->
            (* y (1 - y) *)
            let one_minus =
              add (Op.Affine { scale = -1.; shift = 1. }) [ y ]
            in
            let d = add (Op.Binary Expr.Mul) [ y; one_minus ] in
            accumulate (x 0) (add (Op.Binary Expr.Mul) [ g_out; d ])
        | Expr.Tanh ->
            (* 1 - y^2 *)
            let sq = add (Op.Binary Expr.Mul) [ y; y ] in
            let d = add (Op.Affine { scale = -1.; shift = 1. }) [ sq ] in
            accumulate (x 0) (add (Op.Binary Expr.Mul) [ g_out; d ])
        | Expr.Sqrt ->
            (* 1 / (2 y) *)
            let r = add (Op.Unary Expr.Recip) [ y ] in
            let d = add (Op.Scale 0.5) [ r ] in
            accumulate (x 0) (add (Op.Binary Expr.Mul) [ g_out; d ])
        | Expr.Erf ->
            (* 2/sqrt(pi) * exp(-x^2) *)
            let sq = add (Op.Binary Expr.Mul) [ x 0; x 0 ] in
            let nsq = add (Op.Scale (-1.)) [ sq ] in
            let e = add (Op.Unary Expr.Exp) [ nsq ] in
            let d = add (Op.Scale (2. /. sqrt Float.pi)) [ e ] in
            accumulate (x 0) (add (Op.Binary Expr.Mul) [ g_out; d ])
        | Expr.Log | Expr.Rsqrt | Expr.Abs | Expr.Recip | Expr.Step ->
            unsupported n.Dgraph.op)
    | Op.Binary bop -> (
        let sa = shape_of (x 0) and sb = shape_of (x 1) in
        if not (Shape.equal sa sb) then unsupported n.Dgraph.op
        else
          match bop with
          | Expr.Add ->
              accumulate (x 0) g_out;
              accumulate (x 1) g_out
          | Expr.Sub ->
              accumulate (x 0) g_out;
              accumulate (x 1) (add (Op.Scale (-1.)) [ g_out ])
          | Expr.Mul ->
              accumulate (x 0) (add (Op.Binary Expr.Mul) [ g_out; x 1 ]);
              accumulate (x 1) (add (Op.Binary Expr.Mul) [ g_out; x 0 ])
          | Expr.Max ->
              (* subgradient: the larger operand gets the gradient *)
              let diff = add (Op.Binary Expr.Sub) [ x 0; x 1 ] in
              let m0 = add (Op.Unary Expr.Step) [ diff ] in
              let m1 = add (Op.Affine { scale = -1.; shift = 1. }) [ m0 ] in
              accumulate (x 0)
                (add (Op.Binary Expr.Mul) [ g_out; m0 ]);
              accumulate (x 1)
                (add (Op.Binary Expr.Mul) [ g_out; m1 ])
          | Expr.Div | Expr.Min | Expr.Pow -> unsupported n.Dgraph.op)
    | Op.Rowwise Expr.Add ->
        accumulate (x 0) g_out;
        accumulate (x 1) (add (Op.Reduce { op = Te.Sum; axis = Array.length (shape_of (x 0)) - 1 }) [ g_out ])
    | Op.Rowwise Expr.Sub ->
        accumulate (x 0) g_out;
        let s =
          add (Op.Reduce { op = Te.Sum; axis = Array.length (shape_of (x 0)) - 1 }) [ g_out ]
        in
        accumulate (x 1) (add (Op.Scale (-1.)) [ s ])
    | Op.Reshape _ ->
        accumulate (x 0) (add (Op.Reshape (shape_of (x 0))) [ g_out ])
    | Op.Transpose p ->
        let inv = Array.make (Array.length p) 0 in
        Array.iteri (fun i d -> inv.(d) <- i) p;
        accumulate (x 0) (add (Op.Transpose inv) [ g_out ])
    | Op.Concat { axis } ->
        let start = ref 0 in
        List.iter
          (fun inp ->
            let s = shape_of inp in
            let starts = Array.make (Array.length s) 0 in
            starts.(axis) <- !start;
            start := !start + s.(axis);
            accumulate inp (add (Op.Slice { starts; sizes = s }) [ g_out ]))
          n.Dgraph.inputs
    | Op.Softmax ->
        (* dx = y * (dy - sum(dy * y, last)) *)
        let y = n.Dgraph.name in
        let rank = Array.length (shape_of (x 0)) in
        let prod = add (Op.Binary Expr.Mul) [ g_out; y ] in
        let s = add (Op.Reduce { op = Te.Sum; axis = rank - 1 }) [ prod ] in
        let centered = add (Op.Rowwise Expr.Sub) [ g_out; s ] in
        accumulate (x 0) (add (Op.Binary Expr.Mul) [ y; centered ])
    | Op.Reduce { op = Te.Sum; axis } ->
        (* broadcast the gradient back along the reduced axis *)
        let sx = shape_of (x 0) in
        let rank = Array.length sx in
        if axis <> rank - 1 then begin
          (* move the axis last via transpose, then rowwise *)
          let perm =
            Array.of_list
              (List.filter (fun d -> d <> axis) (List.init rank Fun.id)
              @ [ axis ])
          in
          let ones = ones_like (x 0) in
          let ones_t = add (Op.Transpose perm) [ ones ] in
          let bcast = add (Op.Rowwise Expr.Mul) [ ones_t; g_out ] in
          let inv = Array.make rank 0 in
          Array.iteri (fun i d -> inv.(d) <- i) perm;
          accumulate (x 0) (add (Op.Transpose inv) [ bcast ])
        end
        else begin
          let ones = ones_like (x 0) in
          accumulate (x 0) (add (Op.Rowwise Expr.Mul) [ ones; g_out ])
        end
    | Op.Global_avg_pool ->
        (* spread d_out/(h*w) over the spatial dims *)
        let sx = shape_of (x 0) in
        let inv = 1. /. float_of_int (sx.(2) * sx.(3)) in
        let scaled = add (Op.Scale inv) [ g_out ] in
        let ones = ones_like (x 0) in
        accumulate (x 0) (add Op.Scale_channels [ ones; scaled ])
    | Op.Scale_channels ->
        (* y = x * s[n,c]: dx = dy * s (broadcast); ds = sum_hw (dy * x) *)
        let prod = add (Op.Binary Expr.Mul) [ g_out; x 0 ] in
        let sx = shape_of (x 0) in
        let hw = sx.(2) * sx.(3) in
        let pooled = add Op.Global_avg_pool [ prod ] in
        accumulate (x 1) (add (Op.Scale (float_of_int hw)) [ pooled ]);
        let ones = ones_like (x 0) in
        let s_b = add Op.Scale_channels [ ones; x 1 ] in
        accumulate (x 0) (add (Op.Binary Expr.Mul) [ g_out; s_b ])
    | op -> unsupported op
  in
  (* walk forward nodes in reverse *)
  List.iter
    (fun (n : Dgraph.node) ->
      match SMap.find_opt n.Dgraph.name !grads with
      | None -> () (* not on any path to the loss *)
      | Some g_out -> node_backward n g_out)
    (List.rev g.Dgraph.nodes);
  (* final per-input gradients *)
  let gradient_of =
    List.fold_left
      (fun acc input ->
        match SMap.find_opt input !grads with
        | Some gname -> SMap.add input gname acc
        | None -> acc)
      SMap.empty wrt
  in
  let grad_outputs = List.map snd (SMap.bindings gradient_of) in
  (* forward tensors read by backward nodes: they must stay materialized *)
  let forward_names =
    SSet.of_list (List.map (fun (n : Dgraph.node) -> n.Dgraph.name) g.Dgraph.nodes)
  in
  let full = Dgraph.B.finish b ~outputs:(g.Dgraph.outputs @ grad_outputs) in
  let backward_nodes =
    List.filteri
      (fun i _ -> i >= List.length g.Dgraph.nodes)
      full.Dgraph.nodes
  in
  let saved =
    List.fold_left
      (fun acc (n : Dgraph.node) ->
        List.fold_left
          (fun acc i -> if SSet.mem i forward_names then SSet.add i acc else acc)
          acc n.Dgraph.inputs)
      SSet.empty backward_nodes
    |> SSet.elements
  in
  (* §9: intermediates needed for gradients stay in global memory — make
     them observable so no transformation can elide them *)
  let outputs =
    g.Dgraph.outputs @ grad_outputs
    @ List.filter (fun s -> not (List.mem s g.Dgraph.outputs)) saved
  in
  let graph = { full with Dgraph.outputs } in
  { graph; gradient_of; saved }

let gradient t input = SMap.find_opt input t.gradient_of
