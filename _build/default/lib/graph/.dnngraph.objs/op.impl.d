lib/graph/op.ml: Array Expr Fmt List Shape Te
