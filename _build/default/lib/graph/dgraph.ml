(** Model computation graphs: named operator nodes over named tensors.
    Each node produces exactly one tensor, named after the node.  The graph
    is what a front-end (TensorFlow/ONNX in the paper) would hand to the
    compiler; our models in [lib/models] construct these directly. *)

type node = { name : string; op : Op.t; inputs : string list }

type t = {
  inputs : (string * Program.tensor_info) list;
  nodes : node list;  (** topological order *)
  outputs : string list;
}

module SMap = Map.Make (String)

(** Shape and dtype of every tensor in the graph, by running shape
    inference over the nodes.  Fails on the first ill-typed node. *)
let infer_all (g : t) : Program.tensor_info SMap.t =
  let init =
    List.fold_left
      (fun m (n, i) -> SMap.add n i m)
      SMap.empty g.inputs
  in
  List.fold_left
    (fun m node ->
      let ins =
        List.map
          (fun i ->
            match SMap.find_opt i m with
            | Some info -> info
            | None ->
                invalid_arg
                  (Fmt.str "Graph: node %s reads undefined tensor %s"
                     node.name i))
          node.inputs
      in
      let shape =
        Op.infer_shape node.op (List.map (fun i -> i.Program.shape) ins)
      in
      let dtype =
        match ins with [] -> Dtype.F32 | i :: _ -> i.Program.dtype
      in
      SMap.add node.name { Program.shape; dtype } m)
    init g.nodes

let tensor_info g name = SMap.find_opt name (infer_all g)

let validate (g : t) =
  match infer_all g with
  | exception Invalid_argument m -> Error m
  | all ->
      let missing =
        List.filter (fun o -> not (SMap.mem o all)) g.outputs
      in
      if missing = [] then Ok ()
      else Error ("Graph: undefined outputs " ^ String.concat "," missing)

let num_nodes g = List.length g.nodes

let pp ppf g =
  Fmt.pf ppf "@[<v>graph (%d nodes):@," (num_nodes g);
  List.iter
    (fun (n, (i : Program.tensor_info)) ->
      Fmt.pf ppf "  input %s : %s@," n (Shape.to_string i.Program.shape))
    g.inputs;
  List.iter
    (fun n ->
      Fmt.pf ppf "  %s = %s(%s)@," n.name (Op.to_string n.op)
        (String.concat ", " n.inputs))
    g.nodes;
  Fmt.pf ppf "  outputs: %s@]" (String.concat ", " g.outputs)

(** Imperative builder used by the model zoo: create, declare inputs, chain
    ops (each [add] returns the tensor name for further chaining), finish. *)
module B = struct
  type builder = {
    mutable rev_inputs : (string * Program.tensor_info) list;
    mutable rev_nodes : node list;
    mutable counter : int;
  }

  let create () = { rev_inputs = []; rev_nodes = []; counter = 0 }

  let input b name ?(dtype = Dtype.F32) shape =
    b.rev_inputs <- (name, { Program.shape; dtype }) :: b.rev_inputs;
    name

  let fresh b prefix =
    b.counter <- b.counter + 1;
    let sanitized =
      String.map
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
          | _ -> '_')
        prefix
    in
    Fmt.str "%s_%d" sanitized b.counter

  let add b ?name op inputs =
    let name = match name with Some n -> n | None -> fresh b (Op.to_string op) in
    b.rev_nodes <- { name; op; inputs } :: b.rev_nodes;
    name

  let finish b ~outputs =
    {
      inputs = List.rev b.rev_inputs;
      nodes = List.rev b.rev_nodes;
      outputs;
    }
end
