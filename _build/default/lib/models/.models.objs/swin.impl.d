lib/models/swin.ml: B Dgraph Expr Fmt List Mcommon Op Te
