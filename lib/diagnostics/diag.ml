(** Typed compiler diagnostics.

    Every pipeline pass reports failures as a value of {!t} instead of an
    untyped exception string: which pass failed, which TE / subprogram /
    kernel it was working on, how severe the problem is, and — when the
    driver knows one — a recovery hint.  {!Souffle.compile} threads these
    through its graceful-degradation ladder and records them in the final
    report, so a production deployment can log exactly what was retried at
    a lower optimization level and why. *)

type pass =
  | Validate    (** input-program well-formedness ({!Program.validate}) *)
  | Analysis    (** §5 global computation-graph analysis *)
  | Horizontal  (** §6.1 horizontal TE transformation *)
  | Vertical    (** §6.2 vertical TE transformation *)
  | Schedule    (** §6.3 Ansor-style schedule search *)
  | Partition   (** §5.4 resource-aware partitioning *)
  | Emit        (** §6.3–§6.5 kernel emission *)
  | Verify_ir   (** static kernel-IR verification (pre-launch checks) *)
  | Dataflow    (** cross-kernel dataflow verification (tensor provenance) *)
  | Simulate    (** analytical device simulation *)
  | Serve       (** serving-time request lifecycle (faults, deadlines, shedding) *)

let pass_name = function
  | Validate -> "validate"
  | Analysis -> "analysis"
  | Horizontal -> "horizontal"
  | Vertical -> "vertical"
  | Schedule -> "schedule"
  | Partition -> "partition"
  | Emit -> "emit"
  | Verify_ir -> "verify-ir"
  | Dataflow -> "dataflow"
  | Simulate -> "simulate"
  | Serve -> "serve"

let pass_of_string = function
  | "validate" -> Some Validate
  | "analysis" -> Some Analysis
  | "horizontal" -> Some Horizontal
  | "vertical" -> Some Vertical
  | "schedule" -> Some Schedule
  | "partition" -> Some Partition
  | "emit" -> Some Emit
  | "verify-ir" | "verify_ir" -> Some Verify_ir
  | "dataflow" -> Some Dataflow
  | "simulate" | "sim" -> Some Simulate
  | "serve" -> Some Serve
  | _ -> None

type severity = Info | Warning | Error

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

type t = {
  pass : pass;
  severity : severity;
  subject : string option;
      (** the TE, subprogram, or kernel the diagnostic is about *)
  message : string;
  hint : string option;  (** suggested recovery, e.g. "retry at V2" *)
}

let make ?subject ?hint ~severity pass message =
  { pass; severity; subject; message; hint }

let error ?subject ?hint pass message =
  make ?subject ?hint ~severity:Error pass message

let warning ?subject ?hint pass message =
  make ?subject ?hint ~severity:Warning pass message

let info ?subject ?hint pass message =
  make ?subject ?hint ~severity:Info pass message

let is_error d = d.severity = Error

let pp ppf d =
  Fmt.pf ppf "%s[%s]%a: %s%a" (severity_name d.severity) (pass_name d.pass)
    Fmt.(option (fun ppf s -> pf ppf " %s" s))
    d.subject d.message
    Fmt.(option (fun ppf h -> pf ppf " (hint: %s)" h))
    d.hint

let to_string d = Fmt.str "%a" pp d

(** Raised by the fault-injection harness ({!Faultinject}) to make a pass
    fail with a structured diagnostic attached. *)
exception Injected of t

(** Convert an escaped exception into a typed diagnostic attributed to
    [pass].  Injected faults keep their own diagnostic. *)
let of_exn ?subject pass = function
  | Injected d -> d
  | Failure m -> error ?subject pass m
  | Invalid_argument m -> error ?subject pass m
  | e -> error ?subject pass (Printexc.to_string e)

(** Run [f], converting any escaped exception into [Error diag]. *)
let guard ?subject pass (f : unit -> 'a) : ('a, t) result =
  match f () with v -> Ok v | exception e -> Error (of_exn ?subject pass e)
