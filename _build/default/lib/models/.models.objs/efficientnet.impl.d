lib/models/efficientnet.ml: B Dgraph Expr Fmt List Op
