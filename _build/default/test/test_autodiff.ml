(* Tests for the §9 training extension: reverse-mode autodiff at graph
   level, checked against central finite differences on the reference
   interpreter, plus the "keep backward-needed intermediates in global
   memory" fusion restriction. *)

open Dgraph

(* scalar loss value of a graph on an environment *)
let loss_value (p : Program.t) env ~loss =
  let out = Interp.run_env p env in
  Nd.get_flat (Interp.lookup out loss) 0

(* central finite difference of d loss / d input[j] *)
let fd_gradient (p : Program.t) env ~loss ~input j =
  let eps = 1e-4 in
  let perturb delta =
    let env' =
      Program.SMap.mapi
        (fun name nd ->
          if name = input then begin
            let c = Nd.copy nd in
            Nd.set_flat c j (Nd.get_flat c j +. delta);
            c
          end
          else nd)
        env
    in
    loss_value p env' ~loss
  in
  (perturb eps -. perturb (-.eps)) /. (2. *. eps)

(* compare the autodiff gradients of [graph] w.r.t. [wrt] against finite
   differences, on every element of each gradient *)
let check_gradients ?(tol = 2e-3) (graph : Dgraph.t) ~loss ~wrt =
  let ad = Autodiff.backward ~loss ~wrt graph in
  (match Dgraph.validate ad.Autodiff.graph with
  | Ok () -> ()
  | Error m -> Alcotest.failf "backward graph invalid: %s" m);
  let p_full = Lower.run ad.Autodiff.graph in
  let p_fwd = Lower.run graph in
  let env = Interp.random_inputs ~seed:7 p_fwd in
  let results = Interp.run_env p_full env in
  List.iter
    (fun input ->
      match Autodiff.gradient ad input with
      | None -> Alcotest.failf "no gradient for %s" input
      | Some gname ->
          let g = Interp.lookup results gname in
          for j = 0 to min 11 (Nd.numel g - 1) do
            let expected = fd_gradient p_fwd env ~loss ~input j in
            let got = Nd.get_flat g j in
            if
              Float.abs (got -. expected)
              > tol +. (1e-2 *. Float.abs expected)
            then
              Alcotest.failf "d%s/d%s[%d]: autodiff %.6f vs fd %.6f" loss
                input j got expected
          done)
    wrt

(* reduce a tensor of any rank to a single-element loss of shape (1) *)
let scalarize b ~rank t =
  let cur = ref t in
  for r = rank downto 2 do
    cur :=
      B.add b ~name:(B.fresh b "lred")
        (Op.Reduce { op = Te.Sum; axis = r - 1 })
        [ !cur ]
  done;
  let s = B.add b ~name:(B.fresh b "lred0") (Op.Reduce { op = Te.Sum; axis = 0 }) [ !cur ] in
  B.add b ~name:(B.fresh b "loss") (Op.Reshape [| 1 |]) [ s ]

let mlp_graph () =
  let b = B.create () in
  let x = B.input b "x" [| 1; 6 |] in
  let w1 = B.input b "w1" [| 6; 5 |] in
  let b1 = B.input b "b1" [| 5 |] in
  let w2 = B.input b "w2" [| 5; 3 |] in
  let h = B.add b ~name:"h" Op.Matmul [ x; w1 ] in
  let h = B.add b ~name:"hb" Op.Bias_add [ h; b1 ] in
  let h = B.add b ~name:"ha" (Op.Unary Expr.Tanh) [ h ] in
  let y = B.add b ~name:"y" Op.Matmul [ h; w2 ] in
  let sq = B.add b ~name:"sq" (Op.Binary Expr.Mul) [ y; y ] in
  let l = scalarize b ~rank:2 sq in
  (B.finish b ~outputs:[ l ], l)

let test_mlp_gradients () =
  let g, loss = mlp_graph () in
  check_gradients g ~loss ~wrt:[ "w1"; "b1"; "w2"; "x" ]

let test_unary_gradients () =
  List.iter
    (fun (name, u) ->
      let b = B.create () in
      let x = B.input b "x" [| 1; 4 |] in
      let y = B.add b ~name:"y" (Op.Unary u) [ x ] in
      let sq = B.add b ~name:"sq" (Op.Binary Expr.Mul) [ y; y ] in
      let l = scalarize b ~rank:2 sq in
      ignore name;
      check_gradients (B.finish b ~outputs:[ l ]) ~loss:l ~wrt:[ "x" ])
    [ ("sigmoid", Expr.Sigmoid); ("tanh", Expr.Tanh); ("exp", Expr.Exp);
      ("neg", Expr.Neg); ("erf", Expr.Erf) ]

let test_relu_gradient_off_kink () =
  (* relu is non-smooth at 0; shift inputs away from it *)
  let b = B.create () in
  let x = B.input b "x" [| 1; 4 |] in
  let shifted = B.add b ~name:"s" (Op.Affine { scale = 1.0; shift = 2.0 }) [ x ] in
  let y = B.add b ~name:"y" (Op.Unary Expr.Relu) [ shifted ] in
  let sq = B.add b ~name:"sq" (Op.Binary Expr.Mul) [ y; y ] in
  let l = scalarize b ~rank:2 sq in
  check_gradients (B.finish b ~outputs:[ l ]) ~loss:l ~wrt:[ "x" ]

let test_softmax_gradient () =
  (* loss = sum(t * softmax(x)) exposes the full softmax jacobian *)
  let b = B.create () in
  let x = B.input b "x" [| 2; 5 |] in
  let t = B.input b "t" [| 2; 5 |] in
  let y = B.add b ~name:"y" Op.Softmax [ x ] in
  let w = B.add b ~name:"w" (Op.Binary Expr.Mul) [ t; y ] in
  let l = scalarize b ~rank:2 w in
  check_gradients (B.finish b ~outputs:[ l ]) ~loss:l ~wrt:[ "x" ]

let test_gemv_gradient () =
  let b = B.create () in
  let w = B.input b "w" [| 4; 3 |] in
  let v = B.input b "v" [| 3 |] in
  let y = B.add b ~name:"y" Op.Gemv [ w; v ] in
  let sq = B.add b ~name:"sq" (Op.Binary Expr.Mul) [ y; y ] in
  let l = scalarize b ~rank:1 sq in
  check_gradients (B.finish b ~outputs:[ l ]) ~loss:l ~wrt:[ "w"; "v" ]

let test_layout_op_gradients () =
  (* transpose and reshape are linear: gradients flow through exactly *)
  let b = B.create () in
  let x = B.input b "x" [| 2; 6 |] in
  let t = B.add b ~name:"t" (Op.Transpose [| 1; 0 |]) [ x ] in
  let r = B.add b ~name:"r" (Op.Reshape [| 3; 4 |]) [ t ] in
  let sq = B.add b ~name:"sq" (Op.Binary Expr.Mul) [ r; r ] in
  let l = scalarize b ~rank:2 sq in
  check_gradients (B.finish b ~outputs:[ l ]) ~loss:l ~wrt:[ "x" ]

let test_concat_gradient () =
  let b = B.create () in
  let x = B.input b "x" [| 2; 3 |] in
  let y = B.input b "y" [| 1; 3 |] in
  let c = B.add b ~name:"c" (Op.Concat { axis = 0 }) [ x; y ] in
  let sq = B.add b ~name:"sq" (Op.Binary Expr.Mul) [ c; c ] in
  let l = scalarize b ~rank:2 sq in
  check_gradients (B.finish b ~outputs:[ l ]) ~loss:l ~wrt:[ "x"; "y" ]

let test_mmoe_trains () =
  (* end to end: gradients of a real model's weights *)
  let g = Mmoe.create ~cfg:Mmoe.tiny () in
  (* scalar loss: sum of the two task heads *)
  let b = B.create () in
  List.iter
    (fun (n, (i : Program.tensor_info)) ->
      ignore (B.input b n ~dtype:i.Program.dtype i.Program.shape))
    g.Dgraph.inputs;
  List.iter
    (fun (n : Dgraph.node) ->
      ignore (B.add b ~name:n.Dgraph.name n.Dgraph.op n.Dgraph.inputs))
    g.Dgraph.nodes;
  let s =
    B.add b ~name:"both" (Op.Binary Expr.Add)
      [ List.nth g.Dgraph.outputs 0; List.nth g.Dgraph.outputs 1 ]
  in
  let l = scalarize b ~rank:2 s in
  let g = B.finish b ~outputs:[ l ] in
  check_gradients ~tol:5e-3 g ~loss:l ~wrt:[ "expert0_w"; "gate0_w"; "tower0_w" ]

let test_saved_tensors_materialized () =
  (* the §9 restriction: forward intermediates the backward pass reads are
     graph outputs, so Souffle cannot elide them and they end up in DRAM *)
  let g, loss = mlp_graph () in
  let ad = Autodiff.backward ~loss g in
  Alcotest.(check bool) "some tensors saved" true
    (List.length ad.Autodiff.saved > 0);
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " is an output") true
        (List.mem s ad.Autodiff.graph.Dgraph.outputs))
    ad.Autodiff.saved;
  let r = Souffle.compile (Lower.run ad.Autodiff.graph) in
  (match Souffle.verify ~rtol:1e-3 r with
  | Ok () -> ()
  | Error m -> Alcotest.failf "training graph not preserved: %s" m);
  (* every saved tensor survives the transformations *)
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " survives") true
        (Option.is_some (Program.find_te r.Souffle.transformed s)))
    ad.Autodiff.saved

let test_training_graph_compiles_faster_fused () =
  (* Souffle still helps training steps, just less than inference *)
  let g, loss = mlp_graph () in
  let ad = Autodiff.backward ~loss g in
  let p = Lower.run ad.Autodiff.graph in
  let v0 = Souffle.compile ~cfg:(Souffle.config ~level:Souffle.V0 ()) p in
  let v4 = Souffle.compile p in
  Alcotest.(check bool) "V4 no slower than V0" true
    (Souffle.time_ms v4 <= Souffle.time_ms v0 *. 1.01)

let test_unsupported_raises () =
  let b = B.create () in
  let x = B.input b "x" [| 1; 4 |] in
  let y = B.add b ~name:"y" (Op.Unary Expr.Log) [ x ] in
  let l = B.add b ~name:"l" (Op.Reduce { op = Te.Sum; axis = 1 }) [ y ] in
  let g = B.finish b ~outputs:[ l ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Autodiff.backward ~loss:l g);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "mlp gradients vs finite differences" `Quick
      test_mlp_gradients;
    Alcotest.test_case "unary gradients" `Quick test_unary_gradients;
    Alcotest.test_case "relu gradient" `Quick test_relu_gradient_off_kink;
    Alcotest.test_case "softmax gradient" `Quick test_softmax_gradient;
    Alcotest.test_case "gemv gradient" `Quick test_gemv_gradient;
    Alcotest.test_case "layout op gradients" `Quick test_layout_op_gradients;
    Alcotest.test_case "concat gradient" `Quick test_concat_gradient;
    Alcotest.test_case "mmoe end-to-end gradients" `Slow test_mmoe_trains;
    Alcotest.test_case "saved tensors materialized" `Quick
      test_saved_tensors_materialized;
    Alcotest.test_case "training graph compiles" `Quick
      test_training_graph_compiles_faster_fused;
    Alcotest.test_case "unsupported op raises" `Quick test_unsupported_raises;
  ]
