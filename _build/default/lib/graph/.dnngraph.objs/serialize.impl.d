lib/graph/serialize.ml: Array Buffer Dgraph Dtype Expr Fmt List Op Program Result Shape String Te
