(** Souffle: the end-to-end top-down compilation pipeline (§4, Algorithm 1).

    [compile] lowers nothing itself — it takes a TE {!Program.t} (use
    {!Lower.run} to get one from a graph) and drives:

    + global computation-graph analysis (§5),
    + horizontal transformation of independent TEs (§6.1),
    + vertical transformation of one-relies-on-one chains (§6.2),
    + Ansor scheduling of the (transformed) TEs (§6.3),
    + resource-aware partitioning into subprograms (§5.4),
    + schedule merging with predicates and grid synchronization (§6.4),
    + instruction pipelining and LRU tensor-buffer reuse (§6.5),

    and finally runs the resulting kernels on the analytical A100 model.
    The optimization level reproduces Table 4's ablation: V0 is plain
    TVM+Ansor codegen, each level adds one Souffle mechanism. *)

type level = V0 | V1 | V2 | V3 | V4

let level_to_string = function
  | V0 -> "V0 (Ansor baseline)"
  | V1 -> "V1 (+horizontal)"
  | V2 -> "V2 (+vertical)"
  | V3 -> "V3 (+global sync)"
  | V4 -> "V4 (+subprogram opt)"

let level_rank = function V0 -> 0 | V1 -> 1 | V2 -> 2 | V3 -> 3 | V4 -> 4

type config = {
  device : Device.t;
  level : level;
  ansor : Ansor.config;
}

let default_config =
  { device = Device.a100; level = V4; ansor = Ansor.default_config }

let config ?(device = Device.a100) ?(level = V4)
    ?(ansor = Ansor.default_config) () =
  { device; level; ansor }

type report = {
  cfg : config;
  original : Program.t;
  transformed : Program.t;
  analysis : Analysis.t;
  partition : Partition.t option;
  groups : Emit.group list;
  prog : Kernel_ir.prog;
  sim : Sim.result;
  hstats : Horizontal.stats;
  vstats : Vertical.stats;
  compile_s : float;  (** wall-clock seconds spent in Souffle's own passes *)
}

(* TVM/Ansor-style grouping for levels below V3: every reduction TE starts a
   kernel and absorbs its one-relies-on-one consumers (classic epilogue
   fusion); leading elementwise TEs form their own kernels. *)
let ansor_groups (p : Program.t) : Emit.group list =
  let rev_groups = ref [] and cur = ref [] in
  let flush () =
    if !cur <> [] then begin
      rev_groups :=
        {
          Emit.g_tes = List.rev_map (fun (te : Te.t) -> te.Te.name) !cur;
          cooperative = false;
          library_call = false;
          eff_override = None;
        }
        :: !rev_groups;
      cur := []
    end
  in
  List.iter
    (fun (te : Te.t) ->
      if Te.has_reduction te then begin
        flush ();
        cur := [ te ]
      end
      else begin
        (* attach to the current group when it consumes it, else keep as a
           standalone elementwise kernel *)
        let produced_in_cur =
          List.exists
            (fun i ->
              List.exists (fun (x : Te.t) -> x.Te.name = i) !cur)
            (Te.inputs te)
        in
        if produced_in_cur && !cur <> [] then cur := te :: !cur
        else begin
          flush ();
          cur := [ te ];
          flush ()
        end
      end)
    p.Program.tes;
  flush ();
  List.rev !rev_groups

let compile ?(cfg = default_config) (p : Program.t) : report =
  let t0 = Unix.gettimeofday () in
  let rank = level_rank cfg.level in
  (* 1-2. lowering is the caller's; validate and analyze *)
  (match Program.validate p with
  | Ok () -> ()
  | Error m -> invalid_arg ("Souffle.compile: invalid program: " ^ m));
  (* 3. horizontal transformation (V1+) *)
  let p1, hstats =
    if rank >= 1 then Horizontal.apply p
    else (p, { Horizontal.groups_merged = 0; tes_eliminated = 0 })
  in
  (* 4. vertical transformation (V2+) *)
  let p2, vstats =
    if rank >= 2 then Vertical.apply ~fold_into_reduce:true p1
    else (p1, { Vertical.chains_fused = 0; movement_folded = 0 })
  in
  (* 5. re-analyze and schedule the transformed program *)
  let an = Analysis.run p2 in
  let scheds = Ansor.schedule_program ~config:cfg.ansor cfg.device p2 in
  (* 6. resource-aware partitioning (V3+) *)
  let partition, groups =
    if rank >= 3 then begin
      let part = Partition.run cfg.device an scheds in
      ( Some part,
        List.map Emit.group_of_subprogram part.Partition.subprograms )
    end
    else (None, ansor_groups p2)
  in
  (* 7. emit kernels with subprogram-level optimizations (V4+) *)
  let opts =
    {
      Emit.default_options with
      Emit.reuse_cache = rank >= 4;
      pipeline = rank >= 4;
      attach_epilogue = true;
      attach_prologue = rank >= 2;
    }
  in
  let prog = Emit.emit cfg.device p2 an scheds opts groups in
  let sim = Sim.run cfg.device prog in
  let compile_s = Unix.gettimeofday () -. t0 in
  {
    cfg;
    original = p;
    transformed = p2;
    analysis = an;
    partition;
    groups;
    prog;
    sim;
    hstats;
    vstats;
    compile_s;
  }

(** Compile a model graph end to end. *)
let compile_graph ?cfg (g : Dgraph.t) : report = compile ?cfg (Lower.run g)

(** Check that the transformed program computes the same outputs as the
    original (the semantic-preservation guarantee, via the reference
    interpreter).  Heavy: meant for tests and small programs. *)
let verify ?(rtol = 1e-4) (r : report) : (unit, string) result =
  Interp.equivalent ~rtol r.original r.transformed

let time_ms (r : report) = Sim.time_ms r.sim
let num_kernels (r : report) = List.length r.prog.Kernel_ir.kernels

let summary ppf (r : report) =
  Fmt.pf ppf
    "@[<v>level: %s@,TEs: %d -> %d (horizontal: %d groups, vertical: %d fused)@,\
     kernels: %d, grid syncs: %d@,time: %.3f ms@,\
     DRAM loads: %.2f MB, stores: %.2f MB@,compile time: %.2f s@]"
    (level_to_string r.cfg.level)
    (List.length r.original.Program.tes)
    (List.length r.transformed.Program.tes)
    r.hstats.Horizontal.groups_merged
    (r.vstats.Vertical.chains_fused + r.vstats.Vertical.movement_folded)
    (num_kernels r) r.sim.Sim.total.Counters.grid_syncs (time_ms r)
    (Counters.mb (Counters.global_load_bytes r.sim.Sim.total))
    (Counters.mb r.sim.Sim.total.Counters.dram_write_bytes)
    r.compile_s

let cuda_source (r : report) = Codegen_cuda.to_string r.prog

(** Per-TE loop nests (TensorIR level, Fig. 2 step 5) for the first
    [limit] TEs of the transformed program — the detailed view behind the
    kernel-level rendering of {!cuda_source}. *)
let te_loop_nests ?(limit = 4) (r : report) : string =
  let scheds =
    Ansor.schedule_program ~config:r.cfg.ansor r.cfg.device r.transformed
  in
  r.transformed.Program.tes
  |> List.filteri (fun i _ -> i < limit)
  |> List.map (fun (te : Te.t) ->
         Tir.render_cuda
           (Tir.of_te r.transformed te (Hashtbl.find scheds te.Te.name)))
  |> String.concat "\n"

