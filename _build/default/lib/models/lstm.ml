(** Stacked LSTM (Hochreiter & Schmidhuber) — Table 2's configuration:
    input length 100 time steps, hidden size 256, 10 stacked cells,
    batch 1, FP32.  The time-step loop is fully unrolled (Fig. 7), so the
    TE graph exposes the wavefront parallelism along the anti-diagonals and
    the temporal reuse of each cell's weight matrices across all steps. *)

open Dgraph

type config = { steps : int; cells : int; hidden : int }

let base = { steps = 100; cells = 10; hidden = 256 }
let tiny = { steps = 3; cells = 2; hidden = 4 }

(* One LSTM cell update at (cell n, step t): the four gates are computed by
   two GEMVs against the concatenated gate weights (1024 x 256), split,
   activated, and combined into the new cell state and hidden state. *)
let cell (b : B.builder) (cfg : config) ~w ~u ~bias ~(x : string)
    ~(h_prev : string) ~(c_prev : string) ~(prefix : string) : string * string
    =
  let hd = cfg.hidden in
  let n name op inputs = B.add b ~name:(prefix ^ "." ^ name) op inputs in
  let gx = n "gx" Op.Gemv [ w; x ] in
  let gh = n "gh" Op.Gemv [ u; h_prev ] in
  let gsum = n "gsum" (Op.Binary Expr.Add) [ gx; gh ] in
  let gates = n "gates" (Op.Binary Expr.Add) [ gsum; bias ] in
  let gate name idx act =
    let s =
      n (name ^ "_slice")
        (Op.Slice { starts = [| idx * hd |]; sizes = [| hd |] })
        [ gates ]
    in
    n name (Op.Unary act) [ s ]
  in
  let i = gate "i" 0 Expr.Sigmoid in
  let f = gate "f" 1 Expr.Sigmoid in
  let g = gate "g" 2 Expr.Tanh in
  let o = gate "o" 3 Expr.Sigmoid in
  let fc = n "fc" (Op.Binary Expr.Mul) [ f; c_prev ] in
  let ig = n "ig" (Op.Binary Expr.Mul) [ i; g ] in
  let c = n "c" (Op.Binary Expr.Add) [ fc; ig ] in
  let ct = n "ct" (Op.Unary Expr.Tanh) [ c ] in
  let h = n "h" (Op.Binary Expr.Mul) [ o; ct ] in
  (h, c)

let create ?(cfg = base) () : Dgraph.t =
  let b = B.create () in
  let hd = cfg.hidden in
  (* per-cell weights, shared across every time step (temporal reuse) *)
  let weights =
    Array.init cfg.cells (fun n ->
        ( B.input b (Fmt.str "w%d" n) [| 4 * hd; hd |],
          B.input b (Fmt.str "u%d" n) [| 4 * hd; hd |],
          B.input b (Fmt.str "b%d" n) [| 4 * hd |] ))
  in
  let xs =
    Array.init cfg.steps (fun t -> B.input b (Fmt.str "x%d" t) [| hd |])
  in
  let h = Array.make cfg.cells "" and c = Array.make cfg.cells "" in
  for n = 0 to cfg.cells - 1 do
    h.(n) <- B.input b (Fmt.str "h0_%d" n) [| hd |];
    c.(n) <- B.input b (Fmt.str "c0_%d" n) [| hd |]
  done;
  let outputs = ref [] in
  for t = 0 to cfg.steps - 1 do
    for n = 0 to cfg.cells - 1 do
      let w, u, bias = weights.(n) in
      let x = if n = 0 then xs.(t) else h.(n - 1) in
      let h', c' =
        cell b cfg ~w ~u ~bias ~x ~h_prev:h.(n) ~c_prev:c.(n)
          ~prefix:(Fmt.str "t%d_n%d" t n)
      in
      h.(n) <- h';
      c.(n) <- c'
    done;
    if t = cfg.steps - 1 then outputs := [ h.(cfg.cells - 1) ]
  done;
  B.finish b ~outputs:!outputs
