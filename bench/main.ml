(* Benchmark harness entry point.

   `dune exec bench/main.exe` regenerates every table and figure of the
   paper's evaluation and then runs the Bechamel micro-benchmarks of the
   compiler passes (one Test.make per table/figure pipeline).  Pass a
   section name to run only that section:

     dune exec bench/main.exe -- table1 table3 table4 table5 fig6 table6
     dune exec bench/main.exe -- overhead bechamel
*)

open Bechamel
open Toolkit

(* one Bechamel test per table/figure: each times the full compile pipeline
   that backs that experiment (the simulated execution is part of the
   artifact, so it is included) *)
let bechamel_tests () =
  let bert_tiny = Lower.run (Bert.create ~cfg:Bert.tiny ()) in
  let mmoe = Lower.run (Mmoe.create ()) in
  let eff_sub = Lower.run (snd (List.hd Efficientnet.sub_modules)) in
  let attention =
    Lower.run
      (Bert.attention_subgraph
         ~cfg:{ Bert.base with Bert.layers = 1; seq = 128 }
         ())
  in
  let lstm_small =
    Lower.run (Lstm.create ~cfg:{ Lstm.steps = 10; cells = 4; hidden = 64 } ())
  in
  let compile p () = ignore (Souffle.compile p) in
  let baseline s p () = ignore (Baseline.run s p) in
  Test.make_grouped ~name:"souffle-bench"
    [
      Test.make ~name:"table1:attention-subgraph-souffle"
        (Staged.stage (compile attention));
      Test.make ~name:"table3:bert-tiny-souffle"
        (Staged.stage (compile bert_tiny));
      Test.make ~name:"table3:bert-tiny-tensorrt"
        (Staged.stage (baseline Baseline.Tensorrt bert_tiny));
      Test.make ~name:"table4:mmoe-ablation-v4" (Staged.stage (compile mmoe));
      Test.make ~name:"table5:mmoe-xla"
        (Staged.stage (baseline Baseline.Xla mmoe));
      Test.make ~name:"fig6:efficientnet-submodule"
        (Staged.stage (compile eff_sub));
      Test.make ~name:"table6:lstm-small-souffle"
        (Staged.stage (compile lstm_small));
      Test.make ~name:"table6:lstm-small-rammer"
        (Staged.stage (baseline Baseline.Rammer lstm_small));
    ]

let run_bechamel () =
  Tables.section "Bechamel — compiler-pass micro-benchmarks (ns per run)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Fmt.pr "  %-40s %12.0f ns/run@." name est
      | _ -> Fmt.pr "  %-40s (no estimate)@." name)
    results

let sections : (string * (unit -> unit)) list =
  [
    ("table1", Tables.table1);
    ("table3", Tables.table3);
    ("table4", Tables.table4);
    ("table5", Tables.table5);
    ("fig6", Tables.fig6);
    ("table6", Tables.table6);
    ("overhead", Tables.overhead);
    ("ablation", Ablation.run);
    ("compile-perf", Compile_perf.run);
    ("compile-perf-smoke", Compile_perf.smoke);
    ("serve-perf", Serve_perf.run);
    ("serve-perf-smoke", Serve_perf.smoke);
    ("serve-chaos", Serve_chaos.run);
    ("serve-chaos-smoke", Serve_chaos.smoke);
    ("mega-perf", Mega_perf.run);
    ("mega-perf-smoke", Mega_perf.smoke);
    ("decode-perf", Decode_perf.run);
    ("decode-perf-smoke", Decode_perf.smoke);
    ("bechamel", run_bechamel);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* --strict-bench: exit non-zero if any model compiled degraded, so CI
     evaluation runs fail loudly instead of publishing tables measured on
     degraded kernels *)
  let strict = List.mem "--strict-bench" args in
  let args = List.filter (fun a -> a <> "--strict-bench") args in
  let chosen = if args = [] then List.map fst sections else args in
  Fmt.pr "Souffle reproduction benchmark harness — device: %a@." Device.pp
    Tables.dev;
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Fmt.epr "unknown section %s (available: %s)@." name
            (String.concat ", " (List.map fst sections)))
    chosen;
  Tables.section "Compilation health";
  Fmt.pr "  %a@." Runlog.pp Tables.runlog;
  let code = Runlog.exit_code ~strict Tables.runlog in
  if code <> 0 then
    Fmt.epr "strict-bench: failing the run over degraded compilations@.";
  exit code
