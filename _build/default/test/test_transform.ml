(* Semantic-preservation tests for horizontal and vertical TE
   transformations — the executable version of the paper's
   "semantic-preserving" claim, checked against the reference interpreter. *)

open Expr

let f32 = Dtype.F32

let input name shape = (name, { Program.shape; dtype = f32 })

let check_equiv ?(rtol = 1e-4) name a b =
  match Interp.equivalent ~rtol a b with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: %s" name m

(* --- vertical ------------------------------------------------------- *)

(* Fig. 4's example: relu -> strided_slice -> permute collapses to one TE. *)
let fig4_program () =
  let a = input "A" [| 4; 8 |] in
  let b = Builder.unary ~name:"B" ~shape:[| 4; 8 |] Relu "A" in
  let c =
    Builder.strided_slice ~name:"C" ~in_shape:[| 4; 8 |] ~axis:0 ~start:0
      ~stride:2 ~size:2 "B"
  in
  let d = Builder.permute ~name:"D" ~in_shape:[| 2; 8 |] ~perm:[| 1; 0 |] "C" in
  Program.make ~inputs:[ a ] ~tes:[ b; c; d ] ~outputs:[ "D" ]

let test_vertical_fig4 () =
  let p = fig4_program () in
  let p', stats = Vertical.apply p in
  Alcotest.(check int) "collapses to a single TE" 1
    (List.length p'.Program.tes);
  Alcotest.(check bool) "some rewrites happened" true
    (stats.Vertical.chains_fused + stats.Vertical.movement_folded >= 2);
  check_equiv "fig4" p p'

let test_vertical_chain_of_elementwise () =
  let x = input "x" [| 6; 6 |] in
  let a = Builder.unary ~name:"a" ~shape:[| 6; 6 |] Sigmoid "x" in
  let b = Builder.unary ~name:"b" ~shape:[| 6; 6 |] Neg "a" in
  let c = Builder.unary ~name:"c" ~shape:[| 6; 6 |] Exp "b" in
  let p = Program.make ~inputs:[ x ] ~tes:[ a; b; c ] ~outputs:[ "c" ] in
  let p', _ = Vertical.apply p in
  Alcotest.(check int) "one TE" 1 (List.length p'.Program.tes);
  check_equiv "elementwise chain" p p'

let test_vertical_movement_into_reduce () =
  (* transpose folded into the GEMM that consumes it *)
  let a = input "A" [| 5; 7 |] and b = input "B" [| 5; 6 |] in
  let at' =
    Builder.permute ~name:"At" ~in_shape:[| 5; 7 |] ~perm:[| 1; 0 |] "A"
  in
  let c = Builder.matmul ~name:"C" ~m:7 ~n:6 ~k:5 "At" "B" in
  let p = Program.make ~inputs:[ a; b ] ~tes:[ at'; c ] ~outputs:[ "C" ] in
  let p', stats = Vertical.apply p in
  Alcotest.(check int) "transpose folded" 1 (List.length p'.Program.tes);
  Alcotest.(check int) "movement fold counted" 1 stats.Vertical.movement_folded;
  check_equiv "transpose into gemm" p p'

let test_vertical_respects_flag () =
  let a = input "A" [| 5; 7 |] and b = input "B" [| 5; 6 |] in
  let at' =
    Builder.permute ~name:"At" ~in_shape:[| 5; 7 |] ~perm:[| 1; 0 |] "A"
  in
  let c = Builder.matmul ~name:"C" ~m:7 ~n:6 ~k:5 "At" "B" in
  let p = Program.make ~inputs:[ a; b ] ~tes:[ at'; c ] ~outputs:[ "C" ] in
  let p', _ = Vertical.apply ~fold_into_reduce:false p in
  Alcotest.(check int) "kept separate" 2 (List.length p'.Program.tes)

let test_vertical_keeps_shared_arith () =
  (* a sigmoid consumed twice must not be duplicated into both consumers *)
  let x = input "x" [| 8 |] in
  let s = Builder.unary ~name:"s" ~shape:[| 8 |] Sigmoid "x" in
  let u = Builder.unary ~name:"u" ~shape:[| 8 |] Neg "s" in
  let v = Builder.unary ~name:"v" ~shape:[| 8 |] Exp "s" in
  let p = Program.make ~inputs:[ x ] ~tes:[ s; u; v ] ~outputs:[ "u"; "v" ] in
  let p', _ = Vertical.apply p in
  Alcotest.(check bool) "s survives" true
    (Option.is_some (Program.find_te p' "s"));
  check_equiv "shared arith" p p'

let test_vertical_keeps_outputs () =
  (* a TE that is a program output cannot be inlined away *)
  let x = input "x" [| 8 |] in
  let s = Builder.unary ~name:"s" ~shape:[| 8 |] Relu "x" in
  let u = Builder.unary ~name:"u" ~shape:[| 8 |] Neg "s" in
  let p = Program.make ~inputs:[ x ] ~tes:[ s; u ] ~outputs:[ "s"; "u" ] in
  let p', _ = Vertical.apply p in
  Alcotest.(check int) "both kept" 2 (List.length p'.Program.tes);
  check_equiv "outputs preserved" p p'

let test_vertical_reshape_roundtrip () =
  (* reshape . reshape⁻¹ composes to identity indices *)
  let x = input "x" [| 4; 6 |] in
  let r1 =
    Builder.reshape ~name:"r1" ~in_shape:[| 4; 6 |] ~out_shape:[| 24 |] "x"
  in
  let r2 =
    Builder.reshape ~name:"r2" ~in_shape:[| 24 |] ~out_shape:[| 4; 6 |] "r1"
  in
  let y = Builder.unary ~name:"y" ~shape:[| 4; 6 |] Relu "r2" in
  let p = Program.make ~inputs:[ x ] ~tes:[ r1; r2; y ] ~outputs:[ "y" ] in
  let p', _ = Vertical.apply p in
  Alcotest.(check int) "one TE" 1 (List.length p'.Program.tes);
  (* the composed index must simplify back to the identity access *)
  let te = List.hd p'.Program.tes in
  (match Te.body_expr te with
  | Unop (Relu, Read ("x", [ i0; i1 ])) ->
      Alcotest.(check bool) "identity indices" true
        (Index.equal i0 (Index.Ov 0) && Index.equal i1 (Index.Ov 1))
  | e -> Alcotest.failf "unexpected body %s" (Expr.to_string e));
  check_equiv "reshape roundtrip" p p'

(* --- horizontal ------------------------------------------------------ *)

(* Fig. 3's example: two GEMMs sharing a reduction variable merge into one
   TE of shape (4+2, 16). *)
let fig3_program () =
  let inputs =
    [
      input "A1" [| 4; 8 |]; input "B1" [| 8; 16 |];
      input "A2" [| 2; 8 |]; input "B2" [| 8; 16 |];
    ]
  in
  let c1 = Builder.matmul ~name:"C1" ~m:4 ~n:16 ~k:8 "A1" "B1" in
  let c2 = Builder.matmul ~name:"C2" ~m:2 ~n:16 ~k:8 "A2" "B2" in
  (* consumers so the merged tensor is observable through rewrites *)
  let u1 = Builder.unary ~name:"U1" ~shape:[| 4; 16 |] Relu "C1" in
  let u2 = Builder.unary ~name:"U2" ~shape:[| 2; 16 |] Relu "C2" in
  Program.make ~inputs ~tes:[ c1; c2; u1; u2 ] ~outputs:[ "U1"; "U2" ]

let test_horizontal_fig3 () =
  let p = fig3_program () in
  let p', stats = Horizontal.apply p in
  Alcotest.(check int) "one group" 1 stats.Horizontal.groups_merged;
  Alcotest.(check int) "one TE eliminated" 1 stats.Horizontal.tes_eliminated;
  (* merged TE exists with concatenated shape *)
  (match Program.find_te p' "C1_hz" with
  | Some te -> Alcotest.(check (array int)) "shape (6,16)" [| 6; 16 |] te.Te.out_shape
  | None -> Alcotest.fail "merged TE missing");
  check_equiv "fig3" p p'

let test_horizontal_same_input_spatial_reuse () =
  (* QKV pattern: three GEMMs reading the same activation *)
  let inputs =
    [ input "X" [| 8; 16 |]; input "Wq" [| 16; 8 |]; input "Wk" [| 16; 8 |];
      input "Wv" [| 16; 8 |] ]
  in
  let q = Builder.matmul ~name:"Q" ~m:8 ~n:8 ~k:16 "X" "Wq" in
  let k = Builder.matmul ~name:"K" ~m:8 ~n:8 ~k:16 "X" "Wk" in
  let v = Builder.matmul ~name:"V" ~m:8 ~n:8 ~k:16 "X" "Wv" in
  let s = Builder.binary ~name:"S" ~shape:[| 8; 8 |] Add "Q" "K" in
  let t = Builder.binary ~name:"T" ~shape:[| 8; 8 |] Add "S" "V" in
  let p =
    Program.make ~inputs ~tes:[ q; k; v; s; t ] ~outputs:[ "T" ]
  in
  let p', stats = Horizontal.apply p in
  Alcotest.(check int) "merged 3 into 1" 2 stats.Horizontal.tes_eliminated;
  Alcotest.(check bool) "valid program" true
    (Result.is_ok (Program.validate p'));
  check_equiv "qkv merge" p p'

let test_horizontal_dependent_not_merged () =
  (* two GEMMs where the second consumes the first: same template but
     different depth, must not merge *)
  let inputs = [ input "X" [| 8; 8 |]; input "W1" [| 8; 8 |]; input "W2" [| 8; 8 |] ] in
  let a = Builder.matmul ~name:"G1" ~m:8 ~n:8 ~k:8 "X" "W1" in
  let b = Builder.matmul ~name:"G2" ~m:8 ~n:8 ~k:8 "G1" "W2" in
  let p = Program.make ~inputs ~tes:[ a; b ] ~outputs:[ "G2" ] in
  let _, stats = Horizontal.apply p in
  Alcotest.(check int) "no groups" 0 stats.Horizontal.groups_merged

let test_horizontal_outputs_not_merged () =
  let inputs = [ input "X" [| 8; 8 |]; input "W1" [| 8; 8 |]; input "W2" [| 8; 8 |] ] in
  let a = Builder.matmul ~name:"G1" ~m:8 ~n:8 ~k:8 "X" "W1" in
  let b = Builder.matmul ~name:"G2" ~m:8 ~n:8 ~k:8 "X" "W2" in
  let p = Program.make ~inputs ~tes:[ a; b ] ~outputs:[ "G1"; "G2" ] in
  let _, stats = Horizontal.apply p in
  Alcotest.(check int) "outputs kept" 0 stats.Horizontal.groups_merged

let test_horizontal_then_vertical () =
  (* the full §6 sequence on the QKV pattern stays correct *)
  let p =
    let inputs =
      [ input "X" [| 8; 16 |]; input "Wq" [| 16; 8 |]; input "Wk" [| 16; 8 |] ]
    in
    let q = Builder.matmul ~name:"Q" ~m:8 ~n:8 ~k:16 "X" "Wq" in
    let k = Builder.matmul ~name:"K" ~m:8 ~n:8 ~k:16 "X" "Wk" in
    let qr = Builder.unary ~name:"Qr" ~shape:[| 8; 8 |] Relu "Q" in
    let kr = Builder.unary ~name:"Kr" ~shape:[| 8; 8 |] Tanh "K" in
    let s = Builder.binary ~name:"S2" ~shape:[| 8; 8 |] Mul "Qr" "Kr" in
    Program.make ~inputs ~tes:[ q; k; qr; kr; s ] ~outputs:[ "S2" ]
  in
  let p1, _ = Horizontal.apply p in
  let p2, _ = Vertical.apply p1 in
  Alcotest.(check bool) "valid" true (Result.is_ok (Program.validate p2));
  check_equiv "horizontal+vertical" p p2

(* --- qcheck: random elementwise DAGs survive both transforms --------- *)

let random_program (seed : int) : Program.t =
  let rng = Rng.create seed in
  let shape = [| 4; 6 |] in
  let n = 3 + Rng.int rng ~bound:6 in
  let tensors = ref [ "in0"; "in1" ] in
  let tes = ref [] in
  for i = 0 to n - 1 do
    let pick () =
      List.nth !tensors (Rng.int rng ~bound:(List.length !tensors))
    in
    let name = Fmt.str "t%d" i in
    let te =
      match Rng.int rng ~bound:6 with
      | 0 -> Builder.unary ~name ~shape Relu (pick ())
      | 1 -> Builder.unary ~name ~shape Sigmoid (pick ())
      | 2 -> Builder.binary ~name ~shape Add (pick ()) (pick ())
      | 3 -> Builder.binary ~name ~shape Mul (pick ()) (pick ())
      | 4 ->
          Builder.permute ~name ~in_shape:[| 4; 6 |] ~perm:[| 0; 1 |] (pick ())
      | _ ->
          Builder.matmul ~name ~m:4 ~n:6 ~k:6
            (pick ())
            "w" (* fixed weight input *)
    in
    tensors := name :: !tensors;
    tes := te :: !tes
  done;
  let last = List.hd !tensors in
  Program.make
    ~inputs:
      [ input "in0" shape; input "in1" shape; input "w" [| 6; 6 |] ]
    ~tes:(List.rev !tes) ~outputs:[ last ]

let qcheck_transforms_preserve_semantics =
  QCheck.Test.make ~name:"horizontal+vertical preserve semantics on random DAGs"
    ~count:60
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let p = random_program seed in
      match Program.validate p with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
          let p1, _ = Horizontal.apply p in
          let p2, _ = Vertical.apply p1 in
          (match Program.validate p2 with
          | Error m -> QCheck.Test.fail_reportf "invalid after transform: %s" m
          | Ok () -> ());
          (match Interp.equivalent ~rtol:1e-4 ~seed p p2 with
          | Ok () -> true
          | Error m -> QCheck.Test.fail_reportf "not equivalent: %s" m))

let suite =
  [
    Alcotest.test_case "vertical fig4" `Quick test_vertical_fig4;
    Alcotest.test_case "vertical elementwise chain" `Quick
      test_vertical_chain_of_elementwise;
    Alcotest.test_case "vertical movement into reduce" `Quick
      test_vertical_movement_into_reduce;
    Alcotest.test_case "vertical fold flag" `Quick test_vertical_respects_flag;
    Alcotest.test_case "vertical keeps shared arith" `Quick
      test_vertical_keeps_shared_arith;
    Alcotest.test_case "vertical keeps outputs" `Quick
      test_vertical_keeps_outputs;
    Alcotest.test_case "vertical reshape roundtrip" `Quick
      test_vertical_reshape_roundtrip;
    Alcotest.test_case "horizontal fig3" `Quick test_horizontal_fig3;
    Alcotest.test_case "horizontal qkv spatial reuse" `Quick
      test_horizontal_same_input_spatial_reuse;
    Alcotest.test_case "horizontal dependent not merged" `Quick
      test_horizontal_dependent_not_merged;
    Alcotest.test_case "horizontal outputs not merged" `Quick
      test_horizontal_outputs_not_merged;
    Alcotest.test_case "horizontal then vertical" `Quick
      test_horizontal_then_vertical;
    QCheck_alcotest.to_alcotest qcheck_transforms_preserve_semantics;
  ]
