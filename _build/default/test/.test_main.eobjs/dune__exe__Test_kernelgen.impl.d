test/test_kernelgen.ml: Alcotest Analysis Ansor Astring_contains Builder Codegen_cuda Counters Device Dtype Emit Expr Kernel_ir List Program QCheck QCheck_alcotest Reuse_cache Sim String Te
