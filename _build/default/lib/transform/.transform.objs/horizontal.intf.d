lib/transform/horizontal.mli: Expr Program Te
