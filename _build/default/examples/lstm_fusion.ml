(* The LSTM case study (Sec. 8.4, Fig. 7, Table 6): wavefront scheduling
   (Rammer) reloads each cell's weights on every time step; Souffle's
   global analysis discovers the temporal reuse of the weights, compiles
   the fully unrolled model into a single cooperative kernel, and keeps
   the weights on-chip/in-cache across all 100 steps.

     dune exec examples/lstm_fusion.exe
*)

let () =
  let cfg = Lstm.base in
  let p = Lower.run (Lstm.create ~cfg ()) in
  Fmt.pr "LSTM: %d cells x %d steps, hidden %d -> %d TEs@." cfg.Lstm.cells
    cfg.Lstm.steps cfg.Lstm.hidden
    (List.length p.Program.tes);

  (* the temporal reuse the analysis finds: every weight matrix is read by
     one TE per time step *)
  let an = Analysis.run p in
  let temporal = Reuse.temporal_tensors an.Analysis.reuse in
  let weights = List.filter (fun t -> t.[0] = 'w' || t.[0] = 'u') temporal in
  Fmt.pr "weights with temporal reuse across steps: %d of %d@."
    (List.length weights)
    (2 * cfg.Lstm.cells);

  (* Rammer: wavefront kernels along the anti-diagonals of Fig. 7 *)
  (match Baseline.run Baseline.Rammer p with
  | Error m -> Fmt.pr "Rammer failed: %s@." m
  | Ok r ->
      Fmt.pr "@.Rammer: %d wavefront kernels, %.1f MB from global, %.3f ms@."
        (Baseline.num_kernels r)
        (Counters.mb (Counters.global_load_bytes r.Baseline.sim.Sim.total))
        (Baseline.time_ms r);
      Fmt.pr "  LSU %.1f%%  FMA %.1f%%@."
        (100. *. Counters.lsu_utilization r.Baseline.sim.Sim.total)
        (100. *. Counters.fma_utilization r.Baseline.sim.Sim.total));

  (* Souffle: one (or two) persistent kernels with grid synchronization *)
  let ours = Souffle.compile p in
  Fmt.pr "@.Souffle: %d kernel(s), %d grid syncs, %.1f MB from global, %.3f ms@."
    (Souffle.num_kernels ours)
    ours.Souffle.sim.Sim.total.Counters.grid_syncs
    (Counters.mb (Counters.global_load_bytes ours.Souffle.sim.Sim.total))
    (Souffle.time_ms ours);
  Fmt.pr "  LSU %.1f%%  FMA %.1f%%@."
    (100. *. Counters.lsu_utilization ours.Souffle.sim.Sim.total)
    (100. *. Counters.fma_utilization ours.Souffle.sim.Sim.total);
  Fmt.pr "  horizontal transformation merged %d wavefront GEMV groups@."
    ours.Souffle.hstats.Horizontal.groups_merged;
  Fmt.pr "  (weights enter from DRAM once; later steps re-read them on chip)@.";

  (* verify on a scaled-down configuration (the interpreter walks every
     tensor element, so full size would take minutes) *)
  let tiny = Lower.run (Lstm.create ~cfg:Lstm.tiny ()) in
  match Souffle.verify (Souffle.compile tiny) with
  | Ok () -> Fmt.pr "@.semantic check (tiny config): PASS@."
  | Error m -> Fmt.pr "@.semantic check FAILED: %s@." m
