(** A TE program: model inputs (including weights), a topologically ordered
    list of TEs, and the names of the tensors a user observes.  This is the
    unit the global analysis of §5 operates on. *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)

type tensor_info = { shape : Shape.t; dtype : Dtype.t }

type t = {
  inputs : (string * tensor_info) list;  (** externally supplied tensors *)
  tes : Te.t list;                       (** in topological order *)
  outputs : string list;                 (** observable results *)
}

let make ~inputs ~tes ~outputs = { inputs; tes; outputs }

let input_names p = List.map fst p.inputs

let te_names p = List.map (fun (te : Te.t) -> te.Te.name) p.tes

(* ---- memoized O(1) name index ------------------------------------- *)

(* [t] is an immutable record that transformations rebuild freely with
   [{ p with tes = ... }], so a name index cannot live inside the record
   without going stale.  Instead a small side memo keyed by the *physical
   identity* of the program value caches one index per program generation;
   entries die with their program (weak keys).  Access is mutex-guarded so
   parallel Ansor-search domains can consult the index concurrently — the
   cached tables themselves are never mutated after construction, making
   unsynchronized concurrent reads safe. *)

type index = {
  te_by_name : (string, Te.t) Hashtbl.t;
  info_by_name : (string, tensor_info) Hashtbl.t;
  mutable consumers_memo : Te.t list SMap.t option;
      (** lazily-built {!consumers} map; guarded by [index_lock] (it is
          only consulted by main-domain passes — emission, dataflow — but
          the guard keeps the whole index domain-safe) *)
}

let index_memo : (Obj.t Weak.t * index) list ref = ref []
let index_lock = Mutex.create ()

let build_index (p : t) : index =
  let n = List.length p.tes in
  let te_by_name = Hashtbl.create (2 * max 1 n) in
  let info_by_name = Hashtbl.create (2 * max 1 (n + List.length p.inputs)) in
  (* first binding wins, mirroring the original scan order: inputs shadow
     TEs, earlier TEs shadow later duplicates (invalid programs only) *)
  List.iter
    (fun (name, info) ->
      if not (Hashtbl.mem info_by_name name) then
        Hashtbl.add info_by_name name info)
    p.inputs;
  List.iter
    (fun (te : Te.t) ->
      if not (Hashtbl.mem te_by_name te.Te.name) then
        Hashtbl.add te_by_name te.Te.name te;
      if not (Hashtbl.mem info_by_name te.Te.name) then
        Hashtbl.add info_by_name te.Te.name
          { shape = te.Te.out_shape; dtype = te.Te.dtype })
    p.tes;
  { te_by_name; info_by_name; consumers_memo = None }

let index_of (p : t) : index =
  let key = Obj.repr p in
  Mutex.protect index_lock @@ fun () ->
  let hit =
    List.find_opt
      (fun (w, _) -> match Weak.get w 0 with Some o -> o == key | None -> false)
      !index_memo
  in
  match hit with
  | Some (_, idx) -> idx
  | None ->
      let idx = build_index p in
      let w = Weak.create 1 in
      Weak.set w 0 (Some key);
      (* drop dead generations so the memo stays a handful of entries *)
      index_memo :=
        (w, idx)
        :: List.filter (fun (w, _) -> Weak.check w 0) !index_memo;
      idx

(** Force the index to exist — called before fanning work out to domains so
    workers only ever read an already-built table. *)
let prime_index (p : t) : unit = ignore (index_of p)

let find_te p name = Hashtbl.find_opt (index_of p).te_by_name name

let find_te_exn p name =
  match find_te p name with
  | Some te -> te
  | None -> invalid_arg ("Program.find_te_exn: no TE " ^ name)

(** Shape and dtype of any tensor in the program (input or TE output). *)
let tensor_info p name : tensor_info option =
  Hashtbl.find_opt (index_of p).info_by_name name

let tensor_info_exn p name =
  match tensor_info p name with
  | Some i -> i
  | None -> invalid_arg ("Program.tensor_info_exn: unknown tensor " ^ name)

(** [producer p name] is the TE defining [name], or [None] for inputs. *)
let producer = find_te

(* One linear pass (prepend + final reverse keeps the per-tensor consumer
   lists in program order). *)
let build_consumers (p : t) : Te.t list SMap.t =
  let tbl : (string, Te.t list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (te : Te.t) ->
      List.iter
        (fun input ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt tbl input) in
          Hashtbl.replace tbl input (te :: cur))
        (Te.inputs te))
    p.tes;
  Hashtbl.fold (fun k v acc -> SMap.add k (List.rev v) acc) tbl SMap.empty

(** Map tensor name -> TEs that read it, in program order.  Memoized per
    program generation alongside the name index: emission consults it once
    per kernel, and rebuilding it there used to dominate the emit phase on
    kernel-heavy models. *)
let consumers p : Te.t list SMap.t =
  let idx = index_of p in
  Mutex.protect index_lock @@ fun () ->
  match idx.consumers_memo with
  | Some c -> c
  | None ->
      let c = build_consumers p in
      idx.consumers_memo <- Some c;
      c

(** Direct dependency edges as (producer_te_name, consumer_te_name). *)
let edges p : (string * string) list =
  let defined = SSet.of_list (te_names p) in
  List.concat_map
    (fun (te : Te.t) ->
      List.filter_map
        (fun input ->
          if SSet.mem input defined then Some (input, te.Te.name) else None)
        (Te.inputs te))
    p.tes

(** TEs reachable from [te] downstream (its transitive consumers). *)
let descendants p name =
  let cons = consumers p in
  let rec go visited frontier =
    match frontier with
    | [] -> visited
    | n :: rest ->
        let next =
          match SMap.find_opt n cons with
          | None -> []
          | Some tes ->
              List.filter_map
                (fun (te : Te.t) ->
                  if SSet.mem te.Te.name visited then None else Some te.Te.name)
                tes
        in
        go (List.fold_left (fun v x -> SSet.add x v) visited next) (rest @ next)
  in
  go SSet.empty [ name ]

(** Does [a] (transitively) feed [b]? *)
let depends ~on:a p b = SSet.mem b (descendants p a)

(** Check that every read is either an input or an earlier TE, and every
    output exists — i.e. the list really is in topological order. *)
let validate p =
  let rec go seen = function
    | [] ->
        let missing =
          List.filter (fun o -> not (SSet.mem o seen)) p.outputs
        in
        if missing = [] then Ok ()
        else Error ("Program: undefined outputs: " ^ String.concat "," missing)
    | (te : Te.t) :: rest -> (
        match Te.validate te with
        | Error m -> Error m
        | Ok () ->
            let unknown =
              List.filter (fun i -> not (SSet.mem i seen)) (Te.inputs te)
            in
            if unknown <> [] then
              Error
                (Fmt.str "Program: TE %s reads undefined tensors: %s" te.Te.name
                   (String.concat "," unknown))
            else if SSet.mem te.Te.name seen then
              Error ("Program: duplicate tensor " ^ te.Te.name)
            else go (SSet.add te.Te.name seen) rest)
  in
  go (SSet.of_list (input_names p)) p.tes

(** Tensors read by TEs appearing after the given position, plus program
    outputs — the live set used for buffer-reuse decisions. *)
let live_after p pos =
  let rec drop i = function
    | [] -> []
    | _ :: rest when i > 0 -> drop (i - 1) rest
    | l -> l
  in
  let later = drop (pos + 1) p.tes in
  let read_later =
    List.fold_left
      (fun acc te -> SSet.union acc (SSet.of_list (Te.inputs te)))
      SSet.empty later
  in
  SSet.union read_later (SSet.of_list p.outputs)

(** Stable topological re-sort: keeps the original relative order wherever
    dependencies allow.  Used after transformations that insert or merge TEs
    out of place.

    The order produced is the classic wavefront order: wave [k] holds every
    TE whose producers all sit in earlier waves, waves emitted in
    increasing order with the original relative order kept inside each
    wave.  It is computed as one memoized longest-producer-chain walk over
    the {!find_te} name index plus a stable sort — O(V + E + n log n) —
    instead of repeatedly re-scanning the not-yet-placed list, which was
    quadratic in the wavefront depth and dominated whole-model compile
    time on deep programs (LSTM's step chain). *)
let toposort (p : t) : t =
  let inputs = SSet.of_list (input_names p) in
  let idx = index_of p in
  let n = List.length p.tes in
  let wave : (string, int) Hashtbl.t = Hashtbl.create (2 * max 1 n) in
  let visiting : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let stuck (te : Te.t) =
    invalid_arg
      ("Program.toposort: cycle or undefined input involving " ^ te.Te.name)
  in
  let rec wave_of (te : Te.t) : int =
    match Hashtbl.find_opt wave te.Te.name with
    | Some w -> w
    | None ->
        if Hashtbl.mem visiting te.Te.name then stuck te;
        Hashtbl.add visiting te.Te.name ();
        let w =
          List.fold_left
            (fun acc i ->
              if SSet.mem i inputs then acc
              else
                match Hashtbl.find_opt idx.te_by_name i with
                | Some prod -> max acc (wave_of prod + 1)
                | None -> stuck te)
            0 (Te.inputs te)
        in
        Hashtbl.remove visiting te.Te.name;
        Hashtbl.add wave te.Te.name w;
        w
  in
  List.iter (fun te -> ignore (wave_of te)) p.tes;
  let tes =
    List.stable_sort
      (fun (a : Te.t) (b : Te.t) ->
        compare (Hashtbl.find wave a.Te.name) (Hashtbl.find wave b.Te.name))
      p.tes
  in
  { p with tes }

let total_arith_ops p =
  List.fold_left (fun acc te -> acc + Te.arith_ops te) 0 p.tes

let pp ppf p =
  Fmt.pf ppf "@[<v>inputs:@,";
  List.iter
    (fun (n, i) ->
      Fmt.pf ppf "  %s : %a %s@," n Dtype.pp i.dtype (Shape.to_string i.shape))
    p.inputs;
  Fmt.pf ppf "tes:@,";
  List.iter (fun te -> Fmt.pf ppf "  %a@," Te.pp te) p.tes;
  Fmt.pf ppf "outputs: %s@]" (String.concat ", " p.outputs)

let to_string p = Fmt.str "%a" pp p
