test/test_gpu.ml: Alcotest Counters Device Float Fmt Kernel_ir List Occupancy QCheck QCheck_alcotest Result Sim
