test/test_tensor.ml: Alcotest Array Dtype Float List Nd QCheck QCheck_alcotest Rng Shape
