(** Calibration profiles for the six baseline systems of §7.2.

    Every constant encodes a property the paper (or the system's own
    documentation) states qualitatively; the absolute values were fitted so
    the simulator lands in the neighbourhood of Table 3, but the *ordering*
    between systems follows from the structural differences (groupings,
    fusion capabilities), not from these knobs.

    - TensorRT ships hand-optimized closed-source kernels (§2.2), so its
      achieved fraction of peak is the highest.
    - XLA executes GEMM/Conv through cuBLAS/cuDNN library calls (§8.1),
      which are fast but cannot fuse with their neighbours.
    - Ansor auto-generates kernels; good but below hand-tuned libraries.
    - Rammer (v0.4) predates tensor-core-friendly codegen and relies on
      rTask co-scheduling; moderate efficiency.
    - Apollo's strength is fusion coverage, not inner-loop quality; its
      layout kernels are known to be slow (Table 1: 27.78 MB loaded vs
      TensorRT's 16.52 MB on the same subgraph).
    - IREE (Dec'22 release) lowers conv through linalg with no direct-conv
      tuning at all — the paper measures ResNeXt at 314.8 ms vs 4.43 ms
      (Table 3), a ~70x gap that this profile reproduces. *)

type t = {
  sys_name : string;
  eff_cap : float;          (** Ansor-search efficiency ceiling *)
  library_eff : float option;
      (** efficiency of vendor-library kernels, when the system uses them *)
  conv_eff : float option;  (** override for direct-conv kernels *)
  mem_eff : float;
  movement_mem_eff : float;
}

let xla =
  {
    sys_name = "XLA";
    eff_cap = 0.60;
    library_eff = Some 0.70; (* cuBLAS / cuDNN on batch-1 shapes *)
    conv_eff = None;
    mem_eff = 0.80;
    movement_mem_eff = 0.25;
  }

let ansor =
  {
    sys_name = "Ansor";
    eff_cap = 0.45;
    library_eff = None;
    conv_eff = None;
    mem_eff = 0.80;
    movement_mem_eff = 0.25;
  }

let tensorrt =
  {
    sys_name = "TensorRT";
    eff_cap = 0.78; (* hand-optimized transformer kernels, §2.2 *)
    library_eff = None;
    conv_eff = Some 0.10; (* per-branch kernels on grouped-conv models run far below peak: Table 3 ResNeXt (24.8 ms vs XLA 8.9 ms) *)
    mem_eff = 0.85;
    movement_mem_eff = 0.50;
  }

let rammer =
  {
    sys_name = "Rammer";
    eff_cap = 0.50;
    library_eff = None;
    conv_eff = None;
    mem_eff = 0.80;
    movement_mem_eff = 0.45;
  }

let apollo =
  {
    sys_name = "Apollo";
    eff_cap = 0.55;
    library_eff = None;
    conv_eff = None;
    mem_eff = 0.75;
    movement_mem_eff = 0.20; (* slow layout kernels, Table 1 *)
  }

let iree =
  {
    sys_name = "IREE";
    eff_cap = 0.35;
    library_eff = None;
    conv_eff = Some 0.002;
        (* linalg direct conv, untuned: Table 3 measures ResNeXt at
           314.8 ms where Souffle needs 4.43 ms *)
    mem_eff = 0.75;
    movement_mem_eff = 0.20;
  }
