(* Tests for the mechanisms added beyond the first working pipeline:
   horizontal group chunking, two-phase reduction splits (rsplit), the
   device-configuration surface, and the Sec. 9 "slowdown" behaviors. *)

let f32 = Dtype.F32
let dev = Device.a100
let input name shape = (name, { Program.shape; dtype = f32 })

let test_horizontal_chunking () =
  (* 100 identical independent GEMVs merge into ceil(100/32) = 4 groups *)
  let n = 100 in
  let inputs =
    List.concat_map
      (fun i -> [ input (Fmt.str "w%d" i) [| 16; 8 |]; input (Fmt.str "x%d" i) [| 8 |] ])
      (List.init n Fun.id)
  in
  let tes =
    List.init n (fun i ->
        Builder.gemv ~name:(Fmt.str "y%d" i) ~m:16 ~k:8 (Fmt.str "w%d" i)
          (Fmt.str "x%d" i))
  in
  let consumers =
    List.init n (fun i ->
        Builder.unary ~name:(Fmt.str "z%d" i) ~shape:[| 16 |] Expr.Relu
          (Fmt.str "y%d" i))
  in
  let p =
    Program.make ~inputs ~tes:(tes @ consumers)
      ~outputs:(List.init n (fun i -> Fmt.str "z%d" i))
  in
  let p', stats = Horizontal.apply p in
  Alcotest.(check int) "4 chunked groups" 4 stats.Horizontal.groups_merged;
  Alcotest.(check int) "96 TEs eliminated" 96 stats.Horizontal.tes_eliminated;
  (match Interp.equivalent ~rtol:1e-4 p p' with
  | Ok () -> ()
  | Error m -> Alcotest.fail m)

let test_chunking_respects_cap () =
  (* no merged group exceeds the cap *)
  Alcotest.(check bool) "cap is reasonable" true
    (Horizontal.max_group_members >= 2 && Horizontal.max_group_members <= 64)

let test_rsplit_increases_grid () =
  (* a reduction with a tiny output space picks a cross-block split *)
  let x = input "x" [| 64; 65536 |] in
  let te = Builder.reduce_last ~name:"s" ~m:64 ~k:65536 Te.Sum "x" in
  let p = Program.make ~inputs:[ x ] ~tes:[ te ] ~outputs:[ "s" ] in
  let s = Ansor.schedule_te dev p te in
  Alcotest.(check bool)
    (Fmt.str "rsplit chosen (got %d, grid %d)" s.Sched.rsplit
       (Sched.grid_blocks te s))
    true
    (s.Sched.rsplit > 1 && Sched.grid_blocks te s >= 16)

let test_rsplit_emits_atomics () =
  let x = input "x" [| 64; 65536 |] in
  let te = Builder.reduce_last ~name:"s" ~m:64 ~k:65536 Te.Sum "x" in
  let p = Program.make ~inputs:[ x ] ~tes:[ te ] ~outputs:[ "s" ] in
  let an = Analysis.run p in
  let scheds = Ansor.schedule_program dev p in
  let groups =
    [ { Emit.g_tes = [ "s" ]; cooperative = false; library_call = false;
        eff_override = None } ]
  in
  let prog = Emit.emit dev p an scheds Emit.default_options groups in
  let sim = Sim.run dev prog in
  Alcotest.(check bool) "atomic partials recorded" true
    (sim.Sim.total.Counters.atomic_bytes > 0)

let test_rsplit_not_chosen_for_large_outputs () =
  let x = input "x" [| 512; 512 |] and w = input "w" [| 512; 512 |] in
  let te = Builder.matmul ~tag:"matmul" ~name:"g" ~m:512 ~n:512 ~k:512 "x" "w" in
  let p = Program.make ~inputs:[ x; w ] ~tes:[ te ] ~outputs:[ "g" ] in
  let s = Ansor.schedule_te dev p te in
  Alcotest.(check int) "no split for big GEMM" 1 s.Sched.rsplit

let test_coop_capacity_monotone_kernels () =
  (* a smaller cooperative budget can only produce more (or equal) kernels *)
  let p = Lower.run (Bert.create ~cfg:{ Bert.tiny with Bert.layers = 4 } ()) in
  let kernels frac =
    let device = { dev with Device.coop_capacity_frac = frac } in
    Souffle.num_kernels (Souffle.compile ~cfg:(Souffle.config ~device ()) p)
  in
  Alcotest.(check bool) "monotone" true (kernels 0.25 >= kernels 1.0)

let test_lstm_single_kernel_full () =
  (* Table 5's headline LSTM result at full size: exactly one kernel *)
  let p = Lower.run (Lstm.create ()) in
  let r = Souffle.compile p in
  Alcotest.(check int) "one kernel" 1 (Souffle.num_kernels r)

let test_epilogue_broadcast_not_attached () =
  (* a channel-broadcast consumer (larger iteration space) stays out of its
     producer's stage *)
  let pool =
    Te.reduce ~tag:"global_avg_pool" ~name:"pool" ~shape:[| 1; 8 |] ~op:Te.Sum
      ~axes:[| 16; 16 |]
      (Expr.Binop
         ( Expr.Mul,
           Expr.Read ("x", Index.[ ov 0; ov 1; rv 0; rv 1 ]),
           Expr.Const (1. /. 256.) ))
  in
  let fc =
    Te.reduce ~tag:"matmul" ~name:"fc" ~shape:[| 1; 4 |] ~op:Te.Sum
      ~axes:[| 8 |]
      (Expr.Binop
         ( Expr.Mul,
           Expr.Read ("pool", Index.[ ov 0; rv 0 ]),
           Expr.Read ("w", Index.[ rv 0; ov 1 ]) ))
  in
  (* broadcast consumer: scale x by fc-derived gate *)
  let scale =
    Te.compute ~tag:"scale_channels" ~name:"scale" ~shape:[| 1; 8; 16; 16 |]
      (Expr.Binop
         ( Expr.Mul,
           Expr.Read ("x", Index.[ ov 0; ov 1; ov 2; ov 3 ]),
           Expr.Read ("fc", Index.[ ov 0; Index.Mod (Index.ov 1, 4) ]) ))
  in
  let tes = [ pool; fc; scale ] in
  let stages = Emit.build_stages Emit.default_options tes in
  (* scale must not share fc's stage *)
  let fc_stage =
    List.find
      (fun tl -> List.exists (fun (te : Te.t) -> te.Te.name = "fc") tl)
      stages
  in
  Alcotest.(check bool) "broadcast consumer detached" false
    (List.exists (fun (te : Te.t) -> te.Te.name = "scale") fc_stage)

let test_tiny_device () =
  (* the pipeline works on a hypothetical smaller GPU: more kernels *)
  let small =
    { dev with
      Device.num_sms = 16;
      smem_per_sm = 64 * 1024;
      max_smem_per_block = 48 * 1024;
    }
  in
  let p = Lower.run (Bert.create ~cfg:Bert.tiny ()) in
  let r_small = Souffle.compile ~cfg:(Souffle.config ~device:small ()) p in
  let r_big = Souffle.compile p in
  Alcotest.(check bool) "compiles on small device" true
    (Souffle.time_ms r_small > 0.);
  Alcotest.(check bool) "small device no faster" true
    (Souffle.time_ms r_small >= Souffle.time_ms r_big)

let suite =
  [
    Alcotest.test_case "horizontal chunking" `Quick test_horizontal_chunking;
    Alcotest.test_case "chunking cap" `Quick test_chunking_respects_cap;
    Alcotest.test_case "rsplit increases grid" `Quick test_rsplit_increases_grid;
    Alcotest.test_case "rsplit emits atomics" `Quick test_rsplit_emits_atomics;
    Alcotest.test_case "rsplit skipped for big outputs" `Quick
      test_rsplit_not_chosen_for_large_outputs;
    Alcotest.test_case "coop capacity monotone" `Quick
      test_coop_capacity_monotone_kernels;
    Alcotest.test_case "lstm single kernel (full)" `Slow
      test_lstm_single_kernel_full;
    Alcotest.test_case "broadcast epilogue detached" `Quick
      test_epilogue_broadcast_not_attached;
    Alcotest.test_case "tiny device" `Quick test_tiny_device;
  ]
