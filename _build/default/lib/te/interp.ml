(** Reference interpreter: evaluates a TE program on concrete ndarrays.

    This is deliberately naive (it materializes every intermediate tensor and
    walks iteration spaces point by point): it is the semantic oracle that
    every transformation in the compiler is verified against, so it must be
    obviously correct rather than fast. *)

module SMap = Program.SMap

type env = Nd.t SMap.t

let env_of_list l : env =
  List.fold_left (fun m (k, v) -> SMap.add k v m) SMap.empty l

let lookup env name =
  match SMap.find_opt name env with
  | Some v -> v
  | None -> invalid_arg ("Interp: unbound tensor " ^ name)

(** Evaluate one TE given bindings for everything it reads. *)
let eval_te (env : env) (te : Te.t) : Nd.t =
  let read name (idx : int list) =
    let nd = lookup env name in
    Nd.get nd (Array.of_list idx)
  in
  let out = Nd.zeros ~dtype:te.Te.dtype te.Te.out_shape in
  (match te.Te.body with
  | Te.Compute e ->
      Shape.iter te.Te.out_shape (fun ov ->
          let v = Expr.eval ~read ~ov ~rv:[||] e in
          Nd.set out ov (Dtype.round_value te.Te.dtype v))
  | Te.Reduce { op; axes; expr } ->
      let rdom = axes in
      Shape.iter te.Te.out_shape (fun ov ->
          let ov = Array.copy ov in
          let acc = ref (Te.reduce_identity op) in
          Shape.iter rdom (fun rv ->
              acc := Te.reduce_apply op !acc (Expr.eval ~read ~ov ~rv expr));
          Nd.set out ov (Dtype.round_value te.Te.dtype !acc)));
  out

(** Run the whole program; returns the full environment (inputs plus every
    intermediate), which the tests use to compare arbitrary tensors. *)
let run_env (p : Program.t) (inputs : env) : env =
  List.fold_left
    (fun env te -> SMap.add te.Te.name (eval_te env te) env)
    inputs p.Program.tes

(** Run and project onto the program outputs. *)
let run (p : Program.t) (inputs : env) : (string * Nd.t) list =
  let env = run_env p inputs in
  List.map (fun o -> (o, lookup env o)) p.Program.outputs

(** Deterministic random inputs for a program (weights and activations). *)
let random_inputs ?(seed = 42) (p : Program.t) : env =
  let rng = Rng.create seed in
  env_of_list
    (List.map
       (fun (name, (info : Program.tensor_info)) ->
         (name, Nd.random ~dtype:info.Program.dtype rng info.Program.shape))
       p.Program.inputs)

(** Do two programs agree on [outputs] for the same inputs?  Used as the
    semantic-preservation check (§6's "semantic preserving" made
    executable). *)
let equivalent ?(rtol = 1e-4) ?(atol = 1e-5) ?seed (a : Program.t)
    (b : Program.t) : (unit, string) result =
  let inputs = random_inputs ?seed a in
  let ra = run a inputs and rb = run b inputs in
  let rec cmp = function
    | [] -> Ok ()
    | (name, va) :: rest -> (
        match List.assoc_opt name rb with
        | None -> Error ("missing output " ^ name)
        | Some vb ->
            if Nd.allclose ~rtol ~atol va vb then cmp rest
            else
              Error
                (Fmt.str "output %s differs (max abs diff %g)" name
                   (Nd.max_abs_diff va vb)))
  in
  cmp ra
