lib/affine/matrix.ml: Array Fmt List
