let () =
  let p = Lower.run (Lstm.create ()) in
  let p1, _ = Horizontal.apply p in
  let p2, _ = Vertical.apply ~fold_into_reduce:true p1 in
  let an = Analysis.run p2 in
  let dev = Device.a100 in
  let scheds = Ansor.schedule_program dev p2 in
  let part = Partition.run dev an scheds in
  List.iter
    (fun (sp : Partition.subprogram) ->
      Fmt.pr "sub %d coop=%b ntes=%d first=%s@." sp.Partition.id
        sp.Partition.cooperative
        (List.length sp.Partition.tes)
        (List.hd (Partition.te_names sp));
      if List.length sp.Partition.tes < 30 then
        List.iter
          (fun (te : Te.t) ->
            let info = Analysis.info an te.Te.name in
            let s = Hashtbl.find scheds te.Te.name in
            let u = Sched.usage p2 te s in
            Fmt.pr "   %s %-24s grid=%d smem=%d thr=%d regs=%d rsplit=%d@."
              (match info.Analysis.kind with
               | Intensity.Compute_intensive -> "C"
               | _ -> "m")
              te.Te.name (Sched.grid_blocks te s) u.Occupancy.smem_per_block
              u.Occupancy.threads_per_block u.Occupancy.regs_per_thread
              s.Sched.rsplit)
          sp.Partition.tes)
    part.Partition.subprograms
