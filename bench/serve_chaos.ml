(* Chaos benchmark: the serving stack under injected runtime faults,
   deadlines, and overload.

   Three measurements over the zoo's traffic-weighted mix:

     invariant   a zero-fault chaos run must be byte-identical to the same
                 run with no chaos armed at all — the fault machinery costs
                 nothing when nothing faults
     faults      a fault-rate sweep with bounded retries: goodput, p99,
                 failed terminals, and the fraction of fault-struck
                 requests the retry path recovers (must be >= 90% of
                 single-fault requests at a 5% fault rate)
     overload    offered load at 1x and 2x the saturation throughput,
                 once with admission control (bounded queue, deadline-aware
                 shedding, per-request SLO) and once unbounded: the capped
                 configuration must degrade gracefully (admitted-request
                 p99 at 2x within 3x of the 1x p99) while the unbounded
                 queue's p99 grows with the batch size

   Results land in BENCH_chaos.json (full models) or BENCH_chaos_smoke.json
   (tiny models, part of the @bench-smoke alias).  Invariant violations,
   sub-90% retry recovery, failed terminals at the 5% point, and
   ungraceful capped degradation are recorded in the runlog, so
   --strict-bench fails the run over them. *)

let dev = Tables.dev

let num n v = (n, Jsonlite.Num v)

let fail_check ~model msg =
  Fmt.epr "  !! %s@." msg;
  Runlog.record Tables.runlog ~model ~degraded_steps:0 ~errors:1

let mix_weight (e : Zoo.entry) : float =
  match String.lowercase_ascii e.Zoo.name with
  | "mmoe" -> 16.
  | "lstm" -> 8.
  | "efficientnet" -> 4.
  | "resnext" -> 1.
  | _ -> 2.

(* requests whose attempt 0 faulted or hung, and how many of those the
   retry path carried to completion anyway *)
let recovery (o : Scheduler.outcome) : int * int =
  let struck =
    List.sort_uniq compare
      (List.filter_map
         (fun (a : Scheduler.aborted) ->
           if a.Scheduler.a_try = 0 && a.Scheduler.a_reason <> Scheduler.Deadline
           then Some a.Scheduler.a_req.Workload.rq_id
           else None)
         o.Scheduler.o_aborted)
  in
  let completed_ids =
    List.map
      (fun (c : Scheduler.completed) -> c.Scheduler.c_req.Workload.rq_id)
      o.Scheduler.o_completed
  in
  ( List.length struck,
    List.length (List.filter (fun id -> List.mem id completed_ids) struck) )

let run_with ~label ~souffle_of ~requests ~out () =
  Tables.section
    (Fmt.str "Serving under chaos — faults, deadlines, overload (%s)" label);
  let artifacts =
    List.map
      (fun (e : Zoo.entry) ->
        let r = souffle_of e in
        Scheduler.artifact_of_prog dev ~model:e.Zoo.name
          ~degraded:(List.length r.Souffle.degraded)
          r.Souffle.prog)
      Zoo.all
  in
  let mix = List.map (fun (e : Zoo.entry) -> (e.Zoo.name, mix_weight e)) Zoo.all in
  let run cfg reqs = Scheduler.run dev cfg ~artifacts reqs in
  let bytes o = Jsonlite.to_string (Serve_report.outcome_json o) in
  let streams = 4 in
  let plain = Scheduler.cfg ~policy:Scheduler.Fifo ~max_streams:streams () in

  (* invariant: zero-fault chaos is byte-identical to no chaos at all *)
  let batch = Workload.generate ~seed:11 ~rate_rps:0. ~requests mix in
  let base = run plain batch in
  let zero =
    run
      (Scheduler.cfg ~chaos:Faultinject.chaos_zero ~policy:Scheduler.Fifo
         ~max_streams:streams ())
      batch
  in
  let invariant_ok = bytes base = bytes zero in
  Fmt.pr "  zero-fault chaos vs baseline: %s@."
    (if invariant_ok then "byte-identical" else "DIFFERS");
  if not invariant_ok then
    fail_check ~model:("chaos-invariant@" ^ label)
      "zero-fault chaos run differs from the chaos-free baseline";

  (* fault-rate sweep: bounded retries absorb injected kernel faults *)
  let retries = 3 in
  let fault_points =
    List.map
      (fun rate ->
        let chaos =
          { Faultinject.chaos_zero with
            Faultinject.ch_seed = 29;
            ch_fault_rate = rate }
        in
        let o =
          run
            (Scheduler.cfg ~retries ~backoff_us:5. ~chaos
               ~policy:Scheduler.Fifo ~max_streams:streams ())
            batch
        in
        let s = Serve_report.summarize o in
        let struck, recovered = recovery o in
        (rate, o, s, struck, recovered))
      [ 0.02; 0.05; 0.1; 0.2 ]
  in
  Fmt.pr "@.  fault sweep (closed batch of %d, %d retries):@." requests retries;
  Fmt.pr "  %8s %9s %8s %8s %11s %10s@." "rate" "goodput" "faults" "failed"
    "recovered" "p99(ms)";
  List.iter
    (fun (rate, o, (s : Serve_report.summary), struck, recovered) ->
      Fmt.pr "  %8.2f %5d/%-3d %8d %8d %7d/%-3d %10.3f@." rate
        s.Serve_report.s_requests requests s.Serve_report.s_faults
        (List.length o.Scheduler.o_failed)
        recovered struck s.Serve_report.s_p99_ms)
    fault_points;
  (match
     List.find_opt (fun (rate, _, _, _, _) -> rate = 0.05) fault_points
   with
  | Some (_, o, _, struck, recovered) ->
      if struck > 0 && float_of_int recovered < 0.9 *. float_of_int struck then
        fail_check ~model:("chaos-recovery@" ^ label)
          (Fmt.str "retries recovered %d of %d fault-struck requests (< 90%%)"
             recovered struck);
      if o.Scheduler.o_failed <> [] then
        fail_check ~model:("chaos-failed@" ^ label)
          (Fmt.str
             "%d request(s) failed at a 5%%%% fault rate despite %d retries"
             (List.length o.Scheduler.o_failed)
             retries)
  | None -> ());

  (* overload: 2x the saturation rate, shedding vs an unbounded queue *)
  let sat = Serve_report.summarize base in
  let sat_rps = sat.Serve_report.s_throughput_rps in
  let deadline_us = 20. *. sat.Serve_report.s_p50_ms *. 1e3 in
  let capped_cfg =
    Scheduler.cfg ~queue_cap:streams ~drop:Scheduler.Shed
      ~deadline_us ~policy:Scheduler.Fifo ~max_streams:streams ()
  in
  let load frac n =
    Workload.generate ~seed:31 ~rate_rps:(frac *. sat_rps) ~requests:n mix
  in
  let capped_1x = Serve_report.summarize (run capped_cfg (load 1.0 requests)) in
  let capped_2x_o = run capped_cfg (load 2.0 requests) in
  let capped_2x = Serve_report.summarize capped_2x_o in
  let unbounded_2x = Serve_report.summarize (run plain (load 2.0 requests)) in
  let unbounded_2x_big =
    Serve_report.summarize (run plain (load 2.0 (2 * requests)))
  in
  Fmt.pr "@.  overload at 2x saturation (%d streams, deadline %.2f ms):@."
    streams (deadline_us /. 1e3);
  let row name (s : Serve_report.summary) =
    Fmt.pr "  %14s %5d served %5d shed %10.3f p99(ms)@." name
      s.Serve_report.s_requests
      (s.Serve_report.s_rejected + s.Serve_report.s_timed_out)
      s.Serve_report.s_p99_ms
  in
  row "capped 1x" capped_1x;
  row "capped 2x" capped_2x;
  row "unbounded 2x" unbounded_2x;
  Fmt.pr "  %14s %5d served %5d shed %10.3f p99(ms)  (batch doubled)@."
    "unbounded 2x" unbounded_2x_big.Serve_report.s_requests 0
    unbounded_2x_big.Serve_report.s_p99_ms;
  if
    capped_1x.Serve_report.s_p99_ms > 0.
    && capped_2x.Serve_report.s_p99_ms > 3. *. capped_1x.Serve_report.s_p99_ms
  then
    fail_check ~model:("chaos-overload@" ^ label)
      (Fmt.str "capped p99 at 2x overload is %.3f ms, over 3x the 1x %.3f ms"
         capped_2x.Serve_report.s_p99_ms capped_1x.Serve_report.s_p99_ms);
  let shed_rate (s : Serve_report.summary) n =
    float_of_int (s.Serve_report.s_rejected + s.Serve_report.s_timed_out)
    /. float_of_int n
  in
  let point_json extra (s : Serve_report.summary) =
    Jsonlite.Obj (extra @ [ ("summary", Serve_report.summary_json s) ])
  in
  let json =
    Jsonlite.Obj
      [
        ("bench", Jsonlite.Str "serve-chaos");
        ("device", Jsonlite.Str dev.Device.name);
        ("mode", Jsonlite.Str label);
        num "requests" (float_of_int requests);
        num "streams" (float_of_int streams);
        ("zero_fault_chaos_identical", Jsonlite.Bool invariant_ok);
        ( "fault_sweep",
          Jsonlite.Arr
            (List.map
               (fun (rate, o, s, struck, recovered) ->
                 point_json
                   [
                     num "fault_rate" rate;
                     num "retries" (float_of_int retries);
                     num "goodput"
                       (float_of_int s.Serve_report.s_requests
                       /. float_of_int requests);
                     num "failed"
                       (float_of_int (List.length o.Scheduler.o_failed));
                     num "fault_struck" (float_of_int struck);
                     num "retry_recovered" (float_of_int recovered);
                   ]
                   s)
               fault_points) );
        ( "overload",
          Jsonlite.Obj
            [
              num "sat_rps" sat_rps;
              num "deadline_us" deadline_us;
              ( "capped_1x",
                point_json [ num "shed_rate" (shed_rate capped_1x requests) ]
                  capped_1x );
              ( "capped_2x",
                point_json [ num "shed_rate" (shed_rate capped_2x requests) ]
                  capped_2x );
              ("unbounded_2x", point_json [] unbounded_2x);
              ("unbounded_2x_double_batch", point_json [] unbounded_2x_big);
            ] );
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Jsonlite.to_string json));
  Fmt.pr "  wrote %s@." out

(* full-size models: reuses the artifacts the tables compiled *)
let run () =
  run_with ~label:"full" ~souffle_of:Tables.souffle_of ~requests:48
    ~out:"BENCH_chaos.json" ()

(* tiny models: part of the @bench-smoke alias *)
let smoke () =
  let cache : (string, Souffle.report) Hashtbl.t = Hashtbl.create 8 in
  let souffle_of (e : Zoo.entry) =
    match Hashtbl.find_opt cache e.Zoo.name with
    | Some r -> r
    | None ->
        let r =
          Tables.compile_recorded
            ~name:(e.Zoo.name ^ "@chaos-smoke")
            (Lower.run (e.Zoo.tiny ()))
        in
        Hashtbl.replace cache e.Zoo.name r;
        r
  in
  run_with ~label:"smoke" ~souffle_of ~requests:24 ~out:"BENCH_chaos_smoke.json"
    ()
