bench/main.ml: Ablation Analyze Array Baseline Bechamel Benchmark Bert Device Efficientnet Fmt Hashtbl Instance List Lower Lstm Measure Mmoe Souffle Staged String Sys Tables Test Time Toolkit
