bin/debug2.mli:
