let () =
  Alcotest.run "souffle"
    [
      ("tensor", Test_tensor.suite);
      ("index", Test_index.suite);
      ("te", Test_te.suite);
      ("transform", Test_transform.suite);
      ("graph", Test_graph.suite);
      ("analysis", Test_analysis.suite);
      ("gpu", Test_gpu.suite);
      ("dataflow", Test_dataflow.suite);
      ("kernelgen", Test_kernelgen.suite);
      ("schedule", Test_schedule.suite);
      ("models", Test_models.suite);
      ("gpt", Test_gpt.suite);
      ("pipeline", Test_pipeline.suite);
      ("robustness", Test_robustness.suite);
      ("baselines", Test_baselines.suite);
      ("extensions", Test_extensions.suite);
      ("autodiff", Test_autodiff.suite);
      ("serialize", Test_serialize.suite);
      ("tir", Test_tir.suite);
      ("obs", Test_obs.suite);
      ("batch", Test_batch.suite);
      ("serve", Test_serve.suite);
      ("perf", Test_perf.suite);
      ("mega", Test_mega.suite);
    ]
