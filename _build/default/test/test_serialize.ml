(* Tests for the textual graph format: round-trips for every model, error
   reporting, and a qcheck random round-trip over the operator vocabulary. *)

let roundtrip (g : Dgraph.t) : Dgraph.t =
  match Serialize.of_string (Serialize.to_string g) with
  | Ok g' -> g'
  | Error m -> Alcotest.failf "roundtrip failed: %s" m

let graphs_equal (a : Dgraph.t) (b : Dgraph.t) =
  a.Dgraph.inputs = b.Dgraph.inputs
  && a.Dgraph.outputs = b.Dgraph.outputs
  && List.length a.Dgraph.nodes = List.length b.Dgraph.nodes
  && List.for_all2
       (fun (x : Dgraph.node) (y : Dgraph.node) ->
         x.Dgraph.name = y.Dgraph.name
         && x.Dgraph.inputs = y.Dgraph.inputs
         && Op.to_string x.Dgraph.op = Op.to_string y.Dgraph.op)
       a.Dgraph.nodes b.Dgraph.nodes

let test_roundtrip_all_models () =
  List.iter
    (fun (e : Zoo.entry) ->
      let g = e.Zoo.tiny () in
      Alcotest.(check bool) (e.Zoo.name ^ " roundtrips") true
        (graphs_equal g (roundtrip g)))
    Zoo.all

let test_roundtrip_full_bert () =
  let g = Bert.create () in
  Alcotest.(check bool) "full BERT roundtrips" true
    (graphs_equal g (roundtrip g))

let test_roundtrip_preserves_semantics () =
  let g = Mmoe.create ~cfg:Mmoe.tiny () in
  let g' = roundtrip g in
  match Interp.equivalent ~rtol:1e-6 (Lower.run g) (Lower.run g') with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_parse_handwritten () =
  let src =
    {|# a small model
input x f32 2x4
input w f32 4x3
node h = matmul x w
node a = unary relu h
node sm = softmax a
output sm|}
  in
  match Serialize.of_string src with
  | Error m -> Alcotest.fail m
  | Ok g ->
      Alcotest.(check int) "3 nodes" 3 (List.length g.Dgraph.nodes);
      Alcotest.(check (list string)) "outputs" [ "sm" ] g.Dgraph.outputs;
      let p = Lower.run g in
      ignore (Interp.run p (Interp.random_inputs p))

let test_parse_conv_attrs () =
  let src =
    {|input x f32 1x3x8x8
input w f32 4x3x3x3
node c = conv2d k3 s2 p1 g1 x w
output c|}
  in
  match Serialize.of_string src with
  | Error m -> Alcotest.fail m
  | Ok g -> (
      match (List.hd g.Dgraph.nodes).Dgraph.op with
      | Op.Conv2d { kernel = 3; stride = 2; padding = 1; groups = 1 } -> ()
      | op -> Alcotest.failf "wrong op %s" (Op.to_string op))

let test_errors_report_line () =
  let check_err src needle =
    match Serialize.of_string src with
    | Ok _ -> Alcotest.failf "expected failure for %S" src
    | Error m ->
        Alcotest.(check bool)
          (Fmt.str "%S mentions %S (got %S)" src needle m)
          true
          (Astring_contains.contains m needle)
  in
  check_err "input x f99 2x2" "dtype";
  check_err "node y = bogus x" "unknown";
  check_err "flurb" "cannot parse";
  check_err "input x f32 2x2\nnode y = matmul x x\noutput z" "output";
  check_err "input x f32 2x2\nnode y = conv2d k3 x" "malformed"

let test_scalar_shape () =
  let src = "input x f32 scalar\nnode y = unary relu x\noutput y" in
  match Serialize.of_string src with
  | Error m -> Alcotest.fail m
  | Ok g ->
      let info = List.assoc "x" g.Dgraph.inputs in
      Alcotest.(check int) "rank 0" 0 (Array.length info.Program.shape)

(* random single-node graphs over the whole op vocabulary *)
let random_op_graph (seed : int) : Dgraph.t =
  let rng = Rng.create seed in
  let open Dgraph in
  let b = B.create () in
  let pick l = List.nth l (Rng.int rng ~bound:(List.length l)) in
  let x4 () = B.input b "x" [| 1; 4; 6; 6 |] in
  let x2 () = B.input b "x" [| 4; 6 |] in
  let out =
    match Rng.int rng ~bound:10 with
    | 0 ->
        let x = B.input b "x" [| 4; 6 |] and w = B.input b "w" [| 6; 5 |] in
        B.add b ~name:"o" Op.Matmul [ x; w ]
    | 1 ->
        let x = x4 () and w = B.input b "w" [| 8; 4; 3; 3 |] in
        B.add b ~name:"o"
          (Op.Conv2d { kernel = 3; stride = 1; padding = 1; groups = 1 })
          [ x; w ]
    | 2 ->
        B.add b ~name:"o"
          (Op.Unary (pick [ Expr.Relu; Expr.Tanh; Expr.Exp; Expr.Step ]))
          [ x2 () ]
    | 3 ->
        let x = x2 () and y = B.input b "y" [| 4; 6 |] in
        B.add b ~name:"o"
          (Op.Binary (pick [ Expr.Add; Expr.Mul; Expr.Max ]))
          [ x; y ]
    | 4 -> B.add b ~name:"o" (Op.Reshape [| 24 |]) [ x2 () ]
    | 5 -> B.add b ~name:"o" (Op.Transpose [| 1; 0 |]) [ x2 () ]
    | 6 ->
        B.add b ~name:"o"
          (Op.Slice { starts = [| 1; 2 |]; sizes = [| 2; 3 |] })
          [ x2 () ]
    | 7 -> B.add b ~name:"o" Op.Softmax [ x2 () ]
    | 8 ->
        B.add b ~name:"o"
          (Op.Affine { scale = Rng.uniform rng ~lo:(-2.) ~hi:2.;
                       shift = Rng.uniform rng ~lo:(-1.) ~hi:1. })
          [ x2 () ]
    | _ ->
        B.add b ~name:"o"
          (Op.Pool2d { kind = pick [ Op.Max_pool; Op.Avg_pool ];
                       kernel = 2; stride = 2; padding = 0 })
          [ x4 () ]
  in
  B.finish b ~outputs:[ out ]

let qcheck_random_roundtrip =
  QCheck.Test.make ~name:"serialize roundtrip over op vocabulary" ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_op_graph seed in
      let g' = roundtrip g in
      graphs_equal g g'
      && Result.is_ok (Interp.equivalent (Lower.run g) (Lower.run g')))

let suite =
  [
    Alcotest.test_case "roundtrip all tiny models" `Quick
      test_roundtrip_all_models;
    Alcotest.test_case "roundtrip full bert" `Quick test_roundtrip_full_bert;
    Alcotest.test_case "roundtrip preserves semantics" `Quick
      test_roundtrip_preserves_semantics;
    Alcotest.test_case "parse handwritten" `Quick test_parse_handwritten;
    Alcotest.test_case "parse conv attrs" `Quick test_parse_conv_attrs;
    Alcotest.test_case "errors report line" `Quick test_errors_report_line;
    Alcotest.test_case "scalar shape" `Quick test_scalar_shape;
    QCheck_alcotest.to_alcotest qcheck_random_roundtrip;
  ]
