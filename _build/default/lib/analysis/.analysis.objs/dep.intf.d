lib/analysis/dep.mli: Amap Te
