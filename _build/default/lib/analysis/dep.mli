(** Element-wise dependence classification (§5.2).

    A TE without reduction axes is *one-relies-on-one*: each output element
    depends on exactly one element per input access, through a quasi-affine
    index map.  A TE with reduction axes is *one-relies-on-many*. *)

type t =
  | One_relies_on_one
      (** vertical transformation applies (§6.2) *)
  | One_relies_on_many of { axes : int array }
      (** reduction over the given extents; fused via two-phase block-local
          reduction + atomics (§6.3) *)

val classify : Te.t -> t

val is_one_to_one : Te.t -> bool

val affine_maps : Te.t -> (string * Amap.t) list option
(** The paper's [M·v + c] maps per input access of a one-relies-on-one TE;
    [None] when an access uses div/mod (still transformable by
    substitution) or the TE reduces. *)

val relation_to_string : Te.t -> string
(** The §5.2 polyhedral-notation relation, for documentation and
    debugging. *)
