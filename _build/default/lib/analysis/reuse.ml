(** Tensor-level data-reuse analysis (§5.1).

    Walks the TE dependency graph gathering every tensor read by more than
    one TE.  If the consumers are pairwise independent the reuse is
    *spatial* (the horizontal transformation of §6.1 can fuse them so the
    tensor is loaded once); if some consumers depend on each other it is
    *temporal* (the §6.5 software cache keeps the tensor on-chip between
    uses, like A1's output feeding both R1 and A2 in Fig. 1). *)

type entry = {
  tensor : string;
  consumers : string list;  (** TE names reading the tensor *)
}

type t = {
  spatial : entry list;
  temporal : entry list;
}

let find (p : Program.t) : t =
  let cons = Program.consumers p in
  let shared =
    Program.SMap.fold
      (fun tensor tes acc ->
        if List.length tes >= 2 then
          (tensor, List.map (fun (te : Te.t) -> te.Te.name) tes) :: acc
        else acc)
      cons []
    |> List.rev
  in
  (* Dependency depth of every TE (longest producer chain).  Consumers at
     the same depth are necessarily mutually unreachable (spatial reuse);
     consumers at different depths sit on a dependence chain in every case
     that occurs in practice (residual adds, recurrent state), so they are
     classified temporal without an O(V·E) reachability query per pair. *)
  let depth =
    List.fold_left
      (fun acc (te : Te.t) ->
        let d =
          List.fold_left
            (fun m i ->
              match Program.SMap.find_opt i acc with
              | Some di -> max m (di + 1)
              | None -> m)
            0 (Te.inputs te)
        in
        Program.SMap.add te.Te.name d acc)
      Program.SMap.empty p.Program.tes
  in
  let pairwise_independent names =
    match names with
    | [] -> true
    | first :: rest ->
        let d0 = Program.SMap.find_opt first depth in
        List.for_all (fun n -> Program.SMap.find_opt n depth = d0) rest
  in
  let spatial, temporal =
    List.partition (fun (_, names) -> pairwise_independent names) shared
  in
  let mk (tensor, consumers) = { tensor; consumers } in
  { spatial = List.map mk spatial; temporal = List.map mk temporal }

let spatial_tensors t = List.map (fun e -> e.tensor) t.spatial
let temporal_tensors t = List.map (fun e -> e.tensor) t.temporal

let is_temporal t tensor = List.exists (fun e -> e.tensor = tensor) t.temporal
let is_spatial t tensor = List.exists (fun e -> e.tensor = tensor) t.spatial

let pp ppf t =
  let pp_entry ppf e =
    Fmt.pf ppf "%s -> {%s}" e.tensor (String.concat ", " e.consumers)
  in
  Fmt.pf ppf "@[<v>spatial reuse:@,%a@,temporal reuse:@,%a@]"
    Fmt.(list ~sep:cut pp_entry) t.spatial
    Fmt.(list ~sep:cut pp_entry) t.temporal
