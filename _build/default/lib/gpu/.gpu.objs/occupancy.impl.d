lib/gpu/occupancy.ml: Device
