(** TensorIR-flavoured loop nests (Fig. 2 step 5).

    [of_te] applies a schedule to a tensor expression and produces the
    explicit loop structure a GPU code generator would emit: tile loops
    bound to [blockIdx]/[threadIdx], serial reduction loops split by the
    schedule's [rtile], shared-memory staging ([ldg2s]) when the schedule
    caches reads, accumulator initialization/update for reductions, and the
    final global store.  [render_cuda] prints it as compilable-looking CUDA.

    The simulator executes the coarser {!Kernel_ir}; this layer exists so
    the generated-code story of the paper is inspectable per TE, and it is
    what `souffle compile --cuda` appends for the curious reader. *)

type loop_kind =
  | Serial
  | Block_x of int   (** bound to blockIdx; payload = number of blocks *)
  | Thread_x of int  (** bound to threadIdx; payload = threads *)
  | Unrolled

type stmt =
  | For of { var : string; extent : int; kind : loop_kind; body : stmt list }
  | Alloc_shared of { buf : string; bytes : int }
  | Ldg2s of { buf : string; tensor : string; elems : int }
  | Acc_init of { acc : string; init : float }
  | Acc_update of { acc : string; op : Te.reduce_op; rhs : string }
  | Compute of { dst : string; rhs : string }
  | Store_global of { tensor : string; idxs : string list; src : string }
  | Sync_threads

type fn = {
  fname : string;
  params : string list;  (** tensor parameters *)
  body : stmt list;
}

(* variable name of output dim i under tiling: the reconstructed index *)
let ov_var i = Fmt.str "i%d" i
let rv_var i = Fmt.str "r%d" i

(* Render an index expression as a C expression over the loop variables. *)
let rec render_index (i : Index.t) : string =
  match i with
  | Index.Ov k -> ov_var k
  | Index.Rv k -> rv_var k
  | Index.Const c -> string_of_int c
  | Index.Add (a, Index.Const c) when c < 0 ->
      Fmt.str "(%s - %d)" (render_index a) (-c)
  | Index.Add (a, b) -> Fmt.str "(%s + %s)" (render_index a) (render_index b)
  | Index.Mul (a, k) -> Fmt.str "(%s * %d)" (render_index a) k
  | Index.Div (a, k) -> Fmt.str "(%s / %d)" (render_index a) k
  | Index.Mod (a, k) -> Fmt.str "(%s %% %d)" (render_index a) k

let render_access (tensor : string) (idxs : Index.t list) : string =
  Fmt.str "%s[%s]" tensor (String.concat ", " (List.map render_index idxs))

(* Render a scalar expression as a C expression. *)
let rec render_expr (e : Expr.t) : string =
  match e with
  | Expr.Const f -> Fmt.str "%.9gf" f
  | Expr.Read (t, idxs) -> render_access t idxs
  | Expr.IdxVal i -> Fmt.str "(float)%s" (render_index i)
  | Expr.Unop (u, a) -> (
      let s = render_expr a in
      match u with
      | Expr.Neg -> Fmt.str "(-%s)" s
      | Expr.Exp -> Fmt.str "__expf(%s)" s
      | Expr.Log -> Fmt.str "__logf(%s)" s
      | Expr.Sqrt -> Fmt.str "sqrtf(%s)" s
      | Expr.Rsqrt -> Fmt.str "rsqrtf(%s)" s
      | Expr.Tanh -> Fmt.str "tanhf(%s)" s
      | Expr.Sigmoid -> Fmt.str "(1.f / (1.f + __expf(-%s)))" s
      | Expr.Relu -> Fmt.str "fmaxf(0.f, %s)" s
      | Expr.Erf -> Fmt.str "erff(%s)" s
      | Expr.Abs -> Fmt.str "fabsf(%s)" s
      | Expr.Recip -> Fmt.str "(1.f / %s)" s
      | Expr.Step -> Fmt.str "(%s > 0.f ? 1.f : 0.f)" s)
  | Expr.Binop (b, x, y) -> (
      let sx = render_expr x and sy = render_expr y in
      match b with
      | Expr.Add -> Fmt.str "(%s + %s)" sx sy
      | Expr.Sub -> Fmt.str "(%s - %s)" sx sy
      | Expr.Mul -> Fmt.str "(%s * %s)" sx sy
      | Expr.Div -> Fmt.str "(%s / %s)" sx sy
      | Expr.Max -> Fmt.str "fmaxf(%s, %s)" sx sy
      | Expr.Min -> Fmt.str "fminf(%s, %s)" sx sy
      | Expr.Pow -> Fmt.str "powf(%s, %s)" sx sy)
  | Expr.Select (c, a, b) ->
      Fmt.str "(%s ? %s : %s)" (render_cond c) (render_expr a) (render_expr b)

and render_cond (c : Expr.cond) : string =
  match c with
  | Expr.Cmp (r, a, b) ->
      let op =
        match r with
        | Expr.Lt -> "<" | Expr.Le -> "<=" | Expr.Eq -> "=="
        | Expr.Ne -> "!=" | Expr.Ge -> ">=" | Expr.Gt -> ">"
      in
      Fmt.str "(%s %s %s)" (render_index a) op (render_index b)
  | Expr.And (a, b) -> Fmt.str "(%s && %s)" (render_cond a) (render_cond b)
  | Expr.Or (a, b) -> Fmt.str "(%s || %s)" (render_cond a) (render_cond b)
  | Expr.Not a -> Fmt.str "(!%s)" (render_cond a)

(** Apply a schedule to a TE: the loop nest of one kernel stage. *)
let of_te (p : Program.t) (te : Te.t) (s : Sched.t) : fn =
  let shape = te.Te.out_shape in
  let rank = Array.length shape in
  let acc = "acc" in
  (* innermost computation *)
  let out_idxs = List.init rank ov_var in
  let core =
    match te.Te.body with
    | Te.Compute e ->
        [
          Compute { dst = "val"; rhs = render_expr e };
          Store_global { tensor = te.Te.name; idxs = out_idxs; src = "val" };
        ]
    | Te.Reduce { op; axes; expr } ->
        let raxes = axes in
        let update =
          [ Acc_update { acc; op; rhs = render_expr expr } ]
        in
        (* serial reduction loops, innermost split by rtile *)
        let rec red_loops i body =
          if i < 0 then body
          else begin
            let extent = raxes.(i) in
            let rtile =
              if i < Array.length s.Sched.rtile then max 1 s.Sched.rtile.(i)
              else extent
            in
            let inner =
              if rtile >= extent then
                [ For { var = rv_var i; extent; kind = Serial; body } ]
              else
                [
                  For
                    {
                      var = rv_var i ^ "o";
                      extent = (extent + rtile - 1) / rtile;
                      kind = Serial;
                      body =
                        [ For { var = rv_var i; extent = rtile; kind = Unrolled; body } ];
                    };
                ]
            in
            red_loops (i - 1) inner
          end
        in
        [ Acc_init { acc; init = Te.reduce_identity op } ]
        @ red_loops (Array.length raxes - 1) update
        @ [ Store_global { tensor = te.Te.name; idxs = out_idxs; src = acc } ]
  in
  (* staging of cached inputs *)
  let numel_of = Sched.numel_of_program p in
  let staging =
    if not s.Sched.cache_read_smem then []
    else
      List.concat_map
        (fun (tensor, idxs) ->
          let elems = Sched.input_tile_elems ?numel:(numel_of tensor) s idxs in
          let buf = "s_" ^ tensor in
          [
            Alloc_shared
              { buf; bytes = elems * Dtype.bytes te.Te.dtype };
            Ldg2s { buf; tensor; elems };
          ])
        (Te.accesses te)
      @ [ Sync_threads ]
  in
  (* output-space loops: per dim, a block loop over tiles and a serial/
     thread loop within the tile *)
  let rec out_loops i body =
    if i < 0 then body
    else begin
      let extent = shape.(i) in
      let tile = if i < Array.length s.Sched.tile then max 1 s.Sched.tile.(i) else 1 in
      let blocks = (extent + tile - 1) / tile in
      let inner_kind =
        if i = rank - 1 then Thread_x (min tile s.Sched.threads_per_block)
        else Serial
      in
      let nest =
        if blocks = 1 then
          [ For { var = ov_var i; extent; kind = inner_kind; body } ]
        else
          [
            For
              {
                var = ov_var i ^ "o";
                extent = blocks;
                kind = Block_x blocks;
                body = [ For { var = ov_var i; extent = tile; kind = inner_kind; body } ];
              };
          ]
      in
      out_loops (i - 1) nest
    end
  in
  let body = staging @ out_loops (rank - 1) core in
  {
    fname = "te_" ^ te.Te.name;
    params = Te.inputs te @ [ te.Te.name ];
    body;
  }

(* ------------------------------------------------------------------ *)

let rec loops (stmts : stmt list) : stmt list =
  List.concat_map
    (function
      | For f as l -> l :: loops f.body
      | _ -> [])
    stmts

(** Product of the extents of the loops covering the output space equals the
    padded iteration-space size — used by the tests. *)
let iteration_space (f : fn) : int =
  List.fold_left
    (fun acc -> function
      | For { extent; kind = (Block_x _ | Thread_x _ | Serial); var; _ }
        when String.length var > 0 && var.[0] = 'i' ->
          acc * extent
      | _ -> acc)
    1 (loops f.body)

let render_cuda (f : fn) : string =
  let buf = Buffer.create 1024 in
  let pr ind fmt =
    Buffer.add_string buf (String.make (ind * 2) ' ');
    Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  pr 0 "__global__ void %s(%s) {" f.fname
    (String.concat ", " (List.map (fun p -> "float* " ^ p) f.params));
  let rec go ind = function
    | For { var; extent; kind; body } ->
        (match kind with
        | Serial -> pr ind "for (int %s = 0; %s < %d; ++%s) {" var var extent var
        | Unrolled ->
            pr ind "#pragma unroll";
            pr ind "for (int %s = 0; %s < %d; ++%s) {" var var extent var
        | Block_x n ->
            pr ind "{ int %s = blockIdx.x %% %d;  // %d blocks" var n n
        | Thread_x n ->
            pr ind "{ int %s = threadIdx.x %% %d;  // %d threads" var n n);
        List.iter (go (ind + 1)) body;
        pr ind "}"
    | Alloc_shared { buf = b; bytes } ->
        pr ind "__shared__ char %s[%d];" b bytes
    | Ldg2s { buf = b; tensor; elems } ->
        pr ind "ldg2s(%s, %s, %d);  // async copy, %d elements" b tensor elems
          elems
    | Acc_init { acc; init } -> pr ind "float %s = %h;" acc init
    | Acc_update { acc; op; rhs } -> (
        match op with
        | Te.Sum -> pr ind "%s += %s;" acc rhs
        | Te.Max -> pr ind "%s = fmaxf(%s, %s);" acc acc rhs
        | Te.Min -> pr ind "%s = fminf(%s, %s);" acc acc rhs
        | Te.Prod -> pr ind "%s *= %s;" acc rhs)
    | Compute { dst; rhs } -> pr ind "float %s = %s;" dst rhs
    | Store_global { tensor; idxs; src } ->
        pr ind "%s[%s] = %s;" tensor (String.concat ", " idxs) src
    | Sync_threads -> pr ind "__syncthreads();"
  in
  List.iter (go 1) f.body;
  pr 0 "}";
  Buffer.contents buf
