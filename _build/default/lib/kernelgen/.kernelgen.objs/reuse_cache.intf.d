lib/kernelgen/reuse_cache.mli:
