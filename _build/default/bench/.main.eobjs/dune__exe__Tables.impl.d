bench/tables.ml: Analysis Ansor Baseline Bert Counters Device Efficientnet Emit Fmt Hashtbl List Lower Option Program Sim Souffle Te Zoo
