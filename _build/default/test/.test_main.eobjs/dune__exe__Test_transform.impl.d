test/test_transform.ml: Alcotest Builder Dtype Expr Fmt Horizontal Index Interp List Option Program QCheck QCheck_alcotest Result Rng Te Vertical
