(** Per-kernel counter report: the join of the simulator's Nsight-style
    {!Counters} with kernel identity — kernel name (which encodes the
    subprogram index the emitter assigned), the TEs its stages implement,
    and the launch configuration.  This is the table that explains *why* a
    compilation variant wins: which kernel moved the DRAM bytes, which one
    paid the grid syncs, where the tensor-core time went.  Rendered as an
    aligned text table ({!pp}) or machine-readable JSON ({!to_json}). *)

type row = {
  r_kernel : string;       (** kernel name, [k<subprogram-index>_<head TE>] *)
  r_index : int;           (** position in launch order *)
  r_stream : int option;   (** serving stream id when run multi-stream *)
  r_tes : string list;     (** TE names from the kernel's stage labels *)
  r_grid : int;
  r_threads : int;
  r_smem : int;            (** bytes per block *)
  r_counters : Counters.t;
  r_compute_us : float;
  r_memory_us : float;
}

(* stage labels name the anchor TE of each fused region; dedup preserving
   first-occurrence order *)
let stage_tes (k : Kernel_ir.kernel) : string list =
  List.fold_left
    (fun acc (s : Kernel_ir.stage) ->
      if List.mem s.Kernel_ir.label acc then acc else acc @ [ s.Kernel_ir.label ])
    [] k.Kernel_ir.stages

let of_sim ?stream (sim : Sim.result) : row list =
  List.mapi
    (fun i (kr : Sim.kernel_result) ->
      let k = kr.Sim.kernel in
      {
        r_kernel = k.Kernel_ir.kname;
        r_index = i;
        r_stream = stream;
        r_tes = stage_tes k;
        r_grid = k.Kernel_ir.grid_blocks;
        r_threads = k.Kernel_ir.threads_per_block;
        r_smem = k.Kernel_ir.smem_per_block;
        r_counters = kr.Sim.kcounters;
        r_compute_us = kr.Sim.compute_us;
        r_memory_us = kr.Sim.memory_us;
      })
    sim.Sim.per_kernel

let truncate_name n s =
  if String.length s <= n then s else String.sub s 0 (n - 1) ^ "~"

let pp ppf (rows : row list) =
  Fmt.pf ppf "@[<v>";
  Fmt.pf ppf "%-26s %8s %6s %9s %9s %8s %8s %6s %7s %7s" "kernel" "grid"
    "syncs" "time_us" "DRAMrdMB" "DRAMwrMB" "L2_MB" "smemKB" "mma_M" "fma_M";
  List.iter
    (fun r ->
      let c = r.r_counters in
      Fmt.pf ppf "@,%-26s %8d %6d %9.2f %9.3f %8.3f %8.3f %6d %7.1f %7.1f"
        (truncate_name 26 r.r_kernel)
        r.r_grid c.Counters.grid_syncs c.Counters.time_us
        (Counters.mb (Counters.global_load_bytes c))
        (Counters.mb c.Counters.dram_write_bytes)
        (Counters.mb c.Counters.l2_read_bytes)
        (r.r_smem / 1024)
        (float_of_int c.Counters.mma_flops /. 1e6)
        (float_of_int c.Counters.fma_flops /. 1e6);
      Fmt.pf ppf "@,  %-24s tes: %s"
        ""
        (truncate_name 70 (String.concat ", " r.r_tes)))
    rows;
  Fmt.pf ppf "@]"

let row_to_json (r : row) : Jsonlite.t =
  let c = r.r_counters in
  let num f = Jsonlite.Num f in
  let int i = Jsonlite.Num (float_of_int i) in
  Jsonlite.Obj
    ([
       ("kernel", Jsonlite.Str r.r_kernel);
       ("index", int r.r_index);
     ]
    @ (match r.r_stream with
      | None -> []
      | Some s -> [ ("stream", int s) ])
    @ [
      ("tes", Jsonlite.Arr (List.map (fun t -> Jsonlite.Str t) r.r_tes));
      ("grid_blocks", int r.r_grid);
      ("threads_per_block", int r.r_threads);
      ("smem_per_block", int r.r_smem);
      ("time_us", num c.Counters.time_us);
      ("launch_us", num c.Counters.launch_us);
      ("compute_us", num r.r_compute_us);
      ("memory_us", num r.r_memory_us);
      ("grid_syncs", int c.Counters.grid_syncs);
      ("dram_read_bytes", int c.Counters.dram_read_bytes);
      ("dram_write_bytes", int c.Counters.dram_write_bytes);
      ("l2_read_bytes", int c.Counters.l2_read_bytes);
      ("smem_read_bytes", int c.Counters.smem_read_bytes);
      ("atomic_bytes", int c.Counters.atomic_bytes);
      ("mma_flops", int c.Counters.mma_flops);
      ("fma_flops", int c.Counters.fma_flops);
      ("sfu_ops", int c.Counters.sfu_ops);
      ("lsu_utilization", num (Counters.lsu_utilization c));
      ("fma_utilization", num (Counters.fma_utilization c));
      ("mma_utilization", num (Counters.mma_utilization c));
    ])

(** Launch-latency share of a simulated program: the fraction of total
    wall time spent in kernel-launch latency.  This is the quantity
    mega-kernelization attacks — a multi-kernel program pays it once per
    kernel, a mega program once total — so reports surface it directly
    instead of leaving the win implicit in bench deltas. *)
let launch_share (sim : Sim.result) : float =
  let t = sim.Sim.total.Counters.time_us in
  if t <= 0. then 0. else sim.Sim.total.Counters.launch_us /. t

let pp_total ppf (sim : Sim.result) =
  let c = sim.Sim.total in
  Fmt.pf ppf "total: %.2f us over %d launch(es); launch latency %.2f us (%.1f%% of total)"
    c.Counters.time_us c.Counters.kernel_launches c.Counters.launch_us
    (100. *. launch_share sim)

(** The whole report as JSON: [meta] carries compile-level identity
    (model, optimization level, device) the rows themselves don't know. *)
let to_json ?(meta = []) (sim : Sim.result) : Jsonlite.t
    =
  Jsonlite.Obj
    [
      ( "meta",
        Jsonlite.Obj (List.map (fun (k, v) -> (k, Jsonlite.Str v)) meta) );
      ("kernels", Jsonlite.Arr (List.map row_to_json (of_sim sim)));
      ( "total",
        Jsonlite.Obj
          [
            ("time_us", Jsonlite.Num sim.Sim.total.Counters.time_us);
            ("launch_us", Jsonlite.Num sim.Sim.total.Counters.launch_us);
            ("launch_share", Jsonlite.Num (launch_share sim));
            ( "kernel_launches",
              Jsonlite.Num
                (float_of_int sim.Sim.total.Counters.kernel_launches) );
            ( "global_load_bytes",
              Jsonlite.Num
                (float_of_int (Counters.global_load_bytes sim.Sim.total)) );
            ( "dram_write_bytes",
              Jsonlite.Num
                (float_of_int sim.Sim.total.Counters.dram_write_bytes) );
          ] );
    ]
