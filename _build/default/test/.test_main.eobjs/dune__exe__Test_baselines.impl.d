test/test_baselines.ml: Alcotest Baseline Bert Counters Emit Fmt Kernel_ir List Lower Lstm Option Program Result Sim Souffle Te Zoo
