(** Compute- vs memory-intensity characterization (§5.3).

    A TE's compute-memory ratio divides its arithmetic-instruction count by
    its memory footprint in elements (distinct input elements read plus
    output elements written); the classification threshold is 3, the paper's
    empirical constant.  Only reduction TEs can amortize enough arithmetic
    per element to classify compute-intensive. *)

type kind = Compute_intensive | Memory_intensive

val threshold : float
(** The paper's empirical constant: 3 arithmetic instructions per element. *)

val kind_to_string : kind -> string

val footprint_elems : Program.t -> Te.t -> int
(** Unique elements touched: every distinct input tensor plus the output. *)

val footprint_bytes : Program.t -> Te.t -> int

val arith_instrs : Te.t -> int
(** Arithmetic instructions to materialize the output (a transcendental
    issues as one SFU instruction). *)

val ratio : Program.t -> Te.t -> float

val classify : Program.t -> Te.t -> kind

val is_compute_intensive : Program.t -> Te.t -> bool
