(** ResNeXt-101 (Xie et al., CVPR'17) — aggregated residual transformations,
    cardinality 32, bottleneck width 4 (Table 2), batch 1, ImageNet input.

    Blocks are written in the paper's explicit split-transform-merge form
    (b): each of the 32 branches is its own 1x1 -> 3x3 conv pair followed by
    a concat and the 1x1 merge.  This is exactly the form that defeats
    per-operator compilers (one kernel per branch conv — Table 5's 2406
    TensorRT kernels) and that Souffle's horizontal transformation collapses
    back into grouped computations.  Batch norms are folded into per-channel
    biases, as every inference deployment does. *)

open Dgraph

type config = {
  cardinality : int;
  base_width : int;       (** bottleneck width per branch at stage 1 *)
  stage_blocks : int list;
  image : int;
  stem_channels : int;
  num_classes : int;
}

let base =
  { cardinality = 32; base_width = 4; stage_blocks = [ 3; 4; 23; 3 ];
    image = 224; stem_channels = 64; num_classes = 1000 }

let tiny =
  { cardinality = 4; base_width = 2; stage_blocks = [ 1; 1 ];
    image = 16; stem_channels = 4; num_classes = 8 }

let conv_bn (b : B.builder) ~prefix ~cin ~cout ~kernel ~stride ~padding
    ?(relu = true) (x : string) : string =
  let w = B.input b (prefix ^ "_w") [| cout; cin; kernel; kernel |] in
  let bias = B.input b (prefix ^ "_bnb") [| cout |] in
  let c =
    B.add b ~name:(prefix ^ "_conv")
      (Op.Conv2d { kernel; stride; padding; groups = 1 })
      [ x; w ]
  in
  let c = B.add b ~name:(prefix ^ "_bn") Op.Bias_channels [ c; bias ] in
  if relu then B.add b ~name:(prefix ^ "_relu") (Op.Unary Expr.Relu) [ c ]
  else c

(* One aggregated-transform bottleneck block in explicit branch form. *)
let block (b : B.builder) (cfg : config) ~prefix ~cin ~width ~cout ~stride
    (x : string) : string =
  let branches =
    List.init cfg.cardinality (fun j ->
        let p = Fmt.str "%s_br%d" prefix j in
        let r =
          conv_bn b ~prefix:(p ^ "_reduce") ~cin ~cout:width ~kernel:1
            ~stride:1 ~padding:0 x
        in
        conv_bn b ~prefix:(p ^ "_trans") ~cin:width ~cout:width ~kernel:3
          ~stride ~padding:1 r)
  in
  let merged =
    B.add b ~name:(prefix ^ "_concat") (Op.Concat { axis = 1 }) branches
  in
  let expanded =
    conv_bn b ~prefix:(prefix ^ "_expand")
      ~cin:(width * cfg.cardinality)
      ~cout ~kernel:1 ~stride:1 ~padding:0 ~relu:false merged
  in
  let shortcut =
    if stride = 1 && cin = cout then x
    else
      conv_bn b ~prefix:(prefix ^ "_short") ~cin ~cout ~kernel:1 ~stride
        ~padding:0 ~relu:false x
  in
  let s = B.add b ~name:(prefix ^ "_add") (Op.Binary Expr.Add) [ expanded; shortcut ] in
  B.add b ~name:(prefix ^ "_out") (Op.Unary Expr.Relu) [ s ]

let create ?(cfg = base) () : Dgraph.t =
  let b = B.create () in
  let x = B.input b "image" [| 1; 3; cfg.image; cfg.image |] in
  let stem =
    conv_bn b ~prefix:"stem" ~cin:3 ~cout:cfg.stem_channels ~kernel:7
      ~stride:2 ~padding:3 x
  in
  let pooled =
    B.add b ~name:"stem_pool"
      (Op.Pool2d { kind = Op.Max_pool; kernel = 3; stride = 2; padding = 1 })
      [ stem ]
  in
  let out = ref pooled in
  let cin = ref cfg.stem_channels in
  List.iteri
    (fun stage_idx nblocks ->
      let width = cfg.base_width * (1 lsl stage_idx) in
      let cout = cfg.stem_channels * 4 * (1 lsl stage_idx) in
      for blk = 0 to nblocks - 1 do
        let stride = if stage_idx > 0 && blk = 0 then 2 else 1 in
        out :=
          block b cfg
            ~prefix:(Fmt.str "s%d_b%d" stage_idx blk)
            ~cin:!cin ~width ~cout ~stride !out;
        cin := cout
      done)
    cfg.stage_blocks;
  let gap = B.add b ~name:"gap" Op.Global_avg_pool [ !out ] in
  let wfc = B.input b "fc_w" [| !cin; cfg.num_classes |] in
  let logits = B.add b ~name:"logits" Op.Matmul [ gap; wfc ] in
  B.finish b ~outputs:[ logits ]
