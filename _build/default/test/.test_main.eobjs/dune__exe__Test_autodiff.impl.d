test/test_autodiff.ml: Alcotest Autodiff B Dgraph Expr Float Interp List Lower Mmoe Nd Op Option Program Souffle Te
