lib/te/builder.ml: Array Dtype Expr Index List Shape Te
