(** Per-request latency accounting over a {!Scheduler.outcome}: tail
    percentiles, throughput, slowdown versus solo execution, the
    time-weighted SM/bandwidth occupancy, plus machine-readable JSON and a
    stream-aware Chrome trace (one swimlane per concurrency slot). *)

type summary = {
  s_requests : int;
  s_offered_rps : float;     (** arrival rate over the arrival window *)
  s_throughput_rps : float;  (** completions over [first arrival, last finish] *)
  s_p50_ms : float;
  s_p95_ms : float;
  s_p99_ms : float;
  s_mean_ms : float;
  s_max_ms : float;          (** all latencies include queueing *)
  s_mean_service_ms : float; (** on-device time only *)
  s_mean_slowdown : float;   (** service / solo, 1.0 = no contention *)
  s_makespan_ms : float;
  s_avg_sm_demand : float;   (** time-weighted SMs demanded over the window *)
  s_avg_resident : float;    (** time-weighted co-resident streams *)
  s_peak_resident : int;
  s_dram_gb : float;         (** solo global-memory traffic served *)
  (* request-lifecycle counts; all zero unless deadlines/retries/caps or a
     chaos fault actually fired, so baseline reports are unchanged *)
  s_retried : int;    (** requests completed after >= 1 faulted attempt *)
  s_timed_out : int;  (** deadline-cancelled in flight or expired queued *)
  s_rejected : int;   (** shed or rejected by admission control *)
  s_failed : int;     (** faults exhausted the retry budget *)
  s_faults : int;     (** faulted or hung dispatched attempts *)
  s_retries : int;    (** retry dispatches scheduled *)
  (* continuous-batching attribution; zero unless a dispatch coalesced *)
  s_batched : int;     (** completions that rode a batched stream *)
  s_mean_batch : float;  (** mean bucket size over those completions *)
  (* mega-kernel attribution; zero unless a mega artifact served requests *)
  s_mega : int;          (** completions served by a mega-kernel artifact *)
  s_elided : int;        (** kernel launches elided across those completions *)
  (* prefill/decode attribution; zero unless generation requests ran, so
     one-shot reports are unchanged.  Request-level latency stats above
     count only {e terminal} completions (a generation request's last
     decode step), so a 16-token request is one request, not 17 *)
  s_prefills : int;        (** prefill-phase completions *)
  s_decodes : int;         (** decode-step completions (tokens generated) *)
  s_prefill_p50_ms : float;  (** prefill phase latency (issue to finish) *)
  s_prefill_p95_ms : float;
  s_decode_p50_ms : float;   (** per-token decode latency (issue to finish) *)
  s_decode_p95_ms : float;
  s_tokens_per_s : float;
      (** decode completions over the [first decode issue, last decode
          finish] window *)
}

(** Any lifecycle event at all?  False on every fault-free run. *)
let lifecycle_active (s : summary) =
  s.s_retried > 0 || s.s_timed_out > 0 || s.s_rejected > 0 || s.s_failed > 0
  || s.s_faults > 0 || s.s_retries > 0

(** Did any generation phase run?  False on every one-shot run. *)
let gen_active (s : summary) = s.s_prefills > 0 || s.s_decodes > 0

(** Nearest-rank percentile over a float array sorted with [Float.compare]
    (total order, so a stray NaN cannot scramble the sort the way
    polymorphic [compare] on boxed floats could).  NaN samples are dropped
    before ranking; [nan] on an empty (or all-NaN) input. *)
let percentile (xs : float list) (p : float) : float =
  let a = Array.of_list (List.filter (fun x -> not (Float.is_nan x)) xs) in
  let n = Array.length a in
  if n = 0 then nan
  else begin
    Array.sort Float.compare a;
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))
  end

let summarize (o : Scheduler.outcome) : summary =
  let cs = o.Scheduler.o_completed in
  (* request-level stats rank only terminal completions (every completion
     on a one-shot run, the last decode step of a generation request) —
     otherwise an n-token request would count as n + 1 requests *)
  let terms = List.filter Scheduler.is_terminal cs in
  let n = List.length terms in
  let lat_ms =
    List.map (fun c -> Scheduler.latency_us c /. 1e3) terms
  in
  let sum = List.fold_left ( +. ) 0. in
  let arrivals =
    List.map
      (fun (c : Scheduler.completed) -> c.Scheduler.c_req.Workload.rq_arrival_us)
      terms
  in
  let first_arrival = List.fold_left Float.min infinity arrivals in
  let last_arrival = List.fold_left Float.max 0. arrivals in
  let last_finish =
    List.fold_left
      (fun a (c : Scheduler.completed) -> Float.max a c.Scheduler.c_finish_us)
      0. cs
  in
  let window_us = last_finish -. Float.min first_arrival last_finish in
  let arrival_window_us = last_arrival -. Float.min first_arrival last_arrival in
  let fn = float_of_int n in
  (* device-side aggregates (service, slowdown, traffic) cover every
     completion: prefill and decode phases did real work *)
  let all_n = List.length cs in
  let all_fn = float_of_int all_n in
  let prefills =
    List.filter
      (fun (c : Scheduler.completed) -> c.Scheduler.c_phase = Scheduler.Prefill)
      cs
  in
  let decodes =
    List.filter
      (fun (c : Scheduler.completed) ->
        match c.Scheduler.c_phase with Scheduler.Decode _ -> true | _ -> false)
      cs
  in
  let phase_ms xs =
    List.map (fun c -> Scheduler.phase_latency_us c /. 1e3) xs
  in
  let ndec = List.length decodes in
  let tokens_per_s =
    if ndec = 0 then 0.
    else begin
      let first_issue =
        List.fold_left
          (fun a (c : Scheduler.completed) -> Float.min a c.Scheduler.c_issue_us)
          infinity decodes
      in
      let last_fin =
        List.fold_left
          (fun a (c : Scheduler.completed) -> Float.max a c.Scheduler.c_finish_us)
          0. decodes
      in
      let w = last_fin -. first_issue in
      if w > 0. then float_of_int ndec /. (w /. 1e6) else 0.
    end
  in
  let wsum f =
    List.fold_left
      (fun a (s : Sim.Multi.sample) -> a +. (s.Sim.Multi.sa_dur_us *. f s))
      0. o.Scheduler.o_samples
  in
  {
    s_requests = n;
    s_offered_rps =
      (if arrival_window_us > 0. then (fn -. 1.) /. (arrival_window_us /. 1e6)
       else 0.);
    s_throughput_rps =
      (if window_us > 0. then fn /. (window_us /. 1e6) else 0.);
    s_p50_ms = percentile lat_ms 50.;
    s_p95_ms = percentile lat_ms 95.;
    s_p99_ms = percentile lat_ms 99.;
    s_mean_ms = (if n = 0 then nan else sum lat_ms /. fn);
    s_max_ms = List.fold_left Float.max 0. lat_ms;
    s_mean_service_ms =
      (if all_n = 0 then nan
       else
         sum (List.map (fun (c : Scheduler.completed) -> c.Scheduler.c_service_us) cs)
         /. all_fn /. 1e3);
    s_mean_slowdown =
      (if all_n = 0 then nan
       else
         sum
           (List.map
              (fun (c : Scheduler.completed) ->
                if c.Scheduler.c_solo_us > 0. then
                  c.Scheduler.c_service_us /. c.Scheduler.c_solo_us
                else 1.)
              cs)
         /. all_fn);
    s_makespan_ms = o.Scheduler.o_makespan_us /. 1e3;
    s_avg_sm_demand =
      (if window_us > 0. then
         wsum (fun s -> float_of_int s.Sim.Multi.sa_sm_demand) /. window_us
       else 0.);
    s_avg_resident =
      (if window_us > 0. then
         wsum (fun s -> float_of_int s.Sim.Multi.sa_resident) /. window_us
       else 0.);
    s_peak_resident =
      List.fold_left
        (fun a (s : Sim.Multi.sample) -> max a s.Sim.Multi.sa_resident)
        0 o.Scheduler.o_samples;
    s_dram_gb =
      float_of_int
        (List.fold_left
           (fun a (c : Scheduler.completed) -> a + c.Scheduler.c_bytes)
           0 cs)
      /. 1e9;
    s_retried =
      List.length
        (List.filter (fun (c : Scheduler.completed) -> c.Scheduler.c_retries > 0) cs);
    s_timed_out =
      List.length
        (List.filter
           (fun (a : Scheduler.aborted) -> a.Scheduler.a_reason = Scheduler.Deadline)
           o.Scheduler.o_aborted)
      + List.length
          (List.filter
             (fun (d : Scheduler.dropped) -> d.Scheduler.d_reason = Scheduler.Expired)
             o.Scheduler.o_dropped);
    s_rejected =
      List.length
        (List.filter
           (fun (d : Scheduler.dropped) -> d.Scheduler.d_reason <> Scheduler.Expired)
           o.Scheduler.o_dropped);
    s_failed = List.length o.Scheduler.o_failed;
    s_faults =
      List.length
        (List.filter
           (fun (a : Scheduler.aborted) -> a.Scheduler.a_reason <> Scheduler.Deadline)
           o.Scheduler.o_aborted);
    s_retries =
      List.length
        (List.filter
           (fun (a : Scheduler.aborted) -> a.Scheduler.a_reason <> Scheduler.Deadline)
           o.Scheduler.o_aborted)
      - List.length o.Scheduler.o_failed;
    s_batched =
      List.length
        (List.filter (fun (c : Scheduler.completed) -> c.Scheduler.c_batch > 1) cs);
    s_mean_batch =
      (match
         List.filter (fun (c : Scheduler.completed) -> c.Scheduler.c_batch > 1) cs
       with
      | [] -> 0.
      | bs ->
          sum (List.map (fun (c : Scheduler.completed) ->
                   float_of_int c.Scheduler.c_batch) bs)
          /. float_of_int (List.length bs));
    s_mega =
      List.length
        (List.filter (fun (c : Scheduler.completed) -> c.Scheduler.c_mega) cs);
    s_elided =
      List.fold_left
        (fun a (c : Scheduler.completed) -> a + c.Scheduler.c_elided)
        0 cs;
    s_prefills = List.length prefills;
    s_decodes = ndec;
    s_prefill_p50_ms = percentile (phase_ms prefills) 50.;
    s_prefill_p95_ms = percentile (phase_ms prefills) 95.;
    s_decode_p50_ms = percentile (phase_ms decodes) 50.;
    s_decode_p95_ms = percentile (phase_ms decodes) 95.;
    s_tokens_per_s = tokens_per_s;
  }

(* printed inside pp_summary's vbox; silent unless a lifecycle event fired,
   which keeps fault-free output byte-identical to the pre-lifecycle layout *)
let pp_lifecycle ppf (s : summary) =
  if lifecycle_active s then
    Fmt.pf ppf
      "@,lifecycle: retried %d  timed-out %d  rejected %d  failed %d  \
       (faults %d, retries %d)"
      s.s_retried s.s_timed_out s.s_rejected s.s_failed s.s_faults s.s_retries

(* like {!pp_lifecycle}: silent on every one-shot run, so phase-free
   output stays byte-identical to the goldens *)
let pp_gen ppf (s : summary) =
  if gen_active s then
    Fmt.pf ppf
      "@,generation: %d prefill(s) p50 %.3f p95 %.3f ms, %d token(s) p50 \
       %.3f p95 %.3f ms, %.1f tok/s"
      s.s_prefills s.s_prefill_p50_ms s.s_prefill_p95_ms s.s_decodes
      s.s_decode_p50_ms s.s_decode_p95_ms s.s_tokens_per_s

(* like {!pp_lifecycle}: silent on every unbatched run *)
let pp_batching ppf (s : summary) =
  if s.s_batched > 0 then
    Fmt.pf ppf "@,batching: %d request(s) coalesced, mean bucket x%.2f"
      s.s_batched s.s_mean_batch

(* like {!pp_lifecycle}: silent unless mega artifacts served requests, so
   non-mega output stays byte-identical to the goldens *)
let pp_mega ppf (s : summary) =
  if s.s_mega > 0 then
    Fmt.pf ppf
      "@,mega: %d request(s) on persistent kernels, %d launch(es) elided \
       (%.1f per request)"
      s.s_mega s.s_elided
      (float_of_int s.s_elided /. float_of_int s.s_mega)

let pp_summary ppf (s : summary) =
  Fmt.pf ppf
    "@[<v>requests: %d  (offered %.1f rps, served %.1f rps)@,\
     latency ms: p50 %.3f  p95 %.3f  p99 %.3f  mean %.3f  max %.3f@,\
     service: mean %.3f ms, slowdown x%.2f vs solo@,\
     makespan: %.3f ms, DRAM served: %.3f GB@,\
     occupancy: avg %.1f SMs demanded, %.2f streams resident (peak %d)%a%a%a%a@]"
    s.s_requests s.s_offered_rps s.s_throughput_rps s.s_p50_ms s.s_p95_ms
    s.s_p99_ms s.s_mean_ms s.s_max_ms s.s_mean_service_ms s.s_mean_slowdown
    s.s_makespan_ms s.s_dram_gb s.s_avg_sm_demand s.s_avg_resident
    s.s_peak_resident pp_gen s pp_mega s pp_batching s pp_lifecycle s

let summary_json (s : summary) : Jsonlite.t =
  let num n v = (n, Jsonlite.Num v) in
  Jsonlite.Obj
    ([
      num "requests" (float_of_int s.s_requests);
      num "offered_rps" s.s_offered_rps;
      num "throughput_rps" s.s_throughput_rps;
      num "p50_ms" s.s_p50_ms;
      num "p95_ms" s.s_p95_ms;
      num "p99_ms" s.s_p99_ms;
      num "mean_ms" s.s_mean_ms;
      num "max_ms" s.s_max_ms;
      num "mean_service_ms" s.s_mean_service_ms;
      num "mean_slowdown" s.s_mean_slowdown;
      num "makespan_ms" s.s_makespan_ms;
      num "avg_sm_demand" s.s_avg_sm_demand;
      num "avg_resident" s.s_avg_resident;
      num "peak_resident" (float_of_int s.s_peak_resident);
      num "dram_gb" s.s_dram_gb;
    ]
    @
    (* generation attribution appears only when a prefill or decode phase
       completed, so one-shot JSON stays byte-identical to the baseline *)
    (if gen_active s then
       [
         num "prefills" (float_of_int s.s_prefills);
         num "decodes" (float_of_int s.s_decodes);
         num "prefill_p50_ms" s.s_prefill_p50_ms;
         num "prefill_p95_ms" s.s_prefill_p95_ms;
         num "decode_p50_ms" s.s_decode_p50_ms;
         num "decode_p95_ms" s.s_decode_p95_ms;
         num "tokens_per_s" s.s_tokens_per_s;
       ]
     else [])
    @
    (* mega attribution appears only when a mega artifact served requests,
       so non-mega JSON stays byte-identical to the baseline *)
    (if s.s_mega > 0 then
       [
         num "mega" (float_of_int s.s_mega);
         num "launches_elided" (float_of_int s.s_elided);
       ]
     else [])
    @
    (* batching attribution appears only once a dispatch coalesced, so
       unbatched JSON stays byte-identical to the baseline *)
    (if s.s_batched > 0 then
       [
         num "batched" (float_of_int s.s_batched);
         num "mean_batch" s.s_mean_batch;
       ]
     else [])
    @
    (* lifecycle counters appear only once a lifecycle event has fired, so
       fault-free JSON stays byte-identical to the baseline *)
    (if lifecycle_active s then
       [
         num "retried" (float_of_int s.s_retried);
         num "timed_out" (float_of_int s.s_timed_out);
         num "rejected" (float_of_int s.s_rejected);
         num "failed" (float_of_int s.s_failed);
         num "faults" (float_of_int s.s_faults);
         num "retries" (float_of_int s.s_retries);
       ]
     else []))

let completed_json (c : Scheduler.completed) : Jsonlite.t =
  let num n v = (n, Jsonlite.Num v) in
  Jsonlite.Obj
    ([
      num "id" (float_of_int c.Scheduler.c_req.Workload.rq_id);
      ("model", Jsonlite.Str c.Scheduler.c_model);
      num "stream" (float_of_int c.Scheduler.c_stream);
      num "slot" (float_of_int c.Scheduler.c_slot);
      num "arrival_us" c.Scheduler.c_req.Workload.rq_arrival_us;
      num "dispatch_us" c.Scheduler.c_dispatch_us;
      num "finish_us" c.Scheduler.c_finish_us;
      num "latency_us" (Scheduler.latency_us c);
      num "service_us" c.Scheduler.c_service_us;
      num "solo_us" c.Scheduler.c_solo_us;
    ]
    (* only retried requests carry the extra field: first-try completions
       serialize exactly as before the lifecycle existed *)
    @ (if c.Scheduler.c_retries > 0 then
         [ num "retries" (float_of_int c.Scheduler.c_retries) ]
       else [])
    (* likewise, only batched members carry their bucket size *)
    @ (if c.Scheduler.c_batch > 1 then
         [ num "batch" (float_of_int c.Scheduler.c_batch) ]
       else [])
    (* and only mega-served requests carry their elided-launch count *)
    @ (if c.Scheduler.c_mega then
         [ num "launches_elided" (float_of_int c.Scheduler.c_elided) ]
       else [])
    (* generation phases carry their phase label and issue-relative latency;
       one-shot completions serialize exactly as before phases existed *)
    @ (if c.Scheduler.c_phase <> Scheduler.Single then
         [
           ( "phase",
             Jsonlite.Str (Scheduler.phase_to_string c.Scheduler.c_phase) );
           num "issue_us" c.Scheduler.c_issue_us;
           num "phase_latency_us" (Scheduler.phase_latency_us c);
         ]
       else []))

let aborted_json (a : Scheduler.aborted) : Jsonlite.t =
  let num n v = (n, Jsonlite.Num v) in
  Jsonlite.Obj
    ([
       num "id" (float_of_int a.Scheduler.a_req.Workload.rq_id);
       ("model", Jsonlite.Str a.Scheduler.a_model);
       num "try" (float_of_int a.Scheduler.a_try);
       num "stream" (float_of_int a.Scheduler.a_stream);
       num "slot" (float_of_int a.Scheduler.a_slot);
       num "dispatch_us" a.Scheduler.a_dispatch_us;
       num "end_us" a.Scheduler.a_end_us;
       num "service_us" a.Scheduler.a_service_us;
       ("reason", Jsonlite.Str (Scheduler.abort_reason_to_string a.Scheduler.a_reason));
     ]
    @
    if a.Scheduler.a_phase <> Scheduler.Single then
      [ ("phase", Jsonlite.Str (Scheduler.phase_to_string a.Scheduler.a_phase)) ]
    else [])

let dropped_json (d : Scheduler.dropped) : Jsonlite.t =
  Jsonlite.Obj
    [
      ("id", Jsonlite.Num (float_of_int d.Scheduler.d_req.Workload.rq_id));
      ("model", Jsonlite.Str d.Scheduler.d_req.Workload.rq_model);
      ("time_us", Jsonlite.Num d.Scheduler.d_time_us);
      ("reason", Jsonlite.Str (Scheduler.drop_reason_to_string d.Scheduler.d_reason));
    ]

let failed_json ((r : Workload.request), t, attempts) : Jsonlite.t =
  Jsonlite.Obj
    [
      ("id", Jsonlite.Num (float_of_int r.Workload.rq_id));
      ("model", Jsonlite.Str r.Workload.rq_model);
      ("failed_us", Jsonlite.Num t);
      ("attempts", Jsonlite.Num (float_of_int attempts));
    ]

(** The whole outcome as JSON: configuration, summary, and one record per
    completed request (the latency sample set behind the percentiles).
    Aborted attempts, drops, and failed requests appear as extra arrays
    only when present, so fault-free output is unchanged. *)
let outcome_json ?(label = "") (o : Scheduler.outcome) : Jsonlite.t =
  let opt name xs f = if xs = [] then [] else [ (name, Jsonlite.Arr (List.map f xs)) ] in
  Jsonlite.Obj
    ([
       ("label", Jsonlite.Str label);
       ("policy", Jsonlite.Str (Scheduler.policy_to_string o.Scheduler.o_policy));
       ("max_streams", Jsonlite.Num (float_of_int o.Scheduler.o_max_streams));
       ("summary", summary_json (summarize o));
       ( "requests",
         Jsonlite.Arr (List.map completed_json o.Scheduler.o_completed) );
     ]
    @ opt "aborted" o.Scheduler.o_aborted aborted_json
    @ opt "dropped" o.Scheduler.o_dropped dropped_json
    @ opt "failed" o.Scheduler.o_failed failed_json)

(** Stream-aware Chrome trace: one swimlane (thread row) per concurrency
    slot; each request is a complete-event span from arrival to finish with
    its contended kernel slices as children on the same lane.  Faulted,
    hung, and deadline-cancelled attempts get their own spans, colored
    distinctly ([cname]); completions that needed a retry are yellow. *)
let chrome_trace (o : Scheduler.outcome) : Obs.trace =
  let spans =
    List.map
      (fun (c : Scheduler.completed) ->
        let tid = string_of_int (c.Scheduler.c_slot + 1) in
        let children =
          List.map
            (fun (kname, a, b) ->
              Obs.make_span ~meta:[ ("tid", tid) ] ~start_us:a
                ~dur_us:(b -. a) kname)
            c.Scheduler.c_slices
        in
        Obs.make_span
          ~meta:
            ([
               ("tid", tid);
               ("model", c.Scheduler.c_model);
               ("stream", string_of_int c.Scheduler.c_stream);
               (* queueing measured from the phase's own issue time, which
                  is the arrival for one-shot requests *)
               ( "queued_us",
                 Fmt.str "%.3f"
                   (c.Scheduler.c_dispatch_us -. c.Scheduler.c_issue_us) );
             ]
            @ (match c.Scheduler.c_phase with
              | Scheduler.Single -> []
              | p -> [ ("phase", Scheduler.phase_to_string p) ])
            @ (if c.Scheduler.c_batch > 1 then
                 [ ("batch", string_of_int c.Scheduler.c_batch) ]
               else [])
            @
            if c.Scheduler.c_retries > 0 then
              [
                ("retries", string_of_int c.Scheduler.c_retries);
                ("cname", "yellow");
              ]
            else [])
          ~children ~start_us:c.Scheduler.c_issue_us
          ~dur_us:(Scheduler.phase_latency_us c)
          (let id = c.Scheduler.c_req.Workload.rq_id in
           match c.Scheduler.c_phase with
           | Scheduler.Single -> Fmt.str "%s#%d" c.Scheduler.c_model id
           | Scheduler.Prefill -> Fmt.str "%s@p#%d" c.Scheduler.c_model id
           | Scheduler.Decode t -> Fmt.str "%s@d%d#%d" c.Scheduler.c_model t id))
      o.Scheduler.o_completed
  in
  let abort_spans =
    List.map
      (fun (a : Scheduler.aborted) ->
        let tid = string_of_int (a.Scheduler.a_slot + 1) in
        let outcome, cname =
          match a.Scheduler.a_reason with
          | Scheduler.Fault -> ("faulted", "terrible")
          | Scheduler.Hung -> ("hung", "terrible")
          | Scheduler.Deadline -> ("timed-out", "bad")
        in
        let children =
          List.map
            (fun (kname, s, e) ->
              Obs.make_span ~meta:[ ("tid", tid) ] ~start_us:s ~dur_us:(e -. s)
                kname)
            a.Scheduler.a_slices
        in
        Obs.make_span
          ~meta:
            [
              ("tid", tid);
              ("model", a.Scheduler.a_model);
              ("stream", string_of_int a.Scheduler.a_stream);
              ("outcome", outcome);
              ("try", string_of_int a.Scheduler.a_try);
              ("cname", cname);
            ]
          ~children ~start_us:a.Scheduler.a_dispatch_us
          ~dur_us:(a.Scheduler.a_end_us -. a.Scheduler.a_dispatch_us)
          (Fmt.str "%s#%d!%s" a.Scheduler.a_model a.Scheduler.a_req.Workload.rq_id
             outcome))
      o.Scheduler.o_aborted
  in
  Obs.trace_of ~wall_us:o.Scheduler.o_makespan_us (spans @ abort_spans)
