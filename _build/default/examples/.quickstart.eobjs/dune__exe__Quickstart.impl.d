examples/quickstart.ml: Analysis B Device Dgraph Expr Fmt List Lower Op Partition Program Souffle
