(* Quickstart: build a small model graph, compile it with Souffle, inspect
   every artifact the pipeline produces, and check semantic preservation
   against the reference interpreter.

     dune exec examples/quickstart.exe
*)

let () =
  (* 1. Describe a model as a graph of high-level operators: a two-layer
     MLP with a residual connection and a softmax head. *)
  let open Dgraph in
  let b = B.create () in
  let x = B.input b "x" [| 64; 256 |] in
  let w1 = B.input b "w1" [| 256; 256 |] in
  let b1 = B.input b "b1" [| 256 |] in
  let w2 = B.input b "w2" [| 256; 256 |] in
  let h = B.add b ~name:"h" Op.Matmul [ x; w1 ] in
  let h = B.add b ~name:"h_bias" Op.Bias_add [ h; b1 ] in
  let h = B.add b ~name:"h_relu" (Op.Unary Expr.Relu) [ h ] in
  let y = B.add b ~name:"y" Op.Matmul [ h; w2 ] in
  let y = B.add b ~name:"y_res" (Op.Binary Expr.Add) [ y; x ] in
  let out = B.add b ~name:"probs" Op.Softmax [ y ] in
  let graph = B.finish b ~outputs:[ out ] in
  Fmt.pr "%a@.@." Dgraph.pp graph;

  (* 2. Lower to tensor expressions — the IR all analysis works on. *)
  let program = Lower.run graph in
  Fmt.pr "--- TE program (%d TEs) ---@.%a@.@."
    (List.length program.Program.tes)
    Program.pp program;

  (* 3. Run the global analysis of Sec. 5: dependence classes, intensity,
     reuse opportunities. *)
  let analysis = Analysis.run program in
  Fmt.pr "--- global analysis ---@.%a@.@." Analysis.pp analysis;

  (* 4. Compile with the full Souffle pipeline and inspect the result. *)
  let report = Souffle.compile program in
  Fmt.pr "--- compile summary ---@.%a@.@." Souffle.summary report;
  (match report.Souffle.partition with
  | Some part -> Fmt.pr "--- subprograms ---@.%a@.@." Partition.pp part
  | None -> ());
  Fmt.pr "--- generated kernels (CUDA-flavoured) ---@.%s@."
    (Souffle.cuda_source report);

  (* 5. The transformations are semantics-preserving: check it. *)
  (match Souffle.verify report with
  | Ok () -> Fmt.pr "semantic check: transformed program matches reference@."
  | Error m -> Fmt.pr "semantic check FAILED: %s@." m);

  (* 6. Simulated execution on the A100 model. *)
  Fmt.pr "@.simulated latency: %.3f ms on %a@."
    (Souffle.time_ms report)
    Device.pp Device.a100
