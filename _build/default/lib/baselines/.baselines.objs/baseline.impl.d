lib/baselines/baseline.ml: Analysis Ansor Astring_contains Device Emit Fmt Fun Hashtbl Horizontal Intensity Kernel_ir List Option Profiles Program Sim Souffle Te Unix
