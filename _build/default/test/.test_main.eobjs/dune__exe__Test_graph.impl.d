test/test_graph.ml: Alcotest Array B Dgraph Dtype Expr Interp List Lower Nd Op Program Result Rng Te
