(** Reverse-mode automatic differentiation at the operator-graph level —
    the §9 "Fusion in DL training" future-work item made concrete.

    The combined forward+backward graph is an ordinary {!Dgraph.t}, so the
    whole Souffle pipeline applies to training steps.  Per the paper's
    observation, forward intermediates the backward pass reads are added to
    the graph outputs, pinning them in global memory (no transformation may
    elide them). *)

module SMap : Map.S with type key = string

type t = {
  graph : Dgraph.t;            (** forward + backward nodes *)
  gradient_of : string SMap.t; (** differentiated tensor -> gradient name *)
  saved : string list;         (** forward tensors the backward pass reads *)
}

val backward : loss:string -> ?wrt:string list -> Dgraph.t -> t
(** Extend the graph with gradients of the single-element [loss] tensor
    with respect to [wrt] (default: all graph inputs).
    @raise Invalid_argument on operators without a registered gradient. *)

val gradient : t -> string -> string option
(** Gradient tensor name for a differentiated input. *)
