(** Swin Transformer (Liu et al., ICCV'21) — base version, patch size 4,
    window size 7 (Table 2), batch 1, ImageNet input.

    Hierarchical stages of windowed multi-head self-attention: tokens are
    partitioned into 7x7 windows (long reshape/transpose chains — exactly
    the element-wise memory operators Souffle's vertical transformation
    eliminates), alternating blocks shift the windows with cyclic rolls,
    and patch-merging layers downsample between stages. *)

open Dgraph

type config = {
  image : int;
  patch : int;
  window : int;
  embed : int;
  depths : int list;
  heads : int list;
  mlp_ratio : int;
}

let base =
  { image = 224; patch = 4; window = 7; embed = 128;
    depths = [ 2; 2; 18; 2 ]; heads = [ 4; 8; 16; 32 ]; mlp_ratio = 4 }

let tiny =
  { image = 8; patch = 2; window = 2; embed = 8; depths = [ 2 ];
    heads = [ 2 ]; mlp_ratio = 2 }

(* Window attention over tokens (r*r, c) with nw = (r/w)^2 windows. *)
let window_attention (b : B.builder) ~prefix ~r ~w ~c ~heads ~shifted x =
  let n name op inputs = B.add b ~name:(prefix ^ "_" ^ name) op inputs in
  let dh = c / heads in
  let nw = r / w * (r / w) in
  let tokens_per_window = w * w in
  (* tokens -> spatial grid *)
  let grid = n "to_grid" (Op.Reshape [| r; r; c |]) [ x ] in
  let grid =
    if shifted then begin
      let g = Mcommon.roll b ~prefix:(prefix ^ "_sh0") ~shape:[| r; r; c |] ~axis:0 ~shift:(w / 2) grid in
      Mcommon.roll b ~prefix:(prefix ^ "_sh1") ~shape:[| r; r; c |] ~axis:1 ~shift:(w / 2) g
    end
    else grid
  in
  (* window partition: (r,r,c) -> (r/w, w, r/w, w, c) -> (r/w, r/w, w, w, c)
     -> (nw*w*w, c) *)
  let p = n "wp_r1" (Op.Reshape [| r / w; w; r / w; w; c |]) [ grid ] in
  let p = n "wp_t" (Op.Transpose [| 0; 2; 1; 3; 4 |]) [ p ] in
  let p = n "wp_r2" (Op.Reshape [| nw * tokens_per_window; c |]) [ p ] in
  (* qkv projections (independent: horizontal-transform targets) *)
  let head_split name t =
    let t = n (name ^ "_hr") (Op.Reshape [| nw; tokens_per_window; heads; dh |]) [ t ] in
    let t = n (name ^ "_ht") (Op.Transpose [| 0; 2; 1; 3 |]) [ t ] in
    n (name ^ "_hb") (Op.Reshape [| nw * heads; tokens_per_window; dh |]) [ t ]
  in
  let q = head_split "q" (Mcommon.linear b ~prefix:(prefix ^ "_q") ~din:c ~dout:c p) in
  let k = head_split "k" (Mcommon.linear b ~prefix:(prefix ^ "_k") ~din:c ~dout:c p) in
  let v = head_split "v" (Mcommon.linear b ~prefix:(prefix ^ "_v") ~din:c ~dout:c p) in
  let scores = n "scores" Op.Batch_matmul_nt [ q; k ] in
  let scaled = n "scaled" (Op.Scale (1. /. sqrt (float_of_int dh))) [ scores ] in
  (* learned relative-position bias, shared across windows *)
  let bias =
    B.input b (prefix ^ "_relbias") [| tokens_per_window; tokens_per_window |]
  in
  let biased = n "biased" (Op.Binary Expr.Add) [ scaled; bias ] in
  let probs = n "probs" Op.Softmax [ biased ] in
  let ctx = n "ctx" Op.Batch_matmul [ probs; v ] in
  (* merge heads and reverse the window partition *)
  let m = n "mh_r1" (Op.Reshape [| nw; heads; tokens_per_window; dh |]) [ ctx ] in
  let m = n "mh_t" (Op.Transpose [| 0; 2; 1; 3 |]) [ m ] in
  let m = n "mh_r2" (Op.Reshape [| nw * tokens_per_window; c |]) [ m ] in
  let proj = Mcommon.linear b ~prefix:(prefix ^ "_proj") ~din:c ~dout:c m in
  (* reverse partition: (nw*w*w, c) -> grid -> (unshift) -> tokens *)
  let g = n "wr_r1" (Op.Reshape [| r / w; r / w; w; w; c |]) [ proj ] in
  let g = n "wr_t" (Op.Transpose [| 0; 2; 1; 3; 4 |]) [ g ] in
  let g = n "wr_r2" (Op.Reshape [| r; r; c |]) [ g ] in
  let g =
    if shifted then begin
      let u = Mcommon.roll b ~prefix:(prefix ^ "_un0") ~shape:[| r; r; c |] ~axis:0 ~shift:(r - (w / 2)) g in
      Mcommon.roll b ~prefix:(prefix ^ "_un1") ~shape:[| r; r; c |] ~axis:1 ~shift:(r - (w / 2)) u
    end
    else g
  in
  n "wr_out" (Op.Reshape [| r * r; c |]) [ g ]

let swin_block (b : B.builder) ~prefix ~r ~w ~c ~heads ~mlp_ratio ~shifted x =
  let n name op inputs = B.add b ~name:(prefix ^ "_" ^ name) op inputs in
  let ln1 = Mcommon.layernorm b ~prefix:(prefix ^ "_ln1") ~dim:c x in
  let att = window_attention b ~prefix ~r ~w ~c ~heads ~shifted ln1 in
  let res1 = n "res1" (Op.Binary Expr.Add) [ att; x ] in
  let ln2 = Mcommon.layernorm b ~prefix:(prefix ^ "_ln2") ~dim:c res1 in
  let up = Mcommon.linear b ~prefix:(prefix ^ "_mlp1") ~din:c ~dout:(mlp_ratio * c) ln2 in
  let act = Mcommon.gelu b ~prefix:(prefix ^ "_mlp") up in
  let down = Mcommon.linear b ~prefix:(prefix ^ "_mlp2") ~din:(mlp_ratio * c) ~dout:c act in
  n "res2" (Op.Binary Expr.Add) [ down; res1 ]

(* Patch merging: (r*r, c) -> (r/2 * r/2, 2c) *)
let patch_merge (b : B.builder) ~prefix ~r ~c x =
  let n name op inputs = B.add b ~name:(prefix ^ "_" ^ name) op inputs in
  let grid = n "pm_grid" (Op.Reshape [| r; r; c |]) [ x ] in
  let quarter di dj =
    let s1 =
      n (Fmt.str "pm_s%d%d_r" di dj)
        (Op.Strided_slice { axis = 0; start = di; stride = 2; size = r / 2 })
        [ grid ]
    in
    n (Fmt.str "pm_s%d%d" di dj)
      (Op.Strided_slice { axis = 1; start = dj; stride = 2; size = r / 2 })
      [ s1 ]
  in
  let qs = [ quarter 0 0; quarter 1 0; quarter 0 1; quarter 1 1 ] in
  let cat = n "pm_cat" (Op.Concat { axis = 2 }) qs in
  let flat = n "pm_flat" (Op.Reshape [| r / 2 * (r / 2); 4 * c |]) [ cat ] in
  let ln = Mcommon.layernorm b ~prefix:(prefix ^ "_pm_ln") ~dim:(4 * c) flat in
  let w = B.input b (prefix ^ "_pm_w") [| 4 * c; 2 * c |] in
  n "pm_reduce" Op.Matmul [ ln; w ]

let create ?(cfg = base) () : Dgraph.t =
  let b = B.create () in
  let img = cfg.image and p = cfg.patch in
  let x = B.input b "image" [| 1; 3; img; img |] in
  (* patch embedding: conv p x p stride p, then tokens *)
  let we = B.input b "patch_w" [| cfg.embed; 3; p; p |] in
  let emb =
    B.add b ~name:"patch_conv"
      (Op.Conv2d { kernel = p; stride = p; padding = 0; groups = 1 })
      [ x; we ]
  in
  let r0 = img / p in
  (* (1, e, r, r) -> (e, r*r) -> (r*r, e) *)
  let t = B.add b ~name:"patch_flat" (Op.Reshape [| cfg.embed; r0 * r0 |]) [ emb ] in
  let tokens = B.add b ~name:"patch_tokens" (Op.Transpose [| 1; 0 |]) [ t ] in
  let out = ref tokens and r = ref r0 and c = ref cfg.embed in
  List.iteri
    (fun si depth ->
      let heads = List.nth cfg.heads si in
      for blk = 0 to depth - 1 do
        out :=
          swin_block b
            ~prefix:(Fmt.str "s%d_b%d" si blk)
            ~r:!r ~w:cfg.window ~c:!c ~heads ~mlp_ratio:cfg.mlp_ratio
            ~shifted:(blk mod 2 = 1) !out
      done;
      if si < List.length cfg.depths - 1 then begin
        out := patch_merge b ~prefix:(Fmt.str "s%d" si) ~r:!r ~c:!c !out;
        r := !r / 2;
        c := !c * 2
      end)
    cfg.depths;
  let ln = Mcommon.layernorm b ~prefix:"final" ~dim:!c !out in
  (* mean pool over tokens, classify *)
  let pooled = B.add b ~name:"pool_sum" (Op.Reduce { op = Te.Sum; axis = 0 }) [ ln ] in
  let pooled =
    B.add b ~name:"pool_mean" (Op.Scale (1. /. float_of_int (!r * !r))) [ pooled ]
  in
  let pooled2 = B.add b ~name:"pool_2d" (Op.Reshape [| 1; !c |]) [ pooled ] in
  let wfc = B.input b "fc_w" [| !c; 1000 |] in
  let logits = B.add b ~name:"logits" Op.Matmul [ pooled2; wfc ] in
  B.finish b ~outputs:[ logits ]
