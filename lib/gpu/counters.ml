(** Nsight-Compute-style performance counters collected by the simulator.
    These back every number the benchmarks report: kernel counts, global
    memory transfer sizes (Tables 1/5/6), and pipeline utilization
    (Table 6's LSU/FMA rows). *)

type t = {
  mutable kernel_launches : int;
  mutable grid_syncs : int;
  mutable dram_read_bytes : int;
  mutable dram_write_bytes : int;
  mutable l2_read_bytes : int;
  mutable smem_read_bytes : int;
  mutable atomic_bytes : int;
  mutable mma_flops : int;
  mutable fma_flops : int;
  mutable sfu_ops : int;
  mutable time_us : float;
  mutable lsu_busy_us : float;  (** time the load/store pipeline was busy *)
  mutable fma_busy_us : float;  (** time the FMA pipeline was busy *)
  mutable mma_busy_us : float;  (** time the tensor-core pipeline was busy *)
  mutable launch_us : float;    (** time attributed to kernel launches *)
}

let create () =
  {
    kernel_launches = 0;
    grid_syncs = 0;
    dram_read_bytes = 0;
    dram_write_bytes = 0;
    l2_read_bytes = 0;
    smem_read_bytes = 0;
    atomic_bytes = 0;
    mma_flops = 0;
    fma_flops = 0;
    sfu_ops = 0;
    time_us = 0.;
    lsu_busy_us = 0.;
    fma_busy_us = 0.;
    mma_busy_us = 0.;
    launch_us = 0.;
  }

(** Bytes loaded from global memory, what Nsight reports as device memory
    read traffic (atomic read-modify-write counts toward it). *)
let global_load_bytes t = t.dram_read_bytes + t.atomic_bytes

let global_transfer_bytes t =
  t.dram_read_bytes + t.dram_write_bytes + t.atomic_bytes

let lsu_utilization t = if t.time_us <= 0. then 0. else t.lsu_busy_us /. t.time_us
let fma_utilization t = if t.time_us <= 0. then 0. else t.fma_busy_us /. t.time_us
let mma_utilization t = if t.time_us <= 0. then 0. else t.mma_busy_us /. t.time_us

let mb bytes = float_of_int bytes /. 1.0e6

(** A fresh, independent snapshot — lets per-request accounting reuse one
    compiled artifact's counters without aliasing its mutable state. *)
let copy t = { t with kernel_launches = t.kernel_launches }

let add ~into b =
  into.kernel_launches <- into.kernel_launches + b.kernel_launches;
  into.grid_syncs <- into.grid_syncs + b.grid_syncs;
  into.dram_read_bytes <- into.dram_read_bytes + b.dram_read_bytes;
  into.dram_write_bytes <- into.dram_write_bytes + b.dram_write_bytes;
  into.l2_read_bytes <- into.l2_read_bytes + b.l2_read_bytes;
  into.smem_read_bytes <- into.smem_read_bytes + b.smem_read_bytes;
  into.atomic_bytes <- into.atomic_bytes + b.atomic_bytes;
  into.mma_flops <- into.mma_flops + b.mma_flops;
  into.fma_flops <- into.fma_flops + b.fma_flops;
  into.sfu_ops <- into.sfu_ops + b.sfu_ops;
  into.time_us <- into.time_us +. b.time_us;
  into.lsu_busy_us <- into.lsu_busy_us +. b.lsu_busy_us;
  into.fma_busy_us <- into.fma_busy_us +. b.fma_busy_us;
  into.mma_busy_us <- into.mma_busy_us +. b.mma_busy_us;
  into.launch_us <- into.launch_us +. b.launch_us

let pp ppf t =
  Fmt.pf ppf
    "@[<v>time: %.2f us (launch %.2f us)@,kernels: %d, grid syncs: %d@,\
     DRAM read: %.2f MB, write: %.2f MB, atomics: %.2f MB, L2 re-read: %.2f MB@,\
     flops: mma %d, fma %d, sfu %d@,\
     util: LSU %.1f%%, FMA %.1f%%, MMA %.1f%%@]"
    t.time_us t.launch_us t.kernel_launches t.grid_syncs
    (mb t.dram_read_bytes) (mb t.dram_write_bytes) (mb t.atomic_bytes)
    (mb t.l2_read_bytes) t.mma_flops t.fma_flops t.sfu_ops
    (100. *. lsu_utilization t)
    (100. *. fma_utilization t)
    (100. *. mma_utilization t)
