bench/main.mli:
