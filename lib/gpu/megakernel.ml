(** Mega-kernelization: lower a compiled multi-kernel program into ONE
    persistent task-graph kernel (MPK-style).

    The compiled {!Kernel_ir.prog} pays a modeled launch latency per kernel
    and a [Grid_sync] barrier per cooperative stage boundary; the whole
    device also drains serially, kernel by kernel.  Lowering replaces both
    costs with a task graph executed by one persistent launch:

    - a non-cooperative kernel becomes one task carrying all its stages
      (stage order inside a task is already serial);
    - a cooperative kernel (one using [Grid_sync]) becomes one task per
      stage with the sync instructions stripped and the stage-tasks chained
      by edges — the barrier semantics move into the graph;
    - cross-task edges are derived from tensor provenance, exactly the
      information the emitter tags memory instructions with and the stage
      [produces] lists carry: a task depends on the latest earlier producer
      of every tensor it reads (RAW) or overwrites (WAW), and on every
      earlier reader of a tensor it overwrites (WAR).

    Because the edges are re-derived from provenance — not copied from the
    launch order — {!Dataflow.check_taskgraph} can independently re-verify
    the fused graph: a lowering bug that drops an edge surfaces as a typed
    provenance error.  Resource feasibility of the persistent worker launch
    (the max per-task block footprint must still fit the device, with at
    least one resident block per SM) goes through {!Verify_ir.check} on the
    synthetic {!worker_kernel}. *)

module SSet = Set.Make (String)

let strip_grid_syncs (s : Kernel_ir.stage) : Kernel_ir.stage =
  {
    s with
    Kernel_ir.instrs =
      List.filter
        (function Kernel_ir.Grid_sync -> false | _ -> true)
        s.Kernel_ir.instrs;
  }

(* Tensors a kernel's tagged loads read. *)
let consumes (k : Kernel_ir.kernel) : SSet.t =
  List.fold_left
    (fun acc (s : Kernel_ir.stage) ->
      List.fold_left
        (fun acc i ->
          match i with
          | Kernel_ir.Ldg { tensor = Some t; _ }
          | Ldl2 { tensor = Some t; _ }
          | Lds { tensor = Some t; _ } ->
              SSet.add t acc
          | _ -> acc)
        acc s.Kernel_ir.instrs)
    SSet.empty k.Kernel_ir.stages

(* Tensors a kernel materializes: stage [produces] lists plus store tags. *)
let produces (k : Kernel_ir.kernel) : SSet.t =
  List.fold_left
    (fun acc (s : Kernel_ir.stage) ->
      let acc =
        List.fold_left (fun a t -> SSet.add t a) acc s.Kernel_ir.produces
      in
      List.fold_left
        (fun acc i ->
          match i with
          | Kernel_ir.Stg { tensor = Some t; _ }
          | Atomic_add { tensor = Some t; _ } ->
              SSet.add t acc
          | _ -> acc)
        acc s.Kernel_ir.instrs)
    SSet.empty k.Kernel_ir.stages

module ISet = Set.Make (Int)

(** Lower a compiled multi-kernel program into a persistent task graph.
    Pure and total: any well-formed program lowers; feasibility and
    provenance are checked separately by {!verify}. *)
let lower (p : Kernel_ir.prog) : Kernel_ir.taskgraph =
  let tasks = ref [] (* reversed *) in
  let count = ref 0 in
  (* provenance state, updated task by task *)
  let last_producer : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let readers : (string, ISet.t) Hashtbl.t = Hashtbl.create 64 in
  let add_task ?chain (k : Kernel_ir.kernel) : int =
    let id = !count in
    let reads = consumes k and writes = produces k in
    let deps = ref ISet.empty in
    let dep_on j = if j < id then deps := ISet.add j !deps in
    (match chain with Some j -> dep_on j | None -> ());
    SSet.iter
      (fun t ->
        match Hashtbl.find_opt last_producer t with
        | Some j -> dep_on j (* read-after-write *)
        | None -> ())
      reads;
    SSet.iter
      (fun t ->
        (match Hashtbl.find_opt last_producer t with
        | Some j -> dep_on j (* write-after-write *)
        | None -> ());
        match Hashtbl.find_opt readers t with
        | Some js -> ISet.iter dep_on js (* write-after-read *)
        | None -> ())
      writes;
    SSet.iter
      (fun t ->
        let js =
          Option.value ~default:ISet.empty (Hashtbl.find_opt readers t)
        in
        Hashtbl.replace readers t (ISet.add id js))
      reads;
    SSet.iter
      (fun t ->
        Hashtbl.replace last_producer t id;
        (* a fresh write restarts the reader window for WAR edges *)
        if not (SSet.mem t reads) then Hashtbl.remove readers t)
      writes;
    tasks :=
      { Kernel_ir.t_kernel = k; t_deps = ISet.elements !deps } :: !tasks;
    incr count;
    id
  in
  List.iter
    (fun (k : Kernel_ir.kernel) ->
      if Kernel_ir.num_grid_syncs k > 0 then
        (* cooperative: one task per stage, barrier -> edge *)
        ignore
          (List.fold_left
             (fun (si, chain) (s : Kernel_ir.stage) ->
               let kt =
                 {
                   k with
                   Kernel_ir.kname =
                     Fmt.str "%s.s%d" k.Kernel_ir.kname si;
                   stages = [ strip_grid_syncs s ];
                 }
               in
               let id = add_task ?chain kt in
               (si + 1, Some id))
             (0, None) k.Kernel_ir.stages)
      else ignore (add_task k))
    p.Kernel_ir.kernels;
  {
    Kernel_ir.tg_name = p.Kernel_ir.pname ^ "+mega";
    tg_kernels = List.length p.Kernel_ir.kernels;
    tg_tasks = Array.of_list (List.rev !tasks);
  }

(** The synthetic persistent launch: worker blocks sized for the largest
    per-task footprint, one full resident wave of them.  Feasibility of the
    mega-kernel is exactly launchability of this kernel. *)
let worker_kernel (dev : Device.t) (tg : Kernel_ir.taskgraph) :
    Kernel_ir.kernel =
  let fold f init =
    Array.fold_left
      (fun acc (t : Kernel_ir.task) -> max acc (f t.Kernel_ir.t_kernel))
      init tg.Kernel_ir.tg_tasks
  in
  let threads = fold (fun k -> k.Kernel_ir.threads_per_block) 1 in
  let smem = fold (fun k -> k.Kernel_ir.smem_per_block) 0 in
  let regs = fold (fun k -> k.Kernel_ir.regs_per_thread) 1 in
  let usage =
    {
      Occupancy.threads_per_block = threads;
      smem_per_block = smem;
      regs_per_thread = regs;
    }
  in
  let grid = max 1 (Occupancy.max_blocks_per_wave dev usage) in
  Kernel_ir.kernel ~threads_per_block:threads ~smem_per_block:smem
    ~regs_per_thread:regs
    ~name:(tg.Kernel_ir.tg_name ^ "!workers")
    ~grid_blocks:grid
    [ Kernel_ir.stage ~label:"persistent-workers" [] ]

(** Full verification of a lowered graph: worker-launch feasibility via
    {!Verify_ir.check}, then provenance via {!Dataflow.check_taskgraph}. *)
let verify (dev : Device.t) (env : Dataflow.env) (tg : Kernel_ir.taskgraph) :
    (unit, Diag.t list) result =
  match Verify_ir.check dev (worker_kernel dev tg) with
  | Error _ as e -> e
  | Ok () -> Dataflow.check_taskgraph dev env tg
