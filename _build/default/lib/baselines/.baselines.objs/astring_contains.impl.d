lib/baselines/astring_contains.ml: String
