(* Tests for shape-polymorphic batching: the Batch TE transform and its
   path through the compiler.  The contracts: batch 1 is the identity (the
   same physical program), every lane of a batched program computes the
   unbatched outputs, and bucketed recompiles hit the persistent schedule
   cache instead of re-searching. *)

let tiny_zoo () =
  List.map (fun (e : Zoo.entry) -> (e.Zoo.name, Lower.run (e.Zoo.tiny ()))) Zoo.all

let test_batch1_is_identity () =
  List.iter
    (fun (name, p) ->
      Alcotest.(check bool)
        (name ^ ": batch 1 returns the program physically unchanged")
        true
        (Batch.apply ~batch:1 p == p))
    (tiny_zoo ())

let test_batched_program_validates () =
  List.iter
    (fun (name, p) ->
      List.iter
        (fun b ->
          let pb = Batch.apply ~batch:b p in
          (match Program.validate pb with
          | Ok () -> ()
          | Error m ->
              Alcotest.fail (Fmt.str "%s at batch %d invalid: %s" name b m));
          List.iter2
            (fun (te : Te.t) (tb : Te.t) ->
              Alcotest.(check int)
                (Fmt.str "%s/%s: leading axis is the batch" name te.Te.name)
                b tb.Te.out_shape.(0);
              Alcotest.(check int)
                (Fmt.str "%s/%s: rank grew by one" name te.Te.name)
                (Te.rank te + 1) (Te.rank tb))
            p.Program.tes pb.Program.tes)
        [ 2; 4 ])
    (tiny_zoo ())

let test_invalid_batch_rejected () =
  let p = Lower.run (Mmoe.create ~cfg:Mmoe.tiny ()) in
  Alcotest.check_raises "batch 0 rejected" (Invalid_argument
    "Batch.apply: batch must be >= 1") (fun () ->
      ignore (Batch.apply ~batch:0 p));
  match Souffle.compile_result ~cfg:{ Souffle.default_config with Souffle.batch = 0 } p with
  | Ok _ -> Alcotest.fail "compile_result accepted batch 0"
  | Error _ -> ()

(* every lane of every batched output equals the unbatched output: the
   replicated-broadcast semantics the scheduler's split/merge relies on *)
let test_lanes_equal_unbatched () =
  let p = Lower.run (Mmoe.create ~cfg:Mmoe.tiny ()) in
  let b = 3 in
  let pb = Batch.apply ~batch:b p in
  let inputs = Interp.random_inputs ~seed:7 p in
  let base = Interp.run p inputs in
  let batched = Interp.run pb inputs in
  List.iter
    (fun (name, (nd : Nd.t)) ->
      let ndb = List.assoc name batched in
      let n = Shape.numel nd.Nd.shape in
      Alcotest.(check int)
        (name ^ ": batched output holds every lane")
        (b * n)
        (Shape.numel ndb.Nd.shape);
      for lane = 0 to b - 1 do
        for i = 0 to n - 1 do
          if nd.Nd.data.(i) <> ndb.Nd.data.((lane * n) + i) then
            Alcotest.fail
              (Fmt.str "%s lane %d element %d: %.9g <> %.9g" name lane i
                 nd.Nd.data.(i)
                 ndb.Nd.data.((lane * n) + i))
        done
      done)
    base

(* batched compiles land in their own artifact-store slots; batch 1 shares
   the unbatched slot *)
let test_artifact_store_batch_keys () =
  let store = Souffle.Artifacts.create () in
  let gen () = Lower.run (Mmoe.create ~cfg:Mmoe.tiny ()) in
  let get batch =
    match
      Souffle.Artifacts.get store
        ~cfg:(Souffle.config ~batch ())
        ~name:"mmoe" gen
    with
    | Ok r -> r
    | Error _ -> Alcotest.fail (Fmt.str "compile at batch %d failed" batch)
  in
  let r1 = get 1 in
  let r2 = get 2 in
  let r1' = get 1 in
  Alcotest.(check bool) "batch 1 memoized" true (r1 == r1');
  Alcotest.(check bool) "batch 2 is a distinct artifact" true (r1 != r2);
  Alcotest.(check int) "two entries stored" 2 (Souffle.Artifacts.size store);
  Alcotest.(check int) "batched leading axis reached the pipeline" 2
    (List.hd r2.Souffle.original.Program.tes).Te.out_shape.(0)

(* repeated compiles at the same bucket shape must hit the schedule cache:
   zero ansor-search spans on the warm compile *)
let test_bucket_recompile_warm () =
  let gen () = Lower.run (Mmoe.create ~cfg:Mmoe.tiny ()) in
  let cache = Scache.create () in
  let compile () =
    match
      Souffle.compile_result
        ~cfg:(Souffle.config ~batch:4 ~sched_cache:cache ()) (gen ())
    with
    | Ok r -> r
    | Error _ -> Alcotest.fail "batched compile failed"
  in
  let cold = compile () in
  let searches t =
    let n = ref 0 in
    Obs.iter (fun s ~depth:_ -> if s.Obs.sname = "ansor-search" then incr n) t;
    !n
  in
  let warm, twarm = Obs.record compile in
  Alcotest.(check bool) "cold compile populated the cache" true
    (Scache.length cache > 0);
  Alcotest.(check int) "warm bucket recompile searches nothing" 0
    (searches twarm);
  Alcotest.(check bool) "warm artifact identical" true
    (cold.Souffle.prog = warm.Souffle.prog)

let suite =
  [
    Alcotest.test_case "batch=1 is the identity" `Quick test_batch1_is_identity;
    Alcotest.test_case "batched programs validate" `Quick
      test_batched_program_validates;
    Alcotest.test_case "invalid batch rejected" `Quick
      test_invalid_batch_rejected;
    Alcotest.test_case "lanes equal unbatched outputs" `Quick
      test_lanes_equal_unbatched;
    Alcotest.test_case "artifact store keys on batch" `Quick
      test_artifact_store_batch_keys;
    Alcotest.test_case "bucket recompile is warm" `Quick
      test_bucket_recompile_warm;
  ]
