lib/gpu/device.ml: Fmt
