(** Scalar expressions forming the body of a tensor expression.

    A body is evaluated once per point of the output iteration space (and,
    for reductions, once per point of the reduction domain); tensor reads are
    addressed with quasi-affine {!Index.t} expressions. *)

type unop =
  | Neg | Exp | Log | Sqrt | Rsqrt | Tanh | Sigmoid | Relu | Erf | Abs | Recip
  | Step  (** 1 if x > 0 else 0 — the relu derivative *)

type binop = Add | Sub | Mul | Div | Max | Min | Pow

type rel = Lt | Le | Eq | Ne | Ge | Gt

(** Predicates over index values, used for padding and for the
    [if_then_else] selectors introduced by horizontal transformation. *)
type cond =
  | Cmp of rel * Index.t * Index.t
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

type t =
  | Const of float
  | Read of string * Index.t list  (** tensor access by name *)
  | IdxVal of Index.t              (** index value promoted to float *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Select of cond * t * t

let unop_to_string = function
  | Neg -> "neg" | Exp -> "exp" | Log -> "log" | Sqrt -> "sqrt"
  | Rsqrt -> "rsqrt" | Tanh -> "tanh" | Sigmoid -> "sigmoid"
  | Relu -> "relu" | Erf -> "erf" | Abs -> "abs" | Recip -> "recip"
  | Step -> "step"

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"
  | Max -> "max" | Min -> "min" | Pow -> "pow"

let rel_to_string = function
  | Lt -> "<" | Le -> "<=" | Eq -> "==" | Ne -> "!=" | Ge -> ">=" | Gt -> ">"

let rec pp ppf = function
  | Const f -> Fmt.pf ppf "%g" f
  | Read (name, idxs) ->
      Fmt.pf ppf "%s[%a]" name Fmt.(list ~sep:(any ", ") Index.pp) idxs
  | IdxVal i -> Fmt.pf ppf "float(%a)" Index.pp i
  | Unop (op, a) -> Fmt.pf ppf "%s(%a)" (unop_to_string op) pp a
  | Binop ((Add | Sub | Mul | Div) as op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp a (binop_to_string op) pp b
  | Binop (op, a, b) ->
      Fmt.pf ppf "%s(%a, %a)" (binop_to_string op) pp a pp b
  | Select (c, a, b) -> Fmt.pf ppf "select(%a, %a, %a)" pp_cond c pp a pp b

and pp_cond ppf = function
  | Cmp (r, a, b) -> Fmt.pf ppf "%a %s %a" Index.pp a (rel_to_string r) Index.pp b
  | And (a, b) -> Fmt.pf ppf "(%a && %a)" pp_cond a pp_cond b
  | Or (a, b) -> Fmt.pf ppf "(%a || %a)" pp_cond a pp_cond b
  | Not a -> Fmt.pf ppf "!(%a)" pp_cond a

let to_string t = Fmt.str "%a" pp t

let apply_unop op x =
  match op with
  | Neg -> -.x
  | Exp -> Float.exp x
  | Log -> Float.log x
  | Sqrt -> Float.sqrt x
  | Rsqrt -> 1. /. Float.sqrt x
  | Tanh -> Float.tanh x
  | Sigmoid -> 1. /. (1. +. Float.exp (-.x))
  | Relu -> Float.max 0. x
  | Erf ->
      (* Abramowitz & Stegun 7.1.26, max abs error 1.5e-7 *)
      let sign = if x < 0. then -1. else 1. in
      let x = Float.abs x in
      let t = 1. /. (1. +. (0.3275911 *. x)) in
      let poly =
        ((((1.061405429 *. t -. 1.453152027) *. t +. 1.421413741) *. t
          -. 0.284496736) *. t +. 0.254829592) *. t
      in
      sign *. (1. -. (poly *. Float.exp (-.(x *. x))))
  | Abs -> Float.abs x
  | Recip -> 1. /. x
  | Step -> if x > 0. then 1. else 0.

let apply_binop op x y =
  match op with
  | Add -> x +. y
  | Sub -> x -. y
  | Mul -> x *. y
  | Div -> x /. y
  | Max -> Float.max x y
  | Min -> Float.min x y
  | Pow -> Float.pow x y

let apply_rel r (a : int) (b : int) =
  match r with
  | Lt -> a < b | Le -> a <= b | Eq -> a = b
  | Ne -> a <> b | Ge -> a >= b | Gt -> a > b

let rec eval ~read ~ov ~rv = function
  | Const f -> f
  | Read (name, idxs) ->
      read name (List.map (Index.eval ~ov ~rv) idxs)
  | IdxVal i -> float_of_int (Index.eval ~ov ~rv i)
  | Unop (op, a) -> apply_unop op (eval ~read ~ov ~rv a)
  | Binop (op, a, b) ->
      apply_binop op (eval ~read ~ov ~rv a) (eval ~read ~ov ~rv b)
  | Select (c, a, b) ->
      if eval_cond ~ov ~rv c then eval ~read ~ov ~rv a else eval ~read ~ov ~rv b

and eval_cond ~ov ~rv = function
  | Cmp (r, a, b) -> apply_rel r (Index.eval ~ov ~rv a) (Index.eval ~ov ~rv b)
  | And (a, b) -> eval_cond ~ov ~rv a && eval_cond ~ov ~rv b
  | Or (a, b) -> eval_cond ~ov ~rv a || eval_cond ~ov ~rv b
  | Not a -> not (eval_cond ~ov ~rv a)

(** Rewrite every index expression (in reads, selects and [IdxVal]). *)
let rec map_index f = function
  | Const _ as e -> e
  | Read (name, idxs) -> Read (name, List.map f idxs)
  | IdxVal i -> IdxVal (f i)
  | Unop (op, a) -> Unop (op, map_index f a)
  | Binop (op, a, b) -> Binop (op, map_index f a, map_index f b)
  | Select (c, a, b) ->
      Select (map_index_cond f c, map_index f a, map_index f b)

and map_index_cond f = function
  | Cmp (r, a, b) -> Cmp (r, f a, f b)
  | And (a, b) -> And (map_index_cond f a, map_index_cond f b)
  | Or (a, b) -> Or (map_index_cond f a, map_index_cond f b)
  | Not a -> Not (map_index_cond f a)

(** Substitute output iteration variables with index expressions —
    the workhorse of vertical transformation (§6.2, Eq. 2). *)
let subst_out (m : int -> Index.t) e = map_index (Index.subst_out m) e

let shift_rv delta e = map_index (Index.shift_rv delta) e

(** Rewrite tensor reads; [f name idxs] returns a replacement expression. *)
let rec map_reads f = function
  | Const _ | IdxVal _ as e -> e
  | Read (name, idxs) -> f name idxs
  | Unop (op, a) -> Unop (op, map_reads f a)
  | Binop (op, a, b) -> Binop (op, map_reads f a, map_reads f b)
  | Select (c, a, b) -> Select (c, map_reads f a, map_reads f b)

(** All tensor accesses, in syntactic order. *)
let reads e =
  let acc = ref [] in
  let rec go = function
    | Const _ | IdxVal _ -> ()
    | Read (name, idxs) -> acc := (name, idxs) :: !acc
    | Unop (_, a) -> go a
    | Binop (_, a, b) -> go a; go b
    | Select (_, a, b) -> go a; go b
  in
  go e;
  List.rev !acc

let read_names e =
  List.sort_uniq String.compare (List.map fst (reads e))

(** Arithmetic-operation count of one body evaluation (used by the §5.3
    compute-/memory-intensity classifier). *)
let rec flops = function
  | Const _ | Read _ | IdxVal _ -> 0
  | Unop ((Exp | Log | Sqrt | Rsqrt | Tanh | Sigmoid | Erf), a) ->
      (* transcendentals cost several SFU ops *)
      4 + flops a
  | Unop (_, a) -> 1 + flops a
  | Binop (Pow, a, b) -> 8 + flops a + flops b
  | Binop (_, a, b) -> 1 + flops a + flops b
  (* disjoint-predicate selects (horizontal merges, padding guards) execute
     one branch per thread block; predication is address math, not flops *)
  | Select (_, a, b) -> max (flops a) (flops b)

(** Number of transcendental (SFU-pipeline) operations per evaluation. *)
let rec sfu_count = function
  | Const _ | Read _ | IdxVal _ -> 0
  | Unop ((Exp | Log | Sqrt | Rsqrt | Tanh | Sigmoid | Erf), a) ->
      1 + sfu_count a
  | Unop (_, a) -> sfu_count a
  | Binop (Pow, a, b) -> 1 + sfu_count a + sfu_count b
  | Binop (_, a, b) -> sfu_count a + sfu_count b
  | Select (_, a, b) -> max (sfu_count a) (sfu_count b)

(** Number of tensor-read sites per evaluation. *)
let rec read_count = function
  | Const _ | IdxVal _ -> 0
  | Read _ -> 1
  | Unop (_, a) -> read_count a
  | Binop (_, a, b) -> read_count a + read_count b
  | Select (_, a, b) -> max (read_count a) (read_count b)

(** Pure data movement: the body forwards input elements (possibly through
    index remapping and padding selects) without arithmetic. *)
let rec is_data_movement = function
  | Read _ | Const _ -> true
  | Select (_, a, b) -> is_data_movement a && is_data_movement b
  | Unop _ | Binop _ | IdxVal _ -> false

(** Does the expression use any transcendental (SFU-pipeline) operation? *)
let rec uses_sfu = function
  | Const _ | Read _ | IdxVal _ -> false
  | Unop ((Exp | Log | Sqrt | Rsqrt | Tanh | Sigmoid | Erf), _) -> true
  | Unop (_, a) -> uses_sfu a
  | Binop (Pow, _, _) -> true
  | Binop (_, a, b) -> uses_sfu a || uses_sfu b
  | Select (_, a, b) -> uses_sfu a || uses_sfu b
