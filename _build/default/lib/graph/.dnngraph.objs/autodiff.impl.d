lib/graph/autodiff.ml: Array Dgraph Expr Float Fmt Fun List Map Op Program Set Shape String Te
