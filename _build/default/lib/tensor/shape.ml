(** Tensor shapes as immutable int arrays (row-major). *)

type t = int array

let of_list = Array.of_list
let to_list = Array.to_list
let rank (s : t) = Array.length s
let dim (s : t) i = s.(i)

let numel (s : t) = Array.fold_left ( * ) 1 s

let equal (a : t) (b : t) = a = b

let to_string (s : t) =
  "(" ^ String.concat ", " (List.map string_of_int (to_list s)) ^ ")"

let pp ppf s = Fmt.string ppf (to_string s)

(** Row-major strides: [strides [|2;3;4|] = [|12;4;1|]]. *)
let strides (s : t) : int array =
  let n = rank s in
  let st = Array.make n 1 in
  for i = n - 2 downto 0 do
    st.(i) <- st.(i + 1) * s.(i + 1)
  done;
  st

(** Flatten a multi-index into a linear offset. *)
let ravel (s : t) (idx : int array) : int =
  let st = strides s in
  let acc = ref 0 in
  for i = 0 to rank s - 1 do
    acc := !acc + (idx.(i) * st.(i))
  done;
  !acc

(** Inverse of {!ravel}. *)
let unravel (s : t) (off : int) : int array =
  let st = strides s in
  Array.mapi (fun i _ -> off / st.(i) mod s.(i)) s

(** Iterate over every multi-index of the shape in row-major order.  The
    callback receives a buffer that is reused between calls; copy it if it
    must be retained. *)
let iter (s : t) (f : int array -> unit) =
  let n = rank s in
  if numel s > 0 then
    if n = 0 then f [||]
    else begin
      let idx = Array.make n 0 in
      let rec bump i =
        if i >= 0 then begin
          idx.(i) <- idx.(i) + 1;
          if idx.(i) = s.(i) then begin
            idx.(i) <- 0;
            bump (i - 1)
          end
        end
      in
      let total = numel s in
      for _ = 1 to total do
        f idx;
        bump (n - 1)
      done
    end

let concat_axis ~(axis : int) (a : t) (b : t) : t =
  if rank a <> rank b then invalid_arg "Shape.concat_axis: rank mismatch";
  Array.mapi
    (fun i d -> if i = axis then d + b.(i) else if d = b.(i) then d
                else invalid_arg "Shape.concat_axis: dim mismatch")
    a

let broadcastable (a : t) (b : t) =
  rank a = rank b
  && Array.for_all2 (fun x y -> x = y || x = 1 || y = 1) a b
