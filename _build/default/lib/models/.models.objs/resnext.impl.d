lib/models/resnext.ml: B Dgraph Expr Fmt List Op
