(* End-to-end tests of the Souffle pipeline: semantic preservation on every
   tiny model, ablation monotonicity (V0..V4), and structural properties of
   the compiled artifact. *)

let compile_at level p =
  Souffle.compile ~cfg:(Souffle.config ~level ()) p

let test_semantic_preservation_all_models () =
  List.iter
    (fun (e : Zoo.entry) ->
      let p = Lower.run (e.Zoo.tiny ()) in
      let r = compile_at Souffle.V4 p in
      match Souffle.verify ~rtol:1e-3 r with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s not preserved: %s" e.Zoo.name m)
    Zoo.all

let test_semantic_preservation_each_level () =
  let p = Lower.run (Bert.create ~cfg:Bert.tiny ()) in
  List.iter
    (fun level ->
      let r = compile_at level p in
      match Souffle.verify ~rtol:1e-3 r with
      | Ok () -> ()
      | Error m ->
          Alcotest.failf "%s not preserved: %s"
            (Souffle.level_to_string level) m)
    [ Souffle.V0; V1; V2; V3; V4 ]

let test_ablation_v0_to_v4_improves () =
  (* on the full BERT, each optimization level is at least as fast as the
     previous one, and V4 strictly beats V0 (Table 4's trend) *)
  let p = Lower.run (Bert.create ()) in
  let times =
    List.map
      (fun level -> Souffle.time_ms (compile_at level p))
      [ Souffle.V0; V1; V2; V3; V4 ]
  in
  (match times with
  | [ v0; _; _; _; v4 ] ->
      Alcotest.(check bool) "V4 strictly beats V0" true (v4 < v0)
  | _ -> assert false);
  let rec pairwise = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool)
          (Fmt.str "monotone %.3f >= %.3f" a b)
          true
          (b <= a *. 1.05);
        pairwise rest
    | _ -> ()
  in
  pairwise times

let test_kernel_count_decreases_with_global_sync () =
  let p = Lower.run (Bert.create ()) in
  let v2 = compile_at Souffle.V2 p and v3 = compile_at Souffle.V3 p in
  Alcotest.(check bool) "V3 launches fewer kernels" true
    (Souffle.num_kernels v3 < Souffle.num_kernels v2)

let test_reuse_reduces_traffic () =
  let p = Lower.run (Bert.create ()) in
  let v3 = compile_at Souffle.V3 p and v4 = compile_at Souffle.V4 p in
  Alcotest.(check bool) "V4 moves fewer DRAM bytes" true
    (Counters.global_transfer_bytes v4.Souffle.sim.Sim.total
    <= Counters.global_transfer_bytes v3.Souffle.sim.Sim.total)

let test_horizontal_merges_qkv () =
  let p = Lower.run (Bert.create ~cfg:Bert.tiny ()) in
  let r = compile_at Souffle.V4 p in
  Alcotest.(check bool) "merged groups exist" true
    (r.Souffle.hstats.Horizontal.groups_merged > 0);
  Alcotest.(check bool) "merged TE present" true
    (List.exists
       (fun (te : Te.t) -> Astring_contains.contains te.Te.name "_hz")
       r.Souffle.transformed.Program.tes)

let test_vertical_eliminates_layout_ops () =
  (* after V2+, no pure data-movement TE remains in BERT (reshape/transpose
     all folded, §2.3 "eliminates all element-wise memory operators") *)
  let p = Lower.run (Bert.create ~cfg:Bert.tiny ()) in
  let r = compile_at Souffle.V4 p in
  let movements =
    List.filter
      (fun (te : Te.t) ->
        (not (Te.has_reduction te))
        && Expr.is_data_movement (Te.body_expr te))
      r.Souffle.transformed.Program.tes
  in
  Alcotest.(check (list string)) "no layout TEs left" []
    (List.map (fun (te : Te.t) -> te.Te.name) movements)

let test_cooperative_kernels_valid () =
  List.iter
    (fun (e : Zoo.entry) ->
      let p = Lower.run (e.Zoo.tiny ()) in
      let r = compile_at Souffle.V4 p in
      match Sim.validate_prog Device.a100 r.Souffle.prog with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" e.Zoo.name m)
    Zoo.all

let test_lstm_single_digit_kernels () =
  (* Table 5: Souffle compiles the LSTM to one (here: very few) kernels *)
  let p = Lower.run (Lstm.create ()) in
  let r = compile_at Souffle.V4 p in
  Alcotest.(check bool) "at most 2 kernels" true (Souffle.num_kernels r <= 2)

let test_mmoe_single_kernel () =
  let p = Lower.run (Mmoe.create ()) in
  let r = compile_at Souffle.V4 p in
  Alcotest.(check int) "one kernel" 1 (Souffle.num_kernels r)

let test_report_summary_renders () =
  let p = Lower.run (Mmoe.create ~cfg:Mmoe.tiny ()) in
  let r = compile_at Souffle.V4 p in
  let s = Fmt.str "%a" Souffle.summary r in
  Alcotest.(check bool) "mentions kernels" true
    (Astring_contains.contains s "kernels");
  let cuda = Souffle.cuda_source r in
  Alcotest.(check bool) "cuda source renders" true
    (Astring_contains.contains cuda "__global__")

let test_compile_graph_entry_point () =
  let r = Souffle.compile_graph (Mmoe.create ~cfg:Mmoe.tiny ()) in
  Alcotest.(check bool) "compiles" true (Souffle.time_ms r > 0.)

let qcheck_pipeline_preserves_random_dags =
  QCheck.Test.make ~name:"full pipeline preserves semantics on random DAGs"
    ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      (* reuse the random program generator from the transform tests *)
      let p = Test_transform.random_program seed in
      match Program.validate p with
      | Error _ -> QCheck.assume_fail ()
      | Ok () -> (
          let r = compile_at Souffle.V4 p in
          match Souffle.verify ~rtol:1e-3 r with
          | Ok () -> true
          | Error m -> QCheck.Test.fail_reportf "not preserved: %s" m))

let suite =
  [
    Alcotest.test_case "semantic preservation (all models)" `Slow
      test_semantic_preservation_all_models;
    Alcotest.test_case "semantic preservation (each level)" `Quick
      test_semantic_preservation_each_level;
    Alcotest.test_case "ablation monotone" `Slow test_ablation_v0_to_v4_improves;
    Alcotest.test_case "global sync cuts kernels" `Slow
      test_kernel_count_decreases_with_global_sync;
    Alcotest.test_case "reuse cuts traffic" `Slow test_reuse_reduces_traffic;
    Alcotest.test_case "horizontal merges qkv" `Quick test_horizontal_merges_qkv;
    Alcotest.test_case "vertical eliminates layout" `Quick
      test_vertical_eliminates_layout_ops;
    Alcotest.test_case "cooperative kernels valid" `Quick
      test_cooperative_kernels_valid;
    Alcotest.test_case "lstm few kernels" `Slow test_lstm_single_digit_kernels;
    Alcotest.test_case "mmoe single kernel" `Quick test_mmoe_single_kernel;
    Alcotest.test_case "report renders" `Quick test_report_summary_renders;
    Alcotest.test_case "compile_graph entry" `Quick test_compile_graph_entry_point;
    QCheck_alcotest.to_alcotest qcheck_pipeline_preserves_random_dags;
  ]
