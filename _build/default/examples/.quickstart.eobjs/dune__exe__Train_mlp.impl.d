examples/train_mlp.ml: Autodiff B Dgraph Expr Fmt Interp List Lower Nd Op Program Souffle String Te
