bin/debug2.ml: Analysis Ansor Device Fmt Hashtbl Horizontal Intensity List Lower Lstm Occupancy Partition Sched Te Vertical
