(** TE schedules: the tiling/binding decisions an auto-scheduler (Ansor in
    the paper) makes for one TE, together with the derived resource usage
    the §5.4 partitioner needs (launch dimension, shared memory, registers).

    The schedule language mirrors the TVM primitives used in Fig. 2:
    [split] (the [tile]/[rtile] factors), [bind] (block/thread binding is
    implied by the tile structure), [cache_read] ([cache_read_smem]) and
    tensorization ([use_tensor_core]). *)

type t = {
  te_name : string;
  tile : int array;          (** output-space tile, one factor per dim *)
  rtile : int array;         (** reduction-space tile *)
  rsplit : int;              (** cross-block reduction split: the two-phase
                                 block-local + atomicAdd scheme of §6.3;
                                 1 = single-phase *)
  threads_per_block : int;
  use_tensor_core : bool;
  cache_read_smem : bool;    (** stage input tiles through shared memory *)
  compute_eff : float;       (** achieved fraction of pipeline peak *)
}

(** Blocks in the launch grid: one block per output tile, times the
    reduction split. *)
let grid_blocks (te : Te.t) (s : t) : int =
  let g = ref (max 1 s.rsplit) in
  Array.iteri
    (fun i d -> g := !g * ((d + s.tile.(i) - 1) / s.tile.(i)))
    te.Te.out_shape;
  !g

let tile_elems s = Array.fold_left ( * ) 1 s.tile

(* Elements of one input tile: the product of the tile factors of the
   distinct iteration/reduction variables the access uses, capped at the
   tensor's total size.  Var-set accounting (rather than per-dimension
   products) stays correct for composite div/mod indices where the same
   variable appears in several dimensions (reshape/transpose folds). *)
let input_tile_elems ?numel (s : t) (idxs : Index.t list) : int =
  let module IS = Set.Make (struct
    type t = [ `Out of int | `Red of int ]

    let compare = compare
  end) in
  let vars =
    List.fold_left
      (fun acc idx -> Index.fold_vars (fun a v -> IS.add v a) acc idx)
      IS.empty idxs
  in
  let prod =
    IS.fold
      (fun v acc ->
        match v with
        | `Out k ->
            acc * (if k < Array.length s.tile then max 1 s.tile.(k) else 1)
        | `Red k ->
            acc * (if k < Array.length s.rtile then max 1 s.rtile.(k) else 1))
      vars 1
  in
  match numel with Some n -> min prod (max 1 n) | None -> prod

(* Input-tile elements of a whole body.  Select branches with disjoint
   predicates (horizontal merges, padding guards) contribute the *largest*
   branch, not the sum: one block only ever walks one branch.
   [numel_of] caps each access by its tensor's size when known. *)
let rec body_tile_elems ~numel_of (s : t) (e : Expr.t) : int =
  match e with
  | Expr.Read (name, idxs) -> input_tile_elems ?numel:(numel_of name) s idxs
  | Expr.Const _ | Expr.IdxVal _ -> 0
  | Expr.Unop (_, a) -> body_tile_elems ~numel_of s a
  | Expr.Binop (_, a, b) ->
      body_tile_elems ~numel_of s a + body_tile_elems ~numel_of s b
  | Expr.Select (_, a, b) ->
      max (body_tile_elems ~numel_of s a) (body_tile_elems ~numel_of s b)

let numel_of_program (p : Program.t) : string -> int option =
 fun name ->
  Option.map
    (fun (i : Program.tensor_info) -> Shape.numel i.Program.shape)
    (Program.tensor_info p name)

(** {!smem_bytes} with the per-TE invariants ([numel_of] closure, body
    expression) hoisted out — the Ansor search calls this once per
    candidate, so the invariants must not be rebuilt per call. *)
let smem_bytes_with ~numel_of ~(body : Expr.t) (te : Te.t) (s : t) : int =
  let elem_bytes = Dtype.bytes te.Te.dtype in
  let out = tile_elems s * elem_bytes in
  let ins =
    if not s.cache_read_smem then 0
    else body_tile_elems ~numel_of s body * elem_bytes
  in
  (* double buffering of staged inputs for the async-copy pipeline *)
  out + (2 * ins)

(** Shared memory one block needs: the output tile plus (when staging reads)
    the input tiles of one branch of the body, double-buffered. *)
let smem_bytes (p : Program.t) (te : Te.t) (s : t) : int =
  smem_bytes_with ~numel_of:(numel_of_program p) ~body:(Te.body_expr te) te s

(** Bytes one full pass of a reduction TE loads through its tiles (the
    block-by-block traffic; anything beyond the unique footprint hits L2).
    Hoisted-invariant form; see {!smem_bytes_with}. *)
let tiled_load_bytes_with ~numel_of ~(body : Expr.t) (te : Te.t) (s : t) : int
    =
  let grid = grid_blocks te s in
  body_tile_elems ~numel_of s body * Dtype.bytes te.Te.dtype * grid

let tiled_load_bytes (p : Program.t) (te : Te.t) (s : t) : int =
  tiled_load_bytes_with ~numel_of:(numel_of_program p) ~body:(Te.body_expr te)
    te s

(** Registers per thread: accumulator fragment plus addressing/loop
    overhead. *)
let regs_per_thread (s : t) : int =
  let acc_per_thread = tile_elems s / max 1 s.threads_per_block in
  min 255 (16 + (2 * max 1 acc_per_thread))

let usage_with ~numel_of ~(body : Expr.t) (te : Te.t) (s : t) :
    Occupancy.usage =
  {
    Occupancy.threads_per_block = s.threads_per_block;
    smem_per_block = smem_bytes_with ~numel_of ~body te s;
    regs_per_thread = regs_per_thread s;
  }

let usage (p : Program.t) (te : Te.t) (s : t) : Occupancy.usage =
  usage_with ~numel_of:(numel_of_program p) ~body:(Te.body_expr te) te s

(** Structural tensor-core eligibility: a sum-reduction whose body is a
    product of two reads (GEMM-shaped).  The paper runs GEMMs in FP16 on
    tensor cores and everything else in FP32 (§7.1); batch-1 GEMV has too
    little parallelism per fragment row, so it stays on CUDA cores. *)
let tensor_core_eligible (te : Te.t) : bool =
  match te.Te.body with
  | Te.Reduce { op = Te.Sum; expr; _ } -> (
      let rec is_mul_of_reads = function
        | Expr.Binop (Expr.Mul, a, b) -> is_read_like a && is_read_like b
        | Expr.Select (_, a, b) -> is_mul_of_reads a && is_mul_of_reads b
        | _ -> false
      and is_read_like = function
        | Expr.Read _ -> true
        | Expr.Select (_, a, b) -> is_read_like a && is_read_like b
        | Expr.Const _ -> true
        | _ -> false
      in
      (* the wmma fragment tiles the two innermost output dims; batch
         dims may be small, GEMV-like outputs (a dim < 16) may not *)
      let r = Te.rank te in
      r >= 2
      && te.Te.out_shape.(r - 1) >= 16
      && te.Te.out_shape.(r - 2) >= 16
      && is_mul_of_reads expr)
  | _ -> false

(** Trivial schedule for memory-intensive TEs that stay un-fused: one
    256-thread block per 4096-element slab, no staging. *)
let default_elementwise (te : Te.t) : t =
  let shape = te.Te.out_shape in
  let rank = Array.length shape in
  let tile =
    Array.mapi
      (fun i d -> if i = rank - 1 then min d 4096 else 1)
      shape
  in
  {
    te_name = te.Te.name;
    tile = (if rank = 0 then [||] else tile);
    rtile = Array.map (fun d -> min d 64) (Te.reduce_axes te);
    rsplit = 1;
    threads_per_block = 256;
    use_tensor_core = false;
    cache_read_smem = false;
    compute_eff = 0.7;
  }

let pp ppf s =
  Fmt.pf ppf "sched(%s) tile=%a rtile=%a threads=%d%s%s eff=%.2f" s.te_name
    Fmt.(array ~sep:(any "x") int) s.tile
    Fmt.(array ~sep:(any "x") int) s.rtile
    s.threads_per_block
    (if s.use_tensor_core then " wmma" else "")
    (if s.cache_read_smem then " cache_read" else "")
    s.compute_eff
