(** Substring search (the stdlib has none before 4.13's unavailable
    [String.*]; kept tiny and dependency-free). *)

let contains (haystack : string) (needle : string) : bool =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else if nn > nh then false
  else begin
    let rec at i j = j >= nn || (haystack.[i + j] = needle.[j] && at i (j + 1)) in
    let rec go i = i + nn <= nh && (at i 0 || go (i + 1)) in
    go 0
  end
