(* Compile-throughput benchmark: measures what the fast-compilation layer
   buys — constructive scheduling, the domain-parallel Ansor search and the
   persistent schedule cache (Scache) — and checks, on every model, that
   none of it costs kernel quality or determinism.

   Four compiles per model:
     cold/construct   fresh cache, search_domains = 1, constructive
                      scheduling (the default pipeline)
     cold/exhaustive  fresh cache, search_domains = 1, full enumerative
                      candidate search (the quality oracle)
     cold/parallel    fresh cache, default domain count, constructive
     warm             the cache the cold/construct run populated

   Each compile runs under [Obs.record], so besides end-to-end wall time we
   report the schedule-phase time ("ansor" spans), the number of candidate
   searches actually performed ("ansor-search" spans), and a per-phase
   breakdown ("emit-kernel" is the span the emitter actually opens per
   kernel — both the Souffle ladder and the whole-grouping [Emit.emit]
   entry point emit it).  The warm run must perform zero searches.

   Gates recorded in the runlog, so --strict-bench fails the run:
     - every compiled artifact must be dataflow-clean;
     - parallel search and warm-cache compiles must reproduce the
       cold/construct artifact bit for bit;
     - constructed schedules must hold kernel quality: per model, the
       simulated end-to-end runtime must stay within [quality_tol] of the
       exhaustive search's;
     - the whole zoo must cold-compile (constructive, serial) within
       [budget_s] end to end;
     - on the full-size zoo, the cold-compile geomean speedup over the
       pre-overhaul baseline (the [prepr_cold_s] constants, measured at
       the commit before constructive scheduling and the non-search phase
       work landed) must be at least [min_geomean].

   Results land in BENCH_compile.json / BENCH_compile_smoke.json. *)

let spans_named (t : Obs.trace) (name : string) : int =
  let n = ref 0 in
  Obs.iter (fun s ~depth:_ -> if s.Obs.sname = name then incr n) t;
  !n

(* the pipeline phases broken out per run, in pipeline order; each is an
   Obs span the compiler actually emits (emission opens one "emit-kernel"
   span per kernel — there is no aggregate "emit" span on the ladder path) *)
let phase_names =
  [
    "horizontal"; "vertical"; "analysis"; "ansor"; "partition"; "emit-kernel";
    "verify-ir"; "verify-dataflow"; "simulate";
  ]

(* constructed schedules may not cost more than this fraction of simulated
   runtime vs the exhaustive search *)
let quality_tol = 0.05

(* cold/construct full-zoo geomean speedup the overhaul must hold over the
   pre-overhaul compiler *)
let min_geomean = 2.0

(* full-size cold/serial compile seconds at the commit before this overhaul
   (exhaustive search, quadratic toposort, per-kernel consumer rebuilds) —
   the denominator of the geomean gate *)
let prepr_cold_s =
  [
    ("BERT", 0.054); ("ResNeXt", 2.191); ("LSTM", 2.453);
    ("EfficientNet", 0.017); ("SwinTrans.", 0.275); ("MMoE", 0.002);
    ("GPT", 0.013);
  ]

type run = {
  label : string;
  search_mode : Ansor.mode;
  compile_s : float;     (* end-to-end wall seconds *)
  ansor_us : float;      (* schedule-phase ("ansor" spans) microseconds *)
  searches : int;        (* "ansor-search" spans: candidate searches done *)
  phases : (string * float) list;  (* per-phase microseconds, {!phase_names} *)
  sim : Sim.result;
}

let measure ~model ~label ?sched_cache ~domains ~search_mode (p : Program.t) :
    run =
  let ansor = { Ansor.default_config with Ansor.search_domains = domains } in
  let cfg = Souffle.config ~ansor ~search_mode ?sched_cache () in
  let t0 = Unix.gettimeofday () in
  let r, trace =
    Obs.record (fun () ->
        Tables.compile_recorded ~cfg ~name:(model ^ "/" ^ label) p)
  in
  (* artifact-quality check: the compiled program must be dataflow-clean
     (every re-read of an on-device tensor classified as L2/shared, bytes
     reconciling with tensor footprints) — recorded in the runlog so
     --strict-bench fails over a violation *)
  (match
     Dataflow.check_prog Tables.dev
       (Souffle.dataflow_env r.Souffle.transformed)
       r.Souffle.prog
   with
  | Ok () -> ()
  | Error ds ->
      Fmt.epr "  !! %s/%s: compiled artifact is not dataflow-clean:@." model
        label;
      List.iter (fun d -> Fmt.epr "     %a@." Diag.pp d) ds;
      Runlog.record Tables.runlog
        ~model:(model ^ "/" ^ label ^ "@dataflow")
        ~degraded_steps:0 ~errors:(List.length ds));
  {
    label;
    search_mode;
    compile_s = Unix.gettimeofday () -. t0;
    ansor_us = Obs.total_us trace "ansor";
    searches = spans_named trace "ansor-search";
    phases = List.map (fun n -> (n, Obs.total_us trace n)) phase_names;
    sim = r.Souffle.sim;
  }

(* a failed determinism or quality gate is a bench error, not just noise on
   stderr: record it so --strict-bench fails the run *)
let gate_failure ~model ~gate fmt =
  Fmt.kstr
    (fun msg ->
      Fmt.epr "  !! %s: %s@." model msg;
      Runlog.record Tables.runlog
        ~model:(model ^ "@" ^ gate)
        ~degraded_steps:0 ~errors:1)
    fmt

let bench_model ~graph_of (e : Zoo.entry) : string * run list =
  let p = Lower.run (graph_of e) in
  let cache = Scache.create () in
  let construct =
    measure ~model:e.Zoo.name ~label:"cold/construct" ~sched_cache:cache
      ~domains:1 ~search_mode:Ansor.Construct p
  in
  let exhaustive =
    measure ~model:e.Zoo.name ~label:"cold/exhaustive"
      ~sched_cache:(Scache.create ()) ~domains:1
      ~search_mode:Ansor.Exhaustive p
  in
  let parallel =
    measure ~model:e.Zoo.name ~label:"cold/parallel"
      ~sched_cache:(Scache.create ())
      ~domains:(Domain.recommended_domain_count ())
      ~search_mode:Ansor.Construct p
  in
  let warm =
    measure ~model:e.Zoo.name ~label:"warm" ~sched_cache:cache ~domains:1
      ~search_mode:Ansor.Construct p
  in
  if parallel.sim <> construct.sim then
    gate_failure ~model:e.Zoo.name ~gate:"parallel-determinism"
      "parallel search changed the compiled artifact";
  if warm.sim <> construct.sim then
    gate_failure ~model:e.Zoo.name ~gate:"warm-determinism"
      "warm-cache compile changed the compiled artifact";
  if warm.searches <> 0 then
    gate_failure ~model:e.Zoo.name ~gate:"warm-searches"
      "warm compile still ran %d candidate search(es)" warm.searches;
  (* kernel-quality gate: construction must stay within quality_tol of the
     exhaustive search on simulated end-to-end runtime *)
  let tc = Sim.time_ms construct.sim and te = Sim.time_ms exhaustive.sim in
  let rel = if te > 0. then (tc -. te) /. te else 0. in
  if rel > quality_tol then
    gate_failure ~model:e.Zoo.name ~gate:"quality"
      "constructed schedules cost %.1f%% simulated runtime vs exhaustive \
       (tolerance %.0f%%): %.3f ms vs %.3f ms"
      (100. *. rel) (100. *. quality_tol) tc te;
  (e.Zoo.name, [ construct; exhaustive; parallel; warm ])

let json_of_run (r : run) : Jsonlite.t =
  Jsonlite.Obj
    [
      ("label", Jsonlite.Str r.label);
      ("search_mode", Jsonlite.Str (Ansor.mode_tag r.search_mode));
      ("compile_s", Jsonlite.Num r.compile_s);
      ("sim_time_ms", Jsonlite.Num (Sim.time_ms r.sim));
      ("ansor_us", Jsonlite.Num r.ansor_us);
      ("searches", Jsonlite.Num (float_of_int r.searches));
      ( "phases_us",
        Jsonlite.Obj
          (List.map (fun (n, us) -> (n, Jsonlite.Num us)) r.phases) );
    ]

let ratio num den = if den > 0. then num /. den else 0.

let run_with ~graph_of ~out ~budget_s ~geomean_gate () =
  Tables.section
    "Compile throughput — constructive scheduling + parallel search + cache";
  let results = List.map (bench_model ~graph_of) Zoo.all in
  Fmt.pr "  %-14s %-16s %12s %12s %12s %10s@." "model" "run" "compile(s)"
    "sim(ms)" "ansor(ms)" "searches";
  List.iter
    (fun (model, runs) ->
      List.iter
        (fun r ->
          Fmt.pr "  %-14s %-16s %12.3f %12.3f %12.2f %10d@." model r.label
            r.compile_s (Sim.time_ms r.sim) (r.ansor_us /. 1e3) r.searches)
        runs)
    results;
  let pick label runs = List.find (fun r -> r.label = label) runs in
  let sum f = List.fold_left (fun a (_, runs) -> a +. f runs) 0. results in
  let cold_s = sum (fun rs -> (pick "cold/construct" rs).compile_s) in
  let exhaustive_s = sum (fun rs -> (pick "cold/exhaustive" rs).compile_s) in
  let warm_s = sum (fun rs -> (pick "warm" rs).compile_s) in
  let parallel_s = sum (fun rs -> (pick "cold/parallel" rs).compile_s) in
  let cold_ansor = sum (fun rs -> (pick "cold/construct" rs).ansor_us) in
  let warm_ansor = sum (fun rs -> (pick "warm" rs).ansor_us) in
  let worst_quality =
    List.fold_left
      (fun acc (_, runs) ->
        let tc = Sim.time_ms (pick "cold/construct" runs).sim
        and te = Sim.time_ms (pick "cold/exhaustive" runs).sim in
        max acc (if te > 0. then (tc -. te) /. te else 0.))
      0. results
  in
  (* full-zoo cold-compile budget: the constructive pipeline must compile
     the whole zoo cold within budget_s *)
  if cold_s > budget_s then
    gate_failure ~model:"zoo" ~gate:"cold-budget"
      "full-zoo cold compile took %.3f s (budget %.3f s)" cold_s budget_s;
  (* geomean speedup vs the pre-overhaul compiler (full-size zoo only: the
     prepr_cold_s constants were measured on full-size models) *)
  let speedups =
    if not geomean_gate then []
    else
      List.filter_map
        (fun (model, runs) ->
          match List.assoc_opt model prepr_cold_s with
          | None -> None
          | Some base ->
              let s = ratio base (pick "cold/construct" runs).compile_s in
              Some (model, s))
        results
  in
  let geomean =
    match speedups with
    | [] -> 0.
    | l ->
        exp
          (List.fold_left (fun a (_, s) -> a +. log s) 0. l
          /. float_of_int (List.length l))
  in
  if geomean_gate then begin
    if List.length speedups <> List.length results then
      gate_failure ~model:"zoo" ~gate:"speedup-baseline"
        "pre-overhaul baseline constants missing for %d model(s)"
        (List.length results - List.length speedups);
    if geomean < min_geomean then
      gate_failure ~model:"zoo" ~gate:"speedup-geomean"
        "cold-compile geomean speedup %.2fx vs pre-overhaul baseline is \
         below the %.1fx gate"
        geomean min_geomean
  end;
  Fmt.pr "  ---@.";
  Fmt.pr
    "  end-to-end:     construct %.2fx vs exhaustive, warm %.2fx, parallel \
     %.2fx@."
    (ratio exhaustive_s cold_s) (ratio cold_s warm_s)
    (ratio cold_s parallel_s);
  Fmt.pr "  schedule phase: warm %.2fx vs cold/construct@."
    (ratio cold_ansor warm_ansor);
  Fmt.pr "  kernel quality: worst construct-vs-exhaustive gap %.2f%% (tol \
          %.0f%%)@."
    (100. *. worst_quality) (100. *. quality_tol);
  Fmt.pr "  cold budget:    %.3f s of %.3f s@." cold_s budget_s;
  if geomean_gate then
    Fmt.pr "  vs pre-overhaul: %.2fx geomean cold speedup (gate %.1fx)@."
      geomean min_geomean;
  let json =
    Jsonlite.Obj
      [
        ("bench", Jsonlite.Str "compile-perf");
        ("device", Jsonlite.Str Tables.dev.Device.name);
        ( "models",
          Jsonlite.Obj
            (List.map
               (fun (model, runs) ->
                 (model, Jsonlite.Arr (List.map json_of_run runs)))
               results) );
        ( "summary",
          Jsonlite.Obj
            ([
               ( "e2e_construct_speedup",
                 Jsonlite.Num (ratio exhaustive_s cold_s) );
               ("e2e_warm_speedup", Jsonlite.Num (ratio cold_s warm_s));
               ( "e2e_parallel_speedup",
                 Jsonlite.Num (ratio cold_s parallel_s) );
               ( "schedule_warm_speedup",
                 Jsonlite.Num (ratio cold_ansor warm_ansor) );
               ("quality_worst_rel", Jsonlite.Num worst_quality);
               ("quality_tol", Jsonlite.Num quality_tol);
               ("cold_total_s", Jsonlite.Num cold_s);
               ("cold_budget_s", Jsonlite.Num budget_s);
             ]
            @
            if geomean_gate then
              [
                ("geomean_vs_pre_overhaul", Jsonlite.Num geomean);
                ("geomean_gate", Jsonlite.Num min_geomean);
                ( "speedup_vs_pre_overhaul",
                  Jsonlite.Obj
                    (List.map
                       (fun (m, s) -> (m, Jsonlite.Num s))
                       speedups) );
              ]
            else []) );
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Jsonlite.to_string json));
  Fmt.pr "  wrote %s@." out

(* full-size models: the measurement run.  Budget: the whole zoo, cold and
   serial, in 2.5 s — half of what the pre-overhaul compiler needed. *)
let run () =
  run_with
    ~graph_of:(fun e -> e.Zoo.full ())
    ~out:"BENCH_compile.json" ~budget_s:2.5 ~geomean_gate:true ()

(* tiny models: the @bench-smoke alias — the same gates (budget scaled to
   the tiny configurations, no pre-overhaul baseline) in well under a
   second of compile time *)
let smoke () =
  run_with
    ~graph_of:(fun e -> e.Zoo.tiny ())
    ~out:"BENCH_compile_smoke.json" ~budget_s:1.0 ~geomean_gate:false ()
