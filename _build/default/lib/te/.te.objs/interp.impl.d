lib/te/interp.ml: Array Dtype Expr Fmt List Nd Program Rng Shape Te
