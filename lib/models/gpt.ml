(** GPT-style autoregressive decoder block (masked multi-head attention +
    MLP), the LLM-decode workload MPK motivates mega-kernelization with.

    Two modes share one set of weights (identical input names, so a decode
    graph can be fed directly from a prefill run):

    - {b prefill}: the full prompt (seq, hidden) flows through causally
      masked attention — the encoder-zoo shape, plus {!Op.Causal_mask}
      between score scaling and softmax.
    - {b decode}: one token (1, hidden) attends over a KV cache of
      [pos] earlier entries.  The cache append is a first-class
      {!Op.Concat} TE ([l<i>.k_all] / [l<i>.v_all], exported as program
      outputs), so the dataflow verifier and provenance tags cover the
      carried state like any other tensor.

    Decode at cache length [p] is {e bit-exact} against row [p] of a
    prefill over [p + 1] tokens: masked (future) scores are -inf, which
    never changes a max-reduce, contributes [exp(-inf) = 0] to the softmax
    sums, and every other layer op is row-wise causal — the interpreter
    equivalence suite in [test/test_gpt.ml] pins this down per position
    bucket. *)

open Dgraph

type config = {
  layers : int;
  seq : int;  (** prompt length (prefill mode only) *)
  hidden : int;
  heads : int;
  ffn : int;
  dtype : Dtype.t;
}

let base =
  { layers = 4; seq = 512; hidden = 512; heads = 8; ffn = 2048; dtype = Dtype.F16 }

(** Scaled-down configuration for interpreter-based tests. *)
let tiny = { layers = 2; seq = 8; hidden = 8; heads = 2; ffn = 16; dtype = Dtype.F32 }

(** Power-of-two KV-cache position buckets compiled for serving, smallest
    first (a decode step at cache length [p] runs on the smallest bucket
    [>= p]). *)
let buckets = [ 64; 128; 256; 512 ]

(** Buckets scaled for the [tiny] interpreter configuration. *)
let tiny_buckets = [ 2; 4; 8 ]

(* Shared attention + MLP tail once per-mode attention produced [ctx_m]
   (rows, hidden): output projection, residual, LN, FFN, residual, LN.
   Row-wise throughout, which is what makes decode a prefill slice. *)
let mlp_tail (b : B.builder) (cfg : config) ~(prefix : string)
    ~(w : string -> int array -> string) ~(proj : string -> Op.t -> string list -> string)
    (x : string) (ctx_m : string) : string =
  let h = cfg.hidden in
  let wo = w "wo" [| h; h |] and bo = w "bo" [| h |] in
  let att_out = proj "att_out" Op.Matmul [ ctx_m; wo ] in
  let att_b = proj "att_b" Op.Bias_add [ att_out; bo ] in
  let res1 = proj "res1" (Op.Binary Expr.Add) [ att_b; x ] in
  let g1 = w "ln1_g" [| h |] and beta1 = w "ln1_b" [| h |] in
  let ln1 = proj "ln1" (Op.Layernorm { eps = 1e-5 }) [ res1; g1; beta1 ] in
  let w1 = w "w1" [| h; cfg.ffn |] and b1 = w "b1" [| cfg.ffn |] in
  let w2 = w "w2" [| cfg.ffn; h |] and b2 = w "b2" [| h |] in
  let f1 = proj "ffn1" Op.Matmul [ ln1; w1 ] in
  let f1b = proj "ffn1_b" Op.Bias_add [ f1; b1 ] in
  let gelu = Mcommon.gelu b ~prefix f1b in
  let f2 = proj "ffn2" Op.Matmul [ gelu; w2 ] in
  let f2b = proj "ffn2_b" Op.Bias_add [ f2; b2 ] in
  let res2 = proj "res2" (Op.Binary Expr.Add) [ f2b; ln1 ] in
  let g2 = w "ln2_g" [| h |] and beta2 = w "ln2_b" [| h |] in
  proj "out" (Op.Layernorm { eps = 1e-5 }) [ res2; g2; beta2 ]

(* One prefill layer: BERT's attention block with a causal mask between
   score scaling and softmax. *)
let prefill_layer (b : B.builder) (cfg : config) ~(prefix : string)
    (x : string) : string =
  let h = cfg.hidden and s = cfg.seq in
  let hd = cfg.heads in
  let dh = h / hd in
  let w name shape = B.input b (prefix ^ "." ^ name) ~dtype:cfg.dtype shape in
  let proj name op inputs = B.add b ~name:(prefix ^ "." ^ name) op inputs in
  let wq = w "wq" [| h; h |] and wk = w "wk" [| h; h |] and wv = w "wv" [| h; h |] in
  let bq = w "bq" [| h |] and bk = w "bk" [| h |] and bv = w "bv" [| h |] in
  let q = proj "q" Op.Matmul [ x; wq ] in
  let k = proj "k" Op.Matmul [ x; wk ] in
  let v = proj "v" Op.Matmul [ x; wv ] in
  let qb = proj "qb" Op.Bias_add [ q; bq ] in
  let kb = proj "kb" Op.Bias_add [ k; bk ] in
  let vb = proj "vb" Op.Bias_add [ v; bv ] in
  let split name t =
    let r = proj (name ^ "_r") (Op.Reshape [| s; hd; dh |]) [ t ] in
    proj (name ^ "_t") (Op.Transpose [| 1; 0; 2 |]) [ r ]
  in
  let qh = split "qh" qb and kh = split "kh" kb and vh = split "vh" vb in
  let scores = proj "scores" Op.Batch_matmul_nt [ qh; kh ] in
  let scaled = proj "scaled" (Op.Scale (1. /. sqrt (float_of_int dh))) [ scores ] in
  let masked = proj "masked" Op.Causal_mask [ scaled ] in
  let probs = proj "probs" Op.Softmax [ masked ] in
  let ctx = proj "ctx" Op.Batch_matmul [ probs; vh ] in
  let ctx_t = proj "ctx_t" (Op.Transpose [| 1; 0; 2 |]) [ ctx ] in
  let ctx_m = proj "ctx_m" (Op.Reshape [| s; h |]) [ ctx_t ] in
  mlp_tail b cfg ~prefix ~w ~proj x ctx_m

(* One decode layer at cache length [pos]: project the incoming token,
   append its K/V rows to the carried cache (Concat TEs named
   [prefix.k_all] / [prefix.v_all]), and attend over all [pos + 1]
   entries.  No mask is needed — every cached key is at or before the
   current position by construction. *)
let decode_layer (b : B.builder) (cfg : config) ~(pos : int)
    ~(prefix : string) (x : string) : string * string * string =
  let h = cfg.hidden in
  let hd = cfg.heads in
  let dh = h / hd in
  let t = pos + 1 in
  let w name shape = B.input b (prefix ^ "." ^ name) ~dtype:cfg.dtype shape in
  let proj name op inputs = B.add b ~name:(prefix ^ "." ^ name) op inputs in
  let k_cache = w "k_cache" [| pos; h |] and v_cache = w "v_cache" [| pos; h |] in
  let wq = w "wq" [| h; h |] and wk = w "wk" [| h; h |] and wv = w "wv" [| h; h |] in
  let bq = w "bq" [| h |] and bk = w "bk" [| h |] and bv = w "bv" [| h |] in
  let q = proj "q" Op.Matmul [ x; wq ] in
  let k = proj "k" Op.Matmul [ x; wk ] in
  let v = proj "v" Op.Matmul [ x; wv ] in
  let qb = proj "qb" Op.Bias_add [ q; bq ] in
  let kb = proj "kb" Op.Bias_add [ k; bk ] in
  let vb = proj "vb" Op.Bias_add [ v; bv ] in
  (* KV append: cache (pos, h) ++ this token's row (1, h) *)
  let k_all = proj "k_all" (Op.Concat { axis = 0 }) [ k_cache; kb ] in
  let v_all = proj "v_all" (Op.Concat { axis = 0 }) [ v_cache; vb ] in
  let split name rows tensor =
    let r = proj (name ^ "_r") (Op.Reshape [| rows; hd; dh |]) [ tensor ] in
    proj (name ^ "_t") (Op.Transpose [| 1; 0; 2 |]) [ r ]
  in
  let qh = split "qh" 1 qb in
  let kh = split "kh" t k_all and vh = split "vh" t v_all in
  let scores = proj "scores" Op.Batch_matmul_nt [ qh; kh ] in
  let scaled = proj "scaled" (Op.Scale (1. /. sqrt (float_of_int dh))) [ scores ] in
  let probs = proj "probs" Op.Softmax [ scaled ] in
  let ctx = proj "ctx" Op.Batch_matmul [ probs; vh ] in
  let ctx_t = proj "ctx_t" (Op.Transpose [| 1; 0; 2 |]) [ ctx ] in
  let ctx_m = proj "ctx_m" (Op.Reshape [| 1; h |]) [ ctx_t ] in
  (mlp_tail b cfg ~prefix ~w ~proj x ctx_m, k_all, v_all)

(** Full-prompt prefill graph (the zoo-facing constructor). *)
let create ?(cfg = base) () : Dgraph.t =
  let b = B.create () in
  let x = B.input b "embeddings" ~dtype:cfg.dtype [| cfg.seq; cfg.hidden |] in
  let out = ref x in
  for l = 0 to cfg.layers - 1 do
    out := prefill_layer b cfg ~prefix:(Fmt.str "l%d" l) !out
  done;
  B.finish b ~outputs:[ !out ]

(** Single-token decode step over a KV cache holding [pos >= 1] entries
    per layer.  Outputs the new hidden state plus every layer's appended
    cache ([l<i>.k_all] / [l<i>.v_all]) — the carried KV state. *)
let decode ?(cfg = base) ~pos () : Dgraph.t =
  if pos < 1 then
    invalid_arg (Fmt.str "Gpt.decode: pos must be >= 1, got %d" pos);
  let b = B.create () in
  let x = B.input b "x" ~dtype:cfg.dtype [| 1; cfg.hidden |] in
  let out = ref x and caches = ref [] in
  for l = 0 to cfg.layers - 1 do
    let o, k_all, v_all =
      decode_layer b cfg ~pos ~prefix:(Fmt.str "l%d" l) !out
    in
    out := o;
    caches := v_all :: k_all :: !caches
  done;
  B.finish b ~outputs:(!out :: List.rev !caches)
