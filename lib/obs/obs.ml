(** Hierarchical pass tracing for the compilation pipeline.

    Every pass wraps its work in {!span}; when nothing is recording this is
    a single [ref] read, so instrumentation stays in the hot path
    permanently.  {!record} turns recording on for the extent of one
    closure and returns the finished {!trace}, which can be rendered as an
    indented text tree ({!pp_tree}) or exported in the Chrome-trace JSON
    format ({!to_chrome_json}) that [chrome://tracing] and Perfetto load
    directly — the same workflow TVM users get from [tvm.instrument] pass
    timing.

    Spans nest by dynamic extent: a span opened while another is open
    becomes its child.  A span closes even when its body raises, so the
    degradation ladder's retries show up as aborted-then-retried siblings
    rather than corrupting the tree. *)

type span = {
  sname : string;
  start_us : float;  (** relative to the start of the recording *)
  mutable dur_us : float;
  mutable meta : (string * string) list;
  mutable children : span list;
      (** reverse order while recording; forward after {!record} returns *)
}

type trace = {
  spans : span list;  (** root spans, in start order *)
  wall_us : float;    (** total recorded wall time *)
}

type collector = {
  mutable roots : span list;  (* reverse start order *)
  mutable stack : span list;  (* open spans, innermost first *)
  t0 : float;
}

let current : collector option ref = ref None

let enabled () = Option.is_some !current

let now_us (c : collector) = (Unix.gettimeofday () -. c.t0) *. 1e6

let span ?(meta = []) (name : string) (f : unit -> 'a) : 'a =
  match !current with
  | None -> f ()
  | Some c ->
      let s =
        { sname = name; start_us = now_us c; dur_us = 0.; meta; children = [] }
      in
      (match c.stack with
      | parent :: _ -> parent.children <- s :: parent.children
      | [] -> c.roots <- s :: c.roots);
      c.stack <- s :: c.stack;
      let close () =
        s.dur_us <- now_us c -. s.start_us;
        (* pop [s]; if the body leaked open children (an exception escaped
           past their own close), drop them too — they are already linked
           into [s.children] *)
        let rec pop = function
          | x :: rest -> if x == s then rest else pop rest
          | [] -> []
        in
        c.stack <- pop c.stack
      in
      Fun.protect ~finally:close f

(** Attach a key/value annotation to the innermost open span (no-op when
    not recording). *)
let annotate (key : string) (value : string) : unit =
  match !current with
  | Some { stack = s :: _; _ } -> s.meta <- s.meta @ [ (key, value) ]
  | _ -> ()

let rec finalize_span (s : span) : span =
  { s with children = List.rev_map finalize_span s.children }

let record (f : unit -> 'a) : 'a * trace =
  let c = { roots = []; stack = []; t0 = Unix.gettimeofday () } in
  let saved = !current in
  current := Some c;
  let restore () = current := saved in
  let v = Fun.protect ~finally:restore f in
  {
    spans = List.rev_map finalize_span c.roots;
    wall_us = now_us c;
  }
  |> fun t -> (v, t)

(** {!record} for callers that only want the trace when the body succeeds
    but must not lose the body's own [result] error. *)
let record_result (f : unit -> ('a, 'e) result) :
    ('a * trace, 'e) result =
  match record f with
  | Ok v, t -> Ok (v, t)
  | Error e, _ -> Error e

(* ---- synthetic traces ---- *)

(** A span from already-known timing — for traces assembled out of
    *simulated* time rather than the recorded wall clock (the serving
    layer's per-stream timelines).  A ["tid"] metadata entry places the
    span on that numbered row of the Chrome-trace export. *)
let make_span ?(meta = []) ?(children = []) ~start_us ~dur_us (name : string)
    : span =
  { sname = name; start_us; dur_us; meta; children }

(** Package synthetic spans as a trace; [wall_us] defaults to the latest
    span end. *)
let trace_of ?wall_us (spans : span list) : trace =
  let wall =
    match wall_us with
    | Some w -> w
    | None ->
        List.fold_left (fun a s -> Float.max a (s.start_us +. s.dur_us)) 0.
          spans
  in
  { spans; wall_us = wall }

(* ---- queries ---- *)

let rec span_count_of (s : span) =
  1 + List.fold_left (fun a c -> a + span_count_of c) 0 s.children

let span_count (t : trace) =
  List.fold_left (fun a s -> a + span_count_of s) 0 t.spans

(** Depth-first preorder walk — the order spans started. *)
let iter (f : span -> depth:int -> unit) (t : trace) : unit =
  let rec go depth s =
    f s ~depth;
    List.iter (go (depth + 1)) s.children
  in
  List.iter (go 0) t.spans

(** Total time attributed to spans named [name] (summed over the whole
    tree; nested same-name spans double-count, which the pipeline's
    instrumentation avoids). *)
let total_us (t : trace) (name : string) : float =
  let acc = ref 0. in
  iter (fun s ~depth:_ -> if s.sname = name then acc := !acc +. s.dur_us) t;
  !acc

(* ---- text rendering ---- *)

let pp_tree ppf (t : trace) =
  Fmt.pf ppf "@[<v>";
  let first = ref true in
  iter
    (fun s ~depth ->
      if not !first then Fmt.pf ppf "@,";
      first := false;
      let self =
        s.dur_us
        -. List.fold_left (fun a c -> a +. c.dur_us) 0. s.children
      in
      Fmt.pf ppf "%s%-*s %9.1f us" (String.make (2 * depth) ' ')
        (max 1 (28 - (2 * depth)))
        s.sname s.dur_us;
      if s.children <> [] then Fmt.pf ppf "  (self %.1f us)" (Float.max 0. self);
      List.iter (fun (k, v) -> Fmt.pf ppf "  %s=%s" k v) s.meta)
    t;
  Fmt.pf ppf "@,%-28s %9.1f us@]" "TOTAL" t.wall_us

(* ---- Chrome-trace export ---- *)

(** The trace as Chrome's JSON Array Format wrapped in the standard
    [{"traceEvents": [...]}] object: one complete ("ph":"X") event per
    span, microsecond timestamps, span metadata under ["args"].  A span
    whose metadata carries a numeric ["tid"] is emitted on that thread row
    (how the serving layer gives each concurrency lane its own swimlane);
    everything else lands on row 1.  A ["cname"] metadata entry becomes the
    event's top-level [cname] (one of Chrome's reserved color names), which
    is how faulted and retried serving spans get their distinct colors.
    Load the file in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}. *)
let to_chrome_json (t : trace) : string =
  let events = ref [] in
  iter
    (fun s ~depth:_ ->
      let tid =
        match List.assoc_opt "tid" s.meta with
        | Some v -> ( match float_of_string_opt v with Some f -> f | None -> 1.)
        | None -> 1.
      in
      let cname = List.assoc_opt "cname" s.meta in
      let args =
        List.filter_map
          (fun (k, v) ->
            if k = "tid" || k = "cname" then None else Some (k, Jsonlite.Str v))
          s.meta
      in
      events :=
        Jsonlite.Obj
          ([
             ("name", Jsonlite.Str s.sname);
             ("cat", Jsonlite.Str "souffle");
             ("ph", Jsonlite.Str "X");
             ("ts", Jsonlite.Num s.start_us);
             ("dur", Jsonlite.Num s.dur_us);
             ("pid", Jsonlite.Num 1.);
             ("tid", Jsonlite.Num tid);
           ]
          @ (match cname with
            | Some c -> [ ("cname", Jsonlite.Str c) ]
            | None -> [])
          @ [ ("args", Jsonlite.Obj args) ])
        :: !events)
    t;
  Jsonlite.to_string
    (Jsonlite.Obj [ ("traceEvents", Jsonlite.Arr (List.rev !events)) ])

let to_chrome_file (t : trace) (path : string) : unit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json t))
