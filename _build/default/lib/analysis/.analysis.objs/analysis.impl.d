lib/analysis/analysis.ml: Dep Fmt Intensity List Program Reuse Te
