examples/efficientnet_ablation.ml: Analysis Ansor Counters Device Efficientnet Emit Fmt Kernel_ir List Lower Program Sim Souffle Te
