lib/baselines/profiles.ml:
