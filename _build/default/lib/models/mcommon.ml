(** Helpers shared by the model definitions. *)

open Dgraph

(** gelu(x) = 0.5 x (1 + erf(x/sqrt 2)) as primitive ops. *)
let gelu (b : B.builder) ~prefix x =
  let n name op inputs = B.add b ~name:(prefix ^ "_" ^ name) op inputs in
  let e = n "gelu_s" (Op.Scale (1. /. sqrt 2.)) [ x ] in
  let e = n "gelu_e" (Op.Unary Expr.Erf) [ e ] in
  let e = n "gelu_1" (Op.Scale 0.5) [ e ] in
  let half = n "gelu_h" (Op.Scale 0.5) [ x ] in
  let lhs = n "gelu_m" (Op.Binary Expr.Mul) [ x; e ] in
  n "gelu" (Op.Binary Expr.Add) [ lhs; half ]

(** Cyclic roll of a tensor along [axis] by [shift] (>0), as
    slice+slice+concat — the shifted-window operator of Swin. *)
let roll (b : B.builder) ~prefix ~shape ~axis ~shift x =
  let d = shape.(axis) in
  let shift = ((shift mod d) + d) mod d in
  if shift = 0 then x
  else begin
    let rank = Array.length shape in
    let starts0 = Array.make rank 0 and sizes0 = Array.copy shape in
    starts0.(axis) <- shift;
    sizes0.(axis) <- d - shift;
    let hi =
      B.add b ~name:(prefix ^ "_roll_hi")
        (Op.Slice { starts = starts0; sizes = sizes0 })
        [ x ]
    in
    let starts1 = Array.make rank 0 and sizes1 = Array.copy shape in
    sizes1.(axis) <- shift;
    let lo =
      B.add b ~name:(prefix ^ "_roll_lo")
        (Op.Slice { starts = starts1; sizes = sizes1 })
        [ x ]
    in
    B.add b ~name:(prefix ^ "_roll") (Op.Concat { axis }) [ hi; lo ]
  end

(** Layernorm with fresh gamma/beta weight inputs. *)
let layernorm (b : B.builder) ~prefix ~dim x =
  let g = B.input b (prefix ^ "_g") [| dim |] in
  let beta = B.input b (prefix ^ "_b") [| dim |] in
  B.add b ~name:(prefix ^ "_ln") (Op.Layernorm { eps = 1e-5 }) [ x; g; beta ]

(** Dense layer with bias. *)
let linear (b : B.builder) ~prefix ~din ~dout x =
  let w = B.input b (prefix ^ "_w") [| din; dout |] in
  let bias = B.input b (prefix ^ "_b") [| dout |] in
  let m = B.add b ~name:(prefix ^ "_mm") Op.Matmul [ x; w ] in
  B.add b ~name:(prefix ^ "_bias") Op.Bias_add [ m; bias ]
