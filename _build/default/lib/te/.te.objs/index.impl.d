lib/te/index.ml: Array Fmt List
