(* Tests for quasi-affine index expressions: evaluation, simplification,
   range analysis, affine extraction and substitution. *)

open Index

(* [open Index] brings DSL operators (+, *, /, %) into scope; restore the
   integer ones for plain arithmetic below. *)
let ( + ) = Stdlib.( + )
let ( * ) = Stdlib.( * )
let ( / ) = Stdlib.( / )

let ext2 = ([| 8; 8 |], [| 4 |]) (* default ov/rv extents for simplify *)

let simp e =
  let ov_ext, rv_ext = ext2 in
  simplify ~ov_ext ~rv_ext e

let eval_at ~ov ~rv e = eval ~ov ~rv e

let check_same_fn ?(ov_ext = [| 8; 8 |]) ?(rv_ext = [| 4 |]) a b =
  (* compare two index expressions pointwise over the full domain *)
  let ok = ref true in
  Shape.iter ov_ext (fun ov ->
      let ov = Array.copy ov in
      Shape.iter rv_ext (fun rv ->
          if eval_at ~ov ~rv a <> eval_at ~ov ~rv b then ok := false));
  !ok

let test_eval () =
  let e = Add (Mul (Ov 0, 3), Add (Rv 0, Const 2)) in
  Alcotest.(check int) "3*i0 + r0 + 2" 17
    (eval ~ov:[| 5; 0 |] ~rv:[| 0 |] e);
  Alcotest.(check int) "div" 2 (eval ~ov:[| 11 |] ~rv:[||] (Div (Ov 0, 4)));
  Alcotest.(check int) "mod" 3 (eval ~ov:[| 11 |] ~rv:[||] (Mod (Ov 0, 4)))

let test_floor_div_negative () =
  (* floor semantics for negative values *)
  Alcotest.(check int) "(-1)/4 = -1" (-1)
    (eval ~ov:[||] ~rv:[||] (Div (Const (-1), 4)));
  Alcotest.(check int) "(-1) mod 4 = 3" 3
    (eval ~ov:[||] ~rv:[||] (Mod (Const (-1), 4)))

let test_simplify_const_fold () =
  Alcotest.(check bool) "2*3+1 folds" true
    (equal (simp (Add (Mul (Const 2, 3), Const 1))) (Const 7))

let test_simplify_add_collect () =
  let e = Add (Ov 0, Add (Ov 0, Ov 0)) in
  Alcotest.(check bool) "i+i+i = 3i" true (equal (simp e) (Mul (Ov 0, 3)))

let test_simplify_cancel () =
  let e = Add (Ov 0, Mul (Ov 0, -1)) in
  Alcotest.(check bool) "i - i = 0" true (equal (simp e) (Const 0))

let test_mod_elim_by_range () =
  (* i0 < 8, so i0 mod 16 = i0 *)
  Alcotest.(check bool) "mod eliminated" true
    (equal (simp (Mod (Ov 0, 16))) (Ov 0));
  (* i0 mod 4 cannot be eliminated *)
  Alcotest.(check bool) "mod kept" true
    (match simp (Mod (Ov 0, 4)) with Mod _ -> true | _ -> false)

let test_div_elim_by_range () =
  Alcotest.(check bool) "div to zero" true
    (equal (simp (Div (Ov 0, 16))) (Const 0))

let test_div_peel () =
  (* (8*i0 + r0)/8 = i0 since r0 < 4 < 8 *)
  let e = Div (Add (Mul (Ov 0, 8), Rv 0), 8) in
  Alcotest.(check bool) "peel multiple of divisor" true (equal (simp e) (Ov 0))

let test_reshape_roundtrip_simplifies () =
  (* Composing a (8,8) -> 64 -> (8,8) reshape index pair must give identity:
     out[i,j] reads linear = i*8+j, then in[(linear)/8, linear mod 8]. *)
  let linear = Add (Mul (Ov 0, 8), Ov 1) in
  let d0 = simp (Div (linear, 8)) and d1 = simp (Mod (linear, 8)) in
  Alcotest.(check bool) "div part is i" true (equal d0 (Ov 0));
  Alcotest.(check bool) "mod part is j" true (equal d1 (Ov 1))

let test_simplify_preserves_semantics () =
  let exprs =
    [
      Add (Mul (Div (Ov 0, 2), 2), Mod (Ov 0, 2));
      Mod (Add (Mul (Ov 0, 4), Rv 0), 4);
      Div (Add (Mul (Ov 1, 12), Const 5), 3);
      Add (Mul (Add (Ov 0, Ov 1), 2), Mod (Rv 0, 3));
    ]
  in
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Fmt.str "semantics of %a" pp e)
        true (check_same_fn e (simp e)))
    exprs

let test_range () =
  let ov_ext = [| 8; 8 |] and rv_ext = [| 4 |] in
  Alcotest.(check (pair int int)) "range of 2i+r" (0, 17)
    (range ~ov_ext ~rv_ext (Add (Mul (Ov 0, 2), Rv 0)));
  Alcotest.(check (pair int int)) "range with neg" (-7, 0)
    (range ~ov_ext ~rv_ext (Mul (Ov 0, -1)))

let test_affine_extract () =
  let ov_ext = [| 8; 8 |] and rv_ext = [| 4 |] in
  match
    to_affine ~ov_ext ~rv_ext ~n_out:2 ~n_red:1
      (Add (Add (Mul (Ov 0, 2), Mul (Rv 0, 3)), Const 5))
  with
  | Some (oc, rc, c) ->
      Alcotest.(check (array int)) "out coeffs" [| 2; 0 |] oc;
      Alcotest.(check (array int)) "red coeffs" [| 3 |] rc;
      Alcotest.(check int) "const" 5 c
  | None -> Alcotest.fail "should be affine"

let test_affine_extract_fails_on_mod () =
  let ov_ext = [| 8; 8 |] and rv_ext = [||] in
  Alcotest.(check bool) "mod not affine" true
    (to_affine ~ov_ext ~rv_ext ~n_out:2 ~n_red:0 (Mod (Ov 0, 3)) = None)

let test_subst_out () =
  (* substituting i0 := 2*j0 into i0 + 1 gives 2*j0 + 1 *)
  let e = Add (Ov 0, Const 1) in
  let s = subst_out (fun _ -> Mul (Ov 0, 2)) e in
  Alcotest.(check int) "subst eval" 7 (eval ~ov:[| 3 |] ~rv:[||] s)

let test_shift_rv () =
  let e = Add (Rv 0, Ov 0) in
  let s = shift_rv 2 e in
  Alcotest.(check int) "shifted" 9 (eval ~ov:[| 4 |] ~rv:[| 9; 9; 5 |] s)

let test_var_bounds () =
  let e = Add (Mul (Ov 3, 2), Rv 1) in
  Alcotest.(check int) "max out var" 3 (max_out_var e);
  Alcotest.(check int) "max red var" 1 (max_red_var e);
  Alcotest.(check bool) "uses reduction" true (uses_reduction e);
  Alcotest.(check bool) "no reduction" false (uses_reduction (Ov 0))

(* random index expression generator for property tests *)
let gen_idx =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [
            map (fun k -> Ov k) (int_range 0 1);
            map (fun k -> Rv k) (int_range 0 0);
            map (fun c -> Const c) (int_range (-4) 12);
          ]
      else
        frequency
          [
            (2, map2 (fun a b -> Add (a, b)) (self (n / 2)) (self (n / 2)));
            (2, map2 (fun a k -> Mul (a, k)) (self (n - 1)) (int_range (-3) 4));
            (1, map2 (fun a k -> Div (a, k)) (self (n - 1)) (int_range 1 5));
            (1, map2 (fun a k -> Mod (a, k)) (self (n - 1)) (int_range 1 5));
          ])

let arb_idx = QCheck.make ~print:to_string gen_idx

let qcheck_simplify_sound =
  QCheck.Test.make ~name:"simplify preserves pointwise value" ~count:500
    arb_idx
    (fun e -> check_same_fn e (simp e))

let qcheck_range_sound =
  QCheck.Test.make ~name:"range bounds actual values" ~count:500 arb_idx
    (fun e ->
      let ov_ext = [| 8; 8 |] and rv_ext = [| 4 |] in
      let lo, hi = range ~ov_ext ~rv_ext e in
      let ok = ref true in
      Shape.iter ov_ext (fun ov ->
          let ov = Array.copy ov in
          Shape.iter rv_ext (fun rv ->
              let v = eval ~ov ~rv e in
              if v < lo || v > hi then ok := false));
      !ok)

let qcheck_affine_matches_eval =
  QCheck.Test.make ~name:"affine extraction agrees with eval" ~count:500
    arb_idx
    (fun e ->
      let ov_ext = [| 8; 8 |] and rv_ext = [| 4 |] in
      match to_affine ~ov_ext ~rv_ext ~n_out:2 ~n_red:1 e with
      | None -> QCheck.assume_fail ()
      | Some (oc, rc, c) ->
          let ok = ref true in
          Shape.iter ov_ext (fun ov ->
              let ov = Array.copy ov in
              Shape.iter rv_ext (fun rv ->
                  let lin =
                    c
                    + (oc.(0) * ov.(0))
                    + (oc.(1) * ov.(1))
                    + (rc.(0) * rv.(0))
                  in
                  if lin <> eval ~ov ~rv e then ok := false));
          !ok)

let suite =
  [
    Alcotest.test_case "eval" `Quick test_eval;
    Alcotest.test_case "floor div semantics" `Quick test_floor_div_negative;
    Alcotest.test_case "simplify const fold" `Quick test_simplify_const_fold;
    Alcotest.test_case "simplify collect" `Quick test_simplify_add_collect;
    Alcotest.test_case "simplify cancel" `Quick test_simplify_cancel;
    Alcotest.test_case "mod elim by range" `Quick test_mod_elim_by_range;
    Alcotest.test_case "div elim by range" `Quick test_div_elim_by_range;
    Alcotest.test_case "div peel" `Quick test_div_peel;
    Alcotest.test_case "reshape roundtrip" `Quick test_reshape_roundtrip_simplifies;
    Alcotest.test_case "simplify semantics" `Quick test_simplify_preserves_semantics;
    Alcotest.test_case "range" `Quick test_range;
    Alcotest.test_case "affine extract" `Quick test_affine_extract;
    Alcotest.test_case "affine fails on mod" `Quick test_affine_extract_fails_on_mod;
    Alcotest.test_case "subst out" `Quick test_subst_out;
    Alcotest.test_case "shift rv" `Quick test_shift_rv;
    Alcotest.test_case "var bounds" `Quick test_var_bounds;
    QCheck_alcotest.to_alcotest qcheck_simplify_sound;
    QCheck_alcotest.to_alcotest qcheck_range_sound;
    QCheck_alcotest.to_alcotest qcheck_affine_matches_eval;
  ]
