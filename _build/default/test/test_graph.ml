(* Lowering correctness: every operator's TE lowering is checked against a
   directly-computed reference on concrete inputs. *)

open Dgraph

let f32 = Dtype.F32

let run1 ?(seed = 11) (g : Dgraph.t) : Nd.t =
  let p = Lower.run g in
  (match Program.validate p with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invalid lowered program: %s" m);
  let inputs = Interp.random_inputs ~seed p in
  match Interp.run p inputs with
  | [ (_, out) ] -> out
  | l -> snd (List.hd l)

let input_env ?(seed = 11) (g : Dgraph.t) =
  Interp.random_inputs ~seed (Lower.run g)

let graph1 op ~ins ~shapes =
  let b = B.create () in
  List.iter2 (fun n s -> ignore (B.input b n s)) ins shapes;
  let out = B.add b ~name:"out" op ins in
  B.finish b ~outputs:[ out ]

let test_conv2d_identity_kernel () =
  (* 1x1 conv with identity weights returns the input *)
  let b = B.create () in
  let x = B.input b "x" [| 1; 2; 4; 4 |] in
  let w = B.input b "w" [| 2; 2; 1; 1 |] in
  let out =
    B.add b ~name:"out"
      (Op.Conv2d { kernel = 1; stride = 1; padding = 0; groups = 1 })
      [ x; w ]
  in
  let g = B.finish b ~outputs:[ out ] in
  let p = Lower.run g in
  let env =
    Interp.env_of_list
      [
        ("x", Nd.init [| 1; 2; 4; 4 |] (fun i -> float_of_int (i.(1) + i.(2) + i.(3))));
        ( "w",
          Nd.init [| 2; 2; 1; 1 |] (fun i -> if i.(0) = i.(1) then 1. else 0.) );
      ]
  in
  let out = List.assoc "out" (Interp.run p env) in
  Alcotest.(check (float 1e-6)) "identity conv" 5.
    (Nd.get out [| 0; 1; 2; 2 |])

let test_conv2d_padding_sums () =
  (* all-ones 3x3 conv with padding: corner output sums a 2x2 window *)
  let b = B.create () in
  let x = B.input b "x" [| 1; 1; 4; 4 |] in
  let w = B.input b "w" [| 1; 1; 3; 3 |] in
  let out =
    B.add b ~name:"out"
      (Op.Conv2d { kernel = 3; stride = 1; padding = 1; groups = 1 })
      [ x; w ]
  in
  let g = B.finish b ~outputs:[ out ] in
  let p = Lower.run g in
  let env =
    Interp.env_of_list
      [ ("x", Nd.create [| 1; 1; 4; 4 |] 1.); ("w", Nd.create [| 1; 1; 3; 3 |] 1.) ]
  in
  let out = List.assoc "out" (Interp.run p env) in
  Alcotest.(check (float 1e-6)) "corner" 4. (Nd.get out [| 0; 0; 0; 0 |]);
  Alcotest.(check (float 1e-6)) "center" 9. (Nd.get out [| 0; 0; 1; 1 |])

let test_grouped_conv_independence () =
  (* with 2 groups, group-0 output must not depend on group-1 channels *)
  let b = B.create () in
  let x = B.input b "x" [| 1; 4; 3; 3 |] in
  let w = B.input b "w" [| 2; 2; 1; 1 |] in
  let out =
    B.add b ~name:"out"
      (Op.Conv2d { kernel = 1; stride = 1; padding = 0; groups = 2 })
      [ x; w ]
  in
  let g = B.finish b ~outputs:[ out ] in
  let p = Lower.run g in
  let x0 = Nd.init [| 1; 4; 3; 3 |] (fun i -> if i.(1) < 2 then 1. else 100.) in
  let w0 = Nd.create [| 2; 2; 1; 1 |] 1. in
  let out0 =
    List.assoc "out" (Interp.run p (Interp.env_of_list [ ("x", x0); ("w", w0) ]))
  in
  (* group 0 output channel 0 sums channels 0-1 only: 1+1 = 2 *)
  Alcotest.(check (float 1e-6)) "group0" 2. (Nd.get out0 [| 0; 0; 1; 1 |]);
  (* group 1 output channel 1 sums channels 2-3: 200 *)
  Alcotest.(check (float 1e-6)) "group1" 200. (Nd.get out0 [| 0; 1; 1; 1 |])

let test_depthwise_conv () =
  let b = B.create () in
  let x = B.input b "x" [| 1; 2; 3; 3 |] in
  let w = B.input b "w" [| 2; 1; 3; 3 |] in
  let out =
    B.add b ~name:"out" (Op.Depthwise_conv2d { kernel = 3; stride = 1; padding = 0 })
      [ x; w ]
  in
  let g = B.finish b ~outputs:[ out ] in
  let p = Lower.run g in
  let env =
    Interp.env_of_list
      [
        ("x", Nd.init [| 1; 2; 3; 3 |] (fun i -> float_of_int (i.(1) + 1)));
        ("w", Nd.create [| 2; 1; 3; 3 |] 1.);
      ]
  in
  let out = List.assoc "out" (Interp.run p env) in
  Alcotest.(check (float 1e-6)) "channel 0: 9 ones" 9. (Nd.get out [| 0; 0; 0; 0 |]);
  Alcotest.(check (float 1e-6)) "channel 1: 9 twos" 18. (Nd.get out [| 0; 1; 0; 0 |])

let test_max_pool () =
  let b = B.create () in
  let x = B.input b "x" [| 1; 1; 4; 4 |] in
  let out =
    B.add b ~name:"out"
      (Op.Pool2d { kind = Op.Max_pool; kernel = 2; stride = 2; padding = 0 })
      [ x ]
  in
  let g = B.finish b ~outputs:[ out ] in
  let p = Lower.run g in
  let x0 = Nd.init [| 1; 1; 4; 4 |] (fun i -> float_of_int ((i.(2) * 4) + i.(3))) in
  let out = List.assoc "out" (Interp.run p (Interp.env_of_list [ ("x", x0) ])) in
  Alcotest.(check (float 0.)) "2x2 max" 5. (Nd.get out [| 0; 0; 0; 0 |]);
  Alcotest.(check (float 0.)) "last window" 15. (Nd.get out [| 0; 0; 1; 1 |])

let test_avg_pool () =
  let g =
    graph1
      (Op.Pool2d { kind = Op.Avg_pool; kernel = 2; stride = 2; padding = 0 })
      ~ins:[ "x" ] ~shapes:[ [| 1; 1; 2; 2 |] ]
  in
  let p = Lower.run g in
  let x0 = Nd.of_array [| 1; 1; 2; 2 |] [| 1.; 2.; 3.; 6. |] in
  let out = List.assoc "out" (Interp.run p (Interp.env_of_list [ ("x", x0) ])) in
  Alcotest.(check (float 1e-6)) "avg" 3. (Nd.get out [| 0; 0; 0; 0 |])

let test_global_avg_pool () =
  let g = graph1 Op.Global_avg_pool ~ins:[ "x" ] ~shapes:[ [| 1; 2; 2; 2 |] ] in
  let p = Lower.run g in
  let x0 = Nd.init [| 1; 2; 2; 2 |] (fun i -> float_of_int i.(1) +. 1.) in
  let out = List.assoc "out" (Interp.run p (Interp.env_of_list [ ("x", x0) ])) in
  Alcotest.(check (float 1e-6)) "ch0" 1. (Nd.get out [| 0; 0 |]);
  Alcotest.(check (float 1e-6)) "ch1" 2. (Nd.get out [| 0; 1 |])

let test_softmax_rows_sum_to_one () =
  let out = run1 (graph1 Op.Softmax ~ins:[ "x" ] ~shapes:[ [| 3; 5 |] ]) in
  for i = 0 to 2 do
    let s = ref 0. in
    for j = 0 to 4 do
      s := !s +. Nd.get out [| i; j |]
    done;
    Alcotest.(check (float 1e-6)) "row sum" 1. !s
  done

let test_layernorm_moments () =
  let b = B.create () in
  let x = B.input b "x" [| 2; 8 |] in
  let gm = B.input b "g" [| 8 |] in
  let bt = B.input b "b" [| 8 |] in
  let out = B.add b ~name:"out" (Op.Layernorm { eps = 0. }) [ x; gm; bt ] in
  let g = B.finish b ~outputs:[ out ] in
  let p = Lower.run g in
  let rng = Rng.create 3 in
  let env =
    Interp.env_of_list
      [
        ("x", Nd.random rng [| 2; 8 |]);
        ("g", Nd.create [| 8 |] 1.);
        ("b", Nd.create [| 8 |] 0.);
      ]
  in
  let out = List.assoc "out" (Interp.run p env) in
  (* each row has ~0 mean and ~1 variance *)
  for i = 0 to 1 do
    let mean = ref 0. and var = ref 0. in
    for j = 0 to 7 do
      mean := !mean +. (Nd.get out [| i; j |] /. 8.)
    done;
    for j = 0 to 7 do
      let d = Nd.get out [| i; j |] -. !mean in
      var := !var +. (d *. d /. 8.)
    done;
    Alcotest.(check (float 1e-5)) "mean 0" 0. !mean;
    Alcotest.(check (float 1e-4)) "var 1" 1. !var
  done

let test_reduce_axis () =
  let g =
    graph1 (Op.Reduce { op = Te.Sum; axis = 0 }) ~ins:[ "x" ]
      ~shapes:[ [| 3; 2 |] ]
  in
  let p = Lower.run g in
  let x0 = Nd.init [| 3; 2 |] (fun i -> float_of_int i.(0)) in
  let out = List.assoc "out" (Interp.run p (Interp.env_of_list [ ("x", x0) ])) in
  Alcotest.(check (float 1e-6)) "sum over axis 0" 3. (Nd.get out [| 0 |])

let test_concat_three () =
  let b = B.create () in
  let x = B.input b "x" [| 1; 2 |] in
  let y = B.input b "y" [| 2; 2 |] in
  let z = B.input b "z" [| 3; 2 |] in
  let out = B.add b ~name:"out" (Op.Concat { axis = 0 }) [ x; y; z ] in
  let g = B.finish b ~outputs:[ out ] in
  let p = Lower.run g in
  let env =
    Interp.env_of_list
      [
        ("x", Nd.create [| 1; 2 |] 1.);
        ("y", Nd.create [| 2; 2 |] 2.);
        ("z", Nd.create [| 3; 2 |] 3.);
      ]
  in
  let out = List.assoc "out" (Interp.run p env) in
  Alcotest.(check (array int)) "shape" [| 6; 2 |] (Nd.shape out);
  Alcotest.(check (float 0.)) "x part" 1. (Nd.get out [| 0; 0 |]);
  Alcotest.(check (float 0.)) "y part" 2. (Nd.get out [| 2; 1 |]);
  Alcotest.(check (float 0.)) "z part" 3. (Nd.get out [| 5; 0 |])

let test_scale_channels () =
  let b = B.create () in
  let x = B.input b "x" [| 1; 2; 2; 2 |] in
  let s = B.input b "s" [| 1; 2 |] in
  let out = B.add b ~name:"out" Op.Scale_channels [ x; s ] in
  let g = B.finish b ~outputs:[ out ] in
  let p = Lower.run g in
  let env =
    Interp.env_of_list
      [
        ("x", Nd.create [| 1; 2; 2; 2 |] 3.);
        ("s", Nd.of_array [| 1; 2 |] [| 2.; 10. |]);
      ]
  in
  let out = List.assoc "out" (Interp.run p env) in
  Alcotest.(check (float 0.)) "ch0 scaled" 6. (Nd.get out [| 0; 0; 1; 1 |]);
  Alcotest.(check (float 0.)) "ch1 scaled" 30. (Nd.get out [| 0; 1; 0; 0 |])

let test_bias_channels () =
  let b = B.create () in
  let x = B.input b "x" [| 1; 2; 2; 2 |] in
  let s = B.input b "s" [| 2 |] in
  let out = B.add b ~name:"out" Op.Bias_channels [ x; s ] in
  let g = B.finish b ~outputs:[ out ] in
  let p = Lower.run g in
  let env =
    Interp.env_of_list
      [
        ("x", Nd.create [| 1; 2; 2; 2 |] 3.);
        ("s", Nd.of_array [| 2 |] [| 1.; -1. |]);
      ]
  in
  let out = List.assoc "out" (Interp.run p env) in
  Alcotest.(check (float 0.)) "ch0" 4. (Nd.get out [| 0; 0; 1; 1 |]);
  Alcotest.(check (float 0.)) "ch1" 2. (Nd.get out [| 0; 1; 0; 0 |])

let test_binary_broadcast () =
  let b = B.create () in
  let x = B.input b "x" [| 2; 2; 3 |] in
  let y = B.input b "y" [| 3 |] in
  let out = B.add b ~name:"out" (Op.Binary Expr.Add) [ x; y ] in
  let g = B.finish b ~outputs:[ out ] in
  let p = Lower.run g in
  let env =
    Interp.env_of_list
      [
        ("x", Nd.create [| 2; 2; 3 |] 1.);
        ("y", Nd.of_array [| 3 |] [| 10.; 20.; 30. |]);
      ]
  in
  let out = List.assoc "out" (Interp.run p env) in
  Alcotest.(check (float 0.)) "broadcast" 21. (Nd.get out [| 1; 0; 1 |])

let test_shape_inference_errors () =
  let check_bad op shapes =
    Alcotest.(check bool)
      (Op.to_string op ^ " rejected") true
      (try
         ignore (Op.infer_shape op shapes);
         false
       with Invalid_argument _ -> true)
  in
  check_bad Op.Matmul [ [| 2; 3 |]; [| 4; 5 |] ];
  check_bad Op.Gemv [ [| 2; 3 |]; [| 4 |] ];
  check_bad (Op.Reshape [| 7 |]) [ [| 2; 3 |] ];
  check_bad (Op.Transpose [| 0 |]) [ [| 2; 3 |] ];
  check_bad (Op.Concat { axis = 0 }) [ [| 2; 3 |]; [| 2; 4 |] ];
  check_bad Op.Bias_add [ [| 2; 3 |]; [| 2 |] ]

let test_graph_validate () =
  let b = B.create () in
  let x = B.input b "x" [| 2; 2 |] in
  let out = B.add b ~name:"o" (Op.Unary Expr.Relu) [ x ] in
  let g = B.finish b ~outputs:[ out ] in
  Alcotest.(check bool) "valid graph" true (Result.is_ok (Dgraph.validate g));
  let bad = { g with Dgraph.outputs = [ "missing" ] } in
  Alcotest.(check bool) "bad output caught" true
    (Result.is_error (Dgraph.validate bad))

let test_matmul_chain_against_composition () =
  (* (x @ A) @ B == x @ (A @ B) numerically *)
  let b = B.create () in
  let x = B.input b "x" [| 2; 3 |] in
  let wa = B.input b "a" [| 3; 4 |] in
  let wb = B.input b "bb" [| 4; 2 |] in
  let m1 = B.add b ~name:"m1" Op.Matmul [ x; wa ] in
  let m2 = B.add b ~name:"m2" Op.Matmul [ m1; wb ] in
  let g = B.finish b ~outputs:[ m2 ] in
  let p = Lower.run g in
  let env = input_env g in
  let out = List.assoc "m2" (Interp.run p env) in
  (* reference: direct triple loop *)
  let gx = Interp.lookup env "x" and ga = Interp.lookup env "a"
  and gb = Interp.lookup env "bb" in
  let reference =
    Nd.init [| 2; 2 |] (fun i ->
        let acc = ref 0. in
        for k = 0 to 3 do
          let m1v = ref 0. in
          for j = 0 to 2 do
            m1v := !m1v +. (Nd.get gx [| i.(0); j |] *. Nd.get ga [| j; k |])
          done;
          acc := !acc +. (!m1v *. Nd.get gb [| k; i.(1) |])
        done;
        !acc)
  in
  Alcotest.(check bool) "chain matches" true
    (Nd.allclose ~rtol:1e-5 reference out)

let suite =
  [
    Alcotest.test_case "conv2d identity" `Quick test_conv2d_identity_kernel;
    Alcotest.test_case "conv2d padding" `Quick test_conv2d_padding_sums;
    Alcotest.test_case "grouped conv" `Quick test_grouped_conv_independence;
    Alcotest.test_case "depthwise conv" `Quick test_depthwise_conv;
    Alcotest.test_case "max pool" `Quick test_max_pool;
    Alcotest.test_case "avg pool" `Quick test_avg_pool;
    Alcotest.test_case "global avg pool" `Quick test_global_avg_pool;
    Alcotest.test_case "softmax" `Quick test_softmax_rows_sum_to_one;
    Alcotest.test_case "layernorm moments" `Quick test_layernorm_moments;
    Alcotest.test_case "reduce axis" `Quick test_reduce_axis;
    Alcotest.test_case "concat three" `Quick test_concat_three;
    Alcotest.test_case "scale channels" `Quick test_scale_channels;
    Alcotest.test_case "bias channels" `Quick test_bias_channels;
    Alcotest.test_case "binary broadcast" `Quick test_binary_broadcast;
    Alcotest.test_case "shape inference errors" `Quick test_shape_inference_errors;
    Alcotest.test_case "graph validate" `Quick test_graph_validate;
    Alcotest.test_case "matmul chain" `Quick test_matmul_chain_against_composition;
  ]
