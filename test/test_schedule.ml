(* Tests for the schedule layer: resource estimation, tensor-core
   eligibility, the Ansor-like search, and the partitioner. *)

let f32 = Dtype.F32
let dev = Device.a100
let input name shape = (name, { Program.shape; dtype = f32 })

let gemm_program ?(m = 256) ?(n = 256) ?(k = 256) () =
  let a = input "a" [| m; k |] and b = input "b" [| k; n |] in
  let g = Builder.matmul ~tag:"matmul" ~name:"g" ~m ~n ~k "a" "b" in
  (Program.make ~inputs:[ a; b ] ~tes:[ g ] ~outputs:[ "g" ], g)

let test_grid_blocks () =
  let _, te = gemm_program () in
  let s = { (Sched.default_elementwise te) with Sched.tile = [| 64; 64 |] } in
  Alcotest.(check int) "16 blocks" 16 (Sched.grid_blocks te s)

let test_grid_blocks_ceil () =
  let _, te = gemm_program ~m:100 ~n:60 () in
  let s = { (Sched.default_elementwise te) with Sched.tile = [| 64; 64 |] } in
  (* ceil(100/64) * ceil(60/64) = 2 * 1 *)
  Alcotest.(check int) "ceil division" 2 (Sched.grid_blocks te s)

let test_input_tile_elems_gemm () =
  let _, te = gemm_program () in
  let s =
    { (Sched.default_elementwise te) with
      Sched.tile = [| 64; 32 |]; rtile = [| 16 |] }
  in
  (* A[i, rk]: vars {i, rk} -> 64*16; B[rk, j]: {rk, j} -> 16*32 *)
  (match Te.accesses te with
  | [ (_, idx_a); (_, idx_b) ] ->
      Alcotest.(check int) "A tile" 1024 (Sched.input_tile_elems s idx_a);
      Alcotest.(check int) "B tile" 512 (Sched.input_tile_elems s idx_b)
  | _ -> Alcotest.fail "expected two accesses")

let test_input_tile_elems_capped () =
  let _, te = gemm_program () in
  let s =
    { (Sched.default_elementwise te) with
      Sched.tile = [| 128; 128 |]; rtile = [| 64 |] }
  in
  (match Te.accesses te with
  | [ (_, idx_a); _ ] ->
      Alcotest.(check int) "capped at numel" 100
        (Sched.input_tile_elems ~numel:100 s idx_a)
  | _ -> Alcotest.fail "expected two accesses")

let test_smem_select_takes_max_branch () =
  (* a horizontally merged body must not double-count branch inputs *)
  let p =
    let a1 = input "a1" [| 4; 8 |] and b1 = input "b1" [| 8; 16 |] in
    let a2 = input "a2" [| 4; 8 |] and b2 = input "b2" [| 8; 16 |] in
    let c1 = Builder.matmul ~name:"c1" ~m:4 ~n:16 ~k:8 "a1" "b1" in
    let c2 = Builder.matmul ~name:"c2" ~m:4 ~n:16 ~k:8 "a2" "b2" in
    let u1 = Builder.unary ~name:"u1" ~shape:[| 4; 16 |] Expr.Relu "c1" in
    let u2 = Builder.unary ~name:"u2" ~shape:[| 4; 16 |] Expr.Relu "c2" in
    Program.make ~inputs:[ a1; b1; a2; b2 ] ~tes:[ c1; c2; u1; u2 ]
      ~outputs:[ "u1"; "u2" ]
  in
  let merged, _ = Horizontal.apply p in
  let te_plain = Program.find_te_exn p "c1" in
  let te_merged = Program.find_te_exn merged "c1_hz" in
  let s te = { (Sched.default_elementwise te) with
               Sched.tile = [| 4; 16 |]; rtile = [| 8 |];
               cache_read_smem = true } in
  Alcotest.(check int) "merged smem = single smem"
    (Sched.smem_bytes p te_plain (s te_plain))
    (Sched.smem_bytes merged te_merged (s te_merged))

let test_tensor_core_eligibility () =
  let _, gemm = gemm_program () in
  Alcotest.(check bool) "gemm eligible" true (Sched.tensor_core_eligible gemm);
  let gemv = Builder.gemv ~name:"y" ~m:256 ~k:256 "w" "x" in
  Alcotest.(check bool) "gemv not eligible" false
    (Sched.tensor_core_eligible gemv);
  let ew = Builder.unary ~name:"e" ~shape:[| 8; 8 |] Expr.Relu "x" in
  Alcotest.(check bool) "elementwise not eligible" false
    (Sched.tensor_core_eligible ew);
  let reduce = Builder.reduce_last ~name:"r" ~m:64 ~k:64 Te.Max "x" in
  Alcotest.(check bool) "max-reduce not eligible" false
    (Sched.tensor_core_eligible reduce)

let test_ansor_feasible_schedules () =
  let p, te = gemm_program () in
  let s = Ansor.schedule_te dev p te in
  let u = Sched.usage p te s in
  Alcotest.(check bool) "fits an SM" true
    (u.Occupancy.smem_per_block <= dev.Device.max_smem_per_block
    && Occupancy.blocks_per_sm dev u >= 1);
  Alcotest.(check bool) "uses tensor core" true s.Sched.use_tensor_core;
  Alcotest.(check bool) "positive efficiency" true (s.Sched.compute_eff > 0.)

let test_ansor_prefers_occupancy () =
  (* on a small GEMM, the search must not pick the degenerate 1-block tile *)
  let p, te = gemm_program ~m:256 ~n:256 ~k:64 () in
  let s = Ansor.schedule_te dev p te in
  Alcotest.(check bool) "more than one block" true (Sched.grid_blocks te s > 1)

let test_tile_candidates_never_empty () =
  (* regression: dims smaller than every tile option used to filter to [],
     which emptied the candidate cross-product and silently fell back to
     the grid-1 elementwise schedule — fatal for single-token decode
     shapes like (1, hidden) *)
  List.iter
    (fun d ->
      List.iter
        (fun space ->
          let cs = Ansor.tile_candidates ~space d in
          Alcotest.(check bool)
            (Fmt.str "non-empty for d=%d" d)
            true (cs <> []);
          List.iter
            (fun t ->
              Alcotest.(check bool)
                (Fmt.str "tile %d legal for d=%d" t d)
                true
                (t >= 1 && t <= max 1 d))
            cs)
        [ Ansor.Full; Ansor.Reduced ])
    [ 1; 2; 7; 8; 9; 16; 100; 512 ]

let test_ansor_single_row_gemm_gets_grid () =
  (* the decode shape: (1, hidden) x (hidden, hidden).  With one output
     row the grid must come from an rsplit of the reduction, not collapse
     to a single block *)
  let p, te = gemm_program ~m:1 ~n:512 ~k:512 () in
  let s = Ansor.schedule_te dev p te in
  Alcotest.(check bool) "rsplit-driven grid" true (Sched.grid_blocks te s > 1);
  Alcotest.(check bool) "rsplit chosen" true (s.Sched.rsplit > 1)

let test_schedule_program_covers_all () =
  let g = Bert.create ~cfg:Bert.tiny () in
  let p = Lower.run g in
  let tbl = Ansor.schedule_program dev p in
  List.iter
    (fun (te : Te.t) ->
      Alcotest.(check bool) ("schedule for " ^ te.Te.name) true
        (Hashtbl.mem tbl te.Te.name))
    p.Program.tes

let test_schedule_memoization_consistent () =
  (* identical layers get identical schedules (modulo te_name) *)
  let g = Bert.create ~cfg:{ Bert.tiny with Bert.layers = 2 } () in
  let p = Lower.run g in
  let tbl = Ansor.schedule_program dev p in
  let s0 = Hashtbl.find tbl "l0.ffn1" and s1 = Hashtbl.find tbl "l1.ffn1" in
  Alcotest.(check bool) "same tiles" true (s0.Sched.tile = s1.Sched.tile)

(* ------------------ partition ------------------ *)

let analyze_and_partition p =
  let an = Analysis.run p in
  let scheds = Ansor.schedule_program dev p in
  (Partition.run dev an scheds, an)

let test_partition_covers_program () =
  let p = Lower.run (Bert.create ~cfg:Bert.tiny ()) in
  let part, _ = analyze_and_partition p in
  Alcotest.(check bool) "valid cover" true
    (Result.is_ok (Partition.validate part p))

let test_partition_small_program_single () =
  let p, _ = gemm_program ~m:64 ~n:64 ~k:64 () in
  let part, _ = analyze_and_partition p in
  Alcotest.(check int) "one subprogram" 1 (Partition.num_subprograms part)

let test_partition_fig2_style_split () =
  (* an oversized TE (grid beyond cooperative capacity) must split out,
     like TE4 in Fig. 2 *)
  let a = input "a" [| 64; 64 |] and b = input "b" [| 64; 64 |] in
  let w = input "w" [| 64; 65536 |] in
  let g1 = Builder.matmul ~tag:"matmul" ~name:"g1" ~m:64 ~n:64 ~k:64 "a" "b" in
  let big =
    Builder.matmul ~tag:"matmul" ~name:"big" ~m:64 ~n:65536 ~k:64 "g1" "w"
  in
  let p = Program.make ~inputs:[ a; b; w ] ~tes:[ g1; big ] ~outputs:[ "big" ] in
  let part, _ = analyze_and_partition p in
  Alcotest.(check bool) "split happened" true
    (Partition.num_subprograms part >= 2)

let test_partition_coop_constraint_holds () =
  (* every cooperative subprogram satisfies the §5.4 constraint by
     construction: emitting it and validating against the device passes *)
  let p = Lower.run (Bert.create ~cfg:Bert.tiny ()) in
  let an = Analysis.run p in
  let scheds = Ansor.schedule_program dev p in
  let part = Partition.run dev an scheds in
  let groups = List.map Emit.group_of_subprogram part.Partition.subprograms in
  let prog = Emit.emit dev p an scheds Emit.default_options groups in
  Alcotest.(check bool) "cooperative launches fit" true
    (Result.is_ok (Sim.validate_prog dev prog))

let test_partition_noncoop_absorbs_epilogues () =
  (* a huge elementwise-only consumer after an oversized reduce stays in
     the same (non-cooperative) subprogram *)
  let a = input "a" [| 512; 4096 |] and b = input "b" [| 4096; 4096 |] in
  let g = Builder.matmul ~tag:"matmul" ~name:"g" ~m:512 ~n:4096 ~k:4096 "a" "b" in
  let r = Builder.unary ~name:"r" ~shape:[| 512; 4096 |] Expr.Relu "g" in
  let p = Program.make ~inputs:[ a; b ] ~tes:[ g; r ] ~outputs:[ "r" ] in
  let part, _ = analyze_and_partition p in
  match part.Partition.subprograms with
  | [ sp ] ->
      Alcotest.(check (list string)) "both TEs together" [ "g"; "r" ]
        (Partition.te_names sp)
  | l -> Alcotest.failf "expected 1 subprogram, got %d" (List.length l)

let suite =
  [
    Alcotest.test_case "grid blocks" `Quick test_grid_blocks;
    Alcotest.test_case "grid blocks ceil" `Quick test_grid_blocks_ceil;
    Alcotest.test_case "input tile elems" `Quick test_input_tile_elems_gemm;
    Alcotest.test_case "input tile capped" `Quick test_input_tile_elems_capped;
    Alcotest.test_case "smem select max branch" `Quick
      test_smem_select_takes_max_branch;
    Alcotest.test_case "tensor core eligibility" `Quick
      test_tensor_core_eligibility;
    Alcotest.test_case "ansor feasible" `Quick test_ansor_feasible_schedules;
    Alcotest.test_case "ansor occupancy" `Quick test_ansor_prefers_occupancy;
    Alcotest.test_case "tile candidates never empty" `Quick
      test_tile_candidates_never_empty;
    Alcotest.test_case "ansor single-row gemm grid" `Quick
      test_ansor_single_row_gemm_gets_grid;
    Alcotest.test_case "schedule covers all" `Quick test_schedule_program_covers_all;
    Alcotest.test_case "schedule memoization" `Quick
      test_schedule_memoization_consistent;
    Alcotest.test_case "partition covers" `Quick test_partition_covers_program;
    Alcotest.test_case "partition single" `Quick test_partition_small_program_single;
    Alcotest.test_case "partition fig2 split" `Quick test_partition_fig2_style_split;
    Alcotest.test_case "partition coop constraint" `Quick
      test_partition_coop_constraint_holds;
    Alcotest.test_case "partition noncoop epilogue" `Quick
      test_partition_noncoop_absorbs_epilogues;
  ]
