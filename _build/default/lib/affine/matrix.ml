(** Small dense integer matrices — the [M] of the paper's quasi-affine maps
    [M·v + c] (§5.2) and of the composed maps of Eq. 2 / Fig. 4. *)

type t = { rows : int; cols : int; data : int array }

let create rows cols = { rows; cols; data = Array.make (rows * cols) 0 }

let of_rows (rows : int list list) =
  match rows with
  | [] -> { rows = 0; cols = 0; data = [||] }
  | r0 :: _ ->
      let nr = List.length rows and nc = List.length r0 in
      let m = create nr nc in
      List.iteri
        (fun i row ->
          if List.length row <> nc then invalid_arg "Matrix.of_rows: ragged";
          List.iteri (fun j v -> m.data.((i * nc) + j) <- v) row)
        rows;
      m

let rows m = m.rows
let cols m = m.cols
let get m i j = m.data.((i * m.cols) + j)
let set m i j v = m.data.((i * m.cols) + j) <- v

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    set m i i 1
  done;
  m

let equal a b = a.rows = b.rows && a.cols = b.cols && a.data = b.data

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dim mismatch";
  let m = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for j = 0 to b.cols - 1 do
      let acc = ref 0 in
      for k = 0 to a.cols - 1 do
        acc := !acc + (get a i k * get b k j)
      done;
      set m i j !acc
    done
  done;
  m

let mul_vec m v =
  if Array.length v <> m.cols then invalid_arg "Matrix.mul_vec: dim mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0 in
      for j = 0 to m.cols - 1 do
        acc := !acc + (get m i j * v.(j))
      done;
      !acc)

let add_vec a b =
  if Array.length a <> Array.length b then invalid_arg "Matrix.add_vec";
  Array.init (Array.length a) (fun i -> a.(i) + b.(i))

let pp ppf m =
  Fmt.pf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Fmt.pf ppf "[%a]@,"
      Fmt.(array ~sep:(any " ") int)
      (Array.init m.cols (fun j -> get m i j))
  done;
  Fmt.pf ppf "@]"

let to_string m = Fmt.str "%a" pp m
