lib/graph/lower.ml: Array Builder Dgraph Expr Float Fmt Index List Op Program Shape Te
