(* Compile-throughput benchmark: measures what the fast-compilation layer
   buys — the domain-parallel Ansor search and the persistent schedule
   cache (Scache) — and checks, on every model, that neither changes the
   compiled artifact.

   Three compiles per model:
     cold/serial    fresh cache, search_domains = 1
     cold/parallel  fresh cache, default domain count
     warm           the cache the serial run populated

   Each compile runs under [Obs.record], so besides end-to-end wall time we
   report the schedule-phase time ("ansor" spans) and the number of
   candidate searches actually performed ("ansor-search" spans).  The warm
   run must perform zero searches.  Results land in BENCH_compile.json. *)

let spans_named (t : Obs.trace) (name : string) : int =
  let n = ref 0 in
  Obs.iter (fun s ~depth:_ -> if s.Obs.sname = name then incr n) t;
  !n

(* the pipeline phases broken out per run, in pipeline order; each is an
   Obs span the compiler already emits *)
let phase_names =
  [
    "horizontal"; "vertical"; "analysis"; "ansor"; "partition"; "emit";
    "verify-ir"; "verify-dataflow"; "simulate";
  ]

type run = {
  label : string;
  compile_s : float;     (* end-to-end wall seconds *)
  ansor_us : float;      (* schedule-phase ("ansor" spans) microseconds *)
  searches : int;        (* "ansor-search" spans: candidate searches done *)
  phases : (string * float) list;  (* per-phase microseconds, {!phase_names} *)
  sim : Sim.result;
}

let measure ~model ~label ?sched_cache ~domains (p : Program.t) : run =
  let ansor = { Ansor.default_config with Ansor.search_domains = domains } in
  let cfg = Souffle.config ~ansor ?sched_cache () in
  let t0 = Unix.gettimeofday () in
  let r, trace =
    Obs.record (fun () ->
        Tables.compile_recorded ~cfg ~name:(model ^ "/" ^ label) p)
  in
  (* artifact-quality check: the compiled program must be dataflow-clean
     (every re-read of an on-device tensor classified as L2/shared, bytes
     reconciling with tensor footprints) — recorded in the runlog so
     --strict-bench fails over a violation *)
  (match
     Dataflow.check_prog Tables.dev
       (Souffle.dataflow_env r.Souffle.transformed)
       r.Souffle.prog
   with
  | Ok () -> ()
  | Error ds ->
      Fmt.epr "  !! %s/%s: compiled artifact is not dataflow-clean:@." model
        label;
      List.iter (fun d -> Fmt.epr "     %a@." Diag.pp d) ds;
      Runlog.record Tables.runlog
        ~model:(model ^ "/" ^ label ^ "@dataflow")
        ~degraded_steps:0 ~errors:(List.length ds));
  {
    label;
    compile_s = Unix.gettimeofday () -. t0;
    ansor_us = Obs.total_us trace "ansor";
    searches = spans_named trace "ansor-search";
    phases = List.map (fun n -> (n, Obs.total_us trace n)) phase_names;
    sim = r.Souffle.sim;
  }

let bench_model ~graph_of (e : Zoo.entry) : string * run list =
  let p = Lower.run (graph_of e) in
  let cache = Scache.create () in
  let serial =
    measure ~model:e.Zoo.name ~label:"cold/serial" ~sched_cache:cache
      ~domains:1 p
  in
  let parallel =
    measure ~model:e.Zoo.name ~label:"cold/parallel"
      ~sched_cache:(Scache.create ())
      ~domains:(Domain.recommended_domain_count ())
      p
  in
  let warm =
    measure ~model:e.Zoo.name ~label:"warm" ~sched_cache:cache ~domains:1 p
  in
  if parallel.sim <> serial.sim then
    Fmt.epr "  !! %s: parallel search changed the compiled artifact@."
      e.Zoo.name;
  if warm.sim <> serial.sim then
    Fmt.epr "  !! %s: warm-cache compile changed the compiled artifact@."
      e.Zoo.name;
  if warm.searches <> 0 then
    Fmt.epr "  !! %s: warm compile still ran %d candidate search(es)@."
      e.Zoo.name warm.searches;
  (e.Zoo.name, [ serial; parallel; warm ])

let json_of_run (r : run) : Jsonlite.t =
  Jsonlite.Obj
    [
      ("label", Jsonlite.Str r.label);
      ("compile_s", Jsonlite.Num r.compile_s);
      ("ansor_us", Jsonlite.Num r.ansor_us);
      ("searches", Jsonlite.Num (float_of_int r.searches));
      ( "phases_us",
        Jsonlite.Obj
          (List.map (fun (n, us) -> (n, Jsonlite.Num us)) r.phases) );
    ]

let ratio num den = if den > 0. then num /. den else 0.

let run_with ~graph_of ~out () =
  Tables.section "Compile throughput — parallel search + schedule cache";
  let results = List.map (bench_model ~graph_of) Zoo.all in
  Fmt.pr "  %-14s %-14s %12s %12s %10s@." "model" "run" "compile(s)"
    "ansor(ms)" "searches";
  List.iter
    (fun (model, runs) ->
      List.iter
        (fun r ->
          Fmt.pr "  %-14s %-14s %12.3f %12.2f %10d@." model r.label
            r.compile_s (r.ansor_us /. 1e3) r.searches)
        runs)
    results;
  let pick label runs = List.find (fun r -> r.label = label) runs in
  let sum f = List.fold_left (fun a (_, runs) -> a +. f runs) 0. results in
  let serial_s = sum (fun rs -> (pick "cold/serial" rs).compile_s) in
  let warm_s = sum (fun rs -> (pick "warm" rs).compile_s) in
  let parallel_s = sum (fun rs -> (pick "cold/parallel" rs).compile_s) in
  let serial_ansor = sum (fun rs -> (pick "cold/serial" rs).ansor_us) in
  let warm_ansor = sum (fun rs -> (pick "warm" rs).ansor_us) in
  Fmt.pr "  ---@.";
  Fmt.pr "  end-to-end:     warm %.2fx vs cold/serial, parallel %.2fx@."
    (ratio serial_s warm_s) (ratio serial_s parallel_s);
  Fmt.pr "  schedule phase: warm %.2fx vs cold/serial@."
    (ratio serial_ansor warm_ansor);
  let json =
    Jsonlite.Obj
      [
        ("bench", Jsonlite.Str "compile-perf");
        ("device", Jsonlite.Str Tables.dev.Device.name);
        ( "models",
          Jsonlite.Obj
            (List.map
               (fun (model, runs) ->
                 (model, Jsonlite.Arr (List.map json_of_run runs)))
               results) );
        ( "summary",
          Jsonlite.Obj
            [
              ("e2e_warm_speedup", Jsonlite.Num (ratio serial_s warm_s));
              ( "e2e_parallel_speedup",
                Jsonlite.Num (ratio serial_s parallel_s) );
              ( "schedule_warm_speedup",
                Jsonlite.Num (ratio serial_ansor warm_ansor) );
            ] );
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Jsonlite.to_string json));
  Fmt.pr "  wrote %s@." out

(* full-size models: the measurement run *)
let run () = run_with ~graph_of:(fun e -> e.Zoo.full ()) ~out:"BENCH_compile.json" ()

(* tiny models: the @bench-smoke alias — seconds, not minutes *)
let smoke () =
  run_with ~graph_of:(fun e -> e.Zoo.tiny ()) ~out:"BENCH_compile_smoke.json" ()
