lib/kernelgen/tir.ml: Array Buffer Dtype Expr Fmt Index List Program Sched String Te
