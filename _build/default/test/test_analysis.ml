(* Tests for the §5 global analysis: dependence classification, intensity,
   reuse detection — including the paper's own Fig. 2 example program. *)

open Expr

let f32 = Dtype.F32
let input name shape = (name, { Program.shape; dtype = f32 })

(* The 5-TE program of Fig. 2: GEMM, sigmoid, GEMM, add, GEMM. *)
let fig2_program () =
  let i0 = input "I0" [| 64; 64 |] in
  let w0 = input "W0" [| 64; 64 |] and w2 = input "W2" [| 64; 64 |] in
  let w4 = input "W4" [| 64; 256 |] in
  let te0 = Builder.matmul ~tag:"matmul" ~name:"O0" ~m:64 ~n:64 ~k:64 "I0" "W0" in
  let te1 = Builder.unary ~name:"O1" ~shape:[| 64; 64 |] Sigmoid "O0" in
  let te2 = Builder.matmul ~tag:"matmul" ~name:"O2" ~m:64 ~n:64 ~k:64 "O1" "W2" in
  let te3 = Builder.binary ~name:"O3" ~shape:[| 64; 64 |] Add "O0" "O2" in
  let te4 = Builder.matmul ~tag:"matmul" ~name:"O4" ~m:64 ~n:256 ~k:64 "O3" "W4" in
  Program.make
    ~inputs:[ i0; w0; w2; w4 ]
    ~tes:[ te0; te1; te2; te3; te4 ]
    ~outputs:[ "O4" ]

let test_fig2_dep_classes () =
  let p = fig2_program () in
  let an = Analysis.run p in
  (* TE0, TE2, TE4: one-relies-on-many; TE1, TE3: one-relies-on-one *)
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " many") false (Analysis.is_one_to_one an n))
    [ "O0"; "O2"; "O4" ];
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " one") true (Analysis.is_one_to_one an n))
    [ "O1"; "O3" ]

let test_fig2_intensity () =
  let p = fig2_program () in
  let an = Analysis.run p in
  (* TE0, TE2, TE4 compute-intensive; TE1, TE3 memory-intensive (Fig. 2) *)
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " compute") true
        (Analysis.is_compute_intensive an n))
    [ "O0"; "O2"; "O4" ];
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " memory") false
        (Analysis.is_compute_intensive an n))
    [ "O1"; "O3" ]

let test_fig2_temporal_reuse () =
  let p = fig2_program () in
  let an = Analysis.run p in
  (* Fig. 2 step 2: O0 is accessed by TE1 and TE3 -> temporal data reuse
     (TE3 depends on TE1 through TE2) *)
  Alcotest.(check bool) "O0 temporal" true
    (Reuse.is_temporal an.Analysis.reuse "O0");
  Alcotest.(check bool) "O0 not spatial" false
    (Reuse.is_spatial an.Analysis.reuse "O0")

let test_spatial_reuse_qkv () =
  let x = input "x" [| 8; 8 |] in
  let wq = input "wq" [| 8; 8 |] and wk = input "wk" [| 8; 8 |] in
  let q = Builder.matmul ~name:"q" ~m:8 ~n:8 ~k:8 "x" "wq" in
  let k = Builder.matmul ~name:"k" ~m:8 ~n:8 ~k:8 "x" "wk" in
  let p = Program.make ~inputs:[ x; wq; wk ] ~tes:[ q; k ] ~outputs:[ "q"; "k" ] in
  let r = Reuse.find p in
  Alcotest.(check bool) "x spatial" true (Reuse.is_spatial r "x");
  Alcotest.(check (list string)) "consumers" [ "k"; "q" ]
    (List.sort compare
       (List.concat_map (fun e -> e.Reuse.consumers)
          (List.filter (fun e -> e.Reuse.tensor = "x") r.Reuse.spatial)))

let test_no_reuse_single_consumer () =
  let x = input "x" [| 4 |] in
  let a = Builder.unary ~name:"a" ~shape:[| 4 |] Relu "x" in
  let p = Program.make ~inputs:[ x ] ~tes:[ a ] ~outputs:[ "a" ] in
  let r = Reuse.find p in
  Alcotest.(check int) "no entries" 0
    (List.length r.Reuse.spatial + List.length r.Reuse.temporal)

let test_intensity_ratio_values () =
  let p = fig2_program () in
  let te0 = Program.find_te_exn p "O0" in
  (* GEMM 64^3: 2*64^3 instrs / (3*64^2) elems = 42.67 *)
  Alcotest.(check (float 0.1)) "gemm ratio" 42.67 (Intensity.ratio p te0);
  let te1 = Program.find_te_exn p "O1" in
  Alcotest.(check bool) "sigmoid ratio below threshold" true
    (Intensity.ratio p te1 < Intensity.threshold)

let test_elementwise_never_compute_intensive () =
  (* even arithmetic-heavy elementwise stays memory-bound *)
  let x = input "x" [| 4 |] in
  let body =
    List.fold_left
      (fun acc _ -> Binop (Add, Unop (Exp, acc), Const 1.))
      (Read ("x", [ Index.Ov 0 ]))
      (List.init 20 Fun.id)
  in
  let te = Te.compute ~name:"heavy" ~shape:[| 4 |] body in
  let p = Program.make ~inputs:[ x ] ~tes:[ te ] ~outputs:[ "heavy" ] in
  Alcotest.(check bool) "memory" true
    (Intensity.classify p te = Intensity.Memory_intensive)

let test_affine_maps_of_one_to_one () =
  (* Dep.affine_maps extracts M·v + c for a transpose *)
  let te =
    Builder.permute ~name:"t" ~in_shape:[| 4; 6 |] ~perm:[| 1; 0 |] "x"
  in
  match Dep.affine_maps te with
  | Some [ ("x", m) ] ->
      (* out (6,4); access x[i1, i0]: matrix [[0 1][1 0]] *)
      Alcotest.(check (array int)) "apply (2,3) -> (3,2)" [| 3; 2 |]
        (Amap.apply m [| 2; 3 |])
  | _ -> Alcotest.fail "expected one map"

let test_affine_maps_none_for_reduction () =
  let te = Builder.matmul ~name:"c" ~m:4 ~n:4 ~k:4 "a" "b" in
  Alcotest.(check bool) "none" true (Dep.affine_maps te = None)

let test_relation_string () =
  let te = Builder.matmul ~name:"O0" ~m:4 ~n:4 ~k:8 "I0" "W0" in
  let s = Dep.relation_to_string te in
  Alcotest.(check bool) "mentions reduction bound" true
    (Astring_contains.contains s "0 <= r0 < 8");
  Alcotest.(check bool) "mentions output" true
    (Astring_contains.contains s "O0[i0,i1]")

let test_amap_compose_eq2 () =
  (* Fig. 4: permute . strided_slice . identity composes to [[0 1][2 0]] *)
  let relu = Amap.identity 2 in
  let slice =
    Amap.make (Matrix.of_rows [ [ 2; 0 ]; [ 0; 1 ] ]) [| 0; 0 |]
  in
  let permute =
    Amap.make (Matrix.of_rows [ [ 0; 1 ]; [ 1; 0 ] ]) [| 0; 0 |]
  in
  (* D[i,j] = C[j,i]; C[i,j] = B[2i, j]; B = relu(A) elementwise.
     Composed access of A from D's iteration space: A[2j, i].
     (The paper's Fig. 4 prints the factors in the reverse order and states
     A[j, 2i]; evaluating the chain shows D[3,1] = C[1,3] = B[2,3] =
     relu(A[2,3]), i.e. A[2j, i] — a typo in the figure.) *)
  let composed = Amap.compose relu (Amap.compose slice permute) in
  Alcotest.(check (array int)) "D(1,2) reads A(4, 1)" [| 4; 1 |]
    (Amap.apply composed [| 1; 2 |]);
  Alcotest.(check (array int)) "D(3,1) reads A(2, 3)" [| 2; 3 |]
    (Amap.apply composed [| 3; 1 |])

let test_amap_compose_offsets () =
  (* offsets combine per Eq. 2: f2(f1(v)) = M2(M1 v + c1) + c2 *)
  let f1 = Amap.make (Matrix.of_rows [ [ 2 ] ]) [| 3 |] in
  let f2 = Amap.make (Matrix.of_rows [ [ 5 ] ]) [| 7 |] in
  let f21 = Amap.compose f2 f1 in
  (* f2(f1(x)) = 5(2x + 3) + 7 = 10x + 22 *)
  Alcotest.(check (array int)) "at 1" [| 32 |] (Amap.apply f21 [| 1 |]);
  Alcotest.(check (array int)) "at 4" [| 62 |] (Amap.apply f21 [| 4 |])

let qcheck_amap_compose_pointwise =
  QCheck.Test.make ~name:"amap composition = pointwise composition" ~count:200
    QCheck.(
      pair
        (pair (array_of_size (QCheck.Gen.return 4) (int_range (-3) 3))
           (array_of_size (QCheck.Gen.return 2) (int_range (-5) 5)))
        (pair (array_of_size (QCheck.Gen.return 4) (int_range (-3) 3))
           (array_of_size (QCheck.Gen.return 2) (int_range (-5) 5))))
    (fun ((m1, c1), (m2, c2)) ->
      let mk m c =
        Amap.make
          (Matrix.of_rows
             [ [ m.(0); m.(1) ]; [ m.(2); m.(3) ] ])
          c
      in
      let f1 = mk m1 c1 and f2 = mk m2 c2 in
      let composed = Amap.compose f2 f1 in
      let v = [| 2; -1 |] in
      Amap.apply composed v = Amap.apply f2 (Amap.apply f1 v))

let suite =
  [
    Alcotest.test_case "fig2 dep classes" `Quick test_fig2_dep_classes;
    Alcotest.test_case "fig2 intensity" `Quick test_fig2_intensity;
    Alcotest.test_case "fig2 temporal reuse" `Quick test_fig2_temporal_reuse;
    Alcotest.test_case "spatial reuse qkv" `Quick test_spatial_reuse_qkv;
    Alcotest.test_case "no reuse single consumer" `Quick test_no_reuse_single_consumer;
    Alcotest.test_case "intensity ratio values" `Quick test_intensity_ratio_values;
    Alcotest.test_case "elementwise stays memory" `Quick
      test_elementwise_never_compute_intensive;
    Alcotest.test_case "affine maps one-to-one" `Quick test_affine_maps_of_one_to_one;
    Alcotest.test_case "affine maps none for reduction" `Quick
      test_affine_maps_none_for_reduction;
    Alcotest.test_case "relation string" `Quick test_relation_string;
    Alcotest.test_case "amap compose fig4" `Quick test_amap_compose_eq2;
    Alcotest.test_case "amap compose offsets" `Quick test_amap_compose_offsets;
    QCheck_alcotest.to_alcotest qcheck_amap_compose_pointwise;
  ]
