(** Vertical TE transformation (§6.2, Fig. 4).

    Collapses chains of one-relies-on-one TEs into single semantically
    equivalent TEs by composing their index mapping functions (Eq. 2),
    and folds pure data-movement TEs (reshape, transpose, slice) into their
    consumers — including reduction consumers, which is how Souffle
    "eventually eliminates all element-wise memory operators" (§2.3). *)

val inline_read : Te.t -> Expr.t -> Expr.t
(** Substitute every read of the producer's output by its body with output
    variables replaced by the access indices.  The producer must be a
    [Compute] TE. *)

val fuse : producer:Te.t -> consumer:Te.t -> Te.t
(** One inlining step, with quasi-affine simplification of the composed
    indices against the consumer's iteration space. *)

type stats = { chains_fused : int; movement_folded : int }

val apply : ?fold_into_reduce:bool -> Program.t -> Program.t * stats
(** Iterate inlining to a fixpoint.  [fold_into_reduce] (default true)
    additionally folds data-movement producers into reduction consumers;
    baselines that cannot fuse across reductions disable it. *)

val apply_result :
  ?fold_into_reduce:bool -> Program.t -> (Program.t * stats, Diag.t) result
(** {!apply} with escaped exceptions (and injected faults) converted to a
    typed diagnostic instead of aborting the compilation. *)
