(** Quasi-affine index expressions.

    A tensor-expression access like [I0[i*2 + rk, (j / 4) mod 8]] is described
    by one {!t} per tensor dimension.  Variables are positional: [Ov k] is the
    k-th output iteration variable of the enclosing TE, [Rv k] the k-th
    reduction variable.  Multiplication is restricted to constant factors and
    division/modulo to constant divisors, which keeps every expression inside
    the quasi-affine class of §5.2 of the paper and makes composition
    (substitution) closed. *)

type t =
  | Ov of int           (** output iteration variable *)
  | Rv of int           (** reduction variable *)
  | Const of int
  | Add of t * t
  | Mul of t * int      (** constant scaling *)
  | Div of t * int      (** floor division by a positive constant *)
  | Mod of t * int      (** remainder by a positive constant *)

let rec pp ppf = function
  | Ov k -> Fmt.pf ppf "i%d" k
  | Rv k -> Fmt.pf ppf "r%d" k
  | Const c -> Fmt.int ppf c
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp a pp b
  | Mul (a, k) -> Fmt.pf ppf "(%a * %d)" pp a k
  | Div (a, k) -> Fmt.pf ppf "(%a / %d)" pp a k
  | Mod (a, k) -> Fmt.pf ppf "(%a %% %d)" pp a k

let to_string t = Fmt.str "%a" pp t

let rec eval ~ov ~rv = function
  | Ov k -> ov.(k)
  | Rv k -> rv.(k)
  | Const c -> c
  | Add (a, b) -> eval ~ov ~rv a + eval ~ov ~rv b
  | Mul (a, k) -> eval ~ov ~rv a * k
  | Div (a, k) ->
      let v = eval ~ov ~rv a in
      if v >= 0 then v / k else -(((-v) + k - 1) / k)
  | Mod (a, k) ->
      let v = eval ~ov ~rv a in
      let m = v mod k in
      if m < 0 then m + k else m

(** Substitute output variables: [Ov k] becomes [f k].  Reduction variables
    are untouched (a consumer never captures its producer's reduction). *)
let rec subst_out f = function
  | Ov k -> f k
  | Rv _ as e -> e
  | Const _ as e -> e
  | Add (a, b) -> Add (subst_out f a, subst_out f b)
  | Mul (a, k) -> Mul (subst_out f a, k)
  | Div (a, k) -> Div (subst_out f a, k)
  | Mod (a, k) -> Mod (subst_out f a, k)

(** Shift reduction-variable indices by [delta] (used when merging the
    reduction spaces of two TEs). *)
let rec shift_rv delta = function
  | Rv k -> Rv (k + delta)
  | Ov _ | Const _ as e -> e
  | Add (a, b) -> Add (shift_rv delta a, shift_rv delta b)
  | Mul (a, k) -> Mul (shift_rv delta a, k)
  | Div (a, k) -> Div (shift_rv delta a, k)
  | Mod (a, k) -> Mod (shift_rv delta a, k)

let rec fold_vars f acc = function
  | Ov k -> f acc (`Out k)
  | Rv k -> f acc (`Red k)
  | Const _ -> acc
  | Add (a, b) -> fold_vars f (fold_vars f acc a) b
  | Mul (a, _) | Div (a, _) | Mod (a, _) -> fold_vars f acc a

let uses_reduction t =
  fold_vars (fun acc v -> acc || match v with `Red _ -> true | `Out _ -> false)
    false t

let max_out_var t =
  fold_vars (fun acc v -> match v with `Out k -> max acc k | `Red _ -> acc)
    (-1) t

let max_red_var t =
  fold_vars (fun acc v -> match v with `Red k -> max acc k | `Out _ -> acc)
    (-1) t

(** Inclusive value range of an expression given variable extents
    (variable [Ov k] ranges over [0, ov_ext.(k) - 1]). *)
let rec range ~ov_ext ~rv_ext = function
  | Ov k -> (0, ov_ext.(k) - 1)
  | Rv k -> (0, rv_ext.(k) - 1)
  | Const c -> (c, c)
  | Add (a, b) ->
      let la, ha = range ~ov_ext ~rv_ext a and lb, hb = range ~ov_ext ~rv_ext b in
      (la + lb, ha + hb)
  | Mul (a, k) ->
      let l, h = range ~ov_ext ~rv_ext a in
      if k >= 0 then (l * k, h * k) else (h * k, l * k)
  | Div (a, k) ->
      let l, h = range ~ov_ext ~rv_ext a in
      let fd v = if v >= 0 then v / k else -(((-v) + k - 1) / k) in
      (fd l, fd h)
  | Mod (a, k) ->
      let l, h = range ~ov_ext ~rv_ext a in
      if l >= 0 && h < k then (l, h) else (0, k - 1)

(* Linear-normal form: coefficient map over variables plus a constant, with
   irreducible div/mod atoms treated as opaque terms.  Canonicalizing through
   this form gives an effective simplifier and (when no atoms remain) the
   affine matrix extraction of §5.2. *)
module Lin = struct
  type atom = ADiv of t * int | AMod of t * int

  type nf = {
    out : (int * int) list;  (* (var, coeff) sorted *)
    red : (int * int) list;
    atoms : (atom * int) list;
    const : int;
  }

  let empty = { out = []; red = []; atoms = []; const = 0 }

  let add_assoc k c l =
    let rec go = function
      | [] -> [ (k, c) ]
      | (k', c') :: rest ->
          if k = k' then if c + c' = 0 then rest else (k', c + c') :: rest
          else (k', c') :: go rest
    in
    go l

  let rec add_atom a c l =
    match l with
    | [] -> [ (a, c) ]
    | (a', c') :: rest ->
        if a = a' then if c + c' = 0 then rest else (a', c + c') :: rest
        else (a', c') :: add_atom a c rest

  let merge a b =
    {
      out = List.fold_left (fun acc (k, c) -> add_assoc k c acc) a.out b.out;
      red = List.fold_left (fun acc (k, c) -> add_assoc k c acc) a.red b.red;
      atoms = List.fold_left (fun acc (x, c) -> add_atom x c acc) a.atoms b.atoms;
      const = a.const + b.const;
    }

  let scale k nf =
    if k = 0 then empty
    else
      {
        out = List.map (fun (v, c) -> (v, c * k)) nf.out;
        red = List.map (fun (v, c) -> (v, c * k)) nf.red;
        atoms = List.map (fun (a, c) -> (a, c * k)) nf.atoms;
        const = nf.const * k;
      }
end

let rec to_nf ~ov_ext ~rv_ext (e : t) : Lin.nf =
  match e with
  | Ov k -> { Lin.empty with out = [ (k, 1) ] }
  | Rv k -> { Lin.empty with red = [ (k, 1) ] }
  | Const c -> { Lin.empty with const = c }
  | Add (a, b) -> Lin.merge (to_nf ~ov_ext ~rv_ext a) (to_nf ~ov_ext ~rv_ext b)
  | Mul (a, k) -> Lin.scale k (to_nf ~ov_ext ~rv_ext a)
  | Div (a, k) -> div_nf ~ov_ext ~rv_ext a k
  | Mod (a, k) -> mod_nf ~ov_ext ~rv_ext a k

and div_nf ~ov_ext ~rv_ext a k =
  if k = 1 then to_nf ~ov_ext ~rv_ext a
  else begin
    let a' = of_nf (to_nf ~ov_ext ~rv_ext a) in
    let lo, hi = range ~ov_ext ~rv_ext a' in
    if lo >= 0 && hi < k then Lin.empty (* value always 0 *)
    else begin
      (* Peel off exactly-divisible linear parts: (k*x + r)/k = x + r/k when
         0 <= r < k. *)
      let nf = to_nf ~ov_ext ~rv_ext a' in
      let divisible (_, c) = c mod k = 0 in
      let div_out, rem_out = List.partition divisible nf.out in
      let div_red, rem_red = List.partition divisible nf.red in
      let rem =
        { nf with
          out = rem_out;
          red = rem_red;
          const = nf.const mod k;
        }
      in
      let rem_expr = of_nf rem in
      let rlo, rhi = range ~ov_ext ~rv_ext rem_expr in
      if rlo >= 0 && rhi < k then
        let peeled =
          {
            Lin.out = List.map (fun (v, c) -> (v, c / k)) div_out;
            red = List.map (fun (v, c) -> (v, c / k)) div_red;
            atoms = [];
            const = nf.const / k - (if nf.const mod k < 0 then 1 else 0);
          }
        in
        (* atoms cannot be peeled through division; keep whole expr opaque *)
        if nf.atoms = [] then peeled
        else { Lin.empty with atoms = [ (ADiv (a', k), 1) ] }
      else { Lin.empty with atoms = [ (ADiv (a', k), 1) ] }
    end
  end

and mod_nf ~ov_ext ~rv_ext a k =
  if k = 1 then Lin.empty
  else begin
    let a' = of_nf (to_nf ~ov_ext ~rv_ext a) in
    let lo, hi = range ~ov_ext ~rv_ext a' in
    if lo >= 0 && hi < k then to_nf ~ov_ext ~rv_ext a'
    else begin
      (* Drop multiples of k: (k*x + r) mod k = r mod k when 0 <= r < k. *)
      let nf = to_nf ~ov_ext ~rv_ext a' in
      let keep (_, c) = c mod k <> 0 in
      let rem =
        { nf with
          out = List.filter keep nf.out;
          red = List.filter keep nf.red;
          const = ((nf.const mod k) + k) mod k;
        }
      in
      let rem_expr = of_nf rem in
      let rlo, rhi = range ~ov_ext ~rv_ext rem_expr in
      if nf.atoms = [] && rlo >= 0 && rhi < k then rem
      else { Lin.empty with atoms = [ (AMod (a', k), 1) ] }
    end
  end

and of_nf (nf : Lin.nf) : t =
  let term acc e coeff =
    let t = if coeff = 1 then e else Mul (e, coeff) in
    match acc with None -> Some t | Some a -> Some (Add (a, t))
  in
  let acc = None in
  let acc =
    List.fold_left (fun acc (k, c) -> term acc (Ov k) c)
      acc (List.sort compare nf.Lin.out)
  in
  let acc =
    List.fold_left (fun acc (k, c) -> term acc (Rv k) c)
      acc (List.sort compare nf.Lin.red)
  in
  let acc =
    List.fold_left
      (fun acc (a, c) ->
        let e = match a with Lin.ADiv (x, k) -> Div (x, k) | AMod (x, k) -> Mod (x, k) in
        term acc e c)
      acc nf.Lin.atoms
  in
  match acc with
  | None -> Const nf.Lin.const
  | Some a -> if nf.Lin.const = 0 then a else Add (a, Const nf.Lin.const)

(** Canonicalize; extents drive range-based div/mod elimination, e.g. a
    reshape composed with its inverse simplifies to the identity. *)
let simplify ~ov_ext ~rv_ext e = of_nf (to_nf ~ov_ext ~rv_ext e)

(** Affine extraction: [Some (out_coeffs, red_coeffs, const)] iff the
    expression is affine after simplification (no residual div/mod), giving
    the row of the paper's [M·v + c] map. *)
let to_affine ~ov_ext ~rv_ext ~n_out ~n_red e =
  let nf = to_nf ~ov_ext ~rv_ext e in
  if nf.Lin.atoms <> [] then None
  else begin
    let oc = Array.make n_out 0 and rc = Array.make n_red 0 in
    let ok = ref true in
    List.iter
      (fun (k, c) -> if k < n_out then oc.(k) <- c else ok := false)
      nf.Lin.out;
    List.iter
      (fun (k, c) -> if k < n_red then rc.(k) <- c else ok := false)
      nf.Lin.red;
    if !ok then Some (oc, rc, nf.Lin.const) else None
  end

let is_affine ~ov_ext ~rv_ext e =
  (to_nf ~ov_ext ~rv_ext e).Lin.atoms = []

let equal (a : t) (b : t) = a = b

(* Convenience constructors for the builder DSL. *)
let ( + ) a b = Add (a, b)
let ( * ) a k = Mul (a, k)
let ( / ) a k = Div (a, k)
let ( % ) a k = Mod (a, k)
let ov k = Ov k
let rv k = Rv k
let const c = Const c
