#!/bin/sh
# Dependency-free style lint for `dune build @fmt-check`: no tab
# indentation and no trailing whitespace in committed OCaml sources.
# (ocamlformat is not available in the build image; see .ocamlformat.)
# Usage: fmt_check.sh DIR...
set -eu
status=0
tab=$(printf '\t')
for dir in "$@"; do
  for f in $(find "$dir" -name '*.ml' -o -name '*.mli' | sort); do
    if grep -n "$tab" "$f" >/dev/null; then
      echo "fmt-check: $f: tab character" >&2
      grep -n "$tab" "$f" | head -3 >&2
      status=1
    fi
    if grep -n ' $' "$f" >/dev/null; then
      echo "fmt-check: $f: trailing whitespace" >&2
      grep -n ' $' "$f" | head -3 >&2
      status=1
    fi
  done
done
exit $status
