(* Model-zoo tests: every model validates, lowers, shape-checks, and (at
   tiny size) runs through the interpreter with sane numerics; full-size
   models are structurally checked without interpretation. *)

let test_all_tiny_validate_and_lower () =
  List.iter
    (fun (e : Zoo.entry) ->
      let g = e.Zoo.tiny () in
      (match Dgraph.validate g with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s graph invalid: %s" e.Zoo.name m);
      let p = Lower.run g in
      match Program.validate p with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s program invalid: %s" e.Zoo.name m)
    Zoo.all

let test_all_tiny_interpret () =
  List.iter
    (fun (e : Zoo.entry) ->
      let p = Lower.run (e.Zoo.tiny ()) in
      let outs = Interp.run p (Interp.random_inputs ~seed:1 p) in
      List.iter
        (fun (name, nd) ->
          Nd.fold
            (fun () v ->
              if Float.is_nan v || Float.is_integer (v /. 0.) then
                Alcotest.failf "%s output %s has nan/inf" e.Zoo.name name)
            () nd)
        outs)
    Zoo.all

let test_all_full_validate () =
  List.iter
    (fun (e : Zoo.entry) ->
      let g = e.Zoo.full () in
      match Dgraph.validate g with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s full graph invalid: %s" e.Zoo.name m)
    Zoo.all

let te_count name =
  let e = Option.get (Zoo.find name) in
  List.length (Lower.run (e.Zoo.full ())).Program.tes

let test_bert_structure () =
  let g = Bert.create () in
  let p = Lower.run g in
  (* 12 layers, each with 6 GEMM-class ops *)
  let gemms =
    List.filter
      (fun (te : Te.t) ->
        te.Te.tag = "matmul" || te.Te.tag = "batch_matmul")
      p.Program.tes
  in
  Alcotest.(check int) "GEMMs" (12 * 8) (List.length gemms);
  (* output shape (seq, hidden) *)
  let info = Program.tensor_info_exn p (List.hd p.Program.outputs) in
  Alcotest.(check (array int)) "output shape" [| 384; 768 |] info.Program.shape

let test_bert_flops_magnitude () =
  let p = Lower.run (Bert.create ()) in
  let flops = Program.total_arith_ops p in
  (* BERT-base at seq 384 is ~45-75 GFLOP forward *)
  Alcotest.(check bool) "flops in range" true
    (flops > 40_000_000_000 && flops < 120_000_000_000)

let test_lstm_structure () =
  let p = Lower.run (Lstm.create ()) in
  let gemvs = List.filter (fun (te : Te.t) -> te.Te.tag = "gemv") p.Program.tes in
  Alcotest.(check int) "2 GEMVs per cell-step" (2 * 100 * 10) (List.length gemvs)

let test_lstm_weight_bytes () =
  (* weights are 10 cells x 2 matrices x (1024x256) x 4B ~ 21 MB, the
     number Table 6 reports for Souffle's total DRAM traffic *)
  let p = Lower.run (Lstm.create ()) in
  let weight_bytes =
    List.fold_left
      (fun acc (name, (info : Program.tensor_info)) ->
        if String.length name > 0 && (name.[0] = 'w' || name.[0] = 'u') then
          acc + (Shape.numel info.Program.shape * 4)
        else acc)
      0 p.Program.inputs
  in
  Alcotest.(check int) "~21MB of weights" (10 * 2 * 1024 * 256 * 4) weight_bytes

let test_resnext_structure () =
  let n = te_count "ResNeXt" in
  (* 33 blocks x (32 branches x ~6 TEs + merge/shortcut) + stem/head *)
  Alcotest.(check bool) "thousands of TEs from explicit branches" true
    (n > 5000 && n < 10000)

let test_efficientnet_structure () =
  let p = Lower.run (Efficientnet.create ()) in
  let dw =
    List.filter (fun (te : Te.t) -> te.Te.tag = "dwconv2d") p.Program.tes
  in
  (* one depthwise conv per MBConv block: 16 blocks *)
  Alcotest.(check int) "16 depthwise convs" 16 (List.length dw)

let test_swin_structure () =
  let p = Lower.run (Swin.create ()) in
  let softmaxes =
    List.filter (fun (te : Te.t) -> te.Te.tag = "softmax.sum") p.Program.tes
  in
  (* one attention per block: 2+2+18+2 = 24 *)
  Alcotest.(check int) "24 attentions" 24 (List.length softmaxes);
  let rolls =
    List.filter
      (fun (te : Te.t) -> Astring_contains.contains te.Te.name "_roll")
      p.Program.tes
  in
  Alcotest.(check bool) "shifted blocks roll" true (List.length rolls > 0)

let test_mmoe_mixture_is_convex () =
  (* gate probabilities are a softmax: each task's mixed output lies inside
     the convex hull of expert outputs on any input *)
  let p = Lower.run (Mmoe.create ~cfg:Mmoe.tiny ()) in
  let env = Interp.run_env p (Interp.random_inputs ~seed:9 p) in
  let experts =
    List.init Mmoe.tiny.Mmoe.num_experts (fun i ->
        Interp.lookup env (Fmt.str "expert%d_out" i))
  in
  let mixed = Interp.lookup env "task0_mix" in
  for j = 0 to Mmoe.tiny.Mmoe.expert_hidden - 1 do
    let vals = List.map (fun e -> Nd.get e [| 0; j |]) experts in
    let lo = List.fold_left min infinity vals
    and hi = List.fold_left max neg_infinity vals in
    let v = Nd.get mixed [| 0; j |] in
    Alcotest.(check bool) "inside hull" true (v >= lo -. 1e-6 && v <= hi +. 1e-6)
  done

let test_lstm_tiny_against_reference () =
  (* a 1-cell 1-step LSTM against a hand-computed reference *)
  let cfg = { Lstm.steps = 1; cells = 1; hidden = 2 } in
  let p = Lower.run (Lstm.create ~cfg ()) in
  (* build inputs: everything 0 except bias -> gates = bias *)
  let zero name shape = (name, Nd.zeros shape) in
  let bias = Nd.of_array [| 8 |] [| 1.; 1.; 2.; 2.; 0.5; 0.5; 3.; 3. |] in
  let env =
    Interp.env_of_list
      [
        zero "w0" [| 8; 2 |]; zero "u0" [| 8; 2 |]; ("b0", bias);
        zero "x0" [| 2 |]; zero "h0_0" [| 2 |]; zero "c0_0" [| 2 |];
      ]
  in
  let out = snd (List.hd (Interp.run p env)) in
  (* i=sigmoid(1), f=sigmoid(2), g=tanh(0.5), o=sigmoid(3);
     c = f*0 + i*g; h = o * tanh(c) *)
  let sigmoid x = 1. /. (1. +. exp (-.x)) in
  let c = sigmoid 1. *. tanh 0.5 in
  let expected = sigmoid 3. *. tanh c in
  Alcotest.(check (float 1e-6)) "h value" expected (Nd.get out [| 0 |])

let test_attention_subgraph () =
  let g = Bert.attention_subgraph ~cfg:Bert.tiny () in
  Alcotest.(check bool) "valid" true (Result.is_ok (Dgraph.validate g));
  let p = Lower.run g in
  ignore (Interp.run p (Interp.random_inputs p))

let test_efficientnet_submodules () =
  Alcotest.(check int) "10 sub-modules" 10 (List.length Efficientnet.sub_modules);
  List.iter
    (fun (name, g) ->
      match Dgraph.validate g with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s invalid: %s" name m)
    Efficientnet.sub_modules

let test_zoo_find () =
  Alcotest.(check bool) "finds bert" true (Option.is_some (Zoo.find "bert"));
  Alcotest.(check bool) "unknown none" true (Option.is_none (Zoo.find "vgg"));
  Alcotest.(check bool) "gpt present" true (Option.is_some (Zoo.find "gpt"));
  Alcotest.(check int) "seven models" 7 (List.length Zoo.all)

let suite =
  [
    Alcotest.test_case "tiny validate+lower" `Quick test_all_tiny_validate_and_lower;
    Alcotest.test_case "tiny interpret" `Slow test_all_tiny_interpret;
    Alcotest.test_case "full validate" `Quick test_all_full_validate;
    Alcotest.test_case "bert structure" `Quick test_bert_structure;
    Alcotest.test_case "bert flops" `Quick test_bert_flops_magnitude;
    Alcotest.test_case "lstm structure" `Quick test_lstm_structure;
    Alcotest.test_case "lstm weight bytes" `Quick test_lstm_weight_bytes;
    Alcotest.test_case "resnext structure" `Quick test_resnext_structure;
    Alcotest.test_case "efficientnet structure" `Quick test_efficientnet_structure;
    Alcotest.test_case "swin structure" `Quick test_swin_structure;
    Alcotest.test_case "mmoe convex mixture" `Quick test_mmoe_mixture_is_convex;
    Alcotest.test_case "lstm tiny reference" `Quick test_lstm_tiny_against_reference;
    Alcotest.test_case "attention subgraph" `Quick test_attention_subgraph;
    Alcotest.test_case "efficientnet submodules" `Quick test_efficientnet_submodules;
    Alcotest.test_case "zoo find" `Quick test_zoo_find;
  ]
