lib/transform/horizontal.ml: Array Expr Fmt Hashtbl Index List Program Te
