(** Kernel emission: turn a partitioned, scheduled TE program into the
    simulator's {!Kernel_ir.prog}.

    This layer realizes §6.3–§6.5: memory-intensive TEs are attached to the
    stages of their compute-intensive producers (schedule propagation),
    stages of one cooperative kernel are separated by [grid.sync], fused
    reductions produce block-local partials plus [atomicAdd], the §6.5 LRU
    shared-memory cache decides which intermediate tensors ever touch
    global memory, and pipelining overlaps loads with tensor-core math.

    Baselines reuse this emitter with different groupings and options, so
    every system is costed by the same model. *)

module SMap = Program.SMap
module SSet = Program.SSet

type group = {
  g_tes : string list;       (** member TE names, program order *)
  cooperative : bool;        (** single kernel with grid.sync allowed *)
  library_call : bool;       (** opaque vendor kernel (cuBLAS-style) *)
  eff_override : float option;
}

let group_of_subprogram (sp : Partition.subprogram) : group =
  {
    g_tes = Partition.te_names sp;
    cooperative = sp.Partition.cooperative;
    library_call = false;
    eff_override = None;
  }

type options = {
  attach_epilogue : bool;   (** one-relies-on-one TEs join producer stages *)
  attach_prologue : bool;   (** ... or the next anchor stage *)
  reuse_cache : bool;       (** §6.5 LRU shared-memory tensor cache *)
  pipeline : bool;          (** §6.5 cross-TE load/compute overlap *)
  mem_eff : float;          (** achieved DRAM bandwidth fraction *)
  movement_mem_eff : float; (** ... for strided layout stages *)
  cache_capacity_frac : float;
      (** fraction of aggregate shared memory usable as tensor cache *)
  concurrent_stages : bool;
      (** model a group of independent TEs as co-scheduled rTasks filling
          the device together (Rammer) rather than as sequential stages *)
}

let default_options =
  {
    attach_epilogue = true;
    attach_prologue = true;
    reuse_cache = true;
    pipeline = true;
    mem_eff = 0.85;
    movement_mem_eff = 0.45;
    cache_capacity_frac = 0.5;
    concurrent_stages = false;
  }

(* ------------------------------------------------------------------ *)

type stage_build = {
  anchor : Te.t;
  mutable smembers : Te.t list;  (* reverse order, includes anchor *)
}

(* Split a group's TEs into stages: every reduction anchors a stage;
   one-relies-on-one TEs attach to their producer's stage (epilogue) or are
   held for the next anchor (prologue). *)
let build_stages (opts : options) (tes : Te.t list) : Te.t list list =
  let stages : stage_build list ref = ref [] in
  let stage_of : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let pending = ref [] in
  let pending_names = ref SSet.empty in
  let new_stage (anchor : Te.t) =
    let absorbed = List.rev !pending in
    pending := [];
    pending_names := SSet.empty;
    let sb = { anchor; smembers = [ anchor ] @ List.rev absorbed } in
    stages := !stages @ [ sb ];
    let idx = List.length !stages - 1 in
    List.iter
      (fun (te : Te.t) -> Hashtbl.replace stage_of te.Te.name idx)
      (anchor :: absorbed);
    idx
  in
  List.iter
    (fun (te : Te.t) ->
      if Te.has_reduction te then ignore (new_stage te)
      else begin
        let producer_stages =
          List.filter_map
            (fun i -> Hashtbl.find_opt stage_of i)
            (Te.inputs te)
        in
        let producer_pending =
          List.exists (fun i -> SSet.mem i !pending_names) (Te.inputs te)
        in
        if producer_pending then begin
          pending := te :: !pending;
          pending_names := SSet.add te.Te.name !pending_names
        end
        else if opts.attach_epilogue && producer_stages <> [] then begin
          let idx = List.fold_left max 0 producer_stages in
          let sb = List.nth !stages idx in
          (* compute_at only works when the consumer's iteration space is
             no larger than the producer's: a broadcast consumer (e.g. the
             squeeze-excite channel scale) cannot inline *)
          if Te.out_numel te <= Te.out_numel sb.anchor then begin
            sb.smembers <- te :: sb.smembers;
            Hashtbl.replace stage_of te.Te.name idx
          end
          else if opts.attach_prologue then begin
            pending := te :: !pending;
            pending_names := SSet.add te.Te.name !pending_names
          end
          else ignore (new_stage te)
        end
        else if opts.attach_prologue then begin
          pending := te :: !pending;
          pending_names := SSet.add te.Te.name !pending_names
        end
        else ignore (new_stage te)
      end)
    tes;
  (* leftover prologue TEs with no anchor behind them form a final stage *)
  (if !pending <> [] then
     match List.rev !pending with
     | first :: rest ->
         pending := List.rev rest;
         pending_names :=
           SSet.of_list (List.map (fun (te : Te.t) -> te.Te.name) rest);
         ignore (new_stage first)
     | [] -> ());
  List.map (fun sb -> List.rev sb.smembers) !stages

(* ------------------------------------------------------------------ *)

let tensor_bytes (p : Program.t) name =
  let info = Program.tensor_info_exn p name in
  Shape.numel info.Program.shape * Dtype.bytes info.Program.dtype

(** Emit the single kernel of one group ([index] numbers it within the
    program, for naming).  This is the unit the per-subprogram degradation
    ladder retries: every call re-derives its own state, so re-emitting one
    group under different options cannot disturb its neighbours. *)
let emit_kernel (dev : Device.t) (p : Program.t) (an : Analysis.t)
    (scheds : (string, Sched.t) Hashtbl.t) (opts : options) ~(index : int)
    (g : group) : Kernel_ir.kernel =
  let outputs = SSet.of_list p.Program.outputs in
  let consumers = Program.consumers p in
  let sched name =
    match Hashtbl.find_opt scheds name with
    | Some s -> s
    | None -> Sched.default_elementwise (Program.find_te_exn p name)
  in
  let cache =
    Reuse_cache.create
      ~capacity:
        (int_of_float
           (opts.cache_capacity_frac *. float_of_int (Device.total_smem dev)))
  in
  let kernel =
    let gi = index in
    (fun (g : group) ->
        let tes = List.map (Program.find_te_exn p) g.g_tes in
        let stages_tes =
          if opts.concurrent_stages then [ tes ] else build_stages opts tes
        in
        let member_set = SSet.of_list g.g_tes in
        (* per-kernel state *)
        Reuse_cache.clear cache;
        let touched = ref SSet.empty in
        let stage_of : (string, int) Hashtbl.t = Hashtbl.create 16 in
        List.iteri
          (fun si tl ->
            List.iter
              (fun (te : Te.t) -> Hashtbl.replace stage_of te.Te.name si)
              tl)
          stages_tes;
        let consumed_outside (te : Te.t) =
          SSet.mem te.Te.name outputs
          || List.exists
               (fun (c : Te.t) -> not (SSet.mem c.Te.name member_set))
               (Option.value ~default:[]
                  (SMap.find_opt te.Te.name consumers))
        in
        let consumed_in_later_stage (te : Te.t) si =
          List.exists
            (fun (c : Te.t) ->
              match Hashtbl.find_opt stage_of c.Te.name with
              | Some sj -> sj > si
              | None -> false)
            (Option.value ~default:[] (SMap.find_opt te.Te.name consumers))
        in
        let kstages =
          List.mapi
            (fun si stage_members ->
              let anchor = List.hd stage_members in
              let anchor =
                (* prefer a reduction anchor if present *)
                match List.find_opt Te.has_reduction stage_members with
                | Some r -> r
                | None -> anchor
              in
              let asched = sched anchor.Te.name in
              let instrs = ref [] in
              let push i = instrs := i :: !instrs in
              (* on-device intermediate (some TE produced it earlier in the
                 program, so it is already materialized): an L2 re-read when
                 it fits, a DRAM round trip when it does not — never a
                 first-touch ldg.  The armed mistag fault deliberately
                 breaks this classification so the dataflow verifier can be
                 exercised end to end. *)
              let push_ondevice ~tensor bytes =
                if bytes <= dev.Device.l2_bytes && not (Faultinject.mistag_load ())
                then push (Kernel_ir.ldl2 ~tensor bytes)
                else push (Kernel_ir.ldg ~tensor bytes)
              in
              (* dependent stages in a cooperative kernel synchronize *)
              if si > 0 && g.cooperative then begin
                let reads_earlier =
                  List.exists
                    (fun (te : Te.t) ->
                      List.exists
                        (fun i ->
                          match Hashtbl.find_opt stage_of i with
                          | Some sj -> sj < si
                          | None -> false)
                        (Te.inputs te))
                    stage_members
                in
                if reads_earlier then push Kernel_ir.Grid_sync
              end;
              List.iter
                (fun (te : Te.t) ->
                  let my_stage = Hashtbl.find stage_of te.Te.name in
                  (* ---- reads ---- *)
                  List.iter
                    (fun input ->
                      let bytes = tensor_bytes p input in
                      let same_stage =
                        match Hashtbl.find_opt stage_of input with
                        | Some sj -> sj = my_stage
                        | None -> false
                      in
                      if same_stage then
                        (* producer in the same fused stage: register/smem *)
                        push (Kernel_ir.lds ~tensor:input bytes)
                      else begin
                        let in_kernel = SSet.mem input member_set in
                        let produced = Program.producer p input <> None in
                        if
                          in_kernel && opts.reuse_cache
                          && Reuse_cache.touch cache input = Reuse_cache.Hit
                        then push (Kernel_ir.lds ~tensor:input bytes)
                        else if produced then
                          (* an earlier kernel/stage materialized it — this
                             also covers the reuse-cache bypass (a miss or
                             the cache disabled below V4), which must not
                             fall back to a DRAM first touch *)
                          push_ondevice ~tensor:input bytes
                        else if SSet.mem input !touched then begin
                          (* program input re-read within this kernel *)
                          if bytes <= dev.Device.l2_bytes then
                            push (Kernel_ir.ldl2 ~tensor:input bytes)
                          else push (Kernel_ir.ldg ~tensor:input bytes)
                        end
                        else begin
                          touched := SSet.add input !touched;
                          push (Kernel_ir.ldg ~tensor:input bytes)
                        end
                      end)
                    (Te.inputs te);
                  (* tiling re-reads of the anchor's inputs hit L2 *)
                  if te.Te.name = anchor.Te.name && Te.has_reduction te then begin
                    let unique =
                      List.fold_left
                        (fun acc i -> acc + tensor_bytes p i)
                        0 (Te.inputs te)
                    in
                    let extra = Sched.tiled_load_bytes p te asched - unique in
                    (* aggregate over several tensors: left untagged *)
                    if extra > 0 then push (Kernel_ir.ldl2 extra)
                  end;
                  (* ---- compute ---- *)
                  let evals = Te.out_numel te * max 1 (Te.reduce_domain te) in
                  let sfu = Expr.sfu_count (Te.body_expr te) * evals in
                  let total = Te.arith_ops te in
                  let mainline = max 0 (total - (4 * sfu)) in
                  if (sched te.Te.name).Sched.use_tensor_core then
                    push (Kernel_ir.Mma { flops = mainline })
                  else if mainline > 0 then
                    push (Kernel_ir.Fma { flops = mainline });
                  if sfu > 0 then push (Kernel_ir.Sfu { ops = sfu });
                  (* fused memory-side reductions reduce across blocks with
                     atomics (two-phase reduction, §6.3) *)
                  let te_sched = sched te.Te.name in
                  let is_fused_reduction =
                    Te.has_reduction te
                    && ((g.cooperative
                         && (Analysis.info an te.Te.name).Analysis.kind
                            = Intensity.Memory_intensive
                         && List.exists
                              (fun i -> SSet.mem i member_set)
                              (Te.inputs te))
                        || te_sched.Sched.rsplit > 1)
                  in
                  (* ---- writes ---- *)
                  let out_bytes = Te.out_numel te * Dtype.bytes te.Te.dtype in
                  let outside = consumed_outside te in
                  let later = consumed_in_later_stage te my_stage in
                  if is_fused_reduction then begin
                    push
                      (Kernel_ir.atomic_add ~tensor:te.Te.name
                         (out_bytes * max 1 te_sched.Sched.rsplit));
                    if opts.reuse_cache && later then
                      ignore
                        (Reuse_cache.insert cache ~tensor:te.Te.name
                           ~bytes:out_bytes ~dirty:false)
                  end
                  else if outside then begin
                    push (Kernel_ir.stg ~tensor:te.Te.name out_bytes);
                    if opts.reuse_cache && later then
                      ignore
                        (Reuse_cache.insert cache ~tensor:te.Te.name
                           ~bytes:out_bytes ~dirty:false)
                  end
                  else if later then begin
                    if opts.reuse_cache then begin
                      match
                        Reuse_cache.insert cache ~tensor:te.Te.name
                          ~bytes:out_bytes ~dirty:true
                      with
                      | Reuse_cache.Inserted | Reuse_cache.Hit
                      | Reuse_cache.Miss -> ()
                      | Reuse_cache.Rejected ->
                          push (Kernel_ir.stg ~tensor:te.Te.name out_bytes)
                      | Reuse_cache.Spilled victims ->
                          (* write back dirty victims, with a barrier *)
                          List.iter
                            (fun (v, vbytes) ->
                              push (Kernel_ir.stg ~tensor:v vbytes))
                            victims;
                          push Kernel_ir.Block_sync
                    end
                    else push (Kernel_ir.stg ~tensor:te.Te.name out_bytes)
                  end
                  (* else: consumed only within this stage — never
                     materialized at all *))
                stage_members;
              let is_movement =
                (not (Te.has_reduction anchor))
                && Expr.is_data_movement (Te.body_expr anchor)
              in
              let compute_eff =
                match g.eff_override with
                | Some e -> e
                | None -> asched.Sched.compute_eff
              in
              let has_mma =
                List.exists
                  (function Kernel_ir.Mma _ -> true | _ -> false)
                  !instrs
              in
              Kernel_ir.stage
                ~pipelined:(opts.pipeline && has_mma)
                ~compute_eff
                ~mem_eff:
                  (if is_movement then opts.movement_mem_eff else opts.mem_eff)
                ~produces:
                  (List.map (fun (te : Te.t) -> te.Te.name) stage_members)
                ~sgrid:
                  (if opts.concurrent_stages then
                     List.fold_left
                       (fun acc (te : Te.t) ->
                         acc + Sched.grid_blocks te (sched te.Te.name))
                       0 stage_members
                   else Sched.grid_blocks anchor asched)
                ~label:anchor.Te.name (List.rev !instrs))
            stages_tes
        in
        (* launch configuration: the widest stage wins *)
        let grid, threads, smem, regs =
          List.fold_left
            (fun (g', t', s', r') tl ->
              let anchor =
                match List.find_opt Te.has_reduction tl with
                | Some r -> r
                | None -> List.hd tl
              in
              let s = sched anchor.Te.name in
              ( max g' (Sched.grid_blocks anchor s),
                max t' s.Sched.threads_per_block,
                max s' (Sched.smem_bytes p anchor s),
                max r' (Sched.regs_per_thread s) ))
            (1, 32, 0, 16) stages_tes
        in
        (* fault injection: corrupted resource estimates must be caught by
           the kernel-IR verifier before launch; the additive term keeps the
           corruption visible even when the honest estimate is tiny *)
        let sf = Faultinject.smem_factor () in
        let smem = if sf = 1 then smem else (smem * sf) + (sf * 4096) in
        let gf = Faultinject.grid_factor () in
        let grid = if gf = 1 then grid else (grid * gf) + (gf * 4096) in
        Kernel_ir.kernel
          ~name:(Fmt.str "k%d_%s" gi (List.hd g.g_tes))
          ~grid_blocks:grid ~threads_per_block:threads ~smem_per_block:smem
          ~regs_per_thread:regs ~library_call:g.library_call kstages)
      g
  in
  kernel

(** Emit a whole grouping in one call (baselines, ablations, tests; the
    Souffle ladder drives {!emit_kernel_result} per group instead).  Each
    kernel is emitted under its own ["emit-kernel"] span — the same span
    name the ladder path opens — so per-phase profiles aggregate emission
    time identically whichever entry point ran. *)
let emit (dev : Device.t) (p : Program.t) (an : Analysis.t)
    (scheds : (string, Sched.t) Hashtbl.t) (opts : options)
    (groups : group list) : Kernel_ir.prog =
  Obs.span ~meta:[ ("groups", string_of_int (List.length groups)) ] "emit"
  @@ fun () ->
  {
    Kernel_ir.pname = "prog";
    kernels =
      List.mapi
        (fun gi g ->
          let subject =
            match g.g_tes with n :: _ -> n | [] -> "<empty group>"
          in
          Obs.span
            ~meta:
              [
                ("subprogram", subject);
                ("tes", string_of_int (List.length g.g_tes));
              ]
            "emit-kernel"
            (fun () -> emit_kernel dev p an scheds opts ~index:gi g))
        groups;
  }

(** {!emit_kernel} as a total function: fault-injection aware, exceptions
    converted to a typed diagnostic naming the failed group. *)
let emit_kernel_result dev p an scheds opts ~index (g : group) :
    (Kernel_ir.kernel, Diag.t) result =
  let subject = match g.g_tes with n :: _ -> n | [] -> "<empty group>" in
  Obs.span
    ~meta:
      [
        ("subprogram", subject); ("tes", string_of_int (List.length g.g_tes));
      ]
    "emit-kernel"
  @@ fun () ->
  Diag.guard ~subject Diag.Emit (fun () ->
      Faultinject.trip ~subject Diag.Emit;
      emit_kernel dev p an scheds opts ~index g)

(** {!emit} as a total function. *)
let emit_result dev p an scheds opts (groups : group list) :
    (Kernel_ir.prog, Diag.t) result =
  let rec go gi acc = function
    | [] -> Ok { Kernel_ir.pname = "prog"; kernels = List.rev acc }
    | g :: rest -> (
        match emit_kernel_result dev p an scheds opts ~index:gi g with
        | Ok k -> go (gi + 1) (k :: acc) rest
        | Error _ as e -> e)
  in
  go 0 [] groups
