(** Kernel IR: the instruction-stream abstraction the simulator executes.

    A compiled program is an ordered list of kernels; a kernel is an ordered
    list of stages (one per fused TE group region, matching the
    [Fn_TE_Subprogram] structure of Fig. 2's step 5); a stage carries the
    aggregate instruction counts of all its thread blocks.  Byte/flop totals
    are grid-wide, which is the right granularity for a throughput model.

    Memory instructions optionally carry the name of the tensor they move
    ([tensor]): the emitter tags every load/store it derives from the TE
    graph, and the cross-kernel dataflow verifier ({!Dataflow}) uses the
    tags to prove producer/consumer consistency over the whole program.
    Untagged ([None]) traffic — e.g. the schedule-implied tiling re-reads,
    which aggregate several tensors — is exempt from per-tensor checks. *)

type instr =
  | Ldg of { bytes : int; tensor : string option }
      (** load from DRAM (first touch of a tensor) *)
  | Ldl2 of { bytes : int; tensor : string option }
      (** load of data resident in L2 (re-read of an on-device tensor) *)
  | Lds of { bytes : int; tensor : string option }
      (** shared-memory load (reuse hits of the §6.5 software cache) *)
  | Stg of { bytes : int; tensor : string option }
      (** store to DRAM *)
  | Mma of { flops : int }
      (** tensor-core half-precision multiply-accumulate (HMMA) *)
  | Fma of { flops : int }
      (** CUDA-core FP32 multiply-add *)
  | Sfu of { ops : int }
      (** transcendental ops (exp, tanh, rsqrt, ...) *)
  | Atomic_add of { bytes : int; tensor : string option }
      (** global-memory atomic reduction traffic *)
  | Grid_sync
      (** cooperative-groups grid synchronization *)
  | Block_sync
      (** __syncthreads-level barrier (cheap) *)

(* tagged-construction helpers: [ldg ~tensor:"x" 1024] *)
let ldg ?tensor bytes = Ldg { bytes; tensor }
let ldl2 ?tensor bytes = Ldl2 { bytes; tensor }
let lds ?tensor bytes = Lds { bytes; tensor }
let stg ?tensor bytes = Stg { bytes; tensor }
let atomic_add ?tensor bytes = Atomic_add { bytes; tensor }

(** The tensor a memory instruction moves, when the emitter tagged it. *)
let instr_tensor = function
  | Ldg { tensor; _ } | Ldl2 { tensor; _ } | Lds { tensor; _ }
  | Stg { tensor; _ } | Atomic_add { tensor; _ } ->
      tensor
  | Mma _ | Fma _ | Sfu _ | Grid_sync | Block_sync -> None

type stage = {
  label : string;       (** which TE(s) this stage implements *)
  pipelined : bool;     (** §6.5 instruction-level load/compute overlap *)
  compute_eff : float;  (** achieved fraction of pipeline peak *)
  mem_eff : float;      (** achieved fraction of DRAM bandwidth *)
  sgrid : int;          (** thread blocks active in this stage (0: whole kernel) *)
  produces : string list;
      (** outputs of the TEs this stage computes — including tensors that
          stay in registers/shared memory and never touch a memory
          instruction; the dataflow verifier's definition of "on device" *)
  instrs : instr list;
}

type kernel = {
  kname : string;
  grid_blocks : int;
  threads_per_block : int;
  smem_per_block : int;   (** bytes *)
  regs_per_thread : int;
  library_call : bool;    (** opaque vendor-library kernel (cuBLAS-style) *)
  stages : stage list;
}

type prog = { pname : string; kernels : kernel list }

(** {2 Persistent task graphs (mega-kernelization)}

    A [taskgraph] is the persistent-worker alternative to {!prog}: the whole
    program becomes ONE device launch whose per-SM workers drain a graph of
    tasks.  Each task is a self-contained unit of work described by a
    {!kernel} value (grid shape, resources, instruction stages); [t_deps]
    lists the indices of earlier tasks that must retire before the task may
    start.  Edges replace both the serial launch queue (independent tasks may
    overlap) and intra-kernel [Grid_sync] barriers (a cooperative kernel is
    lowered to one task per stage, chained by edges).  Lowering from a
    compiled {!prog} lives in {!module:Megakernel}. *)

type task = {
  t_kernel : kernel;  (** the work: launch shape + instruction stages *)
  t_deps : int list;  (** indices (< own index) of prerequisite tasks *)
}

type taskgraph = {
  tg_name : string;
  tg_kernels : int;  (** kernel count of the source multi-kernel program *)
  tg_tasks : task array;
}

let num_tasks (tg : taskgraph) = Array.length tg.tg_tasks
let num_edges (tg : taskgraph) =
  Array.fold_left (fun acc t -> acc + List.length t.t_deps) 0 tg.tg_tasks

(** Launches the persistent kernel saves over the multi-kernel program. *)
let launches_elided (tg : taskgraph) = max 0 (tg.tg_kernels - 1)

let usage (k : kernel) : Occupancy.usage =
  {
    Occupancy.threads_per_block = k.threads_per_block;
    smem_per_block = k.smem_per_block;
    regs_per_thread = k.regs_per_thread;
  }

let stage ?(pipelined = false) ?(compute_eff = 0.7) ?(mem_eff = 0.85)
    ?(sgrid = 0) ?(produces = []) ~label instrs =
  { label; pipelined; compute_eff; mem_eff; sgrid; produces; instrs }

let kernel ?(threads_per_block = 256) ?(smem_per_block = 48 * 1024)
    ?(regs_per_thread = 64) ?(library_call = false) ~name ~grid_blocks stages =
  {
    kname = name;
    grid_blocks;
    threads_per_block;
    smem_per_block;
    regs_per_thread;
    library_call;
    stages;
  }

let num_grid_syncs (k : kernel) =
  List.fold_left
    (fun acc s ->
      acc
      + List.length (List.filter (function Grid_sync -> true | _ -> false) s.instrs))
    0 k.stages

let dram_read_bytes_kernel (k : kernel) =
  List.fold_left
    (fun acc s ->
      List.fold_left
        (fun acc -> function Ldg { bytes; _ } -> acc + bytes | _ -> acc)
        acc s.instrs)
    0 k.stages

let pp_tag ppf = function
  | None -> ()
  | Some t -> Fmt.pf ppf "<%s>" t

let pp_instr ppf = function
  | Ldg { bytes; tensor } -> Fmt.pf ppf "ldg%a %dB" pp_tag tensor bytes
  | Ldl2 { bytes; tensor } -> Fmt.pf ppf "ldl2%a %dB" pp_tag tensor bytes
  | Lds { bytes; tensor } -> Fmt.pf ppf "lds%a %dB" pp_tag tensor bytes
  | Stg { bytes; tensor } -> Fmt.pf ppf "stg%a %dB" pp_tag tensor bytes
  | Mma { flops } -> Fmt.pf ppf "mma %d" flops
  | Fma { flops } -> Fmt.pf ppf "fma %d" flops
  | Sfu { ops } -> Fmt.pf ppf "sfu %d" ops
  | Atomic_add { bytes; tensor } ->
      Fmt.pf ppf "atomic%a %dB" pp_tag tensor bytes
  | Grid_sync -> Fmt.string ppf "grid.sync"
  | Block_sync -> Fmt.string ppf "block.sync"

let pp_kernel ppf k =
  Fmt.pf ppf "@[<v2>kernel %s <<<%d, %d>>> smem=%dB regs=%d%s:@,"
    k.kname k.grid_blocks k.threads_per_block k.smem_per_block
    k.regs_per_thread (if k.library_call then " [lib]" else "");
  List.iter
    (fun s ->
      Fmt.pf ppf "stage %s%s: %a@," s.label
        (if s.pipelined then " [pipelined]" else "")
        Fmt.(list ~sep:(any "; ") pp_instr)
        s.instrs)
    k.stages;
  Fmt.pf ppf "@]"

let pp_taskgraph ppf (tg : taskgraph) =
  Fmt.pf ppf "@[<v2>taskgraph %s: %d task(s), %d edge(s), %d launch(es) elided@,"
    tg.tg_name (num_tasks tg) (num_edges tg) (launches_elided tg);
  Array.iteri
    (fun i t ->
      Fmt.pf ppf "task %d %s <<<%d, %d>>> deps=[%a]@," i t.t_kernel.kname
        t.t_kernel.grid_blocks t.t_kernel.threads_per_block
        Fmt.(list ~sep:(any ", ") int)
        t.t_deps)
    tg.tg_tasks;
  Fmt.pf ppf "@]"
