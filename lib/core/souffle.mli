(** Souffle: the end-to-end top-down compilation pipeline (§4, Algorithm 1).

    Typical use:
    {[
      let report = Souffle.compile (Lower.run graph) in
      Fmt.pr "%a@." Souffle.summary report
    ]} *)

(** Optimization levels reproducing Table 4's ablation.  Each level includes
    the previous ones. *)
type level =
  | V0  (** plain TVM+Ansor codegen: epilogue fusion only *)
  | V1  (** + horizontal TE transformation (§6.1) *)
  | V2  (** + vertical TE transformation (§6.2) *)
  | V3  (** + resource-aware partitioning with grid synchronization (§5.4, §6.4) *)
  | V4  (** + subprogram-level pipelining and LRU tensor reuse (§6.5) *)

val level_to_string : level -> string
val level_rank : level -> int

val level_of_rank : int -> level
(** Inverse of {!level_rank}; ranks above 4 clamp to {!V4}. *)

type config = {
  device : Device.t;
  level : level;
  ansor : Ansor.config;
  search_mode : Ansor.mode;
      (** how schedules are produced: {!Ansor.Construct} (default) builds
          one schedule per TE by greedy construction under the analytic
          cost model; {!Ansor.Exhaustive} enumerates the full candidate
          space.  A failing constructive pass falls back to the exhaustive
          search (then to the reduced space) before anything degrades *)
  sched_cache : Scache.t option;
      (** persistent cross-run schedule cache; warm entries skip the Ansor
          candidate search entirely *)
  batch : int;
      (** batch lanes to compile the program at ({!Batch.apply} runs before
          any analysis); 1 compiles the program exactly as given *)
  pos : int;
      (** sequence-position bucket the program was constructed at (KV-cache
          length of a decode step); 0 means "static shape".  Purely an
          artifact-identity discriminator — the pipeline never rewrites
          the program by position *)
  mega : bool;
      (** also lower the compiled program into one persistent task-graph
          kernel ({!Megakernel}); the report's [mega] field carries the
          verified graph and its simulation *)
}

val default_config : config
(** A100, level V4, default scheduler efficiency, constructive scheduling,
    no persistent cache, batch 1, position 0, mega off. *)

val config :
  ?device:Device.t ->
  ?level:level ->
  ?ansor:Ansor.config ->
  ?search_mode:Ansor.mode ->
  ?sched_cache:Scache.t ->
  ?batch:int ->
  ?pos:int ->
  ?mega:bool ->
  unit ->
  config

(** One step of the graceful-degradation ladder: [d_subject] (the whole
    program, or one subprogram's head TE) was retried at [d_to] after
    [d_pass] failed at [d_from]. *)
type degradation = {
  d_subject : string;
  d_pass : Diag.pass;
  d_from : level;
  d_to : level;
  d_reason : string;
}

val pp_degradation : Format.formatter -> degradation -> unit

(** The mega-kernelization of a compiled program: the verified persistent
    task graph ({!Kernel_ir.taskgraph}) and its solo simulation — one
    launch charge total, [Grid_sync] barriers replaced by graph edges,
    independent tasks overlapping under the multi-stream contention model.
    Present in a report only when the compile ran with [cfg.mega] and the
    lowering passed {!Verify_ir} feasibility and {!Dataflow} provenance
    re-verification; a rejected lowering degrades to the multi-kernel
    program with warning diagnostics. *)
type mega_result = { m_graph : Kernel_ir.taskgraph; m_sim : Sim.result }

(** Everything the pipeline produced, from the analyzed input program to the
    simulated execution. *)
type report = {
  cfg : config;
  original : Program.t;
  transformed : Program.t;  (** after horizontal + vertical transformation *)
  analysis : Analysis.t;
  partition : Partition.t option;  (** [None] below V3 *)
  groups : Emit.group list;        (** one subprogram-level group per kernel
                                       before any degradation splits *)
  prog : Kernel_ir.prog;
  sim : Sim.result;
  mega : mega_result option;
      (** the persistent-kernel lowering, when [cfg.mega] and verified *)
  scheds : (string, Sched.t) Hashtbl.t;
      (** the schedule table of the successful attempt, keyed by TE name —
          kept so downstream renderings ({!te_loop_nests}) never re-run the
          Ansor search *)
  hstats : Horizontal.stats;
  vstats : Vertical.stats;
  compile_s : float;  (** wall-clock seconds spent in Souffle's own passes *)
  diags : Diag.t list;  (** every diagnostic any pass reported, in order *)
  degraded : degradation list;
      (** recovery steps taken; empty on a clean compile *)
}

val ansor_groups : Program.t -> Emit.group list
(** TVM/Ansor-style kernel grouping (each reduction absorbs its
    one-relies-on-one consumers); the V0..V2 grouping, also used by the
    Ansor baseline. *)

val ansor_groups_of_tes : Te.t list -> Emit.group list
(** {!ansor_groups} over an explicit TE list — how a cooperative subprogram
    is re-grouped when it degrades below V3. *)

val dataflow_env : Program.t -> Dataflow.env
(** The cross-kernel dataflow verifier's view of a TE program: inputs are
    DRAM-resident from the start, every other tensor's byte footprint comes
    from its [tensor_info].  Built from the $(i,transformed) program when
    checking a compiled report. *)

val compile_result :
  ?cfg:config -> ?strict:bool -> Program.t -> (report, Diag.t list) result
(** Total compilation with per-subprogram graceful degradation: when a pass
    raises (or a fault is injected, or the kernel-IR verifier rejects an
    emitted kernel), the failing unit is retried one optimization level
    lower (V4 -> V3 -> ... -> V0) instead of aborting, and the step is
    recorded in the report's [degraded] / [diags].  Returns [Error] only
    for an invalid input program, a subprogram that still fails at V0, or —
    with [strict] (default false) — any degradation at all. *)

val compile : ?cfg:config -> Program.t -> report
(** {!compile_result} with failures raised.
    @raise Invalid_argument if the program fails {!Program.validate} or
    cannot be compiled even with full degradation. *)

val compile_graph : ?cfg:config -> Dgraph.t -> report
(** [compile] composed with {!Lower.run}. *)

val verify : ?rtol:float -> report -> (unit, string) result
(** Check that the transformed program computes the same outputs as the
    original, via the reference interpreter on random inputs.  Intended for
    tests and small programs (the interpreter walks every tensor element). *)

val time_ms : report -> float
(** Simulated end-to-end latency. *)

val num_kernels : report -> int

val summary : Format.formatter -> report -> unit
(** Human-readable compile summary (TE counts, kernels, traffic, time). *)

val kernel_report : report -> Kreport.row list
(** Per-kernel counter rows: the {!Kreport} join of the simulator's
    Nsight-style counters with kernel identity (subprogram index encoded in
    the kernel name, member TE names, launch configuration). *)

val kernel_report_json : ?model:string -> report -> string
(** {!kernel_report} as JSON, stamped with model name, optimization level,
    device, and degradation count — the machine-readable form behind the
    bench tables. *)

val pp_kernel_report : Format.formatter -> report -> unit
(** {!kernel_report} as an aligned text table (the [--profile] view). *)

val cuda_source : report -> string
(** The generated kernels rendered as CUDA-flavoured source (Fig. 2 step 5
    style); documentation output, the simulator runs the kernel IR. *)

val te_loop_nests : ?limit:int -> report -> string
(** Per-TE TensorIR loop nests (tile loops bound to blockIdx/threadIdx,
    reduction splits, shared-memory staging) for the first [limit] TEs. *)

(** Compile-once artifact store: reports memoized by (model name,
    optimization level, batch, position bucket, mega), shared across
    benchmark tables and serving requests so each shape-polymorphic
    variant is compiled exactly once. *)
module Artifacts : sig
  type t

  val create : unit -> t

  val find :
    t ->
    ?batch:int ->
    ?pos:int ->
    ?mega:bool ->
    name:string ->
    level:level ->
    unit ->
    report option

  val add :
    t ->
    ?batch:int ->
    ?pos:int ->
    ?mega:bool ->
    name:string ->
    level:level ->
    report ->
    unit

  val size : t -> int
  (** Number of distinct (name, level, batch, pos, mega) entries compiled
      so far. *)

  val get :
    t ->
    ?cfg:config ->
    ?strict:bool ->
    name:string ->
    (unit -> Program.t) ->
    (report, Diag.t list) result
  (** Cached compile: the stored report for (name, [cfg.level],
      [cfg.batch], [cfg.pos], [cfg.mega]) if present, otherwise
      {!compile_result} on [gen ()], storing the result.  Model names are
      case-insensitive,
      matching {!Zoo.find}. *)
end
