lib/models/mmoe.ml: B Dgraph Expr Fmt List Op
