(* Training with Souffle (the paper's Sec. 9 future-work item): build an
   MLP, derive its backward pass with graph-level autodiff, compile the
   combined forward+backward step with the full pipeline, and run a few
   steps of gradient descent through the reference interpreter to watch the
   loss fall.

     dune exec examples/train_mlp.exe
*)

open Dgraph

let () =
  (* forward model: x -> tanh(x W1 + b1) W2 -> squared-error loss vs t *)
  let b = B.create () in
  let x = B.input b "x" [| 4; 8 |] in
  let t = B.input b "t" [| 4; 2 |] in
  let w1 = B.input b "w1" [| 8; 16 |] in
  let b1 = B.input b "b1" [| 16 |] in
  let w2 = B.input b "w2" [| 16; 2 |] in
  let h = B.add b ~name:"h" Op.Matmul [ x; w1 ] in
  let h = B.add b ~name:"hb" Op.Bias_add [ h; b1 ] in
  let h = B.add b ~name:"ha" (Op.Unary Expr.Tanh) [ h ] in
  let y = B.add b ~name:"y" Op.Matmul [ h; w2 ] in
  let e = B.add b ~name:"err" (Op.Binary Expr.Sub) [ y; t ] in
  let sq = B.add b ~name:"sq" (Op.Binary Expr.Mul) [ e; e ] in
  let r1 = B.add b ~name:"r1" (Op.Reduce { op = Te.Sum; axis = 1 }) [ sq ] in
  let r0 = B.add b ~name:"r0" (Op.Reduce { op = Te.Sum; axis = 0 }) [ r1 ] in
  let loss = B.add b ~name:"loss" (Op.Reshape [| 1 |]) [ r0 ] in
  let fwd = B.finish b ~outputs:[ loss ] in

  (* derive the backward pass *)
  let params = [ "w1"; "b1"; "w2" ] in
  let ad = Autodiff.backward ~loss ~wrt:params fwd in
  Fmt.pr "forward graph: %d nodes; forward+backward: %d nodes@."
    (Dgraph.num_nodes fwd)
    (Dgraph.num_nodes ad.Autodiff.graph);
  Fmt.pr "tensors kept in global memory for the backward pass: %s@."
    (String.concat ", " ad.Autodiff.saved);

  (* compile the whole training step with Souffle *)
  let p = Lower.run ad.Autodiff.graph in
  let report = Souffle.compile p in
  Fmt.pr "@.compiled training step: %d kernels, %.3f ms simulated, %d TEs@."
    (Souffle.num_kernels report)
    (Souffle.time_ms report)
    (List.length report.Souffle.transformed.Program.tes);
  (match Souffle.verify ~rtol:1e-3 report with
  | Ok () -> Fmt.pr "semantic check: PASS@."
  | Error m -> Fmt.pr "semantic check FAILED: %s@." m);

  (* a few steps of plain gradient descent via the reference interpreter *)
  let env = ref (Interp.random_inputs ~seed:3 p) in
  let lr = 0.02 in
  Fmt.pr "@.training (gradient descent, lr=%.2f):@." lr;
  for step = 0 to 9 do
    let results = Interp.run_env p !env in
    let l = Nd.get_flat (Interp.lookup results "loss") 0 in
    if step mod 2 = 0 then Fmt.pr "  step %2d  loss %.5f@." step l;
    env :=
      List.fold_left
        (fun env param ->
          match Autodiff.gradient ad param with
          | None -> env
          | Some gname ->
              let g = Interp.lookup results gname in
              let w = Interp.lookup env param in
              Program.SMap.add param
                (Nd.map2 (fun wv gv -> wv -. (lr *. gv)) w g)
                env)
        !env params
  done;
  let final = Interp.run_env p !env in
  Fmt.pr "  final    loss %.5f@."
    (Nd.get_flat (Interp.lookup final "loss") 0)
