(** Deterministic open-loop workload generator for the serving layer.

    Requests arrive by a Poisson process (exponential inter-arrival gaps at
    the offered rate) and draw their model from a weighted mix.  Everything
    is derived from one splitmix64 {!Rng} seed, so the same
    (seed, rate, mix) triple always produces byte-identical workloads —
    the determinism contract the serving tests and benchmarks rely on. *)

type request = {
  rq_id : int;            (** arrival order, dense from 0 *)
  rq_model : string;
  rq_arrival_us : float;  (** simulated arrival time *)
  rq_slo_us : float option;
      (** latency SLO: the request must finish within this many us of its
          arrival or it is worthless to the client ([None] = no deadline) *)
  rq_gen : int;
      (** tokens to generate: 0 is the classic one-shot request; [n > 0]
          makes this a generation request served as one prefill plus [n]
          single-token decode steps *)
}

(** Weighted model mix; weights need not be normalized. *)
type mix = (string * float) list

(** Parse ["bert=2,mmoe"]-style mix specs: comma-separated model names,
    each optionally weighted with [=w] (default weight 1). *)
let parse_mix (s : string) : (mix, string) result =
  let parts =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  if parts = [] then Error "empty model mix"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          match String.index_opt p '=' with
          | None -> go ((p, 1.) :: acc) rest
          | Some i -> (
              let name = String.trim (String.sub p 0 i) in
              let w =
                String.trim (String.sub p (i + 1) (String.length p - i - 1))
              in
              match float_of_string_opt w with
              | Some w when w > 0. && name <> "" -> go ((name, w) :: acc) rest
              | _ -> Error (Fmt.str "bad mix entry %S (want model=weight)" p)))
    in
    go [] parts

let pick_model (rng : Rng.t) (mix : mix) : string =
  let total = List.fold_left (fun a (_, w) -> a +. w) 0. mix in
  let x = Rng.float rng *. total in
  let rec go acc = function
    | [] -> invalid_arg "Workload.pick_model: empty mix"
    | [ (m, _) ] -> m
    | (m, w) :: rest -> if x < acc +. w then m else go (acc +. w) rest
  in
  go 0. mix

(** [generate ~seed ~rate_rps ~requests mix] draws [requests] arrivals.
    A non-positive [rate_rps] means a closed batch: everything arrives at
    time zero (the saturation workload).  [slo_us] stamps every request
    with that latency SLO (default: none); [gen] stamps every request with
    that many decode tokens (default 0 = one-shot). *)
let generate ~seed ~rate_rps ~requests ?slo_us ?(gen = 0) (mix : mix) :
    request list =
  if requests < 0 then invalid_arg "Workload.generate: negative request count";
  if mix = [] then invalid_arg "Workload.generate: empty mix";
  if gen < 0 then invalid_arg "Workload.generate: negative gen length";
  (match slo_us with
  | Some s when s <= 0. -> invalid_arg "Workload.generate: non-positive SLO"
  | _ -> ());
  let rng = Rng.create seed in
  let mean_gap_us = if rate_rps > 0. then 1e6 /. rate_rps else 0. in
  let now = ref 0. in
  List.init requests (fun i ->
      let gap =
        if mean_gap_us <= 0. then 0.
        else -.log (1. -. Rng.float rng) *. mean_gap_us
      in
      now := !now +. gap;
      {
        rq_id = i;
        rq_model = pick_model rng mix;
        rq_arrival_us = !now;
        rq_slo_us = slo_us;
        rq_gen = gen;
      })
