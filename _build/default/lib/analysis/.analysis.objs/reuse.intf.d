lib/analysis/reuse.mli: Format Program
