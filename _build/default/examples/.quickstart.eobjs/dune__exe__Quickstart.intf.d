examples/quickstart.mli:
