lib/models/bert.ml: B Dgraph Dtype Expr Fmt Mcommon Op
