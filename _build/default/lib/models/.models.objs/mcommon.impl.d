lib/models/mcommon.ml: Array B Dgraph Expr Op
