(** A TE program: model inputs (including weights), a topologically ordered
    list of TEs, and the names of the tensors a user observes.  This is the
    unit the global analysis of §5 operates on. *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)

type tensor_info = { shape : Shape.t; dtype : Dtype.t }

type t = {
  inputs : (string * tensor_info) list;  (** externally supplied tensors *)
  tes : Te.t list;                       (** in topological order *)
  outputs : string list;                 (** observable results *)
}

let make ~inputs ~tes ~outputs = { inputs; tes; outputs }

let input_names p = List.map fst p.inputs

let te_names p = List.map (fun (te : Te.t) -> te.Te.name) p.tes

let find_te p name =
  List.find_opt (fun (te : Te.t) -> te.Te.name = name) p.tes

let find_te_exn p name =
  match find_te p name with
  | Some te -> te
  | None -> invalid_arg ("Program.find_te_exn: no TE " ^ name)

(** Shape and dtype of any tensor in the program (input or TE output). *)
let tensor_info p name : tensor_info option =
  match List.assoc_opt name p.inputs with
  | Some i -> Some i
  | None ->
      Option.map
        (fun (te : Te.t) -> { shape = te.Te.out_shape; dtype = te.Te.dtype })
        (find_te p name)

let tensor_info_exn p name =
  match tensor_info p name with
  | Some i -> i
  | None -> invalid_arg ("Program.tensor_info_exn: unknown tensor " ^ name)

(** [producer p name] is the TE defining [name], or [None] for inputs. *)
let producer = find_te

(** Map tensor name -> TEs that read it. *)
let consumers p : Te.t list SMap.t =
  List.fold_left
    (fun acc (te : Te.t) ->
      List.fold_left
        (fun acc input ->
          let cur = Option.value ~default:[] (SMap.find_opt input acc) in
          SMap.add input (cur @ [ te ]) acc)
        acc (Te.inputs te))
    SMap.empty p.tes

(** Direct dependency edges as (producer_te_name, consumer_te_name). *)
let edges p : (string * string) list =
  let defined = SSet.of_list (te_names p) in
  List.concat_map
    (fun (te : Te.t) ->
      List.filter_map
        (fun input ->
          if SSet.mem input defined then Some (input, te.Te.name) else None)
        (Te.inputs te))
    p.tes

(** TEs reachable from [te] downstream (its transitive consumers). *)
let descendants p name =
  let cons = consumers p in
  let rec go visited frontier =
    match frontier with
    | [] -> visited
    | n :: rest ->
        let next =
          match SMap.find_opt n cons with
          | None -> []
          | Some tes ->
              List.filter_map
                (fun (te : Te.t) ->
                  if SSet.mem te.Te.name visited then None else Some te.Te.name)
                tes
        in
        go (List.fold_left (fun v x -> SSet.add x v) visited next) (rest @ next)
  in
  go SSet.empty [ name ]

(** Does [a] (transitively) feed [b]? *)
let depends ~on:a p b = SSet.mem b (descendants p a)

(** Check that every read is either an input or an earlier TE, and every
    output exists — i.e. the list really is in topological order. *)
let validate p =
  let rec go seen = function
    | [] ->
        let missing =
          List.filter (fun o -> not (SSet.mem o seen)) p.outputs
        in
        if missing = [] then Ok ()
        else Error ("Program: undefined outputs: " ^ String.concat "," missing)
    | (te : Te.t) :: rest -> (
        match Te.validate te with
        | Error m -> Error m
        | Ok () ->
            let unknown =
              List.filter (fun i -> not (SSet.mem i seen)) (Te.inputs te)
            in
            if unknown <> [] then
              Error
                (Fmt.str "Program: TE %s reads undefined tensors: %s" te.Te.name
                   (String.concat "," unknown))
            else if SSet.mem te.Te.name seen then
              Error ("Program: duplicate tensor " ^ te.Te.name)
            else go (SSet.add te.Te.name seen) rest)
  in
  go (SSet.of_list (input_names p)) p.tes

(** Tensors read by TEs appearing after the given position, plus program
    outputs — the live set used for buffer-reuse decisions. *)
let live_after p pos =
  let rec drop i = function
    | [] -> []
    | _ :: rest when i > 0 -> drop (i - 1) rest
    | l -> l
  in
  let later = drop (pos + 1) p.tes in
  let read_later =
    List.fold_left
      (fun acc te -> SSet.union acc (SSet.of_list (Te.inputs te)))
      SSet.empty later
  in
  SSet.union read_later (SSet.of_list p.outputs)

(** Stable topological re-sort: keeps the original relative order wherever
    dependencies allow.  Used after transformations that insert or merge TEs
    out of place. *)
let toposort (p : t) : t =
  let defined = SSet.of_list (input_names p) in
  let rec pick placed ready rest =
    match
      List.partition
        (fun (te : Te.t) ->
          List.for_all (fun i -> SSet.mem i ready) (Te.inputs te))
        rest
    with
    | [], [] -> List.rev placed
    | [], stuck ->
        invalid_arg
          ("Program.toposort: cycle or undefined input involving "
          ^ String.concat ","
              (List.map (fun (te : Te.t) -> te.Te.name) stuck))
    | now, later ->
        let ready' =
          List.fold_left
            (fun s (te : Te.t) -> SSet.add te.Te.name s)
            ready now
        in
        pick (List.rev_append now placed) ready' later
  in
  { p with tes = pick [] defined p.tes }

let total_arith_ops p =
  List.fold_left (fun acc te -> acc + Te.arith_ops te) 0 p.tes

let pp ppf p =
  Fmt.pf ppf "@[<v>inputs:@,";
  List.iter
    (fun (n, i) ->
      Fmt.pf ppf "  %s : %a %s@," n Dtype.pp i.dtype (Shape.to_string i.shape))
    p.inputs;
  Fmt.pf ppf "tes:@,";
  List.iter (fun te -> Fmt.pf ppf "  %a@," Te.pp te) p.tes;
  Fmt.pf ppf "outputs: %s@]" (String.concat ", " p.outputs)

let to_string p = Fmt.str "%a" pp p
