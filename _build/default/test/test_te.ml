(* Tests for the TE IR, the builder DSL and the reference interpreter. *)

open Expr

let nd_testable = Alcotest.testable Nd.pp (Nd.allclose ~rtol:1e-5 ~atol:1e-6)

let env2 l = Interp.env_of_list l

let test_matmul_vs_naive () =
  let m, n, k = (3, 4, 5) in
  let rng = Rng.create 1 in
  let a = Nd.random rng [| m; k |] and b = Nd.random rng [| k; n |] in
  let te = Builder.matmul ~name:"c" ~m ~n ~k "a" "b" in
  let c = Interp.eval_te (env2 [ ("a", a); ("b", b) ]) te in
  let expected =
    Nd.init [| m; n |] (fun i ->
        let acc = ref 0. in
        for kk = 0 to k - 1 do
          acc := !acc +. (Nd.get a [| i.(0); kk |] *. Nd.get b [| kk; i.(1) |])
        done;
        !acc)
  in
  Alcotest.check nd_testable "matmul" expected c

let test_matmul_nt () =
  let m, n, k = (3, 4, 5) in
  let rng = Rng.create 2 in
  let a = Nd.random rng [| m; k |] and bt = Nd.random rng [| n; k |] in
  let te = Builder.matmul_nt ~name:"c" ~m ~n ~k "a" "bt" in
  let c = Interp.eval_te (env2 [ ("a", a); ("bt", bt) ]) te in
  let b = Nd.init [| k; n |] (fun i -> Nd.get bt [| i.(1); i.(0) |]) in
  let via_nn =
    Interp.eval_te
      (env2 [ ("a", a); ("b", b) ])
      (Builder.matmul ~name:"c" ~m ~n ~k "a" "b")
  in
  Alcotest.check nd_testable "matmul_nt = matmul of transpose" via_nn c

let test_gemv () =
  let w = Nd.of_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let x = Nd.of_array [| 3 |] [| 1.; 1.; 1. |] in
  let te = Builder.gemv ~name:"y" ~m:2 ~k:3 "w" "x" in
  let y = Interp.eval_te (env2 [ ("w", w); ("x", x) ]) te in
  Alcotest.check nd_testable "gemv" (Nd.of_array [| 2 |] [| 6.; 15. |]) y

let test_reduce_max () =
  let a = Nd.of_array [| 2; 3 |] [| 1.; 7.; 3.; -1.; -5.; -2. |] in
  let te = Builder.reduce_last ~name:"m" ~m:2 ~k:3 Te.Max "a" in
  let m = Interp.eval_te (env2 [ ("a", a) ]) te in
  Alcotest.check nd_testable "rowmax" (Nd.of_array [| 2 |] [| 7.; -1. |]) m

let test_permute () =
  let a = Nd.init [| 2; 3; 4 |] (fun i -> float_of_int (Shape.ravel [| 2; 3; 4 |] i)) in
  let te = Builder.permute ~name:"p" ~in_shape:[| 2; 3; 4 |] ~perm:[| 2; 0; 1 |] "a" in
  let p = Interp.eval_te (env2 [ ("a", a) ]) te in
  Alcotest.(check (array int)) "shape" [| 4; 2; 3 |] (Nd.shape p);
  Alcotest.(check (float 0.)) "value moved" (Nd.get a [| 1; 2; 3 |])
    (Nd.get p [| 3; 1; 2 |])

let test_reshape () =
  let a = Nd.init [| 3; 4 |] (fun i -> float_of_int ((i.(0) * 4) + i.(1))) in
  let te = Builder.reshape ~name:"r" ~in_shape:[| 3; 4 |] ~out_shape:[| 2; 6 |] "a" in
  let r = Interp.eval_te (env2 [ ("a", a) ]) te in
  (* row-major reshape preserves the flat order *)
  let ok = ref true in
  for i = 0 to 11 do
    if Nd.get_flat r i <> Nd.get_flat a i then ok := false
  done;
  Alcotest.(check bool) "flat order preserved" true !ok

let test_slice_strided () =
  let a = Nd.init [| 4; 8 |] (fun i -> float_of_int ((i.(0) * 8) + i.(1))) in
  let te =
    Builder.strided_slice ~name:"s" ~in_shape:[| 4; 8 |] ~axis:0 ~start:0
      ~stride:2 ~size:2 "a"
  in
  let s = Interp.eval_te (env2 [ ("a", a) ]) te in
  Alcotest.(check (float 0.)) "s[1,3] = a[2,3]" (Nd.get a [| 2; 3 |])
    (Nd.get s [| 1; 3 |])

let test_concat2 () =
  let a = Nd.create [| 2; 3 |] 1. and b = Nd.create [| 4; 3 |] 2. in
  let te =
    Builder.concat2 ~name:"c" ~axis:0 ~shape_a:[| 2; 3 |] ~shape_b:[| 4; 3 |]
      "a" "b"
  in
  let c = Interp.eval_te (env2 [ ("a", a); ("b", b) ]) te in
  Alcotest.(check (float 0.)) "from a" 1. (Nd.get c [| 1; 2 |]);
  Alcotest.(check (float 0.)) "from b" 2. (Nd.get c [| 2; 0 |]);
  Alcotest.(check (float 0.)) "from b end" 2. (Nd.get c [| 5; 2 |])

let test_softmax_program () =
  let m, k = (3, 6) in
  let rng = Rng.create 5 in
  let x = Nd.random rng [| m; k |] in
  let tes = Builder.softmax2d ~name:"sm" ~m ~k "x" in
  let p =
    Program.make
      ~inputs:[ ("x", { Program.shape = [| m; k |]; dtype = Dtype.F32 }) ]
      ~tes ~outputs:[ "sm" ]
  in
  (match Program.validate p with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let out = List.assoc "sm" (Interp.run p (env2 [ ("x", x) ])) in
  (* rows sum to one and values are positive *)
  for i = 0 to m - 1 do
    let s = ref 0. in
    for j = 0 to k - 1 do
      let v = Nd.get out [| i; j |] in
      Alcotest.(check bool) "positive" true (v > 0.);
      s := !s +. v
    done;
    Alcotest.(check (float 1e-6)) "row sums to 1" 1. !s
  done

let test_validate_catches_bad_var () =
  let te =
    Te.compute ~name:"bad" ~shape:[| 4 |] (Read ("x", [ Index.Ov 3 ]))
  in
  Alcotest.(check bool) "invalid out var" true
    (Result.is_error (Te.validate te))

let test_validate_catches_rv_in_compute () =
  let te =
    Te.compute ~name:"bad" ~shape:[| 4 |] (Read ("x", [ Index.Rv 0 ]))
  in
  Alcotest.(check bool) "rv in compute rejected" true
    (Result.is_error (Te.validate te))

let test_program_validate_topo () =
  let te1 = Builder.unary ~name:"b" ~shape:[| 4 |] Relu "undefined" in
  let p = Program.make ~inputs:[] ~tes:[ te1 ] ~outputs:[ "b" ] in
  Alcotest.(check bool) "undefined input caught" true
    (Result.is_error (Program.validate p))

let test_program_deps () =
  let i = ("x", { Program.shape = [| 4 |]; dtype = Dtype.F32 }) in
  let a = Builder.unary ~name:"a" ~shape:[| 4 |] Relu "x" in
  let b = Builder.unary ~name:"b" ~shape:[| 4 |] Exp "a" in
  let c = Builder.unary ~name:"c" ~shape:[| 4 |] Neg "a" in
  let p = Program.make ~inputs:[ i ] ~tes:[ a; b; c ] ~outputs:[ "b"; "c" ] in
  Alcotest.(check bool) "a feeds b" true (Program.depends ~on:"a" p "b");
  Alcotest.(check bool) "b does not feed c" false (Program.depends ~on:"b" p "c");
  let edges = Program.edges p in
  Alcotest.(check int) "two edges" 2 (List.length edges);
  let cons = Program.consumers p in
  Alcotest.(check int) "a has 2 consumers" 2
    (List.length (Program.SMap.find "a" cons))

let test_live_after () =
  let i = ("x", { Program.shape = [| 4 |]; dtype = Dtype.F32 }) in
  let a = Builder.unary ~name:"a" ~shape:[| 4 |] Relu "x" in
  let b = Builder.unary ~name:"b" ~shape:[| 4 |] Exp "a" in
  let c = Builder.unary ~name:"c" ~shape:[| 4 |] Neg "b" in
  let p = Program.make ~inputs:[ i ] ~tes:[ a; b; c ] ~outputs:[ "c" ] in
  (* after position 1 (TE b), tensor a is dead, b is live *)
  let live = Program.live_after p 1 in
  Alcotest.(check bool) "b live" true (Program.SSet.mem "b" live);
  Alcotest.(check bool) "a dead" false (Program.SSet.mem "a" live)

let test_arith_ops () =
  let te = Builder.matmul ~name:"c" ~m:4 ~n:4 ~k:8 "a" "b" in
  (* mul + add per reduction point: 2 * 4*4*8 = 256 *)
  Alcotest.(check int) "gemm flops" 256 (Te.arith_ops te);
  let ew = Builder.binary ~name:"e" ~shape:[| 10 |] Add "a" "b" in
  Alcotest.(check int) "elementwise flops" 10 (Te.arith_ops ew)

let test_f16_rounding_applied () =
  let te =
    Te.compute ~name:"h" ~shape:[| 1 |] ~dtype:Dtype.F16
      (Binop (Add, Read ("x", [ Index.Ov 0 ]), Const 1e-4))
  in
  let x = Nd.of_array [| 1 |] [| 1.0 |] in
  let h = Interp.eval_te (env2 [ ("x", x) ]) te in
  (* 1 + 1e-4 rounds back to 1 in f16 *)
  Alcotest.(check (float 0.)) "rounded" 1.0 (Nd.get h [| 0 |])

let test_erf_accuracy () =
  (* spot-check our erf approximation against known values *)
  let cases = [ (0., 0.); (1., 0.8427007929); (-1., -0.8427007929); (2., 0.9953222650) ] in
  List.iter
    (fun (x, expected) ->
      Alcotest.(check (float 1e-5)) (Fmt.str "erf(%g)" x) expected
        (Expr.apply_unop Erf x))
    cases

let suite =
  [
    Alcotest.test_case "matmul vs naive" `Quick test_matmul_vs_naive;
    Alcotest.test_case "matmul_nt" `Quick test_matmul_nt;
    Alcotest.test_case "gemv" `Quick test_gemv;
    Alcotest.test_case "reduce max" `Quick test_reduce_max;
    Alcotest.test_case "permute" `Quick test_permute;
    Alcotest.test_case "reshape" `Quick test_reshape;
    Alcotest.test_case "strided slice" `Quick test_slice_strided;
    Alcotest.test_case "concat2" `Quick test_concat2;
    Alcotest.test_case "softmax program" `Quick test_softmax_program;
    Alcotest.test_case "validate bad out var" `Quick test_validate_catches_bad_var;
    Alcotest.test_case "validate rv in compute" `Quick test_validate_catches_rv_in_compute;
    Alcotest.test_case "program validate topo" `Quick test_program_validate_topo;
    Alcotest.test_case "program deps" `Quick test_program_deps;
    Alcotest.test_case "live after" `Quick test_live_after;
    Alcotest.test_case "arith ops" `Quick test_arith_ops;
    Alcotest.test_case "f16 rounding" `Quick test_f16_rounding_applied;
    Alcotest.test_case "erf accuracy" `Quick test_erf_accuracy;
  ]
