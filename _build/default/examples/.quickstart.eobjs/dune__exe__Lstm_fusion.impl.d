examples/lstm_fusion.ml: Analysis Baseline Counters Fmt Horizontal List Lower Lstm Program Reuse Sim Souffle String
