(** Tensor-level data-reuse analysis (§5.1).

    Gathers every tensor read by more than one TE.  Consumers that are
    pairwise independent give *spatial* reuse (horizontal transformation can
    fuse them so the tensor is loaded once); consumers on a dependence chain
    give *temporal* reuse (the §6.5 software cache keeps the tensor on-chip
    between uses). *)

type entry = {
  tensor : string;
  consumers : string list;  (** TE names reading the tensor *)
}

type t = {
  spatial : entry list;
  temporal : entry list;
}

val find : Program.t -> t

val spatial_tensors : t -> string list
val temporal_tensors : t -> string list
val is_temporal : t -> string -> bool
val is_spatial : t -> string -> bool
val pp : Format.formatter -> t -> unit
