(** MMoE — Multi-gate Mixture-of-Experts (Ma et al., KDD'18), the base
    model of Table 2 on a synthetic census-style input.  Eight one-hidden-
    layer expert networks share the input; two task gates softmax over the
    experts and mix their outputs; two small towers produce the task
    predictions.  Batch 1, FP32.

    TE names are prefixed [moe_gate] on the gating path: the Rammer
    baseline declines to compile mixture-of-experts graphs (Table 3
    "Failed"), and keys off this marker. *)

open Dgraph

type config = {
  input_dim : int;
  num_experts : int;
  expert_hidden : int;
  tower_hidden : int;
  num_tasks : int;
}

let base =
  { input_dim = 100; num_experts = 8; expert_hidden = 16; tower_hidden = 8;
    num_tasks = 2 }

let tiny =
  { input_dim = 6; num_experts = 3; expert_hidden = 4; tower_hidden = 3;
    num_tasks = 2 }

let create ?(cfg = base) () : Dgraph.t =
  let b = B.create () in
  let d = cfg.input_dim and e = cfg.num_experts and eh = cfg.expert_hidden in
  let x = B.input b "features" [| 1; d |] in
  (* experts: independent same-shaped GEMMs — horizontal-transform fodder *)
  let experts =
    List.init e (fun i ->
        let w = B.input b (Fmt.str "expert%d_w" i) [| d; eh |] in
        let bias = B.input b (Fmt.str "expert%d_b" i) [| eh |] in
        let m = B.add b ~name:(Fmt.str "expert%d_mm" i) Op.Matmul [ x; w ] in
        let m = B.add b ~name:(Fmt.str "expert%d_bias" i) Op.Bias_add [ m; bias ] in
        B.add b ~name:(Fmt.str "expert%d_out" i) (Op.Unary Expr.Relu) [ m ])
  in
  (* stack expert outputs into (e, eh) *)
  let stacked =
    B.add b ~name:"experts_stacked" (Op.Concat { axis = 0 }) experts
  in
  let outputs =
    List.init cfg.num_tasks (fun t ->
        let wg = B.input b (Fmt.str "gate%d_w" t) [| d; e |] in
        let logits =
          B.add b ~name:(Fmt.str "moe_gate%d_logits" t) Op.Matmul [ x; wg ]
        in
        let probs =
          B.add b ~name:(Fmt.str "moe_gate%d_probs" t) Op.Softmax [ logits ]
        in
        (* mixture: (1, e) x (e, eh) -> (1, eh) *)
        let mixed =
          B.add b ~name:(Fmt.str "task%d_mix" t) Op.Matmul [ probs; stacked ]
        in
        let wt = B.input b (Fmt.str "tower%d_w" t) [| eh; cfg.tower_hidden |] in
        let bt = B.input b (Fmt.str "tower%d_b" t) [| cfg.tower_hidden |] in
        let h = B.add b ~name:(Fmt.str "tower%d_mm" t) Op.Matmul [ mixed; wt ] in
        let h = B.add b ~name:(Fmt.str "tower%d_bias" t) Op.Bias_add [ h; bt ] in
        let h = B.add b ~name:(Fmt.str "tower%d_relu" t) (Op.Unary Expr.Relu) [ h ] in
        let wo = B.input b (Fmt.str "head%d_w" t) [| cfg.tower_hidden; 1 |] in
        let logit = B.add b ~name:(Fmt.str "head%d_mm" t) Op.Matmul [ h; wo ] in
        B.add b ~name:(Fmt.str "task%d_pred" t) (Op.Unary Expr.Sigmoid) [ logit ])
  in
  B.finish b ~outputs
