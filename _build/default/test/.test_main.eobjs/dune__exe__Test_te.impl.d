test/test_te.ml: Alcotest Array Builder Dtype Expr Fmt Index Interp List Nd Program Result Rng Shape Te
