(** Seeded, deterministic fault injection.

    Tests (and the CLI's [--inject]) arm exactly one fault; pipeline passes
    call {!trip} at their entry points and {!smem_factor} / {!grid_factor}
    when finalizing kernel resource estimates.  A tripped fault raises
    {!Diag.Injected} (or corrupts the estimate), which the degradation
    ladder in [Souffle.compile] must absorb — proving that graceful
    degradation actually engages, not just that the happy path works.

    Determinism: a fault trips on the [skip]-th matching invocation (derived
    from [seed] by a fixed LCG step) and at most [times] times, so a given
    (seed, spec) pair always fails the same subprogram of the same model.

    Concurrency: the armed fault is keyed per domain ([Domain.DLS]), i.e.
    per compilation context — the parallel Ansor search and concurrent
    compiles each see their own (initially disarmed) slot instead of racing
    on one global cell. *)

type spec =
  | Fail_pass of Diag.pass  (** the pass raises when it next runs *)
  | Corrupt_smem of int
      (** multiply emitted kernels' shared-memory estimate — the kernel-IR
          verifier must reject the corrupted kernel *)
  | Corrupt_grid of int  (** multiply emitted kernels' grid size *)
  | Mistag_load
      (** make the emitter classify one on-device re-read as a DRAM
          first-touch [Ldg] — the cross-kernel dataflow verifier must
          reject the mistagged kernel *)

let spec_to_string = function
  | Fail_pass p -> Diag.pass_name p
  | Corrupt_smem f -> Fmt.str "smem:%d" f
  | Corrupt_grid f -> Fmt.str "grid:%d" f
  | Mistag_load -> "mistag"

(** Parse a CLI fault spec: a pass name ("horizontal", "emit", ...),
    "smem[:factor]" / "grid[:factor]", or "mistag". *)
let parse (s : string) : (spec, string) result =
  let name, factor =
    match String.index_opt s ':' with
    | Some i ->
        ( String.sub s 0 i,
          int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
    | None -> (s, None)
  in
  let factor = Option.value ~default:64 factor in
  match name with
  | "smem" -> Ok (Corrupt_smem factor)
  | "grid" -> Ok (Corrupt_grid factor)
  | "mistag" -> Ok Mistag_load
  | _ -> (
      match Diag.pass_of_string name with
      | Some p -> Ok (Fail_pass p)
      | None ->
          Error
            (Fmt.str
               "unknown fault %S (expected a pass name, smem[:N], \
                grid[:N], or mistag)"
               s))

type armed = {
  spec : spec;
  mutable skip : int;       (* matching invocations to let through first *)
  mutable remaining : int;  (* how many times to trip *)
  mutable trips : int;      (* observed trips, for tests *)
}

(* The armed fault is domain-local state: each domain (compilation context)
   gets its own slot, so the parallel Ansor search — and, eventually,
   concurrent compilations — cannot race on one global cell or trip a fault
   armed by another context.  Freshly spawned domains start disarmed. *)
let state_key : armed option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let state () = Domain.DLS.get state_key

(* One multiplicative-congruential step; keeps equal seeds reproducible and
   spreads consecutive seeds over the first few invocations. *)
let skip_of_seed seed = if seed = 0 then 0 else (seed * 48271 + 11) mod 3

let arm ?(seed = 0) ?(times = 1) spec =
  state ()
  := Some { spec; skip = skip_of_seed seed; remaining = times; trips = 0 }

let disarm () = state () := None
let armed () = !(state ()) <> None
let trips () = match !(state ()) with Some a -> a.trips | None -> 0

(* Consume one matching invocation; [Some a] iff the fault fires now. *)
let fire (matches : spec -> bool) : armed option =
  match !(state ()) with
  | Some a when matches a.spec ->
      if a.skip > 0 then begin
        a.skip <- a.skip - 1;
        None
      end
      else if a.remaining > 0 then begin
        a.remaining <- a.remaining - 1;
        a.trips <- a.trips + 1;
        Some a
      end
      else None
  | _ -> None

(** Called at a pass entry point: raises {!Diag.Injected} when the armed
    fault targets [pass] and its trigger count is reached. *)
let trip ?subject (pass : Diag.pass) : unit =
  match fire (function Fail_pass p -> p = pass | _ -> false) with
  | Some _ ->
      raise
        (Diag.Injected
           (Diag.error ?subject
              ~hint:"injected fault; retry at a lower optimization level" pass
              "injected failure (fault-injection harness)"))
  | None -> ()

(** Multiplier to apply to an emitted kernel's shared-memory estimate
    (1 when no smem-corruption fault fires on this invocation). *)
let smem_factor () : int =
  match fire (function Corrupt_smem _ -> true | _ -> false) with
  | Some { spec = Corrupt_smem f; _ } -> f
  | _ -> 1

(** Same for the launch-grid size. *)
let grid_factor () : int =
  match fire (function Corrupt_grid _ -> true | _ -> false) with
  | Some { spec = Corrupt_grid f; _ } -> f
  | _ -> 1

(** [true] when the armed mistag fault fires on this load classification:
    the emitter then deliberately issues an on-device re-read as a DRAM
    first-touch [Ldg], which the dataflow verifier must catch. *)
let mistag_load () : bool =
  match fire (function Mistag_load -> true | _ -> false) with
  | Some _ -> true
  | None -> false

(** Arm [spec], run [f], always disarm; returns [f ()]'s result together
    with the number of times the fault tripped. *)
let with_fault ?seed ?times spec (f : unit -> 'a) : 'a * int =
  arm ?seed ?times spec;
  Fun.protect ~finally:disarm (fun () ->
      let v = f () in
      (v, trips ()))
