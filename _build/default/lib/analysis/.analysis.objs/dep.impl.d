lib/analysis/dep.ml: Amap Array Fmt Index List String Te
