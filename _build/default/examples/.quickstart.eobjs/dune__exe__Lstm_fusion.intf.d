examples/lstm_fusion.mli:
