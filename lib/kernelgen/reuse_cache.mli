(** Software-managed shared-memory tensor cache with LRU replacement
    (§6.5, "Tensor reuse optimization").

    Souffle scans a fused subprogram's instructions linearly, keeping tensor
    buffers in shared memory until it is exhausted, then spills the
    least-recently-used buffer to global memory.  {!Emit} drives this module
    and turns hits/misses/spills into memory traffic. *)

type t

type event =
  | Hit                    (** resident: a shared-memory read *)
  | Miss                   (** not resident *)
  | Inserted
  | Rejected               (** larger than the whole cache *)
  | Spilled of (string * int) list
      (** these dirty victims (tensor, byte footprint) were written back *)

val create : capacity:int -> t
(** [capacity] in bytes. *)

val mem : t -> string -> bool
val used : t -> int
val capacity : t -> int

val resident : t -> string list
(** Most-recently-used first. *)

val touch : t -> string -> event
(** Record a read; [Hit] refreshes recency. *)

val insert : t -> tensor:string -> bytes:int -> dirty:bool -> event
(** Insert a buffer just produced on-chip; [dirty] means global memory does
    not hold the data yet, so eviction must write it back. *)

val clean : t -> string -> unit
(** Mark a tensor as also stored in global memory. *)

val clear : t -> unit
(** Kernel boundary: shared memory does not persist. *)
