(** Evaluation-run accounting: which models compiled clean, which degraded.

    The bench harness records one entry per compiled model; at the end of
    the run the log prints a summary and decides the process exit code, so
    an evaluation driven with [--strict-bench] fails loudly instead of
    silently publishing tables measured on degraded kernels. *)

type entry = {
  model : string;
  degraded_steps : int;  (** graceful-degradation retries taken *)
  errors : int;          (** error-severity diagnostics reported *)
}

type t = { mutable entries : entry list (* reverse record order *) }

let create () = { entries = [] }

let record (t : t) ~model ~degraded_steps ~errors =
  t.entries <- { model; degraded_steps; errors } :: t.entries

let entries (t : t) = List.rev t.entries

let clean (e : entry) = e.degraded_steps = 0 && e.errors = 0

let dirty (t : t) = List.filter (fun e -> not (clean e)) (entries t)

let any_degraded (t : t) = dirty t <> []

(** Exit code the bench process should use: 0 when every recorded compile
    was clean or strictness is off; 3 when [strict] and any model degraded
    or errored (distinct from the CLI's 1 = compile error, 2 = crash). *)
let exit_code ~strict (t : t) : int =
  if strict && any_degraded t then 3 else 0

let pp ppf (t : t) =
  let es = entries t in
  let d = dirty t in
  Fmt.pf ppf "@[<v>compiled %d model configuration(s): %d clean, %d degraded"
    (List.length es)
    (List.length es - List.length d)
    (List.length d);
  List.iter
    (fun e ->
      Fmt.pf ppf "@,  %s: %d degradation step(s), %d error diagnostic(s)"
        e.model e.degraded_steps e.errors)
    d;
  Fmt.pf ppf "@]"
