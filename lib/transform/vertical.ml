(** Vertical TE transformation (§6.2, Fig. 4).

    Chains of one-relies-on-one TEs are collapsed into a single semantically
    equivalent TE by composing their index mapping functions — Eq. 2's
    [f_{i+1,i}(v) = M_{i+1}(M_i v + c_i) + c_{i+1}] realized as substitution
    of the producer's body into the consumer, followed by quasi-affine
    simplification.  Data-movement TEs (reshape, transpose, slice, ...) are
    additionally folded into reduction consumers, which is how Souffle
    "eventually eliminates all element-wise memory operators" (§2.3). *)

(** Substitute every read of [producer]'s output inside [expr] by the
    producer's body with its output variables replaced by the access
    indices.  [producer] must be a [Compute] TE. *)
let inline_read (producer : Te.t) (expr : Expr.t) : Expr.t =
  let body = Te.body_expr producer in
  Expr.map_reads
    (fun name idxs ->
      if name = producer.Te.name then begin
        let arr = Array.of_list idxs in
        Expr.subst_out
          (fun k ->
            if k < Array.length arr then arr.(k)
            else invalid_arg "Vertical.inline_read: rank mismatch")
          body
      end
      else Expr.Read (name, idxs))
    expr

(** Inline [producer] into [consumer], simplifying the composed index
    expressions against the consumer's iteration space. *)
let fuse ~(producer : Te.t) ~(consumer : Te.t) : Te.t =
  assert (not (Te.has_reduction producer));
  let fused = Te.map_body (inline_read producer) consumer in
  let ov_ext = consumer.Te.out_shape and rv_ext = Te.reduce_axes consumer in
  Te.map_body (Expr.map_index (Index.simplify ~ov_ext ~rv_ext)) fused

type stats = { chains_fused : int; movement_folded : int }

(* One inlining round; returns the new program and how many rewrites
   happened.

   [inputs_of] memoizes each TE's read-name list by TE name across rounds:
   a body is only re-traversed after the TE was rewritten (its entry is
   dropped below), so fixpoint iteration does not re-scan the bodies of the
   untouched majority every round.  The selection predicate only needs
   consumer *tallies* — how many TEs read a tensor and how many of those
   reduce — so rounds tally into a hash table in one pass instead of
   materializing per-tensor consumer lists. *)
let round ~fold_into_reduce ~(inputs_of : (string, string list) Hashtbl.t)
    (p : Program.t) : Program.t * stats =
  let inputs (te : Te.t) =
    match Hashtbl.find_opt inputs_of te.Te.name with
    | Some l -> l
    | None ->
        let l = Te.inputs te in
        Hashtbl.add inputs_of te.Te.name l;
        l
  in
  let n = List.length p.Program.tes in
  (* tensor name -> (total consumers, reduction consumers) *)
  let tally : (string, int * int) Hashtbl.t = Hashtbl.create (2 * max 1 n) in
  List.iter
    (fun (te : Te.t) ->
      let red = if Te.has_reduction te then 1 else 0 in
      List.iter
        (fun i ->
          let t, r =
            Option.value ~default:(0, 0) (Hashtbl.find_opt tally i)
          in
          Hashtbl.replace tally i (t + 1, r + red))
        (inputs te))
    p.Program.tes;
  let outputs = Program.SSet.of_list p.Program.outputs in
  let chains = ref 0 and moved = ref 0 in
  (* Decide for each one-relies-on-one TE whether to inline it into all of
     its consumers. *)
  let should_inline (te : Te.t) =
    if Te.has_reduction te then false
    else if Program.SSet.mem te.Te.name outputs then false
    else begin
      match Hashtbl.find_opt tally te.Te.name with
      | None | Some (0, _) -> false
      | Some (total, reducers) ->
          let movement = Expr.is_data_movement (Te.body_expr te) in
          let all_compute_consumers = reducers = 0 in
          if movement then begin
            (* folding pure data movement anywhere is free; into reductions
               it needs the flag (Souffle: yes; restricted baselines: no) *)
            if all_compute_consumers then true else fold_into_reduce
          end
          else
            (* arithmetic bodies: only into one-relies-on-one consumers, and
               only when not shared (sharing is served by the §6.5 cache;
               inlining would recompute) *)
            all_compute_consumers && total = 1
    end
  in
  let selected : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (te : Te.t) ->
      if should_inline te then Hashtbl.replace selected te.Te.name ())
    p.Program.tes;
  (* Only inline TEs whose own producers are not being inlined this round:
     chains resolve bottom-up over successive rounds, so each rewrite stays
     a single substitution step. *)
  let inline_map : (string, Te.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (te : Te.t) ->
      if
        Hashtbl.mem selected te.Te.name
        && not (List.exists (fun i -> Hashtbl.mem selected i) (inputs te))
      then Hashtbl.add inline_map te.Te.name te)
    p.Program.tes;
  if Hashtbl.length inline_map = 0 then
    (p, { chains_fused = 0; movement_folded = 0 })
  else begin
    (* Don't inline a TE into another TE that is itself being inlined this
       round *and* forms a chain — handle chains over multiple rounds to
       keep each rewrite simple. *)
    let new_tes =
      List.filter_map
        (fun (te : Te.t) ->
          if Hashtbl.mem inline_map te.Te.name then begin
            Hashtbl.remove inputs_of te.Te.name;
            None
          end
          else begin
            let te' =
              List.fold_left
                (fun acc input ->
                  match Hashtbl.find_opt inline_map input with
                  | Some producer ->
                      if Expr.is_data_movement (Te.body_expr producer) then
                        incr moved
                      else incr chains;
                      fuse ~producer ~consumer:acc
                  | None -> acc)
                te (inputs te)
            in
            if te' != te then Hashtbl.remove inputs_of te.Te.name;
            Some te'
          end)
        p.Program.tes
    in
    ( { p with Program.tes = new_tes },
      { chains_fused = !chains; movement_folded = !moved } )
  end

(** Iterate inlining to a fixpoint. *)
let apply ?(fold_into_reduce = true) (p : Program.t) : Program.t * stats =
  let inputs_of : (string, string list) Hashtbl.t =
    Hashtbl.create (2 * max 1 (List.length p.Program.tes))
  in
  let rec go p acc rounds =
    if rounds > 64 then (p, acc)
    else begin
      let p', s = round ~fold_into_reduce ~inputs_of p in
      if s.chains_fused = 0 && s.movement_folded = 0 then (p, acc)
      else
        go p'
          {
            chains_fused = acc.chains_fused + s.chains_fused;
            movement_folded = acc.movement_folded + s.movement_folded;
          }
          (rounds + 1)
    end
  in
  go p { chains_fused = 0; movement_folded = 0 } 0

(** {!apply} as a total function: fault-injection aware, exceptions
    converted to a typed diagnostic for the degradation ladder. *)
let apply_result ?fold_into_reduce (p : Program.t) :
    (Program.t * stats, Diag.t) result =
  Obs.span "vertical" @@ fun () ->
  Diag.guard Diag.Vertical (fun () ->
      Faultinject.trip Diag.Vertical;
      let ((_, stats) as r) = apply ?fold_into_reduce p in
      Obs.annotate "chains_fused" (string_of_int stats.chains_fused);
      Obs.annotate "movement_folded" (string_of_int stats.movement_folded);
      r)
