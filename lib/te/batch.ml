(** Batched-shape rewriting of a TE program (the serving layer's
    shape polymorphism).

    [apply ~batch p] produces the program that computes [batch] independent
    inference lanes at once: every TE output gains a leading batch axis, and
    every read of an intermediate tensor is indexed by the current lane.
    Model inputs (activations and weights alike) stay unbatched and are
    *shared* across lanes — the replicated-broadcast convention.  That
    models exactly the dominant win of serving-time batching (one weight
    read amortized over the whole batch; per-kernel launch overhead paid
    once) while keeping the transform closed over the quasi-affine index
    class: lane selection is one fresh output variable, nothing else moves.

    Because every lane reads the same inputs, lane [i] of each batched
    output equals the unbatched program's output — the equivalence the
    batching tests pin down with the reference interpreter.

    [apply ~batch:1] returns the program {e physically} unchanged ([==]),
    so an unbatched compile is byte-identical to one that never heard of
    batching. *)

(** [apply ~batch p] is [p] computed over [batch] broadcast lanes.
    @raise Invalid_argument when [batch < 1]. *)
let apply ~batch (p : Program.t) : Program.t =
  if batch < 1 then invalid_arg "Batch.apply: batch must be >= 1";
  if batch = 1 then p
  else begin
    let batched =
      List.fold_left
        (fun s (te : Te.t) -> Program.SSet.add te.Te.name s)
        Program.SSet.empty p.Program.tes
    in
    (* Ov 0 becomes the lane variable: shift every existing output variable
       up by one (reduction variables are untouched), then index reads of
       batched tensors by the lane.  The shift runs first, so the prepended
       [Ov 0] is unambiguously the new axis. *)
    let shift = Index.subst_out (fun k -> Index.Ov (k + 1)) in
    let rebatch (e : Expr.t) : Expr.t =
      Expr.map_reads
        (fun name idxs ->
          if Program.SSet.mem name batched then
            Expr.Read (name, Index.Ov 0 :: idxs)
          else Expr.Read (name, idxs))
        (Expr.map_index shift e)
    in
    let tes =
      List.map
        (fun (te : Te.t) ->
          let te = Te.map_body rebatch te in
          { te with Te.out_shape = Array.append [| batch |] te.Te.out_shape })
        p.Program.tes
    in
    { p with Program.tes }
  end
