(** BERT (Devlin et al.) — base version with 12 layers, as served from
    TensorRT's demo configuration (Table 2), SQuAD-style sequence length,
    batch 1, FP16 end to end (§2.1 "using FP16 for inference").

    The graph starts from the embedded token sequence: embedding lookup is
    not a linear-algebra operator and stays outside the TE program, exactly
    as Souffle treats TE-unsupported operators (§9). *)

open Dgraph

type config = {
  layers : int;
  seq : int;
  hidden : int;
  heads : int;
  ffn : int;
  dtype : Dtype.t;
}

let base = { layers = 12; seq = 384; hidden = 768; heads = 12; ffn = 3072; dtype = Dtype.F16 }

(** Scaled-down configuration for interpreter-based tests. *)
let tiny = { layers = 2; seq = 8; hidden = 8; heads = 2; ffn = 16; dtype = Dtype.F32 }

let layer (b : B.builder) (cfg : config) ~(prefix : string) (x : string) :
    string =
  let h = cfg.hidden and s = cfg.seq in
  let hd = cfg.heads in
  let dh = h / hd in
  let w name shape = B.input b (prefix ^ "." ^ name) ~dtype:cfg.dtype shape in
  let wq = w "wq" [| h; h |] and wk = w "wk" [| h; h |] and wv = w "wv" [| h; h |] in
  let bq = w "bq" [| h |] and bk = w "bk" [| h |] and bv = w "bv" [| h |] in
  let proj = fun name op inputs -> B.add b ~name:(prefix ^ "." ^ name) op inputs in
  (* QKV projections: the three independent GEMMs Souffle merges
     horizontally (spatial reuse of x, §5.1) *)
  let q = proj "q" Op.Matmul [ x; wq ] in
  let k = proj "k" Op.Matmul [ x; wk ] in
  let v = proj "v" Op.Matmul [ x; wv ] in
  let qb = proj "qb" Op.Bias_add [ q; bq ] in
  let kb = proj "kb" Op.Bias_add [ k; bk ] in
  let vb = proj "vb" Op.Bias_add [ v; bv ] in
  (* split heads: (s, h) -> (s, hd, dh) -> (hd, s, dh) — the element-wise
     memory operators of Fig. 1 that Souffle folds away *)
  let split name t =
    let r = proj (name ^ "_r") (Op.Reshape [| s; hd; dh |]) [ t ] in
    proj (name ^ "_t") (Op.Transpose [| 1; 0; 2 |]) [ r ]
  in
  let qh = split "qh" qb and kh = split "kh" kb and vh = split "vh" vb in
  (* attention scores with 1/sqrt(dh) scaling *)
  let scores = proj "scores" Op.Batch_matmul_nt [ qh; kh ] in
  let scaled = proj "scaled" (Op.Scale (1. /. sqrt (float_of_int dh))) [ scores ] in
  let probs = proj "probs" Op.Softmax [ scaled ] in
  let ctx = proj "ctx" Op.Batch_matmul [ probs; vh ] in
  (* merge heads back: (hd, s, dh) -> (s, hd, dh) -> (s, h) *)
  let ctx_t = proj "ctx_t" (Op.Transpose [| 1; 0; 2 |]) [ ctx ] in
  let ctx_m = proj "ctx_m" (Op.Reshape [| s; h |]) [ ctx_t ] in
  let wo = w "wo" [| h; h |] and bo = w "bo" [| h |] in
  let att_out = proj "att_out" Op.Matmul [ ctx_m; wo ] in
  let att_b = proj "att_b" Op.Bias_add [ att_out; bo ] in
  let res1 = proj "res1" (Op.Binary Expr.Add) [ att_b; x ] in
  let g1 = w "ln1_g" [| h |] and beta1 = w "ln1_b" [| h |] in
  let ln1 = proj "ln1" (Op.Layernorm { eps = 1e-5 }) [ res1; g1; beta1 ] in
  (* feed-forward network *)
  let w1 = w "w1" [| h; cfg.ffn |] and b1 = w "b1" [| cfg.ffn |] in
  let w2 = w "w2" [| cfg.ffn; h |] and b2 = w "b2" [| h |] in
  let f1 = proj "ffn1" Op.Matmul [ ln1; w1 ] in
  let f1b = proj "ffn1_b" Op.Bias_add [ f1; b1 ] in
  let gelu = Mcommon.gelu b ~prefix f1b in
  let f2 = proj "ffn2" Op.Matmul [ gelu; w2 ] in
  let f2b = proj "ffn2_b" Op.Bias_add [ f2; b2 ] in
  let res2 = proj "res2" (Op.Binary Expr.Add) [ f2b; ln1 ] in
  let g2 = w "ln2_g" [| h |] and beta2 = w "ln2_b" [| h |] in
  proj "out" (Op.Layernorm { eps = 1e-5 }) [ res2; g2; beta2 ]

let create ?(cfg = base) () : Dgraph.t =
  let b = B.create () in
  let x = B.input b "embeddings" ~dtype:cfg.dtype [| cfg.seq; cfg.hidden |] in
  let out = ref x in
  for l = 0 to cfg.layers - 1 do
    out := layer b cfg ~prefix:(Fmt.str "l%d" l) !out
  done;
  B.finish b ~outputs:[ !out ]

(** The motivating subgraph of Fig. 1 / Table 1: one attention block
    (QKV GEMMs, head split, scores, softmax, context, merge, projection). *)
let attention_subgraph ?(cfg = base) () : Dgraph.t =
  let b = B.create () in
  let x = B.input b "x" ~dtype:cfg.dtype [| cfg.seq; cfg.hidden |] in
  let out = layer b cfg ~prefix:"att" x in
  B.finish b ~outputs:[ out ]
