(** Construction-based scheduling (the Gensor idea: build the schedule,
    don't enumerate it).

    {!Ansor.schedule_te} scores the full tile cross-product — a few hundred
    candidate evaluations per reduction TE.  This module builds one
    schedule per TE directly: it seeds a deliberately large configuration
    (big output tiles, full reduction tile, no split, wide block) from the
    TE's structure and then runs greedy coordinate descent over the {e
    same} option lists and under the {e same} analytic cost model as the
    enumerative search ({!Ansor.estimate_us_ctx}, whose constants are
    calibrated against the {!Counters} simulator — see
    [docs/COMPILE_PERF.md]).  Each descent pass re-optimizes one decision
    at a time — output tiles, reduction tile, block size — holding the
    others fixed, except the last-axis tile and the reduction split, which
    interact too strongly to converge separately and are scanned as a
    joint pair.  A TE costs ~2·(4·4 + 4 + 3 + 2) ≈ 50 evaluations instead
    of ~380, at (measured, test-enforced) equal kernel quality.

    Determinism: the result is a function of (config, dev, te) only.  Ties
    inside one coordinate scan resolve to the earliest option in the list,
    and the pass/coordinate order is fixed, so there is nothing
    timing-dependent to diverge — the property the schedule cache and the
    serial==parallel artifact guarantee rest on. *)

(* Descent passes over the coordinate list.  Two passes suffice for this
   cost model: the second pass re-checks every coordinate after the first
   pass has moved the others, and a third was never observed to move
   again (the model is monotone in each coordinate once the memory/compute
   balance is fixed). *)
let passes = 2

(** Build one schedule for [te] by greedy coordinate descent.  Elementwise
    TEs take the same default schedule the enumerative search gives them;
    a TE for which no feasible configuration exists falls back the same
    way. *)
let schedule_te ?(config = Ansor.default_config) (dev : Device.t)
    (p : Program.t) (te : Te.t) : Sched.t =
  if not (Te.has_reduction te) then
    { (Sched.default_elementwise te) with Sched.compute_eff = config.Ansor.eff_cap }
  else begin
    let ctx = Ansor.cost_ctx p te in
    let shape = te.Te.out_shape in
    let rank = Array.length shape in
    let raxes = Te.reduce_axes te in
    let tc = Sched.tensor_core_eligible te in
    if rank = 0 then
      { (Sched.default_elementwise te) with Sched.compute_eff = config.Ansor.eff_cap }
    else begin
      let last = rank - 1 in
      let snd_last = max 0 (rank - 2) in
      (* the exhaustive search's Full option lists — shared, so construction
         can never pick a configuration enumeration could not *)
      let opts_last = Ansor.tile_candidates ~space:Ansor.Full shape.(last) in
      let opts_snd =
        if rank >= 2 then Ansor.tile_candidates ~space:Ansor.Full shape.(snd_last)
        else [ 1 ]
      in
      let opts_rt =
        if Array.length raxes = 0 then [ 1 ]
        else Ansor.rtile_candidates raxes.(0)
      in
      let opts_rsplit =
        if Array.length raxes = 0 || Shape.numel shape >= 16384 then [ 1 ]
        else
          List.filter
            (fun sfac -> sfac = 1 || sfac <= Array.fold_left ( * ) 1 raxes)
            [ 1; 4; 16; 64 ]
      in
      let opts_threads = Ansor.thread_candidates Ansor.Full in
      (* a candidate from the current coordinate values, with the achieved
         efficiency filled in exactly as the search does *)
      let mk ~tl ~ts ~rt ~rsplit ~threads : Sched.t =
        let tile = Array.make rank 1 in
        tile.(last) <- tl;
        if rank >= 2 then tile.(snd_last) <- ts;
        let rtile =
          if Array.length raxes = 0 then [||]
          else begin
            let r = Array.map (fun d -> min d 8) raxes in
            r.(0) <- min raxes.(0) rt;
            r
          end
        in
        let s =
          {
            Sched.te_name = te.Te.name;
            tile;
            rtile;
            rsplit;
            threads_per_block = threads;
            use_tensor_core = tc;
            cache_read_smem = true;
            compute_eff = 0.;
          }
        in
        { s with
          Sched.compute_eff =
            Ansor.efficiency config ~tensor_core:tc s;
        }
      in
      (* feasibility-checked cost; [None] when the block cannot fit an SM *)
      let cost (s : Sched.t) : float option =
        let u = Sched.usage_with ~numel_of:ctx.Ansor.numel_of ~body:ctx.Ansor.body te s in
        if
          u.Occupancy.smem_per_block <= dev.Device.max_smem_per_block
          && u.Occupancy.threads_per_block <= dev.Device.max_threads_per_block
          && Occupancy.blocks_per_sm dev u >= 1
        then Some (Ansor.estimate_us_ctx dev ctx te s)
        else None
      in
      let last_of l = List.nth l (List.length l - 1) in
      (* seed large: big tiles amortize prologue/epilogue, and descent only
         ever shrinks them when the memory side of the model says so *)
      let tl = ref (last_of opts_last)
      and ts = ref (last_of opts_snd)
      and rt = ref (last_of opts_rt)
      and rsplit = ref (List.hd opts_rsplit)
      and threads = ref (last_of opts_threads) in
      let eval () = cost (mk ~tl:!tl ~ts:!ts ~rt:!rt ~rsplit:!rsplit ~threads:!threads) in
      (* scan one coordinate: set [coord] to the earliest option achieving
         the lowest feasible cost (or leave it if nothing is feasible) *)
      let scan (coord : int ref) (opts : int list) =
        let best = ref None in
        List.iter
          (fun v ->
            coord := v;
            match eval () with
            | None -> ()
            | Some c -> (
                match !best with
                | Some (_, bc) when bc <= c -> ()
                | _ -> best := Some (v, c)))
          opts;
        match !best with
        | Some (v, _) -> coord := v
        | None -> coord := List.hd opts
      in
      (* the last-axis tile and the reduction split interact too strongly
         for one-at-a-time descent — a bigger tile starves the grid unless
         the split buys the parallelism back, so each looks bad without the
         other and the scan gets trapped at (small tile, no split).  Scan
         the pair jointly (|tiles| x |splits| evaluations, still far below
         enumerating the full cross-product). *)
      let scan_tl_rsplit () =
        let best = ref None in
        List.iter
          (fun v1 ->
            tl := v1;
            List.iter
              (fun v2 ->
                rsplit := v2;
                match eval () with
                | None -> ()
                | Some c -> (
                    match !best with
                    | Some (_, _, bc) when bc <= c -> ()
                    | _ -> best := Some (v1, v2, c)))
              opts_rsplit)
          opts_last;
        match !best with
        | Some (v1, v2, _) ->
            tl := v1;
            rsplit := v2
        | None ->
            tl := List.hd opts_last;
            rsplit := List.hd opts_rsplit
      in
      for _ = 1 to passes do
        scan_tl_rsplit ();
        scan ts opts_snd;
        scan rt opts_rt;
        scan threads opts_threads
      done;
      match eval () with
      | Some _ -> mk ~tl:!tl ~ts:!ts ~rt:!rt ~rsplit:!rsplit ~threads:!threads
      | None ->
          (* nowhere feasible — same fallback as an empty exhaustive space *)
          { (Sched.default_elementwise te) with
            Sched.compute_eff = config.Ansor.eff_cap }
    end
  end

(** This scheduler as an {!Ansor.scheduler}, pluggable into
    {!Ansor.schedule_program} — keys are tagged [mode=construct]. *)
let scheduler : Ansor.scheduler =
  {
    Ansor.s_mode = Ansor.Construct;
    s_schedule =
      (fun ~config ~space:_ dev p te -> schedule_te ~config dev p te);
  }

(** {!Ansor.schedule_program} driven by construction instead of
    enumeration: same memoization on structural keys, same store protocol,
    same domain fan-out (which the work threshold makes rare — constructed
    keys are too cheap to be worth a spawn).  Cost per TE is
    passes x (|tiles|·|splits| + |tiles| + |rtiles| + |threads|) ≈ 50
    evaluations, still an order of magnitude under enumeration. *)
let schedule_program ?config ?store (dev : Device.t) (p : Program.t) :
    (string, Sched.t) Hashtbl.t =
  Ansor.schedule_program ~scheduler ?config ?store dev p

(** {!schedule_program} as a total function: fault-injection aware,
    exceptions converted to a typed diagnostic. *)
let schedule_program_result ?config ?store (dev : Device.t) (p : Program.t) :
    ((string, Sched.t) Hashtbl.t, Diag.t) result =
  Ansor.schedule_program_result ~scheduler ?config ?store dev p
