(** Element types carried by tensors.

    All numeric values are stored as OCaml [float]s in the reference
    interpreter; the dtype only governs the *cost model* (bytes moved,
    which arithmetic pipeline a computation uses) and FP16 rounding in
    the semantic oracle. *)

type t =
  | F16  (** half precision, used for GEMM inputs on tensor cores *)
  | F32  (** single precision, default for every other operator *)
  | I32  (** indices / integer tensors *)
  | Bool (** predicates *)

let bytes = function
  | F16 -> 2
  | F32 | I32 -> 4
  | Bool -> 1

let to_string = function
  | F16 -> "f16"
  | F32 -> "f32"
  | I32 -> "i32"
  | Bool -> "bool"

let equal (a : t) (b : t) = a = b

let pp ppf t = Fmt.string ppf (to_string t)

(* FP16 has a 10-bit mantissa; rounding through it keeps the oracle honest
   about precision without needing a real half type. *)
let round_f16 (x : float) =
  if Float.is_nan x || Float.is_integer x then x
  else
    let scaled = Float.ldexp x 10 in
    let frac, ex = Float.frexp scaled in
    Float.ldexp (Float.round (Float.ldexp frac 11) /. 2048.) (ex - 10)

let round_value t x = match t with F16 -> round_f16 x | F32 | I32 | Bool -> x
