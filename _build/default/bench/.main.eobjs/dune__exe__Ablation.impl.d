bench/ablation.ml: Analysis Ansor Bert Counters Device Emit Fmt Horizontal List Lower Option Partition Program Sim Souffle Tables Vertical Zoo
