test/test_extensions.ml: Alcotest Analysis Ansor Bert Builder Counters Device Dtype Emit Expr Fmt Fun Horizontal Index Interp List Lower Lstm Program Sched Sim Souffle Te
