(** Minimal JSON values, printer, and parser.

    The observability layer emits Chrome-trace files and machine-readable
    counter reports; the build image has no JSON library, so this module
    implements the small subset needed: the full value grammar, a printer
    that always produces valid JSON, and a recursive-descent parser used by
    the tests to prove the emitted traces round-trip.  Numbers are [float]
    (as in JavaScript); object member order is preserved. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let escape (s : string) : string =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number_to_string (f : float) : string =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    "0" (* JSON has no NaN/inf; clamp rather than emit an invalid token *)
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    (* Shortest decimal form that round-trips: probe 15/16 significant
       digits before falling back to the always-sufficient 17. *)
    let p15 = Printf.sprintf "%.15g" f in
    if float_of_string p15 = f then p15
    else
      let p16 = Printf.sprintf "%.16g" f in
      if float_of_string p16 = f then p16 else Printf.sprintf "%.17g" f

let rec write (b : Buffer.t) = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num f -> Buffer.add_string b (number_to_string f)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        items;
      Buffer.add_char b ']'
  | Obj members ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          write b v)
        members;
      Buffer.add_char b '}'

let to_string (v : t) : string =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* ---- parsing ---- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let fail c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let parse_literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string_body c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char b '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char b '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char b '/'; go ()
        | Some 'n' -> advance c; Buffer.add_char b '\n'; go ()
        | Some 'r' -> advance c; Buffer.add_char b '\r'; go ()
        | Some 't' -> advance c; Buffer.add_char b '\t'; go ()
        | Some 'b' -> advance c; Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char b '\012'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then fail c "bad \\u escape";
            let hex = String.sub c.src c.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail c "bad \\u escape"
            in
            c.pos <- c.pos + 4;
            (* non-ASCII escapes round-trip as '?'; the tracer only emits
               ASCII control-character escapes *)
            Buffer.add_char b
              (if code < 0x80 then Char.chr code else '?');
            go ()
        | _ -> fail c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  if c.pos = start then fail c "expected number";
  match float_of_string_opt (String.sub c.src start (c.pos - start)) with
  | Some f -> f
  | None -> fail c "malformed number"

let rec parse_value c : t =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin advance c; Obj [] end
      else begin
        let rec members acc =
          skip_ws c;
          let key = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; members ((key, v) :: acc)
          | Some '}' -> advance c; List.rev ((key, v) :: acc)
          | _ -> fail c "expected , or } in object"
        in
        Obj (members [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin advance c; Arr [] end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; items (v :: acc)
          | Some ']' -> advance c; List.rev (v :: acc)
          | _ -> fail c "expected , or ] in array"
        in
        Arr (items [])
      end
  | Some '"' -> Str (parse_string_body c)
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some _ -> Num (parse_number c)

let parse (s : string) : (t, string) result =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos = String.length s then Ok v
      else Error (Printf.sprintf "trailing input at offset %d" c.pos)
  | exception Parse_error m -> Error m

(* ---- accessors (for tests and report consumers) ---- *)

let member key = function
  | Obj members -> List.assoc_opt key members
  | _ -> None

let to_list = function Arr items -> Some items | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
