(** Reproduction of every table and figure of the paper's evaluation
    (§2 Table 1, §8 Tables 3-6, Figures 5-7, §8.5), printed side by side
    with the numbers the paper reports.  Absolute values come from the
    analytical A100 model, so the claim being reproduced is the *shape*:
    who wins, by roughly what factor, and where the structural gaps
    (kernel counts, memory traffic, pipeline utilization) come from. *)

let dev = Device.a100

let section title =
  Fmt.pr "@.=== %s ===@." title

let note fmt = Fmt.pr ("    " ^^ fmt ^^ "@.")

(* memoized full-size lowered programs (ResNeXt and LSTM take seconds) *)
let program_cache : (string, Program.t) Hashtbl.t = Hashtbl.create 8

let program_of (e : Zoo.entry) =
  match Hashtbl.find_opt program_cache e.Zoo.name with
  | Some p -> p
  | None ->
      let p = Lower.run (e.Zoo.full ()) in
      Hashtbl.replace program_cache e.Zoo.name p;
      p

(* every Souffle compile the harness performs is recorded here, so the run
   can report which table rows were measured on degraded kernels and (with
   --strict-bench) fail the process over it *)
let runlog = Runlog.create ()

(** Compile and record the outcome: any degradation step or error-severity
    diagnostic is surfaced immediately on stderr and remembered in
    {!runlog} for the end-of-run summary / exit code. *)
let compile_recorded ?cfg ~name (p : Program.t) : Souffle.report =
  match Souffle.compile_result ?cfg p with
  | Ok r ->
      let errors = List.length (List.filter Diag.is_error r.Souffle.diags) in
      Runlog.record runlog ~model:name
        ~degraded_steps:(List.length r.Souffle.degraded)
        ~errors;
      if r.Souffle.degraded <> [] then begin
        Fmt.epr "  !! %s compiled degraded:@." name;
        List.iter
          (fun d -> Fmt.epr "     %a@." Souffle.pp_degradation d)
          r.Souffle.degraded
      end;
      r
  | Error ds ->
      Runlog.record runlog ~model:name ~degraded_steps:0
        ~errors:(List.length ds);
      List.iter (fun d -> Fmt.epr "  !! %s: %a@." name Diag.pp d) ds;
      failwith
        (Fmt.str "%s failed to compile: %s" name
           (String.concat "; " (List.map Diag.to_string ds)))

(* compile-once artifact store shared by every section: each (model, level)
   pair is compiled exactly once per bench run and the report is reused
   across table3, table4, table5, overhead, and the serving benchmark *)
let artifacts = Souffle.Artifacts.create ()

let souffle_at ?name level (e : Zoo.entry) : Souffle.report =
  match Souffle.Artifacts.find artifacts ~name:e.Zoo.name ~level () with
  | Some r -> r
  | None ->
      let r =
        compile_recorded
          ~name:(Option.value name ~default:e.Zoo.name)
          ~cfg:(Souffle.config ~level ()) (program_of e)
      in
      Souffle.Artifacts.add artifacts ~name:e.Zoo.name ~level r;
      r

let souffle_of (e : Zoo.entry) = souffle_at Souffle.V4 e

let baseline_cache : (string * string, (Baseline.success, string) result) Hashtbl.t =
  Hashtbl.create 32

let baseline_of (s : Baseline.system) (e : Zoo.entry) =
  let key = (Baseline.name s, e.Zoo.name) in
  match Hashtbl.find_opt baseline_cache key with
  | Some r -> r
  | None ->
      let r = Baseline.run ~device:dev s (program_of e) in
      Hashtbl.replace baseline_cache key r;
      r

(* ------------------------------------------------------------------ *)
(* Table 1 + Fig. 1: the motivating BERT attention subgraph            *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1 — BERT attention subgraph (Fig. 1), TensorRT vs Apollo vs Souffle";
  let p = Lower.run (Bert.attention_subgraph ()) in
  let run_baseline s =
    match Baseline.run ~device:dev s p with
    | Ok r -> r
    | Error m -> failwith m
  in
  let trt = run_baseline Baseline.Tensorrt in
  let apollo = run_baseline Baseline.Apollo in
  let ours = compile_recorded ~name:"BERT-attention" p in
  let row name total compute memory kernels mb =
    Fmt.pr "  %-34s %10.2f %10.2f %10.2f %8.0f %8.2f@." name total compute
      memory kernels mb
  in
  Fmt.pr "  %-34s %10s %10s %10s %8s %8s@." "" "total(us)" "compute" "memory"
    "#kernels" "MB_ld";
  let of_baseline (r : Baseline.success) =
    ( r.Baseline.sim.Sim.total.Counters.time_us,
      r.Baseline.sim.Sim.total_compute_us,
      r.Baseline.sim.Sim.total_memory_us,
      Baseline.num_kernels r,
      Counters.mb (Counters.global_load_bytes r.Baseline.sim.Sim.total) )
  in
  let t1, c1, m1, k1, b1 = of_baseline trt in
  row "TensorRT (measured)" t1 c1 m1 (float_of_int k1) b1;
  row "TensorRT (paper)" 62.34 31.29 31.0 7. 16.52;
  let t2, c2, m2, k2, b2 = of_baseline apollo in
  row "Apollo (measured)" t2 c2 m2 (float_of_int k2) b2;
  row "Apollo (paper)" 179.07 61.1 117.97 14. 27.78;
  let st = ours.Souffle.sim.Sim.total.Counters.time_us in
  row "Souffle (measured)" st ours.Souffle.sim.Sim.total_compute_us
    ours.Souffle.sim.Sim.total_memory_us
    (float_of_int (Souffle.num_kernels ours))
    (Counters.mb (Counters.global_load_bytes ours.Souffle.sim.Sim.total));
  row "Souffle (paper)" 57.73 41.77 15.96 1. 8.87;
  note "shape check: Souffle < TensorRT < Apollo on time, and Souffle moves the least data";
  note "paper measures one attention sub-block; ours is the full attention layer of one encoder"

(* ------------------------------------------------------------------ *)
(* Table 3: end-to-end latency across systems                          *)
(* ------------------------------------------------------------------ *)

let paper_table3 =
  (* model, XLA, Ansor, TRT, Rammer, Apollo, IREE, Souffle; None = Failed *)
  [
    ("BERT", [ Some 2.55; Some 2.31; Some 1.30; Some 2.19; Some 3.29; Some 2.22; Some 1.22 ]);
    ("ResNeXt", [ Some 8.91; Some 20.50; Some 24.82; Some 11.69; Some 22.80; Some 314.8; Some 4.43 ]);
    ("LSTM", [ Some 10.57; Some 6.78; Some 6.30; Some 1.72; None; Some 16.0; Some 0.80 ]);
    ("EfficientNet", [ Some 2.96; Some 0.91; Some 1.21; None; Some 2.3; Some 12.33; Some 0.66 ]);
    ("SwinTrans.", [ Some 6.43; Some 5.81; Some 1.74; None; Some 10.78; Some 18.1; Some 1.55 ]);
    ("MMoE", [ Some 0.29; Some 0.034; Some 0.070; None; Some 0.049; Some 0.088; Some 0.014 ]);
  ]

let measured_table3 () =
  List.map
    (fun (e : Zoo.entry) ->
      let baselines =
        List.map
          (fun s ->
            match baseline_of s e with
            | Ok r -> Some (Baseline.time_ms r)
            | Error _ -> None)
          Baseline.all
      in
      let ours = Souffle.time_ms (souffle_of e) in
      (e.Zoo.name, baselines @ [ Some ours ]))
    Zoo.all

let geomean l =
  match l with
  | [] -> nan
  | _ ->
      exp (List.fold_left (fun a x -> a +. log x) 0. l /. float_of_int (List.length l))

let table3 () =
  section "Table 3 — end-to-end model runtime (ms), lower is better";
  let header =
    "  %-14s" ^^ "%9s%9s%9s%9s%9s%9s%9s@."
  in
  let cell ppf = function
    | Some v -> Fmt.pf ppf "%9.3f" v
    | None -> Fmt.pf ppf "%9s" "Failed"
  in
  let print_rows tag rows =
    Fmt.pr header tag "XLA" "Ansor" "TRT" "Rammer" "Apollo" "IREE" "Ours";
    List.iter
      (fun (name, cells) ->
        Fmt.pr "  %-14s" name;
        List.iter (fun c -> Fmt.pr "%a" cell c) cells;
        Fmt.pr "@.")
      rows
  in
  let measured = measured_table3 () in
  print_rows "MEASURED" measured;
  Fmt.pr "@.";
  print_rows "PAPER" paper_table3;
  (* geometric-mean speedups of Souffle over each baseline *)
  Fmt.pr "@.  geomean speedup of Souffle over each system (measured | paper):@.";
  List.iteri
    (fun i s ->
      let ratios rows =
        List.filter_map
          (fun (_, cells) ->
            match (List.nth cells i, List.nth cells 6) with
            | Some b, Some ours -> Some (b /. ours)
            | _ -> None)
          rows
      in
      Fmt.pr "    vs %-9s %6.2fx | %6.2fx@." (Baseline.name s)
        (geomean (ratios measured))
        (geomean (ratios paper_table3)))
    Baseline.all;
  note "shape check: Souffle fastest everywhere; failures match (Rammer x3, Apollo on LSTM)"

(* ------------------------------------------------------------------ *)
(* Table 4: ablation V0..V4                                            *)
(* ------------------------------------------------------------------ *)

let paper_table4 =
  [
    ("BERT", [ 3.1; 2.12; 1.53; 1.41; 1.22 ]);
    ("ResNeXt", [ 29.0; 5.90; 4.43; 4.43; 4.43 ]);
    ("LSTM", [ 6.78; 1.60; 1.21; 0.8; 0.8 ]);
    ("EfficientNet", [ 4.2; 0.91; 0.72; 0.63; 0.63 ]);
    ("SwinTrans.", [ 5.81; 4.88; 2.09; 1.78; 1.55 ]);
    ("MMoE", [ 0.05; 0.019; 0.016; 0.014; 0.014 ]);
  ]

let table4 () =
  section "Table 4 — execution time (ms) with Souffle optimizations enabled incrementally";
  Fmt.pr "  %-14s %8s %8s %8s %8s %8s@." "" "V0" "V1" "V2" "V3" "V4";
  List.iter
    (fun (e : Zoo.entry) ->
      Fmt.pr "  %-14s" e.Zoo.name;
      List.iter
        (fun level ->
          let r =
            souffle_at
              ~name:(Fmt.str "%s@V%d" e.Zoo.name (Souffle.level_rank level))
              level e
          in
          Fmt.pr " %8.3f" (Souffle.time_ms r))
        [ Souffle.V0; V1; V2; V3; V4 ];
      Fmt.pr "@.")
    Zoo.all;
  Fmt.pr "@.  paper:@.";
  List.iter
    (fun (name, vs) ->
      Fmt.pr "  %-14s" name;
      List.iter (fun v -> Fmt.pr " %8.3f" v) vs;
      Fmt.pr "@.")
    paper_table4;
  note "shape check: time is non-increasing V0 -> V4 for every model"

(* ------------------------------------------------------------------ *)
(* Table 5: kernel counts and global-memory transfer                   *)
(* ------------------------------------------------------------------ *)

let paper_table5 =
  (* model, (TRT, Apollo, XLA, Ours) kernels, (TRT, Apollo, Ours) MB *)
  [
    ("BERT", (Some 120, Some 240, Some 216, 24), (Some 361.8, Some 880.5, 226.8));
    ("ResNeXt", (Some 2406, Some 1226, Some 526, 105), (Some 622.2, Some 436.1, 470.2));
    ("LSTM", (Some 662, None, Some 3363, 1), (Some 126.8, None, 10.6));
    ("EfficientNet", (Some 187, Some 273, Some 332, 66), (Some 96.4, Some 127.4, 86.6));
    ("SwinTrans.", (Some 716, Some 1014, Some 3188, 53), (Some 831.5, Some 1309.0, 282.9));
    ("MMoE", (Some 20, Some 10, Some 7, 1), (Some 0.061, Some 0.063, 0.058));
  ]

let table5 () =
  section "Table 5 — number of GPU kernel calls and global memory transfer (MB)";
  Fmt.pr "  %-14s | %8s %8s %8s %8s | %10s %10s %10s@." "" "TRT" "Apollo"
    "XLA" "Ours" "TRT_MB" "Apollo_MB" "Ours_MB";
  let opt_kernels s e =
    match baseline_of s e with
    | Ok r -> Some (Baseline.num_kernels r)
    | Error _ -> None
  in
  let opt_mb s e =
    match baseline_of s e with
    | Ok r ->
        Some (Counters.mb (Counters.global_load_bytes r.Baseline.sim.Sim.total))
    | Error _ -> None
  in
  let pr_int ppf = function
    | Some k -> Fmt.pf ppf "%8d" k
    | None -> Fmt.pf ppf "%8s" "Failed"
  in
  let pr_mb ppf = function
    | Some v -> Fmt.pf ppf "%10.1f" v
    | None -> Fmt.pf ppf "%10s" "Failed"
  in
  List.iter
    (fun (e : Zoo.entry) ->
      let ours = souffle_of e in
      Fmt.pr "  %-14s | %a %a %a %8d | %a %a %10.1f@." e.Zoo.name pr_int
        (opt_kernels Baseline.Tensorrt e)
        pr_int
        (opt_kernels Baseline.Apollo e)
        pr_int
        (opt_kernels Baseline.Xla e)
        (Souffle.num_kernels ours) pr_mb
        (opt_mb Baseline.Tensorrt e)
        pr_mb
        (opt_mb Baseline.Apollo e)
        (Counters.mb (Counters.global_load_bytes ours.Souffle.sim.Sim.total)))
    Zoo.all;
  Fmt.pr "@.  paper:@.";
  List.iter
    (fun (name, (kt, ka, kx, ko), (mt, ma, mo)) ->
      Fmt.pr "  %-14s | %a %a %a %8d | %a %a %10.1f@." name pr_int kt pr_int
        ka pr_int kx ko pr_mb mt pr_mb ma mo)
    paper_table5;
  note "shape check: Souffle launches far fewer kernels and moves the least memory"

(* ------------------------------------------------------------------ *)
(* Fig. 5 + Fig. 6: EfficientNet sub-module latency breakdown          *)
(* ------------------------------------------------------------------ *)

(* the four versions of Fig. 5: each TE its own kernel; Ansor's fusion;
   one kernel with global sync but no reuse; full Souffle *)
let compile_submodule_variant ~name variant (p : Program.t) : float =
  match variant with
  | `Unfused ->
      let an = Analysis.run p in
      let scheds = Ansor.schedule_program dev p in
      let groups =
        List.map
          (fun (te : Te.t) ->
            { Emit.g_tes = [ te.Te.name ]; cooperative = false;
              library_call = false; eff_override = None })
          p.Program.tes
      in
      let opts =
        { Emit.default_options with
          Emit.attach_epilogue = false; attach_prologue = false;
          reuse_cache = false; pipeline = false }
      in
      (Sim.run dev (Emit.emit dev p an scheds opts groups)).Sim.total
        .Counters.time_us
  | `Fused ->
      compile_recorded ~name:(name ^ "@fig6-fused")
        ~cfg:(Souffle.config ~level:Souffle.V0 ()) p
      |> fun r -> r.Souffle.sim.Sim.total.Counters.time_us
  | `Global_sync ->
      compile_recorded ~name:(name ^ "@fig6-gsync")
        ~cfg:(Souffle.config ~level:Souffle.V3 ()) p
      |> fun r -> r.Souffle.sim.Sim.total.Counters.time_us
  | `Data_reuse ->
      compile_recorded ~name:(name ^ "@fig6-reuse")
        ~cfg:(Souffle.config ~level:Souffle.V4 ()) p
      |> fun r -> r.Souffle.sim.Sim.total.Counters.time_us

let fig6 () =
  section "Fig. 6 — EfficientNet sub-module speedup over unfused (M0..M9)";
  Fmt.pr "  %-6s %10s %10s %12s %12s@." "" "unfused" "fused" "global-sync"
    "data-reuse";
  let speedups =
    List.map
      (fun (name, g) ->
        let p = Lower.run g in
        let t v = compile_submodule_variant ~name v p in
        let base = t `Unfused in
        let fused = base /. t `Fused in
        let gs = base /. t `Global_sync in
        let dr = base /. t `Data_reuse in
        Fmt.pr "  %-6s %10.2f %10.2f %12.2f %12.2f@." name 1.0 fused gs dr;
        (fused, gs, dr))
      Efficientnet.sub_modules
  in
  let avg f = geomean (List.map f speedups) in
  Fmt.pr "  %-6s %10.2f %10.2f %12.2f %12.2f@." "AVG" 1.0
    (avg (fun (a, _, _) -> a))
    (avg (fun (_, b, _) -> b))
    (avg (fun (_, _, c) -> c));
  note "paper: global-sync averages 1.31x over unfused; data-reuse lifts it to 1.84x";
  note "shape check: unfused <= fused <= global-sync <= data-reuse on average"

(* ------------------------------------------------------------------ *)
(* Fig. 7 + Table 6: the LSTM case study                               *)
(* ------------------------------------------------------------------ *)

let table6 () =
  section "Table 6 — LSTM: Rammer vs Souffle (Fig. 7)";
  let e = Option.get (Zoo.find "LSTM") in
  (match baseline_of Baseline.Rammer e with
  | Error m -> Fmt.pr "  Rammer failed: %s@." m
  | Ok rammer ->
      let ours = souffle_of e in
      let row name v_rammer v_ours =
        Fmt.pr "  %-42s %12s %12s@." name v_rammer v_ours
      in
      row "" "Rammer" "Souffle";
      row "GPU global memory transactions (measured)"
        (Fmt.str "%.1f MB"
           (Counters.mb (Counters.global_load_bytes rammer.Baseline.sim.Sim.total)))
        (Fmt.str "%.1f MB"
           (Counters.mb (Counters.global_load_bytes ours.Souffle.sim.Sim.total)));
      row "GPU global memory transactions (paper)" "1911.0 MB" "21.11 MB";
      row "Pipeline utilization LSU (measured)"
        (Fmt.str "%.1f%%"
           (100. *. Counters.lsu_utilization rammer.Baseline.sim.Sim.total))
        (Fmt.str "%.1f%%"
           (100. *. Counters.lsu_utilization ours.Souffle.sim.Sim.total));
      row "Pipeline utilization LSU (paper)" "20.2%" "35.4%";
      row "Pipeline utilization FMA (measured)"
        (Fmt.str "%.1f%%"
           (100. *. Counters.fma_utilization rammer.Baseline.sim.Sim.total))
        (Fmt.str "%.1f%%"
           (100. *. Counters.fma_utilization ours.Souffle.sim.Sim.total));
      row "Pipeline utilization FMA (paper)" "8.0%" "19.0%";
      row "End-to-end (ms, measured)"
        (Fmt.str "%.3f" (Baseline.time_ms rammer))
        (Fmt.str "%.3f" (Souffle.time_ms ours));
      row "End-to-end (ms, paper)" "1.72" "0.80";
      Fmt.pr "@.  kernel mapping (Fig. 7): Rammer launches one kernel per wavefront (%d),@."
        (Baseline.num_kernels rammer);
      Fmt.pr "  reloading every cell's weights each step; Souffle compiles the whole@.";
      Fmt.pr "  unrolled model into %d kernel(s) with %d grid syncs, loading weights once.@."
        (Souffle.num_kernels ours)
        ours.Souffle.sim.Sim.total.Counters.grid_syncs);
  note "shape check: ~100x traffic gap and higher LSU/FMA utilization for Souffle"

(* ------------------------------------------------------------------ *)
(* §8.5: compilation overhead                                          *)
(* ------------------------------------------------------------------ *)

let overhead () =
  section "Sec. 8.5 — compilation overhead of Souffle's own passes (seconds)";
  let total = ref 0. in
  List.iter
    (fun (e : Zoo.entry) ->
      let p = program_of e in
      let r = souffle_at ~name:(e.Zoo.name ^ "@overhead") Souffle.V4 e in
      total := !total +. r.Souffle.compile_s;
      Fmt.pr "  %-14s %6.2f s  (%d TEs -> %d kernels)@." e.Zoo.name
        r.Souffle.compile_s
        (List.length p.Program.tes)
        (Souffle.num_kernels r))
    Zoo.all;
  Fmt.pr "  %-14s %6.2f s@." "TOTAL" !total;
  note "paper: Souffle adds up to 63 s on top of Ansor's hours of schedule search";
  note "shape check: our analysis/transform/partition passes stay within that budget"
