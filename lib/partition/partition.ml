(** Resource-aware TE program partitioning (§5.4).

    Souffle wants one big kernel per subprogram, synchronized with
    grid-level barriers.  A cooperative launch requires every thread block
    to be resident simultaneously, so the subprogram's largest launch grid
    times its largest per-block occupancy cost must fit the device
    ([max_grid * max_occ < C]).  A greedy BFS walk over the TE graph grows
    the current subprogram until the constraint breaks, then starts a new
    one.  A compute-intensive TE whose own grid exceeds one wave forms a
    non-cooperative subprogram: it runs as a classic kernel and may only
    absorb the one-relies-on-one TEs that follow it (inlined epilogues —
    no synchronization available). *)

type subprogram = {
  id : int;
  tes : Te.t list;          (** program order *)
  cooperative : bool;       (** may use grid.sync internally *)
}

type t = {
  subprograms : subprogram list;
  scheds : (string, Sched.t) Hashtbl.t;
}

let te_names sp = List.map (fun (te : Te.t) -> te.Te.name) sp.tes

(* Resource accumulator for the §5.4 constraint. *)
type acc = {
  max_grid : int;
  max_smem : int;   (* bytes per block *)
  max_regs_per_block : int;
  max_threads : int;
}

let empty_acc = { max_grid = 0; max_smem = 0; max_regs_per_block = 0; max_threads = 0 }

let add_usage acc ~grid ~(u : Occupancy.usage) =
  {
    max_grid = max acc.max_grid grid;
    max_smem = max acc.max_smem u.Occupancy.smem_per_block;
    max_regs_per_block =
      max acc.max_regs_per_block
        (u.Occupancy.regs_per_thread * u.Occupancy.threads_per_block);
    max_threads = max acc.max_threads u.Occupancy.threads_per_block;
  }

(* Can every block of the worst grid be resident in one wave under the
   worst per-block footprint?  This is the cooperative-launch feasibility
   check (and subsumes the paper's max_grid * max_occ < C formulation). *)
let feasible (dev : Device.t) acc =
  if acc.max_grid = 0 then true
  else begin
    let u =
      {
        Occupancy.threads_per_block = max 1 acc.max_threads;
        smem_per_block = acc.max_smem;
        regs_per_thread =
          (acc.max_regs_per_block + max 1 acc.max_threads - 1)
          / max 1 acc.max_threads;
      }
    in
    let cap =
      int_of_float
        (dev.Device.coop_capacity_frac
        *. float_of_int (Occupancy.max_blocks_per_wave dev u))
    in
    acc.max_grid <= cap
  end

let run (dev : Device.t) (an : Analysis.t) (scheds : (string, Sched.t) Hashtbl.t)
    : t =
  let p = an.Analysis.program in
  let sched name =
    match Hashtbl.find_opt scheds name with
    | Some s -> s
    | None -> invalid_arg ("Partition.run: no schedule for " ^ name)
  in
  let next_id = ref 0 in
  let fresh_id () =
    let i = !next_id in
    incr next_id;
    i
  in
  let close subs cur ~cooperative =
    match cur with
    | [] -> subs
    | tes -> { id = fresh_id (); tes = List.rev tes; cooperative } :: subs
  in
  (* state machine over the topologically ordered TE list *)
  let rec go subs cur acc mode tes =
    match tes with
    | [] -> (
        match mode with
        | `Coop -> close subs cur ~cooperative:true
        | `Noncoop -> close subs cur ~cooperative:false)
    | (te : Te.t) :: rest -> (
        let name = te.Te.name in
        let info = Analysis.info an name in
        let is_compute = info.Analysis.kind = Intensity.Compute_intensive in
        match mode with
        | `Noncoop ->
            (* only absorb one-relies-on-one epilogues *)
            if (not is_compute) && not (Te.has_reduction te) then
              go subs (te :: cur) acc `Noncoop rest
            else begin
              let subs = close subs cur ~cooperative:false in
              go subs [] empty_acc `Coop (te :: rest)
            end
        | `Coop ->
            if not is_compute then go subs (te :: cur) acc `Coop rest
            else begin
              let s = sched name in
              let grid = Sched.grid_blocks te s in
              let u = Sched.usage p te s in
              let acc' = add_usage acc ~grid ~u in
              if feasible dev acc' then go subs (te :: cur) acc' `Coop rest
              else begin
                (* close the current subprogram and retry this TE *)
                let subs = close subs cur ~cooperative:true in
                let acc0 = add_usage empty_acc ~grid ~u in
                if feasible dev acc0 then go subs [ te ] acc0 `Coop rest
                else
                  (* this TE alone cannot grid-sync: non-cooperative *)
                  go subs [ te ] empty_acc `Noncoop rest
              end
            end)
  in
  let subs = List.rev (go [] [] empty_acc `Coop p.Program.tes) in
  { subprograms = subs; scheds }

(** Every TE appears in exactly one subprogram, in program order. *)
let validate (t : t) (p : Program.t) : (unit, string) result =
  let flat = List.concat_map (fun sp -> te_names sp) t.subprograms in
  let expected = List.map (fun (te : Te.t) -> te.Te.name) p.Program.tes in
  if flat = expected then Ok ()
  else Error "Partition: subprograms do not cover the program in order"

let num_subprograms t = List.length t.subprograms

let pp ppf (t : t) =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun sp ->
      Fmt.pf ppf "subprogram %d%s: {%s}@," sp.id
        (if sp.cooperative then "" else " [non-coop]")
        (String.concat ", " (te_names sp)))
    t.subprograms;
  Fmt.pf ppf "@]"

(** {!run} as a total function: fault-injection aware, exceptions converted
    to a typed diagnostic, and the coverage invariant ({!validate}) checked
    before the result is handed to emission. *)
let run_result (dev : Device.t) (an : Analysis.t)
    (scheds : (string, Sched.t) Hashtbl.t) : (t, Diag.t) result =
  Obs.span "partition" @@ fun () ->
  match
    Diag.guard Diag.Partition (fun () ->
        Faultinject.trip Diag.Partition;
        let t = run dev an scheds in
        Obs.annotate "subprograms" (string_of_int (num_subprograms t));
        t)
  with
  | Error _ as e -> e
  | Ok t -> (
      match validate t an.Analysis.program with
      | Ok () -> Ok t
      | Error m ->
          Error
            (Diag.error ~hint:"fall back to Ansor-style grouping"
               Diag.Partition m))
