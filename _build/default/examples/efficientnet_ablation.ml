(* The EfficientNet sub-module study (Sec. 8.3, Fig. 5/6) plus the V0..V4
   ablation of Table 4 on one module: where the speedup comes from when a
   memory-bound inverted-bottleneck block is progressively fused into a
   single kernel with data reuse.

     dune exec examples/efficientnet_ablation.exe
*)

let variant_time variant (p : Program.t) : float =
  let dev = Device.a100 in
  match variant with
  | `Unfused ->
      let an = Analysis.run p in
      let scheds = Ansor.schedule_program dev p in
      let groups =
        List.map
          (fun (te : Te.t) ->
            { Emit.g_tes = [ te.Te.name ]; cooperative = false;
              library_call = false; eff_override = None })
          p.Program.tes
      in
      let opts =
        { Emit.default_options with
          Emit.attach_epilogue = false; attach_prologue = false;
          reuse_cache = false; pipeline = false }
      in
      (Sim.run dev (Emit.emit dev p an scheds opts groups)).Sim.total
        .Counters.time_us
  | `Level level ->
      (Souffle.compile ~cfg:(Souffle.config ~level ()) p).Souffle.sim.Sim
        .total.Counters.time_us

let () =
  Fmt.pr "Fig. 5's four versions of one MBConv sub-module, across M0..M9:@.";
  Fmt.pr "%-6s %10s %10s %12s %12s %14s@." "" "unfused" "fused" "global-sync"
    "data-reuse" "(us unfused)";
  List.iter
    (fun (name, g) ->
      let p = Lower.run g in
      let base = variant_time `Unfused p in
      let s v = base /. variant_time v p in
      Fmt.pr "%-6s %10.2f %10.2f %12.2f %12.2f %14.1f@." name 1.0
        (s (`Level Souffle.V0))
        (s (`Level Souffle.V3))
        (s (`Level Souffle.V4))
        base)
    Efficientnet.sub_modules;

  (* one module in detail: kernel structure of the fully fused version *)
  let name, g = List.nth Efficientnet.sub_modules 4 in
  let p = Lower.run g in
  let r = Souffle.compile p in
  Fmt.pr "@.%s fully fused: %d kernel(s), %d grid syncs@." name
    (Souffle.num_kernels r)
    r.Souffle.sim.Sim.total.Counters.grid_syncs;
  List.iter
    (fun (k : Kernel_ir.kernel) ->
      Fmt.pr "  kernel %s stages:@." k.Kernel_ir.kname;
      List.iter
        (fun (s : Kernel_ir.stage) -> Fmt.pr "    %s@." s.Kernel_ir.label)
        k.Kernel_ir.stages)
    r.Souffle.prog.Kernel_ir.kernels;

  (* the Table 4 ablation on the full EfficientNet-b0 *)
  Fmt.pr "@.Table 4 ablation on full EfficientNet-b0 (ms):@.";
  let full = Lower.run (Efficientnet.create ()) in
  List.iter
    (fun level ->
      let r = Souffle.compile ~cfg:(Souffle.config ~level ()) full in
      Fmt.pr "  %-28s %8.3f ms  (%d kernels)@."
        (Souffle.level_to_string level)
        (Souffle.time_ms r) (Souffle.num_kernels r))
    [ Souffle.V0; V1; V2; V3; V4 ];

  match Souffle.verify (Souffle.compile (Lower.run (Efficientnet.create ~cfg:Efficientnet.tiny ()))) with
  | Ok () -> Fmt.pr "@.semantic check (tiny config): PASS@."
  | Error m -> Fmt.pr "@.semantic check FAILED: %s@." m
