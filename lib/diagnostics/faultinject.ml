(** Seeded, deterministic fault injection.

    Tests (and the CLI's [--inject]) arm exactly one fault; pipeline passes
    call {!trip} at their entry points and {!smem_factor} / {!grid_factor}
    when finalizing kernel resource estimates.  A tripped fault raises
    {!Diag.Injected} (or corrupts the estimate), which the degradation
    ladder in [Souffle.compile] must absorb — proving that graceful
    degradation actually engages, not just that the happy path works.

    Determinism: a fault trips on the [skip]-th matching invocation (derived
    from [seed] by a fixed LCG step) and at most [times] times, so a given
    (seed, spec) pair always fails the same subprogram of the same model.

    Concurrency: the armed fault is keyed per domain ([Domain.DLS]), i.e.
    per compilation context — the parallel Ansor search and concurrent
    compiles each see their own (initially disarmed) slot instead of racing
    on one global cell. *)

type spec =
  | Fail_pass of Diag.pass  (** the pass raises when it next runs *)
  | Corrupt_smem of int
      (** multiply emitted kernels' shared-memory estimate — the kernel-IR
          verifier must reject the corrupted kernel *)
  | Corrupt_grid of int  (** multiply emitted kernels' grid size *)
  | Mistag_load
      (** make the emitter classify one on-device re-read as a DRAM
          first-touch [Ldg] — the cross-kernel dataflow verifier must
          reject the mistagged kernel *)

let spec_to_string = function
  | Fail_pass p -> Diag.pass_name p
  | Corrupt_smem f -> Fmt.str "smem:%d" f
  | Corrupt_grid f -> Fmt.str "grid:%d" f
  | Mistag_load -> "mistag"

(** Parse a CLI fault spec: a pass name ("horizontal", "emit", ...),
    "smem[:factor]" / "grid[:factor]", or "mistag". *)
let parse (s : string) : (spec, string) result =
  let name, factor =
    match String.index_opt s ':' with
    | Some i ->
        ( String.sub s 0 i,
          int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
    | None -> (s, None)
  in
  let factor = Option.value ~default:64 factor in
  match name with
  | "smem" -> Ok (Corrupt_smem factor)
  | "grid" -> Ok (Corrupt_grid factor)
  | "mistag" -> Ok Mistag_load
  | _ -> (
      match Diag.pass_of_string name with
      | Some p -> Ok (Fail_pass p)
      | None ->
          Error
            (Fmt.str
               "unknown fault %S (expected a pass name, smem[:N], \
                grid[:N], or mistag)"
               s))

type armed = {
  spec : spec;
  mutable skip : int;       (* matching invocations to let through first *)
  mutable remaining : int;  (* how many times to trip *)
  mutable trips : int;      (* observed trips, for tests *)
}

(* The armed fault is domain-local state: each domain (compilation context)
   gets its own slot, so the parallel Ansor search — and, eventually,
   concurrent compilations — cannot race on one global cell or trip a fault
   armed by another context.  Freshly spawned domains start disarmed. *)
let state_key : armed option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let state () = Domain.DLS.get state_key

(* One multiplicative-congruential step; keeps equal seeds reproducible and
   spreads consecutive seeds over the first few invocations. *)
let skip_of_seed seed = if seed = 0 then 0 else (seed * 48271 + 11) mod 3

let arm ?(seed = 0) ?(times = 1) spec =
  state ()
  := Some { spec; skip = skip_of_seed seed; remaining = times; trips = 0 }

let disarm () = state () := None
let armed () = !(state ()) <> None
let trips () = match !(state ()) with Some a -> a.trips | None -> 0

(* Consume one matching invocation; [Some a] iff the fault fires now. *)
let fire (matches : spec -> bool) : armed option =
  match !(state ()) with
  | Some a when matches a.spec ->
      if a.skip > 0 then begin
        a.skip <- a.skip - 1;
        None
      end
      else if a.remaining > 0 then begin
        a.remaining <- a.remaining - 1;
        a.trips <- a.trips + 1;
        Some a
      end
      else None
  | _ -> None

(** Called at a pass entry point: raises {!Diag.Injected} when the armed
    fault targets [pass] and its trigger count is reached. *)
let trip ?subject (pass : Diag.pass) : unit =
  match fire (function Fail_pass p -> p = pass | _ -> false) with
  | Some _ ->
      raise
        (Diag.Injected
           (Diag.error ?subject
              ~hint:"injected fault; retry at a lower optimization level" pass
              "injected failure (fault-injection harness)"))
  | None -> ()

(** Multiplier to apply to an emitted kernel's shared-memory estimate
    (1 when no smem-corruption fault fires on this invocation). *)
let smem_factor () : int =
  match fire (function Corrupt_smem _ -> true | _ -> false) with
  | Some { spec = Corrupt_smem f; _ } -> f
  | _ -> 1

(** Same for the launch-grid size. *)
let grid_factor () : int =
  match fire (function Corrupt_grid _ -> true | _ -> false) with
  | Some { spec = Corrupt_grid f; _ } -> f
  | _ -> 1

(** [true] when the armed mistag fault fires on this load classification:
    the emitter then deliberately issues an on-device re-read as a DRAM
    first-touch [Ldg], which the dataflow verifier must catch. *)
let mistag_load () : bool =
  match fire (function Mistag_load -> true | _ -> false) with
  | Some _ -> true
  | None -> false

(** Arm [spec], run [f], always disarm; returns [f ()]'s result together
    with the number of times the fault tripped. *)
let with_fault ?seed ?times spec (f : unit -> 'a) : 'a * int =
  arm ?seed ?times spec;
  Fun.protect ~finally:disarm (fun () ->
      let v = f () in
      (v, trips ()))

(* ------------------------------------------------------------------ *)
(* Runtime (serving-time) faults                                       *)
(* ------------------------------------------------------------------ *)

(** A fault that strikes a *running* stream on the simulated device, as
    opposed to the compile-time faults above.  Kernel/stage indices are
    0-based positions in the stream's launch queue. *)
type runtime_fault =
  | Kernel_fault of { kernel : int; stage : int }
      (** the stream's [kernel] aborts when its [stage] completes: the
          work is spent, the result is lost, the stream terminates
          [Faulted] *)
  | Kernel_hang of { kernel : int; stage : int; factor : float }
      (** the stage stretches by [factor] ([infinity] = hangs forever,
          recoverable only by a watchdog cancellation) *)

let runtime_fault_to_string = function
  | Kernel_fault { kernel; stage } -> Fmt.str "kfault@%d.%d" kernel stage
  | Kernel_hang { kernel; stage; factor } ->
      if factor = infinity then Fmt.str "khang@%d.%d(inf)" kernel stage
      else Fmt.str "khang@%d.%d(x%g)" kernel stage factor

(** Device-wide capacity cut: between [th_start_us] and
    [th_start_us + th_dur_us] the device retains only [th_capacity]
    (0 < c <= 1) of its SM and DRAM-bandwidth capacity. *)
type throttle = { th_start_us : float; th_dur_us : float; th_capacity : float }

(** A seeded chaos specification: per-request fault probabilities plus an
    optional device-throttle window.  Together with the workload it fully
    determines every runtime fault of a serving run — the same
    (seed, chaos, workload) triple reproduces byte-identical outcomes. *)
type chaos = {
  ch_seed : int;
  ch_fault_rate : float;   (** P(one kernel-fault) per dispatched attempt *)
  ch_hang_rate : float;    (** P(one kernel-hang) per dispatched attempt *)
  ch_hang_factor : float;  (** stretch factor for hangs; [infinity] allowed *)
  ch_throttle : throttle option;
}

let chaos_zero =
  {
    ch_seed = 0;
    ch_fault_rate = 0.;
    ch_hang_rate = 0.;
    ch_hang_factor = 16.;
    ch_throttle = None;
  }

let chaos_to_string (c : chaos) =
  String.concat ","
    (List.concat
       [
         (if c.ch_fault_rate > 0. then [ Fmt.str "kfault=%g" c.ch_fault_rate ]
          else []);
         (if c.ch_hang_rate > 0. then
            [
              (if c.ch_hang_factor = infinity then
                 Fmt.str "khang=%gxinf" c.ch_hang_rate
               else Fmt.str "khang=%gx%g" c.ch_hang_rate c.ch_hang_factor);
            ]
          else []);
         (match c.ch_throttle with
          | Some t ->
              [
                Fmt.str "throttle=%g@%g+%g" t.th_capacity
                  (t.th_start_us /. 1e3) (t.th_dur_us /. 1e3);
              ]
          | None -> []);
         (if c.ch_seed <> 0 then [ Fmt.str "seed=%d" c.ch_seed ] else []);
       ])

(** Parse a chaos spec: comma-separated clauses
    [kfault=P] (per-attempt kernel-fault probability),
    [khang=P[xF|xinf]] (kernel-hang probability, stretch factor F,
    default 16), [throttle=C\@S+D] (capacity fraction C during the window
    starting at S ms lasting D ms), [seed=N].  ["none"] or the empty
    string is the zero spec. *)
let parse_chaos (s : string) : (chaos, string) result =
  let clauses =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun x -> x <> "" && x <> "none")
  in
  let prob what v =
    match float_of_string_opt v with
    | Some p when p >= 0. && p <= 1. -> Ok p
    | _ -> Error (Fmt.str "bad %s probability %S (want 0..1)" what v)
  in
  let rec go acc = function
    | [] -> Ok acc
    | cl :: rest -> (
        match String.index_opt cl '=' with
        | None -> Error (Fmt.str "bad chaos clause %S (want key=value)" cl)
        | Some i -> (
            let key = String.sub cl 0 i in
            let v = String.sub cl (i + 1) (String.length cl - i - 1) in
            match key with
            | "kfault" -> (
                match prob "kfault" v with
                | Ok p -> go { acc with ch_fault_rate = p } rest
                | Error e -> Error e)
            | "khang" -> (
                let pstr, fstr =
                  match String.index_opt v 'x' with
                  | Some j ->
                      ( String.sub v 0 j,
                        Some (String.sub v (j + 1) (String.length v - j - 1)) )
                  | None -> (v, None)
                in
                match (prob "khang" pstr, fstr) with
                | Error e, _ -> Error e
                | Ok p, None -> go { acc with ch_hang_rate = p } rest
                | Ok p, Some "inf" ->
                    go { acc with ch_hang_rate = p; ch_hang_factor = infinity }
                      rest
                | Ok p, Some f -> (
                    match float_of_string_opt f with
                    | Some f when f > 1. ->
                        go { acc with ch_hang_rate = p; ch_hang_factor = f }
                          rest
                    | _ ->
                        Error
                          (Fmt.str "bad hang factor %S (want > 1 or inf)" f)))
            | "throttle" -> (
                (* C@S+D: capacity C during [S, S+D] milliseconds *)
                match String.index_opt v '@' with
                | None ->
                    Error
                      (Fmt.str "bad throttle %S (want CAP@START+DUR, ms)" v)
                | Some j -> (
                    let cstr = String.sub v 0 j in
                    let rest_s =
                      String.sub v (j + 1) (String.length v - j - 1)
                    in
                    match String.index_opt rest_s '+' with
                    | None ->
                        Error
                          (Fmt.str "bad throttle %S (want CAP@START+DUR, ms)"
                             v)
                    | Some k -> (
                        let sstr = String.sub rest_s 0 k in
                        let dstr =
                          String.sub rest_s (k + 1)
                            (String.length rest_s - k - 1)
                        in
                        match
                          ( float_of_string_opt cstr,
                            float_of_string_opt sstr,
                            float_of_string_opt dstr )
                        with
                        | Some c, Some st, Some d
                          when c > 0. && c <= 1. && st >= 0. && d > 0. ->
                            go
                              {
                                acc with
                                ch_throttle =
                                  Some
                                    {
                                      th_start_us = st *. 1e3;
                                      th_dur_us = d *. 1e3;
                                      th_capacity = c;
                                    };
                              }
                              rest
                        | _ ->
                            Error
                              (Fmt.str
                                 "bad throttle %S (want 0<CAP<=1, START, \
                                  DUR>0 in ms)"
                                 v))))
            | "seed" -> (
                match int_of_string_opt v with
                | Some n -> go { acc with ch_seed = n } rest
                | None -> Error (Fmt.str "bad chaos seed %S" v))
            | _ ->
                Error
                  (Fmt.str
                     "unknown chaos key %S (kfault, khang, throttle, seed)"
                     key)))
  in
  go chaos_zero clauses

(** Derive the fault plan for one dispatched attempt of one request.
    [stages.(k)] is the stage count of the artifact's [k]-th kernel.  The
    draw depends only on (chaos, request id, attempt number) — never on
    simulated time — so a retry re-rolls its fate deterministically and the
    whole run reproduces from the (seed, chaos, workload) triple. *)
let chaos_plan (c : chaos) ~(rq_id : int) ~(attempt : int)
    ~(stages : int array) : runtime_fault list =
  if
    (c.ch_fault_rate <= 0. && c.ch_hang_rate <= 0.)
    || Array.length stages = 0
  then []
  else begin
    let rng =
      Rng.create ((c.ch_seed * 1_000_003) + (rq_id * 7919) + (attempt * 104729) + 1)
    in
    let pick_site () =
      let k = Rng.int rng ~bound:(Array.length stages) in
      let s = if stages.(k) <= 0 then 0 else Rng.int rng ~bound:stages.(k) in
      (k, s)
    in
    (* fixed draw order: fault roll (+ site), then hang roll (+ site) *)
    let fault =
      let roll = Rng.float rng in
      let k, s = pick_site () in
      if roll < c.ch_fault_rate then [ Kernel_fault { kernel = k; stage = s } ]
      else []
    in
    let hang =
      let roll = Rng.float rng in
      let k, s = pick_site () in
      if roll < c.ch_hang_rate then
        [ Kernel_hang { kernel = k; stage = s; factor = c.ch_hang_factor } ]
      else []
    in
    fault @ hang
  end

(** Per-stream runtime-injection bookkeeping.  Each serving stream gets its
    own slot (keyed by engine stream id) and — like the compile-time armed
    fault above — the whole registry is [Domain.DLS] state: if serving ever
    spans domains, each domain sees its own registry and streams cannot
    race on one global cell.  The engine is the single writer of trip
    counts; schedulers reset the registry at the start of a chaos run. *)
module Runtime = struct
  type slot = { mutable rs_plan : runtime_fault list; mutable rs_trips : int }

  let registry_key : (int, slot) Hashtbl.t Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Hashtbl.create 32)

  let registry () = Domain.DLS.get registry_key
  let reset () = Hashtbl.reset (registry ())

  (** Arm [plan] for engine stream [stream]; replaces any previous slot. *)
  let arm ~stream (plan : runtime_fault list) =
    Hashtbl.replace (registry ()) stream { rs_plan = plan; rs_trips = 0 }

  let plan ~stream =
    match Hashtbl.find_opt (registry ()) stream with
    | Some s -> s.rs_plan
    | None -> []

  let record_trip ~stream =
    match Hashtbl.find_opt (registry ()) stream with
    | Some s -> s.rs_trips <- s.rs_trips + 1
    | None -> Hashtbl.replace (registry ()) stream { rs_plan = []; rs_trips = 1 }

  let trips ~stream =
    match Hashtbl.find_opt (registry ()) stream with
    | Some s -> s.rs_trips
    | None -> 0

  let total_trips () =
    Hashtbl.fold (fun _ s a -> a + s.rs_trips) (registry ()) 0
end
