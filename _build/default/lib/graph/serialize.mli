(** Textual serialization of model graphs — the stand-in for the paper's
    TensorFlow/ONNX front-end.

    {v
    # comment
    input x f32 1x6
    node h = matmul x w1
    node c = conv2d k3 s1 p1 g1 x w
    output h
    v} *)

val to_string : Dgraph.t -> string

val of_string : string -> (Dgraph.t, string) result
(** Parses and validates; errors name the offending line. *)

val to_file : Dgraph.t -> string -> unit
val of_file : string -> (Dgraph.t, string) result
