(** Kernel IR: the instruction-stream abstraction the simulator executes.

    A compiled program is an ordered list of kernels; a kernel is an ordered
    list of stages (one per fused TE group region, matching the
    [Fn_TE_Subprogram] structure of Fig. 2's step 5); a stage carries the
    aggregate instruction counts of all its thread blocks.  Byte/flop totals
    are grid-wide, which is the right granularity for a throughput model. *)

type instr =
  | Ldg of { bytes : int }
      (** load from DRAM (first touch of a tensor) *)
  | Ldl2 of { bytes : int }
      (** load of data resident in L2 (re-read of an on-device tensor) *)
  | Lds of { bytes : int }
      (** shared-memory load (reuse hits of the §6.5 software cache) *)
  | Stg of { bytes : int }
      (** store to DRAM *)
  | Mma of { flops : int }
      (** tensor-core half-precision multiply-accumulate (HMMA) *)
  | Fma of { flops : int }
      (** CUDA-core FP32 multiply-add *)
  | Sfu of { ops : int }
      (** transcendental ops (exp, tanh, rsqrt, ...) *)
  | Atomic_add of { bytes : int }
      (** global-memory atomic reduction traffic *)
  | Grid_sync
      (** cooperative-groups grid synchronization *)
  | Block_sync
      (** __syncthreads-level barrier (cheap) *)

type stage = {
  label : string;       (** which TE(s) this stage implements *)
  pipelined : bool;     (** §6.5 instruction-level load/compute overlap *)
  compute_eff : float;  (** achieved fraction of pipeline peak *)
  mem_eff : float;      (** achieved fraction of DRAM bandwidth *)
  sgrid : int;          (** thread blocks active in this stage (0: whole kernel) *)
  instrs : instr list;
}

type kernel = {
  kname : string;
  grid_blocks : int;
  threads_per_block : int;
  smem_per_block : int;   (** bytes *)
  regs_per_thread : int;
  library_call : bool;    (** opaque vendor-library kernel (cuBLAS-style) *)
  stages : stage list;
}

type prog = { pname : string; kernels : kernel list }

let usage (k : kernel) : Occupancy.usage =
  {
    Occupancy.threads_per_block = k.threads_per_block;
    smem_per_block = k.smem_per_block;
    regs_per_thread = k.regs_per_thread;
  }

let stage ?(pipelined = false) ?(compute_eff = 0.7) ?(mem_eff = 0.85)
    ?(sgrid = 0) ~label instrs =
  { label; pipelined; compute_eff; mem_eff; sgrid; instrs }

let kernel ?(threads_per_block = 256) ?(smem_per_block = 48 * 1024)
    ?(regs_per_thread = 64) ?(library_call = false) ~name ~grid_blocks stages =
  {
    kname = name;
    grid_blocks;
    threads_per_block;
    smem_per_block;
    regs_per_thread;
    library_call;
    stages;
  }

let num_grid_syncs (k : kernel) =
  List.fold_left
    (fun acc s ->
      acc
      + List.length (List.filter (function Grid_sync -> true | _ -> false) s.instrs))
    0 k.stages

let dram_read_bytes_kernel (k : kernel) =
  List.fold_left
    (fun acc s ->
      List.fold_left
        (fun acc -> function Ldg { bytes } -> acc + bytes | _ -> acc)
        acc s.instrs)
    0 k.stages

let pp_instr ppf = function
  | Ldg { bytes } -> Fmt.pf ppf "ldg %dB" bytes
  | Ldl2 { bytes } -> Fmt.pf ppf "ldl2 %dB" bytes
  | Lds { bytes } -> Fmt.pf ppf "lds %dB" bytes
  | Stg { bytes } -> Fmt.pf ppf "stg %dB" bytes
  | Mma { flops } -> Fmt.pf ppf "mma %d" flops
  | Fma { flops } -> Fmt.pf ppf "fma %d" flops
  | Sfu { ops } -> Fmt.pf ppf "sfu %d" ops
  | Atomic_add { bytes } -> Fmt.pf ppf "atomic %dB" bytes
  | Grid_sync -> Fmt.string ppf "grid.sync"
  | Block_sync -> Fmt.string ppf "block.sync"

let pp_kernel ppf k =
  Fmt.pf ppf "@[<v2>kernel %s <<<%d, %d>>> smem=%dB regs=%d%s:@,"
    k.kname k.grid_blocks k.threads_per_block k.smem_per_block
    k.regs_per_thread (if k.library_call then " [lib]" else "");
  List.iter
    (fun s ->
      Fmt.pf ppf "stage %s%s: %a@," s.label
        (if s.pipelined then " [pipelined]" else "")
        Fmt.(list ~sep:(any "; ") pp_instr)
        s.instrs)
    k.stages;
  Fmt.pf ppf "@]"
