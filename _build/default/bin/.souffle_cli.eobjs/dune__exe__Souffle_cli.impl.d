bin/souffle_cli.ml: Analysis Arg Baseline Cmd Cmdliner Counters Dgraph Fmt List Lower Partition Program Result Serialize Sim Souffle String Term Zoo
