(* Unit and property tests for the tensor substrate: shapes, ndarrays, rng. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let test_numel () =
  check int "numel 2x3x4" 24 (Shape.numel [| 2; 3; 4 |]);
  check int "numel scalar" 1 (Shape.numel [||]);
  check int "numel with zero" 0 (Shape.numel [| 4; 0 |])

let test_strides () =
  Alcotest.(check (array int)) "strides" [| 12; 4; 1 |]
    (Shape.strides [| 2; 3; 4 |]);
  Alcotest.(check (array int)) "strides 1d" [| 1 |] (Shape.strides [| 7 |])

let test_ravel_unravel () =
  let s = [| 2; 3; 4 |] in
  check int "ravel" 23 (Shape.ravel s [| 1; 2; 3 |]);
  Alcotest.(check (array int)) "unravel" [| 1; 2; 3 |] (Shape.unravel s 23);
  check int "ravel 0" 0 (Shape.ravel s [| 0; 0; 0 |])

let test_iter_order () =
  let s = [| 2; 2 |] in
  let acc = ref [] in
  Shape.iter s (fun idx -> acc := Array.to_list (Array.copy idx) :: !acc);
  Alcotest.(check (list (list int)))
    "row-major order"
    [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ]
    (List.rev !acc)

let test_iter_counts () =
  let count s =
    let n = ref 0 in
    Shape.iter s (fun _ -> incr n);
    !n
  in
  check int "iter 3x4" 12 (count [| 3; 4 |]);
  check int "iter scalar" 1 (count [||]);
  check int "iter empty" 0 (count [| 0; 5 |])

let test_concat_axis () =
  Alcotest.(check (array int)) "axis0" [| 6; 16 |]
    (Shape.concat_axis ~axis:0 [| 4; 16 |] [| 2; 16 |]);
  Alcotest.check_raises "mismatch" (Invalid_argument "Shape.concat_axis: dim mismatch")
    (fun () -> ignore (Shape.concat_axis ~axis:0 [| 4; 16 |] [| 2; 15 |]))

let test_nd_get_set () =
  let a = Nd.zeros [| 3; 3 |] in
  Nd.set a [| 1; 2 |] 5.5;
  Alcotest.(check (float 0.)) "get back" 5.5 (Nd.get a [| 1; 2 |]);
  Alcotest.(check (float 0.)) "other zero" 0. (Nd.get a [| 2; 1 |])

let test_nd_init () =
  let a = Nd.init [| 2; 3 |] (fun i -> float_of_int ((i.(0) * 10) + i.(1))) in
  Alcotest.(check (float 0.)) "init value" 12. (Nd.get a [| 1; 2 |])

let test_allclose () =
  let a = Nd.init [| 4 |] (fun i -> float_of_int i.(0)) in
  let b = Nd.map (fun x -> x +. 1e-8) a in
  check bool "close" true (Nd.allclose a b);
  let c = Nd.map (fun x -> x +. 0.5) a in
  check bool "not close" false (Nd.allclose a c);
  check bool "shape mismatch" false
    (Nd.allclose a (Nd.zeros [| 5 |]))

let test_rng_deterministic () =
  let r1 = Rng.create 7 and r2 = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.)) "same stream" (Rng.float r1) (Rng.float r2)
  done

let test_rng_range () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.float r in
    check bool "in [0,1)" true (x >= 0. && x < 1.);
    let k = Rng.int r ~bound:17 in
    check bool "int in range" true (k >= 0 && k < 17)
  done

let test_f16_round () =
  Alcotest.(check (float 0.)) "exact small int" 5. (Dtype.round_f16 5.);
  let x = 1.0009765625 (* 1 + 2^-10: representable *) in
  Alcotest.(check (float 0.)) "ulp boundary" x (Dtype.round_f16 x);
  let y = Dtype.round_f16 1.0001 in
  check bool "rounds to nearest f16" true (Float.abs (y -. 1.0) < 0.001);
  check bool "rounding is idempotent" true
    (Dtype.round_f16 y = y)

let qcheck_ravel_roundtrip =
  QCheck.Test.make ~name:"unravel . ravel = id" ~count:200
    QCheck.(triple (int_range 1 5) (int_range 1 5) (int_range 1 5))
    (fun (a, b, c) ->
      let s = [| a; b; c |] in
      let ok = ref true in
      Shape.iter s (fun idx ->
          let r = Shape.unravel s (Shape.ravel s idx) in
          if r <> idx then ok := false);
      !ok)

let qcheck_f16_monotone =
  QCheck.Test.make ~name:"f16 rounding error < 2^-10 relative" ~count:500
    QCheck.(float_range (-100.) 100.)
    (fun x ->
      let y = Dtype.round_f16 x in
      Float.abs (y -. x) <= (Float.abs x /. 1024.) +. 1e-9)

let suite =
  [
    Alcotest.test_case "shape.numel" `Quick test_numel;
    Alcotest.test_case "shape.strides" `Quick test_strides;
    Alcotest.test_case "shape.ravel/unravel" `Quick test_ravel_unravel;
    Alcotest.test_case "shape.iter order" `Quick test_iter_order;
    Alcotest.test_case "shape.iter counts" `Quick test_iter_counts;
    Alcotest.test_case "shape.concat_axis" `Quick test_concat_axis;
    Alcotest.test_case "nd.get/set" `Quick test_nd_get_set;
    Alcotest.test_case "nd.init" `Quick test_nd_init;
    Alcotest.test_case "nd.allclose" `Quick test_allclose;
    Alcotest.test_case "rng.deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng.range" `Quick test_rng_range;
    Alcotest.test_case "dtype.f16" `Quick test_f16_round;
    QCheck_alcotest.to_alcotest qcheck_ravel_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_f16_monotone;
  ]
