lib/transform/vertical.mli: Expr Program Te
