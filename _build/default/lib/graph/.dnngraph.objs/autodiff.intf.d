lib/graph/autodiff.mli: Dgraph Map
