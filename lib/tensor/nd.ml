(** Dense row-major ndarrays over [float].  This is the value domain of the
    reference TE interpreter — the correctness oracle every transformation is
    tested against. *)

type t = { shape : Shape.t; dtype : Dtype.t; data : float array }

let create ?(dtype = Dtype.F32) shape v =
  { shape; dtype; data = Array.make (Shape.numel shape) v }

let zeros ?dtype shape = create ?dtype shape 0.

let init ?(dtype = Dtype.F32) shape f =
  let data = Array.make (Shape.numel shape) 0. in
  let i = ref 0 in
  Shape.iter shape (fun idx ->
      data.(!i) <- f idx;
      incr i);
  { shape; dtype; data }

let of_array ?(dtype = Dtype.F32) shape data =
  if Array.length data <> Shape.numel shape then
    invalid_arg "Nd.of_array: size mismatch";
  { shape; dtype; data }

let shape t = t.shape
let dtype t = t.dtype
let numel t = Array.length t.data

(** The flat row-major buffer itself (not a copy). *)
let data t = t.data

let get t idx = t.data.(Shape.ravel t.shape idx)
let set t idx v = t.data.(Shape.ravel t.shape idx) <- v

let get_flat t i = t.data.(i)
let set_flat t i v = t.data.(i) <- v

let copy t = { t with data = Array.copy t.data }

let map f t = { t with data = Array.map f t.data }

let map2 f a b =
  if not (Shape.equal a.shape b.shape) then invalid_arg "Nd.map2: shape";
  { a with data = Array.init (numel a) (fun i -> f a.data.(i) b.data.(i)) }

let fold f init t = Array.fold_left f init t.data

let fill t v = Array.fill t.data 0 (Array.length t.data) v

let random ?(dtype = Dtype.F32) rng shape =
  init ~dtype shape (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0)

let max_abs_diff a b =
  if not (Shape.equal a.shape b.shape) then infinity
  else begin
    let m = ref 0. in
    for i = 0 to numel a - 1 do
      let d = Float.abs (a.data.(i) -. b.data.(i)) in
      if d > !m then m := d
    done;
    !m
  end

(** Mixed absolute/relative closeness, the standard allclose predicate. *)
let allclose ?(rtol = 1e-5) ?(atol = 1e-6) a b =
  Shape.equal a.shape b.shape
  && begin
       let ok = ref true in
       for i = 0 to numel a - 1 do
         let x = a.data.(i) and y = b.data.(i) in
         if Float.abs (x -. y) > atol +. (rtol *. Float.abs y) then ok := false
       done;
       !ok
     end

let equal a b = Shape.equal a.shape b.shape && a.data = b.data

let pp ppf t =
  Fmt.pf ppf "Nd%s %s [%d elems]" (Shape.to_string t.shape)
    (Dtype.to_string t.dtype) (numel t)

let to_string t = Fmt.str "%a" pp t
