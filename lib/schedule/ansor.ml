(** Template-based auto-scheduler standing in for Ansor (§6.3).

    For each compute-intensive TE it enumerates tile/thread configurations,
    scores them with an analytical latency model (DRAM for unique bytes, L2
    for tile re-reads, the appropriate arithmetic pipeline for the flops)
    and returns the best schedule plus its resource usage — exactly the
    artifacts Souffle needs from its schedule optimizer ("get required
    resource", §5.4). *)

type config = { eff_cap : float }
(** [eff_cap] is the fraction of pipeline peak the code generator's inner
    loop achieves on large tiles; baseline profiles vary it. *)

let default_config = { eff_cap = 0.60 }

(* Achieved efficiency: large tiles amortize prologue/epilogue and fill the
   pipelines; small tiles do not. *)
let efficiency cfg ~tensor_core (s : Sched.t) =
  let elems = Sched.tile_elems s in
  let full = if tensor_core then 128 * 128 else 4096 in
  let fill = Float.min 1. (float_of_int elems /. float_of_int full) in
  cfg.eff_cap *. Float.pow fill 0.25

(** Analytical latency (µs) of running [te] alone under schedule [s]. *)
let estimate_us (dev : Device.t) (p : Program.t) (te : Te.t) (s : Sched.t) :
    float =
  let elem_bytes name =
    let info = Program.tensor_info_exn p name in
    Dtype.bytes info.Program.dtype
  in
  let unique_in_bytes =
    List.fold_left
      (fun acc name ->
        acc
        + Shape.numel (Program.tensor_info_exn p name).Program.shape
          * elem_bytes name)
      0 (Te.inputs te)
  in
  let out_bytes = Te.out_numel te * Dtype.bytes te.Te.dtype in
  let grid = Sched.grid_blocks te s in
  let total_loaded = Sched.tiled_load_bytes p te s in
  let l2_extra = max 0 (total_loaded - unique_in_bytes) in
  let atomic_bytes = out_bytes * (max 1 s.Sched.rsplit - 1) in
  let dram_us =
    float_of_int (unique_in_bytes + out_bytes) /. (dev.Device.dram_bw_gbps *. 0.85 *. 1e3)
    +. (float_of_int atomic_bytes
        /. (dev.Device.dram_bw_gbps *. dev.Device.atomic_bw_factor *. 1e3))
  in
  let l2_us = float_of_int l2_extra /. (dev.Device.l2_bw_gbps *. 1e3) in
  let flops = Te.arith_ops te in
  let peak =
    if s.Sched.use_tensor_core then dev.Device.fp16_tc_tflops
    else dev.Device.fp32_tflops
  in
  (* under-occupancy: small grids leave SMs idle (mirrors the simulator) *)
  let sms = float_of_int dev.Device.num_sms in
  let util_c = Float.min 1. (float_of_int (max 1 grid) /. sms) in
  let util_m = Float.min 1. (4. *. float_of_int (max 1 grid) /. sms) in
  let comp_us =
    float_of_int flops /. (peak *. s.Sched.compute_eff *. util_c *. 1e6)
  in
  let mem_us = (dram_us +. l2_us) /. util_m in
  let overlap = dev.Device.overlap_default in
  let body =
    Float.max mem_us comp_us +. ((1. -. overlap) *. Float.min mem_us comp_us)
  in
  let waves = Occupancy.waves dev (Sched.usage p te s) ~grid_blocks:grid in
  body +. (0.3 *. float_of_int (max 1 waves))

(* Candidate tile factors for one dimension. *)
let tile_candidates d =
  List.filter (fun t -> t <= d || t / 2 < d) [ 16; 32; 64; 128 ]
  |> List.map (fun t -> min t d)
  |> List.sort_uniq compare

let rtile_candidates d =
  List.map (fun t -> min t d) [ 16; 32; 64 ] |> List.sort_uniq compare

(** Enumerate schedules for a reduction TE: tile the two innermost output
    dims (plus channels for rank >= 3), tile the first reduction axis. *)
let candidates (te : Te.t) : Sched.t list =
  let shape = te.Te.out_shape in
  let rank = Array.length shape in
  let raxes = Te.reduce_axes te in
  let tc = Sched.tensor_core_eligible te in
  if rank = 0 then [ Sched.default_elementwise te ]
  else begin
    let last = rank - 1 in
    let snd_last = max 0 (rank - 2) in
    let base = Array.make rank 1 in
    let opts_last = tile_candidates shape.(last) in
    let opts_snd =
      if rank >= 2 then tile_candidates shape.(snd_last) else [ 1 ]
    in
    (* third dimension (batch/channels) keeps one block per index: the
       grid already scales with it, and reduction splits (rsplit) cover the
       small-output cases *)
    let opts_chan = [ 1 ] in
    let opts_r =
      if Array.length raxes = 0 then [ [||] ]
      else
        List.map
          (fun t ->
            let r = Array.map (fun d -> min d 8) raxes in
            r.(0) <- min raxes.(0) t;
            r)
          (rtile_candidates raxes.(0))
    in
    (* two-phase reduction splits for reductions with few output points *)
    let opts_rsplit =
      if Array.length raxes = 0 || Shape.numel shape >= 16384 then [ 1 ]
      else
        List.filter
          (fun sfac -> sfac = 1 || sfac <= Array.fold_left ( * ) 1 raxes)
          [ 1; 4; 16; 64 ]
    in
    List.concat_map
      (fun tl ->
        List.concat_map
          (fun ts ->
            List.concat_map
              (fun tch ->
                List.concat_map
                  (fun rt ->
                    List.concat_map
                      (fun rsplit ->
                        List.map
                          (fun threads ->
                            let tile = Array.copy base in
                            tile.(last) <- tl;
                            if rank >= 2 then tile.(snd_last) <- ts;
                            if rank >= 3 then tile.(rank - 3) <- tch;
                            {
                              Sched.te_name = te.Te.name;
                              tile;
                              rtile = rt;
                              rsplit;
                              threads_per_block = threads;
                              use_tensor_core = tc;
                              cache_read_smem = true;
                              compute_eff = 0.; (* filled below *)
                            })
                          [ 128; 256 ])
                      opts_rsplit)
                  opts_r)
              opts_chan)
          opts_snd)
      opts_last
  end

(** Feasibility: the block must fit an SM. *)
let feasible (dev : Device.t) (p : Program.t) (te : Te.t) (s : Sched.t) =
  let u = Sched.usage p te s in
  u.Occupancy.smem_per_block <= dev.Device.max_smem_per_block
  && u.Occupancy.threads_per_block <= dev.Device.max_threads_per_block
  && Occupancy.blocks_per_sm dev u >= 1

(** Search the candidate space for the lowest-latency feasible schedule. *)
let schedule_te ?(config = default_config) (dev : Device.t) (p : Program.t)
    (te : Te.t) : Sched.t =
  if not (Te.has_reduction te) then
    { (Sched.default_elementwise te) with compute_eff = config.eff_cap }
  else begin
    let cands =
      candidates te
      |> List.map (fun s ->
             { s with
               Sched.compute_eff =
                 efficiency config ~tensor_core:s.Sched.use_tensor_core s;
             })
      |> List.filter (feasible dev p te)
    in
    match cands with
    | [] -> { (Sched.default_elementwise te) with compute_eff = config.eff_cap }
    | first :: _ ->
        let best, _ =
          List.fold_left
            (fun (bs, bc) s ->
              let c = estimate_us dev p te s in
              if c < bc then (s, c) else (bs, bc))
            (first, estimate_us dev p te first)
            cands
        in
        best
  end

(** Schedule every TE of a program (memoized on structural shape, since
    models repeat identical layers many times). *)
let schedule_program ?(config = default_config) (dev : Device.t)
    (p : Program.t) : (string, Sched.t) Hashtbl.t =
  Obs.span ~meta:[ ("tes", string_of_int (List.length p.Program.tes)) ]
    "ansor"
  @@ fun () ->
  let table = Hashtbl.create 64 in
  let cache = Hashtbl.create 64 in
  List.iter
    (fun (te : Te.t) ->
      let key =
        ( te.Te.out_shape,
          Te.reduce_axes te,
          te.Te.tag,
          Te.arith_ops te,
          List.length (Te.accesses te) )
      in
      let sched =
        match Hashtbl.find_opt cache key with
        | Some s -> { s with Sched.te_name = te.Te.name }
        | None ->
            (* only cache misses run the candidate search, so only they get
               a child span — the trace shows the memoization working *)
            let s =
              Obs.span ~meta:[ ("te", te.Te.name) ] "ansor-search" (fun () ->
                  schedule_te ~config dev p te)
            in
            Hashtbl.replace cache key s;
            s
      in
      Hashtbl.replace table te.Te.name sched)
    p.Program.tes;
  table

(** {!schedule_program} as a total function: fault-injection aware,
    exceptions converted to a typed diagnostic. *)
let schedule_program_result ?config (dev : Device.t) (p : Program.t) :
    ((string, Sched.t) Hashtbl.t, Diag.t) result =
  Diag.guard Diag.Schedule (fun () ->
      Faultinject.trip Diag.Schedule;
      schedule_program ?config dev p)
